package bgpblackholing

// Tests for the streaming detection API: Run over a Source must match
// the legacy batch path byte for byte, cancellation must be prompt and
// leak-free, and closed events must reach subscribers incrementally.

import (
	"context"
	"errors"
	"io"
	"net/netip"
	"path/filepath"
	"runtime"
	"sort"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// archiveGlob lists a directory's update archives (not table dumps).
func archiveGlob(dir string) ([]struct{ path, name string }, error) {
	matches, err := filepath.Glob(filepath.Join(dir, "*.mrt"))
	if err != nil {
		return nil, err
	}
	sort.Strings(matches)
	var out []struct{ path, name string }
	for _, m := range matches {
		if strings.HasSuffix(m, ".dump.mrt") {
			continue
		}
		out = append(out, struct{ path, name string }{m, strings.TrimSuffix(filepath.Base(m), ".mrt")})
	}
	return out, nil
}

// TestRunReplayMatchesRunWindow is the API-redesign contract: Run over
// a ReplaySource produces byte-identical Events and InferStats to the
// batch RunWindow entry point, for every worker count.
func TestRunReplayMatchesRunWindow(t *testing.T) {
	const fromDay, toDay = 820, 850
	var want string
	for i, workers := range []int{1, 2, 8} {
		opts := SmallOptions()
		opts.Workers = workers
		p, err := NewPipeline(opts)
		if err != nil {
			t.Fatal(err)
		}
		legacy := p.RunWindow(fromDay, toDay)
		if i == 0 {
			want = canonicalEvents(legacy)
			if len(legacy.Events) == 0 {
				t.Fatal("no events")
			}
		}
		if got := canonicalEvents(legacy); got != want {
			t.Fatalf("workers=%d: RunWindow checksum %s, want %s", workers, got, want)
		}

		// A fresh pipeline (the engine accumulates), same window via the
		// streaming API.
		p2, err := NewPipeline(opts)
		if err != nil {
			t.Fatal(err)
		}
		res, err := p2.NewDetector().Run(context.Background(), p2.Replay(fromDay, toDay))
		if err != nil {
			t.Fatal(err)
		}
		if got := canonicalEvents(res); got != want {
			t.Fatalf("workers=%d: Run checksum %s, want RunWindow's %s", workers, got, want)
		}
		if res.WindowStart != legacy.WindowStart || res.WindowEnd != legacy.WindowEnd {
			t.Fatalf("window = [%v,%v), want [%v,%v)", res.WindowStart, res.WindowEnd, legacy.WindowStart, legacy.WindowEnd)
		}
		if res.Metrics.EventsClosed != uint64(len(res.Events)) {
			t.Fatalf("metrics.EventsClosed=%d, events=%d", res.Metrics.EventsClosed, len(res.Events))
		}
	}
}

// TestRunCancellation checks cancellation hygiene: a Run aborted
// mid-window returns promptly with ctx.Err(), reports the partial
// Metrics accumulated so far, and leaks no materialization workers.
func TestRunCancellation(t *testing.T) {
	p := smallPipeline(t)
	full := p.RunWindow(700, 850)
	if len(full.Events) < 10 {
		t.Fatalf("reference window too quiet: %d events", len(full.Events))
	}
	before := runtime.NumGoroutine()

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	det := p.NewDetector()
	sub := det.Subscribe()
	go func() {
		// Cancel as soon as the first event closes — mid-window, with
		// materialization workers still running ahead of the consumer.
		if _, ok := <-sub; ok {
			cancel()
		}
		for range sub {
		}
	}()

	start := time.Now()
	res, err := det.Run(ctx, p.Replay(700, 850))
	elapsed := time.Since(start)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("Run = %v, want context.Canceled", err)
	}
	if elapsed > 30*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
	if res == nil {
		t.Fatal("canceled Run returned nil result")
	}
	if res.Metrics.UpdatesProcessed == 0 || len(res.Events) == 0 {
		t.Fatalf("partial result empty: %d updates, %d events", res.Metrics.UpdatesProcessed, len(res.Events))
	}
	// Canceling right after the first closed event must leave most of
	// the window unprocessed — and must not fabricate flush ends for
	// events that were still open.
	if len(res.Events) >= len(full.Events) {
		t.Fatalf("canceled Run closed %d events, full window closes %d", len(res.Events), len(full.Events))
	}
	if res.Metrics.UpdatesProcessed >= full.Metrics.UpdatesProcessed {
		t.Fatalf("canceled Run processed %d updates, full window processes %d",
			res.Metrics.UpdatesProcessed, full.Metrics.UpdatesProcessed)
	}

	// Leak check: every worker and watcher goroutine must exit.
	deadline := time.Now().Add(10 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= before {
			return
		}
		time.Sleep(20 * time.Millisecond)
	}
	t.Fatalf("goroutines leaked: %d before Run, %d after cancellation", before, runtime.NumGoroutine())
}

// TestSubscribeDeliversIncrementally checks that subscribers receive
// events while the run is still in flight — not only after the final
// flush — and that the subscription sees exactly the events of the
// final result, in closing order, before the channel closes.
func TestSubscribeDeliversIncrementally(t *testing.T) {
	p := smallPipeline(t)
	det := p.NewDetector()
	sub := det.Subscribe()

	var running atomic.Bool
	running.Store(true)
	type rcv struct {
		ev    *Event
		inRun bool
	}
	collected := make(chan []rcv, 1)
	go func() {
		var got []rcv
		for ev := range sub {
			got = append(got, rcv{ev, running.Load()})
		}
		collected <- got
	}()

	res, err := det.Run(context.Background(), p.Replay(845, 850))
	running.Store(false)
	if err != nil {
		t.Fatal(err)
	}
	got := <-collected

	if len(got) != len(res.Events) {
		t.Fatalf("subscriber saw %d events, result has %d", len(got), len(res.Events))
	}
	inFlight := 0
	for i, g := range got {
		if g.ev != res.Events[i] {
			t.Fatalf("subscriber order mismatch at %d", i)
		}
		if g.inRun {
			inFlight++
		}
	}
	if inFlight == 0 {
		t.Fatal("no event was delivered while the run was in flight")
	}
}

// TestStreamEarlyBreak ensures breaking out of the iterator view cancels
// the subscription without stalling the run or leaking the pump.
func TestStreamEarlyBreak(t *testing.T) {
	p := smallPipeline(t)
	det := p.NewDetector()
	seq := det.Stream()

	done := make(chan *RunResult, 1)
	go func() {
		res, err := det.Run(context.Background(), p.Replay(845, 850))
		if err != nil {
			t.Error(err)
		}
		done <- res
	}()

	n := 0
	for range seq {
		if n++; n >= 3 {
			break
		}
	}
	select {
	case res := <-done:
		if len(res.Events) < n {
			t.Fatalf("run saw %d events, subscriber consumed %d", len(res.Events), n)
		}
	case <-time.After(60 * time.Second):
		t.Fatal("run stalled after subscriber break")
	}
}

// TestLiveSourceEOFAfterDrain checks the LiveSource adapter contract:
// after Close, buffered elements still drain, then Next reports io.EOF
// — and a Run over the source terminates cleanly on it.
func TestLiveSourceEOFAfterDrain(t *testing.T) {
	p := smallPipeline(t)
	live := NewLiveSource()
	obs := p.Deploy.OrdinaryUpdates(TimelineStart, 40)
	for _, o := range obs {
		live.Publish(&Elem{Collector: o.Collector.Name, Platform: o.Collector.Platform, Update: o.Update})
	}
	live.Close()
	live.Publish(&Elem{Update: &Update{}}) // dropped: already closed

	for i := 0; i < len(obs); i++ {
		if _, err := live.Next(); err != nil {
			t.Fatalf("element %d: %v", i, err)
		}
	}
	if _, err := live.Next(); !errors.Is(err, io.EOF) {
		t.Fatalf("after drain: %v, want io.EOF", err)
	}

	// And through Run: a fresh closed-after-publish source terminates.
	live2 := NewLiveSource()
	for _, o := range obs {
		live2.PublishUpdate(o.Update, o.Collector.Name, o.Collector.Platform)
	}
	live2.Close()
	res, err := p.NewDetector().Run(context.Background(), live2, WithFlushAt(TimelineStart.AddDate(0, 0, 1)))
	if err != nil {
		t.Fatal(err)
	}
	if res.Metrics.UpdatesProcessed+res.Metrics.UpdatesCleaned == 0 {
		t.Fatal("run consumed nothing")
	}
}

// TestWithoutFlushHandover checks the feed handover: a Run with
// WithoutFlush leaves still-active events open, and a second Run on the
// same Detector ends them with the event spanning both feeds.
func TestWithoutFlushHandover(t *testing.T) {
	p := smallPipeline(t)
	provider := p.Topo.BlackholingProviders()[0]
	bh := provider.Blackholing.Communities[0]
	b := provider.Prefixes[0].Addr().As4()
	victim := netip.PrefixFrom(netip.AddrFrom4([4]byte{b[0], b[1], 9, 9}), 32)
	peerIP := netip.MustParseAddr("22.7.7.7")
	at := TimelineStart.AddDate(0, 0, 100)

	det := p.NewDetector()

	// Leg 1: the announcement arrives, the feed ends without a flush.
	feed1 := NewLiveSource()
	feed1.PublishUpdate(&Update{
		Time: at, PeerIP: peerIP, PeerAS: provider.ASN,
		Announced:   []netip.Prefix{victim},
		Path:        NewPath(provider.ASN, 1200),
		Communities: []Community{bh},
	}, "rrc00", PlatformRIS)
	feed1.Close()
	res1, err := det.Run(context.Background(), feed1, WithoutFlush())
	if err != nil {
		t.Fatal(err)
	}
	if len(res1.Events) != 0 || det.ActiveCount() != 1 {
		t.Fatalf("after leg 1: %d closed, %d active; want 0 closed, 1 active",
			len(res1.Events), det.ActiveCount())
	}

	// Leg 2: a later feed carries the withdrawal; the event closes with
	// a duration spanning both legs.
	feed2 := NewLiveSource()
	feed2.PublishUpdate(&Update{
		Time: at.Add(90 * time.Minute), PeerIP: peerIP, PeerAS: provider.ASN,
		Withdrawn: []netip.Prefix{victim},
	}, "rrc00", PlatformRIS)
	feed2.Close()
	res2, err := det.Run(context.Background(), feed2, WithFlushAt(at.Add(2*time.Hour)))
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Events) != 1 || det.ActiveCount() != 0 {
		t.Fatalf("after leg 2: %d closed, %d active; want 1 closed, 0 active",
			len(res2.Events), det.ActiveCount())
	}
	if d := res2.Events[0].Duration(); d != 90*time.Minute {
		t.Fatalf("event duration = %v, want 90m spanning both feeds", d)
	}
}

// TestWrappedReplayKeepsWindow is the combinator regression: a
// ReplaySource behind FilterSource/MapSource must still populate the
// window metadata, default the flush to the window end (not wall-clock
// now), and hand over the retained last-week propagation results.
func TestWrappedReplayKeepsWindow(t *testing.T) {
	p := smallPipeline(t)
	src := FilterSource(MapSource(p.Replay(848, 850), func(e *Elem) *Elem { return e }),
		func(*Elem) bool { return true })
	res, err := p.NewDetector().Run(context.Background(), src)
	if err != nil {
		t.Fatal(err)
	}
	bare, err := p.NewDetector().Run(context.Background(), p.Replay(848, 850))
	if err != nil {
		t.Fatal(err)
	}
	if res.WindowStart != bare.WindowStart || res.WindowEnd != bare.WindowEnd {
		t.Fatalf("wrapped window = [%v,%v), bare = [%v,%v)", res.WindowStart, res.WindowEnd, bare.WindowStart, bare.WindowEnd)
	}
	if canonicalEvents(res) != canonicalEvents(bare) {
		t.Fatal("wrapped replay diverged from bare replay")
	}
	if len(res.LastDayResults) == 0 || len(res.LastDayResults) != len(bare.LastDayResults) {
		t.Fatalf("wrapped LastDayResults = %d, bare = %d", len(res.LastDayResults), len(bare.LastDayResults))
	}
	// Flush defaulted to the window end, not time.Now: intents may
	// withdraw days after the window, but nothing can reach the present.
	// (The checksum equality above already pins the exact times.)
	horizon := TimelineStart.AddDate(1, 0, 850)
	for _, ev := range res.Events {
		if ev.End.After(horizon) {
			t.Fatalf("event %s ends %v — flushed at wall clock instead of the window end", ev.Prefix, ev.End)
		}
	}
}

// TestLiveSourceCancelThenResume is the canceled-campaign regression:
// a Run aborted by ctx must not poison the LiveSource — a later Run on
// the same feed resumes it and sees the elements published since.
func TestLiveSourceCancelThenResume(t *testing.T) {
	p := smallPipeline(t)
	live := NewLiveSource()
	det := p.NewDetector()

	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := det.Run(ctx, live, WithoutFlush())
		errCh <- err
	}()
	time.Sleep(20 * time.Millisecond) // park the consumer in Next
	cancel()
	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("first Run = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("canceled Run did not return with the consumer parked in Next")
	}

	// The feed is still alive: publish, close, and run to completion.
	obs := p.Deploy.OrdinaryUpdates(TimelineStart, 20)
	for _, o := range obs {
		live.PublishUpdate(o.Update, o.Collector.Name, o.Collector.Platform)
	}
	live.Close()
	res, err := det.Run(context.Background(), live, WithFlushAt(TimelineStart.AddDate(0, 0, 1)))
	if err != nil {
		t.Fatalf("resumed Run = %v (stale interrupt leaked through)", err)
	}
	if res.Metrics.UpdatesProcessed+res.Metrics.UpdatesCleaned == 0 {
		t.Fatal("resumed Run consumed nothing")
	}
}

// TestMergeSourcesCancellation checks that cancellation wiring passes
// through MergeSources to the child sources: a Run over merged live
// feeds parked in Next must unblock when the context is canceled.
func TestMergeSourcesCancellation(t *testing.T) {
	p := smallPipeline(t)
	a, b := NewLiveSource(), NewLiveSource()
	ctx, cancel := context.WithCancel(context.Background())
	errCh := make(chan error, 1)
	go func() {
		_, err := p.NewDetector().Run(ctx, MergeSources(a, b))
		errCh <- err
	}()
	time.Sleep(20 * time.Millisecond) // park the merge priming in Next
	cancel()
	select {
	case err := <-errCh:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("Run = %v, want context.Canceled", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Run over MergeSources did not unblock on cancellation")
	}
}

// TestRunBusy pins the single-active-run guard.
func TestRunBusy(t *testing.T) {
	p := smallPipeline(t)
	det := p.NewDetector()
	live := NewLiveSource()
	started := make(chan struct{})
	finished := make(chan error, 1)
	go func() {
		close(started)
		_, err := det.Run(context.Background(), live, WithFlushAt(TimelineStart))
		finished <- err
	}()
	<-started
	time.Sleep(10 * time.Millisecond)
	if _, err := det.Run(context.Background(), NewLiveSource()); !errors.Is(err, ErrDetectorBusy) {
		t.Fatalf("second Run = %v, want ErrDetectorBusy", err)
	}
	live.Close()
	if err := <-finished; err != nil {
		t.Fatal(err)
	}
}

// TestMRTSourceRoundTrip archives a window with WriteMRTArchives and
// re-infers it through MRTSource + MergeSources: the facade-only path
// every external consumer of bhgen/bhdetect uses.
func TestMRTSourceRoundTrip(t *testing.T) {
	if testing.Short() {
		t.Skip("archive round trip")
	}
	p := smallPipeline(t)
	dir := t.TempDir()
	sum, err := p.WriteMRTArchives(dir, 848, 850)
	if err != nil {
		t.Fatal(err)
	}
	if sum.Collectors == 0 || sum.Updates == 0 {
		t.Fatalf("empty archive summary: %+v", sum)
	}

	matches, err := archiveGlob(dir)
	if err != nil {
		t.Fatal(err)
	}
	var srcs []Source
	for _, m := range matches {
		src, err := OpenMRTSource(m.path, m.name, PlatformRIS)
		if err != nil {
			t.Fatal(err)
		}
		defer src.Close()
		srcs = append(srcs, src)
	}
	res, err := p.NewDetector().Run(context.Background(), MergeSources(srcs...),
		WithFlushAt(TimelineStart.AddDate(0, 0, 852)))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Events) == 0 {
		t.Fatal("no events re-inferred from the archives")
	}
	if res.Metrics.UpdatesProcessed == 0 {
		t.Fatal("no updates consumed from the archives")
	}
}
