package bgpblackholing

// Ablation benchmarks for the design choices of the methodology:
// community bundling (the paper's key visibility lever, §4.2), the
// dictionary construction stages (§4.1), and the event-grouping timeout
// (§9). Each prints a small table comparing the variants.

import (
	"fmt"
	"testing"
	"time"

	"bgpblackholing/internal/core"
	"bgpblackholing/internal/dictionary"
	"bgpblackholing/internal/stream"
	"bgpblackholing/internal/workload"
)

// ablationRun replays a few days with a custom workload config and
// dictionary, returning the closed events.
func ablationRun(p *Pipeline, wlCfg workload.Config, dict *dictionary.Dictionary, from, to int) []*core.Event {
	scenario := workload.NewScenario(p.Topo, wlCfg)
	engine := core.NewEngine(dict, p.Topo)
	for day := from; day < to; day++ {
		obs, _ := workload.Materialize(p.Deploy, p.Topo, scenario.IntentsForDay(day), wlCfg.Seed)
		s := stream.FromObservations(obs)
		for {
			el, err := s.Next()
			if err != nil {
				break
			}
			engine.Process(el)
		}
	}
	engine.Flush(workload.TimelineStart.Add(time.Duration(to+60) * 24 * time.Hour))
	return engine.Events()
}

// BenchmarkAblationBundling quantifies how much of the inference the
// community-bundling behaviour contributes: with bundling disabled, only
// announcements that reach a collector through a provider or route
// server are visible (§4.2 credits bundling with about half of all
// inferences).
func BenchmarkAblationBundling(b *testing.B) {
	p := benchPipeline(b)
	base := workload.DefaultConfig().Scaled(benchOptions().EventScale)
	base.Seed = benchOptions().Seed
	base.Days = benchOptions().Days
	fractions := []float64{0, 0.55, 1.0}
	b.ResetTimer()
	body := ""
	for i := 0; i < b.N; i++ {
		body = ""
		for _, f := range fractions {
			cfg := base
			cfg.FracBundled = f
			events := ablationRun(p, cfg, p.Dict, 845, 848)
			prefixes := map[string]bool{}
			noPath, dists := 0, 0
			for _, ev := range events {
				prefixes[ev.Prefix.String()] = true
				for _, d := range ev.ProviderDistances {
					dists++
					if d == core.NoPath {
						noPath++
					}
				}
			}
			share := 0.0
			if dists > 0 {
				share = float64(noPath) / float64(dists)
			}
			body += fmt.Sprintf("bundled=%.2f  events=%-6d prefixes=%-5d no-path share=%.0f%%\n",
				f, len(events), len(prefixes), 100*share)
		}
	}
	printReport("Ablation: community bundling", body)
}

// BenchmarkAblationDictionary compares detection coverage across the
// dictionary construction stages: corpus-extracted only, plus
// private-communication entries, plus the inferred undocumented
// communities promoted into the dictionary.
func BenchmarkAblationDictionary(b *testing.B) {
	p := benchPipeline(b)
	res := benchWindow(b)

	// Stage 1: corpus only (rebuild without the private pass).
	corpusOnly := dictionary.FromCorpus(p.Corpus)
	// Stage 2: + private communication = p.Dict (as built).
	// Stage 3: + promote inferred undocumented communities.
	extended := dictionary.FromCorpus(p.Corpus)
	extended.AddPrivateFromTopology(p.Topo)
	for _, e := range res.InferStats.Inferred {
		extended.AddPrivate(e.Community, e.Providers[0], 32)
	}

	base := workload.DefaultConfig().Scaled(benchOptions().EventScale)
	base.Seed = benchOptions().Seed
	base.Days = benchOptions().Days

	b.ResetTimer()
	body := ""
	for i := 0; i < b.N; i++ {
		body = ""
		for _, st := range []struct {
			name string
			dict *dictionary.Dictionary
		}{
			{"corpus only", corpusOnly},
			{"+ private communication", p.Dict},
			{"+ inferred (promoted)", extended},
		} {
			events := ablationRun(p, base, st.dict, 845, 848)
			provs := map[string]bool{}
			for _, ev := range events {
				for pr := range ev.Providers {
					provs[pr.String()] = true
				}
			}
			body += fmt.Sprintf("%-26s events=%-6d providers=%d\n", st.name, len(events), len(provs))
		}
	}
	printReport("Ablation: dictionary construction stages", body)
}

// BenchmarkAblationGroupingTimeout sweeps the event-grouping timeout:
// the 5-minute choice is what turns ON/OFF probing bursts into
// operator-level periods without merging unrelated events (§9).
func BenchmarkAblationGroupingTimeout(b *testing.B) {
	res := benchWindow(b)
	timeouts := []time.Duration{time.Minute, 5 * time.Minute, 15 * time.Minute, time.Hour}
	b.ResetTimer()
	body := ""
	for i := 0; i < b.N; i++ {
		body = ""
		for _, to := range timeouts {
			periods := core.Group(res.Events, to)
			short := 0
			for _, p := range periods {
				if p.Duration() <= time.Minute {
					short++
				}
			}
			body += fmt.Sprintf("timeout=%-5s periods=%-6d <=1min: %.0f%%\n",
				to, len(periods), 100*float64(short)/float64(len(periods)))
		}
	}
	printReport("Ablation: grouping timeout", body)
}
