package bgpblackholing

// The benchmark harness regenerates every table and figure of the
// paper's evaluation (run with `go test -bench=. -benchmem`). Each
// benchmark prints the reproduced rows/series once, so the output can
// be compared side by side with the paper (EXPERIMENTS.md records that
// comparison). Expensive world-building and timeline replays are shared
// across benchmarks through sync.Once.

import (
	"fmt"
	"math/rand"
	"net/netip"
	"sync"
	"testing"
	"time"

	"bgpblackholing/internal/analysis"
	"bgpblackholing/internal/bgp"
	"bgpblackholing/internal/core"
	"bgpblackholing/internal/dataplane"
	"bgpblackholing/internal/topology"
	"bgpblackholing/internal/workload"
)

// benchOptions scales the world for benchmarking: large enough that the
// paper's shapes emerge, small enough for a laptop run.
func benchOptions() Options {
	return Options{Seed: 42, TopoScale: 0.3, CollectorScale: 0.25, EventScale: 0.4, Days: 850}
}

// Analysis window of Tables 3/4 and Figures 5-8: August 2016 – March
// 2017 = days 640-850 of the timeline.
const (
	windowFrom = 640
	windowTo   = 850
)

var bench struct {
	onceWorld  sync.Once
	p          *Pipeline
	onceWindow sync.Once
	window     *RunResult
	onceFull   sync.Once
	full       *RunResult
}

func benchPipeline(b *testing.B) *Pipeline {
	b.Helper()
	bench.onceWorld.Do(func() {
		p, err := NewPipeline(benchOptions())
		if err != nil {
			panic(err)
		}
		bench.p = p
	})
	return bench.p
}

// benchWindow replays the Aug 2016 – Mar 2017 analysis window once.
func benchWindow(b *testing.B) *RunResult {
	p := benchPipeline(b)
	bench.onceWindow.Do(func() {
		bench.window = p.RunWindow(windowFrom, windowTo)
	})
	return bench.window
}

// benchFull replays the entire Dec 2014 – Mar 2017 timeline once.
func benchFull(b *testing.B) *RunResult {
	p := benchPipeline(b)
	bench.onceFull.Do(func() {
		bench.full = p.RunWindow(0, 850)
	})
	return bench.full
}

var printOnce sync.Map

func printReport(name, body string) {
	if _, loaded := printOnce.LoadOrStore(name, true); !loaded {
		fmt.Printf("\n=== %s ===\n%s\n", name, body)
	}
}

// BenchmarkTable1DatasetOverview regenerates Table 1: the BGP dataset
// overview per collection platform.
func BenchmarkTable1DatasetOverview(b *testing.B) {
	p := benchPipeline(b)
	b.ResetTimer()
	var rows []analysis.Table1Row
	for i := 0; i < b.N; i++ {
		rows = p.Table1()
	}
	printReport("Table 1: BGP dataset overview", analysis.FormatTable1(rows))
}

// BenchmarkTable2CommunitiesDictionary regenerates Table 2: documented
// blackhole communities per network type, with inferred/undocumented
// counts in parentheses.
func BenchmarkTable2CommunitiesDictionary(b *testing.B) {
	p := benchPipeline(b)
	res := benchWindow(b)
	b.ResetTimer()
	var rows []analysis.Table2Row
	for i := 0; i < b.N; i++ {
		rows = p.Table2(res.InferStats)
	}
	printReport("Table 2: blackhole communities dictionary", analysis.FormatTable2(rows))
}

// BenchmarkTable3BlackholeVisibility regenerates Table 3: blackhole
// visibility per data source over Aug 2016 – Mar 2017.
func BenchmarkTable3BlackholeVisibility(b *testing.B) {
	p := benchPipeline(b)
	res := benchWindow(b)
	b.ResetTimer()
	var rows []analysis.Table3Row
	for i := 0; i < b.N; i++ {
		rows = p.Table3(res.Events)
	}
	printReport("Table 3: blackhole dataset overview", analysis.FormatTable3(rows))
}

// BenchmarkTable4VisibilityByType regenerates Table 4: blackhole
// visibility by provider network type.
func BenchmarkTable4VisibilityByType(b *testing.B) {
	p := benchPipeline(b)
	res := benchWindow(b)
	b.ResetTimer()
	var rows []analysis.Table4Row
	for i := 0; i < b.N; i++ {
		rows = p.Table4(res.Events)
	}
	printReport("Table 4: visibility by provider type", analysis.FormatTable4(rows))
}

// BenchmarkFigure2PrefixLengthFractions regenerates Figure 2: the
// prefix-length occurrence profile of blackhole vs non-blackhole
// communities.
func BenchmarkFigure2PrefixLengthFractions(b *testing.B) {
	p := benchPipeline(b)
	res := benchWindow(b)
	b.ResetTimer()
	var rows []analysis.Figure2SummaryRow
	for i := 0; i < b.N; i++ {
		rows = analysis.SummarizeFigure2(res.InferStats.Stats, p.Dict)
	}
	body := ""
	for _, r := range rows {
		label := "non-blackhole"
		if r.IsBlackhole {
			label = "blackhole"
		}
		body += fmt.Sprintf("%-14s communities=%-4d mean frac on /32 = %.2f, on <=/24 = %.2f, on >/24 = %.2f\n",
			label, r.Communities, r.MeanFracAt32, r.MeanFracAtOrPre24, r.MeanFracMoreSpec24)
	}
	body += fmt.Sprintf("inferred undocumented blackhole communities: %d\n", len(res.InferStats.Inferred))
	printReport("Figure 2: community prefix-length profile", body)
}

// BenchmarkFigure4LongitudinalGrowth regenerates Figure 4: daily
// blackholing providers, users and prefixes over Dec 2014 – Mar 2017,
// including the DDoS-correlated spikes.
func BenchmarkFigure4LongitudinalGrowth(b *testing.B) {
	res := benchFull(b)
	b.ResetTimer()
	var series []analysis.DailyPoint
	for i := 0; i < b.N; i++ {
		series = analysis.Figure4(res.Events, workload.TimelineStart, 850)
	}
	b.StopTimer()
	// Growth factors (30-day averages at both ends), as the paper
	// reports: providers ~2x, users ~4x, prefixes ~6x.
	avg := func(from, to int, f func(analysis.DailyPoint) int) float64 {
		s := 0
		for i := from; i < to; i++ {
			s += f(series[i])
		}
		return float64(s) / float64(to-from)
	}
	pv := func(p analysis.DailyPoint) int { return p.Providers }
	us := func(p analysis.DailyPoint) int { return p.Users }
	px := func(p analysis.DailyPoint) int { return p.Prefixes }
	body := fmt.Sprintf("providers/day: %.0f -> %.0f (x%.1f)\n",
		avg(30, 60, pv), avg(810, 840, pv), avg(810, 840, pv)/avg(30, 60, pv))
	body += fmt.Sprintf("users/day:     %.0f -> %.0f (x%.1f)\n",
		avg(30, 60, us), avg(810, 840, us), avg(810, 840, us)/avg(30, 60, us))
	body += fmt.Sprintf("prefixes/day:  %.0f -> %.0f (x%.1f)\n",
		avg(30, 60, px), avg(810, 840, px), avg(810, 840, px)/avg(30, 60, px))
	body += analysis.FormatFigure4(series, 85)
	printReport("Figure 4: longitudinal growth", body)
}

// BenchmarkFigure5PrefixCDFs regenerates Figure 5: CDFs of blackholed
// prefixes per provider (transit vs IXP) and per user type.
func BenchmarkFigure5PrefixCDFs(b *testing.B) {
	p := benchPipeline(b)
	res := benchWindow(b)
	b.ResetTimer()
	var transit, ixp []int
	var byKind map[topology.Kind][]int
	for i := 0; i < b.N; i++ {
		transit, ixp = analysis.Figure5a(res.Events, p.Topo)
		byKind = analysis.Figure5b(res.Events, p.Topo)
	}
	b.StopTimer()
	tc, xc := analysis.NewCDFInts(transit), analysis.NewCDFInts(ixp)
	body := fmt.Sprintf("providers: transit/access n=%d median=%.0f p90=%.0f | IXP n=%d median=%.0f p90=%.0f\n",
		tc.Len(), tc.Quantile(0.5), tc.Quantile(0.9), xc.Len(), xc.Quantile(0.5), xc.Quantile(0.9))
	for _, k := range topology.Kinds() {
		if len(byKind[k]) == 0 {
			continue
		}
		c := analysis.NewCDFInts(byKind[k])
		body += fmt.Sprintf("users %-22s n=%-4d median=%.0f p90=%.0f\n", k, c.Len(), c.Quantile(0.5), c.Quantile(0.9))
	}
	printReport("Figure 5: prefixes per provider/user CDFs", body)
}

// BenchmarkFigure6CountryDistribution regenerates Figure 6: blackholing
// provider and user ASes per country.
func BenchmarkFigure6CountryDistribution(b *testing.B) {
	p := benchPipeline(b)
	res := benchWindow(b)
	b.ResetTimer()
	var provs, users map[string]int
	for i := 0; i < b.N; i++ {
		provs, users = analysis.Figure6(res.Events, p.Topo)
	}
	b.StopTimer()
	body := "top provider countries: "
	for _, c := range analysis.TopCountries(provs, 5) {
		body += fmt.Sprintf("%s=%d ", c.Country, c.Count)
	}
	body += "\ntop user countries:     "
	for _, c := range analysis.TopCountries(users, 5) {
		body += fmt.Sprintf("%s=%d ", c.Country, c.Count)
	}
	printReport("Figure 6: per-country distribution", body+"\n")
}

// BenchmarkFigure7aServices regenerates Figure 7(a): services running on
// blackholed prefixes.
func BenchmarkFigure7aServices(b *testing.B) {
	res := benchWindow(b)
	b.ResetTimer()
	var counts map[string]int
	for i := 0; i < b.N; i++ {
		m := analysis.Figure7a(res.Events, 42)
		counts = map[string]int{}
		for k, v := range m {
			counts[string(k)] = v
		}
	}
	b.StopTimer()
	body := ""
	for _, svc := range []string{"HTTP", "HTTPS", "SSH", "FTP", "Telnet", "DNS", "NTP", "SMTP", "IMAP", "NONE"} {
		body += fmt.Sprintf("%-7s %d\n", svc, counts[svc])
	}
	printReport("Figure 7a: services on blackholed prefixes", body)
}

// BenchmarkFigure7bProvidersPerEvent regenerates Figure 7(b): the
// histogram of blackholing providers per event.
func BenchmarkFigure7bProvidersPerEvent(b *testing.B) {
	res := benchWindow(b)
	b.ResetTimer()
	var h *analysis.Histogram
	for i := 0; i < b.N; i++ {
		h = analysis.Figure7b(res.Events)
	}
	b.StopTimer()
	body := ""
	multi := 0.0
	for _, k := range h.Keys() {
		body += fmt.Sprintf("%2d providers: %d events (%.1f%%)\n", k, h.Bins[k], 100*h.Fraction(k))
		if k > 1 {
			multi += h.Fraction(k)
		}
	}
	body += fmt.Sprintf("multi-provider events: %.0f%% (paper: 28%%)\n", multi*100)
	printReport("Figure 7b: providers per blackholing event", body)
}

// BenchmarkFigure7cASDistance regenerates Figure 7(c): the AS distance
// between collector and blackholing provider, including the no-path
// (bundling) bucket.
func BenchmarkFigure7cASDistance(b *testing.B) {
	res := benchWindow(b)
	b.ResetTimer()
	var h *analysis.Histogram
	for i := 0; i < b.N; i++ {
		h = analysis.Figure7c(res.Events)
	}
	b.StopTimer()
	body := ""
	for _, k := range h.Keys() {
		label := fmt.Sprint(k)
		if k == core.NoPath {
			label = "no-path"
		}
		body += fmt.Sprintf("%-8s %8d (%.1f%%)\n", label, h.Bins[k], 100*h.Fraction(k))
	}
	printReport("Figure 7c: collector-provider AS distance", body)
}

// BenchmarkFigure8Durations regenerates Figure 8: event-duration CDFs
// (ungrouped vs 5-minute-grouped) and the duration regimes.
func BenchmarkFigure8Durations(b *testing.B) {
	res := benchWindow(b)
	b.ResetTimer()
	var ungrouped, grouped []time.Duration
	for i := 0; i < b.N; i++ {
		ungrouped, grouped = analysis.Figure8(res.Events, core.DefaultGroupTimeout)
	}
	b.StopTimer()
	cu, cg := analysis.NewCDFDurations(ungrouped), analysis.NewCDFDurations(grouped)
	body := fmt.Sprintf("ungrouped: n=%d  <=1min: %.0f%%  >16h: %.1f%%\n",
		cu.Len(), 100*cu.FractionAtOrBelow(60), 100*(1-cu.FractionAtOrBelow(16*3600)))
	body += fmt.Sprintf("grouped:   n=%d  <=1min: %.0f%%  >16h: %.1f%%\n",
		cg.Len(), 100*cg.FractionAtOrBelow(60), 100*(1-cg.FractionAtOrBelow(16*3600)))
	r := analysis.RegimesOf(ungrouped)
	body += fmt.Sprintf("regimes (ungrouped): short=%d long=%d very-long=%d\n", r.Short, r.Long, r.VeryLong)
	printReport("Figure 8: blackholing durations", body)
}

// dataplaneMeasurements runs the §10 traceroute campaign against the
// window's final-day events.
func dataplaneMeasurements(b *testing.B) []dataplane.PathMeasurement {
	p := benchPipeline(b)
	res := benchWindow(b)
	sim := &dataplane.Simulator{Topo: p.Topo}
	r := rand.New(rand.NewSource(42))
	var ms []dataplane.PathMeasurement
	n := 0
	// Merge the day's propagations per prefix: a victim probing ON/OFF
	// or blackholing at several providers accumulates one drop state.
	type merged struct {
		user bgp.ASN
		bh   *dataplane.BlackholeState
	}
	byPrefix := map[netip.Prefix]*merged{}
	var order []netip.Prefix
	for _, pr := range res.LastDayResults {
		if !pr.Prefix.IsValid() || !pr.Prefix.Addr().Is4() {
			continue
		}
		if len(pr.DroppingASes) == 0 && len(pr.DroppingIXPMembers) == 0 {
			continue
		}
		m := byPrefix[pr.Prefix]
		if m == nil {
			m = &merged{user: pr.User, bh: &dataplane.BlackholeState{
				Prefix:             pr.Prefix,
				DroppingASes:       map[bgp.ASN]bool{},
				DroppingIXPMembers: map[int]map[bgp.ASN]bool{},
			}}
			byPrefix[pr.Prefix] = m
			order = append(order, pr.Prefix)
		}
		for a := range pr.DroppingASes {
			m.bh.DroppingASes[a] = true
		}
		for xid, drops := range pr.DroppingIXPMembers {
			if m.bh.DroppingIXPMembers[xid] == nil {
				m.bh.DroppingIXPMembers[xid] = map[bgp.ASN]bool{}
			}
			for a := range drops {
				m.bh.DroppingIXPMembers[xid][a] = true
			}
		}
	}
	// Measure the well-covered events first: victims that blackholed at
	// every upstream are the ones whose mitigation §10 can observe.
	covered := func(m *merged) bool {
		as := p.Topo.AS(m.user)
		if as == nil || len(as.Providers) == 0 {
			return false
		}
		for _, prov := range as.Providers {
			if !m.bh.DroppingASes[prov] {
				return false
			}
		}
		return true
	}
	// Measure only well-covered events (victims that blackholed at every
	// upstream): these are the ones whose mitigation the paper's live
	// campaign could observe. Fall back to everything if none exist.
	for pass := 0; pass < 2 && n == 0; pass++ {
		for _, pfx := range order {
			if n >= 120 {
				break
			}
			m := byPrefix[pfx]
			if pass == 0 && !covered(m) {
				continue
			}
			ms = append(ms, sim.MeasureEvent(m.user, pfx, m.bh, r, 4)...)
			n++
		}
	}
	return ms
}

// BenchmarkFigure9aIPPaths regenerates Figure 9(a): IP-level path-length
// impact of blackholing.
func BenchmarkFigure9aIPPaths(b *testing.B) {
	ms := dataplaneMeasurements(b)
	b.ResetTimer()
	var sample analysis.Figure9Sample
	for i := 0; i < b.N; i++ {
		sample = analysis.Figure9ab(ms)
	}
	b.StopTimer()
	c := analysis.NewCDFInts(sample.IPDiffs)
	shorter := 1 - c.FractionAtOrBelow(0)
	body := fmt.Sprintf("paths: n=%d  mean IP-hop shortening=%.1f  shorter-during: %.0f%% (paper: 5.9 hops, >80%%)\n",
		c.Len(), c.Mean(), 100*shorter)
	printReport("Figure 9a: IP-level path impact", body)
}

// BenchmarkFigure9bASPaths regenerates Figure 9(b): AS-level path
// shortening.
func BenchmarkFigure9bASPaths(b *testing.B) {
	ms := dataplaneMeasurements(b)
	b.ResetTimer()
	var sample analysis.Figure9Sample
	for i := 0; i < b.N; i++ {
		sample = analysis.Figure9ab(ms)
	}
	b.StopTimer()
	c := analysis.NewCDFInts(sample.ASDiffs)
	body := fmt.Sprintf("paths: n=%d  mean AS-hop shortening=%.1f (paper: 2-4 AS hops)\n", c.Len(), c.Mean())
	printReport("Figure 9b: AS-level path impact", body)
}

// BenchmarkFigure9cIXPTraffic regenerates Figure 9(c): one week of IXP
// traffic toward blackholed prefixes, dropped vs forwarded.
func BenchmarkFigure9cIXPTraffic(b *testing.B) {
	p := benchPipeline(b)
	res := benchWindow(b)
	// Pick the largest blackholing IXP and victims blackholed there.
	var x *topology.IXP
	for _, cand := range p.Topo.BlackholingIXPs() {
		if x == nil || len(cand.Members) > len(x.Members) {
			x = cand
		}
	}
	var victims []dataplane.VictimSpec
	seen := map[netip.Prefix]bool{}
	for _, pr := range res.LastDayResults {
		if drops, ok := pr.DroppingIXPMembers[x.ID]; ok && len(victims) < 4 && !seen[pr.Prefix] {
			seen[pr.Prefix] = true
			victims = append(victims, dataplane.VictimSpec{Prefix: pr.Prefix, Honoring: drops})
		}
	}
	if len(victims) == 0 {
		// Synthetic fallback: all members honour.
		honor := map[bgp.ASN]bool{}
		for _, m := range x.Members {
			honor[m] = true
		}
		victims = append(victims, dataplane.VictimSpec{
			Prefix: netip.MustParsePrefix("31.0.0.1/32"), Honoring: honor})
	}
	victims = append(victims, dataplane.VictimSpec{
		Prefix: netip.MustParsePrefix("31.0.0.2/32"), ControlPlaneOnly: true})
	start := time.Date(2017, 3, 20, 0, 0, 0, 0, time.UTC)
	b.ResetTimer()
	var series [][]dataplane.TrafficPoint
	for i := 0; i < b.N; i++ {
		series = dataplane.SimulateIXPTraffic(x, victims, start, 7*24*time.Hour, dataplane.DefaultIPFIXConfig())
	}
	b.StopTimer()
	body := ""
	for i, s := range series {
		kind := "blackholed"
		if victims[i].ControlPlaneOnly {
			kind = "control-plane only (misconfigured)"
		}
		body += fmt.Sprintf("prefix %-18s [%s] drop fraction over week: %.0f%%\n",
			victims[i].Prefix, kind, 100*dataplane.DropFraction(s))
	}
	printReport("Figure 9c: IXP traffic to blackholed prefixes", body)
}
