package bgpblackholing

import (
	"io"
	"time"

	"bgpblackholing/internal/analysis"
	"bgpblackholing/internal/compliance"
	"bgpblackholing/internal/dataplane"
	"bgpblackholing/internal/lookingglass"
	"bgpblackholing/internal/scans"
)

// This file re-exports the evaluation surface — every table and figure
// of the paper, the data-plane efficacy simulation (§10), the
// looking-glass study (§5.2) and the RFC 7999/5635 compliance audit
// (§11) — so report generators build on the facade alone.

// Analysis result types.
type (
	// Table1Row is one dataset-overview row (Table 1).
	Table1Row = analysis.Table1Row
	// Table2Row is one communities-dictionary row (Table 2).
	Table2Row = analysis.Table2Row
	// Table3Row is one blackhole-visibility row (Table 3).
	Table3Row = analysis.Table3Row
	// Table4Row is one per-provider-type visibility row (Table 4).
	Table4Row = analysis.Table4Row
	// Figure2SummaryRow aggregates the prefix-length profile of
	// blackhole vs non-blackhole communities (Figure 2).
	Figure2SummaryRow = analysis.Figure2SummaryRow
	// DailyPoint is one day of the longitudinal series (Figure 4).
	DailyPoint = analysis.DailyPoint
	// Figure9Sample carries the traceroute path-length differences of
	// the efficacy campaign (Figure 9a/9b).
	Figure9Sample = analysis.Figure9Sample
	// CDF is an empirical distribution over float64 samples.
	CDF = analysis.CDF
	// Histogram counts integer-keyed samples.
	Histogram = analysis.Histogram
	// Validation scores inferred events against scenario ground truth
	// (§10 passive validation).
	Validation = analysis.Validation
	// ComplianceReport is the RFC 7999 / RFC 5635 scorecard (§11).
	ComplianceReport = compliance.Report
	// Service is one scanned application service (§8).
	Service = scans.Service
)

// Table formatting.
func FormatTable1(rows []Table1Row) string { return analysis.FormatTable1(rows) }
func FormatTable2(rows []Table2Row) string { return analysis.FormatTable2(rows) }
func FormatTable3(rows []Table3Row) string { return analysis.FormatTable3(rows) }
func FormatTable4(rows []Table4Row) string { return analysis.FormatTable4(rows) }

// SummarizeFigure2 aggregates the per-community prefix-length profile
// (RunResult.InferStats.Stats) into blackhole vs non-blackhole rows.
func SummarizeFigure2(stats map[Community]*CommunityStats, dict *Dictionary) []Figure2SummaryRow {
	return analysis.SummarizeFigure2(stats, dict)
}

// Figure4 computes the daily longitudinal activity series.
func Figure4(events []*Event, start time.Time, days int) []DailyPoint {
	return analysis.Figure4(events, start, days)
}

// FormatFigure4 renders the series sampled every `every` days.
func FormatFigure4(series []DailyPoint, every int) string {
	return analysis.FormatFigure4(series, every)
}

// Figure5a counts blackholed prefixes per transit/access provider and
// per IXP.
func Figure5a(events []*Event, topo *Topology) (transit, ixp []int) {
	return analysis.Figure5a(events, topo)
}

// Figure5b counts blackholed prefixes per user, split by AS kind.
func Figure5b(events []*Event, topo *Topology) map[Kind][]int {
	return analysis.Figure5b(events, topo)
}

// Figure6 counts events per provider and user country.
func Figure6(events []*Event, topo *Topology) (providers, users map[string]int) {
	return analysis.Figure6(events, topo)
}

// TopCountries ranks a Figure6 count map.
var TopCountries = analysis.TopCountries

// Figure7a profiles the services running on blackholed prefixes.
func Figure7a(events []*Event, seed int64) map[Service]int {
	return analysis.Figure7a(events, seed)
}

// Figure7b histograms providers per blackholing event.
func Figure7b(events []*Event) *Histogram { return analysis.Figure7b(events) }

// Figure7c histograms the collector-provider AS distance (NoPath for
// bundling-only inferences).
func Figure7c(events []*Event) *Histogram { return analysis.Figure7c(events) }

// Figure8 returns raw and 5-minute-grouped event durations.
func Figure8(events []*Event, timeout time.Duration) (ungrouped, grouped []time.Duration) {
	return analysis.Figure8(events, timeout)
}

// Figure9ab reduces traceroute measurements to path-length differences.
func Figure9ab(ms []PathMeasurement) Figure9Sample { return analysis.Figure9ab(ms) }

// NewCDFInts builds a CDF over integer samples.
func NewCDFInts(samples []int) *CDF { return analysis.NewCDFInts(samples) }

// NewCDFDurations builds a CDF over durations, in seconds.
func NewCDFDurations(samples []time.Duration) *CDF { return analysis.NewCDFDurations(samples) }

// CSV exports for plotting.
func WriteFigure4CSV(w io.Writer, series []DailyPoint) error {
	return analysis.WriteFigure4CSV(w, series)
}
func WriteHistogramCSV(w io.Writer, label string, h *Histogram) error {
	return analysis.WriteHistogramCSV(w, label, h)
}
func WriteDurationsCSV(w io.Writer, ungrouped, grouped []time.Duration) error {
	return analysis.WriteDurationsCSV(w, ungrouped, grouped)
}
func WriteEventsCSV(w io.Writer, events []*Event) error {
	return analysis.WriteEventsCSV(w, events)
}

// Validate scores events against the scenario intents behind them.
func Validate(events []*Event, intents []Intent) Validation {
	return analysis.Validate(events, intents)
}

// AuditCompliance audits events against RFC 7999 / RFC 5635 (§11).
func AuditCompliance(events []*Event) *ComplianceReport {
	return compliance.AuditEvents(events)
}

// ---------------------------------------------------------------------
// Data-plane efficacy (§10).

type (
	// TraceSimulator runs synthetic traceroutes through the topology.
	TraceSimulator = dataplane.Simulator
	// PathMeasurement is one before/during/after traceroute triple.
	PathMeasurement = dataplane.PathMeasurement
	// BlackholeState describes an active blackholing for the simulator.
	BlackholeState = dataplane.BlackholeState
	// VictimSpec selects one victim prefix for the IPFIX simulation.
	VictimSpec = dataplane.VictimSpec
	// TrafficPoint is one IPFIX sampling interval.
	TrafficPoint = dataplane.TrafficPoint
	// IPFIXConfig sizes the IXP traffic simulation.
	IPFIXConfig = dataplane.IPFIXConfig
	// MemberContribution attributes leaked bytes to an IXP member.
	MemberContribution = dataplane.MemberContribution
)

// DefaultIPFIXConfig is the §10 sampling setup.
func DefaultIPFIXConfig() IPFIXConfig { return dataplane.DefaultIPFIXConfig() }

// SimulateIXPTraffic samples traffic to the victims on the IXP fabric.
func SimulateIXPTraffic(x *IXP, victims []VictimSpec, start time.Time, dur time.Duration, cfg IPFIXConfig) [][]TrafficPoint {
	return dataplane.SimulateIXPTraffic(x, victims, start, dur, cfg)
}

// DropFraction is the fraction of bytes dropped across a series.
func DropFraction(series []TrafficPoint) float64 { return dataplane.DropFraction(series) }

// TopForwarders ranks the non-honouring members still forwarding to a
// victim.
func TopForwarders(x *IXP, v VictimSpec, cfg IPFIXConfig) []MemberContribution {
	return dataplane.TopForwarders(x, v, cfg)
}

// ---------------------------------------------------------------------
// Looking glasses (§5.2).

type (
	// LookingGlasses is a deployment of per-AS looking glasses.
	LookingGlasses = lookingglass.Deployment
	// Glass is one AS's looking glass.
	Glass = lookingglass.Glass
	// GlassEntry is one RIB line of a looking-glass response.
	GlassEntry = lookingglass.Entry
	// GlassCapability grades what a glass can answer.
	GlassCapability = lookingglass.Capability
)

// Looking-glass capabilities.
const (
	CapPrefixOnly = lookingglass.CapPrefixOnly
	CapCommunity  = lookingglass.CapCommunity
	CapFullTable  = lookingglass.CapFullTable
)

// DeployLookingGlasses places a looking glass in every AS of the
// topology, with §3's capability mix.
func DeployLookingGlasses(topo *Topology) *LookingGlasses { return lookingglass.Deploy(topo) }
