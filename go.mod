module bgpblackholing

go 1.24.0
