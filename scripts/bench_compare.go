// Command bench_compare is the CI bench-regression gate: it compares a
// fresh scripts/bench.sh result against the committed BENCH_*.json
// baseline and fails (exit 1) when a gated benchmark's ns_per_op
// regressed beyond the tolerance. The tolerance is deliberately
// generous — CI boxes are noisy — so only real regressions (an
// accidentally quadratic index rebuild, an fsync on the query path)
// trip it, not scheduler jitter.
//
//	go run ./scripts -baseline BENCH_20260729.json -current bench_ci.json \
//	    -max-ratio 1.5 BenchmarkStoreIngest BenchmarkStoreQueryLPM
//
// Besides the baseline comparison, -within gates a cross-row ratio
// inside the current measurement — "A:B:3.0" fails when A's ns_per_op
// exceeds 3× B's in the same run. This enforces relational walls like
// "the enriched LPM query stays within 3× the plain one" directly,
// which per-row baselines alone cannot (each row could creep
// independently). The flag repeats, one wall per occurrence:
//
//	... -within BenchmarkQueryEnriched:BenchmarkStoreQueryLPM:3.0 \
//	    -within BenchmarkRuleMatch:BenchmarkRuleMatchBaseline:1.3
//
// Benchmark names match on the base name with any -procs suffix and
// sub-benchmark path stripped, so "BenchmarkStoreIngest" gates
// "BenchmarkStoreIngest-4" too. A gated benchmark missing from either
// file fails the gate: silently dropping a benchmark is itself a
// regression.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
)

type benchFile struct {
	Date       string  `json:"date"`
	Go         string  `json:"go"`
	CPUs       int     `json:"cpus"`
	Benchmarks []bench `json:"benchmarks"`
}

type bench struct {
	Name     string  `json:"name"`
	NsPerOp  float64 `json:"ns_per_op"`
	BytesPer float64 `json:"bytes_per_op"`
	Allocs   float64 `json:"allocs_per_op"`
}

// withinFlags collects every -within occurrence: the flag repeats, one
// cross-row wall per use.
type withinFlags []string

func (w *withinFlags) String() string { return strings.Join(*w, ",") }

func (w *withinFlags) Set(s string) error {
	*w = append(*w, s)
	return nil
}

func main() {
	var within withinFlags
	var (
		baseline = flag.String("baseline", "", "committed baseline BENCH_*.json")
		current  = flag.String("current", "", "freshly measured bench JSON")
		maxRatio = flag.Float64("max-ratio", 1.5, "fail when current ns_per_op exceeds baseline * ratio")
	)
	flag.Var(&within, "within", "cross-row wall in the current run: \"A:B:ratio\" fails when A's ns_per_op > B's * ratio (repeatable)")
	flag.Parse()
	gated := flag.Args()
	if *baseline == "" || *current == "" || len(gated) == 0 {
		fmt.Fprintln(os.Stderr, "usage: bench_compare -baseline FILE -current FILE [-max-ratio 1.5] BenchmarkName...")
		os.Exit(2)
	}
	base, err := load(*baseline)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench_compare:", err)
		os.Exit(2)
	}
	cur, err := load(*current)
	if err != nil {
		fmt.Fprintln(os.Stderr, "bench_compare:", err)
		os.Exit(2)
	}

	failed := false
	for _, name := range gated {
		b, bok := base[name]
		c, cok := cur[name]
		switch {
		case !bok:
			fmt.Printf("FAIL %-28s missing from baseline %s\n", name, *baseline)
			failed = true
		case !cok:
			fmt.Printf("FAIL %-28s missing from current %s\n", name, *current)
			failed = true
		case b.NsPerOp <= 0:
			fmt.Printf("FAIL %-28s baseline ns_per_op %.0f is unusable\n", name, b.NsPerOp)
			failed = true
		default:
			ratio := c.NsPerOp / b.NsPerOp
			verdict := "ok  "
			if ratio > *maxRatio {
				verdict = "FAIL"
				failed = true
			}
			fmt.Printf("%s %-28s %12.0f -> %12.0f ns/op  (%.2fx, limit %.2fx)\n",
				verdict, name, b.NsPerOp, c.NsPerOp, ratio, *maxRatio)
		}
	}
	for _, wall := range within {
		parts := strings.Split(wall, ":")
		if len(parts) != 3 {
			fmt.Fprintln(os.Stderr, "bench_compare: -within wants \"A:B:ratio\"")
			os.Exit(2)
		}
		limit, err := strconv.ParseFloat(parts[2], 64)
		if err != nil || limit <= 0 {
			fmt.Fprintf(os.Stderr, "bench_compare: -within: bad ratio %q\n", parts[2])
			os.Exit(2)
		}
		a, aok := cur[parts[0]]
		b, bok := cur[parts[1]]
		switch {
		case !aok || !bok:
			fmt.Printf("FAIL within: %s or %s missing from current %s\n", parts[0], parts[1], *current)
			failed = true
		case b.NsPerOp <= 0:
			fmt.Printf("FAIL within: %s ns_per_op %.0f is unusable\n", parts[1], b.NsPerOp)
			failed = true
		default:
			ratio := a.NsPerOp / b.NsPerOp
			verdict := "ok  "
			if ratio > limit {
				verdict = "FAIL"
				failed = true
			}
			fmt.Printf("%s %s is %.2fx %s (limit %.2fx)\n", verdict, parts[0], ratio, parts[1], limit)
		}
	}
	if failed {
		fmt.Println("bench gate: REGRESSION (or missing benchmark) detected")
		os.Exit(1)
	}
	fmt.Println("bench gate: all gated benchmarks within tolerance")
}

// load indexes a bench JSON by base benchmark name (sub-benchmark path
// and GOMAXPROCS suffix stripped); the first entry per base name wins.
func load(path string) (map[string]bench, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f benchFile
	if err := json.Unmarshal(data, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	out := map[string]bench{}
	for _, b := range f.Benchmarks {
		name := baseName(b.Name)
		if _, seen := out[name]; !seen {
			out[name] = b
		}
	}
	return out, nil
}

func baseName(s string) string {
	if i := strings.IndexByte(s, '/'); i >= 0 {
		s = s[:i]
	}
	// Strip a trailing -N GOMAXPROCS suffix ("BenchmarkStoreIngest-4").
	if i := strings.LastIndexByte(s, '-'); i > 0 {
		digits := s[i+1:]
		numeric := len(digits) > 0
		for _, r := range digits {
			if r < '0' || r > '9' {
				numeric = false
				break
			}
		}
		if numeric {
			s = s[:i]
		}
	}
	return s
}
