#!/usr/bin/env bash
# bench.sh — run the perf-tracking benchmarks and record the results in
# BENCH_<date>.json at the repository root.
#
# Usage:
#   scripts/bench.sh                 # default: -benchtime=2x
#   BENCHTIME=10x scripts/bench.sh   # longer, steadier numbers
#   BENCH_FILTER='BenchmarkEngineThroughput$' scripts/bench.sh
#   BENCH_OUT=bench_ci.json scripts/bench.sh   # write elsewhere (the CI
#                                  bench-gate uses this so the committed
#                                  BENCH_<date>.json baseline is never
#                                  overwritten by a CI run)
#
# The tracked benchmarks are the ones named in the perf methodology
# (README.md): BenchmarkEngineThroughput (single-core inference hot
# path; watch ns/op and allocs/op), BenchmarkRunWindowParallel
# (day-sharded replay; compare workers=1 against the multi-worker rows),
# BenchmarkRunStreaming (the same window through Detector.Run with a
# live subscriber; must match BenchmarkRunWindowParallel row for row),
# and the event-store rows: BenchmarkStoreIngest (append path: encode +
# checksummed log write + index insert, per event),
# BenchmarkStoreIngestGroupCommit (the same append path under the
# group-commit fsync policy, every=64 — the price of bounded crash
# loss), BenchmarkStoreQueryLPM (indexed longest-prefix-match point
# queries — must stay in the microsecond range, with no replay in the
# query path), BenchmarkStoreIngestInstrumented (the ingest path with
# the full telemetry seam attached — must stay within 1.15x of bare
# BenchmarkStoreIngest, proving observability is near-free),
# BenchmarkQueryEnriched (the same LPM point queries with legitimacy
# enrichment on: indexed covering-ROA validation plus dictionary lookups
# per returned event — must stay within 3x BenchmarkStoreQueryLPM),
# BenchmarkCompactTiered (one tiered compaction pass: run merge,
# marker-led atomic commit, in-place index swap), the alerting wall:
# BenchmarkRuleMatch (a day of live inference with a 100-rule alerting
# hub on the event-close hook, detection-time enrichment included) vs
# BenchmarkRuleMatchBaseline (the bare engine) — the hub must stay
# within 1.3x — BenchmarkFederatedQueryLPM (the same LPM point queries
# through a FederatedStore over three local prefix-split shards: fan
# -out, per-shard indexed lookups, k-way merge on RecordKey — must stay
# within 5x BenchmarkStoreQueryLPM, the federation-overhead wall) —
# and the memory-speed read-path walls:
# BenchmarkStoreColdOpen (sidecar-backed open, zero sealed-segment
# decodes) vs BenchmarkStoreFullOpen (classic decode-everything open) —
# cold must stay under 0.25x full — and BenchmarkFigure4Materialized
# (O(days) answers from the refcounted per-day aggregates) vs
# BenchmarkFigure4Scan (the reference full scan) — materialized must
# stay under 0.1x scan.
#
# CI gates BenchmarkStoreIngest, BenchmarkStoreIngestGroupCommit,
# BenchmarkStoreQueryLPM and BenchmarkQueryEnriched against the
# committed baseline, plus the QueryEnriched:StoreQueryLPM,
# RuleMatch:RuleMatchBaseline, FederatedQueryLPM:StoreQueryLPM,
# StoreColdOpen:StoreFullOpen and Figure4Materialized:Figure4Scan
# cross-row walls, via scripts/bench_compare.go (see the bench-gate
# job in .github/workflows/ci.yml).
set -euo pipefail

cd "$(dirname "$0")/.."

BENCHTIME="${BENCHTIME:-2x}"
FILTER="${BENCH_FILTER:-BenchmarkEngineThroughput\$|BenchmarkRunWindowParallel|BenchmarkRunStreaming|BenchmarkStoreIngest\$|BenchmarkStoreIngestInstrumented\$|BenchmarkStoreIngestGroupCommit\$|BenchmarkStoreQueryLPM\$|BenchmarkQueryEnriched\$|BenchmarkFederatedQueryLPM\$|BenchmarkCompactTiered\$|BenchmarkRuleMatch\$|BenchmarkRuleMatchBaseline\$|BenchmarkStoreColdOpen\$|BenchmarkStoreFullOpen\$|BenchmarkFigure4Scan\$|BenchmarkFigure4Materialized\$}"
OUT="${BENCH_OUT:-BENCH_$(date +%Y%m%d).json}"
RAW="$(mktemp)"
trap 'rm -f "$RAW"' EXIT

go test -run '^$' -bench "$FILTER" -benchmem -benchtime="$BENCHTIME" . | tee "$RAW"

{
  printf '{\n'
  printf '  "date": "%s",\n' "$(date -u +%Y-%m-%dT%H:%M:%SZ)"
  printf '  "go": "%s",\n' "$(go version | sed 's/"/\\"/g')"
  printf '  "cpus": %s,\n' "$(nproc)"
  printf '  "benchtime": "%s",\n' "$BENCHTIME"
  if [ -n "${BENCH_NOTES:-}" ]; then
    printf '  "notes": "%s",\n' "$(printf '%s' "$BENCH_NOTES" | sed 's/"/\\"/g')"
  fi
  printf '  "benchmarks": [\n'
  awk '
    /^Benchmark/ {
      name = $1; iters = $2; ns = ""; bytes = ""; allocs = ""
      for (i = 3; i <= NF; i++) {
        if ($(i) == "ns/op")     ns = $(i-1)
        if ($(i) == "B/op")      bytes = $(i-1)
        if ($(i) == "allocs/op") allocs = $(i-1)
      }
      if (ns == "") next
      if (n++) printf ",\n"
      printf "    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, iters, ns
      if (bytes != "")  printf ", \"bytes_per_op\": %s", bytes
      if (allocs != "") printf ", \"allocs_per_op\": %s", allocs
      printf "}"
    }
    END { if (n) printf "\n" }
  ' "$RAW"
  printf '  ]\n'
  printf '}\n'
} > "$OUT"

echo "wrote $OUT"
