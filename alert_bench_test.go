package bgpblackholing

// The alerting performance wall: live inference over a pre-materialised
// day of updates with a 100-rule alerting hub on the event-close hook
// (BenchmarkRuleMatch) must stay within 1.3x of the bare engine
// (BenchmarkRuleMatchBaseline). scripts/bench_compare.go enforces the
// ratio in CI; the rule set mixes every match dimension — prefix modes,
// origins, communities, durations and verdict conditions — so the
// compiled index, not a lucky subset, is what gets measured.

import (
	"fmt"
	"testing"

	"bgpblackholing/internal/core"
	"bgpblackholing/internal/stream"
	"bgpblackholing/internal/workload"
)

// benchAlertRules builds a 100-rule set of realistic shape: watched
// customer blocks (covered), point lookups (exact and lpm), per-origin
// and per-community watches, duration floors and verdict conditions.
func benchRuleSpecs() []string {
	var specs []string
	for i := 0; i < 40; i++ { // customer /16s across two /8s
		specs = append(specs, fmt.Sprintf("name=net%d prefix=%d.%d.0.0/16 mode=covered", i, 10+20*(i%2), i))
	}
	for i := 0; i < 20; i++ { // exact host routes
		specs = append(specs, fmt.Sprintf("name=host%d prefix=10.%d.7.%d/32 mode=exact", i, i, i+1))
	}
	for i := 0; i < 15; i++ { // who blackholes this address
		specs = append(specs, fmt.Sprintf("name=lpm%d prefix=31.0.%d.%d mode=lpm", i, i, i+1))
	}
	for i := 0; i < 10; i++ {
		specs = append(specs, fmt.Sprintf("name=asn%d origin=%d", i, 64500+i))
	}
	for i := 0; i < 5; i++ {
		specs = append(specs, fmt.Sprintf("name=comm%d community=%d:666", i, 64500+i))
	}
	for i := 0; i < 5; i++ {
		specs = append(specs, fmt.Sprintf("name=dur%d min-duration=%dm", i, 10*(i+1)))
	}
	for i := 0; i < 5; i++ {
		specs = append(specs, "name=verdict"+fmt.Sprint(i)+" verdict=illegitimate,questionable")
	}
	return specs
}

func benchAlertRules(b *testing.B) []AlertRule {
	b.Helper()
	specs := benchRuleSpecs()
	rules := make([]AlertRule, len(specs))
	for i, s := range specs {
		r, err := ParseRule(s)
		if err != nil {
			b.Fatal(err)
		}
		rules[i] = r
	}
	if len(rules) != 100 {
		b.Fatalf("rule set has %d rules, want 100", len(rules))
	}
	return rules
}

// benchAlertElems pre-materialises one late day of updates, the same
// workload BenchmarkEngineThroughput replays.
func benchAlertElems(b *testing.B, p *Pipeline) []*stream.Elem {
	b.Helper()
	intents := p.Scenario.IntentsForDay(845)
	obs, _ := workload.Materialize(p.Deploy, p.Topo, intents, p.Opts.Seed)
	elems, err := stream.Collect(stream.FromObservations(obs))
	if err != nil {
		b.Fatal(err)
	}
	if len(elems) == 0 {
		b.Fatal("no updates")
	}
	return elems
}

// BenchmarkRuleMatchBaseline replays the day through the bare engine:
// the no-rules live path.
func BenchmarkRuleMatchBaseline(b *testing.B) {
	p := benchPipeline(b)
	elems := benchAlertElems(b, p)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		engine := core.NewEngine(p.Dict, p.Topo)
		for _, el := range elems {
			engine.Process(el)
		}
	}
}

// BenchmarkRuleMatch replays the same day with a 100-rule hub (with
// detection-time enrichment for the verdict rules) publishing on every
// event close. Hub and annotator are rebuilt per iteration alongside
// the engine: a shared annotator would accumulate cache entries for
// every iteration's distinct event pointers and the benchmark would
// measure cache growth, not matching.
func BenchmarkRuleMatch(b *testing.B) {
	p := benchPipeline(b)
	elems := benchAlertElems(b, p)
	rules := benchAlertRules(b)
	reg := p.RPKIRegistry()
	var published uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		hub, err := NewAlertHub(rules, AlertHubConfig{
			Annotator: NewAnnotator(reg, p.Dict),
			RingSize:  64,
		})
		if err != nil {
			b.Fatal(err)
		}
		engine := core.NewEngine(p.Dict, p.Topo)
		engine.OnEventClose = hub.Publish
		for _, el := range elems {
			engine.Process(el)
		}
		published = hub.Stats().Published
		hub.Close()
	}
	b.StopTimer()
	if published == 0 {
		b.Fatal("no events reached the hub")
	}
}
