package bgpblackholing

// Slow-consumer backpressure: a deliberately stalled subscriber must
// never block or slow inference, its queue must stay at the configured
// bound, the policy (drop-oldest or evict) must fire and be counted,
// and its pump goroutine must exit. All assertions hold under -race.

import (
	"context"
	"net/netip"
	"runtime"
	"testing"
	"time"
)

// stallEvent builds a minimal closed event; fanout does not inspect it.
func stallEvent(i int) *Event {
	start := time.Date(2015, 1, 1, 0, 0, 0, 0, time.UTC).Add(time.Duration(i) * time.Minute)
	return &Event{
		Prefix: netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(i >> 8), byte(i), 0}), 24),
		Start:  start,
		End:    start.Add(time.Minute),
	}
}

// TestStalledSubscriberDropOldest feeds a bounded subscription whose
// consumer never reads: the queue must cap at the bound, the overflow
// must be dropped oldest-first and counted, and every event must be
// accounted for as either delivered or dropped once the consumer
// finally drains.
func TestStalledSubscriberDropOldest(t *testing.T) {
	p := smallPipeline(t)
	const bound = 8
	det := p.NewDetector(WithSubscriberQueueBound(bound, DropOldest))
	ch := det.Subscribe()

	const total = 500
	for i := 0; i < total; i++ {
		det.fanout(stallEvent(i))
		if i%50 == 0 {
			for _, ss := range det.SubscriberStats() {
				if ss.Queued > bound {
					t.Fatalf("queue grew to %d, bound is %d", ss.Queued, bound)
				}
				if ss.Bound != bound {
					t.Fatalf("SubscriberStats bound = %d, want %d", ss.Bound, bound)
				}
			}
		}
	}
	det.closeSubs()

	received := 0
	var first *Event
	for ev := range ch {
		if first == nil {
			first = ev
		}
		received++
	}
	dropped := det.Metrics().SubscriberDrops
	if received+int(dropped) != total {
		t.Fatalf("conservation broken: %d received + %d dropped != %d pushed", received, dropped, total)
	}
	if dropped == 0 {
		t.Fatal("stalled consumer behind a bound of 8 dropped nothing")
	}
	// The channel (cap 16) plus one in-flight pump slot plus the bounded
	// queue is all a stalled consumer can ever hold.
	if max := bound + 16 + 1; received > max {
		t.Fatalf("stalled consumer held %d events, bounded plumbing allows at most %d", received, max)
	}
	// Drop-oldest keeps the most recent window: the first delivered
	// event can be old (it raced into the channel before the stall bit),
	// but never one that was counted dropped after delivery started.
	if first == nil {
		t.Fatal("no events delivered at all")
	}
}

// TestStalledSubscriberEvict proves the evict policy: the lagging
// subscription is cut loose — channel closed early, fanout stops
// visiting it — and its pump goroutine exits even though the consumer
// never read a single event.
func TestStalledSubscriberEvict(t *testing.T) {
	p := smallPipeline(t)
	before := runtime.NumGoroutine()
	det := p.NewDetector(WithSubscriberQueueBound(4, Evict))
	ch := det.Subscribe()

	evicted := false
	for i := 0; i < 10000; i++ {
		det.fanout(stallEvent(i))
		if det.Metrics().SubscriberEvictions == 1 {
			evicted = true
			break
		}
	}
	if !evicted {
		t.Fatal("stalled subscriber was never evicted")
	}
	if n := len(det.SubscriberStats()); n != 0 {
		t.Fatalf("%d subscriptions still registered after eviction", n)
	}
	// Later events must not resurrect the subscription.
	det.fanout(stallEvent(10001))
	if got := det.Metrics().SubscriberEvictions; got != 1 {
		t.Fatalf("evictions = %d after post-eviction fanout, want 1", got)
	}

	// The channel must close without the consumer draining the backlog
	// it never read (the range ends; the test would time out otherwise).
	for range ch {
	}

	// The pump goroutine must be gone.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("pump goroutine leak: %d goroutines, started with %d", runtime.NumGoroutine(), before)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestStalledSubscriberDoesNotBlockRun runs a real replay window with a
// bounded subscription nobody reads: inference must run to completion
// and produce its full result, with the overflow dropped rather than
// the engine blocked.
func TestStalledSubscriberDoesNotBlockRun(t *testing.T) {
	p := smallPipeline(t)
	const bound = 4
	det := p.NewDetector(WithSubscriberQueueBound(bound, DropOldest))
	ch := det.Subscribe() // never read until Run has returned

	res, err := det.Run(context.Background(), p.Replay(840, 845))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Events) == 0 {
		t.Fatal("replay window produced no events")
	}
	received := 0
	for range ch {
		received++
	}
	dropped := int(det.Metrics().SubscriberDrops)
	if received+dropped != len(res.Events) {
		t.Fatalf("conservation broken: %d received + %d dropped != %d closed", received, dropped, len(res.Events))
	}
	if max := bound + 16 + 1; received > max {
		t.Fatalf("stalled consumer held %d events, bounded plumbing allows at most %d", received, max)
	}
	if dropped == 0 && len(res.Events) > bound+16+1 {
		t.Fatal("window overflowed the bounded plumbing but nothing was dropped")
	}
}

// TestSubscribeUnboundedDefault pins the compatibility contract: a
// detector built without options keeps today's unbounded queues, so a
// stalled replay consumer loses nothing.
func TestSubscribeUnboundedDefault(t *testing.T) {
	p := smallPipeline(t)
	det := p.NewDetector()
	ch := det.Subscribe()
	const total = 300
	for i := 0; i < total; i++ {
		det.fanout(stallEvent(i))
	}
	det.closeSubs()
	received := 0
	for range ch {
		received++
	}
	if received != total {
		t.Fatalf("unbounded subscription delivered %d of %d events", received, total)
	}
	if got := det.Metrics().SubscriberDrops; got != 0 {
		t.Fatalf("unbounded subscription dropped %d events", got)
	}
}

// TestLiveSourceBufferLimit proves the same bounding on the live feed's
// publish buffer.
func TestLiveSourceBufferLimit(t *testing.T) {
	src := NewLiveSource()
	src.SetBufferLimit(10)
	for i := 0; i < 100; i++ {
		src.PublishUpdate(&Update{Time: time.Unix(int64(i), 0)}, "test", PlatformRIS)
	}
	if got := src.Pending(); got != 10 {
		t.Fatalf("pending = %d, want the limit 10", got)
	}
	if got := src.Dropped(); got != 90 {
		t.Fatalf("dropped = %d, want 90", got)
	}
	src.Close()
	// The survivors are the newest 10 elements, in order.
	want := int64(90)
	for {
		el, err := src.Next()
		if err != nil {
			break
		}
		if el.Update.Time.Unix() != want {
			t.Fatalf("survivor at %d, want %d (drop-oldest order)", el.Update.Time.Unix(), want)
		}
		want++
	}
	if want != 100 {
		t.Fatalf("drained up to %d, want 100", want)
	}
}
