package bgpblackholing

// RedialSource — a self-healing live feed. Real collector sessions
// reset: peers reboot, transit flaps, daemons hang. This source wraps
// DialBGP in a reconnect loop — timeout-bounded dials, exponential
// backoff with jitter, an optional retry budget — and re-seeds the
// element stream from a RIB dump after every re-established session,
// so the consuming Detector recovers blackholing state announced while
// the session was down (§4.2's table-dump initialization, replayed
// through the normal stream path on the consumer's goroutine).

import (
	"context"
	"errors"
	"fmt"
	"io"
	"log/slog"
	"math/rand"
	"net"
	"net/netip"
	"sync"
	"sync/atomic"
	"time"

	"bgpblackholing/internal/mrt"
	"bgpblackholing/internal/stream"
)

// ConnState is one phase of a RedialSource's connection lifecycle.
type ConnState int

const (
	// ConnIdle: not yet started (before the first Next call).
	ConnIdle ConnState = iota
	// ConnDialing: a connect + handshake attempt is in flight.
	ConnDialing
	// ConnEstablished: a session is up and its updates are flowing.
	ConnEstablished
	// ConnReseeding: a re-established session is replaying the RIB
	// dump into the stream before (well, while) live updates resume.
	ConnReseeding
	// ConnBackoff: the last attempt or session failed; waiting before
	// redialing.
	ConnBackoff
	// ConnGaveUp: the retry budget is exhausted; the feed has ended.
	ConnGaveUp
	// ConnClosed: Close ended the feed.
	ConnClosed
)

func (s ConnState) String() string {
	switch s {
	case ConnIdle:
		return "idle"
	case ConnDialing:
		return "dialing"
	case ConnEstablished:
		return "established"
	case ConnReseeding:
		return "reseeding"
	case ConnBackoff:
		return "backoff"
	case ConnGaveUp:
		return "gave-up"
	case ConnClosed:
		return "closed"
	}
	return fmt.Sprintf("state(%d)", int(s))
}

// ConnTransition is one structured connection-state change, delivered
// to RedialConfig.OnTransition.
type ConnTransition struct {
	From, To ConnState
	// Time stamps the transition.
	Time time.Time
	// Attempt counts consecutive failed dials (1-based) on transitions
	// into ConnBackoff / ConnGaveUp; 0 elsewhere.
	Attempt int
	// Err carries the failure driving a ConnBackoff or ConnGaveUp
	// transition, or a non-fatal reseed failure on the transition from
	// ConnReseeding back to ConnEstablished.
	Err error
	// Wait is the backoff delay chosen on a ConnBackoff transition.
	Wait time.Duration
}

// RedialConfig configures a RedialSource.
type RedialConfig struct {
	// Session is the local BGP identity for each dial, including the
	// DialTimeout bounding every connect + handshake.
	Session BGPConfig
	// CollectorName and Platform label every published element.
	CollectorName string
	Platform      Platform

	// InitialBackoff is the wait after the first failure (default
	// 500ms); each further consecutive failure multiplies it by
	// Multiplier (default 2) up to MaxBackoff (default 30s).
	InitialBackoff time.Duration
	MaxBackoff     time.Duration
	Multiplier     float64
	// Jitter spreads each backoff uniformly within ±Jitter×delay
	// (0..1), so a fleet of dialers does not thunder back in lockstep.
	// Default 0.2; negative disables.
	Jitter float64
	// MaxRetries caps consecutive failed dials before the source gives
	// up and ends the feed with an error. 0 retries forever.
	MaxRetries int

	// Reseed, when non-nil, is invoked after every re-established
	// session (not the first — initial seeding is the caller's
	// SeedFromRIBDump): it returns an MRT TABLE_DUMP_V2 archive whose
	// entries are replayed into the stream ahead of the resumed live
	// updates, restoring blackholing state announced during the
	// outage. A reseed failure is reported via OnTransition and the
	// session continues without it.
	Reseed func() (io.ReadCloser, error)

	// OnTransition, when non-nil, receives every connection-state
	// change, synchronously from the connection goroutine — keep it
	// fast and do not call back into the source. When nil, transitions
	// are logged through Logger (or slog.Default) instead, so session
	// resets are never silent.
	OnTransition func(ConnTransition)

	// Logger receives the default transition log lines when
	// OnTransition is nil. Nil means slog.Default().
	Logger *slog.Logger

	// dial replaces DialBGPContext in tests.
	dial func(ctx context.Context, addr string, cfg BGPConfig) (*BGPSession, error)
}

// RedialSource is a Source fed by a BGP session that redials itself.
// Create with NewRedialSource; the connection loop starts lazily at
// the first Next call and runs until Close, a retry-budget exhaustion,
// or a listener that is gone for good.
type RedialSource struct {
	addr string
	cfg  RedialConfig
	live *stream.Live

	start     sync.Once
	closeOnce sync.Once
	closed    chan struct{}

	mu       sync.Mutex
	state    ConnState
	terminal error
	cur      *BGPSession // in-flight session, closed by Close

	// Session-lifecycle counters, bumped inside transition so they
	// cover both custom OnTransition callbacks and the default logger.
	dials          atomic.Uint64
	establishes    atomic.Uint64
	reseeds        atomic.Uint64
	reseedFailures atomic.Uint64
	backoffs       atomic.Uint64
	gaveUp         atomic.Uint64
}

// RedialStats is a snapshot of one source's session-lifecycle
// counters, served on /stats and /metrics.
type RedialStats struct {
	Addr  string `json:"addr"`
	State string `json:"state"`
	// Dials counts connect+handshake attempts; Establishes counts the
	// ones that produced a session.
	Dials       uint64 `json:"dials"`
	Establishes uint64 `json:"establishes"`
	// Reseeds counts RIB-dump replays after re-established sessions;
	// ReseedFailures the ones that failed (the session continued).
	Reseeds        uint64 `json:"reseeds"`
	ReseedFailures uint64 `json:"reseed_failures"`
	// Backoffs counts waits after failed dials or lost sessions.
	Backoffs uint64 `json:"backoffs"`
	// GaveUp is 1 once the retry budget is exhausted and the feed has
	// ended with a terminal error.
	GaveUp uint64 `json:"gave_up"`
}

// Addr returns the collector address this source dials.
func (r *RedialSource) Addr() string { return r.addr }

// Stats snapshots the source's session-lifecycle counters. Safe to
// call concurrently with the connection loop.
func (r *RedialSource) Stats() RedialStats {
	return RedialStats{
		Addr:           r.addr,
		State:          r.State().String(),
		Dials:          r.dials.Load(),
		Establishes:    r.establishes.Load(),
		Reseeds:        r.reseeds.Load(),
		ReseedFailures: r.reseedFailures.Load(),
		Backoffs:       r.backoffs.Load(),
		GaveUp:         r.gaveUp.Load(),
	}
}

// NewRedialSource returns a reconnecting live source dialing addr.
func NewRedialSource(addr string, cfg RedialConfig) *RedialSource {
	if cfg.InitialBackoff <= 0 {
		cfg.InitialBackoff = 500 * time.Millisecond
	}
	if cfg.MaxBackoff <= 0 {
		cfg.MaxBackoff = 30 * time.Second
	}
	if cfg.Multiplier <= 1 {
		cfg.Multiplier = 2
	}
	if cfg.Jitter == 0 {
		cfg.Jitter = 0.2
	}
	if cfg.dial == nil {
		cfg.dial = DialBGPContext
	}
	if cfg.OnTransition == nil {
		cfg.OnTransition = transitionLogger(addr, cfg.Logger)
	}
	return &RedialSource{
		addr:   addr,
		cfg:    cfg,
		live:   stream.NewLive(),
		closed: make(chan struct{}),
	}
}

// State reports the connection loop's current phase.
func (r *RedialSource) State() ConnState {
	r.mu.Lock()
	defer r.mu.Unlock()
	return r.state
}

// Next blocks until an element arrives from the current session (or a
// reseed replay). The first call starts the connection loop. When the
// feed ends because the retry budget ran out, Next surfaces that
// terminal error instead of a clean io.EOF.
func (r *RedialSource) Next() (*Elem, error) {
	r.start.Do(func() { go r.loop() })
	el, err := r.live.Next()
	if err != nil && errors.Is(err, io.EOF) {
		r.mu.Lock()
		terminal := r.terminal
		r.mu.Unlock()
		if terminal != nil {
			return nil, terminal
		}
	}
	return el, err
}

// Close ends the feed: the in-flight dial or read is abandoned,
// pending elements still drain, then the consumer sees io.EOF.
func (r *RedialSource) Close() {
	r.closeOnce.Do(func() {
		close(r.closed)
		r.mu.Lock()
		cur := r.cur
		r.mu.Unlock()
		if cur != nil {
			cur.Close() // unblock a read parked on the session
		}
	})
}

// attach wires run-scoped cancellation exactly like LiveSource: a
// consumer parked in Next is unblocked when the run's context ends.
func (r *RedialSource) attach(ctx context.Context, runDone <-chan struct{}) {
	r.live.ClearInterrupt()
	done := ctx.Done()
	if done == nil {
		return
	}
	go func() {
		select {
		case <-done:
			r.live.Interrupt()
		case <-runDone:
		}
	}()
}

func (r *RedialSource) isClosed() bool {
	select {
	case <-r.closed:
		return true
	default:
		return false
	}
}

// transitionLogger is the default OnTransition: structured slog lines
// at a severity matching the transition (routine phases at debug/info,
// failures at warn, terminal give-up at error).
func transitionLogger(addr string, logger *slog.Logger) func(ConnTransition) {
	return func(tr ConnTransition) {
		if logger == nil {
			logger = slog.Default()
		}
		attrs := []any{"source", addr, "from", tr.From.String(), "to", tr.To.String()}
		switch tr.To {
		case ConnDialing:
			logger.Debug("redial: dialing", attrs...)
		case ConnBackoff:
			logger.Warn("redial: backing off",
				append(attrs, "attempt", tr.Attempt, "wait", tr.Wait.String(), "err", errString(tr.Err))...)
		case ConnGaveUp:
			logger.Error("redial: retry budget exhausted",
				append(attrs, "attempt", tr.Attempt, "err", errString(tr.Err))...)
		case ConnEstablished:
			if tr.Err != nil { // non-fatal reseed failure
				logger.Warn("redial: reseed failed, continuing live",
					append(attrs, "err", tr.Err.Error())...)
				return
			}
			logger.Info("redial: session established", attrs...)
		default:
			logger.Info("redial: "+tr.To.String(), attrs...)
		}
	}
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// transition records a state change, bumps the lifecycle counters, and
// notifies OnTransition (without holding the lock — the callback may
// inspect State of other sources).
func (r *RedialSource) transition(to ConnState, attempt int, err error, wait time.Duration) {
	r.mu.Lock()
	from := r.state
	r.state = to
	r.mu.Unlock()
	switch to {
	case ConnDialing:
		r.dials.Add(1)
	case ConnEstablished:
		if from == ConnDialing {
			r.establishes.Add(1)
		}
		if from == ConnReseeding && err != nil {
			r.reseedFailures.Add(1)
		}
	case ConnReseeding:
		r.reseeds.Add(1)
	case ConnBackoff:
		r.backoffs.Add(1)
	case ConnGaveUp:
		r.gaveUp.Store(1)
	}
	if r.cfg.OnTransition != nil {
		r.cfg.OnTransition(ConnTransition{
			From: from, To: to, Time: time.Now(),
			Attempt: attempt, Err: err, Wait: wait,
		})
	}
}

// backoffFor computes the jittered exponential delay for the given
// consecutive-failure count (1-based).
func (r *RedialSource) backoffFor(attempt int) time.Duration {
	d := float64(r.cfg.InitialBackoff)
	for i := 1; i < attempt; i++ {
		d *= r.cfg.Multiplier
		if d >= float64(r.cfg.MaxBackoff) {
			break
		}
	}
	d = min(d, float64(r.cfg.MaxBackoff))
	if r.cfg.Jitter > 0 {
		d *= 1 + r.cfg.Jitter*(2*rand.Float64()-1)
	}
	return time.Duration(d)
}

// loop is the connection goroutine: dial, consume, back off, repeat.
func (r *RedialSource) loop() {
	defer r.live.Close()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	go func() {
		<-r.closed
		cancel()
	}()

	attempt, sessions := 0, 0
	for {
		if r.isClosed() {
			r.transition(ConnClosed, 0, nil, 0)
			return
		}
		r.transition(ConnDialing, 0, nil, 0)
		sess, err := r.cfg.dial(ctx, r.addr, r.cfg.Session)
		if err != nil {
			if r.isClosed() {
				r.transition(ConnClosed, 0, nil, 0)
				return
			}
			attempt++
			if r.cfg.MaxRetries > 0 && attempt > r.cfg.MaxRetries {
				r.mu.Lock()
				r.terminal = fmt.Errorf("bgpblackholing: redial %s: retry budget (%d) exhausted: %w", r.addr, r.cfg.MaxRetries, err)
				r.mu.Unlock()
				r.transition(ConnGaveUp, attempt, err, 0)
				return
			}
			if !r.waitBackoff(attempt, err) {
				return
			}
			continue
		}
		attempt = 0
		sessions++
		r.mu.Lock()
		r.cur = sess
		r.mu.Unlock()
		if r.isClosed() { // Close raced the dial; it may have missed cur
			sess.Close()
			r.transition(ConnClosed, 0, nil, 0)
			return
		}
		r.transition(ConnEstablished, 0, nil, 0)
		if sessions > 1 && r.cfg.Reseed != nil {
			r.transition(ConnReseeding, 0, nil, 0)
			r.transition(ConnEstablished, 0, r.reseed(), 0)
		}
		readErr := r.consume(sess)
		sess.Close()
		r.mu.Lock()
		r.cur = nil
		r.mu.Unlock()
		if r.isClosed() {
			r.transition(ConnClosed, 0, nil, 0)
			return
		}
		// A lost session redials after one base backoff: enough to
		// avoid a hot loop against a peer that accepts and instantly
		// drops, without treating an outage after hours of service as
		// a consecutive failure.
		if !r.waitBackoff(1, readErr) {
			return
		}
	}
}

// waitBackoff announces and sleeps one backoff, reporting false when
// Close ended the wait.
func (r *RedialSource) waitBackoff(attempt int, cause error) bool {
	wait := r.backoffFor(attempt)
	r.transition(ConnBackoff, attempt, cause, wait)
	select {
	case <-time.After(wait):
		return true
	case <-r.closed:
		r.transition(ConnClosed, 0, nil, 0)
		return false
	}
}

// consume publishes the session's updates until it ends, returning the
// read error that ended it.
func (r *RedialSource) consume(sess *BGPSession) error {
	peerAS := sess.PeerASN()
	var peerIP netip.Addr
	if host, _, err := net.SplitHostPort(r.addr); err == nil {
		peerIP, _ = netip.ParseAddr(host)
	}
	for {
		u, err := sess.ReadUpdate()
		if err != nil {
			return err
		}
		u.PeerAS = peerAS
		if peerIP.IsValid() {
			u.PeerIP = peerIP
		}
		r.live.Publish(&stream.Elem{Collector: r.cfg.CollectorName, Platform: r.cfg.Platform, Update: u})
	}
}

// reseed replays the configured RIB dump into the stream; the entries
// are delivered on the consumer's goroutine like any other element, so
// the engine never sees concurrent seeding.
func (r *RedialSource) reseed() error {
	rc, err := r.cfg.Reseed()
	if err != nil {
		return fmt.Errorf("reseed: %w", err)
	}
	defer rc.Close()
	src := stream.FromMRT(mrt.NewReader(rc), r.cfg.CollectorName, r.cfg.Platform)
	for {
		el, err := src.Next()
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, mrt.ErrTruncated) {
				return nil // end of archive, or the usual truncated tail
			}
			return fmt.Errorf("reseed: %w", err)
		}
		r.live.Publish(el)
	}
}
