package bgpblackholing

// Extension benchmarks beyond the paper's tables and figures: the §11
// compliance scorecard and the §10 ground-truth validation, plus the raw
// engine throughput (updates/second through Classify+Process), which is
// what determines whether the methodology can run live on a full
// BGPStream firehose as §10's measurement campaign requires.

import (
	"fmt"
	"net/netip"
	"testing"
	"time"

	"bgpblackholing/internal/analysis"
	"bgpblackholing/internal/bgp"
	"bgpblackholing/internal/compliance"
	"bgpblackholing/internal/core"
	"bgpblackholing/internal/finegrained"
	"bgpblackholing/internal/rpki"
	"bgpblackholing/internal/stream"
	"bgpblackholing/internal/topology"
	"bgpblackholing/internal/workload"
)

// BenchmarkComplianceScorecard audits the window's events against
// RFC 7999 / RFC 5635 best practices (§11).
func BenchmarkComplianceScorecard(b *testing.B) {
	res := benchWindow(b)
	b.ResetTimer()
	var rep *compliance.Report
	for i := 0; i < b.N; i++ {
		rep = compliance.AuditEvents(res.Events)
	}
	printReport("Extension: RFC 7999/5635 compliance", rep.Format())
}

// BenchmarkGroundTruthValidation scores inference recall against the
// generating intents (§10's passive validation found 99.5% route-server
// visibility; overall the inference is a lower bound, §5.2).
func BenchmarkGroundTruthValidation(b *testing.B) {
	res := benchWindow(b)
	// Compare like with like: events starting in the same final week the
	// retained intents cover.
	cutoff := res.WindowEnd.AddDate(0, 0, -7)
	var weekEvents []*core.Event
	for _, ev := range res.Events {
		if !ev.Start.Before(cutoff) {
			weekEvents = append(weekEvents, ev)
		}
	}
	b.ResetTimer()
	var v analysis.Validation
	for i := 0; i < b.N; i++ {
		v = analysis.Validate(weekEvents, res.LastDayIntents)
	}
	body := fmt.Sprintf("intents=%d detected=%d (recall %.0f%%)\n", v.Intents, v.DetectedPrefixOnsets, 100*v.Recall())
	body += fmt.Sprintf("route-server intents=%d detected=%d (recall %.0f%%, paper: 99.5%%)\n",
		v.IXPIntents, v.DetectedIXPIntents, 100*v.IXPRecall())
	body += fmt.Sprintf("inferred prefixes outside ground truth: %d\n", v.FalsePrefixes)
	printReport("Extension: ground-truth validation", body)
}

// BenchmarkEngineThroughput measures raw inference speed over a
// pre-materialised day of updates — the live-deployment budget.
func BenchmarkEngineThroughput(b *testing.B) {
	p := benchPipeline(b)
	intents := p.Scenario.IntentsForDay(845)
	obs, _ := workload.Materialize(p.Deploy, p.Topo, intents, p.Opts.Seed)
	elems, err := stream.Collect(stream.FromObservations(obs))
	if err != nil {
		b.Fatal(err)
	}
	if len(elems) == 0 {
		b.Fatal("no updates")
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		engine := core.NewEngine(p.Dict, p.Topo)
		for _, el := range elems {
			engine.Process(el)
		}
	}
	b.StopTimer()
	nsPerUpdate := float64(b.Elapsed().Nanoseconds()) / float64(b.N) / float64(len(elems))
	printReport("Extension: engine throughput",
		fmt.Sprintf("%d updates/day replay, %.0f ns/update (~%.1fM updates/s single-core)\n",
			len(elems), nsPerUpdate, 1e3/nsPerUpdate))
}

// BenchmarkExtensionFineGrained runs the §11 future-work comparison:
// classic RTBH vs port-scoped fine-grained blackholing on the biggest
// IXP's fabric — same attack suppression, radically different collateral
// damage to legitimate traffic.
func BenchmarkExtensionFineGrained(b *testing.B) {
	p := benchPipeline(b)
	var x *topology.IXP
	for _, cand := range p.Topo.BlackholingIXPs() {
		if x == nil || len(cand.Members) > len(x.Members) {
			x = cand
		}
	}
	honoring := map[bgp.ASN]bool{}
	for i, m := range x.Members {
		if i%5 != 0 {
			honoring[m] = true
		}
	}
	victim := netip.MustParsePrefix("31.0.0.1/32")
	scope := finegrained.Scope{Port: 80, Protocol: 6}
	start := time.Date(2017, 3, 20, 0, 0, 0, 0, time.UTC)
	week := 7 * 24 * time.Hour
	cfg := finegrained.DefaultSimConfig()
	b.ResetTimer()
	body := ""
	for i := 0; i < b.N; i++ {
		body = ""
		for _, pol := range []finegrained.Policy{finegrained.PolicyClassicRTBH, finegrained.PolicyFineGrained} {
			series := finegrained.Simulate(x, victim, scope, honoring, pol, start, week, cfg)
			body += finegrained.Summarize(pol, series).Format() + "\n"
		}
	}
	printReport("Extension: fine-grained blackholing (§11)", body)
}

// BenchmarkExtensionRPKI reports the RPKI deployment picture the
// blackholing ecosystem sees (§2): partial coverage, and ROAs whose
// maxLength strands their own owners' /32 mitigation requests.
func BenchmarkExtensionRPKI(b *testing.B) {
	p := benchPipeline(b)
	reg, ok := p.Deploy.RPKI.(*rpki.Registry)
	if !ok {
		b.Fatal("pipeline has no RPKI registry")
	}
	b.ResetTimer()
	var st rpki.CoverageStats
	for i := 0; i < b.N; i++ {
		st = reg.Stats(p.Topo)
	}
	body := fmt.Sprintf("ROAs cover %d/%d ASes; host-route blackholing validates for %d, stranded Invalid for %d\n",
		st.ASesCovered, st.ASesTotal, st.BlackholeFriendly, st.BlackholeStranded)
	printReport("Extension: RPKI origin validation (§2)", body)
}

// BenchmarkClassifyOnly isolates the per-update classification hot path.
func BenchmarkClassifyOnly(b *testing.B) {
	p := benchPipeline(b)
	intents := p.Scenario.IntentsForDay(845)
	obs, _ := workload.Materialize(p.Deploy, p.Topo, intents, p.Opts.Seed)
	if len(obs) == 0 {
		b.Fatal("no updates")
	}
	engine := core.NewEngine(p.Dict, p.Topo)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = engine.Classify(obs[i%len(obs)].Update)
	}
}
