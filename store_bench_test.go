package bgpblackholing

// Benchmarks for the persistent event store. Run with
//
//	go test -run '^$' -bench 'BenchmarkStoreIngest|BenchmarkStoreQueryLPM' -benchmem
//
// BenchmarkStoreIngest measures the append path (encode + checksummed
// log write + index insert); BenchmarkStoreQueryLPM measures indexed
// point queries, which must answer from the trie and postings alone —
// no replay, no raw update data.

import (
	"context"
	"fmt"
	"net/netip"
	"os"
	"sync"
	"testing"
	"time"

	"bgpblackholing/internal/analysis"
)

var storeBench struct {
	once     sync.Once
	events   []*Event
	pipeline *Pipeline
}

// storeBenchEvents materializes one replay window's events once, so
// ingest and query benchmarks work on realistic event shapes.
func storeBenchEvents(b *testing.B) []*Event {
	b.Helper()
	storeBench.once.Do(func() {
		p, err := NewPipeline(SmallOptions())
		if err != nil {
			panic(err)
		}
		res, err := p.NewDetector().Run(context.Background(), p.Replay(840, 850))
		if err != nil {
			panic(err)
		}
		storeBench.events = res.Events
		storeBench.pipeline = p
	})
	if len(storeBench.events) == 0 {
		b.Fatal("bench window produced no events")
	}
	return storeBench.events
}

// BenchmarkStoreIngest appends the window's events to a fresh store;
// ns/op is per event.
func BenchmarkStoreIngest(b *testing.B) {
	events := storeBenchEvents(b)
	st, err := OpenStore(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := st.Append(events[i%len(events)]); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if err := st.Sync(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkStoreIngestInstrumented is BenchmarkStoreIngest with the
// full telemetry seam attached (append counters + latency histogram,
// fsync/commit instruments, query observers). CI gates this at ≤1.15×
// the bare ingest row: the observability layer must stay near-free.
func BenchmarkStoreIngestInstrumented(b *testing.B) {
	events := storeBenchEvents(b)
	tel := NewTelemetry()
	st, err := OpenStoreWith(b.TempDir(), StoreOptions{Instruments: tel.StoreInstruments()})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	tel.ObserveStore(st)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := st.Append(events[i%len(events)]); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if err := st.Sync(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkStoreIngestGroupCommit is the append path under the
// group-commit durability policy (fsync every 64 records): the cost of
// bounded crash loss, to compare against the sync-free
// BenchmarkStoreIngest above and the per-append-fsync worst case.
func BenchmarkStoreIngestGroupCommit(b *testing.B) {
	events := storeBenchEvents(b)
	st, err := OpenStoreWith(b.TempDir(), StoreOptions{Sync: SyncPolicy{EveryN: 64}})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := st.Append(events[i%len(events)]); err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	if err := st.Sync(); err != nil {
		b.Fatal(err)
	}
}

// BenchmarkStoreQueryLPM answers longest-prefix-match point queries
// against a populated store: the acceptance gate for "no replay in the
// query path" — every answer comes from the in-memory trie.
func BenchmarkStoreQueryLPM(b *testing.B) {
	events := storeBenchEvents(b)
	st, err := OpenStore(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	if err := st.Append(events...); err != nil {
		b.Fatal(err)
	}
	addrs := make([]netip.Prefix, len(events))
	for i, ev := range events {
		a := ev.Prefix.Addr()
		addrs[i] = netip.PrefixFrom(a, a.BitLen())
	}
	b.ReportAllocs()
	b.ResetTimer()
	hits := 0
	for i := 0; i < b.N; i++ {
		res := st.Query(Query{Prefix: addrs[i%len(addrs)], Mode: PrefixLPM})
		hits += res.Total
	}
	b.StopTimer()
	if hits == 0 {
		b.Fatal("LPM queries found nothing")
	}
}

// BenchmarkQueryEnriched answers the same LPM point queries as
// BenchmarkStoreQueryLPM, but with Query.Enrich on — every hit pays
// annotation (indexed covering-ROA validation per inferred origin,
// dictionary lookups per community, verdict). The acceptance wall: this
// must stay within 3× BenchmarkStoreQueryLPM ns/op, which requires the
// registry's indexed CoveringROAs path (a linear ROA scan per origin
// would blow straight through it).
func BenchmarkQueryEnriched(b *testing.B) {
	events := storeBenchEvents(b)
	st, err := OpenStore(b.TempDir())
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	if err := st.Append(events...); err != nil {
		b.Fatal(err)
	}
	st.SetAnnotator(storeBench.pipeline.Annotator())
	addrs := make([]netip.Prefix, len(events))
	for i, ev := range events {
		a := ev.Prefix.Addr()
		addrs[i] = netip.PrefixFrom(a, a.BitLen())
	}
	b.ReportAllocs()
	b.ResetTimer()
	hits, annotated := 0, 0
	for i := 0; i < b.N; i++ {
		res := st.Query(Query{Prefix: addrs[i%len(addrs)], Mode: PrefixLPM, Enrich: true})
		hits += res.Total
		annotated += len(res.Annotations)
	}
	b.StopTimer()
	if hits == 0 || annotated == 0 {
		b.Fatal("enriched LPM queries found or annotated nothing")
	}
}

// BenchmarkFederatedQueryLPM answers the same LPM point queries as
// BenchmarkStoreQueryLPM, but federated: the window's events split
// across three local shards by the prefix plan, queried through a
// FederatedStore that fans out, heap-merges on RecordKey and sums the
// accounting. The acceptance wall: ≤5× BenchmarkStoreQueryLPM ns/op —
// federation costs three indexed lookups plus a merge, never a scan.
func BenchmarkFederatedQueryLPM(b *testing.B) {
	events := storeBenchEvents(b)
	plan := PrefixShardPlan{Bit: 8, N: 3}
	stores := make([]*Store, plan.Shards())
	for i := range stores {
		st, err := OpenStore(b.TempDir())
		if err != nil {
			b.Fatal(err)
		}
		defer st.Close()
		stores[i] = st
	}
	for _, ev := range events {
		if err := stores[plan.Shard(ev)].Append(ev); err != nil {
			b.Fatal(err)
		}
	}
	backends := make([]Backend, len(stores))
	for i, st := range stores {
		backends[i] = NewStoreBackend(st, nil).WithName(fmt.Sprintf("shard-%d", i))
	}
	fed := NewFederatedStore(backends...)
	addrs := make([]netip.Prefix, len(events))
	for i, ev := range events {
		a := ev.Prefix.Addr()
		addrs[i] = netip.PrefixFrom(a, a.BitLen())
	}
	ctx := context.Background()
	b.ReportAllocs()
	b.ResetTimer()
	hits := 0
	for i := 0; i < b.N; i++ {
		rs, err := fed.Records(ctx, Query{Prefix: addrs[i%len(addrs)], Mode: PrefixLPM})
		if err != nil {
			b.Fatal(err)
		}
		hits += rs.Total
	}
	b.StopTimer()
	if hits == 0 {
		b.Fatal("federated LPM queries found nothing")
	}
}

var coldBench struct {
	once  sync.Once
	dir   string
	start time.Time
	days  int
}

// coldBenchDir builds, once, an on-disk store of many sealed
// sidecar-backed segments, the shared fixture for the open-cost and
// figure4 benchmarks. The directory outlives the benchmark binary's
// temp handling on purpose: it is rebuilt per process, never reused.
func coldBenchDir(b *testing.B) string {
	b.Helper()
	coldBench.once.Do(func() {
		events := storeBenchEvents(b)
		dir, err := os.MkdirTemp("", "bhcoldbench")
		if err != nil {
			panic(err)
		}
		st, err := OpenStoreWith(dir, StoreOptions{MaxSegmentBytes: 16 << 10})
		if err != nil {
			panic(err)
		}
		if err := st.Append(events...); err != nil {
			panic(err)
		}
		stats := st.Stats()
		if err := st.Close(); err != nil {
			panic(err)
		}
		coldBench.dir = dir
		coldBench.start = stats.MinStart.UTC().Truncate(24 * time.Hour)
		coldBench.days = int(stats.MaxEnd.Sub(coldBench.start).Hours()/24) + 1
	})
	return coldBench.dir
}

// BenchmarkStoreFullOpen measures the classic open: every segment read
// and every record decoded and indexed. The denominator for the cold
// open wall below.
func BenchmarkStoreFullOpen(b *testing.B) {
	dir := coldBenchDir(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := OpenStoreWith(dir, StoreOptions{ReadOnly: true})
		if err != nil {
			b.Fatal(err)
		}
		if err := st.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStoreColdOpen measures the sidecar-backed open: sealed
// segments stay undecoded (the Stats check proves zero event records
// were touched), so open cost tracks segment count, not event count.
// CI gates this at ≤0.25× BenchmarkStoreFullOpen.
func BenchmarkStoreColdOpen(b *testing.B) {
	dir := coldBenchDir(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		st, err := OpenStoreWith(dir, StoreOptions{ReadOnly: true, ColdOpen: true, Mmap: true})
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.StopTimer()
			stats := st.Stats()
			if stats.OpenDecodedEvents != 0 || stats.SegmentsCold == 0 {
				b.Fatalf("cold open decoded %d events, %d cold segments; fixture sidecars missing",
					stats.OpenDecodedEvents, stats.SegmentsCold)
			}
			b.StartTimer()
		}
		if err := st.Close(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFigure4Scan computes the daily longitudinal series by the
// reference full scan over every stored event — the denominator for
// the materialized wall below.
func BenchmarkFigure4Scan(b *testing.B) {
	dir := coldBenchDir(b)
	st, err := OpenStoreWith(dir, StoreOptions{ReadOnly: true})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		series := analysis.Figure4Seq(st.s.All(), coldBench.start, coldBench.days)
		if len(series) != coldBench.days {
			b.Fatal("short series")
		}
	}
}

// BenchmarkFigure4Materialized answers the same series from the
// store's refcounted per-day aggregates: O(days) map lookups, no event
// scan. CI gates this at ≤0.1× BenchmarkFigure4Scan.
func BenchmarkFigure4Materialized(b *testing.B) {
	dir := coldBenchDir(b)
	st, err := OpenStoreWith(dir, StoreOptions{ReadOnly: true})
	if err != nil {
		b.Fatal(err)
	}
	defer st.Close()
	warm := st.Figure4(coldBench.start, coldBench.days)
	want := analysis.Figure4Seq(st.s.All(), coldBench.start, coldBench.days)
	for d := range want {
		if warm[d] != want[d] {
			b.Fatalf("day %d: materialized %+v != scan %+v", d, warm[d], want[d])
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		series := st.Figure4(coldBench.start, coldBench.days)
		if len(series) != coldBench.days {
			b.Fatal("short series")
		}
	}
}

// BenchmarkCompactTiered measures one tiered compaction pass over a
// store of many small same-partition segments: the merge runs, the
// marker-led atomic commit, and the in-place index swap. Store setup
// (ingest + segment rotation) is excluded from the timing.
func BenchmarkCompactTiered(b *testing.B) {
	events := storeBenchEvents(b)
	pol := CompactionPolicy{Partition: 30 * 24 * time.Hour, SizeRatio: 4, MinRun: 2}
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		st, err := OpenStoreWith(b.TempDir(), StoreOptions{MaxSegmentBytes: 32 << 10, Policy: pol})
		if err != nil {
			b.Fatal(err)
		}
		if err := st.Append(events...); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		stats, err := st.Compact(pol)
		if err != nil {
			b.Fatal(err)
		}
		b.StopTimer()
		if i == 0 && len(stats.Merged) == 0 {
			b.Fatal("tiered pass merged nothing; bench store shape degenerate")
		}
		if err := st.Close(); err != nil {
			b.Fatal(err)
		}
	}
}
