package bgpblackholing

// Scrape-and-parse coverage for the telemetry layer: /metrics serves
// valid Prometheus text exposition, every registered route gets
// request metrics, counters are monotonic across appends and queries,
// and histogram series satisfy the cumulative-bucket/sum/count
// invariants scrapers rely on.

import (
	"fmt"
	"io"
	"net"
	"net/http"
	"net/http/httptest"
	"net/netip"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"
)

// exposition is one parsed scrape: TYPE per family plus every sample
// line keyed by "name{labels}".
type exposition struct {
	types   map[string]string
	samples map[string]float64
	order   []string
}

func parseExposition(t *testing.T, body string) *exposition {
	t.Helper()
	exp := &exposition{types: map[string]string{}, samples: map[string]float64{}}
	for ln, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		switch {
		case strings.HasPrefix(line, "# HELP "):
			if len(strings.Fields(line)) < 3 {
				t.Fatalf("line %d: malformed HELP %q", ln+1, line)
			}
		case strings.HasPrefix(line, "# TYPE "):
			f := strings.Fields(line)
			if len(f) != 4 {
				t.Fatalf("line %d: malformed TYPE %q", ln+1, line)
			}
			switch f[3] {
			case "counter", "gauge", "histogram":
			default:
				t.Fatalf("line %d: unknown exposition type %q", ln+1, f[3])
			}
			exp.types[f[2]] = f[3]
		case strings.HasPrefix(line, "#"):
			t.Fatalf("line %d: unknown comment %q", ln+1, line)
		default:
			// A sample: name{labels} value — labels may contain spaces
			// inside quoted values, so split on the last space.
			i := strings.LastIndexByte(line, ' ')
			if i < 0 {
				t.Fatalf("line %d: malformed sample %q", ln+1, line)
			}
			key, vs := line[:i], line[i+1:]
			var v float64
			if vs == "+Inf" {
				v = 1e308
			} else {
				f, err := strconv.ParseFloat(vs, 64)
				if err != nil {
					t.Fatalf("line %d: unparseable value %q: %v", ln+1, vs, err)
				}
				v = f
			}
			if _, dup := exp.samples[key]; dup {
				t.Fatalf("line %d: duplicate sample %q", ln+1, key)
			}
			exp.samples[key] = v
			exp.order = append(exp.order, key)
		}
	}
	return exp
}

// get fails the test if the sample is absent.
func (e *exposition) get(t *testing.T, key string) float64 {
	t.Helper()
	v, ok := e.samples[key]
	if !ok {
		var near []string
		prefix, _, _ := strings.Cut(key, "{")
		for k := range e.samples {
			if strings.HasPrefix(k, prefix) {
				near = append(near, k)
			}
		}
		sort.Strings(near)
		t.Fatalf("sample %q missing; nearby: %v", key, near)
	}
	return v
}

// checkHistogram asserts the exposition invariants for one histogram
// series: cumulative non-decreasing buckets, a trailing +Inf bucket
// equal to _count, and a parseable _sum.
func (e *exposition) checkHistogram(t *testing.T, name, labels string) (count float64) {
	t.Helper()
	sub := name + "_bucket"
	if labels != "" {
		sub += "{" + labels + ","
	} else {
		sub += "{"
	}
	var prev float64
	var sawInf bool
	for _, key := range e.order {
		if !strings.HasPrefix(key, sub) {
			continue
		}
		v := e.samples[key]
		if v < prev {
			t.Fatalf("%s: bucket %q (%v) below predecessor (%v) — not cumulative", name, key, v, prev)
		}
		prev = v
		if strings.Contains(key, `le="+Inf"`) {
			sawInf = true
		}
	}
	if !sawInf {
		t.Fatalf("%s{%s}: no +Inf bucket", name, labels)
	}
	countKey, sumKey := name+"_count", name+"_sum"
	if labels != "" {
		countKey += "{" + labels + "}"
		sumKey += "{" + labels + "}"
	}
	count = e.get(t, countKey)
	if prev != count {
		t.Fatalf("%s{%s}: +Inf bucket %v != count %v", name, labels, prev, count)
	}
	e.get(t, sumKey)
	return count
}

// telemetryServer wires a fully-observed stack: instrumented store,
// detector, alert hub, an idle redial source, pprof, and the /metrics
// route.
func telemetryServer(t *testing.T) (*Telemetry, *Store, *httptest.Server) {
	t.Helper()
	tel := NewTelemetry()
	st, err := OpenStoreWith(t.TempDir(), StoreOptions{
		Sync:        SyncPolicy{EveryN: 2},
		Instruments: tel.StoreInstruments(),
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	tel.ObserveStore(st)

	p := smallPipeline(t)
	det := p.NewDetector()
	tel.ObserveDetector(det)

	hub, err := NewAlertHub(nil, AlertHubConfig{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(hub.Close)
	tel.ObserveHub(hub)

	src := NewRedialSource("192.0.2.1:179", RedialConfig{})
	tel.ObserveRedial(src)

	srv := httptest.NewServer(NewStoreHandlerWith(st, nil, HandlerOptions{
		Detector:      det,
		Hub:           hub,
		Telemetry:     tel,
		Pprof:         true,
		RedialSources: []*RedialSource{src},
	}))
	t.Cleanup(srv.Close)
	return tel, st, srv
}

func scrape(t *testing.T, srv *httptest.Server) *exposition {
	t.Helper()
	resp, err := http.Get(srv.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /metrics: %s", resp.Status)
	}
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain; version=0.0.4") {
		t.Fatalf("content type %q", ct)
	}
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return parseExposition(t, string(body))
}

func TestMetricsExposition(t *testing.T) {
	_, st, srv := telemetryServer(t)

	// Seed some activity before the first scrape: appends (two, so the
	// EveryN=2 group commit fires), a plain query, an /events hit.
	base := time.Date(2015, 3, 1, 12, 0, 0, 0, time.UTC)
	mk := func(prefix string) *Event {
		return &Event{
			Prefix: netip.MustParsePrefix(prefix), Start: base, End: base.Add(time.Hour),
			Providers: map[ProviderRef]bool{{Kind: ProviderAS, ASN: 3356}: true},
			Users:     map[ASN]bool{65001: true},
		}
	}
	if err := st.Append(mk("10.1.2.0/24"), mk("10.2.0.0/16")); err != nil {
		t.Fatal(err)
	}
	st.Query(Query{})
	if resp, err := http.Get(srv.URL + "/events"); err != nil {
		t.Fatal(err)
	} else {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}

	exp := scrape(t, srv)

	// Every instrumented family is present with a declared type.
	for family, kind := range map[string]string{
		"bh_build_info":                  "gauge",
		"bh_uptime_seconds":              "gauge",
		"bh_http_requests_total":         "counter",
		"bh_http_in_flight":              "gauge",
		"bh_http_request_seconds":        "histogram",
		"bh_store_append_events_total":   "counter",
		"bh_store_append_seconds":        "histogram",
		"bh_store_fsync_total":           "counter",
		"bh_store_commit_batch_records":  "histogram",
		"bh_store_events":                "gauge",
		"bh_query_total":                 "counter",
		"bh_query_seconds":               "histogram",
		"bh_engine_updates_total":        "counter",
		"bh_engine_events_opened_total":  "counter",
		"bh_engine_events_closed_total":  "counter",
		"bh_alert_published_total":       "counter",
		"bh_alert_publish_seconds":       "histogram",
		"bh_alert_webhook_retries_total": "counter",
		"bh_redial_dials_total":          "counter",
	} {
		if got := exp.types[family]; got != kind {
			t.Errorf("family %s: type %q, want %q", family, got, kind)
		}
	}

	// Store counters reflect the seeded activity.
	if v := exp.get(t, "bh_store_append_events_total"); v != 2 {
		t.Errorf("append_events_total = %v, want 2", v)
	}
	if v := exp.get(t, "bh_store_events"); v != 2 {
		t.Errorf("bh_store_events = %v, want 2", v)
	}
	if v := exp.get(t, "bh_store_fsync_total"); v < 1 {
		t.Errorf("fsync_total = %v, want >= 1 (EveryN=2 group commit)", v)
	}
	// /events uses QuerySeq, plus the direct Query above: >= 2 queries.
	if v := exp.get(t, "bh_query_total"); v < 2 {
		t.Errorf("query_total = %v, want >= 2", v)
	}
	if v := exp.get(t, `bh_redial_dials_total{source="192.0.2.1:179"}`); v != 0 {
		t.Errorf("idle redial source dials = %v, want 0", v)
	}
	foundBuildInfo := false
	for key, v := range exp.samples {
		if strings.HasPrefix(key, "bh_build_info{") {
			foundBuildInfo = true
			if v != 1 {
				t.Errorf("build_info %q = %v, want 1", key, v)
			}
			if !strings.Contains(key, `go_version="`+runtime.Version()+`"`) {
				t.Errorf("build_info %q missing go_version label", key)
			}
		}
	}
	if !foundBuildInfo {
		t.Error("no bh_build_info sample")
	}

	// Histogram invariants on an observed and an unobserved series.
	if n := exp.checkHistogram(t, "bh_store_append_seconds", ""); n != 1 {
		t.Errorf("append_seconds count = %v, want 1 (one Append call)", n)
	}
	exp.checkHistogram(t, "bh_query_seconds", "")
	exp.checkHistogram(t, "bh_http_request_seconds", `route="GET /events"`)
	exp.checkHistogram(t, "bh_alert_publish_seconds", "")

	// Request metrics exist for every registered route — the children
	// are resolved at registration, so even never-hit routes (and every
	// status class) have series.
	routes := []string{
		"GET /healthz", "GET /stats", "GET /events", "GET /legitimacy",
		"GET /figure4", "GET /figure8", "GET /table3", "GET /table4",
		"GET /watch", "GET /rules", "POST /rules", "DELETE /rules/{name}",
		"GET /metrics", "GET /debug/pprof/",
	}
	for _, route := range routes {
		exp.get(t, fmt.Sprintf(`bh_http_requests_total{route="%s",class="2xx"}`, route))
		exp.get(t, fmt.Sprintf(`bh_http_requests_total{route="%s",class="5xx"}`, route))
	}
	if v := exp.get(t, `bh_http_requests_total{route="GET /events",class="2xx"}`); v != 1 {
		t.Errorf("/events 2xx = %v, want 1", v)
	}

	// Monotonicity: more activity strictly grows the counters.
	if err := st.Append(mk("10.3.0.0/16")); err != nil {
		t.Fatal(err)
	}
	st.Query(Query{})
	exp2 := scrape(t, srv)
	for _, c := range []string{"bh_store_append_events_total", "bh_query_total"} {
		before, after := exp.get(t, c), exp2.get(t, c)
		if after <= before {
			t.Errorf("%s: %v -> %v, want strictly increasing", c, before, after)
		}
	}
	// The first scrape itself was a request: /metrics 2xx grew too.
	if before, after := exp.get(t, `bh_http_requests_total{route="GET /metrics",class="2xx"}`),
		exp2.get(t, `bh_http_requests_total{route="GET /metrics",class="2xx"}`); after <= before {
		t.Errorf("/metrics request counter not monotonic: %v -> %v", before, after)
	}
}

func TestMetricsPprofMounted(t *testing.T) {
	_, _, srv := telemetryServer(t)
	resp, err := http.Get(srv.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("GET /debug/pprof/: %s", resp.Status)
	}
	body, _ := io.ReadAll(resp.Body)
	if !strings.Contains(string(body), "goroutine") {
		t.Fatalf("pprof index does not list profiles")
	}
}

// TestMetricsAndPprofBehindAuth: /metrics and pprof honor the bearer
// token like every route except /healthz.
func TestMetricsAndPprofBehindAuth(t *testing.T) {
	tel := NewTelemetry()
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	srv := httptest.NewServer(NewStoreHandlerWith(st, nil, HandlerOptions{
		AuthToken: "s3cret", Telemetry: tel, Pprof: true,
	}))
	t.Cleanup(srv.Close)

	for _, path := range []string{"/metrics", "/debug/pprof/"} {
		resp, err := http.Get(srv.URL + path)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusUnauthorized {
			t.Fatalf("GET %s unauthenticated: %s, want 401", path, resp.Status)
		}
		req, _ := http.NewRequest(http.MethodGet, srv.URL+path, nil)
		req.Header.Set("Authorization", "Bearer s3cret")
		resp, err = http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		resp.Body.Close()
		if resp.StatusCode != http.StatusOK {
			t.Fatalf("GET %s with token: %s, want 200", path, resp.Status)
		}
	}
}

// TestHealthzDegradedRedial: a redial source whose retry budget is
// exhausted flips /healthz to 503 degraded, with the historical keys
// intact.
func TestHealthzDegradedRedial(t *testing.T) {
	// Grab a port and close it so dials are refused immediately.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	src := NewRedialSource(addr, RedialConfig{
		Session:        BGPConfig{ASN: 64900, BGPID: netip.MustParseAddr("10.0.0.9"), DialTimeout: time.Second},
		InitialBackoff: time.Millisecond,
		Jitter:         -1,
		MaxRetries:     1,
		OnTransition:   func(ConnTransition) {}, // silence the default logger
	})
	if _, err := src.Next(); err == nil {
		t.Fatal("expected a terminal error from the exhausted source")
	}

	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	srv := httptest.NewServer(NewStoreHandlerWith(st, nil, HandlerOptions{
		RedialSources: []*RedialSource{src},
	}))
	t.Cleanup(srv.Close)

	var health struct {
		Status string            `json:"status"`
		Events int               `json:"events"`
		Checks map[string]string `json:"checks"`
	}
	resp := getJSON(t, srv.URL+"/healthz", &health)
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("degraded healthz: %s, want 503", resp.Status)
	}
	if health.Status != "degraded" {
		t.Fatalf("status %q, want degraded", health.Status)
	}
	if _, ok := health.Checks["redial:"+addr]; !ok {
		t.Fatalf("checks %v missing redial entry", health.Checks)
	}

	// Stats folds the same counters in.
	var stats struct {
		Detector struct {
			Redial []RedialStats `json:"redial"`
		} `json:"detector"`
	}
	getJSON(t, srv.URL+"/stats", &stats)
	if len(stats.Detector.Redial) != 1 || stats.Detector.Redial[0].GaveUp != 1 {
		t.Fatalf("stats redial section: %+v", stats.Detector.Redial)
	}
	if stats.Detector.Redial[0].Dials != 2 {
		t.Fatalf("dials = %d, want 2 (budget 1 + final try)", stats.Detector.Redial[0].Dials)
	}
}

// TestStatsEngineSection: with a detector attached, /stats carries the
// engine counter snapshot — the same numbers /metrics scrapes.
func TestStatsEngineSection(t *testing.T) {
	_, st, srv := telemetryServer(t)
	_ = st
	var stats struct {
		Detector struct {
			Engine *Metrics `json:"engine"`
		} `json:"detector"`
	}
	getJSON(t, srv.URL+"/stats", &stats)
	if stats.Detector.Engine == nil {
		t.Fatal("stats detector section missing engine snapshot")
	}
}
