package bgpblackholing

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
	"strings"
	"time"
)

// RemoteBackend speaks the existing bhserve HTTP/NDJSON wire format as
// a Backend: /events (JSON and NDJSON), /figure4 (counts and the
// mergeable shape=sets form), /legitimacy, /stats and /healthz. It is
// how a bhroute router — or a federated bhquery — reaches a shard.
//
// A backend may know several URLs for the same shard: the primary
// (the read-write server) plus replicas (read-only opens of shipped
// segment copies, see ReplicateStore). Buffered requests are hedged:
// after HedgeDelay without an answer a second attempt races against a
// replica and the first success wins. Streaming requests fail over
// only before the first body byte — a half-consumed stream cannot be
// restarted without duplicating records.
type RemoteBackend struct {
	name    string
	urls    []string
	token   string
	timeout time.Duration
	hedge   time.Duration
	client  *http.Client
}

// RemoteOptions configures NewRemoteBackend.
type RemoteOptions struct {
	// Name labels the shard in federated stats; defaults to the
	// primary URL's host.
	Name string
	// AuthToken, when non-empty, is sent as a bearer token.
	AuthToken string
	// Timeout bounds each buffered request (not streams). Defaults to
	// 30s.
	Timeout time.Duration
	// HedgeDelay is how long a buffered request may run before a
	// hedged attempt is launched against the next replica. Zero means
	// sequential failover only (try the next URL after a failure).
	HedgeDelay time.Duration
	// Client overrides the HTTP client (tests).
	Client *http.Client
}

// NewRemoteBackend builds a Backend over one shard's URL set: the
// primary first, then replicas in preference order.
func NewRemoteBackend(urls []string, opts RemoteOptions) (*RemoteBackend, error) {
	if len(urls) == 0 {
		return nil, fmt.Errorf("remote backend needs at least one URL")
	}
	cleaned := make([]string, len(urls))
	for i, u := range urls {
		cleaned[i] = strings.TrimRight(strings.TrimSpace(u), "/")
		if cleaned[i] == "" {
			return nil, fmt.Errorf("remote backend URL %d is empty", i)
		}
	}
	b := &RemoteBackend{
		name:    opts.Name,
		urls:    cleaned,
		token:   opts.AuthToken,
		timeout: opts.Timeout,
		hedge:   opts.HedgeDelay,
		client:  opts.Client,
	}
	if b.name == "" {
		if u, err := url.Parse(cleaned[0]); err == nil && u.Host != "" {
			b.name = u.Host
		} else {
			b.name = cleaned[0]
		}
	}
	if b.timeout <= 0 {
		b.timeout = 30 * time.Second
	}
	if b.client == nil {
		b.client = http.DefaultClient
	}
	return b, nil
}

// Name implements Backend.
func (b *RemoteBackend) Name() string { return b.name }

// URL returns the shard's primary endpoint.
func (b *RemoteBackend) URL() string { return b.urls[0] }

// Close implements Backend. The HTTP client is shared; nothing to
// release.
func (b *RemoteBackend) Close() error { return nil }

// RemoteError is a non-2xx answer from a shard, preserving the status
// so a router can distinguish a shard's 400 (caller error — propagate)
// from a 5xx (shard failure — count and degrade).
type RemoteError struct {
	Status int
	Msg    string
}

func (e *RemoteError) Error() string {
	return fmt.Sprintf("remote status %d: %s", e.Status, e.Msg)
}

// attempt runs one GET against one base URL. On non-2xx the body's
// {"error": ...} is folded into a *RemoteError.
func (b *RemoteBackend) attempt(ctx context.Context, base, path string, params url.Values) (*http.Response, error) {
	u := base + path
	if len(params) > 0 {
		u += "?" + params.Encode()
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, u, nil)
	if err != nil {
		return nil, err
	}
	if b.token != "" {
		req.Header.Set("Authorization", "Bearer "+b.token)
	}
	resp, err := b.client.Do(req)
	if err != nil {
		return nil, err
	}
	if resp.StatusCode/100 != 2 {
		defer resp.Body.Close()
		msg := resp.Status
		var body struct {
			Error string `json:"error"`
		}
		if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&body); err == nil && body.Error != "" {
			msg = body.Error
		}
		return nil, &RemoteError{Status: resp.StatusCode, Msg: msg}
	}
	return resp, nil
}

// hedged races the URL set for a buffered request: the primary starts
// immediately; every HedgeDelay without an answer the next replica
// joins. The first success wins and the losers are cancelled. With no
// hedge delay (or a single URL) it degrades to sequential failover.
// hedgedLaunches reports how many extra attempts were started.
func (b *RemoteBackend) hedged(ctx context.Context, path string, params url.Values) (resp *http.Response, hedges int, err error) {
	ctx, cancel := context.WithTimeout(ctx, b.timeout)
	if len(b.urls) == 1 || b.hedge <= 0 {
		defer func() {
			if err != nil {
				cancel()
			}
		}()
		var lastErr error
		for i, u := range b.urls {
			resp, lastErr = b.attempt(ctx, u, path, params)
			if lastErr == nil {
				// The response body must outlive this call; cancel only
				// when the caller is done reading it.
				resp.Body = &cancelOnClose{ReadCloser: resp.Body, cancel: cancel}
				return resp, i, nil
			}
			var re *RemoteError
			if errors.As(lastErr, &re) && re.Status/100 == 4 {
				break // caller error: every replica would answer the same
			}
		}
		return nil, len(b.urls) - 1, lastErr
	}

	type outcome struct {
		resp *http.Response
		err  error
	}
	results := make(chan outcome, len(b.urls))
	launched := 0
	launch := func(u string) {
		launched++
		go func() {
			r, err := b.attempt(ctx, u, path, params)
			results <- outcome{r, err}
		}()
	}
	launch(b.urls[0])
	timer := time.NewTimer(b.hedge)
	defer timer.Stop()
	var lastErr error
	for pending := launched; pending > 0 || launched < len(b.urls); {
		select {
		case out := <-results:
			pending--
			if out.err == nil {
				out.resp.Body = &cancelOnClose{ReadCloser: out.resp.Body, cancel: cancel}
				// Close losing hedge responses in the background.
				go func(pending int) {
					for i := 0; i < pending; i++ {
						if late := <-results; late.resp != nil {
							late.resp.Body.Close()
						}
					}
				}(pending)
				return out.resp, launched - 1, nil
			}
			lastErr = out.err
			if pending == 0 && launched < len(b.urls) {
				launch(b.urls[launched])
				pending++
			}
		case <-timer.C:
			if launched < len(b.urls) {
				launch(b.urls[launched])
				pending++
				timer.Reset(b.hedge)
			}
		case <-ctx.Done():
			cancel()
			return nil, launched - 1, ctx.Err()
		}
	}
	cancel()
	return nil, launched - 1, lastErr
}

// cancelOnClose ties a context cancel to the response body's lifetime.
type cancelOnClose struct {
	io.ReadCloser
	cancel context.CancelFunc
}

func (c *cancelOnClose) Close() error {
	err := c.ReadCloser.Close()
	c.cancel()
	return err
}

// getJSON runs a hedged GET and decodes the answer.
func (b *RemoteBackend) getJSON(ctx context.Context, path string, params url.Values, v any) error {
	resp, _, err := b.hedged(ctx, path, params)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	return json.NewDecoder(resp.Body).Decode(v)
}

// queryParams renders a Query as the /events parameter set.
func queryParams(q Query) url.Values {
	params := url.Values{}
	if !q.From.IsZero() {
		params.Set("from", q.From.Format(time.RFC3339))
	}
	if !q.To.IsZero() {
		params.Set("to", q.To.Format(time.RFC3339))
	}
	if q.Prefix.IsValid() {
		params.Set("prefix", q.Prefix.String())
	}
	if q.Mode != PrefixExact {
		params.Set("mode", FormatPrefixMode(q.Mode))
	}
	if q.OriginASN != 0 {
		params.Set("origin", strconv.FormatUint(uint64(q.OriginASN), 10))
	}
	if q.Provider != nil {
		params.Set("provider", q.Provider.String())
	}
	if q.Community != 0 {
		params.Set("community", q.Community.String())
	}
	if q.MinDuration > 0 {
		params.Set("min_duration", q.MinDuration.String())
	}
	if q.MaxDuration > 0 {
		params.Set("max_duration", q.MaxDuration.String())
	}
	if q.Limit > 0 {
		params.Set("limit", strconv.Itoa(q.Limit))
	}
	if q.Enrich {
		params.Set("enrich", "1")
	}
	return params
}

// maxRemoteLimit is the explicit limit a remote Records call sends
// when the caller wants everything: shard handlers cap unlimited JSON
// queries at their own default, which would silently truncate a
// federated merge.
const maxRemoteLimit = 1 << 30

// Records implements Backend over GET /events (JSON envelope).
func (b *RemoteBackend) Records(ctx context.Context, q Query) (*RecordSet, error) {
	began := time.Now()
	params := queryParams(q)
	if q.Limit <= 0 {
		params.Set("limit", strconv.Itoa(maxRemoteLimit))
	}
	var envelope struct {
		Total   int            `json:"total"`
		Scanned int            `json:"scanned"`
		Events  []*EventRecord `json:"events"`
	}
	if err := b.getJSON(ctx, "/events", params, &envelope); err != nil {
		return nil, err
	}
	return &RecordSet{
		Records: envelope.Events,
		Total:   envelope.Total,
		Scanned: envelope.Scanned,
		Elapsed: time.Since(began),
	}, nil
}

// recordLineKey is the minimal per-line decode a merge needs — the
// full record rides through as raw bytes.
type recordLineKey struct {
	Prefix string    `json:"prefix"`
	Start  time.Time `json:"start"`
	End    time.Time `json:"end"`
	Seq    uint64    `json:"seq"`
}

// RecordLines implements Backend over GET /events?format=ndjson.
// Failover walks the URL set sequentially and only before the first
// body byte; once a stream is live its shard is committed.
func (b *RemoteBackend) RecordLines(ctx context.Context, q Query) (*RecordStream, error) {
	params := queryParams(q)
	params.Set("format", "ndjson")
	var resp *http.Response
	var lastErr error
	for _, u := range b.urls {
		resp, lastErr = b.attempt(ctx, u, "/events", params)
		if lastErr == nil {
			break
		}
		var re *RemoteError
		if errors.As(lastErr, &re) && re.Status/100 == 4 {
			break
		}
	}
	if lastErr != nil {
		return nil, lastErr
	}
	rd := bufio.NewReaderSize(resp.Body, 64<<10)
	return &RecordStream{
		next: func() (RecordLine, error) {
			for {
				raw, err := rd.ReadBytes('\n')
				line := bytes.TrimRight(raw, "\n")
				if len(line) == 0 {
					if err != nil {
						if err == io.EOF {
							return RecordLine{}, io.EOF
						}
						return RecordLine{}, err
					}
					continue // blank keep-alive line
				}
				var key recordLineKey
				if jerr := json.Unmarshal(line, &key); jerr != nil {
					return RecordLine{}, fmt.Errorf("shard %s: bad NDJSON line: %v", b.name, jerr)
				}
				// The line must be owned by the caller: ReadBytes
				// allocates per line, so no copy is needed.
				return RecordLine{
					Key: RecordKey{
						End:    key.End.UnixNano(),
						Seq:    key.Seq,
						Start:  key.Start.UnixNano(),
						Prefix: key.Prefix,
					},
					Line: line,
				}, nil
			}
		},
		close: func() { resp.Body.Close() },
	}, nil
}

// Figure4 implements Backend over GET /figure4.
func (b *RemoteBackend) Figure4(ctx context.Context, start time.Time, days int) (*Figure4Result, error) {
	params := url.Values{}
	params.Set("start", start.UTC().Format(time.RFC3339))
	params.Set("days", strconv.Itoa(days))
	var series []DailyPoint
	if err := b.getJSON(ctx, "/figure4", params, &series); err != nil {
		return nil, err
	}
	return &Figure4Result{Series: series}, nil
}

// Figure4Sets implements Backend over GET /figure4?shape=sets.
func (b *RemoteBackend) Figure4Sets(ctx context.Context, start time.Time, days int) (*Figure4Sets, error) {
	params := url.Values{}
	params.Set("shape", "sets")
	params.Set("start", start.UTC().Format(time.RFC3339))
	params.Set("days", strconv.Itoa(days))
	var sets Figure4Sets
	if err := b.getJSON(ctx, "/figure4", params, &sets); err != nil {
		return nil, err
	}
	return &sets, nil
}

// LegitimacySummary implements Backend over GET /legitimacy.
func (b *RemoteBackend) LegitimacySummary(ctx context.Context, q Query) (*LegitimacySummary, error) {
	sum := newLegitimacySummary()
	if err := b.getJSON(ctx, "/legitimacy", queryParams(q), sum); err != nil {
		return nil, err
	}
	return sum, nil
}

// Stats implements Backend over GET /stats. Extra sections a shard
// serves (the detector block) are ignored; a shard that is itself a
// federation forwards its shards block.
func (b *RemoteBackend) Stats(ctx context.Context) (*BackendStats, error) {
	var stats BackendStats
	if err := b.getJSON(ctx, "/stats", nil, &stats); err != nil {
		return nil, err
	}
	return &stats, nil
}

// Healthz implements Backend over GET /healthz. A reachable-but-
// degraded shard answers 503 with a JSON body; both that and a plain
// 200 parse here. An unreachable shard is "down".
func (b *RemoteBackend) Healthz(ctx context.Context) *ShardHealth {
	h := &ShardHealth{Name: b.name, Status: "down"}
	ctx, cancel := context.WithTimeout(ctx, b.timeout)
	defer cancel()
	var lastErr error
	for _, u := range b.urls {
		req, err := http.NewRequestWithContext(ctx, http.MethodGet, u+"/healthz", nil)
		if err != nil {
			lastErr = err
			continue
		}
		resp, err := b.client.Do(req)
		if err != nil {
			lastErr = err
			continue
		}
		var body struct {
			Status string            `json:"status"`
			Events int               `json:"events"`
			Checks map[string]string `json:"checks"`
		}
		err = json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&body)
		resp.Body.Close()
		if err != nil {
			lastErr = err
			continue
		}
		h.Status = body.Status
		h.Events = body.Events
		h.Checks = body.Checks
		if h.Status == "" {
			h.Status = "degraded"
		}
		return h
	}
	if lastErr != nil {
		h.Err = lastErr.Error()
	}
	return h
}
