package bgpblackholing

// Telemetry — the one place the pipeline's stages report numbers. It
// owns an internal/obs registry, pre-registers the bh_* metric
// families, and hands each subsystem its pre-resolved handles: the
// store gets an Instruments struct, the root Store a query observer,
// the detector / alert hub / redial sources scrape-time snapshot
// functions over the atomic counters they already keep. /metrics and
// /stats therefore read the same underlying numbers — one source of
// truth, two encodings.

import (
	"net/http"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"bgpblackholing/internal/obs"
	"bgpblackholing/internal/store"
)

// Telemetry is the process-wide metrics hub backing GET /metrics.
// Create one per process with NewTelemetry, wire subsystems in with
// the Observe* methods and StoreInstruments, and mount
// MetricsHandler (NewStoreHandlerWith does this when
// HandlerOptions.Telemetry is set). All methods are safe for
// concurrent use; Observe* registrations are idempotent.
type Telemetry struct {
	reg   *obs.Registry
	start time.Time

	// HTTP middleware families, pre-registered so per-request work is
	// three atomic ops and one map-free histogram observe.
	httpRequests *obs.CounterVec   // bh_http_requests_total{route,class}
	httpInFlight *obs.Gauge        // bh_http_in_flight
	httpSeconds  *obs.HistogramVec // bh_http_request_seconds{route}

	storeOnce sync.Once
	storeInst *store.Instruments
}

// NewTelemetry builds a registry with the process-level families
// (build_info, uptime, HTTP request metrics) registered.
func NewTelemetry() *Telemetry {
	t := &Telemetry{reg: obs.NewRegistry(), start: time.Now()}
	version := "(devel)"
	if bi, ok := debug.ReadBuildInfo(); ok && bi.Main.Version != "" {
		version = bi.Main.Version
	}
	t.reg.GaugeFuncLabeled("bh_build_info",
		"Build metadata; value is always 1.",
		[]string{"go_version", "version"}, []string{runtime.Version(), version},
		func() float64 { return 1 })
	t.reg.GaugeFunc("bh_uptime_seconds",
		"Seconds since this Telemetry (in practice: the process) started.",
		func() float64 { return time.Since(t.start).Seconds() })
	t.httpRequests = t.reg.CounterVec("bh_http_requests_total",
		"HTTP requests served, by route pattern and status class.",
		"route", "class")
	t.httpInFlight = t.reg.Gauge("bh_http_in_flight",
		"HTTP requests currently being served.")
	t.httpSeconds = t.reg.HistogramVec("bh_http_request_seconds",
		"HTTP request duration in seconds, by route pattern.",
		nil, "route")
	return t
}

// Registry exposes the underlying registry for custom metrics.
func (t *Telemetry) Registry() *obs.Registry { return t.reg }

// MetricsHandler returns the GET /metrics handler rendering the
// Prometheus text exposition format.
func (t *Telemetry) MetricsHandler() http.Handler { return t.reg.Handler() }

// StoreInstruments returns the write-path instrumentation handles for
// StoreOptions.Instruments. The bh_store_* families register on first
// call; every call returns the same struct, so multiple stores opened
// with it share one set of counters.
func (t *Telemetry) StoreInstruments() *store.Instruments {
	t.storeOnce.Do(func() {
		r := t.reg
		// Group-commit batches are record counts, not latencies.
		batchBuckets := obs.ExponentialBuckets(1, 2, 12) // 1..2048 records
		compactBuckets := obs.ExponentialBuckets(1e-3, 2.5, 12)
		t.storeInst = &store.Instruments{
			AppendEvents:  r.Counter("bh_store_append_events_total", "Events appended to the store."),
			AppendSeconds: r.Histogram("bh_store_append_seconds", "Store Append call latency (whole batch).", nil),
			FsyncTotal:    r.Counter("bh_store_fsync_total", "Active-segment fsyncs, all triggers."),
			FsyncErrors:   r.Counter("bh_store_fsync_errors_total", "Active-segment fsyncs that failed."),
			FsyncSeconds:  r.Histogram("bh_store_fsync_seconds", "Active-segment fsync latency.", nil),
			CommitBatch: r.Histogram("bh_store_commit_batch_records",
				"Records flushed per group commit.", batchBuckets),
			Seals:     r.Counter("bh_store_seals_total", "Segments sealed (size, partition roll, failover, compaction)."),
			Failovers: r.Counter("bh_store_failovers_total", "Wounded-segment failovers on the write path."),
			CompactRuns: r.Counter("bh_store_compact_runs_total",
				"Compaction passes executed."),
			CompactSeconds: r.Histogram("bh_store_compact_seconds",
				"Whole-pass compaction latency.", compactBuckets),
			CompactMerged: r.Counter("bh_store_compact_merged_segments_total",
				"Sealed segments rewritten by compaction passes."),
			CompactSkipped: r.Counter("bh_store_compact_skipped_segments_total",
				"Sealed segments compaction policies left cold."),
			CompactErased: r.Counter("bh_store_compact_erased_records_total",
				"Tombstoned records physically removed from disk."),
			CompactDropped: r.Counter("bh_store_compact_dropped_duplicates_total",
				"Superseded flush duplicates removed by compaction."),
			Hydrations: r.Counter("bh_store_hydrations_total",
				"Cold (sidecar-backed) segments decoded on demand."),
			SidecarWrites: r.Counter("bh_store_sidecar_writes_total",
				"Segment summary sidecars written (seal, compaction, heal)."),
			SidecarFallbacks: r.Counter("bh_store_sidecar_fallbacks_total",
				"Sealed segments fully decoded at open for want of a fresh sidecar."),
		}
	})
	return t.storeInst
}

// queryObs holds the root Store's query-path handles; installed
// atomically by ObserveStore so SetAnnotator-style wiring after the
// store is live stays race-free.
type queryObs struct {
	total, enrichedTotal     *obs.Counter
	seconds, enrichedSeconds *obs.Histogram
}

// ObserveStore wires a root Store into the registry: query and
// enriched-query latency histograms on the store's Query path, plus
// scrape-time gauges over its shape (events, prefixes, segments,
// bytes, tombstones, unsynced records).
func (t *Telemetry) ObserveStore(st *Store) {
	r := t.reg
	st.qobs.Store(&queryObs{
		total:           r.Counter("bh_query_total", "Index-backed queries answered (plain)."),
		enrichedTotal:   r.Counter("bh_query_enriched_total", "Queries answered with legitimacy enrichment."),
		seconds:         r.Histogram("bh_query_seconds", "Plain query latency.", nil),
		enrichedSeconds: r.Histogram("bh_query_enriched_seconds", "Enriched query latency.", nil),
	})
	stats := func() StoreStats { return st.Stats() }
	r.GaugeFunc("bh_store_events", "Live events in the store.", func() float64 { return float64(stats().Events) })
	r.GaugeFunc("bh_store_prefixes", "Distinct prefixes indexed.", func() float64 { return float64(stats().Prefixes) })
	r.GaugeFunc("bh_store_segments", "Segments on disk (sealed + active).", func() float64 { return float64(stats().Segments) })
	r.GaugeFunc("bh_store_bytes", "Bytes on disk across segments.", func() float64 { return float64(stats().Bytes) })
	r.GaugeFunc("bh_store_tombstones", "DeletePrefix tombstones in force.", func() float64 { return float64(stats().Tombstones) })
	r.GaugeFunc("bh_store_pending_erasure", "Dead records awaiting physical erasure.", func() float64 { return float64(stats().PendingErasure) })
	r.GaugeFunc("bh_store_unsynced_records", "Appended records not yet fsynced.", func() float64 { return float64(stats().Unsynced) })
	r.GaugeFunc("bh_store_segments_cold", "Sealed segments not yet decoded (cold open).", func() float64 { return float64(stats().SegmentsCold) })
	r.GaugeFunc("bh_store_segments_hydrated", "Sealed segments decoded on demand since open.", func() float64 { return float64(stats().SegmentsHydrated) })
	r.GaugeFunc("bh_store_mapped_bytes", "Segment bytes currently mmap'd for scans.", func() float64 { return float64(stats().MappedBytes) })
}

// ObserveDetector exposes the engine's counters (updates, detections,
// event opens/closes, subscriber drop/evict) as scrape-time snapshots
// of Detector.Metrics — the same numbers /stats reports.
func (t *Telemetry) ObserveDetector(d *Detector) {
	r := t.reg
	m := func() Metrics { return d.Metrics() }
	r.CounterFunc("bh_engine_updates_total", "Updates processed post-cleaning.", func() uint64 { return m().UpdatesProcessed })
	r.CounterFunc("bh_engine_updates_cleaned_total", "Updates removed by §3 data cleaning.", func() uint64 { return m().UpdatesCleaned })
	r.CounterFunc("bh_engine_detections_total", "Classified blackholing announcements.", func() uint64 { return m().Detections })
	r.CounterFunc("bh_engine_explicit_ends_total", "Per-peer endings from withdrawals.", func() uint64 { return m().ExplicitEnds })
	r.CounterFunc("bh_engine_implicit_ends_total", "Per-peer endings from untagged re-announcements.", func() uint64 { return m().ImplicitEnds })
	r.CounterFunc("bh_engine_events_opened_total", "Prefix-level events started.", func() uint64 { return m().EventsOpened })
	r.CounterFunc("bh_engine_events_closed_total", "Prefix-level events closed.", func() uint64 { return m().EventsClosed })
	r.GaugeFunc("bh_engine_active_events", "Events currently open (opened − closed).",
		func() float64 { mm := m(); return float64(mm.EventsOpened) - float64(mm.EventsClosed) })
	r.CounterFunc("bh_engine_subscriber_drops_total", "Events dropped at bounded subscriber queues.", func() uint64 { return m().SubscriberDrops })
	r.CounterFunc("bh_engine_subscriber_evictions_total", "Subscribers evicted for falling behind.", func() uint64 { return m().SubscriberEvictions })
	r.GaugeFunc("bh_engine_subscribers", "Live event subscribers.", func() float64 { return float64(len(d.SubscriberStats())) })
}

// ObserveHub exposes the alert hub's counters and wires its publish
// latency histogram. Webhook deliveries/retries/dead-letters aggregate
// across endpoints.
func (t *Telemetry) ObserveHub(h *AlertHub) {
	r := t.reg
	s := func() AlertHubStats { return h.Stats() }
	r.CounterFunc("bh_alert_published_total", "Closed events evaluated against the rule set.", func() uint64 { return s().Published })
	r.CounterFunc("bh_alert_matches_total", "Rule firings (alerts emitted).", func() uint64 { return s().Alerts })
	r.CounterFunc("bh_alert_watcher_drops_total", "Alerts dropped at slow SSE watchers.", func() uint64 { return s().WatcherDrops })
	r.CounterFunc("bh_alert_encode_errors_total", "Alert payload encode failures.", func() uint64 { return s().EncodeErrors })
	r.GaugeFunc("bh_alert_rules", "Compiled alert rules.", func() float64 { return float64(s().Rules) })
	r.GaugeFunc("bh_alert_watchers", "Connected SSE watchers.", func() float64 { return float64(s().Watchers) })
	webhookSum := func(pick func(WebhookStats) uint64) func() uint64 {
		return func() uint64 {
			var n uint64
			for _, w := range s().Webhooks {
				n += pick(w)
			}
			return n
		}
	}
	r.CounterFunc("bh_alert_webhook_delivered_total", "Webhook deliveries acknowledged 2xx.", webhookSum(func(w WebhookStats) uint64 { return w.Delivered }))
	r.CounterFunc("bh_alert_webhook_retries_total", "Webhook delivery re-attempts.", webhookSum(func(w WebhookStats) uint64 { return w.Retries }))
	r.CounterFunc("bh_alert_webhook_dead_letters_total", "Webhook alerts abandoned after max attempts.", webhookSum(func(w WebhookStats) uint64 { return w.DeadLetters }))
	r.CounterFunc("bh_alert_webhook_dropped_total", "Webhook alerts discarded on queue overflow.", webhookSum(func(w WebhookStats) uint64 { return w.Dropped }))
	pub := r.Histogram("bh_alert_publish_seconds", "Alert-hub Publish latency (match + fan-out).", nil)
	h.SetPublishObserver(pub.Observe)
}

// ObserveRedial exposes one redial source's session-lifecycle counters
// as a labeled bh_redial_* family (source = collector address).
// Observe each source once; multiple sources get distinct label sets.
func (t *Telemetry) ObserveRedial(src *RedialSource) {
	r := t.reg
	names, values := []string{"source"}, []string{src.Addr()}
	s := func() RedialStats { return src.Stats() }
	r.CounterFuncLabeled("bh_redial_dials_total", "Connect+handshake attempts.", names, values, func() uint64 { return s().Dials })
	r.CounterFuncLabeled("bh_redial_establishes_total", "Sessions established.", names, values, func() uint64 { return s().Establishes })
	r.CounterFuncLabeled("bh_redial_reseeds_total", "RIB-dump reseeds after re-established sessions.", names, values, func() uint64 { return s().Reseeds })
	r.CounterFuncLabeled("bh_redial_reseed_failures_total", "Reseeds that failed (session continued).", names, values, func() uint64 { return s().ReseedFailures })
	r.CounterFuncLabeled("bh_redial_backoffs_total", "Backoff waits after failed dials or lost sessions.", names, values, func() uint64 { return s().Backoffs })
	r.GaugeFuncLabeled("bh_redial_gave_up", "1 once the retry budget is exhausted.", names, values, func() float64 { return float64(s().GaveUp) })
}

// instrument wraps an HTTP handler with the request middleware:
// per-route request counter with status-class label, in-flight gauge,
// and duration histogram. route is the mux pattern the handler was
// registered under, resolved statically so no per-request pattern
// lookup is needed.
func (t *Telemetry) instrument(route string, h http.Handler) http.Handler {
	hist := t.httpSeconds.With(route)
	// Status classes are a closed set: resolve the children once.
	classes := [6]*obs.Counter{
		nil,
		t.httpRequests.With(route, "1xx"),
		t.httpRequests.With(route, "2xx"),
		t.httpRequests.With(route, "3xx"),
		t.httpRequests.With(route, "4xx"),
		t.httpRequests.With(route, "5xx"),
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		t.httpInFlight.Inc()
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, status: http.StatusOK}
		h.ServeHTTP(sw, r)
		hist.Observe(time.Since(start).Seconds())
		t.httpInFlight.Dec()
		if cls := sw.status / 100; cls >= 1 && cls <= 5 {
			classes[cls].Inc()
		}
	})
}

// statusWriter captures the response status for the class label. It
// forwards Flush so streaming handlers (/events NDJSON, /watch SSE)
// keep flushing through the middleware.
type statusWriter struct {
	http.ResponseWriter
	status      int
	wroteHeader bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wroteHeader {
		w.status = code
		w.wroteHeader = true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(p []byte) (int, error) {
	w.wroteHeader = true
	return w.ResponseWriter.Write(p)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}
