package bgpblackholing

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"net/netip"
	"reflect"
	"sort"
	"testing"
	"time"
)

// federationFixture is one detector run persisted three ways at once:
// a single store holding everything, and the same events sharded under
// both split plans. All sinks subscribe to the same run, so every
// store sees the same *Event pointers with the same engine-stamped
// Seq — the property the byte-identity claim rests on.
type federationFixture struct {
	p         *Pipeline
	single    *Store
	shards    map[string][]*Store // plan name -> 3 shard stores
	shardDirs map[string][]string // plan name -> the stores' directories
	events    []*Event
}

func newFederationFixture(t *testing.T) *federationFixture {
	t.Helper()
	p, err := NewPipeline(SmallOptions())
	if err != nil {
		t.Fatal(err)
	}
	openStore := func() (*Store, string) {
		dir := t.TempDir()
		st, err := OpenStore(dir)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { st.Close() })
		return st, dir
	}
	f := &federationFixture{p: p, shards: map[string][]*Store{}, shardDirs: map[string][]string{}}
	f.single, _ = openStore()
	plans := map[string]ShardPlan{
		"time-partition": TimeShardPlan{Width: 24 * time.Hour, N: 3},
		"prefix-split":   PrefixShardPlan{Bit: 8, N: 3},
	}
	det := p.NewDetector()
	waits := []func() error{det.SinkToStore(f.single)}
	for name, plan := range plans {
		var stores []*Store
		var dirs []string
		for i := 0; i < 3; i++ {
			st, dir := openStore()
			stores, dirs = append(stores, st), append(dirs, dir)
		}
		f.shards[name] = stores
		f.shardDirs[name] = dirs
		waits = append(waits, det.SinkToShards(plan, stores))
	}
	res, err := det.Run(context.Background(), p.Replay(800, 806))
	if err != nil {
		t.Fatal(err)
	}
	for _, wait := range waits {
		if err := wait(); err != nil {
			t.Fatal(err)
		}
	}
	if len(res.Events) < 20 {
		t.Fatalf("replay produced only %d events; fixture too thin", len(res.Events))
	}
	f.events = res.Events
	return f
}

// queryCombos derives ≥ 12 filter/limit/enrich parameter sets from the
// fixture's actual events, so every filter has matches.
func (f *federationFixture) queryCombos(t *testing.T) []string {
	t.Helper()
	ev := f.events[len(f.events)/2]
	var user ASN
	for u := range ev.Users {
		user = u
		break
	}
	var prov ProviderRef
	for pr := range ev.Providers {
		prov = pr
		break
	}
	var comm Community
	for c := range ev.Communities {
		comm = c
		break
	}
	from := ev.Start.Add(-12 * time.Hour).UTC().Format(time.RFC3339)
	to := ev.End.Add(12 * time.Hour).UTC().Format(time.RFC3339)
	octet := ev.Prefix.Addr().As4()[0]
	return []string{
		"",
		"limit=1",
		"limit=7",
		"limit=1000",
		"prefix=" + ev.Prefix.String() + "&mode=exact",
		"prefix=" + ev.Prefix.Addr().String() + "&mode=lpm",
		fmt.Sprintf("prefix=%d.0.0.0/8&mode=covered", octet),
		"prefix=" + ev.Prefix.String() + "&mode=covering",
		fmt.Sprintf("origin=%d", user),
		"provider=" + prov.String(),
		"community=" + comm.String(),
		"from=" + from + "&to=" + to,
		"min_duration=10m",
		"max_duration=2h",
		fmt.Sprintf("enrich=1&limit=50&origin=%d", user),
		"enrich=1&limit=25",
	}
}

// startShardServers serves each shard store over HTTP and returns a
// router handler federating them, plus the shard servers (so tests can
// kill one).
func (f *federationFixture) startShardServers(t *testing.T, plan string) ([]*httptest.Server, http.Handler) {
	t.Helper()
	stores := f.shards[plan]
	servers := make([]*httptest.Server, len(stores))
	backends := make([]Backend, len(stores))
	for i, st := range stores {
		srv := httptest.NewServer(NewStoreHandlerWith(st, f.p, HandlerOptions{}))
		t.Cleanup(srv.Close)
		servers[i] = srv
		rb, err := NewRemoteBackend([]string{srv.URL}, RemoteOptions{
			Name:    fmt.Sprintf("shard-%d", i),
			Timeout: 30 * time.Second,
		})
		if err != nil {
			t.Fatal(err)
		}
		backends[i] = rb
	}
	return servers, NewRouterHandler(NewFederatedStore(backends...), RouterOptions{})
}

func get(t *testing.T, base, path string) (*http.Response, []byte) {
	t.Helper()
	resp, err := http.Get(base + path)
	if err != nil {
		t.Fatalf("GET %s: %v", path, err)
	}
	body, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil {
		t.Fatalf("GET %s: read: %v", path, err)
	}
	return resp, body
}

// TestFederationByteIdentical is the tentpole acceptance test: a
// 3-shard federation behind bhroute's router answers /events NDJSON
// and /figure4 byte-for-byte identically to one store holding every
// event, and /stats totals agree — under both shard plans, across the
// full filter/limit/enrich combo matrix.
func TestFederationByteIdentical(t *testing.T) {
	f := newFederationFixture(t)
	single := httptest.NewServer(NewStoreHandlerWith(f.single, f.p, HandlerOptions{}))
	defer single.Close()
	combos := f.queryCombos(t)

	for plan := range f.shards {
		t.Run(plan, func(t *testing.T) {
			_, routerHandler := f.startShardServers(t, plan)
			router := httptest.NewServer(routerHandler)
			defer router.Close()

			for _, combo := range combos {
				path := "/events?format=ndjson"
				if combo != "" {
					path += "&" + combo
				}
				sresp, sbody := get(t, single.URL, path)
				rresp, rbody := get(t, router.URL, path)
				if sresp.StatusCode != 200 || rresp.StatusCode != 200 {
					t.Fatalf("%s: status single=%d router=%d", path, sresp.StatusCode, rresp.StatusCode)
				}
				if !bytes.Equal(sbody, rbody) {
					t.Errorf("%s: NDJSON bodies diverge (single %d bytes, router %d bytes)\nfirst single line: %.200s\nfirst router line: %.200s",
						path, len(sbody), len(rbody), firstDiffLine(sbody, rbody), firstDiffLine(rbody, sbody))
					continue
				}
				if got := rresp.Header.Get("X-Shards-Failed"); got != "" {
					t.Errorf("%s: healthy federation set X-Shards-Failed=%q", path, got)
				}

				// JSON shape: totals and the record array must agree
				// (elapsed/scanned are timing- and shard-local).
				jpath := "/events"
				if combo != "" {
					jpath += "?" + combo
				}
				_, sj := get(t, single.URL, jpath)
				_, rj := get(t, router.URL, jpath)
				var se, re struct {
					Total    int             `json:"total"`
					Returned int             `json:"returned"`
					Events   json.RawMessage `json:"events"`
				}
				if err := json.Unmarshal(sj, &se); err != nil {
					t.Fatalf("%s: single decode: %v", jpath, err)
				}
				if err := json.Unmarshal(rj, &re); err != nil {
					t.Fatalf("%s: router decode: %v", jpath, err)
				}
				if se.Total != re.Total || se.Returned != re.Returned || !bytes.Equal(se.Events, re.Events) {
					t.Errorf("%s: JSON answers diverge: total %d vs %d, returned %d vs %d, events equal=%v",
						jpath, se.Total, re.Total, se.Returned, re.Returned, bytes.Equal(se.Events, re.Events))
				}
			}

			// Figure 4: full-span and explicit-window series must be
			// byte-identical (per-shard entity sets union to the same
			// distinct counts the single store computes).
			for _, path := range []string{
				"/figure4",
				"/figure4?every=2",
				"/figure4?start=" + f.events[0].Start.UTC().Format(time.RFC3339) + "&days=5",
			} {
				_, sbody := get(t, single.URL, path)
				_, rbody := get(t, router.URL, path)
				if !bytes.Equal(sbody, rbody) {
					t.Errorf("%s: figure4 bodies diverge\nsingle: %.300s\nrouter: %.300s", path, sbody, rbody)
				}
			}

			// Legitimacy histograms sum across shards.
			_, sleg := get(t, single.URL, "/legitimacy")
			_, rleg := get(t, router.URL, "/legitimacy")
			var sl, rl LegitimacySummary
			if err := json.Unmarshal(sleg, &sl); err != nil {
				t.Fatal(err)
			}
			if err := json.Unmarshal(rleg, &rl); err != nil {
				t.Fatal(err)
			}
			sl.ElapsedUS, rl.ElapsedUS = 0, 0
			if !reflect.DeepEqual(sl, rl) {
				t.Errorf("legitimacy diverges:\nsingle %+v\nrouter %+v", sl, rl)
			}

			// Stats totals: events and the global time span always agree;
			// distinct-prefix sums are exact only when prefixes cannot
			// straddle shards (the prefix-split plan).
			sstats := f.single.Stats()
			_, rs := get(t, router.URL, "/stats")
			var rstats BackendStats
			if err := json.Unmarshal(rs, &rstats); err != nil {
				t.Fatal(err)
			}
			if rstats.Events != sstats.Events {
				t.Errorf("stats events: single %d router %d", sstats.Events, rstats.Events)
			}
			if !rstats.MinStart.Equal(sstats.MinStart) || !rstats.MaxEnd.Equal(sstats.MaxEnd) {
				t.Errorf("stats span: single [%v, %v] router [%v, %v]",
					sstats.MinStart, sstats.MaxEnd, rstats.MinStart, rstats.MaxEnd)
			}
			if plan == "prefix-split" && rstats.Prefixes != sstats.Prefixes {
				t.Errorf("stats prefixes: single %d router %d", sstats.Prefixes, rstats.Prefixes)
			}
			if rstats.Shards == nil || rstats.Shards.Version != ShardsInfoVersion ||
				len(rstats.Shards.Shards) != 3 || rstats.Shards.Failed != 0 {
				t.Errorf("stats shards block: %+v", rstats.Shards)
			}
		})
	}
}

// firstDiffLine returns the first line of a at which a and b diverge.
func firstDiffLine(a, b []byte) []byte {
	al, bl := bytes.Split(a, []byte("\n")), bytes.Split(b, []byte("\n"))
	for i := range al {
		if i >= len(bl) || !bytes.Equal(al[i], bl[i]) {
			return al[i]
		}
	}
	return nil
}

// TestFederationPartialResults kills one shard and proves the router
// degrades instead of failing: 200 answers carrying an accurate
// X-Shards-Failed header, a down row in the stats shards block, and a
// 503 /healthz naming the dead shard.
func TestFederationPartialResults(t *testing.T) {
	f := newFederationFixture(t)
	servers, routerHandler := f.startShardServers(t, "prefix-split")
	router := httptest.NewServer(routerHandler)
	defer router.Close()

	// Baseline: all shards up, no degradation header.
	resp, _ := get(t, router.URL, "/events?format=ndjson")
	if resp.StatusCode != 200 || resp.Header.Get("X-Shards-Failed") != "" {
		t.Fatalf("healthy baseline: status=%d header=%q", resp.StatusCode, resp.Header.Get("X-Shards-Failed"))
	}

	servers[1].Close() // kill one shard

	resp, body := get(t, router.URL, "/events?format=ndjson")
	if resp.StatusCode != 200 {
		t.Fatalf("partial NDJSON: status %d", resp.StatusCode)
	}
	if got := resp.Header.Get("X-Shards-Failed"); got != "1" {
		t.Fatalf("partial NDJSON: X-Shards-Failed=%q, want 1", got)
	}
	lines := bytes.Count(bytes.TrimRight(body, "\n"), []byte("\n")) + 1
	if lines >= len(f.events) || lines == 0 {
		t.Fatalf("partial NDJSON: %d lines, want a non-empty strict subset of %d", lines, len(f.events))
	}

	resp, jbody := get(t, router.URL, "/events")
	if resp.StatusCode != 200 || resp.Header.Get("X-Shards-Failed") != "1" {
		t.Fatalf("partial JSON: status=%d header=%q", resp.StatusCode, resp.Header.Get("X-Shards-Failed"))
	}
	var envelope struct {
		Total int `json:"total"`
	}
	if err := json.Unmarshal(jbody, &envelope); err != nil {
		t.Fatal(err)
	}
	if envelope.Total <= 0 || envelope.Total >= len(f.events) {
		t.Fatalf("partial JSON: total %d, want a non-empty strict subset of %d", envelope.Total, len(f.events))
	}

	_, sbody := get(t, router.URL, "/stats")
	var stats BackendStats
	if err := json.Unmarshal(sbody, &stats); err != nil {
		t.Fatal(err)
	}
	if stats.Shards == nil || stats.Shards.Failed != 1 {
		t.Fatalf("stats after kill: %+v", stats.Shards)
	}
	down := 0
	for _, sh := range stats.Shards.Shards {
		if sh.Status == "down" {
			down++
			if sh.Err == "" {
				t.Error("down shard row carries no error")
			}
		}
	}
	if down != 1 {
		t.Fatalf("stats after kill: %d down rows, want 1", down)
	}

	resp, hbody := get(t, router.URL, "/healthz")
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("healthz after kill: status %d, want 503", resp.StatusCode)
	}
	var health struct {
		Status string            `json:"status"`
		Checks map[string]string `json:"checks"`
	}
	if err := json.Unmarshal(hbody, &health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "degraded" || len(health.Checks) == 0 {
		t.Fatalf("healthz after kill: %+v", health)
	}

	// Everything dead: data routes fail loudly instead of serving an
	// empty 200.
	servers[0].Close()
	servers[2].Close()
	resp, _ = get(t, router.URL, "/events")
	if resp.StatusCode != http.StatusBadGateway {
		t.Fatalf("all shards dead: status %d, want 502", resp.StatusCode)
	}
}

// TestFederationLimitPushdownProperty is the pushdown law, in process:
// for every filter combination and a range of limits, pushing Limit=k
// to each shard and re-cutting the global merge equals the single
// store's top-k. Holds because each shard's stream is an ordered
// subsequence of the global stream, so per-shard top-ks cover the
// global top-k.
func TestFederationLimitPushdownProperty(t *testing.T) {
	f := newFederationFixture(t)
	ctx := context.Background()
	singleBE := NewStoreBackend(f.single, f.p)
	for plan, stores := range f.shards {
		backends := make([]Backend, len(stores))
		for i, st := range stores {
			backends[i] = NewStoreBackend(st, f.p).WithName(fmt.Sprintf("s%d", i))
		}
		fed := NewFederatedStore(backends...)
		ev := f.events[len(f.events)/2]
		var user ASN
		for u := range ev.Users {
			user = u
			break
		}
		octet := ev.Prefix.Addr().As4()[0]
		queries := []Query{
			{},
			{Prefix: mustPrefix(fmt.Sprintf("%d.0.0.0/8", octet)), Mode: PrefixCovered},
			{OriginASN: user},
			{MinDuration: 10 * time.Minute},
			{From: ev.Start.Add(-24 * time.Hour), To: ev.End.Add(24 * time.Hour)},
		}
		for qi, base := range queries {
			for _, k := range []int{0, 1, 2, 3, 5, 8, 13, 50, 10000} {
				q := base
				q.Limit = k
				want, err := singleBE.Records(ctx, q)
				if err != nil {
					t.Fatal(err)
				}
				got, err := fed.Records(ctx, q)
				if err != nil {
					t.Fatal(err)
				}
				if got.Total != want.Total || len(got.Records) != len(want.Records) {
					t.Fatalf("%s q%d k=%d: total %d vs %d, returned %d vs %d",
						plan, qi, k, got.Total, want.Total, len(got.Records), len(want.Records))
				}
				for i := range want.Records {
					if KeyOf(got.Records[i]) != KeyOf(want.Records[i]) {
						t.Fatalf("%s q%d k=%d: record %d diverges: %v vs %v",
							plan, qi, k, i, KeyOf(got.Records[i]), KeyOf(want.Records[i]))
					}
				}
			}
		}
	}
}

// TestFederationStatsVersionTag is the compatibility regression: the
// router's /stats still decodes into the plain StoreStats shape older
// clients use (flat keys untouched by the shards block), /healthz
// keeps its historical {"status","events"} keys, and the shards block
// carries its version tag for forward evolution.
func TestFederationStatsVersionTag(t *testing.T) {
	f := newFederationFixture(t)
	_, routerHandler := f.startShardServers(t, "time-partition")
	router := httptest.NewServer(routerHandler)
	defer router.Close()

	// A PR-6-era decoder: plain StoreStats, no knowledge of shards.
	var old StoreStats
	_, body := get(t, router.URL, "/stats")
	if err := json.Unmarshal(body, &old); err != nil {
		t.Fatalf("old decoder rejects router stats: %v", err)
	}
	if old.Events != f.single.Len() {
		t.Fatalf("old decoder sees %d events, want %d", old.Events, f.single.Len())
	}

	// The raw JSON carries the version-tagged block alongside.
	var tagged map[string]json.RawMessage
	if err := json.Unmarshal(body, &tagged); err != nil {
		t.Fatal(err)
	}
	var shards struct {
		Version int `json:"version"`
	}
	if err := json.Unmarshal(tagged["shards"], &shards); err != nil || shards.Version != ShardsInfoVersion {
		t.Fatalf("shards block version: %v (err %v), want %d", shards.Version, err, ShardsInfoVersion)
	}

	var health struct {
		Status string `json:"status"`
		Events int    `json:"events"`
	}
	_, hbody := get(t, router.URL, "/healthz")
	if err := json.Unmarshal(hbody, &health); err != nil {
		t.Fatal(err)
	}
	if health.Status != "ok" || health.Events != f.single.Len() {
		t.Fatalf("healthz shape: %+v", health)
	}
}

// TestFederationReplica proves the replica flow end to end: ship a
// live store's segments with ReplicateStore, serve the replica
// read-only, and get identical query answers; re-replication after
// more writes catches the replica up incrementally.
func TestFederationReplica(t *testing.T) {
	f := newFederationFixture(t)
	src := f.shards["prefix-split"][0]
	srcDir := f.shardDirs["prefix-split"][0]
	dstDir := t.TempDir() + "/replica"

	rep, err := ReplicateStore(srcDir, dstDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Copied) == 0 {
		t.Fatal("first pass copied nothing")
	}
	replica, err := OpenStoreReadOnly(dstDir)
	if err != nil {
		t.Fatal(err)
	}
	defer replica.Close()
	if replica.Len() != src.Len() {
		t.Fatalf("replica holds %d events, source %d", replica.Len(), src.Len())
	}
	wantEvents, gotEvents := src.Events(), replica.Events()
	for i := range wantEvents {
		if wantEvents[i].Seq != gotEvents[i].Seq || wantEvents[i].Prefix != gotEvents[i].Prefix {
			t.Fatalf("replica event %d diverges", i)
		}
	}

	// Second pass over an unchanged source ships nothing.
	rep2, err := ReplicateStore(srcDir, dstDir)
	if err != nil {
		t.Fatal(err)
	}
	if len(rep2.Copied) != 0 || len(rep2.Deleted) != 0 {
		t.Fatalf("steady-state pass copied %v deleted %v", rep2.Copied, rep2.Deleted)
	}
}

// TestFederationMergeOrderIsGlobalCloseOrder pins the ordering
// contract directly: the federated stream yields events in exactly the
// single store's append order (closing order), which is also strictly
// sorted by RecordKey when every event carries a Seq.
func TestFederationMergeOrderIsGlobalCloseOrder(t *testing.T) {
	f := newFederationFixture(t)
	ctx := context.Background()
	for plan, stores := range f.shards {
		backends := make([]Backend, len(stores))
		for i, st := range stores {
			backends[i] = NewStoreBackend(st, nil)
		}
		fed := NewFederatedStore(backends...)
		stream, err := fed.RecordLines(ctx, Query{})
		if err != nil {
			t.Fatal(err)
		}
		var keys []RecordKey
		for {
			rl, err := stream.Next()
			if err != nil {
				break
			}
			keys = append(keys, rl.Key)
		}
		stream.Close()
		if len(keys) != len(f.events) {
			t.Fatalf("%s: merged %d records, want %d", plan, len(keys), len(f.events))
		}
		if !sort.SliceIsSorted(keys, func(i, j int) bool { return keys[i].Less(keys[j]) }) {
			t.Fatalf("%s: merged stream is not sorted by RecordKey", plan)
		}
		for i, ev := range f.single.Events() {
			if keys[i].Seq != ev.Seq {
				t.Fatalf("%s: position %d has seq %d, single store has %d", plan, i, keys[i].Seq, ev.Seq)
			}
		}
	}
}

func mustPrefix(s string) netip.Prefix { return netip.MustParsePrefix(s) }
