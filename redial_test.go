package bgpblackholing

// Session-resilience tests: dial timeouts against unresponsive peers,
// and the RedialSource reconnect loop driven through real TCP sessions
// killed on schedule by faultfs.FlakyConn.

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net"
	"net/netip"
	"os"
	"strings"
	"sync"
	"testing"
	"time"

	"bgpblackholing/internal/bgp"
	"bgpblackholing/internal/bgpd"
	"bgpblackholing/internal/collector"
	"bgpblackholing/internal/faultfs"
	"bgpblackholing/internal/mrt"
)

// TestDialTimeoutUnresponsivePeer dials a listener whose kernel
// accepts the TCP connection but whose "daemon" never answers the
// OPEN: without the handshake-covering deadline this would hang
// forever.
func TestDialTimeoutUnresponsivePeer(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	// Never Accept: connections sit established in the backlog with a
	// silent peer behind them.

	start := time.Now()
	_, err = DialBGP(ln.Addr().String(), BGPConfig{
		ASN: 65001, BGPID: netip.MustParseAddr("10.0.0.1"),
		DialTimeout: 200 * time.Millisecond,
	})
	elapsed := time.Since(start)
	if err == nil {
		t.Fatal("dial against a silent peer succeeded")
	}
	if !os.IsTimeout(err) {
		var nerr net.Error
		if !errors.As(err, &nerr) || !nerr.Timeout() {
			t.Fatalf("want a timeout error, got %v", err)
		}
	}
	if elapsed > 5*time.Second {
		t.Fatalf("timeout took %v, configured 200ms", elapsed)
	}
}

// TestDialBGPContextCancel proves a canceled context aborts the dial
// promptly even with a long configured timeout.
func TestDialBGPContextCancel(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	ctx, cancel := context.WithTimeout(context.Background(), 100*time.Millisecond)
	defer cancel()
	start := time.Now()
	_, err = DialBGPContext(ctx, ln.Addr().String(), BGPConfig{
		ASN: 65001, BGPID: netip.MustParseAddr("10.0.0.1"),
		DialTimeout: time.Hour,
	})
	if err == nil {
		t.Fatal("dial with an expired context succeeded")
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("context cancellation took %v", elapsed)
	}
}

// testUpdate builds a minimal valid announcement for wire round-trips.
func testUpdate(i int) *Update {
	return &Update{
		Time:      time.Date(2015, 3, 1, 0, 0, 0, 0, time.UTC).Add(time.Duration(i) * time.Minute),
		Origin:    bgp.OriginIGP,
		Path:      bgp.NewPath(65001, 65002),
		NextHop:   netip.MustParseAddr("192.0.2.1"),
		Announced: []netip.Prefix{netip.PrefixFrom(netip.AddrFrom4([4]byte{10, 20, byte(i), 0}), 24)},
	}
}

// reseedDump builds a one-entry TABLE_DUMP_V2 archive for the reseed
// path.
func reseedDump(t *testing.T) []byte {
	t.Helper()
	var buf bytes.Buffer
	w := mrt.NewWriter(&buf)
	dumpTime := time.Date(2015, 3, 1, 1, 0, 0, 0, time.UTC)
	if err := w.WritePeerIndexTable(&mrt.PeerIndexTable{
		Time:        dumpTime,
		CollectorID: netip.MustParseAddr("22.0.0.1"),
		ViewName:    "rrc00",
		Peers: []mrt.Peer{{
			BGPID: netip.MustParseAddr("22.0.1.1"),
			IP:    netip.MustParseAddr("22.0.1.1"),
			AS:    65001,
		}},
	}); err != nil {
		t.Fatal(err)
	}
	if err := w.WriteRIB(&mrt.RIB{
		Time:   dumpTime,
		Prefix: netip.MustParsePrefix("31.200.0.1/32"),
		Entries: []mrt.RIBEntry{{
			PeerIndex:      0,
			OriginatedTime: dumpTime.Add(-time.Hour),
			Attrs: &bgp.Update{
				Origin:  bgp.OriginIGP,
				Path:    bgp.NewPath(65001, 65002),
				NextHop: netip.MustParseAddr("22.0.1.2"),
			},
		}},
	}); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

// TestChaosRedialSessionReset drives the full reconnect loop over real
// TCP: the first session is killed mid-feed by a FlakyConn write
// budget on the collector side; the source must back off, redial,
// replay the reseed RIB dump into the stream, and resume the live
// feed — emitting structured transitions throughout.
func TestChaosRedialSessionReset(t *testing.T) {
	if testing.Short() {
		t.Skip("network integration test")
	}
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	dump := reseedDump(t)

	serverCfg := bgpd.Config{ASN: 65001, BGPID: netip.MustParseAddr("10.255.0.1")}
	var serverWG sync.WaitGroup
	serverWG.Add(1)
	go func() {
		defer serverWG.Done()
		for sessionNo := 1; ; sessionNo++ {
			conn, err := ln.Accept()
			if err != nil {
				return
			}
			wire := net.Conn(conn)
			if sessionNo == 1 {
				// Handshake writes OPEN + KEEPALIVE (2), then two
				// updates fit the budget; the third write kills the
				// session mid-feed.
				wire = faultfs.Flaky(conn).FailWritesAfter(4, nil)
			}
			sess, err := bgpd.Establish(wire, serverCfg)
			if err != nil {
				conn.Close()
				continue
			}
			for i := 0; ; i++ {
				if err := sess.SendUpdate(testUpdate(sessionNo*10 + i)); err != nil {
					break
				}
				if sessionNo > 1 && i == 1 {
					// Two updates delivered on the healthy session;
					// hold it open until the client closes.
					io.Copy(io.Discard, conn)
					break
				}
			}
			conn.Close()
			if sessionNo > 1 {
				return
			}
		}
	}()

	var tmu sync.Mutex
	var transitions []ConnTransition
	src := NewRedialSource(ln.Addr().String(), RedialConfig{
		Session:        BGPConfig{ASN: 64900, BGPID: netip.MustParseAddr("10.0.0.9"), DialTimeout: 5 * time.Second},
		CollectorName:  "chaos",
		Platform:       collector.PlatformRIS,
		InitialBackoff: 10 * time.Millisecond,
		MaxBackoff:     50 * time.Millisecond,
		Jitter:         -1,
		Reseed: func() (io.ReadCloser, error) {
			return io.NopCloser(bytes.NewReader(dump)), nil
		},
		OnTransition: func(tr ConnTransition) {
			tmu.Lock()
			transitions = append(transitions, tr)
			tmu.Unlock()
		},
	})

	// 2 updates (session 1) + 1 reseed entry + 2 updates (session 2).
	const want = 5
	var got []*Elem
	for len(got) < want {
		el, err := src.Next()
		if err != nil {
			t.Fatalf("Next after %d elements: %v", len(got), err)
		}
		got = append(got, el)
	}
	src.Close()
	for {
		if _, err := src.Next(); err != nil {
			if !errors.Is(err, io.EOF) {
				t.Fatalf("drain after Close: %v", err)
			}
			break
		}
	}
	ln.Close()
	serverWG.Wait()

	// The reseed entry must sit between the two sessions' updates and
	// carry the dump's prefix.
	if got[2].Update.Announced[0] != netip.MustParsePrefix("31.200.0.1/32") {
		t.Errorf("element 3 = %v, want the reseed RIB entry", got[2].Update.Announced)
	}
	for i, wantIdx := range []int{10, 11, -1, 20, 21} {
		if wantIdx < 0 {
			continue
		}
		if got[i].Update.Announced[0] != testUpdate(wantIdx).Announced[0] {
			t.Errorf("element %d = %v, want update %d", i, got[i].Update.Announced, wantIdx)
		}
		if got[i].Update.PeerAS != 65001 {
			t.Errorf("element %d peer AS = %v, want the dialed peer's 65001", i, got[i].Update.PeerAS)
		}
	}

	tmu.Lock()
	defer tmu.Unlock()
	counts := map[ConnState]int{}
	var sawBackoffErr bool
	for _, tr := range transitions {
		counts[tr.To]++
		if tr.To == ConnBackoff && tr.Err != nil {
			sawBackoffErr = true
		}
	}
	if counts[ConnEstablished] < 2 {
		t.Errorf("established %d times, want ≥ 2 (initial + redial): %+v", counts[ConnEstablished], transitions)
	}
	if counts[ConnReseeding] != 1 {
		t.Errorf("reseeding transitions = %d, want 1", counts[ConnReseeding])
	}
	if counts[ConnBackoff] == 0 || !sawBackoffErr {
		t.Error("session reset produced no backoff transition carrying the failure")
	}
	if transitions[len(transitions)-1].To != ConnClosed {
		t.Errorf("final state %v, want closed", transitions[len(transitions)-1].To)
	}
}

// TestChaosRedialRetryBudget exhausts the retry budget against a dead
// address: the feed must end with the terminal error, not a clean EOF.
func TestChaosRedialRetryBudget(t *testing.T) {
	// Grab a port and close it so dials are refused.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	addr := ln.Addr().String()
	ln.Close()

	var tmu sync.Mutex
	var last ConnTransition
	src := NewRedialSource(addr, RedialConfig{
		Session:        BGPConfig{ASN: 64900, BGPID: netip.MustParseAddr("10.0.0.9"), DialTimeout: time.Second},
		InitialBackoff: 5 * time.Millisecond,
		Jitter:         -1,
		MaxRetries:     2,
		OnTransition: func(tr ConnTransition) {
			tmu.Lock()
			last = tr
			tmu.Unlock()
		},
	})
	_, err = src.Next()
	if err == nil || errors.Is(err, io.EOF) {
		t.Fatalf("budget exhaustion surfaced %v, want a terminal error", err)
	}
	if !strings.Contains(err.Error(), "retry budget") {
		t.Fatalf("terminal error %q does not name the retry budget", err)
	}
	tmu.Lock()
	defer tmu.Unlock()
	if last.To != ConnGaveUp {
		t.Fatalf("final transition to %v, want gave-up", last.To)
	}
	if last.Attempt != 3 {
		t.Fatalf("gave up after attempt %d, want 3 (budget 2 + the final try)", last.Attempt)
	}
}
