package bgpblackholing

import (
	"context"
	"testing"
	"time"

	"bgpblackholing/internal/analysis"
)

// checkFigure4MatchesScan asserts the materialized daily aggregates
// answer Figure4 identically to the reference sequential scan, for the
// store's whole span plus windows hanging off either edge.
func checkFigure4MatchesScan(t *testing.T, st *Store, stage string) {
	t.Helper()
	stats := st.Stats()
	if stats.MinStart.IsZero() {
		t.Fatalf("%s: store is empty", stage)
	}
	base := stats.MinStart.UTC().Truncate(24 * time.Hour)
	span := int(stats.MaxEnd.Sub(base).Hours()/24) + 1
	windows := []struct {
		start time.Time
		days  int
	}{
		{base, span},
		{base.AddDate(0, 0, -3), span + 3},            // leading empty days
		{base.AddDate(0, 0, 2), 3},                    // interior slice
		{base.AddDate(0, 0, span+5), 4},               // past the span: all-zero
		{base, 1},                                     // single day
		{base.Add(7 * time.Hour), span},               // unaligned: scan fallback
		{base.In(time.FixedZone("UTC+3", 3*3600)), 2}, // aligned instant, non-UTC location
	}
	for wi, w := range windows {
		got := st.Figure4(w.start, w.days)
		want := analysis.Figure4Seq(st.s.All(), w.start, w.days)
		if len(got) != len(want) {
			t.Fatalf("%s window %d: %d points, want %d", stage, wi, len(got), len(want))
		}
		for d := range want {
			if !got[d].Day.Equal(want[d].Day) || got[d].Providers != want[d].Providers ||
				got[d].Users != want[d].Users || got[d].Prefixes != want[d].Prefixes {
				t.Fatalf("%s window %d day %d: got %+v, want %+v", stage, wi, d, got[d], want[d])
			}
		}
	}
}

// TestFigure4MaterializedMatchesScan is the equivalence property for
// the O(days) materialized read path: at every store lifecycle stage —
// freshly ingested, after a tombstone, after compaction, and across a
// cold reopen — Figure4 answers exactly what the full sequential scan
// over All() computes.
func TestFigure4MaterializedMatchesScan(t *testing.T) {
	p, err := NewPipeline(SmallOptions())
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	st, err := OpenStoreWith(dir, StoreOptions{MaxSegmentBytes: 8 << 10})
	if err != nil {
		t.Fatal(err)
	}
	det := p.NewDetector()
	wait := det.SinkToStore(st)
	res, err := det.Run(context.Background(), p.Replay(800, 812))
	if err != nil {
		t.Fatal(err)
	}
	if err := wait(); err != nil {
		t.Fatal(err)
	}
	if len(res.Events) == 0 {
		t.Fatal("replay window produced no events")
	}
	checkFigure4MatchesScan(t, st, "ingested")

	// Tombstone a prefix that actually has events: dayRemove must keep
	// the refcounted aggregates in step with the live set.
	victim := res.Events[len(res.Events)/2].Prefix
	n, err := st.DeletePrefix(victim, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if n == 0 {
		t.Fatalf("DeletePrefix(%s) removed nothing", victim)
	}
	checkFigure4MatchesScan(t, st, "tombstoned")

	if _, err := st.Compact(CompactionPolicy{MergeAll: true}); err != nil {
		t.Fatal(err)
	}
	checkFigure4MatchesScan(t, st, "compacted")

	if err := st.Close(); err != nil {
		t.Fatal(err)
	}
	st, err = OpenStoreWith(dir, StoreOptions{ReadOnly: true, ColdOpen: true, Mmap: true})
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	if cold := st.Stats().SegmentsCold; cold == 0 {
		t.Fatal("reopen found no cold segments; sidecars missing")
	}
	checkFigure4MatchesScan(t, st, "reopened-cold")
}
