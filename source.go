package bgpblackholing

import (
	"context"
	"errors"
	"io"
	"os"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"bgpblackholing/internal/collector"
	"bgpblackholing/internal/mrt"
	"bgpblackholing/internal/stream"
	"bgpblackholing/internal/workload"
)

// Source produces timestamped BGP observations in non-decreasing time
// order, ending with io.EOF. It is the single feed abstraction the
// Detector consumes: the batch longitudinal replay (ReplaySource), a
// near-real-time feed of TCP BGP sessions (LiveSource) and RFC 6396
// MRT archives (MRTSource) all implement it, and callers can supply
// their own implementations — any type with a
// Next() (*Elem, error) method qualifies.
type Source interface {
	// Next returns the next element, or nil, io.EOF at end of feed.
	Next() (*Elem, error)
}

// runAware is implemented by the built-in sources that need run-scoped
// cancellation wiring: Detector.Run calls attach before consuming, with
// the run's context and a channel closed when Run returns.
type runAware interface {
	attach(ctx context.Context, runDone <-chan struct{})
}

// unwrappable lets Run discover a ReplaySource behind the package's
// element-level combinators (MapSource, FilterSource), so the replay's
// window metadata, flush default and retained last-week results survive
// wrapping. MergeSources does not unwrap: a merged feed has no single
// replay window.
type unwrappable interface {
	unwrap() Source
}

// replayOf walks combinator wrappers down to a ReplaySource, or nil.
func replayOf(src Source) *ReplaySource {
	for {
		if rs, ok := src.(*ReplaySource); ok {
			return rs
		}
		u, ok := src.(unwrappable)
		if !ok {
			return nil
		}
		src = u.unwrap()
	}
}

// ErrSourceClosed is returned by a source whose Close was called while
// a consumer was still reading.
var ErrSourceClosed = errors.New("bgpblackholing: source closed")

// ---------------------------------------------------------------------
// ReplaySource — the batch longitudinal replay (§6).

// dayBatch is one day's materialized replay input: the time-sorted
// observation stream plus the propagation results retained for
// data-plane experiments.
type dayBatch struct {
	elems   []*stream.Elem
	results []*collector.Result
	intents []workload.Intent
}

// ReplaySource materializes a window of the pipeline's longitudinal
// scenario as a Source: each day's intents are generated and propagated
// to the collectors, and the per-day observation batches are delivered
// in strict day order. Materialization and propagation — the dominant
// cost — are day-sharded across Options.Workers goroutines feeding the
// consumer through a ticket-bounded pipeline, so elements stream out
// identically for every worker count at a given Seed.
//
// A ReplaySource is single-consumer and single-use. Close releases the
// worker goroutines early; it is called automatically when the source
// is drained or its attached run is canceled.
type ReplaySource struct {
	p              *Pipeline
	fromDay, toDay int
	windowStart    time.Time
	windowEnd      time.Time
	ctx            context.Context
	started        bool
	stop           chan struct{}
	stopOnce       sync.Once
	wg             sync.WaitGroup
	batches        []dayBatch
	ready          []chan struct{}
	tickets        chan struct{}
	cur            []*stream.Elem
	pos            int
	day            int
	results        []*collector.Result
	intents        []workload.Intent
}

// Replay returns a ReplaySource over days [fromDay, toDay) of the
// pipeline's scenario, ready to be passed to Detector.Run.
func (p *Pipeline) Replay(fromDay, toDay int) *ReplaySource {
	return &ReplaySource{
		p:           p,
		fromDay:     fromDay,
		toDay:       toDay,
		windowStart: workload.TimelineStart.Add(time.Duration(fromDay) * 24 * time.Hour),
		windowEnd:   workload.TimelineStart.Add(time.Duration(toDay) * 24 * time.Hour),
		ctx:         context.Background(),
		stop:        make(chan struct{}),
	}
}

// WindowStart returns the wall-clock start of the replayed window.
func (r *ReplaySource) WindowStart() time.Time { return r.windowStart }

// WindowEnd returns the wall-clock end of the replayed window.
func (r *ReplaySource) WindowEnd() time.Time { return r.windowEnd }

// ordinary returns the window's background churn, observed by the
// dictionary-inference collector before the replay so the Figure 2
// statistics see ordinary TE communities alongside blackhole ones.
func (r *ReplaySource) ordinary() []collector.Observation {
	return r.p.Deploy.OrdinaryUpdates(r.windowStart, 5000)
}

// attach wires run-scoped cancellation: the workers observe the run
// context, and the source shuts down when the run returns.
func (r *ReplaySource) attach(ctx context.Context, runDone <-chan struct{}) {
	r.ctx = ctx
	go func() {
		select {
		case <-ctx.Done():
		case <-runDone:
		}
		r.halt()
	}()
}

// halt releases the worker goroutines without waiting for them.
func (r *ReplaySource) halt() {
	r.stopOnce.Do(func() { close(r.stop) })
}

// Close releases the worker goroutines and waits for them to exit. It
// is safe to call multiple times and after the source is drained.
func (r *ReplaySource) Close() error {
	r.halt()
	r.wg.Wait()
	return nil
}

// start launches the day-sharded materialization pipeline: workers
// claim days through an atomic cursor — but only after acquiring an
// in-flight ticket, which caps the number of unconsumed batches held in
// memory and guarantees the merge cursor's day is always being worked
// on.
func (r *ReplaySource) start() {
	r.started = true
	nDays := r.toDay - r.fromDay
	if nDays <= 0 {
		return
	}
	workers := r.p.Opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > nDays {
		workers = nDays
	}
	r.batches = make([]dayBatch, nDays)
	r.ready = make([]chan struct{}, nDays)
	for i := range r.ready {
		r.ready[i] = make(chan struct{})
	}
	inFlight := 2 * workers
	if inFlight > nDays {
		inFlight = nDays
	}
	r.tickets = make(chan struct{}, inFlight)
	for i := 0; i < inFlight; i++ {
		r.tickets <- struct{}{}
	}
	fill := func(i int) dayBatch {
		day := r.fromDay + i
		intents := r.p.Scenario.IntentsForDay(day)
		obs, results := workload.Materialize(r.p.Deploy, r.p.Topo, intents, r.p.Opts.Seed)
		b := dayBatch{elems: stream.SortedElems(obs)}
		if day >= r.toDay-7 {
			// Only the window's last week is retained for the data-plane
			// experiments; earlier days carry nil slices.
			b.results, b.intents = results, intents
		}
		return b
	}
	var cursor atomic.Int64
	done := r.ctx.Done()
	for w := 0; w < workers; w++ {
		r.wg.Add(1)
		go func() {
			defer r.wg.Done()
			for {
				select {
				case <-r.tickets:
				case <-r.stop:
					return
				case <-done:
					return
				}
				i := int(cursor.Add(1)) - 1
				if i >= nDays {
					return
				}
				r.batches[i] = fill(i)
				close(r.ready[i])
			}
		}()
	}
}

// Next returns the window's observations one element at a time, in the
// same global order for every worker count.
func (r *ReplaySource) Next() (*Elem, error) {
	if !r.started {
		r.start()
	}
	for r.pos >= len(r.cur) {
		nDays := r.toDay - r.fromDay
		if r.day >= nDays {
			r.halt()
			return nil, io.EOF
		}
		select {
		case <-r.ready[r.day]:
		case <-r.stop:
			return nil, r.abortErr()
		case <-r.ctx.Done():
			return nil, r.ctx.Err()
		}
		b := r.batches[r.day]
		r.batches[r.day] = dayBatch{} // release the day's memory promptly
		r.results = append(r.results, b.results...)
		r.intents = append(r.intents, b.intents...)
		r.cur, r.pos = b.elems, 0
		r.day++
		r.tickets <- struct{}{}
	}
	el := r.cur[r.pos]
	r.pos++
	return el, nil
}

func (r *ReplaySource) abortErr() error {
	if err := r.ctx.Err(); err != nil {
		return err
	}
	return ErrSourceClosed
}

// takeResults hands the retained last-week propagation results and
// intents to the run result.
func (r *ReplaySource) takeResults() ([]*collector.Result, []workload.Intent) {
	res, in := r.results, r.intents
	r.results, r.intents = nil, nil
	return res, in
}

// ---------------------------------------------------------------------
// LiveSource — near-real-time feeds (§10).

// LiveSource is a channel-backed Source for near-real-time consumption,
// the BGPStream "live mode" the paper's §10 measurement campaign runs
// on: producers push elements as collectors observe them — by hand via
// Publish, or from real TCP BGP sessions via ServeBGP — and the
// Detector drains them as they arrive. Close ends the feed gracefully:
// the consumer sees every pending element, then io.EOF.
type LiveSource struct {
	live *stream.Live
}

// NewLiveSource returns an open live source.
func NewLiveSource() *LiveSource {
	return &LiveSource{live: stream.NewLive()}
}

// Publish appends one element. Publishing to a closed source is a
// no-op (late producers during shutdown are tolerated).
func (l *LiveSource) Publish(e *Elem) { l.live.Publish(e) }

// PublishUpdate wraps a raw update in its collection context and
// publishes it.
func (l *LiveSource) PublishUpdate(u *Update, collectorName string, platform Platform) {
	l.live.Publish(&stream.Elem{Collector: collectorName, Platform: platform, Update: u})
}

// Close ends the feed; pending elements still drain, then the consumer
// receives io.EOF.
func (l *LiveSource) Close() { l.live.Close() }

// Pending reports the buffered element count (monitoring hook).
func (l *LiveSource) Pending() int { return l.live.Pending() }

// SetBufferLimit bounds the publish buffer at n elements; once a
// consumer falls that far behind, the oldest buffered element is
// discarded per publish (count them with Dropped). 0 — the default —
// keeps the buffer unbounded.
func (l *LiveSource) SetBufferLimit(n int) { l.live.SetLimit(n) }

// Dropped counts elements discarded by the buffer limit.
func (l *LiveSource) Dropped() uint64 { return l.live.Dropped() }

// Next blocks until an element is available or the source is closed and
// drained.
func (l *LiveSource) Next() (*Elem, error) { return l.live.Next() }

// attach unblocks a consumer parked in Next when the run's context is
// canceled; Detector.Run translates the resulting ErrInterrupted into
// the context's error. A stale interrupt left behind by a previously
// canceled run is cleared first, so the new run resumes the feed.
func (l *LiveSource) attach(ctx context.Context, runDone <-chan struct{}) {
	l.live.ClearInterrupt()
	done := ctx.Done()
	if done == nil {
		return
	}
	go func() {
		select {
		case <-done:
			l.live.Interrupt()
		case <-runDone:
		}
	}()
}

// ---------------------------------------------------------------------
// MRTSource — RFC 6396 archives.

// MRTSource replays one MRT archive as a Source: BGP4MP records yield
// their inner update, RIB records are expanded into one announcement
// per entry (stamped with the record time). Combine several archives
// with MergeSources. Close releases the underlying file when the
// source was opened with OpenMRTSource.
type MRTSource struct {
	s stream.Stream
	c io.Closer
}

// NewMRTSource replays an MRT archive from r, labeling every element
// with the given collector name and platform.
func NewMRTSource(r io.Reader, collectorName string, platform Platform) *MRTSource {
	return &MRTSource{s: stream.FromMRT(mrt.NewReader(r), collectorName, platform)}
}

// OpenMRTSource opens an MRT archive file; Close releases it.
func OpenMRTSource(path, collectorName string, platform Platform) (*MRTSource, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	return &MRTSource{s: stream.FromMRT(mrt.NewReader(f), collectorName, platform), c: f}, nil
}

// Next returns the archive's next update.
func (m *MRTSource) Next() (*Elem, error) { return m.s.Next() }

// Close releases the underlying file, if any.
func (m *MRTSource) Close() error {
	if m.c == nil {
		return nil
	}
	return m.c.Close()
}

// ---------------------------------------------------------------------
// Source combinators.

// MergeSources k-way merges time-ordered sources into one time-ordered
// Source (on equal timestamps the lowest-numbered source wins) —
// exactly how the paper's pipeline merges per-collector archives into
// a single BGPStream feed. Cancellation wiring passes through to every
// child source.
func MergeSources(srcs ...Source) Source {
	ss := make([]stream.Stream, len(srcs))
	for i, s := range srcs {
		ss[i] = s
	}
	return &mergedSource{s: stream.Merge(ss...), srcs: srcs}
}

type mergedSource struct {
	s    stream.Stream
	srcs []Source
}

func (m *mergedSource) Next() (*Elem, error) { return m.s.Next() }

func (m *mergedSource) attach(ctx context.Context, runDone <-chan struct{}) {
	for _, s := range m.srcs {
		if ra, ok := s.(runAware); ok {
			ra.attach(ctx, runDone)
		}
	}
}

// FilterSource keeps only the elements matching pred. Cancellation
// wiring passes through to the underlying source.
func FilterSource(src Source, pred func(*Elem) bool) Source {
	return MapSource(src, func(e *Elem) *Elem {
		if pred(e) {
			return e
		}
		return nil
	})
}

// MapSource rewrites each element with f before delivery. Returning nil
// drops the element. Cancellation wiring passes through to the
// underlying source.
func MapSource(src Source, f func(*Elem) *Elem) Source {
	return &mapSource{src: src, f: f}
}

type mapSource struct {
	src Source
	f   func(*Elem) *Elem
}

func (m *mapSource) Next() (*Elem, error) {
	for {
		e, err := m.src.Next()
		if err != nil {
			return nil, err
		}
		if e = m.f(e); e != nil {
			return e, nil
		}
	}
}

func (m *mapSource) attach(ctx context.Context, runDone <-chan struct{}) {
	if ra, ok := m.src.(runAware); ok {
		ra.attach(ctx, runDone)
	}
}

func (m *mapSource) unwrap() Source { return m.src }
