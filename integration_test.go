package bgpblackholing

// End-to-end integration tests: the full detection pipeline must produce
// identical events whether it consumes live observations or replays the
// same updates from MRT archives (the bhgen → bhdetect path), and table
// dumps must seed events whose true start is unknown.

import (
	"bytes"
	"net/netip"
	"sort"
	"testing"
	"time"

	"bgpblackholing/internal/bgp"
	"bgpblackholing/internal/collector"
	"bgpblackholing/internal/core"
	"bgpblackholing/internal/mrt"
	"bgpblackholing/internal/stream"
	"bgpblackholing/internal/workload"
)

// eventSignature canonicalises an event for cross-run comparison.
type eventSignature struct {
	prefix   string
	start    int64
	end      int64
	nProv    int
	nPeers   int
	detCount int
}

func signatures(events []*core.Event) []eventSignature {
	out := make([]eventSignature, 0, len(events))
	for _, ev := range events {
		out = append(out, eventSignature{
			prefix:   ev.Prefix.String(),
			start:    ev.Start.Unix(),
			end:      ev.End.Unix(),
			nProv:    len(ev.Providers),
			nPeers:   len(ev.Peers),
			detCount: ev.Detections,
		})
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].prefix != out[j].prefix {
			return out[i].prefix < out[j].prefix
		}
		return out[i].start < out[j].start
	})
	return out
}

func TestMRTReplayMatchesLiveRun(t *testing.T) {
	p := smallPipeline(t)
	from, to := 846, 848
	flushAt := workload.TimelineStart.Add(time.Duration(to+30) * 24 * time.Hour)

	// Live run.
	live := core.NewEngine(p.Dict, p.Topo)
	var allObs []collector.Observation
	for day := from; day < to; day++ {
		obs, _ := workload.Materialize(p.Deploy, p.Topo, p.Scenario.IntentsForDay(day), p.Opts.Seed)
		allObs = append(allObs, obs...)
	}
	s := stream.FromObservations(allObs)
	if err := live.Run(s); err != nil {
		t.Fatal(err)
	}
	live.Flush(flushAt)

	// Archive run: write per-collector MRT, read back, merge, re-infer.
	perCollector := map[string][]collector.Observation{}
	colByName := map[string]*collector.Collector{}
	for _, c := range p.Deploy.Collectors {
		colByName[c.Name] = c
	}
	for _, o := range allObs {
		perCollector[o.Collector.Name] = append(perCollector[o.Collector.Name], o)
	}
	var names []string
	for n := range perCollector {
		names = append(names, n)
	}
	sort.Strings(names)
	var streams []stream.Stream
	for _, name := range names {
		var buf bytes.Buffer
		w := mrt.NewWriter(&buf)
		cs := stream.FromObservations(perCollector[name])
		for {
			el, err := cs.Next()
			if err != nil {
				break
			}
			if err := w.WriteUpdate(el.Update, colByName[name].IP, colByName[name].ASN); err != nil {
				t.Fatal(err)
			}
		}
		streams = append(streams, stream.FromMRT(mrt.NewReader(&buf), name, colByName[name].Platform))
	}
	replayed := core.NewEngine(p.Dict, p.Topo)
	if err := replayed.Run(stream.Merge(streams...)); err != nil {
		t.Fatal(err)
	}
	replayed.Flush(flushAt)

	a, b := signatures(live.Events()), signatures(replayed.Events())
	if len(a) == 0 {
		t.Fatal("live run produced no events")
	}
	if len(a) != len(b) {
		t.Fatalf("event counts differ: live %d vs replay %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs:\nlive   %+v\nreplay %+v", i, a[i], b[i])
		}
	}
}

func TestTableDumpSeedsEngineThroughMRT(t *testing.T) {
	p := smallPipeline(t)
	provider := p.Topo.BlackholingProviders()[0]
	comm := provider.Blackholing.Communities[0]
	victim := netip.MustParsePrefix("31.200.0.1/32")
	dumpTime := workload.TimelineStart.Add(800 * 24 * time.Hour)

	// Write a TABLE_DUMP_V2 snapshot containing a blackholed prefix.
	var buf bytes.Buffer
	w := mrt.NewWriter(&buf)
	pit := &mrt.PeerIndexTable{
		Time:        dumpTime,
		CollectorID: netip.MustParseAddr("22.0.0.1"),
		ViewName:    "rrc00",
		Peers: []mrt.Peer{{
			BGPID: netip.MustParseAddr("22.0.1.1"),
			IP:    netip.MustParseAddr("22.0.1.1"),
			AS:    provider.ASN,
		}},
	}
	if err := w.WritePeerIndexTable(pit); err != nil {
		t.Fatal(err)
	}
	rib := &mrt.RIB{
		Time:   dumpTime,
		Prefix: victim,
		Entries: []mrt.RIBEntry{{
			PeerIndex:      0,
			OriginatedTime: dumpTime.Add(-2 * time.Hour),
			Attrs: &bgp.Update{
				Origin:      bgp.OriginIGP,
				Path:        bgp.NewPath(provider.ASN, 65001),
				NextHop:     netip.MustParseAddr("22.0.1.2"),
				Communities: []bgp.Community{comm},
			},
		}},
	}
	if err := w.WriteRIB(rib); err != nil {
		t.Fatal(err)
	}

	// Read the dump back and seed the engine with it.
	r := mrt.NewReader(&buf)
	engine := core.NewEngine(p.Dict, p.Topo)
	for {
		rec, err := r.Next()
		if err != nil {
			break
		}
		if rr, ok := rec.(*mrt.RIB); ok {
			entries, err := r.ResolveRIB(rr)
			if err != nil {
				t.Fatal(err)
			}
			engine.InitFromRIB(entries, dumpTime, "rrc00", collector.PlatformRIS)
		}
	}
	if engine.ActiveCount() != 1 {
		t.Fatalf("active = %d after dump seeding", engine.ActiveCount())
	}

	// An explicit withdrawal ends the dump-seeded event.
	engine.ProcessUpdate(&bgp.Update{
		Time:      dumpTime.Add(30 * time.Minute),
		PeerIP:    netip.MustParseAddr("22.0.1.1"),
		PeerAS:    provider.ASN,
		Withdrawn: []netip.Prefix{victim},
	}, "rrc00", collector.PlatformRIS)
	evs := engine.Events()
	if len(evs) != 1 {
		t.Fatalf("events = %d", len(evs))
	}
	if !evs[0].StartUnknown {
		t.Fatal("dump-seeded event should have unknown start")
	}
	if !evs[0].Providers[core.ProviderRef{Kind: core.ProviderAS, ASN: provider.ASN}] {
		t.Fatal("provider missing")
	}
}

func TestLiveRunDeterministicAcrossPipelines(t *testing.T) {
	// Two pipelines from identical options must agree event for event.
	p1 := smallPipeline(t)
	p2 := smallPipeline(t)
	a := p1.RunWindow(847, 849)
	b := p2.RunWindow(847, 849)
	sa, sb := signatures(a.Events), signatures(b.Events)
	if len(sa) != len(sb) {
		t.Fatalf("counts differ: %d vs %d", len(sa), len(sb))
	}
	for i := range sa {
		if sa[i] != sb[i] {
			t.Fatalf("event %d differs", i)
		}
	}
}
