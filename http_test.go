package bgpblackholing

import (
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/netip"
	"strings"
	"testing"
	"time"
)

// storeFixture builds a store with three hand-made events: two /32s
// under 10.1.0.0/16 (one long, one short) and one unrelated /24.
func storeFixture(t *testing.T) *Store {
	t.Helper()
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { st.Close() })
	base := time.Date(2015, 3, 1, 12, 0, 0, 0, time.UTC)
	mk := func(prefix string, start time.Time, dur time.Duration, user ASN) *Event {
		pr := ProviderRef{Kind: ProviderAS, ASN: 3356}
		return &Event{
			Prefix:      netip.MustParsePrefix(prefix),
			Start:       start,
			End:         start.Add(dur),
			Providers:   map[ProviderRef]bool{pr: true},
			Users:       map[ASN]bool{user: true},
			Communities: map[Community]bool{MakeCommunity(3356, 9999): true},
			Platforms:   map[Platform]bool{PlatformRIS: true},
			Peers:       map[netip.Addr]bool{netip.MustParseAddr("192.0.2.1"): true},
			Detections:  2,
		}
	}
	err = st.Append(
		mk("10.1.2.3/32", base, 3*time.Hour, 65001),
		mk("10.1.9.9/32", base.Add(24*time.Hour), 5*time.Minute, 65002),
		mk("172.16.5.0/24", base.Add(48*time.Hour), time.Hour, 65003),
	)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

func getJSON(t *testing.T, url string, out any) *http.Response {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("GET %s: decode: %v", url, err)
		}
	}
	return resp
}

func TestStoreHTTPAPI(t *testing.T) {
	st := storeFixture(t)
	srv := httptest.NewServer(NewStoreHandler(st, nil))
	defer srv.Close()

	var health struct {
		Status string `json:"status"`
		Events int    `json:"events"`
	}
	getJSON(t, srv.URL+"/healthz", &health)
	if health.Status != "ok" || health.Events != 3 {
		t.Fatalf("healthz: %+v", health)
	}

	var stats StoreStats
	getJSON(t, srv.URL+"/stats", &stats)
	if stats.Events != 3 || stats.Prefixes != 3 {
		t.Fatalf("stats: %+v", stats)
	}

	type eventsResp struct {
		Total    int           `json:"total"`
		Returned int           `json:"returned"`
		Scanned  int           `json:"scanned"`
		Events   []EventRecord `json:"events"`
	}

	// Covered query: the two /32s inside 10.1.0.0/16, not the /24.
	var covered eventsResp
	getJSON(t, srv.URL+"/events?prefix=10.1.0.0/16&mode=covered", &covered)
	if covered.Total != 2 || len(covered.Events) != 2 {
		t.Fatalf("covered: %+v", covered)
	}

	// LPM point lookup by bare address.
	var lpm eventsResp
	getJSON(t, srv.URL+"/events?prefix=10.1.2.3&mode=lpm", &lpm)
	if lpm.Total != 1 || lpm.Events[0].Prefix != "10.1.2.3/32" {
		t.Fatalf("lpm: %+v", lpm)
	}

	// Origin + duration + time filters.
	var dur eventsResp
	getJSON(t, srv.URL+"/events?origin=65001&min_duration=1h", &dur)
	if dur.Total != 1 || dur.Events[0].Users[0] != 65001 {
		t.Fatalf("origin+min_duration: %+v", dur)
	}
	var window eventsResp
	getJSON(t, srv.URL+"/events?from=2015-03-02T00:00:00Z&to=2015-03-02T23:59:00Z", &window)
	if window.Total != 1 || window.Events[0].Prefix != "10.1.9.9/32" {
		t.Fatalf("time window: %+v", window)
	}

	// Community + provider filters.
	var comm eventsResp
	getJSON(t, srv.URL+"/events?community=3356:9999&provider=AS3356", &comm)
	if comm.Total != 3 {
		t.Fatalf("community+provider: %+v", comm)
	}

	// NDJSON streaming: one record per line.
	resp, err := http.Get(srv.URL + "/events?format=ndjson")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("ndjson content type: %s", ct)
	}
	lines := strings.Split(strings.TrimSpace(string(body)), "\n")
	if len(lines) != 3 {
		t.Fatalf("ndjson: %d lines, want 3: %q", len(lines), body)
	}
	var rec EventRecord
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil || rec.Prefix == "" {
		t.Fatalf("ndjson line 0: %v %q", err, lines[0])
	}

	// Aggregations.
	var series []DailyPoint
	getJSON(t, srv.URL+"/figure4?every=1", &series)
	if len(series) < 3 {
		t.Fatalf("figure4: %d points", len(series))
	}
	var f8 struct {
		UngroupedEvents int `json:"ungrouped_events"`
		GroupedPeriods  int `json:"grouped_periods"`
	}
	getJSON(t, srv.URL+"/figure8?timeout=5m", &f8)
	if f8.UngroupedEvents != 3 || f8.GroupedPeriods != 3 {
		t.Fatalf("figure8: %+v", f8)
	}

	// Figure4 bounds: a start past the store's span yields an empty
	// series; a start far before it trips the day cap.
	var empty []DailyPoint
	getJSON(t, srv.URL+"/figure4?start=2030-01-01T00:00:00Z", &empty)
	if len(empty) != 0 {
		t.Fatalf("figure4 past the span: %d points, want 0", len(empty))
	}
	if resp := getJSON(t, srv.URL+"/figure4?start=1000-01-01T00:00:00Z", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("figure4 far-past start: status %d, want 400", resp.StatusCode)
	}

	// Errors: bad parameter, unknown route, missing pipeline.
	if resp := getJSON(t, srv.URL+"/events?from=yesterday", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad from: status %d", resp.StatusCode)
	}
	if resp := getJSON(t, srv.URL+"/events?prefix=not-an-ip", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad prefix: status %d", resp.StatusCode)
	}
	if resp := getJSON(t, srv.URL+"/table3", nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("table3 without pipeline: status %d", resp.StatusCode)
	}
	if resp := getJSON(t, srv.URL+"/nope", nil); resp.StatusCode != http.StatusNotFound {
		t.Fatalf("unknown route: status %d", resp.StatusCode)
	}
}

func TestStoreHTTPTablesWithPipeline(t *testing.T) {
	p, err := NewPipeline(SmallOptions())
	if err != nil {
		t.Fatal(err)
	}
	st := storeFixture(t)
	srv := httptest.NewServer(NewStoreHandler(st, p))
	defer srv.Close()
	var rows3 []Table3Row
	getJSON(t, srv.URL+"/table3", &rows3)
	if len(rows3) == 0 {
		t.Fatal("table3: no rows")
	}
	var rows4 []Table4Row
	getJSON(t, srv.URL+"/table4", &rows4)
	if len(rows4) == 0 {
		t.Fatal("table4: no rows")
	}
}
