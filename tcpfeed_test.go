package bgpblackholing

// Integration: a full day of collector observations streamed over real
// TCP BGP sessions (one session per observing peer) must yield the same
// events as the direct in-memory run. This exercises internal/bgpd as
// the collectors' actual ingestion transport.

import (
	"errors"
	"io"
	"net"
	"net/netip"
	"sync"
	"testing"
	"time"

	"bgpblackholing/internal/bgp"
	"bgpblackholing/internal/bgpd"
	"bgpblackholing/internal/collector"
	"bgpblackholing/internal/core"
	"bgpblackholing/internal/stream"
	"bgpblackholing/internal/workload"
)

func TestTCPFeedMatchesDirectRun(t *testing.T) {
	if testing.Short() {
		t.Skip("network integration test")
	}
	p := smallPipeline(t)
	day := 849
	intents := p.Scenario.IntentsForDay(day)[:8] // a manageable slice
	allObs, _ := workload.Materialize(p.Deploy, p.Topo, intents, p.Opts.Seed)
	if len(allObs) == 0 {
		t.Skip("no observations for the selected intents")
	}
	// Restrict to the busiest single (collector, peer) feed: within one
	// TCP session ordering is deterministic, so the replay must match
	// the direct run exactly. (Cross-session interleaving is
	// nondeterministic by nature; the MRT replay test covers the
	// multi-feed merge.)
	counts := map[netip.Addr]int{}
	for _, o := range allObs {
		counts[o.Update.PeerIP]++
	}
	var busiest netip.Addr
	for ip, n := range counts {
		if !busiest.IsValid() || n > counts[busiest] || (n == counts[busiest] && ip.Less(busiest)) {
			busiest = ip
		}
	}
	var obs []collector.Observation
	for _, o := range allObs {
		if o.Update.PeerIP == busiest {
			obs = append(obs, o)
		}
	}
	flushAt := workload.TimelineStart.Add(time.Duration(day+40) * 24 * time.Hour)

	// Direct run.
	direct := core.NewEngine(p.Dict, p.Topo)
	s := stream.FromObservations(obs)
	if err := direct.Run(s); err != nil {
		t.Fatal(err)
	}
	direct.Flush(flushAt)

	// TCP run: one listener; each distinct (collector, peer) pair gets
	// its own BGP session pushing its observations in time order.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	// Time-order the feed as the direct run consumes it, and record the
	// send-order metadata: the wire format cannot carry the collection
	// timestamp, and within a single TCP session receipt order equals
	// send order, so a FIFO of stamps restores it exactly.
	ordered, err := stream.Collect(stream.FromObservations(obs))
	if err != nil {
		t.Fatal(err)
	}
	type stamped struct {
		t    time.Time
		peer netip.Addr
		as   bgp.ASN
	}
	stamps := make([]stamped, 0, len(ordered))
	for _, el := range ordered {
		stamps = append(stamps, stamped{el.Update.Time, el.Update.PeerIP, el.Update.PeerAS})
	}

	live := stream.NewLive()
	var acceptWG sync.WaitGroup
	acceptWG.Add(1)
	go func() {
		defer acceptWG.Done()
		conn, err := ln.Accept()
		if err != nil {
			live.Close()
			return
		}
		sess, err := bgpd.Establish(conn, bgpd.Config{
			ASN: 64900, BGPID: netip.MustParseAddr("10.255.0.1"), HoldTime: 30 * time.Second,
		})
		if err != nil {
			t.Errorf("collector handshake: %v", err)
			live.Close()
			return
		}
		defer sess.Close()
		for {
			u, err := sess.ReadUpdate()
			if err != nil {
				if !errors.Is(err, io.EOF) && !errors.Is(err, bgpd.ErrNotification) {
					t.Errorf("collector read: %v", err)
				}
				live.Close()
				return
			}
			live.Publish(&stream.Elem{Collector: "tcp", Platform: collector.PlatformRIS, Update: u})
		}
	}()

	// Producer: one session replaying the feed in time order.
	go func() {
		conn, err := net.Dial("tcp", ln.Addr().String())
		if err != nil {
			t.Errorf("dial: %v", err)
			return
		}
		sess, err := bgpd.Establish(conn, bgpd.Config{
			ASN: ordered[0].Update.PeerAS, BGPID: netip.MustParseAddr("10.0.0.9"), HoldTime: 30 * time.Second,
		})
		if err != nil {
			t.Errorf("router handshake: %v", err)
			return
		}
		defer sess.Close()
		for _, el := range ordered {
			if err := sess.SendUpdate(el.Update); err != nil {
				t.Errorf("send: %v", err)
				return
			}
		}
	}()

	// Consumer: restore metadata FIFO and buffer the elements.
	var elems []*stream.Elem
	for {
		el, err := live.Next()
		if err != nil {
			break
		}
		if len(elems) < len(stamps) {
			st := stamps[len(elems)]
			el.Update.Time = st.t
			el.Update.PeerIP = st.peer
			el.Update.PeerAS = st.as
		}
		elems = append(elems, el)
	}
	acceptWG.Wait()
	if len(elems) != len(ordered) {
		t.Fatalf("received %d updates over TCP, sent %d", len(elems), len(ordered))
	}

	replayed := core.NewEngine(p.Dict, p.Topo)
	if err := replayed.Run(stream.FromElems(elems)); err != nil {
		t.Fatal(err)
	}
	replayed.Flush(flushAt)

	a, b := signatures(direct.Events()), signatures(replayed.Events())
	if len(a) == 0 {
		t.Fatal("direct run produced no events")
	}
	if len(a) != len(b) {
		t.Fatalf("event counts differ: direct %d vs tcp %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("event %d differs:\ndirect %+v\ntcp    %+v", i, a[i], b[i])
		}
	}
}
