package bgpblackholing

// Tests for the query-time legitimacy enrichment plane: the annotator
// wired through Query.Enrich, the /events?enrich=1 and /legitimacy HTTP
// surfaces with their error paths, the guarantee that un-enriched
// responses keep the pre-enrichment wire format byte for byte, the
// NDJSON streaming path (QuerySeq) matching the materialized path, and
// the ParseProviderRef casing fix.

import (
	"bytes"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"net/netip"
	"strings"
	"testing"
	"time"

	"bgpblackholing/internal/dictionary"
)

// fixtureAnnotator documents 3356:9999 (private, max /32) and caps
// 174:666 at /24; the registry validates 10.1/16 host routes for AS
// 65001 and strands AS 65002's more-specifics under 10.2/16.
func fixtureAnnotator() *Annotator {
	reg := &RPKIRegistry{}
	reg.Add(ROA{Prefix: netip.MustParsePrefix("10.1.0.0/16"), MaxLength: 32, ASN: 65001})
	reg.Add(ROA{Prefix: netip.MustParsePrefix("10.2.0.0/16"), MaxLength: 16, ASN: 65002})
	dict := dictionary.New()
	dict.AddPrivate(MakeCommunity(3356, 9999), 3356, 32)
	dict.AddPrivate(MakeCommunity(174, 666), 174, 24)
	return NewAnnotator(reg, dict)
}

func TestQueryEnrich(t *testing.T) {
	st := storeFixture(t)
	st.SetAnnotator(fixtureAnnotator())

	res := st.Query(Query{Enrich: true})
	if len(res.Events) != 3 || len(res.Annotations) != 3 {
		t.Fatalf("events/annotations = %d/%d, want 3/3", len(res.Events), len(res.Annotations))
	}
	// Event 0: 10.1.2.3/32, origin 65001 → valid, documented community.
	if got := res.Annotations[0]; got.Legitimacy != VerdictLegitimate || got.RPKISummary() != "valid" {
		t.Fatalf("annotation 0 = %+v", got)
	}
	// Event 1: 10.1.9.9/32 is covered by AS 65001's ROA but originated
	// by 65002 → invalid at its only origin → illegitimate.
	if got := res.Annotations[1]; got.Legitimacy != VerdictIllegitimate || got.RPKISummary() != "invalid" {
		t.Fatalf("annotation 1 = %+v", got)
	}
	// Event 2: 172.16.5.0/24 has no covering ROA → not-found, still
	// legitimate (absence of RPKI is not condemnation).
	if got := res.Annotations[2]; got.Legitimacy != VerdictLegitimate || got.RPKISummary() != "not-found" {
		t.Fatalf("annotation 2 = %+v", got)
	}

	// Enrich off, or no annotator: no annotations allocated.
	if res := st.Query(Query{}); res.Annotations != nil {
		t.Fatalf("unexpected annotations without Enrich: %+v", res.Annotations)
	}
	st.SetAnnotator(nil)
	if res := st.Query(Query{Enrich: true}); res.Annotations != nil {
		t.Fatalf("unexpected annotations without annotator: %+v", res.Annotations)
	}
}

func TestHTTPEventsEnriched(t *testing.T) {
	st := storeFixture(t)
	st.SetAnnotator(fixtureAnnotator())
	srv := httptest.NewServer(NewStoreHandler(st, nil))
	defer srv.Close()

	var resp struct {
		Total  int           `json:"total"`
		Events []EventRecord `json:"events"`
	}
	getJSON(t, srv.URL+"/events?enrich=1", &resp)
	if resp.Total != 3 {
		t.Fatalf("total = %d", resp.Total)
	}
	for i, rec := range resp.Events {
		if rec.Legitimacy == "" {
			t.Fatalf("event %d: no legitimacy field: %+v", i, rec)
		}
		if len(rec.RPKI) == 0 || len(rec.CommunityDoc) == 0 {
			t.Fatalf("event %d: missing enrichment sections: %+v", i, rec)
		}
	}
	if resp.Events[0].RPKI[0].State != "valid" || resp.Events[0].Legitimacy != VerdictLegitimate {
		t.Fatalf("event 0 enrichment: %+v", resp.Events[0])
	}

	// Enriched NDJSON carries the same fields.
	raw, ct := getRaw(t, srv.URL+"/events?enrich=true&format=ndjson")
	if ct != "application/x-ndjson" {
		t.Fatalf("content type %q", ct)
	}
	lines := strings.Split(strings.TrimSpace(raw), "\n")
	if len(lines) != 3 {
		t.Fatalf("ndjson: %d lines", len(lines))
	}
	var rec EventRecord
	if err := json.Unmarshal([]byte(lines[0]), &rec); err != nil || rec.Legitimacy == "" {
		t.Fatalf("ndjson enrichment: %v %q", err, lines[0])
	}
}

// TestHTTPAnnotatorAttachedAfterHandler proves the handler resolves the
// store's annotator per request: SetAnnotator after NewStoreHandler
// still enables enrichment (the natural read-only-frontend order).
func TestHTTPAnnotatorAttachedAfterHandler(t *testing.T) {
	st := storeFixture(t)
	srv := httptest.NewServer(NewStoreHandler(st, nil))
	defer srv.Close()

	if resp := getJSON(t, srv.URL+"/events?enrich=1", nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("pre-attach: status %d, want 503", resp.StatusCode)
	}
	st.SetAnnotator(fixtureAnnotator())
	var resp struct {
		Events []EventRecord `json:"events"`
	}
	getJSON(t, srv.URL+"/events?enrich=1", &resp)
	if len(resp.Events) != 3 || resp.Events[0].Legitimacy == "" {
		t.Fatalf("post-attach enrichment missing: %+v", resp.Events)
	}
}

func TestHTTPLegitimacySummary(t *testing.T) {
	st := storeFixture(t)
	st.SetAnnotator(fixtureAnnotator())
	srv := httptest.NewServer(NewStoreHandler(st, nil))
	defer srv.Close()

	var sum struct {
		Total        int            `json:"total"`
		Legitimacy   map[string]int `json:"legitimacy"`
		RPKI         map[string]int `json:"rpki"`
		CommunityDoc map[string]int `json:"community_doc"`
	}
	getJSON(t, srv.URL+"/legitimacy", &sum)
	if sum.Total != 3 {
		t.Fatalf("total = %d", sum.Total)
	}
	if sum.Legitimacy[VerdictLegitimate] != 2 || sum.Legitimacy[VerdictIllegitimate] != 1 {
		t.Fatalf("verdicts = %+v", sum.Legitimacy)
	}
	if sum.RPKI["valid"] != 1 || sum.RPKI["invalid"] != 1 || sum.RPKI["not-found"] != 1 {
		t.Fatalf("rpki histogram = %+v", sum.RPKI)
	}
	if sum.CommunityDoc["private"] != 3 {
		t.Fatalf("community_doc histogram = %+v", sum.CommunityDoc)
	}

	// Filters narrow the summary like /events.
	getJSON(t, srv.URL+"/legitimacy?prefix=10.1.0.0/16&mode=covered", &sum)
	if sum.Total != 2 {
		t.Fatalf("filtered total = %d, want 2", sum.Total)
	}
}

func TestHTTPEnrichmentErrorPaths(t *testing.T) {
	st := storeFixture(t) // no annotator, no pipeline
	srv := httptest.NewServer(NewStoreHandler(st, nil))
	defer srv.Close()

	// Enrichment without a world: 503, mirroring the table endpoints.
	if resp := getJSON(t, srv.URL+"/events?enrich=1", nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("enrich without world: status %d, want 503", resp.StatusCode)
	}
	if resp := getJSON(t, srv.URL+"/legitimacy", nil); resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("legitimacy without world: status %d, want 503", resp.StatusCode)
	}
	// Bad enrich value: 400.
	if resp := getJSON(t, srv.URL+"/events?enrich=banana", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("bad enrich: status %d, want 400", resp.StatusCode)
	}
	// Non-positive grouping timeout: 400 instead of a nonsense grouping.
	for _, v := range []string{"-5s", "0s"} {
		if resp := getJSON(t, srv.URL+"/figure8?timeout="+v, nil); resp.StatusCode != http.StatusBadRequest {
			t.Fatalf("figure8 timeout=%s: status %d, want 400", v, resp.StatusCode)
		}
	}
	// Negative duration bounds: 400.
	if resp := getJSON(t, srv.URL+"/events?min_duration=-1h", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative min_duration: status %d, want 400", resp.StatusCode)
	}
	if resp := getJSON(t, srv.URL+"/events?max_duration=-1s", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("negative max_duration: status %d, want 400", resp.StatusCode)
	}
	// A legitimacy summary with a bad filter param is 400, not 503.
	stAnn := storeFixture(t)
	stAnn.SetAnnotator(fixtureAnnotator())
	srv2 := httptest.NewServer(NewStoreHandler(stAnn, nil))
	defer srv2.Close()
	if resp := getJSON(t, srv2.URL+"/legitimacy?from=yesterday", nil); resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("legitimacy bad filter: status %d, want 400", resp.StatusCode)
	}
}

// getRaw fetches a URL and returns the body and content type.
func getRaw(t *testing.T, url string) (string, string) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return string(body), resp.Header.Get("Content-Type")
}

// TestUnenrichedResponsesByteIdentical proves enrichment is invisible
// until asked for: with an annotator attached (but enrich off) every
// /events response — JSON and NDJSON — is byte-identical to the one a
// pre-enrichment handler (no annotator anywhere) serves.
func TestUnenrichedResponsesByteIdentical(t *testing.T) {
	plain := storeFixture(t)
	enrichable := storeFixture(t)
	enrichable.SetAnnotator(fixtureAnnotator())
	srvPlain := httptest.NewServer(NewStoreHandler(plain, nil))
	defer srvPlain.Close()
	srvEnrich := httptest.NewServer(NewStoreHandler(enrichable, nil))
	defer srvEnrich.Close()

	for _, path := range []string{
		"/events",
		"/events?prefix=10.1.0.0/16&mode=covered",
		"/events?format=ndjson",
		"/events?origin=65001&min_duration=1h",
	} {
		a, _ := getRaw(t, srvPlain.URL+path)
		b, _ := getRaw(t, srvEnrich.URL+path)
		// elapsed_us is wall-clock noise; everything else must match to
		// the byte, so mask just that field.
		if maskElapsed(a) != maskElapsed(b) {
			t.Fatalf("%s: responses differ with enrich off:\n%s\n---\n%s", path, a, b)
		}
		if strings.Contains(a, "legitimacy") || strings.Contains(a, `"rpki"`) {
			t.Fatalf("%s: enrichment keys leaked into un-enriched response:\n%s", path, a)
		}
	}
}

func maskElapsed(s string) string {
	out := []string{}
	for _, line := range strings.Split(s, "\n") {
		if strings.Contains(line, `"elapsed_us"`) {
			continue
		}
		out = append(out, line)
	}
	return strings.Join(out, "\n")
}

// TestEventRecordWireFormatGolden pins the exact un-enriched JSON wire
// format: a serialized record must match the pre-enrichment shape byte
// for byte — no new keys, no reordering.
func TestEventRecordWireFormatGolden(t *testing.T) {
	pr := ProviderRef{Kind: ProviderAS, ASN: 3356}
	ev := &Event{
		Prefix:      netip.MustParsePrefix("10.1.2.3/32"),
		Start:       time.Date(2015, 3, 1, 12, 0, 0, 0, time.UTC),
		End:         time.Date(2015, 3, 1, 15, 0, 0, 0, time.UTC),
		Providers:   map[ProviderRef]bool{pr: true},
		Users:       map[ASN]bool{65001: true},
		Communities: map[Community]bool{MakeCommunity(3356, 9999): true},
		Platforms:   map[Platform]bool{PlatformRIS: true},
		Peers:       map[netip.Addr]bool{netip.MustParseAddr("192.0.2.1"): true},
		Detections:  2,
	}
	got, err := json.Marshal(NewEventRecord(ev))
	if err != nil {
		t.Fatal(err)
	}
	const want = `{"prefix":"10.1.2.3/32","start":"2015-03-01T12:00:00Z","end":"2015-03-01T15:00:00Z","duration_seconds":10800,"providers":["AS3356"],"users":[65001],"communities":["3356:9999"],"platforms":["RIS"],"peers":1,"detections":2}`
	if string(got) != want {
		t.Fatalf("wire format drifted:\n got %s\nwant %s", got, want)
	}
}

// TestNDJSONStreamsMatchMaterialized asserts the QuerySeq-driven NDJSON
// branch emits exactly what the materialized Query path would.
func TestNDJSONStreamsMatchMaterialized(t *testing.T) {
	st := storeFixture(t)
	srv := httptest.NewServer(NewStoreHandler(st, nil))
	defer srv.Close()

	for _, path := range []string{
		"/events?format=ndjson",
		"/events?format=ndjson&prefix=10.1.0.0/16&mode=covered",
		"/events?format=ndjson&limit=2",
		"/events?format=ndjson&origin=65002",
	} {
		raw, _ := getRaw(t, srv.URL+path)

		// Materialized reference: run the equivalent Query and encode
		// the records the way the JSON path does.
		q, err := parseQuery(httptest.NewRequest("GET", path, nil))
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		enc := json.NewEncoder(&buf)
		for _, ev := range st.Query(q).Events {
			if err := enc.Encode(NewEventRecord(ev)); err != nil {
				t.Fatal(err)
			}
		}
		if raw != buf.String() {
			t.Fatalf("%s: streamed NDJSON differs from materialized:\n%q\n---\n%q", path, raw, buf.String())
		}
	}
}

// TestParseProviderRefCasing covers the prefix-cutting fix: exactly one
// case-insensitive "AS" prefix is accepted, the old double-trim
// artifact "ASas3356" is rejected.
func TestParseProviderRefCasing(t *testing.T) {
	want := ProviderRef{Kind: ProviderAS, ASN: 3356}
	for _, s := range []string{"AS3356", "as3356", "As3356", "aS3356", "3356"} {
		got, err := ParseProviderRef(s)
		if err != nil || got != want {
			t.Errorf("ParseProviderRef(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	for _, s := range []string{"ASas3356", "asAS3356", "AsAs3356", "ASAS3356", "AS", "as", "ASx", "A3356", ""} {
		if got, err := ParseProviderRef(s); err == nil {
			t.Errorf("ParseProviderRef(%q) = %v, want error", s, got)
		}
	}
	// IXP notation is untouched.
	if got, err := ParseProviderRef("ixp:4"); err != nil || got != (ProviderRef{Kind: ProviderIXP, IXPID: 4}) {
		t.Errorf("ParseProviderRef(ixp:4) = %v, %v", got, err)
	}
}

// TestQuerySeqFacade exercises the root-level streaming query: same
// events as Query, in order, limit honoured.
func TestQuerySeqFacade(t *testing.T) {
	st := storeFixture(t)
	var got []*Event
	for ev := range st.QuerySeq(Query{Prefix: netip.MustParsePrefix("10.1.0.0/16"), Mode: PrefixCovered}) {
		got = append(got, ev)
	}
	want := st.Query(Query{Prefix: netip.MustParsePrefix("10.1.0.0/16"), Mode: PrefixCovered}).Events
	if len(got) != len(want) {
		t.Fatalf("QuerySeq yielded %d, Query returned %d", len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("event %d differs", i)
		}
	}
	n := 0
	for range st.QuerySeq(Query{Limit: 1}) {
		n++
	}
	if n != 1 {
		t.Fatalf("limit: yielded %d, want 1", n)
	}
}
