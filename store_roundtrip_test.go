package bgpblackholing

import (
	"bytes"
	"context"
	"fmt"
	"testing"

	"bgpblackholing/internal/store"
)

// TestStoreRoundTripMatchesRun is the persistence contract: a Detector
// run with a store sink, closed, reopened and queried-all yields events
// byte-identical (under the canonical store encoding) to the in-memory
// RunResult.Events, for every worker count.
func TestStoreRoundTripMatchesRun(t *testing.T) {
	for _, workers := range []int{1, 2, 8} {
		t.Run(fmt.Sprintf("workers=%d", workers), func(t *testing.T) {
			opts := SmallOptions()
			opts.Workers = workers
			p, err := NewPipeline(opts)
			if err != nil {
				t.Fatal(err)
			}
			dir := t.TempDir()
			st, err := OpenStore(dir)
			if err != nil {
				t.Fatal(err)
			}
			det := p.NewDetector()
			wait := det.SinkToStore(st)
			res, err := det.Run(context.Background(), p.Replay(800, 806))
			if err != nil {
				t.Fatal(err)
			}
			if err := wait(); err != nil {
				t.Fatalf("store sink: %v", err)
			}
			if err := st.Close(); err != nil {
				t.Fatal(err)
			}

			r, err := OpenStoreReadOnly(dir)
			if err != nil {
				t.Fatal(err)
			}
			defer r.Close()
			got := r.Events()
			if len(got) != len(res.Events) {
				t.Fatalf("store has %d events, run produced %d", len(got), len(res.Events))
			}
			if len(got) == 0 {
				t.Fatal("window produced no events; test window too narrow")
			}
			for i := range got {
				want := store.EncodeEvent(nil, res.Events[i])
				have := store.EncodeEvent(nil, got[i])
				if !bytes.Equal(want, have) {
					t.Fatalf("event %d (%s) not byte-identical after persist/reopen", i, res.Events[i].Prefix)
				}
			}

			// The reopened store answers point queries from its indexes —
			// no replay, no raw updates.
			ev := res.Events[0]
			qr := r.Query(Query{Prefix: ev.Prefix, Mode: PrefixLPM})
			if qr.Total == 0 {
				t.Fatalf("LPM query for %s found nothing", ev.Prefix)
			}
			if qr.Scanned > len(got) {
				t.Fatalf("LPM query scanned %d > %d stored events", qr.Scanned, len(got))
			}
			var user ASN
			for u := range ev.Users {
				user = u
				break
			}
			if user != 0 {
				if qr := r.Query(Query{OriginASN: user}); qr.Total == 0 {
					t.Fatalf("per-origin query for AS%d found nothing", user)
				}
			}
		})
	}
}

// TestStoreSinkAcrossRunsAccumulates: the sink covers one Run; a second
// Run with a fresh sink appends to the same store.
func TestStoreSinkAcrossRunsAccumulates(t *testing.T) {
	p, err := NewPipeline(SmallOptions())
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()

	total := 0
	for _, window := range [][2]int{{800, 803}, {803, 806}} {
		det := p.NewDetector()
		wait := det.SinkToStore(st)
		res, err := det.Run(context.Background(), p.Replay(window[0], window[1]))
		if err != nil {
			t.Fatal(err)
		}
		if err := wait(); err != nil {
			t.Fatal(err)
		}
		total += len(res.Events)
	}
	if st.Len() != total {
		t.Fatalf("store accumulated %d events across runs, want %d", st.Len(), total)
	}
}
