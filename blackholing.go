// Package bgpblackholing reproduces "Inferring BGP Blackholing Activity
// in the Internet" (Giotsas et al., IMC 2017) end to end: it builds a
// synthetic AS-level Internet, documents and extracts a blackhole
// communities dictionary, replays a December 2014 – March 2017 timeline
// of blackholing activity through simulated route collectors (RIPE RIS,
// Route Views, PCH, a large CDN), runs the paper's inference engine
// over the observed BGP updates, and regenerates every table and figure
// of the paper's evaluation.
//
// # The streaming detection API
//
// The batch longitudinal replay (§6) and the near-real-time measurement
// campaign (§10) are the same inference process over different update
// feeds, and the API treats them that way. A Source produces
// timestamped observations; a Detector drains one through the inference
// engine with context cancellation and incremental event delivery:
//
//	p, err := bgpblackholing.NewPipeline(bgpblackholing.SmallOptions())
//	if err != nil { ... }
//	det := p.NewDetector()
//	events := det.Stream() // or det.Subscribe(); register before Run
//	go func() {
//		for ev := range events {
//			fmt.Println(ev.Prefix, ev.Duration()) // events as they close
//		}
//	}()
//	res, err := det.Run(ctx, p.Replay(800, 810))
//	fmt.Println(len(res.Events), "blackholing events inferred")
//
// Three sources cover the paper's feeds — swap them freely under the
// same Run call:
//
//   - Pipeline.Replay   — the day-sharded parallel batch replay (§6)
//   - LiveSource        — near-real-time feeds, including real TCP BGP
//     sessions via ServeBGP (§10)
//   - MRTSource         — RFC 6396 archives, merged with MergeSources
//
// Closed events persist in a Store (Detector.SinkToStore): a crash-safe
// segmented log with indexes answering the paper's longitudinal queries
// — prefix LPM/covered, time range, origin ASN, duration, community —
// without replaying raw data, served over HTTP by NewStoreHandler /
// cmd/bhserve and queried by cmd/bhquery.
//
// The package is a facade over the internal building blocks, and
// re-exports the stable types (Event, Detection, Update, Elem, Metrics,
// ...) so downstream code never imports them directly:
//
//   - internal/bgp        — BGP model + RFC 4271 wire format
//   - internal/mrt        — RFC 6396 MRT archives
//   - internal/topology   — synthetic Internet (ASes, IXPs, routing)
//   - internal/irr        — IRR/web documentation corpus
//   - internal/dictionary — blackhole communities dictionary (§4.1)
//   - internal/collector  — route collectors + announcement propagation
//   - internal/stream     — BGPStream-like merged update streams
//   - internal/core       — the inference engine (§4.2)
//   - internal/store      — the persistent, indexed event store
//   - internal/rpki       — ROA registry, indexed RFC 6811 validation
//   - internal/enrich     — query-time legitimacy annotation
//   - internal/workload   — the longitudinal activity scenario (§6)
//   - internal/dataplane  — traceroute + IXP IPFIX simulation (§10)
//   - internal/scans      — scans.io-like host profiling (§8)
//   - internal/analysis   — every table and figure
package bgpblackholing

import (
	"context"
	"fmt"
	"sync"
	"time"

	"bgpblackholing/internal/analysis"
	"bgpblackholing/internal/collector"
	"bgpblackholing/internal/core"
	"bgpblackholing/internal/dictionary"
	"bgpblackholing/internal/irr"
	"bgpblackholing/internal/rpki"
	"bgpblackholing/internal/topology"
	"bgpblackholing/internal/workload"
)

// Options sizes an end-to-end pipeline.
type Options struct {
	// Seed drives all randomness; identical options yield identical
	// results.
	Seed int64
	// TopoScale scales the AS population (1.0 = paper scale: ~1700
	// ASes, 111 IXPs, 307 blackholing providers).
	TopoScale float64
	// CollectorScale scales collector session counts (1.0 = Table 1
	// scale: 425 RIS + 269 RV + PCH at every IXP + 3349 CDN sessions).
	CollectorScale float64
	// EventScale scales the daily blackholing event volume.
	EventScale float64
	// Days is the timeline length (850 ≈ Dec 2014 – Mar 2017).
	Days int
	// Workload selects a scenario preset: "" or "default" for the
	// paper-scale timeline, "flash-crowd" for interleaved DDoS waves of
	// short-lived episodes (the alerting-hub stress shape). EventScale,
	// Seed and Days still apply on top; a zero Days keeps the preset's
	// own timeline length.
	Workload string
	// Workers sizes the replay materialization pool: each worker
	// generates and propagates whole days independently, and the per-day
	// observation batches are then merged in day order into a single
	// deterministic inference pass. Results are identical for every
	// worker count and every Seed. Zero (the default) means
	// runtime.GOMAXPROCS(0); 1 forces the serial path.
	Workers int
}

// DefaultOptions is the paper-scale configuration.
func DefaultOptions() Options {
	return Options{Seed: 42, TopoScale: 1, CollectorScale: 1, EventScale: 1, Days: 850}
}

// SmallOptions is a laptop-friendly configuration for tests, examples
// and quick experiments: the same shapes at a fraction of the volume.
func SmallOptions() Options {
	return Options{Seed: 42, TopoScale: 0.15, CollectorScale: 0.15, EventScale: 0.3, Days: 850}
}

// Pipeline wires the full system together.
type Pipeline struct {
	Opts     Options
	Topo     *topology.Topology
	Deploy   *collector.Deployment
	Corpus   []irr.Document
	Dict     *dictionary.Dictionary
	Scenario *workload.Scenario

	// annOnce/ann memoize Annotator, so every surface (HTTP handler,
	// store, examples) shares one annotator — and one annotation cache.
	annOnce sync.Once
	ann     *Annotator
}

// NewPipeline builds the world: topology, collector deployment,
// documentation corpus, extracted dictionary (documented communities
// plus private-communication additions) and the longitudinal scenario.
func NewPipeline(opts Options) (*Pipeline, error) {
	topoCfg := topology.DefaultConfig().Scaled(opts.TopoScale)
	topoCfg.Seed = opts.Seed
	topo, err := topology.Generate(topoCfg)
	if err != nil {
		return nil, fmt.Errorf("generate topology: %w", err)
	}
	colCfg := collector.DefaultConfig().Scaled(opts.CollectorScale)
	colCfg.Seed = opts.Seed
	deploy := collector.Deploy(topo, colCfg)
	rpkiCfg := rpki.DefaultBuildConfig()
	rpkiCfg.Seed = opts.Seed
	deploy.RPKI = rpki.Build(topo, rpkiCfg)

	corpus := irr.GenerateCorpus(topo, opts.Seed)
	dict := dictionary.FromCorpus(corpus)
	dict.AddPrivateFromTopology(topo)

	wlCfg, err := workload.PresetConfig(opts.Workload)
	if err != nil {
		return nil, err
	}
	wlCfg = wlCfg.Scaled(opts.EventScale)
	wlCfg.Seed = opts.Seed
	if opts.Days > 0 {
		wlCfg.Days = opts.Days
	}
	scenario := workload.NewScenario(topo, wlCfg)

	return &Pipeline{
		Opts:     opts,
		Topo:     topo,
		Deploy:   deploy,
		Corpus:   corpus,
		Dict:     dict,
		Scenario: scenario,
	}, nil
}

// RunResult is the outcome of draining a Source through the inference
// engine.
type RunResult struct {
	// Events are the closed prefix-level blackholing events.
	Events []*core.Event
	// InferStats carries the per-community prefix-length statistics fed
	// during the run (Figure 2 raw material) and the inferred
	// undocumented communities.
	InferStats *dictionary.InferenceResult
	// Metrics snapshots the engine counters at the end of the run.
	Metrics Metrics
	// LastDayResults holds the propagation results of a replayed
	// window's last week, for data-plane experiments (nil for live and
	// MRT sources).
	LastDayResults []*collector.Result
	// LastDayIntents are the intents behind LastDayResults
	// (index-aligned is not guaranteed; use prefixes to match).
	LastDayIntents []workload.Intent
	// WindowStart and WindowEnd delimit the replayed wall-clock window
	// (zero for non-replay sources).
	WindowStart, WindowEnd time.Time
}

// RunWindow replays days [fromDay, toDay) of the scenario through the
// inference engine and returns the closed events.
//
// Deprecated: RunWindow is the pre-streaming batch entry point, kept as
// a thin wrapper producing byte-identical results. New code should use
// the cancellable, incrementally-delivering form directly:
//
//	det := p.NewDetector()
//	res, err := det.Run(ctx, p.Replay(fromDay, toDay))
func (p *Pipeline) RunWindow(fromDay, toDay int) *RunResult {
	res, err := p.NewDetector().Run(context.Background(), p.Replay(fromDay, toDay))
	if err != nil {
		// Unreachable: a background-context replay has no error paths.
		panic(fmt.Sprintf("bgpblackholing: RunWindow: %v", err))
	}
	return res
}

// RPKIRegistry returns the deployment's ROA registry, or nil when the
// deployment's validation hook is not registry-backed.
func (p *Pipeline) RPKIRegistry() *RPKIRegistry {
	if p.Deploy == nil {
		return nil
	}
	reg, _ := p.Deploy.RPKI.(*RPKIRegistry)
	return reg
}

// Annotator returns the pipeline's legitimacy annotator, built once
// from the world: the deployment's ROA registry and the extracted
// IRR/web dictionary. Attach it to a store (Store.SetAnnotator) to
// enable Query.Enrich, or annotate events directly with
// Annotator.Annotate. Every call returns the same instance, so all
// query surfaces share one annotation cache.
func (p *Pipeline) Annotator() *Annotator {
	p.annOnce.Do(func() { p.ann = NewAnnotator(p.RPKIRegistry(), p.Dict) })
	return p.ann
}

// Re-exported result helpers so downstream users rarely need to import
// the internal packages directly.

// Table1 computes the dataset overview (Table 1).
func (p *Pipeline) Table1() []analysis.Table1Row { return analysis.Table1(p.Deploy) }

// Table2 computes the communities-dictionary distribution (Table 2).
func (p *Pipeline) Table2(inferred *dictionary.InferenceResult) []analysis.Table2Row {
	return analysis.Table2(p.Dict, inferred, p.Topo)
}

// Table3 computes the blackhole visibility overview (Table 3).
func (p *Pipeline) Table3(events []*core.Event) []analysis.Table3Row {
	return analysis.Table3(events, p.Deploy)
}

// Table4 computes visibility by provider type (Table 4).
func (p *Pipeline) Table4(events []*core.Event) []analysis.Table4Row {
	return analysis.Table4(events, p.Topo, p.Deploy)
}
