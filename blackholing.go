// Package bgpblackholing reproduces "Inferring BGP Blackholing Activity
// in the Internet" (Giotsas et al., IMC 2017) end to end: it builds a
// synthetic AS-level Internet, documents and extracts a blackhole
// communities dictionary, replays a December 2014 – March 2017 timeline
// of blackholing activity through simulated route collectors (RIPE RIS,
// Route Views, PCH, a large CDN), runs the paper's inference engine
// over the observed BGP updates, and regenerates every table and figure
// of the paper's evaluation.
//
// The package is a facade over the internal building blocks:
//
//   - internal/bgp        — BGP model + RFC 4271 wire format
//   - internal/mrt        — RFC 6396 MRT archives
//   - internal/topology   — synthetic Internet (ASes, IXPs, routing)
//   - internal/irr        — IRR/web documentation corpus
//   - internal/dictionary — blackhole communities dictionary (§4.1)
//   - internal/collector  — route collectors + announcement propagation
//   - internal/stream     — BGPStream-like merged update streams
//   - internal/core       — the inference engine (§4.2)
//   - internal/workload   — the longitudinal activity scenario (§6)
//   - internal/dataplane  — traceroute + IXP IPFIX simulation (§10)
//   - internal/scans      — scans.io-like host profiling (§8)
//   - internal/analysis   — every table and figure
//
// Quickstart:
//
//	p, err := bgpblackholing.NewPipeline(bgpblackholing.SmallOptions())
//	if err != nil { ... }
//	res := p.RunWindow(800, 810)
//	fmt.Println(len(res.Events), "blackholing events inferred")
package bgpblackholing

import (
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"bgpblackholing/internal/analysis"
	"bgpblackholing/internal/collector"
	"bgpblackholing/internal/core"
	"bgpblackholing/internal/dictionary"
	"bgpblackholing/internal/irr"
	"bgpblackholing/internal/rpki"
	"bgpblackholing/internal/stream"
	"bgpblackholing/internal/topology"
	"bgpblackholing/internal/workload"
)

// Options sizes an end-to-end pipeline.
type Options struct {
	// Seed drives all randomness; identical options yield identical
	// results.
	Seed int64
	// TopoScale scales the AS population (1.0 = paper scale: ~1700
	// ASes, 111 IXPs, 307 blackholing providers).
	TopoScale float64
	// CollectorScale scales collector session counts (1.0 = Table 1
	// scale: 425 RIS + 269 RV + PCH at every IXP + 3349 CDN sessions).
	CollectorScale float64
	// EventScale scales the daily blackholing event volume.
	EventScale float64
	// Days is the timeline length (850 ≈ Dec 2014 – Mar 2017).
	Days int
	// Workers sizes the RunWindow materialization pool: each worker
	// generates and propagates whole days independently, and the per-day
	// observation batches are then merged in day order into a single
	// deterministic inference pass. Results are identical for every
	// worker count and every Seed. Zero (the default) means
	// runtime.GOMAXPROCS(0); 1 forces the serial path.
	Workers int
}

// DefaultOptions is the paper-scale configuration.
func DefaultOptions() Options {
	return Options{Seed: 42, TopoScale: 1, CollectorScale: 1, EventScale: 1, Days: 850}
}

// SmallOptions is a laptop-friendly configuration for tests, examples
// and quick experiments: the same shapes at a fraction of the volume.
func SmallOptions() Options {
	return Options{Seed: 42, TopoScale: 0.15, CollectorScale: 0.15, EventScale: 0.3, Days: 850}
}

// Pipeline wires the full system together.
type Pipeline struct {
	Opts     Options
	Topo     *topology.Topology
	Deploy   *collector.Deployment
	Corpus   []irr.Document
	Dict     *dictionary.Dictionary
	Scenario *workload.Scenario
}

// NewPipeline builds the world: topology, collector deployment,
// documentation corpus, extracted dictionary (documented communities
// plus private-communication additions) and the longitudinal scenario.
func NewPipeline(opts Options) (*Pipeline, error) {
	topoCfg := topology.DefaultConfig().Scaled(opts.TopoScale)
	topoCfg.Seed = opts.Seed
	topo, err := topology.Generate(topoCfg)
	if err != nil {
		return nil, fmt.Errorf("generate topology: %w", err)
	}
	colCfg := collector.DefaultConfig().Scaled(opts.CollectorScale)
	colCfg.Seed = opts.Seed
	deploy := collector.Deploy(topo, colCfg)
	rpkiCfg := rpki.DefaultBuildConfig()
	rpkiCfg.Seed = opts.Seed
	deploy.RPKI = rpki.Build(topo, rpkiCfg)

	corpus := irr.GenerateCorpus(topo, opts.Seed)
	dict := dictionary.FromCorpus(corpus)
	dict.AddPrivateFromTopology(topo)

	wlCfg := workload.DefaultConfig().Scaled(opts.EventScale)
	wlCfg.Seed = opts.Seed
	wlCfg.Days = opts.Days
	scenario := workload.NewScenario(topo, wlCfg)

	return &Pipeline{
		Opts:     opts,
		Topo:     topo,
		Deploy:   deploy,
		Corpus:   corpus,
		Dict:     dict,
		Scenario: scenario,
	}, nil
}

// RunResult is the outcome of replaying a timeline window through the
// inference engine.
type RunResult struct {
	// Events are the closed prefix-level blackholing events.
	Events []*core.Event
	// InferStats carries the per-community prefix-length statistics fed
	// during the run (Figure 2 raw material) and the inferred
	// undocumented communities.
	InferStats *dictionary.InferenceResult
	// LastDayResults holds the propagation results of the window's last
	// week, for data-plane experiments.
	LastDayResults []*collector.Result
	// LastDayIntents are the intents behind LastDayResults (index-aligned
	// is not guaranteed; use prefixes to match).
	LastDayIntents []workload.Intent
	// WindowStart and WindowEnd delimit the replayed wall-clock window.
	WindowStart, WindowEnd time.Time
}

// dayBatch is one day's materialized replay input: the time-sorted
// observation stream plus the propagation results retained for
// data-plane experiments.
type dayBatch struct {
	elems   []*stream.Elem
	results []*collector.Result
	intents []workload.Intent
}

// RunWindow replays days [fromDay, toDay) of the scenario: it generates
// each day's intents, propagates them to the collectors, feeds the
// merged update stream through the inference engine and the
// dictionary-extension collector, and returns the closed events.
//
// Materialization and propagation — the dominant cost — are day-sharded
// across Options.Workers goroutines; the per-day batches are then merged
// back in strict day order into the single-threaded inference pass, so
// Events and InferStats are identical for every worker count at a given
// Seed.
func (p *Pipeline) RunWindow(fromDay, toDay int) *RunResult {
	engine := core.NewEngine(p.Dict, p.Topo)
	inferCol := dictionary.NewCollector(p.Dict)
	res := &RunResult{
		WindowStart: workload.TimelineStart.Add(time.Duration(fromDay) * 24 * time.Hour),
		WindowEnd:   workload.TimelineStart.Add(time.Duration(toDay) * 24 * time.Hour),
	}

	// Background churn once per window so the Figure 2 statistics see
	// ordinary TE communities alongside blackhole communities.
	ordinary := p.Deploy.OrdinaryUpdates(res.WindowStart, 5000)
	for _, o := range ordinary {
		inferCol.Observe(o.Update)
	}

	nDays := toDay - fromDay
	if nDays <= 0 {
		engine.Flush(res.WindowEnd)
		res.Events = engine.Events()
		res.InferStats = inferCol.Infer()
		return res
	}
	workers := p.Opts.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > nDays {
		workers = nDays
	}

	fill := func(i int) dayBatch {
		day := fromDay + i
		intents := p.Scenario.IntentsForDay(day)
		obs, results := workload.Materialize(p.Deploy, p.Topo, intents, p.Opts.Seed)
		b := dayBatch{elems: stream.SortedElems(obs)}
		if day >= toDay-7 {
			b.results, b.intents = results, intents
		}
		return b
	}
	consume := func(b dayBatch) {
		// fill retains results/intents only for the window's last week;
		// earlier days carry nil slices and append is a no-op.
		res.LastDayResults = append(res.LastDayResults, b.results...)
		res.LastDayIntents = append(res.LastDayIntents, b.intents...)
		for _, el := range b.elems {
			engine.Process(el)
			inferCol.Observe(el.Update)
		}
	}

	if workers == 1 {
		for i := 0; i < nDays; i++ {
			consume(fill(i))
		}
	} else {
		// Bounded pipeline: workers claim days through an atomic cursor
		// — but only after acquiring an in-flight ticket, which caps the
		// number of unconsumed batches held in memory and guarantees the
		// merge cursor's day is always being worked on.
		batches := make([]dayBatch, nDays)
		ready := make([]chan struct{}, nDays)
		for i := range ready {
			ready[i] = make(chan struct{})
		}
		inFlight := 2 * workers
		if inFlight > nDays {
			inFlight = nDays
		}
		tickets := make(chan struct{}, inFlight)
		for i := 0; i < inFlight; i++ {
			tickets <- struct{}{}
		}
		var cursor atomic.Int64
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for range tickets {
					i := int(cursor.Add(1)) - 1
					if i >= nDays {
						return
					}
					batches[i] = fill(i)
					close(ready[i])
				}
			}()
		}
		for i := 0; i < nDays; i++ {
			<-ready[i]
			consume(batches[i])
			batches[i] = dayBatch{} // release the day's memory promptly
			tickets <- struct{}{}
		}
		close(tickets)
		wg.Wait()
	}

	engine.Flush(res.WindowEnd)
	res.Events = engine.Events()
	res.InferStats = inferCol.Infer()
	return res
}

// Re-exported result helpers so downstream users rarely need to import
// the internal packages directly.

// Table1 computes the dataset overview (Table 1).
func (p *Pipeline) Table1() []analysis.Table1Row { return analysis.Table1(p.Deploy) }

// Table2 computes the communities-dictionary distribution (Table 2).
func (p *Pipeline) Table2(inferred *dictionary.InferenceResult) []analysis.Table2Row {
	return analysis.Table2(p.Dict, inferred, p.Topo)
}

// Table3 computes the blackhole visibility overview (Table 3).
func (p *Pipeline) Table3(events []*core.Event) []analysis.Table3Row {
	return analysis.Table3(events, p.Deploy)
}

// Table4 computes visibility by provider type (Table 4).
func (p *Pipeline) Table4(events []*core.Event) []analysis.Table4Row {
	return analysis.Table4(events, p.Topo, p.Deploy)
}
