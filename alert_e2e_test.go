package bgpblackholing

// End-to-end alerting: a real detector run feeds the hub, which fans
// matching alerts out to an SSE /watch client and a webhook receiver.
// The SSE client is killed mid-stream and resumed with Last-Event-ID;
// the webhook receiver fails its first two deliveries to prove the
// at-least-once retry path. Expected alert counts are recomputed
// independently from the run's events, so "exactly the matching
// alerts" is checked against ground truth, not against the hub.

import (
	"bufio"
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// sseFrame is one parsed "event: alert" frame from a /watch stream.
type sseFrame struct {
	id  uint64
	rec AlertRecord
}

// sseStream wraps an open /watch response for frame-at-a-time reading.
type sseStream struct {
	resp *http.Response
	sc   *bufio.Scanner
}

func dialSSE(t *testing.T, url string, lastID uint64) *sseStream {
	t.Helper()
	req, err := http.NewRequest(http.MethodGet, url, nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Accept", "text/event-stream")
	if lastID > 0 {
		req.Header.Set("Last-Event-ID", strconv.FormatUint(lastID, 10))
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("watch: %s: %s", resp.Status, body)
	}
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 1<<20)
	return &sseStream{resp: resp, sc: sc}
}

func (s *sseStream) close() { s.resp.Body.Close() }

// next reads one alert frame, skipping comments and heartbeats.
func (s *sseStream) next(t *testing.T) sseFrame {
	t.Helper()
	var f sseFrame
	var data string
	for s.sc.Scan() {
		line := s.sc.Text()
		switch {
		case line == "":
			if data == "" {
				continue // comment-only frame (heartbeat, connected)
			}
			if err := json.Unmarshal([]byte(data), &f.rec); err != nil {
				t.Fatalf("alert data %q: %v", data, err)
			}
			return f
		case strings.HasPrefix(line, ":"):
			// comment
		case strings.HasPrefix(line, "id:"):
			id, err := strconv.ParseUint(strings.TrimSpace(line[3:]), 10, 64)
			if err != nil {
				t.Fatalf("sse id line %q: %v", line, err)
			}
			f.id = id
		case strings.HasPrefix(line, "data:"):
			data = strings.TrimSpace(line[5:])
		}
	}
	t.Fatalf("sse stream ended early: %v", s.sc.Err())
	return f
}

func TestAlertingEndToEnd(t *testing.T) {
	p := smallPipeline(t)

	// Three rules, one verdict-conditioned: "every" fires on all events,
	// "long" on events of at least 30 minutes, "flagged" only when the
	// detection-time verdict is not legitimate.
	rules := make([]AlertRule, 0, 3)
	for _, spec := range []string{
		"name=every",
		"name=long min-duration=30m",
		"name=flagged verdict=illegitimate,questionable",
	} {
		r, err := ParseRule(spec)
		if err != nil {
			t.Fatal(err)
		}
		rules = append(rules, r)
	}
	hub, err := NewAlertHub(rules, AlertHubConfig{
		Annotator:  p.Annotator(),
		RingSize:   1 << 14, // hold the whole run so resume misses nothing
		WatchBound: 1 << 14,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()

	// Webhook receiver: fails the first two deliveries, then records
	// every alert body in arrival order.
	var whMu sync.Mutex
	var whGot []AlertRecord
	whHits := 0
	whSrv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		whMu.Lock()
		defer whMu.Unlock()
		whHits++
		if whHits <= 2 {
			http.Error(w, "not yet", http.StatusInternalServerError)
			return
		}
		var rec AlertRecord
		if err := json.NewDecoder(r.Body).Decode(&rec); err != nil {
			t.Errorf("webhook body: %v", err)
		}
		if hdr := r.Header.Get("X-Alert-ID"); hdr != strconv.FormatUint(rec.ID, 10) {
			t.Errorf("X-Alert-ID %q != body id %d", hdr, rec.ID)
		}
		whGot = append(whGot, rec)
	}))
	defer whSrv.Close()
	if err := hub.AddWebhook(whSrv.URL, WebhookConfig{BaseBackoff: time.Millisecond, QueueBound: 1 << 14}); err != nil {
		t.Fatal(err)
	}

	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	srv := httptest.NewServer(NewStoreHandlerWith(st, p, HandlerOptions{
		Hub:            hub,
		WatchHeartbeat: 50 * time.Millisecond,
	}))
	defer srv.Close()

	// First SSE client connects before the run starts, so it sees the
	// live stream from alert 1.
	live := dialSSE(t, srv.URL+"/watch", 0)

	det := p.NewDetector()
	waitHub := det.SinkToHub(hub)
	res, err := det.Run(context.Background(), p.Replay(840, 843))
	if err != nil {
		t.Fatal(err)
	}
	waitHub()
	if len(res.Events) == 0 {
		t.Fatal("replay window produced no events")
	}

	// Ground truth, recomputed independently of the hub: per-rule
	// expected fire counts over the run's closed events.
	ann := p.Annotator()
	wantEvery, wantLong, wantFlagged := len(res.Events), 0, 0
	for _, ev := range res.Events {
		if ev.End.Sub(ev.Start) >= 30*time.Minute {
			wantLong++
		}
		if v := ann.Annotate(ev).Legitimacy; v != VerdictLegitimate {
			wantFlagged++
		}
	}
	if wantLong == 0 || wantFlagged == 0 {
		t.Fatalf("window exercises too little: long=%d flagged=%d", wantLong, wantFlagged)
	}
	total := wantEvery + wantLong + wantFlagged
	if got := hub.Stats().Alerts; got != uint64(total) {
		t.Fatalf("hub emitted %d alerts, ground truth says %d", got, total)
	}

	// Kill the live client after a handful of alerts, then resume a new
	// client from its last seen id: together they must observe ids
	// 1..total exactly once, in order, with per-alert invariants intact.
	const killAfter = 5
	if total <= killAfter {
		t.Fatalf("window too small to exercise resume: %d alerts", total)
	}
	frames := make([]sseFrame, 0, total)
	for i := 0; i < killAfter; i++ {
		frames = append(frames, live.next(t))
	}
	live.close()
	resumed := dialSSE(t, srv.URL+"/watch", frames[len(frames)-1].id)
	defer resumed.close()
	for len(frames) < total {
		frames = append(frames, resumed.next(t))
	}

	gotEvery, gotLong, gotFlagged := 0, 0, 0
	for i, f := range frames {
		if f.id != uint64(i+1) {
			t.Fatalf("frame %d: id %d, want %d (monotonic, gap-free across resume)", i, f.id, i+1)
		}
		if f.rec.ID != f.id {
			t.Fatalf("frame %d: sse id %d != record id %d", i, f.id, f.rec.ID)
		}
		switch f.rec.Rule {
		case "every":
			gotEvery++
		case "long":
			gotLong++
			if f.rec.Event.DurationSeconds < 30*60 {
				t.Fatalf("alert %d: rule long fired on %.0fs event", f.id, f.rec.Event.DurationSeconds)
			}
		case "flagged":
			gotFlagged++
			if v := f.rec.Event.Legitimacy; v == string(VerdictLegitimate) || v == "" {
				t.Fatalf("alert %d: rule flagged fired with verdict %q", f.id, v)
			}
		default:
			t.Fatalf("alert %d: unknown rule %q", f.id, f.rec.Rule)
		}
		// Detection-time enrichment rides every alert record.
		if f.rec.Event.Legitimacy == "" {
			t.Fatalf("alert %d: record not enriched", f.id)
		}
	}
	if gotEvery != wantEvery || gotLong != wantLong || gotFlagged != wantFlagged {
		t.Fatalf("sse rule counts every=%d long=%d flagged=%d, want %d/%d/%d",
			gotEvery, gotLong, gotFlagged, wantEvery, wantLong, wantFlagged)
	}

	// The webhook receives the same alerts, in order, despite failing
	// its first two deliveries (at-least-once with retry).
	deadline := time.Now().Add(30 * time.Second)
	for {
		whMu.Lock()
		n := len(whGot)
		whMu.Unlock()
		if n >= total {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("webhook received %d of %d alerts", n, total)
		}
		time.Sleep(10 * time.Millisecond)
	}
	whMu.Lock()
	defer whMu.Unlock()
	if whHits != total+2 {
		t.Fatalf("webhook hit %d times, want %d (total + 2 failed attempts)", whHits, total+2)
	}
	for i, rec := range whGot {
		if rec.ID != uint64(i+1) {
			t.Fatalf("webhook delivery %d: id %d, want %d (in-order despite retries)", i, rec.ID, i+1)
		}
		if rec.Rule != frames[i].rec.Rule {
			t.Fatalf("webhook delivery %d: rule %q != sse rule %q", i, rec.Rule, frames[i].rec.Rule)
		}
	}
	ws := hub.Stats().Webhooks
	if len(ws) != 1 || ws[0].Delivered != uint64(total) || ws[0].Retries != 2 || ws[0].DeadLetters != 0 {
		t.Fatalf("webhook stats: %+v", ws)
	}

	// Detection-time verdicts were primed into the annotator cache, so
	// the query path serves the same answers without recomputation.
	for _, ev := range res.Events {
		if got := ann.Annotate(ev).Legitimacy; got == "" {
			t.Fatal("primed cache lost a verdict")
		}
	}
}

// TestWatchStalledClientBounded proves the slow-consumer contract over
// HTTP: a /watch client that never reads holds at most the watcher
// bound plus fixed plumbing, never blocks Publish, and its drops are
// visible in the /stats detector section.
func TestWatchStalledClientBounded(t *testing.T) {
	const bound = 8
	rule, err := ParseRule("name=all")
	if err != nil {
		t.Fatal(err)
	}
	hub, err := NewAlertHub([]AlertRule{rule}, AlertHubConfig{WatchBound: bound})
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()

	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	srv := httptest.NewServer(NewStoreHandlerWith(st, nil, HandlerOptions{
		Hub:            hub,
		WatchHeartbeat: time.Hour, // no heartbeats: the stream stalls for real
	}))
	defer srv.Close()

	// Connect but never read past the preamble: the server-side watcher
	// fills its bounded queue and starts dropping.
	stalled := dialSSE(t, srv.URL+"/watch", 0)
	defer stalled.close()
	waitForCond(t, func() bool { return hub.Stats().Watchers == 1 }, "watcher registration")

	const n = 500
	done := make(chan struct{})
	go func() {
		defer close(done)
		for i := 0; i < n; i++ {
			hub.Publish(stallEvent(i))
		}
	}()
	select {
	case <-done:
	case <-time.After(10 * time.Second):
		t.Fatal("Publish blocked behind a stalled /watch client")
	}

	var stats struct {
		Detector struct {
			Alerts *AlertHubStats `json:"alerts"`
		} `json:"detector"`
	}
	resp, err := http.Get(srv.URL + "/stats")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	a := stats.Detector.Alerts
	if a == nil {
		t.Fatal("/stats has no detector.alerts section")
	}
	if a.Published != n || a.Alerts != n {
		t.Fatalf("/stats alerts: %+v", a)
	}
	if a.WatcherDrops == 0 {
		t.Fatal("stalled /watch client recorded no drops in /stats")
	}
	// Everything is accounted for: what the client can ever hold is the
	// bound plus fixed channel plumbing; the rest must be counted drops.
	if held := uint64(n) - a.WatcherDrops; held > bound+17+64 {
		t.Fatalf("stalled client holds %d alerts beyond the bounded plumbing", held)
	}
}

// TestWatchHTTPErrors pins the error contract of the alerting surface.
func TestWatchHTTPErrors(t *testing.T) {
	rule, err := ParseRule("name=a")
	if err != nil {
		t.Fatal(err)
	}
	hub, err := NewAlertHub([]AlertRule{rule}, AlertHubConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer hub.Close()
	st, err := OpenStore(t.TempDir())
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	srv := httptest.NewServer(NewStoreHandlerWith(st, nil, HandlerOptions{Hub: hub}))
	defer srv.Close()

	for _, tc := range []struct {
		method, path, body string
		want               int
	}{
		{"GET", "/watch?rule=nope", "", http.StatusNotFound},
		{"GET", "/watch?last_id=abc", "", http.StatusBadRequest},
		{"POST", "/rules", "name=b origin=65001", http.StatusOK},
		{"POST", "/rules", "mode=upward", http.StatusBadRequest},
		{"POST", "/rules", `{"name":"c","verdicts":["maybe"]}`, http.StatusBadRequest},
		{"DELETE", "/rules/b", "", http.StatusNoContent},
		{"DELETE", "/rules/b", "", http.StatusNotFound},
	} {
		req, err := http.NewRequest(tc.method, srv.URL+tc.path, strings.NewReader(tc.body))
		if err != nil {
			t.Fatal(err)
		}
		resp, err := http.DefaultClient.Do(req)
		if err != nil {
			t.Fatal(err)
		}
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
		if resp.StatusCode != tc.want {
			t.Errorf("%s %s: %d, want %d", tc.method, tc.path, resp.StatusCode, tc.want)
		}
	}
	// The upsert+delete left the original rule set intact.
	var rules struct {
		Rules []struct {
			Syntax string `json:"syntax"`
		} `json:"rules"`
	}
	getJSON(t, srv.URL+"/rules", &rules)
	if len(rules.Rules) != 1 || rules.Rules[0].Syntax != "name=a" {
		t.Fatalf("rules after CRUD: %+v", rules.Rules)
	}
}

func waitForCond(t *testing.T, cond func() bool, what string) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
