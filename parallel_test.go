package bgpblackholing

import (
	"crypto/sha256"
	"fmt"
	"sort"
	"testing"
)

// canonicalEvents serializes a run's events (and inference summary) into
// a canonical byte string, so runs can be compared for exact equality.
func canonicalEvents(res *RunResult) string {
	h := sha256.New()
	for _, ev := range res.Events {
		var provs []string
		for p := range ev.Providers {
			provs = append(provs, p.String())
		}
		sort.Strings(provs)
		var users []string
		for u := range ev.Users {
			users = append(users, u.String())
		}
		sort.Strings(users)
		var peers []string
		for p := range ev.Peers {
			peers = append(peers, p.String())
		}
		sort.Strings(peers)
		fmt.Fprintf(h, "%s|%d|%d|%d|%v|%v|%v|%v\n",
			ev.Prefix, ev.Start.UnixNano(), ev.End.UnixNano(), ev.Detections,
			ev.SawNoExport, provs, users, peers)
	}
	fmt.Fprintf(h, "stats=%d inferred=%d\n", len(res.InferStats.Stats), len(res.InferStats.Inferred))
	fmt.Fprintf(h, "lastday=%d intents=%d\n", len(res.LastDayResults), len(res.LastDayIntents))
	return fmt.Sprintf("%x", h.Sum(nil))
}

// TestRunWindowDeterministicAcrossWorkers is the parallel-replay
// determinism contract: the same Seed and SmallOptions must yield
// byte-identical events (count, prefixes, start/end times, providers,
// users, peers) regardless of the worker count.
func TestRunWindowDeterministicAcrossWorkers(t *testing.T) {
	const fromDay, toDay = 800, 850

	type run struct {
		workers int
		events  int
		sum     string
	}
	var runs []run
	for _, workers := range []int{1, 2, 8} {
		opts := SmallOptions()
		opts.Workers = workers
		p, err := NewPipeline(opts)
		if err != nil {
			t.Fatal(err)
		}
		res := p.RunWindow(fromDay, toDay)
		if len(res.Events) == 0 {
			t.Fatalf("workers=%d: no events", workers)
		}
		runs = append(runs, run{workers, len(res.Events), canonicalEvents(res)})
	}
	base := runs[0]
	for _, r := range runs[1:] {
		if r.events != base.events {
			t.Errorf("workers=%d: %d events, want %d (workers=%d)", r.workers, r.events, base.events, base.workers)
		}
		if r.sum != base.sum {
			t.Errorf("workers=%d: event checksum %s differs from workers=%d checksum %s",
				r.workers, r.sum, base.workers, base.sum)
		}
	}
}

// TestRunWindowWorkersSharedPipeline re-runs the same Pipeline value with
// different worker counts: RunWindow must not leave behind state that
// changes a later run.
func TestRunWindowWorkersSharedPipeline(t *testing.T) {
	p := smallPipeline(t)
	sums := map[int]string{}
	for _, workers := range []int{2, 1, 4} {
		p.Opts.Workers = workers
		sums[workers] = canonicalEvents(p.RunWindow(840, 848))
	}
	if sums[1] != sums[2] || sums[1] != sums[4] {
		t.Fatalf("shared-pipeline runs diverge: %v", sums)
	}
}
