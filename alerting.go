package bgpblackholing

import (
	"encoding/json"

	"bgpblackholing/internal/alert"
)

// This file is the facade over internal/alert: the alerting hub that
// evaluates compiled rules against events as they close and fans
// matching alerts out to SSE watchers (/watch) and webhooks. See the
// README "Alerting & subscriptions" section for the rule syntax and
// delivery contract.

// Alerting types.
type (
	// AlertRule is one user-defined alert rule: a prefix set with a
	// match mode, plus optional origin/provider/community/min-duration/
	// verdict constraints. Parse one with ParseRule or from JSON.
	AlertRule = alert.Rule
	// AlertRuleMode says how a rule's prefixes match an event prefix:
	// exact, covered (event inside rule prefix) or lpm (event covers
	// rule prefix).
	AlertRuleMode = alert.Mode
	// Alert is one rule firing on one closed event.
	Alert = alert.Alert
	// AlertHub matches closing events against the rule set and delivers
	// alerts to watchers and webhooks without ever blocking inference.
	AlertHub = alert.Hub
	// AlertHubConfig parameterizes NewAlertHub.
	AlertHubConfig = alert.Config
	// AlertWatcher is one /watch subscriber: a bounded drop-oldest
	// queue of alerts.
	AlertWatcher = alert.Watcher
	// AlertHubStats is the hub's observability snapshot (surfaced in
	// the /stats detector section).
	AlertHubStats = alert.Stats
	// WebhookConfig parameterizes one webhook registration (retries,
	// backoff, queue bound).
	WebhookConfig = alert.WebhookConfig
	// WebhookStats is the delivery ledger for one registered webhook.
	WebhookStats = alert.WebhookStats
	// UnknownAlertRuleError reports a /watch filter naming a rule that
	// does not exist.
	UnknownAlertRuleError = alert.UnknownRuleError
)

// Rule prefix-match modes.
const (
	// RuleModeExact fires only when the event prefix equals a rule
	// prefix.
	RuleModeExact = alert.ModeExact
	// RuleModeCovered fires when the event prefix lies inside a rule
	// prefix ("anything blackholed in my /16").
	RuleModeCovered = alert.ModeCovered
	// RuleModeLPM fires when the event prefix covers a rule prefix
	// ("who blackholes this address, including covering aggregates").
	RuleModeLPM = alert.ModeLPM
)

// ParseRule parses the compact rule syntax: whitespace-separated
// key=value tokens with comma-separated lists, e.g.
//
//	name=ddos prefix=10.0.0.0/16 mode=covered min-duration=5m verdict=illegitimate,questionable
//
// Keys: name (required), prefix, mode, origin, provider, community,
// min-duration, verdict. Rules also unmarshal from JSON (the /rules
// wire form).
func ParseRule(s string) (AlertRule, error) { return alert.ParseRule(s) }

// ParseRuleMode parses "exact", "covered" or "lpm".
func ParseRuleMode(s string) (AlertRuleMode, error) { return alert.ParseMode(s) }

// NewAlertHub compiles rules into a hub. The config's Annotator
// enables detection-time enrichment (verdict-conditioned rules fire on
// the live stream, and each alerted event's verdict is primed into the
// annotator cache so /events?enrich=1 serves the same answer). The
// alert wire encoding is the full EventRecord wrapped in an
// {id, rule, event} envelope; see AlertRecord.
func NewAlertHub(rules []AlertRule, cfg AlertHubConfig) (*AlertHub, error) {
	if cfg.Encode == nil {
		cfg.Encode = EncodeAlertRecord
	}
	return alert.NewHub(rules, cfg)
}

// AlertRecord is the alert wire form delivered to webhooks and /watch
// SSE clients: a monotonic id, the firing rule's name, and the full
// event record (enriched when the hub has an annotator).
type AlertRecord struct {
	ID    uint64      `json:"id"`
	Rule  string      `json:"rule"`
	Event EventRecord `json:"event"`
}

// NewAlertRecord builds the wire record for one alert.
func NewAlertRecord(a *Alert) AlertRecord {
	rec := AlertRecord{ID: a.ID, Rule: a.Rule}
	if a.Ann != nil {
		rec.Event = NewEventRecordEnriched(a.Event, *a.Ann)
	} else {
		rec.Event = NewEventRecord(a.Event)
	}
	return rec
}

// EncodeAlertRecord is the facade's Config.Encode: it marshals
// NewAlertRecord(a).
func EncodeAlertRecord(a *Alert) ([]byte, error) {
	return json.Marshal(NewAlertRecord(a))
}

// SinkToHub attaches a hub as an alerting sink for the current (or
// next) Run: every closing event is published to the hub in closing
// order through the same fan-out plumbing as Subscribe. The hub's
// Publish never blocks (watcher queues drop oldest, webhook queues
// drop newest), so the sink rides an unbounded queue like SinkToStore
// — alerting sees every event, and a stalled alert consumer costs
// bounded hub-side memory, never inference time. The returned wait
// function blocks until the Run has returned and every event has been
// published.
func (d *Detector) SinkToHub(h *AlertHub) (wait func()) {
	s := d.subscribeUnbounded()
	done := make(chan struct{})
	go func() {
		defer close(done)
		for ev := range s.ch {
			h.Publish(ev)
		}
	}()
	return func() { <-done }
}
