package bgpblackholing

// Facade-level tests for the tiered-compaction and retention surface:
// Store.Compact(policy), Store.DeletePrefix, and the policy spec parser
// the CLIs (bhserve -compact-policy, bhquery -compact) share.

import (
	"bytes"
	"context"
	"net/netip"
	"testing"
	"time"

	"bgpblackholing/internal/store"
)

func populatedStore(t *testing.T, dir string, opts StoreOptions) (*Store, []*Event) {
	t.Helper()
	p, err := NewPipeline(SmallOptions())
	if err != nil {
		t.Fatal(err)
	}
	st, err := OpenStoreWith(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	det := p.NewDetector()
	wait := det.SinkToStore(st)
	res, err := det.Run(context.Background(), p.Replay(800, 806))
	if err != nil {
		t.Fatal(err)
	}
	if err := wait(); err != nil {
		t.Fatal(err)
	}
	if len(res.Events) == 0 {
		t.Fatal("window produced no events")
	}
	return st, res.Events
}

// TestFacadeCompactAndDeletePrefix drives the whole retention story
// through the public facade on real detector output: tiered compaction
// keeps query answers byte-identical, DeletePrefix hides a prefix at
// once, and the erasure sticks across reopen.
func TestFacadeCompactAndDeletePrefix(t *testing.T) {
	dir := t.TempDir()
	opts := StoreOptions{
		MaxSegmentBytes: 16 << 10,
		Policy:          CompactionPolicy{Partition: 30 * 24 * time.Hour, SizeRatio: 4, MinRun: 2},
	}
	st, events := populatedStore(t, dir, opts)

	before := st.Query(Query{})
	stats, err := st.Compact(opts.Policy)
	if err != nil {
		t.Fatal(err)
	}
	if stats.EventsAfter > stats.EventsBefore {
		t.Fatalf("compaction grew the store: %+v", stats)
	}
	after := st.Query(Query{})
	if after.Total != before.Total-stats.Dropped {
		t.Fatalf("post-compact total %d, want %d - %d dropped", after.Total, before.Total, stats.Dropped)
	}

	victim := events[0].Prefix
	covered := st.Query(Query{Prefix: victim, Mode: PrefixCovered})
	if covered.Total == 0 {
		t.Fatal("no events under the victim prefix")
	}
	n, err := st.DeletePrefix(victim, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if n != covered.Total {
		t.Fatalf("DeletePrefix erased %d, want %d", n, covered.Total)
	}
	if res := st.Query(Query{Prefix: victim, Mode: PrefixCovered}); res.Total != 0 {
		t.Fatalf("victim prefix still visible: %d events", res.Total)
	}
	wantTotal := after.Total - n
	if res := st.Query(Query{}); res.Total != wantTotal {
		t.Fatalf("full scan after delete: %d, want %d", res.Total, wantTotal)
	}
	remaining := st.Events()
	if err := st.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := OpenStoreWith(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if res := r.Query(Query{Prefix: victim, Mode: PrefixCovered}); res.Total != 0 {
		t.Fatalf("reopen resurrected the deleted prefix: %d events", res.Total)
	}
	got := r.Events()
	if len(got) != len(remaining) {
		t.Fatalf("reopen has %d events, want %d", len(got), len(remaining))
	}
	for i := range got {
		if !bytes.Equal(store.EncodeEvent(nil, got[i]), store.EncodeEvent(nil, remaining[i])) {
			t.Fatalf("event %d not byte-identical across delete+reopen", i)
		}
	}
	if s := r.Stats(); s.Tombstones != 1 {
		t.Fatalf("tombstone not durable: %+v", s)
	}
}

func TestParseCompactionPolicy(t *testing.T) {
	cases := []struct {
		in   string
		want CompactionPolicy
		ok   bool
	}{
		{"", CompactionPolicy{MergeAll: true}, true},
		{"all", CompactionPolicy{MergeAll: true}, true},
		{"merge-all", CompactionPolicy{MergeAll: true}, true},
		{"tiered", CompactionPolicy{Partition: 30 * 24 * time.Hour, SizeRatio: 4, MinRun: 4}, true},
		{"tiered,partition=60d,ratio=3,min-run=2", CompactionPolicy{Partition: 60 * 24 * time.Hour, SizeRatio: 3, MinRun: 2}, true},
		{"tiered,partition=720h", CompactionPolicy{Partition: 720 * time.Hour, SizeRatio: 4, MinRun: 4}, true},
		{"tiered,partition=0d", CompactionPolicy{Partition: 0, SizeRatio: 4, MinRun: 4}, true},
		{"tiered,ratio=0.5", CompactionPolicy{}, false},
		{"tiered,min-run=1", CompactionPolicy{}, false},
		{"tiered,nope=1", CompactionPolicy{}, false},
		{"merge-all,ratio=2", CompactionPolicy{}, false},
		{"bogus", CompactionPolicy{}, false},
	}
	for _, c := range cases {
		got, err := ParseCompactionPolicy(c.in)
		if c.ok != (err == nil) {
			t.Fatalf("ParseCompactionPolicy(%q): err = %v, want ok=%v", c.in, err, c.ok)
		}
		if c.ok && got != c.want {
			t.Fatalf("ParseCompactionPolicy(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
}

func TestParseSyncPolicy(t *testing.T) {
	cases := []struct {
		in   string
		want SyncPolicy
		ok   bool
	}{
		{"", SyncPolicy{}, true},
		{"close", SyncPolicy{}, true},
		{"always", SyncPolicy{Always: true}, true},
		{"group", SyncPolicy{EveryN: 1000, Interval: 200 * time.Millisecond}, true},
		{"group,every=64", SyncPolicy{EveryN: 64, Interval: 200 * time.Millisecond}, true},
		{"group,every=64,interval=1s", SyncPolicy{EveryN: 64, Interval: time.Second}, true},
		{"group,interval=0s", SyncPolicy{EveryN: 1000}, true},
		{"group,every=0,interval=0s", SyncPolicy{}, false}, // both triggers off
		{"group,every=-1", SyncPolicy{}, false},
		{"group,nope=1", SyncPolicy{}, false},
		{"close,every=1", SyncPolicy{}, false},
		{"bogus", SyncPolicy{}, false},
	}
	for _, c := range cases {
		got, err := ParseSyncPolicy(c.in)
		if c.ok != (err == nil) {
			t.Fatalf("ParseSyncPolicy(%q): err = %v, want ok=%v", c.in, err, c.ok)
		}
		if c.ok && got != c.want {
			t.Fatalf("ParseSyncPolicy(%q) = %+v, want %+v", c.in, got, c.want)
		}
	}
}

// TestDeletePrefixHostAddress: erasing by host address (the bhquery
// -delete-prefix 10.1.2.3 shape) kills exactly the events whose prefix
// covers nothing beyond that host — i.e. only exact /32 records — while
// broader prefixes stay (use the covering prefix to erase those).
func TestDeletePrefixHostAddress(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer st.Close()
	mk := func(prefix string, minutes int) *Event {
		start := time.Date(2015, 3, 1, 0, 0, 0, 0, time.UTC).Add(time.Duration(minutes) * time.Minute)
		return &Event{
			Prefix: netip.MustParsePrefix(prefix),
			Start:  start,
			End:    start.Add(30 * time.Minute),
		}
	}
	if err := st.Append(mk("192.0.2.7/32", 0), mk("192.0.2.0/24", 10)); err != nil {
		t.Fatal(err)
	}
	host := netip.MustParsePrefix("192.0.2.7/32")
	n, err := st.DeletePrefix(host, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("host delete erased %d events, want 1 (/32 only)", n)
	}
	if res := st.Query(Query{Prefix: netip.MustParsePrefix("192.0.2.0/24"), Mode: PrefixExact}); res.Total != 1 {
		t.Fatalf("covering /24 should survive a host delete, got %d", res.Total)
	}
}
