package bgpblackholing

import (
	"context"
	"errors"
	"fmt"
	"io"
	"iter"
	"sync"
	"sync/atomic"
	"time"

	"bgpblackholing/internal/core"
	"bgpblackholing/internal/dictionary"
	"bgpblackholing/internal/mrt"
)

// Detector runs the paper's inference engine (§4.2) over any Source,
// with context cancellation and incremental event delivery: events
// stream to Subscribe / Stream subscribers the moment they close,
// instead of appearing only after the final flush. One Detector holds
// one engine's state; sequential Run calls accumulate (a live deployment
// can alternate replay catch-up and live feeds), but only one Run may be
// active at a time.
type Detector struct {
	engine   *core.Engine
	inferCol *dictionary.Collector

	queueBound int
	slowPolicy SlowConsumerPolicy
	subDrops   atomic.Uint64
	subEvicts  atomic.Uint64

	mu      sync.Mutex
	subs    []*subscriber
	running bool
}

// SlowConsumerPolicy decides what a bounded subscriber queue does when
// a consumer falls a full bound behind the engine.
type SlowConsumerPolicy int

const (
	// DropOldest discards the oldest queued event to make room — the
	// consumer keeps a live (if gappy) feed. The default policy.
	DropOldest SlowConsumerPolicy = iota
	// Evict cancels the lagging subscription outright: its channel
	// closes early and fanout stops visiting it. Consumers that cannot
	// tolerate gaps should be evicted rather than silently fed a
	// subsequence.
	Evict
)

func (p SlowConsumerPolicy) String() string {
	switch p {
	case DropOldest:
		return "drop-oldest"
	case Evict:
		return "evict"
	}
	return fmt.Sprintf("policy(%d)", int(p))
}

// DetectorOption adjusts a Detector at construction.
type DetectorOption func(*Detector)

// WithSubscriberQueueBound bounds every Subscribe / Stream queue at n
// events, applying policy when a consumer falls that far behind. The
// default (n = 0) keeps the queues unbounded — replay consumers that
// collect everything lose nothing. SinkToStore's queue is always
// unbounded regardless: it is the durability path, and dropping
// persisted events to spare memory would be the wrong trade.
func WithSubscriberQueueBound(n int, policy SlowConsumerPolicy) DetectorOption {
	return func(d *Detector) {
		d.queueBound = n
		d.slowPolicy = policy
	}
}

// NewDetector builds a detector inferring against the given dictionary,
// with the topology standing in for the paper's PeeringDB lookups (IXP
// route-server ASNs and peering LANs).
func NewDetector(dict *Dictionary, topo *Topology, opts ...DetectorOption) *Detector {
	d := &Detector{
		engine:   core.NewEngine(dict, topo),
		inferCol: dictionary.NewCollector(dict),
	}
	for _, o := range opts {
		o(d)
	}
	d.engine.OnEventClose = d.fanout
	return d
}

// NewDetector builds a detector over the pipeline's dictionary and
// topology.
func (p *Pipeline) NewDetector(opts ...DetectorOption) *Detector {
	return NewDetector(p.Dict, p.Topo, opts...)
}

// SetClean toggles §3 data cleaning (bogon and coarse-prefix removal);
// it is on by default.
func (d *Detector) SetClean(clean bool) { d.engine.Clean = clean }

// Metrics returns a snapshot of the engine's counters plus the fan-out
// layer's slow-consumer counters; safe to call after Run returns (live
// deployments report them on shutdown and via /stats).
func (d *Detector) Metrics() Metrics {
	m := d.engine.Metrics()
	m.SubscriberDrops = d.subDrops.Load()
	m.SubscriberEvictions = d.subEvicts.Load()
	return m
}

// ActiveCount reports how many prefixes are currently blackholed.
func (d *Detector) ActiveCount() int { return d.engine.ActiveCount() }

// Events returns all events closed so far, in closing order. The slice
// is a copy owned by the caller.
func (d *Detector) Events() []*Event { return d.engine.Events() }

// SeedFromRIBDump seeds the detector from an MRT TABLE_DUMP_V2 archive
// (§4.2 "Initialization Based on BGP Table Dump"): blackholed prefixes
// found in the dump start events whose true start time is unknown. Call
// it before Run. A truncated archive tail ends the dump silently, as
// collector dumps commonly do; any other read or parse failure is
// returned, since it would leave the initialization silently partial.
func (d *Detector) SeedFromRIBDump(r io.Reader, collectorName string, platform Platform) error {
	reader := mrt.NewReader(r)
	for {
		rec, err := reader.Next()
		if err != nil {
			if errors.Is(err, io.EOF) || errors.Is(err, mrt.ErrTruncated) {
				return nil // end of archive, or the usual truncated tail
			}
			return err
		}
		if rib, ok := rec.(*mrt.RIB); ok {
			entries, err := reader.ResolveRIB(rib)
			if err != nil {
				return err
			}
			d.engine.InitFromRIB(entries, rib.Time, collectorName, platform)
		}
	}
}

// runConfig collects RunOption state.
type runConfig struct {
	flushAt time.Time
	noFlush bool
}

// RunOption adjusts one Run call.
type RunOption func(*runConfig)

// WithFlushAt sets the timestamp at which still-open events are closed
// when the source is exhausted (end of monitoring). The default is the
// window end for a ReplaySource and the current wall-clock time for
// other sources.
func WithFlushAt(t time.Time) RunOption {
	return func(c *runConfig) { c.flushAt = t }
}

// WithoutFlush leaves events still active at end-of-source open, so a
// later Run on the same Detector can resume them — the replay-then-live
// handover pattern.
func WithoutFlush() RunOption {
	return func(c *runConfig) { c.noFlush = true }
}

// ErrDetectorBusy is returned by Run when another Run is already active
// on the same Detector.
var ErrDetectorBusy = errors.New("bgpblackholing: detector already running")

// Run drains the source through the inference engine until io.EOF,
// then closes still-open events and returns the accumulated result.
// Closed events are delivered incrementally to Subscribe / Stream
// subscribers while Run is in flight; the subscriptions end when Run
// returns.
//
// Cancellation is prompt: when ctx is canceled, Run unblocks the
// source (including a ReplaySource's materialization workers and a
// LiveSource consumer parked waiting for input), skips the final flush
// — the events still active are not fabricated ends — and returns the
// partial result alongside ctx.Err(). The partial result carries every
// event closed before the cancellation and the Metrics counted so far.
//
// A ReplaySource — bare or wrapped in MapSource/FilterSource — also
// populates the result's window metadata and last-week propagation
// results, and defaults the flush time to the window end. A replay
// inside MergeSources contributes elements only.
func (d *Detector) Run(ctx context.Context, src Source, opts ...RunOption) (*RunResult, error) {
	d.mu.Lock()
	if d.running {
		d.mu.Unlock()
		return nil, ErrDetectorBusy
	}
	d.running = true
	d.mu.Unlock()
	defer func() {
		d.mu.Lock()
		d.running = false
		d.mu.Unlock()
	}()

	var cfg runConfig
	for _, o := range opts {
		o(&cfg)
	}

	res := &RunResult{}
	rs := replayOf(src)
	isReplay := rs != nil
	if isReplay {
		res.WindowStart, res.WindowEnd = rs.windowStart, rs.windowEnd
		if cfg.flushAt.IsZero() {
			cfg.flushAt = rs.windowEnd
		}
		// Background churn once per window so the Figure 2 statistics see
		// ordinary TE communities alongside blackhole communities.
		for _, o := range rs.ordinary() {
			d.inferCol.Observe(o.Update)
		}
	}

	runDone := make(chan struct{})
	defer close(runDone)
	if ra, ok := src.(runAware); ok {
		ra.attach(ctx, runDone)
	}
	defer d.closeSubs()

	var runErr error
	done := ctx.Done()
	for n := 0; ; n++ {
		if done != nil && n&127 == 0 {
			select {
			case <-done:
				runErr = ctx.Err()
			default:
			}
			if runErr != nil {
				break
			}
		}
		el, err := src.Next()
		if err != nil {
			if errors.Is(err, io.EOF) {
				break
			}
			// A source unblocked by cancellation reports its own sentinel;
			// surface the context's error for uniformity.
			if ctxErr := ctx.Err(); ctxErr != nil {
				runErr = ctxErr
			} else {
				runErr = fmt.Errorf("source: %w", err)
			}
			break
		}
		d.engine.Process(el)
		d.inferCol.Observe(el.Update)
	}

	if runErr == nil && !cfg.noFlush {
		flushAt := cfg.flushAt
		if flushAt.IsZero() {
			flushAt = time.Now().UTC()
		}
		d.engine.Flush(flushAt)
	}
	if isReplay {
		rs.Close()
		res.LastDayResults, res.LastDayIntents = rs.takeResults()
	}
	res.Events = d.engine.Events()
	res.InferStats = d.inferCol.Infer()
	res.Metrics = d.engine.Metrics()
	return res, runErr
}

// ---------------------------------------------------------------------
// Incremental event delivery.

// subscriber decouples the engine's single processing goroutine from a
// consumer: the fanout path only appends to a queue (never blocking
// inference), and a pump goroutine forwards events to the subscriber's
// channel. The queue is unbounded by default; a Detector built with
// WithSubscriberQueueBound caps it and applies a slow-consumer policy
// when a consumer falls a full bound behind.
type subscriber struct {
	bound  int // max queued events; 0 = unbounded
	policy SlowConsumerPolicy
	// drops / evicts are the owning Detector's aggregate counters; the
	// per-subscriber count lives in dropped.
	drops  *atomic.Uint64
	evicts *atomic.Uint64

	mu      sync.Mutex
	cond    *sync.Cond
	queue   []*Event
	dropped uint64
	done    bool          // producer side finished (Run returned)
	stop    chan struct{} // consumer side abandoned (Stream break)
	ch      chan *Event
}

func (d *Detector) newSubscriber(bound int, policy SlowConsumerPolicy) *subscriber {
	s := &subscriber{
		bound:  bound,
		policy: policy,
		drops:  &d.subDrops,
		evicts: &d.subEvicts,
		stop:   make(chan struct{}),
		ch:     make(chan *Event, 16),
	}
	s.cond = sync.NewCond(&s.mu)
	go s.pump()
	return s
}

// push queues one closed event, applying the slow-consumer policy when
// the queue is at its bound. It reports whether the subscriber evicted
// itself, so fanout can stop visiting it.
func (s *subscriber) push(ev *Event) (evicted bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.done {
		return false
	}
	if s.bound > 0 && len(s.queue) >= s.bound {
		if s.policy == Evict {
			// cancel(), inlined: cancel takes s.mu and push holds it.
			s.done = true
			s.queue = nil
			close(s.stop)
			s.cond.Broadcast()
			s.evicts.Add(1)
			return true
		}
		s.queue = append(s.queue[1:len(s.queue):len(s.queue)], ev)
		s.dropped++
		s.drops.Add(1)
		s.cond.Signal()
		return false
	}
	s.queue = append(s.queue, ev)
	s.cond.Signal()
	return false
}

// finish marks the producer side complete; the pump closes the channel
// after the queue drains.
func (s *subscriber) finish() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.done = true
	s.cond.Broadcast()
}

// cancel abandons the subscription from the consumer side: the pump
// exits, and fanout stops queueing events for it (done doubles as the
// drop flag in push).
func (s *subscriber) cancel() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.done = true
	s.queue = nil
	select {
	case <-s.stop:
	default:
		close(s.stop)
	}
	s.cond.Broadcast()
}

func (s *subscriber) pump() {
	defer close(s.ch)
	for {
		s.mu.Lock()
		for len(s.queue) == 0 && !s.done {
			select {
			case <-s.stop:
				s.mu.Unlock()
				return
			default:
			}
			s.cond.Wait()
		}
		if len(s.queue) == 0 && s.done {
			s.mu.Unlock()
			return
		}
		ev := s.queue[0]
		s.queue = s.queue[1:]
		s.mu.Unlock()
		select {
		case s.ch <- ev:
		case <-s.stop:
			return
		}
	}
}

// fanout is the engine's OnEventClose hook: it hands the closed event
// to every live subscriber without blocking the inference hot path —
// a full bounded queue drops or evicts per policy instead of waiting.
func (d *Detector) fanout(ev *Event) {
	d.mu.Lock()
	subs := d.subs
	d.mu.Unlock()
	for _, s := range subs {
		if s.push(ev) {
			d.unsubscribe(s)
		}
	}
}

// closeSubs ends every subscription: pending events still drain, then
// the channels close. Called when Run returns.
func (d *Detector) closeSubs() {
	d.mu.Lock()
	subs := d.subs
	d.subs = nil
	d.mu.Unlock()
	for _, s := range subs {
		s.finish()
	}
}

func (d *Detector) subscribe() *subscriber {
	return d.register(d.newSubscriber(d.queueBound, d.slowPolicy))
}

// subscribeUnbounded ignores the detector's queue bound — the shape
// for durability sinks, where dropping would lose persisted events.
func (d *Detector) subscribeUnbounded() *subscriber {
	return d.register(d.newSubscriber(0, DropOldest))
}

func (d *Detector) register(s *subscriber) *subscriber {
	d.mu.Lock()
	d.subs = append(d.subs, s)
	d.mu.Unlock()
	return s
}

// SubscriberStats snapshots one live subscription's queue health.
type SubscriberStats struct {
	// Queued is the current queue length (always ≤ Bound when bounded).
	Queued int
	// Bound is the configured queue cap; 0 means unbounded.
	Bound int
	// Dropped counts events this subscription lost to DropOldest.
	Dropped uint64
}

// SubscriberStats reports the queue health of every live subscription,
// in subscription order. Finished or evicted subscriptions drop out.
// Safe to call concurrently with a running Run.
func (d *Detector) SubscriberStats() []SubscriberStats {
	d.mu.Lock()
	subs := d.subs
	d.mu.Unlock()
	out := make([]SubscriberStats, 0, len(subs))
	for _, s := range subs {
		s.mu.Lock()
		out = append(out, SubscriberStats{Queued: len(s.queue), Bound: s.bound, Dropped: s.dropped})
		s.mu.Unlock()
	}
	return out
}

// unsubscribe removes a canceled subscriber so fanout stops visiting it.
func (d *Detector) unsubscribe(s *subscriber) {
	d.mu.Lock()
	defer d.mu.Unlock()
	for i, x := range d.subs {
		if x == s {
			d.subs = append(d.subs[:i], d.subs[i+1:]...)
			return
		}
	}
}

// Subscribe returns a channel delivering each event as it closes during
// the current (or next) Run — from withdrawals, implicit withdrawals
// and the final flush alike. Subscribe before starting Run to observe
// every event; events closed earlier in an already-running Run are not
// replayed. The channel closes when the Run returns, after every
// pending event has been delivered; drain it until then. The queue
// behind the channel never blocks or reorders inference: unbounded by
// default, or capped by WithSubscriberQueueBound, in which case a slow
// consumer loses the oldest events (DropOldest) or the channel closes
// early (Evict). An unbounded subscription abandoned without draining
// pins its queued events and delivery goroutine until the process
// exits. A consumer that may stop early should use Stream instead,
// whose loop exit cancels the subscription.
func (d *Detector) Subscribe() <-chan *Event {
	return d.subscribe().ch
}

// SinkToStore attaches st as a persistence sink for the current (or
// next) Run: every event is appended to the store in closing order the
// moment it closes, through the same unbounded-queue plumbing as
// Subscribe — a slow disk never blocks or reorders inference. The
// returned wait function blocks until the Run has returned, every
// closed event has been appended, and the store has been synced; it
// returns the first append or sync error. Call it after Run:
//
//	wait := det.SinkToStore(st)
//	res, err := det.Run(ctx, src)
//	if err := wait(); err != nil { ... }
func (d *Detector) SinkToStore(st *Store) (wait func() error) {
	s := d.subscribeUnbounded()
	done := make(chan error, 1)
	go func() {
		var sinkErr error
		for ev := range s.ch {
			if sinkErr != nil {
				continue // drain so Run's finish isn't blocked
			}
			sinkErr = st.Append(ev)
		}
		if sinkErr == nil {
			sinkErr = st.Sync()
		}
		done <- sinkErr
	}()
	return func() error { return <-done }
}

// SinkToShards is SinkToStore over a sharded fleet: each closed event
// is routed by the plan to exactly one of the stores, so the stores
// partition the run's events and a FederatedStore over them answers
// queries byte-identically to one store holding everything (events
// keep their engine-stamped Seq, the global merge order, wherever they
// land). len(stores) must equal plan.Shards(). The returned wait
// function blocks until the Run has returned, every event has been
// appended to its shard, and every store has been synced; it joins the
// per-shard errors. A failing shard never blocks the others: its
// remaining events are still routed (and dropped with the error
// latched), the healthy shards keep appending.
func (d *Detector) SinkToShards(plan ShardPlan, stores []*Store) (wait func() error) {
	if len(stores) != plan.Shards() {
		err := fmt.Errorf("SinkToShards: plan %v wants %d stores, got %d", plan, plan.Shards(), len(stores))
		return func() error { return err }
	}
	s := d.subscribeUnbounded()
	done := make(chan error, 1)
	go func() {
		errs := make([]error, len(stores))
		for ev := range s.ch {
			i := plan.Shard(ev)
			if i < 0 || i >= len(stores) || errs[i] != nil {
				continue // drain so Run's finish isn't blocked
			}
			errs[i] = stores[i].Append(ev)
		}
		for i, st := range stores {
			if errs[i] == nil {
				errs[i] = st.Sync()
			}
		}
		done <- errors.Join(errs...)
	}()
	return func() error { return <-done }
}

// Stream returns the subscription as an iterator: ranging over it
// yields each event as it closes, ending when the current (or next)
// Run returns. Breaking out of the range cancels the subscription.
// The subscription registers when Stream is called, so call it before
// starting Run to observe every event:
//
//	events := det.Stream()
//	go det.Run(ctx, src)
//	for ev := range events {
//		fmt.Println(ev.Prefix, ev.Duration())
//	}
func (d *Detector) Stream() iter.Seq[*Event] {
	s := d.subscribe()
	return func(yield func(*Event) bool) {
		defer func() {
			d.unsubscribe(s)
			s.cancel()
		}()
		for ev := range s.ch {
			if !yield(ev) {
				return
			}
		}
	}
}
