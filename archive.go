package bgpblackholing

import (
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"time"

	"bgpblackholing/internal/collector"
	"bgpblackholing/internal/mrt"
	"bgpblackholing/internal/stream"
	"bgpblackholing/internal/workload"
)

// writeFileAtomic writes path through a temp file in the same
// directory, fsyncs it, and commits with an atomic rename — the same
// durability discipline as the event store's segments. A crash at any
// point leaves either the old file or the complete new one, never a
// torn archive; fsync and close errors surface instead of being
// dropped.
func writeFileAtomic(path string, write func(io.Writer) error) (err error) {
	dir := filepath.Dir(path)
	f, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			f.Close()
			os.Remove(f.Name())
		}
	}()
	if err = write(f); err != nil {
		return err
	}
	if err = f.Sync(); err != nil {
		return err
	}
	if err = f.Close(); err != nil {
		return err
	}
	if err = os.Rename(f.Name(), path); err != nil {
		return err
	}
	// Make the rename itself durable. Some filesystems refuse fsync on
	// directories; the rename there is as durable as it gets.
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	if cerr := d.Close(); serr == nil {
		serr = cerr
	}
	if errors.Is(serr, os.ErrInvalid) {
		serr = nil
	}
	return serr
}

// ArchiveSummary describes one WriteMRTArchives run.
type ArchiveSummary struct {
	// Collectors is the number of update archives written (one per
	// collector that observed anything in the window).
	Collectors int
	// Dumps is the number of TABLE_DUMP_V2 seed archives written.
	Dumps int
	// Updates is the total number of archived updates.
	Updates int
}

// WriteMRTArchives archives days [fromDay, toDay) of the scenario's
// blackholing activity as MRT files (RFC 6396) in dir, one
// <collector>.mrt per route collector — the same artefacts RIPE RIS,
// Route Views and PCH publish. Blackholings that started before the
// window and are still active at its start additionally seed
// <collector>.dump.mrt TABLE_DUMP_V2 snapshots (§4.2 initialisation),
// the dictionary is dumped as dictionary.json (LoadDictionary reads it
// back), and world.txt summarises the world for humans. Identical
// pipelines and windows produce byte-identical archives; bhdetect — or
// any MRTSource + Detector combination — can then re-infer the events
// from the archives alone.
func (p *Pipeline) WriteMRTArchives(dir string, fromDay, toDay int) (*ArchiveSummary, error) {
	if toDay <= fromDay {
		return nil, fmt.Errorf("empty window [%d,%d)", fromDay, toDay)
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	sum := &ArchiveSummary{}

	colByName := map[string]*collector.Collector{}
	for _, c := range p.Deploy.Collectors {
		colByName[c.Name] = c
	}

	// Table dumps: blackholings that started before the window and are
	// still active at its start seed the archives as TABLE_DUMP_V2
	// snapshots (§4.2 initialisation).
	windowStart := workload.TimelineStart.Add(time.Duration(fromDay) * 24 * time.Hour)
	dumpObs := map[string][]collector.Observation{}
	for day := fromDay - 45; day < fromDay; day++ {
		if day < 0 {
			continue
		}
		for _, in := range p.Scenario.IntentsForDay(day) {
			if !in.Prefix.IsValid() || len(in.Pattern) != 1 {
				continue
			}
			if !in.Start.Add(in.Pattern[0].On).After(windowStart) {
				continue // ended before the window
			}
			ann := collector.Announcement{
				Time:            in.Start,
				User:            in.User,
				Prefix:          in.Prefix,
				Communities:     in.Communities(p.Topo),
				NoExport:        in.NoExport,
				TargetProviders: in.Providers,
				TargetIXPs:      in.IXPs,
				Bundled:         in.Bundled,
			}
			for _, o := range p.Deploy.Propagate(ann).Observations {
				dumpObs[o.Collector.Name] = append(dumpObs[o.Collector.Name], o)
			}
		}
	}
	var dumpNames []string
	for name := range dumpObs {
		dumpNames = append(dumpNames, name)
	}
	sort.Strings(dumpNames)
	for _, name := range dumpNames {
		err := writeFileAtomic(filepath.Join(dir, name+".dump.mrt"), func(w io.Writer) error {
			return collector.WriteTableDump(w, colByName[name], dumpObs[name], windowStart)
		})
		if err != nil {
			return nil, err
		}
		sum.Dumps++
	}

	// Collect observations per collector across the window.
	perCollector := map[string][]collector.Observation{}
	for day := fromDay; day < toDay; day++ {
		intents := p.Scenario.IntentsForDay(day)
		obs, _ := workload.Materialize(p.Deploy, p.Topo, intents, p.Opts.Seed)
		for _, o := range obs {
			perCollector[o.Collector.Name] = append(perCollector[o.Collector.Name], o)
			sum.Updates++
		}
	}

	var names []string
	for name := range perCollector {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		col := colByName[name]
		// Time-order within the archive.
		elems := stream.SortedElems(perCollector[name])
		err := writeFileAtomic(filepath.Join(dir, name+".mrt"), func(fw io.Writer) error {
			w := mrt.NewWriter(fw)
			for _, el := range elems {
				if err := w.WriteUpdate(el.Update, col.IP, col.ASN); err != nil {
					return fmt.Errorf("write %s: %w", name, err)
				}
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sum.Collectors = len(names)

	// Dictionary dump: bhdetect (and humans) can load this instead of
	// re-deriving the corpus.
	err := writeFileAtomic(filepath.Join(dir, "dictionary.json"), func(w io.Writer) error {
		return p.Dict.Save(w)
	})
	if err != nil {
		return nil, err
	}

	// World summary for humans.
	err = writeFileAtomic(filepath.Join(dir, "world.txt"), func(w io.Writer) error {
		if _, err := fmt.Fprintf(w, "seed=%d scale=%.3f window=[%d,%d)\n", p.Opts.Seed, p.Opts.TopoScale, fromDay, toDay); err != nil {
			return err
		}
		if _, err := fmt.Fprintf(w, "ASes: %d  IXPs: %d  blackholing providers: %d  blackholing IXPs: %d\n",
			len(p.Topo.Order), len(p.Topo.IXPs),
			len(p.Topo.BlackholingProviders()), len(p.Topo.BlackholingIXPs())); err != nil {
			return err
		}
		_, err := fmt.Fprintf(w, "collectors: %d  archived updates: %d\n", sum.Collectors, sum.Updates)
		return err
	})
	if err != nil {
		return nil, err
	}
	return sum, nil
}
