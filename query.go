package bgpblackholing

import (
	"fmt"
	"iter"
	"net/netip"
	"slices"
	"sort"
	"strconv"
	"strings"
	"sync/atomic"
	"time"

	"bgpblackholing/internal/analysis"
	"bgpblackholing/internal/core"
	"bgpblackholing/internal/store"
)

// This file is the facade over the persistent event store
// (internal/store): detection results land once in a durable, indexed,
// segmented log and longitudinal queries — by prefix (exact, longest
// -prefix-match, covered, covering), time range, origin ASN, provider,
// duration and dictionary community — are answered from in-memory
// indexes in microseconds, without replaying raw BGP data. The paper's
// tables and figures regenerate directly from the store.

// Store is a persistent, indexed store of closed blackholing events:
// an append-only, segmented, checksummed binary log with atomic-rename
// commits and crash recovery, plus indexes (a patricia trie over
// prefixes, time buckets, per-user / per-provider / per-community
// postings) rebuilt on open. One process appends — typically a
// Detector via SinkToStore — while any number of goroutines query.
type Store struct {
	s *store.Store
	// ann, when set, powers Query.Enrich legitimacy annotation; atomic
	// because SetAnnotator may race concurrent queries.
	ann atomic.Pointer[Annotator]
	// qobs, when set by Telemetry.ObserveStore, receives query-path
	// telemetry; atomic for the same reason as ann.
	qobs atomic.Pointer[queryObs]
}

// SetAnnotator attaches a legitimacy annotator (see NewAnnotator and
// Pipeline.Annotator): queries with Enrich set then return per-event
// RPKI validity, community documentation status and a combined verdict.
// A nil annotator turns enrichment back off. Safe to call while other
// goroutines query.
func (st *Store) SetAnnotator(a *Annotator) { st.ann.Store(a) }

// Annotator returns the attached legitimacy annotator, or nil.
func (st *Store) Annotator() *Annotator { return st.ann.Load() }

// StoreOptions tunes OpenStoreWith.
type StoreOptions = store.Options

// SyncPolicy is the store's group-commit fsync policy (StoreOptions.Sync):
// batch fsyncs every N appended records or every Interval, whichever
// comes first; Always per append; the zero value only at seal, Sync and
// Close. See ParseSyncPolicy for the flag syntax.
type SyncPolicy = store.SyncPolicy

// SegmentFile is the store's active-segment write handle, the seam
// StoreOptions.OpenSegment replaces for fault injection.
type SegmentFile = store.SegmentFile

// StoreStats describes a store's shape (Store.Stats).
type StoreStats = store.Stats

// CompactStats describes one compaction (Store.Compact).
type CompactStats = store.CompactStats

// CompactionPolicy selects which segments a compaction pass may merge:
// time-partitioned segments (Partition), LSM-style size-ratio runs
// (SizeRatio / MinRun), or the legacy merge-everything pass (MergeAll).
// See Store.Compact and ParseCompactionPolicy.
type CompactionPolicy = store.Policy

// PrefixMode selects how Query.Prefix matches stored prefixes.
type PrefixMode = store.PrefixMode

// Prefix match modes.
const (
	// PrefixExact matches events for exactly the query prefix.
	PrefixExact = store.PrefixExact
	// PrefixLPM matches events for the longest stored prefix containing
	// the query ("who blackholes this address").
	PrefixLPM = store.PrefixLPM
	// PrefixCovered matches every stored prefix inside the query ("all
	// blackholed more-specifics of this /16").
	PrefixCovered = store.PrefixCovered
	// PrefixCovering matches every stored prefix containing the query
	// (the chain of covering aggregates).
	PrefixCovering = store.PrefixCovering
)

// OpenStore opens (or creates) the event store in dir for reading and
// appending, replaying the log and rebuilding the indexes. A tail torn
// by a crash is truncated to the last intact record.
func OpenStore(dir string) (*Store, error) {
	return OpenStoreWith(dir, StoreOptions{})
}

// OpenStoreReadOnly opens an existing store for querying only: nothing
// on disk is modified, and Append / Compact fail.
func OpenStoreReadOnly(dir string) (*Store, error) {
	return OpenStoreWith(dir, StoreOptions{ReadOnly: true})
}

// ReplicaReport says what one ReplicateStore pass shipped.
type ReplicaReport = store.ReplicaReport

// ReplicateStore one-shot syncs the store directory srcDir into
// dstDir: sealed segments and sidecars copy once, the active segment
// re-ships as it grows, and files superseded by compaction are
// retired. Safe against a live source (segments are CRC-framed, so a
// torn tail costs the replica only the newest events until the next
// pass). The replica is served by OpenStoreReadOnly — the shape a
// federated read tier fans out to.
func ReplicateStore(srcDir, dstDir string) (*ReplicaReport, error) {
	return store.Replicate(srcDir, dstDir)
}

// OpenStoreWith opens a store with explicit options — segment size and
// the background compactor threshold (CompactSegments > 0 merges
// sealed segments and drops superseded flush duplicates continuously).
func OpenStoreWith(dir string, opts StoreOptions) (*Store, error) {
	s, err := store.Open(dir, opts)
	if err != nil {
		return nil, err
	}
	return &Store{s: s}, nil
}

// Append persists events in order. Call Sync (or Close) for
// durability; SinkToStore does both.
func (st *Store) Append(events ...*Event) error { return st.s.Append(events...) }

// Sync flushes appended events to stable storage.
func (st *Store) Sync() error { return st.s.Sync() }

// Close syncs and closes the store.
func (st *Store) Close() error { return st.s.Close() }

// Len returns the number of stored events.
func (st *Store) Len() int { return st.s.Len() }

// Stats snapshots the store's shape.
func (st *Store) Stats() StoreStats { return st.s.Stats() }

// Compact runs one compaction pass under policy. A zero policy is the
// default tiered pass (size-ratio 4, runs of 4, one partition); set
// MergeAll for the legacy merge-everything behavior, or Partition plus
// SizeRatio/MinRun for LSM-style tiering in which cold, settled
// segments are never rewritten (CompactStats.Skipped names them).
func (st *Store) Compact(policy CompactionPolicy) (CompactStats, error) {
	return st.s.CompactWith(policy)
}

// DeletePrefix erases a prefix's history — GDPR-style: every stored
// event whose prefix lies inside prefix (including exact matches) and,
// when upTo is non-zero, ended at or before upTo disappears from
// queries immediately; its bytes leave the disk at the next compaction
// of its segment's partition. The tombstone is durable and stays in
// force for later appends and reopens. Returns the number of events
// erased now.
func (st *Store) DeletePrefix(prefix netip.Prefix, upTo time.Time) (int, error) {
	return st.s.DeletePrefix(prefix, upTo)
}

// Events returns every stored event in append (closing) order.
func (st *Store) Events() []*Event {
	return slices.Collect(st.s.All())
}

// Query selects stored events; the zero value matches everything.
type Query struct {
	// From / To bound the event span: an event matches when [Start,
	// End] overlaps [From, To]. Zero means unbounded on that side.
	From, To time.Time
	// Prefix, when valid, constrains by prefix under Mode (PrefixExact,
	// PrefixLPM, PrefixCovered, PrefixCovering).
	Prefix netip.Prefix
	Mode   PrefixMode
	// OriginASN matches events whose inferred blackholing users include
	// this ASN — the paper's per-origin slicing. Zero means any.
	OriginASN ASN
	// Provider, when non-nil, matches events inferring this provider.
	Provider *ProviderRef
	// Community, when non-zero, matches events carrying this dictionary
	// community.
	Community Community
	// MinDuration / MaxDuration bound the event duration (zero = unbounded).
	MinDuration, MaxDuration time.Duration
	// Limit caps returned events (0 = unlimited); Total still counts
	// every match.
	Limit int
	// Enrich asks for legitimacy annotation of every returned event:
	// RPKI validity per inferred origin, documentation status per
	// matched community, and a combined verdict. Requires an annotator
	// on the store (Store.SetAnnotator); ignored otherwise.
	Enrich bool
}

// QueryResult is one query's outcome.
type QueryResult struct {
	// Events are the matches in append (closing) order.
	Events []*Event
	// Annotations, present only when Query.Enrich was set and the store
	// has an annotator, parallels Events with the legitimacy view of
	// each match.
	Annotations []Annotation
	// Total counts all matches, ignoring Limit.
	Total int
	// Scanned counts candidate events examined — the narrowest index
	// posting set, not the store size.
	Scanned int
	// Elapsed is the query's wall-clock execution time.
	Elapsed time.Duration
}

// Query answers a longitudinal query from the in-memory indexes; no
// raw update data is touched and nothing is replayed.
func (st *Store) Query(q Query) *QueryResult {
	began := time.Now()
	res := st.s.Query(store.Filter{
		From:        q.From,
		To:          q.To,
		Prefix:      q.Prefix,
		Mode:        q.Mode,
		User:        q.OriginASN,
		Provider:    q.Provider,
		Community:   q.Community,
		MinDuration: q.MinDuration,
		MaxDuration: q.MaxDuration,
		Limit:       q.Limit,
	})
	out := &QueryResult{
		Events:  res.Events,
		Total:   res.Total,
		Scanned: res.Scanned,
	}
	if ann := st.ann.Load(); q.Enrich && ann != nil {
		out.Annotations = make([]Annotation, len(res.Events))
		for i, ev := range res.Events {
			out.Annotations[i] = ann.Annotate(ev)
		}
	}
	out.Elapsed = time.Since(began)
	if qo := st.qobs.Load(); qo != nil {
		sec := out.Elapsed.Seconds()
		if q.Enrich && st.ann.Load() != nil {
			qo.enrichedTotal.Inc()
			qo.enrichedSeconds.Observe(sec)
		} else {
			qo.total.Inc()
			qo.seconds.Observe(sec)
		}
	}
	return out
}

// QuerySeq answers the same query as Query, but as an iterator: events
// stream one at a time in append (closing) order without materializing
// the result set — the NDJSON HTTP path and other uncapped consumers
// drain it incrementally. Enrichment is the consumer's concern here:
// annotate yielded events with Annotator.Annotate as they stream.
func (st *Store) QuerySeq(q Query) iter.Seq[*Event] {
	if qo := st.qobs.Load(); qo != nil {
		// Streaming queries count but have no meaningful whole-call
		// latency: the consumer paces the iteration.
		qo.total.Inc()
	}
	return st.s.QuerySeq(store.Filter{
		From:        q.From,
		To:          q.To,
		Prefix:      q.Prefix,
		Mode:        q.Mode,
		User:        q.OriginASN,
		Provider:    q.Provider,
		Community:   q.Community,
		MinDuration: q.MinDuration,
		MaxDuration: q.MaxDuration,
		Limit:       q.Limit,
	})
}

// ---------------------------------------------------------------------
// Store-backed tables and figures: the paper's evaluation directly from
// the persisted events, no replay.

// Figure4 computes the daily longitudinal series from the store. When
// start is aligned to a UTC midnight the store's materialized per-day
// aggregate view answers in O(days) — no event scan; otherwise it
// falls back to the one-pass scan. Both paths produce identical
// numbers (the alignment is exactly what makes scan day-bucketing
// coincide with calendar-day overlap).
func (st *Store) Figure4(start time.Time, days int) []DailyPoint {
	if counts, ok := st.s.DailyCounts(start, days); ok {
		out := make([]DailyPoint, days)
		for d := range out {
			out[d] = DailyPoint{
				Day:       start.Add(time.Duration(d) * 24 * time.Hour),
				Providers: counts[d].Providers,
				Users:     counts[d].Users,
				Prefixes:  counts[d].Prefixes,
			}
		}
		return out
	}
	return analysis.Figure4Seq(st.s.All(), start, days)
}

// Figure8 computes the raw and grouped duration distributions from the
// store.
func (st *Store) Figure8(timeout time.Duration) (ungrouped, grouped []time.Duration) {
	return analysis.Figure8Seq(st.s.All(), timeout)
}

// Group merges the store's per-prefix events into periods (the paper's
// 5-minute aggregation).
func (st *Store) Group(timeout time.Duration) []*Period {
	return core.Group(st.Events(), timeout)
}

// Table3FromStore computes the blackhole visibility overview (Table 3)
// from persisted events.
func (p *Pipeline) Table3FromStore(st *Store) []Table3Row {
	return analysis.Table3Seq(st.s.All(), p.Deploy)
}

// Table4FromStore computes visibility by provider type (Table 4) from
// persisted events.
func (p *Pipeline) Table4FromStore(st *Store) []Table4Row {
	return analysis.Table4Seq(st.s.All(), p.Topo, p.Deploy)
}

// ---------------------------------------------------------------------
// Wire representation: the JSON shape served by the HTTP API and
// consumed by bhquery.

// EventRecord is the JSON-friendly projection of an Event: map-valued
// evidence becomes sorted lists, providers render in their canonical
// "AS123" / "ixp:4" notation.
type EventRecord struct {
	Prefix          string    `json:"prefix"`
	Start           time.Time `json:"start"`
	End             time.Time `json:"end"`
	DurationSeconds float64   `json:"duration_seconds"`
	StartUnknown    bool      `json:"start_unknown,omitempty"`
	Providers       []string  `json:"providers,omitempty"`
	Users           []uint32  `json:"users,omitempty"`
	Communities     []string  `json:"communities,omitempty"`
	Platforms       []string  `json:"platforms,omitempty"`
	Peers           int       `json:"peers"`
	Detections      int       `json:"detections"`
	DirectFeed      bool      `json:"direct_feed,omitempty"`
	SawNoExport     bool      `json:"saw_no_export,omitempty"`

	// Seq is the event's global closing sequence number (Event.Seq),
	// the total-order key federated queries merge shard streams on.
	// Zero (and absent on the wire) for events written before seq
	// stamping or built by hand.
	Seq uint64 `json:"seq,omitempty"`

	// Legitimacy enrichment (query-time, opt-in): absent unless the
	// record was built with an annotation (NewEventRecordEnriched /
	// enrich=1), so un-enriched responses are byte-identical to the
	// pre-enrichment wire format.
	RPKI              []OriginValidity `json:"rpki,omitempty"`
	CommunityDoc      []CommunityDoc   `json:"community_doc,omitempty"`
	Legitimacy        string           `json:"legitimacy,omitempty"`
	LegitimacyReasons []string         `json:"legitimacy_reasons,omitempty"`
}

// NewEventRecord projects an event into its wire representation.
func NewEventRecord(ev *Event) EventRecord {
	r := EventRecord{
		Prefix:          ev.Prefix.String(),
		Start:           ev.Start.UTC(),
		End:             ev.End.UTC(),
		DurationSeconds: ev.Duration().Seconds(),
		StartUnknown:    ev.StartUnknown,
		Peers:           len(ev.Peers),
		Detections:      ev.Detections,
		DirectFeed:      ev.DirectFeed,
		SawNoExport:     ev.SawNoExport,
		Seq:             ev.Seq,
	}
	for pr := range ev.Providers {
		r.Providers = append(r.Providers, pr.String())
	}
	sort.Strings(r.Providers)
	for u := range ev.Users {
		r.Users = append(r.Users, uint32(u))
	}
	slices.Sort(r.Users)
	for c := range ev.Communities {
		r.Communities = append(r.Communities, c.String())
	}
	sort.Strings(r.Communities)
	for p := range ev.Platforms {
		r.Platforms = append(r.Platforms, p.String())
	}
	sort.Strings(r.Platforms)
	return r
}

// NewEventRecordEnriched projects an event with its legitimacy
// annotation attached: the rpki, community_doc, legitimacy and
// legitimacy_reasons fields appear on the wire.
func NewEventRecordEnriched(ev *Event, ann Annotation) EventRecord {
	r := NewEventRecord(ev)
	r.RPKI = ann.RPKI
	r.CommunityDoc = ann.Communities
	r.Legitimacy = ann.Legitimacy
	r.LegitimacyReasons = ann.Reasons
	return r
}

// ParseProviderRef parses the canonical provider notation: "AS3356"
// (the AS prefix is case-insensitive: "as3356", "As3356", "aS3356"),
// a bare ASN like "3356", or "ixp:4". The alert rule syntax shares the
// same parser (internal/core), so query filters and alert rules never
// disagree on what names a provider.
func ParseProviderRef(s string) (ProviderRef, error) {
	return core.ParseProviderRef(s)
}

// ParseCompactionPolicy parses a compaction policy spec, the format
// cmd/bhserve's -compact-policy flag and bhquery's admin verbs use:
//
//	merge-all (or all)     legacy: merge every segment on every pass
//	tiered                 size-ratio 4, runs of 4, 30-day partitions
//	tiered,partition=60d,ratio=3,min-run=2
//
// The tiered options: partition is a Go duration ("720h") or a day
// count ("30d", 0 disables time partitioning), ratio bounds a run's
// largest-to-smallest segment size, min-run is the run length that
// triggers a merge.
func ParseCompactionPolicy(s string) (CompactionPolicy, error) {
	parts := strings.Split(strings.TrimSpace(s), ",")
	switch parts[0] {
	case "", "all", "merge-all":
		if len(parts) > 1 {
			return CompactionPolicy{}, fmt.Errorf("policy %q takes no options", parts[0])
		}
		return CompactionPolicy{MergeAll: true}, nil
	case "tiered":
	default:
		return CompactionPolicy{}, fmt.Errorf("bad compaction policy %q (want merge-all or tiered[,partition=30d,ratio=4,min-run=4])", s)
	}
	pol := CompactionPolicy{Partition: 30 * 24 * time.Hour, SizeRatio: 4, MinRun: 4}
	for _, opt := range parts[1:] {
		k, v, ok := strings.Cut(opt, "=")
		if !ok {
			return CompactionPolicy{}, fmt.Errorf("bad policy option %q (want key=value)", opt)
		}
		switch k {
		case "partition":
			d, err := parseDaysOrDuration(v)
			if err != nil || d < 0 {
				return CompactionPolicy{}, fmt.Errorf("bad partition %q (want a duration like 720h or 30d)", v)
			}
			pol.Partition = d
		case "ratio":
			r, err := strconv.ParseFloat(v, 64)
			if err != nil || r <= 1 {
				return CompactionPolicy{}, fmt.Errorf("bad ratio %q (want > 1)", v)
			}
			pol.SizeRatio = r
		case "min-run":
			n, err := strconv.Atoi(v)
			if err != nil || n < 2 {
				return CompactionPolicy{}, fmt.Errorf("bad min-run %q (want >= 2)", v)
			}
			pol.MinRun = n
		default:
			return CompactionPolicy{}, fmt.Errorf("unknown policy option %q (want partition, ratio or min-run)", k)
		}
	}
	return pol, nil
}

// ParseSyncPolicy parses a group-commit fsync policy spec, the format
// cmd/bhserve's -sync-policy flag uses:
//
//	close                 sync only at seal, explicit Sync and Close
//	                      (the zero value — fastest, crash loses the
//	                      whole unsynced segment tail)
//	always                fsync after every append batch
//	group                 every 1000 records or 200ms, whichever first
//	group,every=500,interval=100ms
//
// The group options: every is a record count (0 disables the count
// trigger), interval a Go duration (0 disables the deadline).
func ParseSyncPolicy(s string) (SyncPolicy, error) {
	parts := strings.Split(strings.TrimSpace(s), ",")
	switch parts[0] {
	case "", "close":
		if len(parts) > 1 {
			return SyncPolicy{}, fmt.Errorf("policy %q takes no options", parts[0])
		}
		return SyncPolicy{}, nil
	case "always":
		if len(parts) > 1 {
			return SyncPolicy{}, fmt.Errorf("policy %q takes no options", parts[0])
		}
		return SyncPolicy{Always: true}, nil
	case "group":
	default:
		return SyncPolicy{}, fmt.Errorf("bad sync policy %q (want close, always or group[,every=1000,interval=200ms])", s)
	}
	pol := SyncPolicy{EveryN: 1000, Interval: 200 * time.Millisecond}
	for _, opt := range parts[1:] {
		k, v, ok := strings.Cut(opt, "=")
		if !ok {
			return SyncPolicy{}, fmt.Errorf("bad policy option %q (want key=value)", opt)
		}
		switch k {
		case "every":
			n, err := strconv.Atoi(v)
			if err != nil || n < 0 {
				return SyncPolicy{}, fmt.Errorf("bad every %q (want a record count)", v)
			}
			pol.EveryN = n
		case "interval":
			d, err := time.ParseDuration(v)
			if err != nil || d < 0 {
				return SyncPolicy{}, fmt.Errorf("bad interval %q (want a duration like 200ms)", v)
			}
			pol.Interval = d
		default:
			return SyncPolicy{}, fmt.Errorf("unknown policy option %q (want every or interval)", k)
		}
	}
	if pol.EveryN == 0 && pol.Interval == 0 {
		return SyncPolicy{}, fmt.Errorf("sync policy %q disables both triggers; use close instead", s)
	}
	return pol, nil
}

// parseDaysOrDuration accepts "30d" day counts alongside Go durations.
func parseDaysOrDuration(s string) (time.Duration, error) {
	if days, ok := strings.CutSuffix(s, "d"); ok {
		n, err := strconv.Atoi(days)
		if err != nil {
			return 0, err
		}
		return time.Duration(n) * 24 * time.Hour, nil
	}
	return time.ParseDuration(s)
}

// FormatPrefixMode renders a prefix match mode as its parameter name —
// the inverse of ParsePrefixMode, used when forwarding a Query to a
// remote shard.
func FormatPrefixMode(m PrefixMode) string {
	switch m {
	case PrefixLPM:
		return "lpm"
	case PrefixCovered:
		return "covered"
	case PrefixCovering:
		return "covering"
	}
	return "exact"
}

// ParsePrefixMode parses a prefix match mode name: "exact", "lpm",
// "covered" or "covering".
func ParsePrefixMode(s string) (PrefixMode, error) {
	switch strings.ToLower(s) {
	case "", "exact":
		return PrefixExact, nil
	case "lpm":
		return PrefixLPM, nil
	case "covered":
		return PrefixCovered, nil
	case "covering":
		return PrefixCovering, nil
	}
	return PrefixExact, fmt.Errorf("bad prefix mode %q (want exact, lpm, covered or covering)", s)
}
