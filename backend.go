package bgpblackholing

import (
	"context"
	"encoding/json"
	"errors"
	"io"
	"iter"
	"sync"
	"time"

	"bgpblackholing/internal/analysis"
)

// This file defines Backend — the record-level query abstraction the
// HTTP layer serves and the federation layer composes. A Backend
// answers the longitudinal query surface (events, legitimacy,
// Figure 4, stats, health) over *wire records* rather than in-memory
// events, which is what makes the three implementations
// interchangeable:
//
//	StoreBackend    the local store (this file)
//	RemoteBackend   a bhserve/bhroute peer over HTTP (remote.go)
//	FederatedStore  N backends merged in global event order (federate.go)
//
// NewStoreHandlerWith serves whichever Backend it is given, so a
// single store, a remote store, and a fan-out over shards all expose
// the identical HTTP contract — federation is invisible to clients.

// Figure4Sets is the mergeable wire form of the Figure 4 daily series:
// per-day distinct-entity lists instead of counts, so a router can
// union shards before counting (analysis.Figure4Partial).
type Figure4Sets = analysis.Figure4Sets

// RecordKey is the canonical global ordering of event records across
// shards: the engine's closing sequence number first, then
// (End, Start, Prefix) as tie-breaks for legacy (seq-less) records.
//
// Seq — not End — is the primary key on purpose. The engine stamps
// Seq monotonically as events close, so Seq order IS the single
// store's append order; End order is not, because implicit
// withdrawals backdate End to the last sighting, closing a
// long-stale event after (but ending before) its neighbors. Merging
// shard streams on Seq therefore reproduces the exact single-store
// stream for any seq-stamped lineage. Records written before seq
// stamping carry Seq 0 and sort first, ordered among themselves by
// their fields — deterministic, but only approximating their
// original interleave.
type RecordKey struct {
	End    int64 // End UnixNano
	Seq    uint64
	Start  int64 // Start UnixNano
	Prefix string
}

// Less orders keys lexicographically over (Seq, End, Start, Prefix).
func (k RecordKey) Less(o RecordKey) bool {
	if k.Seq != o.Seq {
		return k.Seq < o.Seq
	}
	if k.End != o.End {
		return k.End < o.End
	}
	if k.Start != o.Start {
		return k.Start < o.Start
	}
	return k.Prefix < o.Prefix
}

// KeyOf extracts the merge key from a wire record.
func KeyOf(rec *EventRecord) RecordKey {
	return RecordKey{
		End:    rec.End.UnixNano(),
		Seq:    rec.Seq,
		Start:  rec.Start.UnixNano(),
		Prefix: rec.Prefix,
	}
}

// RecordSet is a materialized query answer in wire form.
type RecordSet struct {
	// Records are the matches in global event order, annotated when the
	// query asked for enrichment. Records are shared, read-only wire
	// values: a StoreBackend hands out its memoized projections, and a
	// federation re-slices shard answers — callers must not mutate
	// them.
	Records []*EventRecord
	// Total counts all matches ignoring Limit; Scanned counts candidate
	// events examined. Across a federation both are sums over shards.
	Total   int
	Scanned int
	// Elapsed is the whole call's wall-clock time.
	Elapsed time.Duration
	// ShardsFailed counts backends that could not answer (federated
	// queries only; the records are the surviving shards' merge).
	ShardsFailed int
}

// RecordLine is one NDJSON record plus its merge key. Line holds the
// exact serialized bytes (no trailing newline) — the federation layer
// passes shard bytes through verbatim, so a federated NDJSON response
// is byte-identical to a single store's.
type RecordLine struct {
	Key  RecordKey
	Line []byte
}

// RecordStream is an open, incremental record stream. ShardsFailed is
// known at open time (streams are opened eagerly), so an HTTP handler
// can set response headers before the first body byte.
type RecordStream struct {
	// ShardsFailed counts backends that failed to open or prime their
	// stream. A shard that dies mid-stream after delivering records
	// cannot be reflected here; it ends that shard's contribution.
	ShardsFailed int

	next  func() (RecordLine, error)
	close func()
}

// Next returns the next record line, or io.EOF at the end.
func (s *RecordStream) Next() (RecordLine, error) { return s.next() }

// Close releases the stream's resources. Safe to call more than once.
func (s *RecordStream) Close() {
	if s.close != nil {
		s.close()
		s.close = nil
	}
}

// Figure4Result is a Backend's Figure 4 answer plus partial-result
// accounting (meaningful only for federated backends).
type Figure4Result struct {
	Series       []DailyPoint
	ShardsFailed int
}

// LegitimacySummary is the /legitimacy aggregation in wire form.
type LegitimacySummary struct {
	Total        int            `json:"total"`
	Legitimacy   map[string]int `json:"legitimacy"`
	RPKI         map[string]int `json:"rpki"`
	CommunityDoc map[string]int `json:"community_doc"`
	Reasons      map[string]int `json:"reasons"`
	ElapsedUS    int64          `json:"elapsed_us"`
	// ShardsFailed counts backends missing from the aggregation
	// (federated queries only; omitted when zero so single-store
	// responses keep their historical shape).
	ShardsFailed int `json:"shards_failed,omitempty"`
}

func newLegitimacySummary() *LegitimacySummary {
	return &LegitimacySummary{
		Legitimacy:   map[string]int{},
		RPKI:         map[string]int{},
		CommunityDoc: map[string]int{},
		Reasons:      map[string]int{},
	}
}

// ShardStat is one shard's row in a federated /stats answer.
type ShardStat struct {
	Name string `json:"name"`
	// URL is the shard's primary endpoint (remote shards only).
	URL    string `json:"url,omitempty"`
	Status string `json:"status"`
	Events int    `json:"events"`
	Err    string `json:"error,omitempty"`
	// Requests / Failures / Hedges are the router's lifetime counters
	// for this shard.
	Requests uint64 `json:"requests"`
	Failures uint64 `json:"failures"`
	Hedges   uint64 `json:"hedges"`
}

// ShardsInfoVersion is the wire version of the "shards" block in
// /stats and /healthz responses. Decoders written before federation
// ignore the block entirely (it is additive); decoders that consume it
// must check Version and reject values they do not understand, so the
// block's layout can evolve without silently corrupting dashboards.
const ShardsInfoVersion = 1

// ShardsInfo is the version-tagged federation section of /stats.
type ShardsInfo struct {
	Version int         `json:"version"`
	Failed  int         `json:"failed"`
	Shards  []ShardStat `json:"shards"`
}

// BackendStats is a Backend's /stats answer: the (possibly aggregated)
// store shape, plus the per-shard breakdown for federations. The
// embedded StoreStats keeps pre-federation /stats decoders working
// unchanged.
type BackendStats struct {
	StoreStats
	Shards *ShardsInfo `json:"shards,omitempty"`
}

// ShardHealth is one backend's health answer.
type ShardHealth struct {
	Name   string            `json:"name,omitempty"`
	Status string            `json:"status"` // "ok", "degraded", "down"
	Events int               `json:"events"`
	Checks map[string]string `json:"checks,omitempty"`
	Err    string            `json:"error,omitempty"`
}

// Backend answers the longitudinal query surface over wire records.
// All methods are safe for concurrent use. Context cancellation aborts
// in-flight work; a cancelled call returns ctx.Err().
type Backend interface {
	// Name identifies the backend in stats, health and error messages.
	Name() string
	// Records answers a query as a materialized record set. Limits are
	// the caller's concern: pass q.Limit explicitly (HTTP handlers
	// default JSON responses to 10000 before calling).
	Records(ctx context.Context, q Query) (*RecordSet, error)
	// RecordLines answers a query as an incremental NDJSON stream in
	// global event order, opened eagerly so failure accounting is known
	// before the first byte. The caller must Close the stream.
	RecordLines(ctx context.Context, q Query) (*RecordStream, error)
	// Figure4 computes the daily longitudinal series over [start,
	// start+days).
	Figure4(ctx context.Context, start time.Time, days int) (*Figure4Result, error)
	// Figure4Sets returns the mergeable per-day entity sets over the
	// same window — what a federation requests from each shard.
	Figure4Sets(ctx context.Context, start time.Time, days int) (*Figure4Sets, error)
	// LegitimacySummary aggregates the legitimacy view over matches.
	LegitimacySummary(ctx context.Context, q Query) (*LegitimacySummary, error)
	// Stats snapshots the backend's store shape.
	Stats(ctx context.Context) (*BackendStats, error)
	// Healthz probes the backend; it never returns an error — an
	// unreachable backend reports Status "down".
	Healthz(ctx context.Context) *ShardHealth
	// Close releases the backend's resources.
	Close() error
}

// errNoAnnotator marks an enrichment or legitimacy request against a
// backend with no annotator; HTTP handlers map it to a 503.
var errNoAnnotator = errors.New("enrichment needs the pipeline's registry and dictionary; run the server with a world")

// ---------------------------------------------------------------------
// StoreBackend: the local store as a Backend.

// StoreBackend adapts a local Store (and optionally its Pipeline, for
// enrichment) to the Backend interface. It is what NewStoreHandler
// serves, and what a FederatedStore composes when shards live in the
// same process (tests, benchmarks, single-host splits).
type StoreBackend struct {
	name string
	st   *Store
	p    *Pipeline
	// recs memoizes the base (unenriched) wire projection per stored
	// event. Events are immutable once closed, so the projection —
	// prefix formatting, provider/community/platform rendering, the
	// sorts — is a pure function of the event and only worth paying
	// once, not per query. Entries live as long as the backend; the
	// map is bounded by the number of distinct events ever returned.
	recs sync.Map // *Event -> *EventRecord
}

// NewStoreBackend wraps a store. p may be nil; enrichment then falls
// back to the store's own annotator (Store.SetAnnotator), matching
// NewStoreHandler's behavior.
func NewStoreBackend(st *Store, p *Pipeline) *StoreBackend {
	return &StoreBackend{name: "local", st: st, p: p}
}

// WithName labels the backend (shard names in federated stats).
func (b *StoreBackend) WithName(name string) *StoreBackend {
	b.name = name
	return b
}

// Name implements Backend.
func (b *StoreBackend) Name() string { return b.name }

// Store returns the underlying store.
func (b *StoreBackend) Store() *Store { return b.st }

func (b *StoreBackend) annotator() *Annotator {
	if b.p != nil {
		return b.p.Annotator()
	}
	return b.st.Annotator()
}

// record returns the memoized base projection of ev. The returned
// record (and any copy of it) shares its rendered slices with every
// other caller — the query surface treats records as read-only wire
// values, never mutating Providers/Users/Communities/Platforms.
func (b *StoreBackend) record(ev *Event) *EventRecord {
	if r, ok := b.recs.Load(ev); ok {
		return r.(*EventRecord)
	}
	r := NewEventRecord(ev)
	actual, _ := b.recs.LoadOrStore(ev, &r)
	return actual.(*EventRecord)
}

// Records implements Backend over Store.Query, annotating through the
// shared (cached) annotator exactly as the JSON /events path always
// has.
func (b *StoreBackend) Records(ctx context.Context, q Query) (*RecordSet, error) {
	began := time.Now()
	ann := b.annotator()
	if q.Enrich && ann == nil {
		return nil, errNoAnnotator
	}
	// Annotate while building records; clearing Enrich keeps
	// Store.Query from running a second annotation pass when the store
	// carries its own annotator.
	enrich := q.Enrich
	q.Enrich = false
	res := b.st.Query(q)
	records := make([]*EventRecord, len(res.Events))
	for i, ev := range res.Events {
		if enrich {
			r := *b.record(ev) // annotation fields differ per call: copy the base
			a := ann.Annotate(ev)
			r.RPKI = a.RPKI
			r.CommunityDoc = a.Communities
			r.Legitimacy = a.Legitimacy
			r.LegitimacyReasons = a.Reasons
			records[i] = &r
		} else {
			records[i] = b.record(ev)
		}
	}
	return &RecordSet{
		Records: records,
		Total:   res.Total,
		Scanned: res.Scanned,
		Elapsed: time.Since(began),
	}, nil
}

// RecordLines implements Backend over Store.QuerySeq. Enrichment is
// uncached (an unbounded stream must not grow the shared annotation
// cache by one entry per stored event), matching the NDJSON path's
// historical behavior.
func (b *StoreBackend) RecordLines(ctx context.Context, q Query) (*RecordStream, error) {
	ann := b.annotator()
	if q.Enrich && ann == nil {
		return nil, errNoAnnotator
	}
	enrich := q.Enrich
	q.Enrich = false
	next, stop := iter.Pull(b.st.QuerySeq(q))
	done := ctx.Done()
	return &RecordStream{
		next: func() (RecordLine, error) {
			select {
			case <-done:
				return RecordLine{}, ctx.Err()
			default:
			}
			ev, ok := next()
			if !ok {
				return RecordLine{}, io.EOF
			}
			rec := NewEventRecord(ev)
			if enrich {
				rec = NewEventRecordEnriched(ev, ann.AnnotateUncached(ev))
			}
			line, err := json.Marshal(rec)
			if err != nil {
				return RecordLine{}, err
			}
			return RecordLine{
				Key: RecordKey{
					End:    ev.End.UnixNano(),
					Seq:    ev.Seq,
					Start:  ev.Start.UnixNano(),
					Prefix: ev.Prefix.String(),
				},
				Line: line,
			}, nil
		},
		close: stop,
	}, nil
}

// Figure4 implements Backend over the store's (possibly materialized)
// daily series.
func (b *StoreBackend) Figure4(ctx context.Context, start time.Time, days int) (*Figure4Result, error) {
	return &Figure4Result{Series: b.st.Figure4(start, days)}, nil
}

// Figure4Sets implements Backend with a one-pass scan into the
// mergeable partial.
func (b *StoreBackend) Figure4Sets(ctx context.Context, start time.Time, days int) (*Figure4Sets, error) {
	p := analysis.NewFigure4Partial(start, days)
	done := ctx.Done()
	for ev := range b.st.QuerySeq(Query{}) {
		select {
		case <-done:
			return nil, ctx.Err()
		default:
		}
		p.Observe(ev)
	}
	sets := p.Sets()
	return &sets, nil
}

// LegitimacySummary implements Backend: a streaming aggregation
// through the uncached annotator, matching the /legitimacy endpoint's
// historical behavior.
func (b *StoreBackend) LegitimacySummary(ctx context.Context, q Query) (*LegitimacySummary, error) {
	ann := b.annotator()
	if ann == nil {
		return nil, errNoAnnotator
	}
	began := time.Now()
	sum := newLegitimacySummary()
	done := ctx.Done()
	for ev := range b.st.QuerySeq(q) {
		select {
		case <-done:
			return nil, ctx.Err()
		default:
		}
		a := ann.AnnotateUncached(ev) // one-shot sweep: bypass the cache
		sum.Total++
		sum.Legitimacy[a.Legitimacy]++
		if len(a.RPKI) > 0 {
			sum.RPKI[a.RPKISummary()]++
		}
		for _, cd := range a.Communities {
			sum.CommunityDoc[cd.Doc]++
		}
		for _, reason := range a.Reasons {
			sum.Reasons[reason]++
		}
	}
	sum.ElapsedUS = time.Since(began).Microseconds()
	return sum, nil
}

// Stats implements Backend.
func (b *StoreBackend) Stats(ctx context.Context) (*BackendStats, error) {
	return &BackendStats{StoreStats: b.st.Stats()}, nil
}

// Healthz implements Backend with the same write-path checks the
// /healthz endpoint runs (minus redial sources, which belong to the
// serving process, not the store).
func (b *StoreBackend) Healthz(ctx context.Context) *ShardHealth {
	h := &ShardHealth{Name: b.name, Status: "ok", Events: b.st.Len()}
	sh := b.st.s.Health()
	checks := map[string]string{}
	if sh.WoundedSegment {
		checks["store_segment"] = "wounded active segment pending failover"
	}
	if sh.AsyncSyncError != "" {
		checks["store_fsync"] = "parked async fsync error: " + sh.AsyncSyncError
	}
	if sh.HydrationError != "" {
		checks["store_hydration"] = "cold segment hydration failed; queries may see partial data: " + sh.HydrationError
	}
	if len(checks) > 0 {
		h.Status = "degraded"
		h.Checks = checks
	}
	return h
}

// Close closes the underlying store.
func (b *StoreBackend) Close() error { return b.st.Close() }
