package bgpblackholing

import (
	"io"
	"time"

	"bgpblackholing/internal/bgp"
	"bgpblackholing/internal/collector"
	"bgpblackholing/internal/core"
	"bgpblackholing/internal/dictionary"
	"bgpblackholing/internal/enrich"
	"bgpblackholing/internal/irr"
	"bgpblackholing/internal/rpki"
	"bgpblackholing/internal/stream"
	"bgpblackholing/internal/topology"
	"bgpblackholing/internal/workload"
)

// This file re-exports the stable types of the detection API, so that
// commands, examples and downstream users never import the internal
// packages: the root package is the facade. The aliases are identities
// — a *core.Event and a *bgpblackholing.Event are the same type — so
// values flow freely between the facade and the building blocks.

// Stable detection types.
type (
	// Event is one correlated prefix-level blackholing event: the span
	// during which at least one BGP peer observed the prefix blackholed.
	Event = core.Event
	// Detection is one update classified as a blackholing announcement.
	Detection = core.Detection
	// ProviderRef identifies one inferred blackholing provider.
	ProviderRef = core.ProviderRef
	// ProviderInference is one provider identified on one update.
	ProviderInference = core.ProviderInference
	// Metrics counts what the engine has processed, for live-deployment
	// observability.
	Metrics = core.Metrics
	// Period is a group of events for the same prefix with gaps at most
	// the grouping timeout (the paper's 5-minute aggregation).
	Period = core.Period
	// Update is one BGP UPDATE message in the internal model.
	Update = bgp.Update
	// Elem is one stream element: an update plus its collection context.
	Elem = stream.Elem
)

// BGP model types.
type (
	// ASN is an autonomous system number.
	ASN = bgp.ASN
	// Community is an RFC 1997 BGP community.
	Community = bgp.Community
	// LargeCommunity is an RFC 8092 BGP large community.
	LargeCommunity = bgp.LargeCommunity
	// Path is a BGP AS path (sequences and sets, with prepending).
	Path = bgp.Path
	// Origin is the BGP origin attribute.
	Origin = bgp.Origin
	// RIBEntry is one routing-table entry from a table dump.
	RIBEntry = bgp.RIBEntry
)

// World types surfaced by Pipeline fields and results.
type (
	// Platform identifies a collection platform (RIS, Route Views, PCH,
	// CDN).
	Platform = collector.Platform
	// Observation is one update observed at one collector.
	Observation = collector.Observation
	// PropagationResult describes how one blackholing announcement
	// propagated: which ASes and IXP members dropped traffic.
	PropagationResult = collector.Result
	// Dictionary is the blackhole-communities dictionary (§4.1).
	Dictionary = dictionary.Dictionary
	// DictionaryEntry is one documented community in the dictionary.
	DictionaryEntry = dictionary.Entry
	// CommunityStats is the per-community prefix-length profile feeding
	// the Figure 2 inference.
	CommunityStats = dictionary.CommunityStats
	// InferenceResult carries the prefix-length statistics and the
	// inferred undocumented communities.
	InferenceResult = dictionary.InferenceResult
	// Topology is the synthetic AS-level Internet.
	Topology = topology.Topology
	// AS is one autonomous system of the topology.
	AS = topology.AS
	// IXP is one Internet exchange point of the topology.
	IXP = topology.IXP
	// Kind classifies an AS (transit, content, access, ...).
	Kind = topology.Kind
	// DocSource records where a blackholing service is documented.
	DocSource = topology.DocSource
	// Intent is one scenario blackholing intent (ground truth).
	Intent = workload.Intent
	// Spike is one headline DDoS attack of the longitudinal scenario.
	Spike = workload.Spike
	// IRRDocument is one collected piece of operator documentation.
	IRRDocument = irr.Document
	// IRRSource distinguishes IRR records from operator web pages.
	IRRSource = irr.Source
)

// Legitimacy enrichment types (see NewAnnotator, Pipeline.Annotator,
// Query.Enrich and the /legitimacy HTTP endpoint).
type (
	// RPKIRegistry is the ROA registry: origin validation answers from
	// an indexed covering-ROA lookup (RFC 6811 semantics).
	RPKIRegistry = rpki.Registry
	// ROA is one Route Origin Authorization.
	ROA = rpki.ROA
	// RPKIState is the RFC 6811 origin-validation outcome.
	RPKIState = rpki.State
	// Annotator computes per-event legitimacy annotations from a ROA
	// registry and the blackhole-communities dictionary.
	Annotator = enrich.Annotator
	// Annotation is the legitimacy view of one event: RPKI validity per
	// origin, documentation status per community, combined verdict.
	Annotation = enrich.Annotation
	// OriginValidity is the RFC 6811 outcome for one inferred origin.
	OriginValidity = enrich.OriginValidity
	// CommunityDoc is the documentation status of one matched community.
	CommunityDoc = enrich.CommunityDoc
)

// RFC 6811 origin-validation states (RPKIState values).
const (
	RPKINotFound = rpki.NotFound
	RPKIValid    = rpki.Valid
	RPKIInvalid  = rpki.Invalid
)

// Legitimacy verdicts (Annotation.Legitimacy values).
const (
	VerdictLegitimate   = enrich.VerdictLegitimate
	VerdictQuestionable = enrich.VerdictQuestionable
	VerdictIllegitimate = enrich.VerdictIllegitimate
)

// NewAnnotator builds a legitimacy annotator over a ROA registry and a
// blackhole-communities dictionary; either may be nil (that dimension
// is then skipped). Pipeline.Annotator wires both from a built world.
func NewAnnotator(reg *RPKIRegistry, dict *Dictionary) *Annotator {
	return enrich.New(reg, dict)
}

// SummarizeRPKI folds per-origin validation states into one: "valid"
// when any origin validates, else "invalid" when any covering ROA
// exists, else "not-found" — the same precedence as
// Annotation.RPKISummary, usable on EventRecord.RPKI wire data.
func SummarizeRPKI(states []OriginValidity) string { return enrich.SummarizeRPKI(states) }

// Provider kinds (ProviderRef.Kind).
const (
	ProviderAS  = core.ProviderAS
	ProviderIXP = core.ProviderIXP
)

// NoPath is the AS-distance value recorded when the provider does not
// appear on the AS path at all (community bundling, Fig 7c "No-path").
const NoPath = core.NoPath

// DefaultGroupTimeout is the paper's 5-minute event-grouping window.
const DefaultGroupTimeout = core.DefaultGroupTimeout

// Collection platforms.
const (
	PlatformRIS = collector.PlatformRIS
	PlatformRV  = collector.PlatformRV
	PlatformPCH = collector.PlatformPCH
	PlatformCDN = collector.PlatformCDN
)

// Well-known communities and origins.
const (
	// CommunityBlackhole is the RFC 7999 BLACKHOLE community (65535:666).
	CommunityBlackhole = bgp.CommunityBlackhole
	// CommunityNoExport is the RFC 1997 NO_EXPORT well-known community.
	CommunityNoExport = bgp.CommunityNoExport
	// OriginIGP is the IGP origin attribute value.
	OriginIGP = bgp.OriginIGP
)

// Documentation sources (DocSource values and IRRDocument.Source).
const (
	DocNone    = topology.DocNone
	DocIRR     = topology.DocIRR
	DocWeb     = topology.DocWeb
	DocPrivate = topology.DocPrivate

	SourceIRR = irr.SourceIRR
	SourceWeb = irr.SourceWeb
)

// TimelineStart is day 0 of the longitudinal scenario (2014-12-01).
var TimelineStart = workload.TimelineStart

// NewPath builds an AS path of one sequence segment.
func NewPath(asns ...ASN) Path { return bgp.NewPath(asns...) }

// MakeCommunity packs an (asn, value) pair into an RFC 1997 community.
func MakeCommunity(asn uint16, value uint16) Community { return bgp.MakeCommunity(asn, value) }

// ParseCommunity parses the canonical "high:low" community notation.
func ParseCommunity(s string) (Community, error) { return bgp.ParseCommunity(s) }

// Group merges per-prefix events with inter-event gaps of at most
// timeout into periods — the paper's 5-minute aggregation that turns
// the ON/OFF probing practice into operator-level blackholing periods.
func Group(events []*Event, timeout time.Duration) []*Period {
	return core.Group(events, timeout)
}

// LoadDictionary reads a dictionary saved with Dictionary.Save (bhgen
// archives one next to its MRT files).
func LoadDictionary(r io.Reader) (*Dictionary, error) { return dictionary.Load(r) }

// Kinds lists the AS kinds in canonical order.
func Kinds() []Kind { return topology.Kinds() }

// DefaultSpikes lists the scenario's headline DDoS attacks.
func DefaultSpikes() []Spike { return workload.DefaultSpikes() }

// WorkloadPresets lists the named scenario presets accepted by
// Options.Workload ("default", "flash-crowd").
func WorkloadPresets() []string { return workload.Presets() }
