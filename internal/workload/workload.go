// Package workload synthesises the longitudinal blackholing activity the
// paper measures: the December 2014 – March 2017 timeline of blackholing
// events with its steady adoption growth (providers ×2, users ×4,
// prefixes ×6, §6), the spikes that correlate with headline DDoS attacks
// (NS1, the Turkish coup, the Rio Olympics, Krebs-on-Security, Liberia,
// and the elevated Mirai-era baseline), the ON/OFF probing practice that
// dominates event durations (§9), long-lived reputation blocks, and the
// occasional misconfiguration such as an academic network blackholing
// its entire routing table for two minutes.
package workload

import (
	"fmt"
	"math"
	"math/rand"
	"net/netip"
	"time"

	"bgpblackholing/internal/bgp"
	"bgpblackholing/internal/collector"
	"bgpblackholing/internal/topology"
)

// Phase is one ON segment of an intent's activity pattern followed by an
// OFF gap before the next segment (the gap after the last segment is
// meaningless).
type Phase struct {
	On  time.Duration
	Off time.Duration
}

// Intent is one planned blackholing action: a user blackholing one
// prefix at a set of providers, possibly repeatedly (ON/OFF probing).
type Intent struct {
	Day    int
	Start  time.Time
	User   bgp.ASN
	Prefix netip.Prefix
	// Providers and IXPs are the blackholing services used.
	Providers []bgp.ASN
	IXPs      []int
	// Bundled sends all trigger communities to every neighbor (§4.2).
	Bundled bool
	// NoExport attaches the RFC 7999-mandated NO_EXPORT community.
	NoExport bool
	// Pattern is the ON/OFF schedule.
	Pattern []Phase
	// Misconfigured marks intents carrying a wrong community value
	// (control-plane visible, data-plane dead, §10).
	Misconfigured bool
}

// Communities derives the bundled trigger community set for the intent.
func (in *Intent) Communities(topo *topology.Topology) []bgp.Community {
	var out []bgp.Community
	for _, p := range in.Providers {
		as := topo.AS(p)
		if as == nil || as.Blackholing == nil {
			continue
		}
		out = append(out, as.Blackholing.Communities[0])
	}
	for _, xid := range in.IXPs {
		if xid >= 0 && xid < len(topo.IXPs) && topo.IXPs[xid].Blackholing != nil {
			out = append(out, topo.IXPs[xid].Blackholing.Communities[0])
		}
	}
	if in.Misconfigured {
		// Wrong low value: a typo'd community nobody honours.
		for i, c := range out {
			out[i] = bgp.MakeCommunity(c.High(), c.Low()+13)
		}
	}
	return out
}

// Spike is a DDoS-driven surge in blackholing activity.
type Spike struct {
	Name string
	Day  int
	// Magnitude multiplies the daily event count.
	Magnitude float64
	// Days is the surge length.
	Days int
	// Misconfig marks the accidental full-table blackholing spike (A).
	Misconfig bool
}

// Timeline constants: the simulation begins 2014-12-01 (§6).
var TimelineStart = time.Date(2014, 12, 1, 0, 0, 0, 0, time.UTC)

// Day offsets of the annotated spikes of Figure 4(c).
const (
	dayMisconfigA = 504 // 2016-04-18: academic network blackholes its table
	dayNS1        = 532 // 2016-05-16: DNS provider amplification attack
	dayTurkeyCoup = 592 // 2016-07-15
	dayRio        = 630 // 2016-08-22
	dayKrebs      = 659 // 2016-09-20
	dayLiberia    = 700 // 2016-10-31
	dayMiraiEra   = 640 // elevated baseline from September 2016
)

// DefaultSpikes reproduces the annotated events of Fig 4.
func DefaultSpikes() []Spike {
	return []Spike{
		{Name: "accidental full-table blackholing", Day: dayMisconfigA, Magnitude: 4, Days: 1, Misconfig: true},
		{Name: "NS1 DNS amplification", Day: dayNS1, Magnitude: 3.5, Days: 2},
		{Name: "Turkish coup attempt", Day: dayTurkeyCoup, Magnitude: 3, Days: 2},
		{Name: "Rio Olympics 540Gbps", Day: dayRio, Magnitude: 3, Days: 3},
		{Name: "Krebs-on-Security record DDoS", Day: dayKrebs, Magnitude: 4, Days: 4},
		{Name: "Liberia infrastructure attack", Day: dayLiberia, Magnitude: 3.5, Days: 2},
	}
}

// Config parameterises the scenario.
type Config struct {
	Seed int64
	// Days is the timeline length (Dec 2014 – Mar 2017 ≈ 850 days).
	Days int
	// BaseEventsPerDay is the mean daily event count at day 0.
	BaseEventsPerDay float64
	// Growth is the factor by which daily prefix activity grows over the
	// timeline (6 in the paper).
	Growth float64
	// Spikes lists DDoS surges.
	Spikes []Spike
	// FracBundled is the fraction of intents announced to all neighbors
	// with bundled communities.
	FracBundled float64
	// FracNoExport is the fraction carrying NO_EXPORT.
	FracNoExport float64
	// FracMisconfig is the fraction with typo'd communities.
	FracMisconfig float64
	// MiraiBaseline multiplies activity from day MiraiEra onward.
	MiraiBaseline float64
	// ShortEpisodeBias, in [0,1], is the probability that an intent's
	// ON/OFF schedule is forced into the short probing shape regardless
	// of the Fig 8 mix — the flash-crowd preset's lever: DDoS waves of
	// many short-lived episodes that open and close events at a high
	// rate. 0 (the default) keeps the paper's duration mix.
	ShortEpisodeBias float64
}

// DefaultConfig returns the paper-scale timeline (scaled event volume:
// same shape, fewer absolute events for tractability).
func DefaultConfig() Config {
	return Config{
		Seed:             42,
		Days:             850,
		BaseEventsPerDay: 12,
		Growth:           4.5,
		Spikes:           DefaultSpikes(),
		FracBundled:      0.55,
		FracNoExport:     0.3,
		FracMisconfig:    0.03,
		MiraiBaseline:    1.3,
	}
}

// WaveSpikes builds the interleaved DDoS waves of the flash-crowd
// preset: a surge of the given magnitude every period days (starting
// at day period/2), each length days long, across the whole timeline.
func WaveSpikes(days, period, length int, magnitude float64) []Spike {
	var out []Spike
	for i, day := 0, period/2; day < days; i, day = i+1, day+period {
		out = append(out, Spike{
			Name:      fmt.Sprintf("flash-crowd wave %d", i+1),
			Day:       day,
			Magnitude: magnitude,
			Days:      length,
		})
	}
	return out
}

// FlashCrowdConfig is the "flash-crowd" preset: a short, dense
// timeline of interleaved DDoS waves (every 7 days, 2 days long, 6×
// magnitude) whose episodes are biased hard toward the short ON/OFF
// probing shape — many events opening and closing per wave, the
// workload that stresses the alerting hub's fan-out rather than the
// longitudinal store.
func FlashCrowdConfig() Config {
	days := 120
	return Config{
		Seed:             42,
		Days:             days,
		BaseEventsPerDay: 30,
		Growth:           1.5,
		Spikes:           WaveSpikes(days, 7, 2, 6),
		FracBundled:      0.55,
		FracNoExport:     0.3,
		FracMisconfig:    0.05,
		MiraiBaseline:    1,
		ShortEpisodeBias: 0.7,
	}
}

// Presets lists the named scenario presets.
func Presets() []string { return []string{"default", "flash-crowd"} }

// PresetConfig resolves a named preset ("" and "default" are the
// paper-scale timeline).
func PresetConfig(name string) (Config, error) {
	switch name {
	case "", "default":
		return DefaultConfig(), nil
	case "flash-crowd":
		return FlashCrowdConfig(), nil
	}
	return Config{}, fmt.Errorf("unknown workload preset %q (have %v)", name, Presets())
}

// Scaled multiplies daily event volume by f.
func (c Config) Scaled(f float64) Config {
	out := c
	out.BaseEventsPerDay *= f
	if out.BaseEventsPerDay < 1 {
		out.BaseEventsPerDay = 1
	}
	return out
}

// Scenario generates deterministic per-day intents over a topology.
type Scenario struct {
	Topo *topology.Topology
	Cfg  Config

	// users are ASes able to use blackholing (they have a provider
	// offering it or belong to a blackholing IXP), with their usable
	// services precomputed.
	users []userInfo
	// adoptionDay spreads service adoption across the timeline.
	providerAdoption map[bgp.ASN]int
	ixpAdoption      map[int]int
	userAdoption     map[bgp.ASN]int
}

type userInfo struct {
	asn       bgp.ASN
	providers []bgp.ASN // neighbors offering blackholing
	ixps      []int     // blackholing IXP memberships
	weight    int       // sampling weight (content users are most active)
}

// NewScenario prepares the scenario over a topology.
func NewScenario(topo *topology.Topology, cfg Config) *Scenario {
	s := &Scenario{
		Topo:             topo,
		Cfg:              cfg,
		providerAdoption: map[bgp.ASN]int{},
		ixpAdoption:      map[int]int{},
		userAdoption:     map[bgp.ASN]int{},
	}
	r := rand.New(rand.NewSource(cfg.Seed))

	// Provider adoption: roughly half the providers were active before
	// the timeline; the rest adopt over it (providers double, Fig 4a).
	provs := topo.BlackholingProviders()
	for i, p := range provs {
		if i%5 < 3 {
			s.providerAdoption[p.ASN] = 0
		} else {
			s.providerAdoption[p.ASN] = r.Intn(cfg.Days * 9 / 10)
		}
	}
	for i, x := range topo.BlackholingIXPs() {
		if i%2 == 0 {
			s.ixpAdoption[x.ID] = 0
		} else {
			s.ixpAdoption[x.ID] = r.Intn(cfg.Days * 9 / 10)
		}
	}

	// User pool: every AS with at least one blackholing-capable service.
	for _, asn := range topo.Order {
		as := topo.AS(asn)
		var ui userInfo
		ui.asn = asn
		for _, n := range topo.Neighbors(asn) {
			na := topo.AS(n)
			if na != nil && na.Blackholing != nil && n != asn {
				ui.providers = append(ui.providers, n)
			}
		}
		for _, xid := range as.IXPs {
			if topo.IXPs[xid].Blackholing != nil {
				ui.ixps = append(ui.ixps, xid)
			}
		}
		if len(ui.providers)+len(ui.ixps) == 0 {
			continue
		}
		// Content providers host attack targets: they originate 43% of
		// blackholed prefixes from only 18% of users (§8), so weight
		// them heavily.
		switch as.Kind() {
		case topology.KindContent:
			ui.weight = 6
		case topology.KindTransitAccess:
			ui.weight = 2
		default:
			ui.weight = 1
		}
		s.users = append(s.users, ui)
		// User adoption quadruples over the timeline (Fig 4b): a third
		// of the pool used blackholing from the start, the rest adopt
		// along the way.
		if r.Float64() < 0.35 {
			s.userAdoption[asn] = 0
		} else {
			s.userAdoption[asn] = r.Intn(cfg.Days)
		}
	}
	return s
}

// Users returns the number of potential blackholing users.
func (s *Scenario) Users() int { return len(s.users) }

// dailyRate computes the expected event count for a day, combining
// growth, the Mirai-era baseline and spikes.
func (s *Scenario) dailyRate(day int) float64 {
	frac := float64(day) / float64(s.Cfg.Days)
	rate := s.Cfg.BaseEventsPerDay * math.Pow(s.Cfg.Growth, frac)
	if day >= dayMiraiEra && s.Cfg.Days > dayMiraiEra {
		rate *= s.Cfg.MiraiBaseline
	}
	for _, sp := range s.Cfg.Spikes {
		if day >= sp.Day && day < sp.Day+sp.Days {
			rate *= sp.Magnitude
		}
	}
	return rate
}

// IntentsForDay deterministically generates the intents starting on one
// day of the timeline.
func (s *Scenario) IntentsForDay(day int) []Intent {
	r := rand.New(rand.NewSource(s.Cfg.Seed ^ int64(day)*2654435761))
	n := int(s.dailyRate(day))
	if n < 1 {
		n = 1
	}
	dayStart := TimelineStart.Add(time.Duration(day) * 24 * time.Hour)
	var out []Intent

	// The misconfiguration spike (A): a European academic network
	// blackholes its entire routing table for under two minutes.
	for _, sp := range s.Cfg.Spikes {
		if sp.Misconfig && day == sp.Day {
			out = append(out, s.misconfigFullTable(r, dayStart)...)
		}
	}

	for i := 0; i < n; i++ {
		ui := s.pickUser(r, day)
		if ui == nil {
			continue
		}
		in := s.buildIntent(r, day, dayStart, ui)
		out = append(out, in)
	}
	return out
}

// pickUser samples an adopted user by weight.
func (s *Scenario) pickUser(r *rand.Rand, day int) *userInfo {
	for attempt := 0; attempt < 20; attempt++ {
		total := 0
		for i := range s.users {
			total += s.users[i].weight
		}
		x := r.Intn(total)
		var ui *userInfo
		for i := range s.users {
			x -= s.users[i].weight
			if x < 0 {
				ui = &s.users[i]
				break
			}
		}
		if ui != nil && s.userAdoption[ui.asn] <= day {
			return ui
		}
	}
	return nil
}

func (s *Scenario) buildIntent(r *rand.Rand, day int, dayStart time.Time, ui *userInfo) Intent {
	in := Intent{
		Day:   day,
		User:  ui.asn,
		Start: dayStart.Add(time.Duration(r.Intn(86400)) * time.Second),
	}
	in.Prefix = s.victimPrefix(r, ui.asn)

	// Provider selection: 72% single, 28% multiple (Fig 7b), capped by
	// what the user can reach and has adopted.
	var provs []bgp.ASN
	for _, p := range ui.providers {
		if s.providerAdoption[p] <= day {
			provs = append(provs, p)
		}
	}
	var ixps []int
	for _, x := range ui.ixps {
		if s.ixpAdoption[x] <= day {
			ixps = append(ixps, x)
		}
	}
	nServices := len(provs) + len(ixps)
	want := 1
	if nServices > 1 && r.Float64() < 0.28 {
		// Multi-provider events (28%, Fig 7b); half of them blackhole at
		// every reachable service — the behaviour of a victim under a
		// serious volumetric attack, and the events whose data-plane
		// effect §10 measures.
		if r.Float64() < 0.3 {
			want = nServices
		} else {
			want = 2 + r.Intn(nServices-1)
		}
		if want > 15 {
			want = 15
		}
	}
	// IXP blackholing is free for members, so members reach for it
	// eagerly (IXPs serve 60% of users, §7).
	if want == 1 && len(ixps) > 0 && r.Float64() < 0.3 {
		in.IXPs = append(in.IXPs, ixps[r.Intn(len(ixps))])
		want = 0
	}
	// Pick the rest without replacement, deterministically.
	order := r.Perm(nServices)
	for _, idx := range order {
		if want == 0 {
			break
		}
		if idx < len(provs) {
			in.Providers = append(in.Providers, provs[idx])
		} else {
			xid := ixps[idx-len(provs)]
			dup := false
			for _, have := range in.IXPs {
				if have == xid {
					dup = true
				}
			}
			if dup {
				continue
			}
			in.IXPs = append(in.IXPs, xid)
		}
		want--
	}

	in.Bundled = r.Float64() < s.Cfg.FracBundled
	in.NoExport = r.Float64() < s.Cfg.FracNoExport
	in.Misconfigured = r.Float64() < s.Cfg.FracMisconfig
	in.Pattern = s.pattern(r)
	return in
}

// victimPrefix picks the blackholed prefix: 97% /32 host routes, a few
// /24s and intermediate lengths, and under 1% IPv6 (§5.1).
func (s *Scenario) victimPrefix(r *rand.Rand, user bgp.ASN) netip.Prefix {
	as := s.Topo.AS(user)
	var base netip.Prefix
	for _, p := range as.Prefixes {
		if p.Addr().Is4() {
			base = p
			break
		}
	}
	if r.Float64() < 0.008 {
		for _, p := range as.Prefixes {
			if p.Addr().Is6() {
				a := p.Addr().As16()
				a[15] = byte(1 + r.Intn(250))
				return netip.PrefixFrom(netip.AddrFrom16(a), 128)
			}
		}
	}
	if !base.IsValid() {
		return netip.Prefix{}
	}
	b := base.Addr().As4()
	host := netip.AddrFrom4([4]byte{b[0], b[1], byte(r.Intn(64)), byte(1 + r.Intn(250))})
	x := r.Float64()
	switch {
	case x < 0.97:
		return netip.PrefixFrom(host, 32)
	case x < 0.985:
		p, _ := host.Prefix(24)
		return p
	default:
		p, _ := host.Prefix(25 + r.Intn(7))
		return p
	}
}

// pattern draws the event's ON/OFF schedule: 70% short probing bursts,
// 20% medium events, 8% long-lived, 2% very long-lived (Fig 8).
func (s *Scenario) pattern(r *rand.Rand) []Phase {
	x := r.Float64()
	if s.Cfg.ShortEpisodeBias > 0 && r.Float64() < s.Cfg.ShortEpisodeBias {
		// Forced into the probing branch: flash-crowd waves are made of
		// short-lived episodes.
		x = 0
	}
	switch {
	case x < 0.62:
		// Probing: 1-10 repetitions of sub-minute ON, 1-4 minute OFF
		// (>70% of ungrouped events last a minute or less, Fig 8a).
		n := 1 + r.Intn(10)
		out := make([]Phase, n)
		for i := range out {
			out[i] = Phase{
				On:  time.Duration(15+r.Intn(40)) * time.Second,
				Off: time.Duration(60+r.Intn(180)) * time.Second,
			}
		}
		return out
	case x < 0.75:
		// Medium: 10 minutes to 16 hours.
		return []Phase{{On: time.Duration(10+r.Intn(950)) * time.Minute}}
	case x < 0.95:
		// Long-lived: 16 hours to 2 weeks (~30% of grouped periods
		// exceed 16 hours, Fig 8a).
		return []Phase{{On: time.Duration(16+r.Intn(320)) * time.Hour}}
	default:
		// Very long-lived: 1-3 months (reputation blocks, stale
		// misconfigurations).
		return []Phase{{On: time.Duration(30+r.Intn(60)) * 24 * time.Hour}}
	}
}

// misconfigFullTable emits the spike-(A) event: dozens of /32s across
// the academic network's space, all lasting under two minutes.
func (s *Scenario) misconfigFullTable(r *rand.Rand, dayStart time.Time) []Intent {
	// Pick a deterministic education/research user.
	var edu *userInfo
	for i := range s.users {
		if s.Topo.AS(s.users[i].asn).Kind() == topology.KindEducationResearchNfP {
			edu = &s.users[i]
			break
		}
	}
	if edu == nil && len(s.users) > 0 {
		edu = &s.users[0]
	}
	if edu == nil {
		return nil
	}
	start := dayStart.Add(10 * time.Hour)
	n := 40 + r.Intn(40)
	out := make([]Intent, 0, n)
	for i := 0; i < n; i++ {
		in := Intent{
			Day:     int(dayStart.Sub(TimelineStart).Hours() / 24),
			User:    edu.asn,
			Start:   start,
			Bundled: true,
			Pattern: []Phase{{On: time.Duration(90+r.Intn(25)) * time.Second}},
		}
		in.Prefix = s.victimPrefix(r, edu.asn)
		if len(edu.providers) > 0 {
			in.Providers = []bgp.ASN{edu.providers[0]}
		}
		in.IXPs = edu.ixps
		out = append(out, in)
	}
	return out
}

// Materialize turns intents into collector observations by running each
// ON phase as an announcement propagation and ending it with an explicit
// withdrawal (80%) or an implicit one (20%, re-announcement without
// communities). Observations are returned unsorted; feed them through
// package stream for time ordering.
func Materialize(d *collector.Deployment, topo *topology.Topology, intents []Intent, seed int64) ([]collector.Observation, []*collector.Result) {
	// Pre-size for the common shape: a few ON phases per intent, each
	// producing an announcement plus a matching withdrawal batch. The
	// estimate only seeds capacity; append grows past it as needed.
	nPhases := 0
	for i := range intents {
		nPhases += len(intents[i].Pattern)
	}
	obs := make([]collector.Observation, 0, 16*nPhases)
	results := make([]*collector.Result, 0, nPhases)
	for idx, in := range intents {
		if !in.Prefix.IsValid() {
			continue
		}
		r := rand.New(rand.NewSource(seed ^ int64(idx)*0x5851F42D4C957F2D))
		comms := in.Communities(topo)
		t := in.Start
		for _, ph := range in.Pattern {
			ann := collector.Announcement{
				Time:            t,
				User:            in.User,
				Prefix:          in.Prefix,
				Communities:     comms,
				NoExport:        in.NoExport,
				TargetProviders: in.Providers,
				TargetIXPs:      in.IXPs,
				Bundled:         in.Bundled,
			}
			res := d.Propagate(ann)
			results = append(results, res)
			obs = append(obs, res.Observations...)
			endT := t.Add(ph.On)
			if r.Float64() < 0.8 {
				obs = append(obs, d.Withdraw(res, endT)...)
			} else {
				obs = append(obs, d.ReannounceWithout(res, endT)...)
			}
			t = endT.Add(ph.Off)
		}
	}
	return obs, results
}
