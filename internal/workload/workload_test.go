package workload

import (
	"testing"
	"time"

	"bgpblackholing/internal/collector"
	"bgpblackholing/internal/topology"
)

func scenarioWorld(t testing.TB) (*topology.Topology, *Scenario) {
	t.Helper()
	topo, err := topology.Generate(topology.DefaultConfig().Scaled(0.15))
	if err != nil {
		t.Fatal(err)
	}
	return topo, NewScenario(topo, DefaultConfig())
}

func TestScenarioHasUsers(t *testing.T) {
	_, s := scenarioWorld(t)
	if s.Users() == 0 {
		t.Fatal("no potential users")
	}
}

func TestIntentsDeterministic(t *testing.T) {
	_, s := scenarioWorld(t)
	a := s.IntentsForDay(100)
	b := s.IntentsForDay(100)
	if len(a) != len(b) {
		t.Fatal("intent counts differ")
	}
	for i := range a {
		if a[i].User != b[i].User || a[i].Prefix != b[i].Prefix || a[i].Start != b[i].Start {
			t.Fatalf("intent %d differs", i)
		}
	}
}

func TestGrowthOverTimeline(t *testing.T) {
	_, s := scenarioWorld(t)
	early := s.dailyRate(10)
	late := s.dailyRate(s.Cfg.Days - 10)
	if late < early*4 {
		t.Fatalf("late rate %.1f not clearly above early %.1f", late, early)
	}
}

func TestSpikesRaiseRate(t *testing.T) {
	_, s := scenarioWorld(t)
	base := s.dailyRate(dayKrebs - 5)
	spike := s.dailyRate(dayKrebs)
	if spike < base*2 {
		t.Fatalf("Krebs spike %.1f vs base %.1f", spike, base)
	}
}

func TestIntentShape(t *testing.T) {
	topo, s := scenarioWorld(t)
	n32, n24, nV6, nOther, total := 0, 0, 0, 0, 0
	multi := 0
	for day := 700; day < 720; day++ {
		for _, in := range s.IntentsForDay(day) {
			if !in.Prefix.IsValid() {
				continue
			}
			total++
			switch {
			case in.Prefix.Addr().Is6():
				nV6++
			case in.Prefix.Bits() == 32:
				n32++
			case in.Prefix.Bits() == 24:
				n24++
			default:
				nOther++
			}
			if len(in.Providers)+len(in.IXPs) == 0 {
				t.Fatal("intent without services")
			}
			if len(in.Providers)+len(in.IXPs) > 1 {
				multi++
			}
			if len(in.Pattern) == 0 {
				t.Fatal("intent without pattern")
			}
			// The victim prefix must belong to the user.
			if in.Prefix.Addr().Is4() {
				if got := topo.OriginOf(in.Prefix); got != in.User {
					t.Fatalf("prefix %v origin %d != user %d", in.Prefix, got, in.User)
				}
			}
		}
	}
	if total < 100 {
		t.Fatalf("only %d intents in 20 late days", total)
	}
	if frac := float64(n32) / float64(total); frac < 0.9 {
		t.Fatalf("/32 fraction = %.2f, want ~0.97", frac)
	}
	if multi == 0 {
		t.Fatal("no multi-provider events")
	}
}

func TestMisconfigSpikeDay(t *testing.T) {
	_, s := scenarioWorld(t)
	intents := s.IntentsForDay(dayMisconfigA)
	short := 0
	for _, in := range intents {
		if len(in.Pattern) == 1 && in.Pattern[0].On < 2*time.Minute {
			short++
		}
	}
	if short < 30 {
		t.Fatalf("misconfig day has only %d sub-2-minute intents", short)
	}
}

func TestCommunitiesDerivation(t *testing.T) {
	topo, s := scenarioWorld(t)
	for _, in := range s.IntentsForDay(500) {
		comms := in.Communities(topo)
		if in.Misconfigured {
			continue
		}
		if len(comms) != len(in.Providers)+len(in.IXPs) {
			t.Fatalf("communities %d for %d services", len(comms), len(in.Providers)+len(in.IXPs))
		}
		for i, p := range in.Providers {
			if comms[i] != topo.AS(p).Blackholing.Communities[0] {
				t.Fatal("community mismatch")
			}
		}
	}
}

func TestMaterializeProducesObservationsAndWithdrawals(t *testing.T) {
	topo, s := scenarioWorld(t)
	d := collector.Deploy(topo, collector.DefaultConfig().Scaled(0.15))
	intents := s.IntentsForDay(800)
	obs, results := Materialize(d, topo, intents, 1)
	if len(obs) == 0 {
		t.Fatal("no observations")
	}
	if len(results) == 0 {
		t.Fatal("no propagation results")
	}
	nAnn, nEnd := 0, 0
	for _, o := range obs {
		if o.Update.IsAnnouncement() && len(o.Update.Communities) > 0 {
			nAnn++
		}
		if o.Update.IsWithdrawal() || (o.Update.IsAnnouncement() && len(o.Update.Communities) == 0) {
			nEnd++
		}
	}
	if nAnn == 0 || nEnd == 0 {
		t.Fatalf("announcements=%d endings=%d", nAnn, nEnd)
	}
}

func TestMaterializeDeterministic(t *testing.T) {
	topo, s := scenarioWorld(t)
	d := collector.Deploy(topo, collector.DefaultConfig().Scaled(0.15))
	intents := s.IntentsForDay(800)
	a, _ := Materialize(d, topo, intents, 1)
	b, _ := Materialize(d, topo, intents, 1)
	if len(a) != len(b) {
		t.Fatalf("observation counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if !a[i].Update.Time.Equal(b[i].Update.Time) || a[i].Update.PeerAS != b[i].Update.PeerAS {
			t.Fatalf("observation %d differs", i)
		}
	}
}

func TestAdoptionLimitsEarlyDays(t *testing.T) {
	_, s := scenarioWorld(t)
	// Count distinct providers used in a week early vs late.
	used := func(fromDay int) map[string]bool {
		out := map[string]bool{}
		for d := fromDay; d < fromDay+7; d++ {
			for _, in := range s.IntentsForDay(d) {
				for _, p := range in.Providers {
					out["AS"+p.String()] = true
				}
				for _, x := range in.IXPs {
					out["ixp"+string(rune('0'+x%10))+string(rune('0'+x/10))] = true
				}
			}
		}
		return out
	}
	early := used(5)
	late := used(s.Cfg.Days - 12)
	if len(late) <= len(early) {
		t.Fatalf("provider usage early=%d late=%d, want growth", len(early), len(late))
	}
}

func TestPresetConfigNames(t *testing.T) {
	for _, name := range Presets() {
		if _, err := PresetConfig(name); err != nil {
			t.Errorf("PresetConfig(%q): %v", name, err)
		}
	}
	if _, err := PresetConfig(""); err != nil {
		t.Errorf("empty preset should mean default: %v", err)
	}
	if _, err := PresetConfig("no-such-preset"); err == nil {
		t.Error("unknown preset accepted")
	}
}

func TestFlashCrowdDeterministic(t *testing.T) {
	topo, err := topology.Generate(topology.DefaultConfig().Scaled(0.15))
	if err != nil {
		t.Fatal(err)
	}
	cfg, err := PresetConfig("flash-crowd")
	if err != nil {
		t.Fatal(err)
	}
	s1 := NewScenario(topo, cfg)
	s2 := NewScenario(topo, cfg)
	for _, day := range []int{3, 40, 80} {
		a, b := s1.IntentsForDay(day), s2.IntentsForDay(day)
		if len(a) != len(b) {
			t.Fatalf("day %d: intent counts differ (%d vs %d)", day, len(a), len(b))
		}
		for i := range a {
			if a[i].User != b[i].User || a[i].Prefix != b[i].Prefix || !a[i].Start.Equal(b[i].Start) {
				t.Fatalf("day %d intent %d differs", day, i)
			}
		}
	}
}

func TestFlashCrowdWavesRaiseRate(t *testing.T) {
	topo, err := topology.Generate(topology.DefaultConfig().Scaled(0.15))
	if err != nil {
		t.Fatal(err)
	}
	cfg, _ := PresetConfig("flash-crowd")
	if len(cfg.Spikes) == 0 {
		t.Fatal("flash-crowd preset has no wave spikes")
	}
	s := NewScenario(topo, cfg)
	wave := cfg.Spikes[len(cfg.Spikes)/2]
	on := s.dailyRate(wave.Day)
	off := s.dailyRate(wave.Day + wave.Days + 1)
	if on < off*3 {
		t.Fatalf("wave day rate %.1f not clearly above trough %.1f", on, off)
	}
}

func TestFlashCrowdShortEpisodeDominance(t *testing.T) {
	topo, err := topology.Generate(topology.DefaultConfig().Scaled(0.15))
	if err != nil {
		t.Fatal(err)
	}
	shortFrac := func(cfg Config) float64 {
		s := NewScenario(topo, cfg)
		short, total := 0, 0
		for day := 20; day < 60 && total < 400; day++ {
			if day >= cfg.Days {
				break
			}
			for _, in := range s.IntentsForDay(day) {
				if in.Misconfigured || len(in.Pattern) == 0 {
					continue
				}
				total++
				probing := true
				for _, ph := range in.Pattern {
					if ph.On >= time.Minute {
						probing = false
						break
					}
				}
				if probing {
					short++
				}
			}
		}
		if total < 100 {
			t.Fatalf("only %d intents sampled", total)
		}
		return float64(short) / float64(total)
	}

	fc, _ := PresetConfig("flash-crowd")
	fcFrac := shortFrac(fc)
	// Bias 0.7 lifts the probing share from ~0.62 to ~0.89.
	if fcFrac < 0.78 {
		t.Fatalf("flash-crowd short-episode fraction %.2f, want >= 0.78", fcFrac)
	}

	def := DefaultConfig()
	def.Days = 120 // same sampled window
	defFrac := shortFrac(def)
	if defFrac >= fcFrac {
		t.Fatalf("default short fraction %.2f not below flash-crowd %.2f", defFrac, fcFrac)
	}
}
