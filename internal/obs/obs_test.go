package obs

import (
	"math"
	"strings"
	"sync"
	"testing"
)

func TestCounterGauge(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_total", "a counter")
	c.Inc()
	c.Add(4)
	if got := c.Value(); got != 5 {
		t.Fatalf("counter = %d, want 5", got)
	}
	// Idempotent registration returns the same underlying counter.
	if again := r.Counter("test_total", "a counter"); again.Value() != 5 {
		t.Fatalf("re-registered counter lost state: %d", again.Value())
	}

	g := r.Gauge("test_gauge", "a gauge")
	g.Set(2.5)
	g.Add(-1)
	g.Inc()
	g.Dec()
	if got := g.Value(); got != 1.5 {
		t.Fatalf("gauge = %v, want 1.5", got)
	}
}

func TestHistogramInvariants(t *testing.T) {
	r := NewRegistry()
	h := r.Histogram("test_seconds", "a histogram", []float64{0.1, 1, 10})
	for _, v := range []float64{0.05, 0.5, 5, 50} {
		h.Observe(v)
	}
	if h.Count() != 4 {
		t.Fatalf("count = %d, want 4", h.Count())
	}
	if got, want := h.Sum(), 55.55; math.Abs(got-want) > 1e-9 {
		t.Fatalf("sum = %v, want %v", got, want)
	}
	var b strings.Builder
	if err := r.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	// Buckets must be cumulative and +Inf must equal the count.
	for _, line := range []string{
		`test_seconds_bucket{le="0.1"} 1`,
		`test_seconds_bucket{le="1"} 2`,
		`test_seconds_bucket{le="10"} 3`,
		`test_seconds_bucket{le="+Inf"} 4`,
		`test_seconds_count 4`,
	} {
		if !strings.Contains(out, line+"\n") {
			t.Errorf("exposition missing %q:\n%s", line, out)
		}
	}
}

func TestVecChildrenAndEscaping(t *testing.T) {
	r := NewRegistry()
	v := r.CounterVec("req_total", "requests", "route", "class")
	v.With("/events", "2xx").Add(3)
	v.With("/events", "2xx").Inc() // same child
	v.With(`we"ird\nl`+"\n", "5xx").Inc()

	var b strings.Builder
	if err := r.Render(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, `req_total{route="/events",class="2xx"} 4`) {
		t.Errorf("labeled child not merged:\n%s", out)
	}
	if !strings.Contains(out, `req_total{route="we\"ird\\nl\n",class="5xx"} 1`) {
		t.Errorf("label escaping wrong:\n%s", out)
	}

	hv := r.HistogramVec("lat_seconds", "latency", []float64{1}, "route")
	hv.With("/a").Observe(0.5)
	hv.With("/a").Observe(2)
	if hv.With("/a").Count() != 2 {
		t.Fatalf("histogram child count = %d", hv.With("/a").Count())
	}
}

func TestFuncMetrics(t *testing.T) {
	r := NewRegistry()
	n := uint64(7)
	r.CounterFunc("snap_total", "snapshot counter", func() uint64 { return n })
	r.GaugeFunc("snap_gauge", "snapshot gauge", func() float64 { return 1.25 })
	r.GaugeFuncLabeled("snap_labeled", "labeled", []string{"src"}, []string{"a"}, func() float64 { return 9 })

	var b strings.Builder
	r.Render(&b)
	for _, line := range []string{"snap_total 7", "snap_gauge 1.25", `snap_labeled{src="a"} 9`} {
		if !strings.Contains(b.String(), line+"\n") {
			t.Errorf("missing %q in:\n%s", line, b.String())
		}
	}

	// Re-registering a func metric replaces the source, not errors.
	n = 9
	r.CounterFunc("snap_total", "snapshot counter", func() uint64 { return 100 })
	b.Reset()
	r.Render(&b)
	if !strings.Contains(b.String(), "snap_total 100\n") {
		t.Errorf("func re-register did not replace:\n%s", b.String())
	}
}

func TestKindMismatchPanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dual", "x")
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on kind mismatch")
		}
	}()
	r.Gauge("dual", "x")
}

func TestExpositionShape(t *testing.T) {
	r := NewRegistry()
	r.Counter("a_total", "help with\nnewline").Inc()
	r.Gauge("b", "gauge").Set(3)
	r.Histogram("c_seconds", "hist", nil).Observe(0.001)

	var b strings.Builder
	if err := r.Render(&b); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(b.String(), "\n"), "\n")
	for _, ln := range lines {
		switch {
		case strings.HasPrefix(ln, "# HELP "), strings.HasPrefix(ln, "# TYPE "):
		default:
			// Every sample line is "name{labels} value" with a parseable value.
			fields := strings.Fields(ln)
			if len(fields) != 2 {
				t.Errorf("malformed sample line %q", ln)
			}
		}
	}
	if !strings.Contains(b.String(), `# HELP a_total help with\nnewline`) {
		t.Errorf("help not escaped:\n%s", b.String())
	}
	if !strings.Contains(b.String(), "# TYPE c_seconds histogram") {
		t.Errorf("missing TYPE line:\n%s", b.String())
	}
}

// TestRegistryRace hammers registration, observation, and rendering
// concurrently; meaningful under -race.
func TestRegistryRace(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("race_total", "x")
	h := r.Histogram("race_seconds", "x", nil)
	v := r.CounterVec("race_vec_total", "x", "i")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			for j := 0; j < 500; j++ {
				c.Inc()
				h.Observe(float64(j) * 1e-6)
				v.With(string(rune('a' + i%4))).Inc()
				if j%100 == 0 {
					var b strings.Builder
					r.Render(&b)
				}
			}
		}(i)
	}
	wg.Wait()
	if c.Value() != 8*500 {
		t.Fatalf("race counter = %d, want %d", c.Value(), 8*500)
	}
	if h.Count() != 8*500 {
		t.Fatalf("race histogram count = %d", h.Count())
	}
}

func BenchmarkCounterInc(b *testing.B) {
	c := NewRegistry().Counter("bench_total", "x")
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		c.Inc()
	}
}

func BenchmarkHistogramObserve(b *testing.B) {
	h := NewRegistry().Histogram("bench_seconds", "x", nil)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		h.Observe(1e-5)
	}
}
