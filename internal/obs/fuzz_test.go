package obs

import (
	"strings"
	"testing"
)

// FuzzRenderLabels feeds arbitrary label values through registration
// and rendering: no panics, and every rendered sample line must stay
// one-line (escaping must swallow newlines) and well-formed.
func FuzzRenderLabels(f *testing.F) {
	f.Add("plain", "/events")
	f.Add(`back\slash`, `quo"te`)
	f.Add("new\nline", "")
	f.Add("utf8 ☂", "∞")
	f.Fuzz(func(t *testing.T, a, b string) {
		r := NewRegistry()
		v := r.CounterVec("fuzz_total", "fuzz", "a", "b")
		v.With(a, b).Inc()
		hv := r.HistogramVec("fuzz_seconds", "fuzz", []float64{1}, "a")
		hv.With(a).Observe(0.5)

		var out strings.Builder
		if err := r.Render(&out); err != nil {
			t.Fatalf("render: %v", err)
		}
		for _, ln := range strings.Split(strings.TrimRight(out.String(), "\n"), "\n") {
			if strings.HasPrefix(ln, "#") {
				continue
			}
			if len(strings.Fields(ln)) < 2 {
				t.Fatalf("malformed sample line %q", ln)
			}
		}
		// Same labels resolve to the same child.
		v.With(a, b).Inc()
		if got := v.With(a, b).Value(); got != 2 {
			t.Fatalf("child not stable across With calls: %d", got)
		}
	})
}
