// Package obs is the repo's dependency-free telemetry kernel: a
// concurrent metrics registry (atomic counters, gauges and fixed-bucket
// histograms) rendered in the Prometheus text exposition format
// (version 0.0.4), the shape every scraper understands.
//
// Design constraints, in order:
//
//   - The hot path is allocation-free and lock-free: Counter.Add,
//     Gauge.Set and Histogram.Observe are a handful of atomic
//     operations on pre-registered series — no maps, no pools, no
//     interface dispatch. Label resolution (Vec.With) does take a
//     lock, so hot callers resolve their series once and keep the
//     handle.
//   - Scrapes never stop the world: Render walks the registry under
//     short per-family locks and reads the atomics; writers are never
//     blocked for the duration of a scrape.
//   - Zero dependencies beyond the standard library, so every internal
//     package (store, alert, core) can be instrumented without pulling
//     a client library into the module.
//
// Snapshot-style sources — subsystems that already keep their own
// atomic counters (the detector's Metrics, the alert hub's Stats) —
// plug in through CounterFunc / GaugeFunc, which read the value at
// scrape time instead of double-counting into a second atomic.
package obs

import (
	"fmt"
	"io"
	"math"
	"net/http"
	"slices"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Kind is a metric family's exposition type.
type Kind int

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "histogram"
	}
	return "untyped"
}

// ---------------------------------------------------------------------
// Primitive metrics. All methods are safe for concurrent use and
// allocation-free.

// Counter is a monotonically increasing value.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value returns the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a value that can go up and down, stored as float64 bits.
type Gauge struct{ bits atomic.Uint64 }

// Set replaces the gauge's value.
func (g *Gauge) Set(v float64) { g.bits.Store(math.Float64bits(v)) }

// Add adjusts the gauge by delta (negative to decrease).
func (g *Gauge) Add(delta float64) {
	for {
		old := g.bits.Load()
		next := math.Float64bits(math.Float64frombits(old) + delta)
		if g.bits.CompareAndSwap(old, next) {
			return
		}
	}
}

// Inc and Dec adjust by ±1.
func (g *Gauge) Inc() { g.Add(1) }
func (g *Gauge) Dec() { g.Add(-1) }

// Value returns the current value.
func (g *Gauge) Value() float64 { return math.Float64frombits(g.bits.Load()) }

// Histogram is a fixed-bucket distribution: per-bucket atomic
// counters, an atomic float sum and a total count. Buckets are chosen
// at registration and never reallocated, so Observe is a short linear
// scan plus three atomic adds — no locks, no pools, no allocation.
type Histogram struct {
	bounds  []float64 // ascending upper bounds; +Inf is implicit
	buckets []atomic.Uint64
	count   atomic.Uint64
	sum     atomic.Uint64 // float64 bits
}

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	i := 0
	for i < len(h.bounds) && v > h.bounds[i] {
		i++
	}
	h.buckets[i].Add(1)
	h.count.Add(1)
	for {
		old := h.sum.Load()
		next := math.Float64bits(math.Float64frombits(old) + v)
		if h.sum.CompareAndSwap(old, next) {
			return
		}
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.count.Load() }

// Sum returns the sum of all observed values.
func (h *Histogram) Sum() float64 { return math.Float64frombits(h.sum.Load()) }

// DefBuckets spans microseconds to seconds — the latency range of the
// instrumented paths, from a trie lookup to a compaction run.
var DefBuckets = []float64{
	5e-6, 1e-5, 2.5e-5, 5e-5, 1e-4, 2.5e-4, 5e-4,
	1e-3, 2.5e-3, 5e-3, 1e-2, 2.5e-2, 5e-2, 0.1, 0.25, 0.5, 1, 2.5,
}

// ExponentialBuckets returns count bounds starting at start, each
// factor times the previous.
func ExponentialBuckets(start, factor float64, count int) []float64 {
	b := make([]float64, count)
	for i := range b {
		b[i] = start
		start *= factor
	}
	return b
}

// LinearBuckets returns count bounds starting at start, stepping by
// width.
func LinearBuckets(start, width float64, count int) []float64 {
	b := make([]float64, count)
	for i := range b {
		b[i] = start
		start += width
	}
	return b
}

// ---------------------------------------------------------------------
// Series and families.

// series is one labeled instance inside a family: exactly one of the
// value fields is set, matching the family's kind (fn covers both
// CounterFunc and GaugeFunc sources).
type series struct {
	labels string // rendered label suffix, `{a="b"}` or ""
	c      *Counter
	g      *Gauge
	h      *Histogram
	fn     func() float64
}

type family struct {
	name, help string
	kind       Kind
	labelNames []string

	mu     sync.Mutex
	series map[string]*series
	order  []string
}

// get returns the series for the rendered label key, creating it with
// make when absent. A func-backed series is replaced on re-register so
// re-observing a restarted subsystem is not an error.
func (f *family) get(key string, make func() *series) *series {
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		return s
	}
	s := make()
	f.series[key] = s
	f.order = append(f.order, key)
	return s
}

func (f *family) setFunc(key string, fn func() float64) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if s, ok := f.series[key]; ok {
		s.fn = fn
		return
	}
	f.series[key] = &series{labels: key, fn: fn}
	f.order = append(f.order, key)
}

// snapshot copies the series list so rendering can proceed without the
// family lock.
func (f *family) snapshot() []*series {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make([]*series, 0, len(f.order))
	for _, k := range f.order {
		out = append(out, f.series[k])
	}
	return out
}

// ---------------------------------------------------------------------
// Vecs: labeled families. With resolves (and caches) one child; hot
// paths call With once and keep the returned handle.

// CounterVec is a counter family with variable labels.
type CounterVec struct{ f *family }

// With returns the child counter for the label values (one per
// registered label name, in order).
func (v *CounterVec) With(values ...string) *Counter {
	key := renderLabels(v.f.labelNames, values)
	return v.f.get(key, func() *series { return &series{labels: key, c: &Counter{}} }).c
}

// GaugeVec is a gauge family with variable labels.
type GaugeVec struct{ f *family }

// With returns the child gauge for the label values.
func (v *GaugeVec) With(values ...string) *Gauge {
	key := renderLabels(v.f.labelNames, values)
	return v.f.get(key, func() *series { return &series{labels: key, g: &Gauge{}} }).g
}

// HistogramVec is a histogram family with variable labels.
type HistogramVec struct {
	f      *family
	bounds []float64
}

// With returns the child histogram for the label values.
func (v *HistogramVec) With(values ...string) *Histogram {
	key := renderLabels(v.f.labelNames, values)
	return v.f.get(key, func() *series {
		return &series{labels: key, h: newHistogram(v.bounds)}
	}).h
}

func newHistogram(bounds []float64) *Histogram {
	bounds = slices.Clone(bounds)
	sort.Float64s(bounds)
	return &Histogram{bounds: bounds, buckets: make([]atomic.Uint64, len(bounds)+1)}
}

// renderLabels builds the exposition label suffix `{a="x",b="y"}`.
// Values are escaped per the text format (backslash, quote, newline).
func renderLabels(names, values []string) string {
	if len(names) == 0 {
		return ""
	}
	if len(values) != len(names) {
		panic(fmt.Sprintf("obs: %d label values for %d label names", len(values), len(names)))
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, n := range names {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(n)
		b.WriteString(`="`)
		b.WriteString(escapeLabelValue(values[i]))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabelValue(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	var b strings.Builder
	for _, r := range v {
		switch r {
		case '\\':
			b.WriteString(`\\`)
		case '"':
			b.WriteString(`\"`)
		case '\n':
			b.WriteString(`\n`)
		default:
			b.WriteRune(r)
		}
	}
	return b.String()
}

// ---------------------------------------------------------------------
// Registry.

// Registry holds metric families and renders them for scraping. The
// zero value is not usable; call NewRegistry.
type Registry struct {
	mu    sync.Mutex
	fams  map[string]*family
	order []string
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{fams: map[string]*family{}}
}

// register returns the family for name, creating it on first use.
// Registration is idempotent — asking again with the same name returns
// the existing family — but re-registering under a different kind or
// label set is a programming error and panics.
func (r *Registry) register(name, help string, kind Kind, labelNames []string) *family {
	r.mu.Lock()
	defer r.mu.Unlock()
	if f, ok := r.fams[name]; ok {
		if f.kind != kind || !slices.Equal(f.labelNames, labelNames) {
			panic(fmt.Sprintf("obs: %s re-registered as %v%v (was %v%v)", name, kind, labelNames, f.kind, f.labelNames))
		}
		return f
	}
	f := &family{name: name, help: help, kind: kind, labelNames: slices.Clone(labelNames), series: map[string]*series{}}
	r.fams[name] = f
	r.order = append(r.order, name)
	return f
}

// Counter registers (or returns) an unlabeled counter.
func (r *Registry) Counter(name, help string) *Counter {
	f := r.register(name, help, KindCounter, nil)
	return f.get("", func() *series { return &series{c: &Counter{}} }).c
}

// CounterVec registers a labeled counter family.
func (r *Registry) CounterVec(name, help string, labelNames ...string) *CounterVec {
	return &CounterVec{f: r.register(name, help, KindCounter, labelNames)}
}

// CounterFunc registers a counter whose value is read from fn at
// scrape time — the bridge for subsystems that already keep their own
// atomic counters. Re-registering the same name replaces fn.
func (r *Registry) CounterFunc(name, help string, fn func() uint64) {
	f := r.register(name, help, KindCounter, nil)
	f.setFunc("", func() float64 { return float64(fn()) })
}

// CounterFuncLabeled registers one labeled scrape-time counter series.
func (r *Registry) CounterFuncLabeled(name, help string, labelNames, labelValues []string, fn func() uint64) {
	f := r.register(name, help, KindCounter, labelNames)
	f.setFunc(renderLabels(labelNames, labelValues), func() float64 { return float64(fn()) })
}

// Gauge registers (or returns) an unlabeled gauge.
func (r *Registry) Gauge(name, help string) *Gauge {
	f := r.register(name, help, KindGauge, nil)
	return f.get("", func() *series { return &series{g: &Gauge{}} }).g
}

// GaugeVec registers a labeled gauge family.
func (r *Registry) GaugeVec(name, help string, labelNames ...string) *GaugeVec {
	return &GaugeVec{f: r.register(name, help, KindGauge, labelNames)}
}

// GaugeFunc registers a gauge computed at scrape time. Re-registering
// the same name replaces fn.
func (r *Registry) GaugeFunc(name, help string, fn func() float64) {
	f := r.register(name, help, KindGauge, nil)
	f.setFunc("", fn)
}

// GaugeFuncLabeled registers one labeled scrape-time gauge series.
func (r *Registry) GaugeFuncLabeled(name, help string, labelNames, labelValues []string, fn func() float64) {
	f := r.register(name, help, KindGauge, labelNames)
	f.setFunc(renderLabels(labelNames, labelValues), fn)
}

// Histogram registers (or returns) an unlabeled histogram with the
// given bucket upper bounds (+Inf is implicit; nil means DefBuckets).
func (r *Registry) Histogram(name, help string, bounds []float64) *Histogram {
	if bounds == nil {
		bounds = DefBuckets
	}
	f := r.register(name, help, KindHistogram, nil)
	return f.get("", func() *series { return &series{h: newHistogram(bounds)} }).h
}

// HistogramVec registers a labeled histogram family.
func (r *Registry) HistogramVec(name, help string, bounds []float64, labelNames ...string) *HistogramVec {
	if bounds == nil {
		bounds = DefBuckets
	}
	return &HistogramVec{f: r.register(name, help, KindHistogram, labelNames), bounds: bounds}
}

// ---------------------------------------------------------------------
// Exposition.

// ContentType is the scrape response content type for the rendered
// text format.
const ContentType = "text/plain; version=0.0.4; charset=utf-8"

// Render writes every family in registration order in the Prometheus
// text exposition format. It never blocks metric writers beyond the
// brief per-family snapshot.
func (r *Registry) Render(w io.Writer) error {
	r.mu.Lock()
	fams := make([]*family, 0, len(r.order))
	for _, n := range r.order {
		fams = append(fams, r.fams[n])
	}
	r.mu.Unlock()

	var b strings.Builder
	for _, f := range fams {
		series := f.snapshot()
		if len(series) == 0 {
			continue
		}
		b.Reset()
		b.WriteString("# HELP ")
		b.WriteString(f.name)
		b.WriteByte(' ')
		b.WriteString(escapeHelp(f.help))
		b.WriteString("\n# TYPE ")
		b.WriteString(f.name)
		b.WriteByte(' ')
		b.WriteString(f.kind.String())
		b.WriteByte('\n')
		for _, s := range series {
			renderSeries(&b, f, s)
		}
		if _, err := io.WriteString(w, b.String()); err != nil {
			return err
		}
	}
	return nil
}

func renderSeries(b *strings.Builder, f *family, s *series) {
	switch {
	case s.h != nil:
		// Cumulative buckets, then sum and count — the histogram
		// invariants scrapers rely on.
		var cum uint64
		for i, bound := range s.h.bounds {
			cum += s.h.buckets[i].Load()
			writeSample(b, f.name+"_bucket", mergeLabels(s.labels, "le", formatFloat(bound)), float64(cum))
		}
		count := s.h.count.Load()
		writeSample(b, f.name+"_bucket", mergeLabels(s.labels, "le", "+Inf"), float64(count))
		writeSample(b, f.name+"_sum", s.labels, s.h.Sum())
		writeSample(b, f.name+"_count", s.labels, float64(count))
	case s.fn != nil:
		writeSample(b, f.name, s.labels, s.fn())
	case s.c != nil:
		writeSample(b, f.name, s.labels, float64(s.c.Value()))
	case s.g != nil:
		writeSample(b, f.name, s.labels, s.g.Value())
	}
}

func writeSample(b *strings.Builder, name, labels string, v float64) {
	b.WriteString(name)
	b.WriteString(labels)
	b.WriteByte(' ')
	b.WriteString(formatFloat(v))
	b.WriteByte('\n')
}

// mergeLabels splices one extra label pair into a rendered label set.
func mergeLabels(labels, name, value string) string {
	extra := name + `="` + escapeLabelValue(value) + `"`
	if labels == "" {
		return "{" + extra + "}"
	}
	return labels[:len(labels)-1] + "," + extra + "}"
}

func formatFloat(v float64) string {
	if math.IsInf(v, 1) {
		return "+Inf"
	}
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return strconv.FormatFloat(v, 'f', -1, 64)
	}
	return strconv.FormatFloat(v, 'g', -1, 64)
}

func escapeHelp(h string) string {
	h = strings.ReplaceAll(h, `\`, `\\`)
	return strings.ReplaceAll(h, "\n", `\n`)
}

// Handler returns an http.Handler serving the rendered registry — the
// GET /metrics endpoint.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", ContentType)
		r.Render(w)
	})
}
