package topology

import (
	"net/netip"
	"testing"

	"bgpblackholing/internal/bgp"
)

// smallWorld returns a scaled-down deterministic topology for tests.
func smallWorld(t testing.TB) *Topology {
	t.Helper()
	cfg := DefaultConfig().Scaled(0.15)
	topo, err := Generate(cfg)
	if err != nil {
		t.Fatalf("Generate: %v", err)
	}
	return topo
}

func TestGenerateValidates(t *testing.T) {
	topo := smallWorld(t)
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	if len(topo.Order) == 0 || len(topo.IXPs) == 0 {
		t.Fatal("empty world")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	cfg := DefaultConfig().Scaled(0.1)
	a, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(a.Order) != len(b.Order) {
		t.Fatalf("AS counts differ: %d vs %d", len(a.Order), len(b.Order))
	}
	for i := range a.Order {
		if a.Order[i] != b.Order[i] {
			t.Fatalf("order diverges at %d: %d vs %d", i, a.Order[i], b.Order[i])
		}
	}
	for _, asn := range a.Order {
		x, y := a.ASes[asn], b.ASes[asn]
		if x.Country != y.Country || x.Kind() != y.Kind() || len(x.Providers) != len(y.Providers) {
			t.Fatalf("AS %d differs between runs", asn)
		}
	}
}

func TestBlackholingProviderCounts(t *testing.T) {
	cfg := DefaultConfig()
	topo, err := Generate(cfg)
	if err != nil {
		t.Fatal(err)
	}
	providers := topo.BlackholingProviders()
	wantTotal := 0
	for _, n := range cfg.DocBlackholing {
		wantTotal += n
	}
	for _, n := range cfg.UndocBlackholing {
		wantTotal += n
	}
	// The "Level3 case" may add one provider that was already counted,
	// so allow a small tolerance.
	if len(providers) < wantTotal-5 || len(providers) > wantTotal+5 {
		t.Fatalf("got %d AS blackholing providers, want about %d", len(providers), wantTotal)
	}
	ixps := topo.BlackholingIXPs()
	if len(ixps) != cfg.NBlackholingIXPs {
		t.Fatalf("got %d blackholing IXPs, want %d", len(ixps), cfg.NBlackholingIXPs)
	}
	// RFC 7999 adoption: all but two IXPs use 65535:666.
	n7999 := 0
	for _, x := range ixps {
		if x.Blackholing.HasCommunity(bgp.CommunityBlackhole) {
			n7999++
		}
		if !x.BlackholingIPv4.IsValid() {
			t.Errorf("IXP %s missing blackholing IP", x.Name)
		}
	}
	if n7999 != cfg.NRFC7999IXPs {
		t.Fatalf("RFC7999 IXPs = %d, want %d", n7999, cfg.NRFC7999IXPs)
	}
}

func TestTier1AllOfferBlackholing(t *testing.T) {
	topo, err := Generate(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	nTier1BH := 0
	for _, asn := range topo.Order {
		as := topo.ASes[asn]
		if as.Tier1 && as.OffersBlackholing() {
			nTier1BH++
		}
	}
	if nTier1BH < 10 {
		t.Fatalf("only %d Tier-1 blackholing providers, want most of 13", nTier1BH)
	}
}

func TestKindResolution(t *testing.T) {
	as := &AS{DeclaredKind: KindContent, CAIDAKind: KindTransitAccess}
	if as.Kind() != KindContent {
		t.Fatal("PeeringDB declaration should win")
	}
	as.DeclaredKind = KindUnknown
	if as.Kind() != KindTransitAccess {
		t.Fatal("CAIDA fallback should apply")
	}
}

func TestCustomerConeContainsSelfAndCustomers(t *testing.T) {
	topo := smallWorld(t)
	for _, asn := range topo.Order[:10] {
		as := topo.ASes[asn]
		cone := topo.CustomerCone(asn)
		if !cone[asn] {
			t.Fatalf("cone of %d misses itself", asn)
		}
		for _, c := range as.Customers {
			if !cone[c] {
				t.Fatalf("cone of %d misses direct customer %d", asn, c)
			}
		}
	}
}

func TestUpstreamConeExcludesSelf(t *testing.T) {
	topo := smallWorld(t)
	for _, asn := range topo.Order {
		as := topo.ASes[asn]
		if len(as.Providers) == 0 {
			continue
		}
		up := topo.UpstreamCone(asn)
		if up[asn] {
			t.Fatalf("upstream cone of %d contains itself", asn)
		}
		for _, p := range as.Providers {
			if !up[p] {
				t.Fatalf("upstream cone of %d misses provider %d", asn, p)
			}
		}
		break
	}
}

func TestRelSymmetry(t *testing.T) {
	topo := smallWorld(t)
	for _, asn := range topo.Order {
		as := topo.ASes[asn]
		for _, p := range as.Providers {
			if topo.Rel(asn, p) != RelProvider {
				t.Fatalf("Rel(%d,%d) != provider", asn, p)
			}
			if topo.Rel(p, asn) != RelCustomer {
				t.Fatalf("Rel(%d,%d) != customer", p, asn)
			}
		}
		for _, p := range as.Peers {
			if topo.Rel(asn, p) != RelPeer {
				t.Fatalf("Rel(%d,%d) != peer", asn, p)
			}
		}
	}
}

func TestIXPLookup(t *testing.T) {
	topo := smallWorld(t)
	x := topo.IXPs[0]
	if got := topo.IXPByRouteServer(x.RouteServerASN); got != x {
		t.Fatal("IXPByRouteServer miss")
	}
	if got := topo.IXPByRouteServer(1); got != nil {
		t.Fatal("IXPByRouteServer false positive")
	}
	if len(x.Members) == 0 {
		t.Fatal("IXP has no members")
	}
	ip := x.MemberIP(x.Members[0])
	if !x.PeeringLAN.Contains(ip) {
		t.Fatalf("member IP %v outside LAN %v", ip, x.PeeringLAN)
	}
	if got := topo.IXPByPeerIP(ip); got != x {
		t.Fatal("IXPByPeerIP miss")
	}
	if got := x.MemberIP(9999999); got.IsValid() {
		t.Fatal("MemberIP for non-member should be invalid")
	}
	// The blackholing IP (.66) must never collide with a member IP.
	for i, m := range x.Members {
		if x.MemberIP(m).As4()[3] == 66 && x.MemberIP(m).As4()[2] == 0 {
			t.Fatalf("member %d assigned the blackholing IP", i)
		}
	}
}

func TestOriginOfCoveringPrefix(t *testing.T) {
	topo := smallWorld(t)
	asn := topo.Order[0]
	primary := topo.ASes[asn].Prefixes[0]
	if got := topo.OriginOf(primary); got != asn {
		t.Fatalf("OriginOf(%v) = %d, want %d", primary, got, asn)
	}
	// A /32 inside the aggregate must resolve to the same origin.
	host := netip.PrefixFrom(primary.Addr().Next(), 32)
	if got := topo.OriginOf(host); got != asn {
		t.Fatalf("OriginOf(%v) = %d, want %d", host, got, asn)
	}
}

func TestPrefixesAreClean(t *testing.T) {
	topo := smallWorld(t)
	for _, asn := range topo.Order {
		for _, p := range topo.ASes[asn].Prefixes {
			if !p.IsValid() || p.Bits() < 8 {
				t.Fatalf("AS %d has bad prefix %v", asn, p)
			}
			if p.Addr().Is6() {
				continue
			}
			first := p.Addr().As4()[0]
			if skipOctets[int(first)] || first >= 224 || first < 24 {
				t.Fatalf("AS %d prefix %v in reserved space", asn, p)
			}
		}
	}
}

func TestCountryCounts(t *testing.T) {
	topo := smallWorld(t)
	counts := CountryCounts(topo.BlackholingProviders())
	total := 0
	for _, n := range counts {
		total += n
	}
	if total != len(topo.BlackholingProviders()) {
		t.Fatal("country counts do not sum to provider count")
	}
}

func TestDocSourceStrings(t *testing.T) {
	if DocIRR.String() != "IRR" || DocWeb.String() != "Web" || DocPrivate.String() != "Private" || DocNone.String() != "None" {
		t.Fatal("DocSource strings wrong")
	}
}

func TestKindStrings(t *testing.T) {
	want := map[Kind]string{
		KindTransitAccess:        "Transit/Access",
		KindIXP:                  "IXP",
		KindContent:              "Content",
		KindEducationResearchNfP: "Education/Research/NfP",
		KindEnterprise:           "Enterprise",
		KindUnknown:              "Unknown",
	}
	for k, s := range want {
		if k.String() != s {
			t.Errorf("%d.String() = %q, want %q", k, k.String(), s)
		}
	}
	if len(Kinds()) != 6 {
		t.Fatal("Kinds() should list all six types")
	}
}
