package topology

import (
	"sort"
	"sync"

	"bgpblackholing/internal/bgp"
)

// RouteType ranks how a route was learned, in Gao-Rexford preference
// order: customer routes beat peer routes beat provider routes.
type RouteType int

// Route preference classes (higher is preferred).
const (
	RouteNone     RouteType = 0
	RouteProvider RouteType = 1
	RoutePeer     RouteType = 2
	RouteCustomer RouteType = 3
)

// String names the route type.
func (rt RouteType) String() string {
	switch rt {
	case RouteCustomer:
		return "customer"
	case RoutePeer:
		return "peer"
	case RouteProvider:
		return "provider"
	}
	return "none"
}

// Route is one AS's best route toward a destination AS.
type Route struct {
	Type RouteType
	// NextHop is the neighbor the route was learned from (zero at the
	// destination itself).
	NextHop bgp.ASN
	// Len is the AS-path length (0 at the destination).
	Len int
}

// RoutingTable holds every AS's best route toward one destination AS,
// computed under valley-free (Gao-Rexford) policies with shortest-path
// and lowest-next-hop tie-breaking.
type RoutingTable struct {
	Dst    bgp.ASN
	routes map[bgp.ASN]Route
	topo   *Topology
}

// Route returns src's best route toward the destination and whether one
// exists.
func (rt *RoutingTable) Route(src bgp.ASN) (Route, bool) {
	r, ok := rt.routes[src]
	return r, ok
}

// Path returns the AS path from src to the destination, both endpoints
// included, or nil when the destination is unreachable. For src == dst
// the path is [dst].
func (rt *RoutingTable) Path(src bgp.ASN) []bgp.ASN {
	r, ok := rt.routes[src]
	if !ok {
		return nil
	}
	path := make([]bgp.ASN, 0, r.Len+1)
	cur := src
	path = append(path, cur)
	for cur != rt.Dst {
		nxt := rt.routes[cur].NextHop
		if nxt == 0 {
			return nil // defensive: broken chain
		}
		path = append(path, nxt)
		cur = nxt
		if len(path) > len(rt.routes)+1 {
			return nil // defensive: cycle
		}
	}
	return path
}

// routing caches per-destination tables.
type routingCache struct {
	mu     sync.Mutex
	tables map[bgp.ASN]*RoutingTable
}

var routingCaches sync.Map // *Topology -> *routingCache

// RoutesTo computes (and caches) the routing table toward dst.
func (t *Topology) RoutesTo(dst bgp.ASN) *RoutingTable {
	ci, _ := routingCaches.LoadOrStore(t, &routingCache{tables: map[bgp.ASN]*RoutingTable{}})
	cache := ci.(*routingCache)
	cache.mu.Lock()
	defer cache.mu.Unlock()
	if tbl, ok := cache.tables[dst]; ok {
		return tbl
	}
	tbl := t.computeRoutes(dst)
	cache.tables[dst] = tbl
	return tbl
}

// PathBetween returns the valley-free AS path from src to dst (both
// included), or nil when unreachable.
func (t *Topology) PathBetween(src, dst bgp.ASN) []bgp.ASN {
	return t.RoutesTo(dst).Path(src)
}

func better(cand Route, cur Route) bool {
	if cand.Type != cur.Type {
		return cand.Type > cur.Type
	}
	if cand.Len != cur.Len {
		return cand.Len < cur.Len
	}
	return cand.NextHop < cur.NextHop
}

// computeRoutes runs the three-phase valley-free propagation:
//
//  1. customer routes climb provider links (BFS up),
//  2. ASes holding customer routes (or the origin) export to peers,
//  3. any route is exported down to customers (BFS down).
func (t *Topology) computeRoutes(dst bgp.ASN) *RoutingTable {
	routes := map[bgp.ASN]Route{dst: {Type: RouteCustomer, Len: 0}}
	if t.ASes[dst] == nil {
		return &RoutingTable{Dst: dst, routes: map[bgp.ASN]Route{}, topo: t}
	}

	// Phase 1: customer routes propagate upward.
	frontier := []bgp.ASN{dst}
	for len(frontier) > 0 {
		sort.Slice(frontier, func(i, j int) bool { return frontier[i] < frontier[j] })
		var next []bgp.ASN
		for _, u := range frontier {
			ru := routes[u]
			for _, p := range t.ASes[u].Providers {
				cand := Route{Type: RouteCustomer, NextHop: u, Len: ru.Len + 1}
				if cur, ok := routes[p]; !ok || better(cand, cur) {
					if !ok || cur.Len > cand.Len {
						next = append(next, p)
					}
					routes[p] = cand
				}
			}
		}
		frontier = next
	}

	// Phase 2: peer export. Only ASes with customer routes (including the
	// origin) export to peers; peers do not re-export to other peers.
	var holders []bgp.ASN
	for a, r := range routes {
		if r.Type == RouteCustomer {
			holders = append(holders, a)
		}
	}
	sort.Slice(holders, func(i, j int) bool { return holders[i] < holders[j] })
	for _, u := range holders {
		ru := routes[u]
		for _, p := range t.ASes[u].Peers {
			cand := Route{Type: RoutePeer, NextHop: u, Len: ru.Len + 1}
			if cur, ok := routes[p]; !ok || better(cand, cur) {
				routes[p] = cand
			}
		}
	}

	// Phase 3: everything propagates down customer links. BFS by path
	// length so shorter provider routes win deterministically.
	frontier = frontier[:0]
	for a := range routes {
		frontier = append(frontier, a)
	}
	for len(frontier) > 0 {
		sort.Slice(frontier, func(i, j int) bool {
			ri, rj := routes[frontier[i]], routes[frontier[j]]
			if ri.Len != rj.Len {
				return ri.Len < rj.Len
			}
			return frontier[i] < frontier[j]
		})
		var next []bgp.ASN
		for _, u := range frontier {
			ru := routes[u]
			for _, c := range t.ASes[u].Customers {
				cand := Route{Type: RouteProvider, NextHop: u, Len: ru.Len + 1}
				if cur, ok := routes[c]; !ok || better(cand, cur) {
					grew := !ok || cur.Len > cand.Len || cur.Type < cand.Type
					routes[c] = cand
					if grew {
						next = append(next, c)
					}
				}
			}
		}
		frontier = next
	}

	return &RoutingTable{Dst: dst, routes: routes, topo: t}
}

// Reachable reports how many ASes hold a route toward dst.
func (rt *RoutingTable) Reachable() int { return len(rt.routes) }
