package topology

import (
	"testing"

	"bgpblackholing/internal/bgp"
)

// buildChain wires a tiny hand-made fixture:
//
//	T1a(10) ──peer── T1b(11)
//	  │                │
//	  M1(20) ──peer── M2(21)
//	  │                │
//	  S1(30)          S2(31)
//
// with vertical edges customer-provider.
func buildChain() *Topology {
	t := &Topology{ASes: map[bgp.ASN]*AS{}, routeServerOf: map[bgp.ASN]*IXP{}}
	add := func(asn bgp.ASN) *AS {
		a := &AS{ASN: asn, DeclaredKind: KindTransitAccess, CAIDAKind: KindTransitAccess, Country: "US"}
		t.ASes[asn] = a
		t.Order = append(t.Order, asn)
		return a
	}
	t1a, t1b := add(10), add(11)
	m1, m2 := add(20), add(21)
	s1, s2 := add(30), add(31)
	peer := func(a, b *AS) {
		a.Peers = append(a.Peers, b.ASN)
		b.Peers = append(b.Peers, a.ASN)
	}
	cust := func(provider, customer *AS) {
		provider.Customers = append(provider.Customers, customer.ASN)
		customer.Providers = append(customer.Providers, provider.ASN)
	}
	peer(t1a, t1b)
	peer(m1, m2)
	cust(t1a, m1)
	cust(t1b, m2)
	cust(m1, s1)
	cust(m2, s2)
	return t
}

func TestRoutingReachesEveryone(t *testing.T) {
	topo := buildChain()
	rt := topo.RoutesTo(30) // S1
	if rt.Reachable() != len(topo.Order) {
		t.Fatalf("reachable = %d, want %d", rt.Reachable(), len(topo.Order))
	}
}

func TestRoutingPrefersCustomerOverPeer(t *testing.T) {
	topo := buildChain()
	// From M2's perspective toward S1: the peer route via M1 (len 2)
	// must beat the provider route via T1b (len 3+).
	rt := topo.RoutesTo(30)
	r, ok := rt.Route(21)
	if !ok {
		t.Fatal("M2 has no route")
	}
	if r.Type != RoutePeer || r.NextHop != 20 {
		t.Fatalf("M2 route = %+v, want peer via 20", r)
	}
	// From T1a toward S1: customer route via M1.
	r, _ = rt.Route(10)
	if r.Type != RouteCustomer || r.NextHop != 20 {
		t.Fatalf("T1a route = %+v, want customer via 20", r)
	}
}

func TestRoutingValleyFree(t *testing.T) {
	topo := buildChain()
	// S2 → S1 must go up to M2, across the peer link to M1, down to S1
	// (not across both Tier-1s and a second peer link — that would be a
	// valley).
	path := topo.PathBetween(31, 30)
	want := []bgp.ASN{31, 21, 20, 30}
	if len(path) != len(want) {
		t.Fatalf("path = %v, want %v", path, want)
	}
	for i := range want {
		if path[i] != want[i] {
			t.Fatalf("path = %v, want %v", path, want)
		}
	}
}

func TestRoutingPathEndpoints(t *testing.T) {
	topo := buildChain()
	rt := topo.RoutesTo(30)
	self := rt.Path(30)
	if len(self) != 1 || self[0] != 30 {
		t.Fatalf("self path = %v", self)
	}
	if p := rt.Path(9999); p != nil {
		t.Fatalf("path from unknown AS = %v, want nil", p)
	}
}

func TestRoutingNoPeerToPeerValley(t *testing.T) {
	// A ──peer── B ──peer── C: C must NOT reach A (peer routes are not
	// re-exported to peers) unless another policy-compliant path exists.
	topo := &Topology{ASes: map[bgp.ASN]*AS{}, routeServerOf: map[bgp.ASN]*IXP{}}
	for _, asn := range []bgp.ASN{1, 2, 3} {
		topo.ASes[asn] = &AS{ASN: asn}
		topo.Order = append(topo.Order, asn)
	}
	link := func(a, b bgp.ASN) {
		topo.ASes[a].Peers = append(topo.ASes[a].Peers, b)
		topo.ASes[b].Peers = append(topo.ASes[b].Peers, a)
	}
	link(1, 2)
	link(2, 3)
	rt := topo.RoutesTo(1)
	if _, ok := rt.Route(3); ok {
		t.Fatal("peer-peer-peer valley path must not exist")
	}
	if _, ok := rt.Route(2); !ok {
		t.Fatal("direct peer must have a route")
	}
}

func TestRoutingGeneratedWorldConnectivity(t *testing.T) {
	topo := smallWorld(t)
	// Every AS should reach a Tier-1 destination: Tier-1s sit atop the
	// hierarchy, so provider routes propagate down to everyone.
	var tier1 bgp.ASN
	for _, asn := range topo.Order {
		if topo.ASes[asn].Tier1 {
			tier1 = asn
			break
		}
	}
	rt := topo.RoutesTo(tier1)
	if rt.Reachable() < len(topo.Order)*95/100 {
		t.Fatalf("only %d/%d ASes reach a Tier-1", rt.Reachable(), len(topo.Order))
	}
}

func TestRoutingDeterministic(t *testing.T) {
	topo := buildChain()
	p1 := topo.PathBetween(31, 30)
	p2 := topo.PathBetween(31, 30)
	if len(p1) != len(p2) {
		t.Fatal("routing not deterministic")
	}
	for i := range p1 {
		if p1[i] != p2[i] {
			t.Fatal("routing not deterministic")
		}
	}
}

func TestRoutingUnknownDestination(t *testing.T) {
	topo := buildChain()
	rt := topo.RoutesTo(424242)
	if rt.Reachable() != 0 {
		t.Fatal("unknown destination should be unreachable")
	}
}
