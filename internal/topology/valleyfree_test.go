package topology

// Property tests of the routing engine over generated worlds: every
// computed path must be valley-free and consistent with the preference
// model, regardless of topology shape.

import (
	"math/rand"
	"testing"
	"testing/quick"

	"bgpblackholing/internal/bgp"
)

// valleyFree verifies the Gao-Rexford pattern along a path from src to
// dst: viewed from the traffic direction (src→dst), the path must climb
// customer→provider links, cross at most one peer link, then descend
// provider→customer links.
func valleyFree(topo *Topology, path []bgp.ASN) bool {
	// Phases: 0 = climbing, 1 = crossed peer, 2 = descending.
	phase := 0
	for i := 0; i+1 < len(path); i++ {
		rel := topo.Rel(path[i], path[i+1])
		switch rel {
		case RelProvider: // climbing
			if phase != 0 {
				return false
			}
		case RelPeer:
			if phase >= 1 {
				return false
			}
			phase = 1
		case RelCustomer: // descending
			phase = 2
		default:
			return false // non-adjacent hop
		}
	}
	return true
}

func TestGeneratedPathsAreValleyFree(t *testing.T) {
	topo := smallWorld(t)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		src := topo.Order[r.Intn(len(topo.Order))]
		dst := topo.Order[r.Intn(len(topo.Order))]
		path := topo.PathBetween(src, dst)
		if path == nil {
			return true // unreachable is allowed
		}
		if path[0] != src || path[len(path)-1] != dst {
			return false
		}
		return valleyFree(topo, path)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestPathsHaveNoLoops(t *testing.T) {
	topo := smallWorld(t)
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		src := topo.Order[r.Intn(len(topo.Order))]
		dst := topo.Order[r.Intn(len(topo.Order))]
		path := topo.PathBetween(src, dst)
		seen := map[bgp.ASN]bool{}
		for _, a := range path {
			if seen[a] {
				return false
			}
			seen[a] = true
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestRouteTypeConsistentWithFirstHop(t *testing.T) {
	topo := smallWorld(t)
	dst := topo.Order[0]
	rt := topo.RoutesTo(dst)
	for _, src := range topo.Order {
		if src == dst {
			continue
		}
		r, ok := rt.Route(src)
		if !ok {
			continue
		}
		switch topo.Rel(src, r.NextHop) {
		case RelCustomer:
			if r.Type != RouteCustomer {
				t.Fatalf("route via customer typed %v", r.Type)
			}
		case RelPeer:
			if r.Type != RoutePeer {
				t.Fatalf("route via peer typed %v", r.Type)
			}
		case RelProvider:
			if r.Type != RouteProvider {
				t.Fatalf("route via provider typed %v", r.Type)
			}
		default:
			t.Fatalf("next hop %v not adjacent to %v", r.NextHop, src)
		}
	}
}

func TestPathLengthMatchesRouteLen(t *testing.T) {
	topo := smallWorld(t)
	dst := topo.Order[len(topo.Order)/2]
	rt := topo.RoutesTo(dst)
	for _, src := range topo.Order[:50] {
		r, ok := rt.Route(src)
		if !ok {
			continue
		}
		path := rt.Path(src)
		if len(path) != r.Len+1 {
			t.Fatalf("path %v length %d != Len %d + 1", path, len(path), r.Len)
		}
	}
}
