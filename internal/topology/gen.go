package topology

import (
	"fmt"
	"math/rand"
	"net/netip"

	"bgpblackholing/internal/bgp"
)

// Config sizes the synthetic Internet. The zero value is unusable; use
// DefaultConfig (paper-scale AS population) or DefaultConfig().Scaled(f)
// for a smaller world in tests.
type Config struct {
	// Seed drives all randomness; identical seeds produce identical
	// topologies.
	Seed int64

	// AS population by role.
	NTier1      int // top clique (13 in the paper's dictionary)
	NTransit    int // transit/access providers below the clique
	NContent    int // content providers / hosters
	NEducation  int // education/research/not-for-profit
	NEnterprise int // enterprises
	NStub       int // stub access networks (eyeball customers)

	// NIXPs is the number of IXPs; NBigIXPs of them are large hubs with
	// hundreds of members (DE-CIX, Equinix, HK-IX in the paper).
	NIXPs    int
	NBigIXPs int

	// Documented blackhole-community providers per type (Table 2) and
	// additionally inferred/undocumented ones (Table 2 parentheses).
	DocBlackholing   map[Kind]int
	UndocBlackholing map[Kind]int
	// NBlackholingIXPs of the IXPs offer the service (49 in the paper);
	// NRFC7999IXPs of those use the standard 65535:666 community (47).
	NBlackholingIXPs int
	NRFC7999IXPs     int

	// FracNoPeeringDB is the fraction of ASes without a usable PeeringDB
	// record, classified via the CAIDA fallback instead.
	FracNoPeeringDB float64
	// FracFilterMoreSpecifics is the fraction of ASes enforcing the
	// no-more-specific-than-/24 import policy for untagged routes.
	FracFilterMoreSpecifics float64
	// FracStripCommunities is the fraction of ASes stripping communities
	// on export.
	FracStripCommunities float64
	// FracIRRRegistered is the fraction of ASes with proper IRR route
	// objects.
	FracIRRRegistered float64

	// AdoptionDays spreads blackholing-service adoption over this many
	// days of the simulated timeline, reproducing the Fig 4(a) growth.
	AdoptionDays int
}

// DefaultConfig returns the paper-scale configuration.
func DefaultConfig() Config {
	return Config{
		Seed:        42,
		NTier1:      13,
		NTransit:    450,
		NContent:    330,
		NEducation:  80,
		NEnterprise: 160,
		NStub:       700,
		NIXPs:       111,
		NBigIXPs:    3,
		DocBlackholing: map[Kind]int{
			KindTransitAccess:        198,
			KindContent:              23,
			KindEducationResearchNfP: 15,
			KindEnterprise:           8,
			KindUnknown:              14,
		},
		UndocBlackholing: map[Kind]int{
			KindTransitAccess:        81,
			KindContent:              14,
			KindEducationResearchNfP: 1,
			KindEnterprise:           3,
			KindUnknown:              3,
		},
		NBlackholingIXPs:        49,
		NRFC7999IXPs:            47,
		FracNoPeeringDB:         0.35,
		FracFilterMoreSpecifics: 0.85,
		FracStripCommunities:    0.15,
		FracIRRRegistered:       0.85,
		AdoptionDays:            850, // Dec 2014 – Mar 2017
	}
}

// Scaled returns a copy of the config with all population counts
// multiplied by f (minimum 1 where the original was positive).
func (c Config) Scaled(f float64) Config {
	s := func(n int) int {
		if n == 0 {
			return 0
		}
		v := int(float64(n) * f)
		if v < 1 {
			v = 1
		}
		return v
	}
	out := c
	out.NTier1 = s(c.NTier1)
	out.NTransit = s(c.NTransit)
	out.NContent = s(c.NContent)
	out.NEducation = s(c.NEducation)
	out.NEnterprise = s(c.NEnterprise)
	out.NStub = s(c.NStub)
	out.NIXPs = s(c.NIXPs)
	out.NBigIXPs = s(c.NBigIXPs)
	out.DocBlackholing = map[Kind]int{}
	out.UndocBlackholing = map[Kind]int{}
	for k, v := range c.DocBlackholing {
		out.DocBlackholing[k] = s(v)
	}
	for k, v := range c.UndocBlackholing {
		out.UndocBlackholing[k] = s(v)
	}
	out.NBlackholingIXPs = s(c.NBlackholingIXPs)
	out.NRFC7999IXPs = s(c.NRFC7999IXPs)
	if out.NRFC7999IXPs > out.NBlackholingIXPs {
		out.NRFC7999IXPs = out.NBlackholingIXPs
	}
	if out.NBlackholingIXPs > out.NIXPs {
		out.NBlackholingIXPs = out.NIXPs
	}
	return out
}

// providerCountries weights the RIR country distribution of blackholing
// providers (Fig 6a: Russia, USA and Germany lead).
var providerCountries = []struct {
	code   string
	weight int
}{
	{"RU", 45}, {"US", 40}, {"DE", 32}, {"BR", 14}, {"UA", 13},
	{"PL", 12}, {"NL", 11}, {"GB", 10}, {"FR", 9}, {"IT", 8},
	{"CZ", 7}, {"SE", 7}, {"CH", 6}, {"RO", 6}, {"ES", 5},
	{"JP", 5}, {"SG", 5}, {"HK", 4}, {"CN", 4}, {"AU", 4},
	{"CA", 4}, {"ZA", 3}, {"IN", 3}, {"TR", 3}, {"AR", 2},
	{"MX", 2}, {"ID", 2}, {"KE", 1}, {"NG", 1}, {"EG", 1},
}

func pickCountry(r *rand.Rand) string {
	total := 0
	for _, c := range providerCountries {
		total += c.weight
	}
	n := r.Intn(total)
	for _, c := range providerCountries {
		n -= c.weight
		if n < 0 {
			return c.code
		}
	}
	return "US"
}

// prefixAllocator hands out non-overlapping /16 blocks from clean
// unicast space, skipping every bogon first octet.
type prefixAllocator struct{ next int }

var skipOctets = map[int]bool{100: true, 127: true, 169: true, 172: true, 192: true, 198: true, 203: true}

func (p *prefixAllocator) block16() netip.Prefix {
	for {
		octet1 := 24 + p.next/256
		octet2 := p.next % 256
		p.next++
		if octet1 >= 224 {
			panic("topology: address space exhausted")
		}
		if skipOctets[octet1] {
			p.next += 256 - octet2
			continue
		}
		return netip.PrefixFrom(netip.AddrFrom4([4]byte{byte(octet1), byte(octet2), 0, 0}), 16)
	}
}

// Generate builds a deterministic synthetic Internet from the config.
func Generate(cfg Config) (*Topology, error) {
	r := rand.New(rand.NewSource(cfg.Seed))
	t := &Topology{
		ASes:          map[bgp.ASN]*AS{},
		routeServerOf: map[bgp.ASN]*IXP{},
		originOf:      map[netip.Prefix]bgp.ASN{},
	}
	alloc := &prefixAllocator{}

	addAS := func(kind Kind, tier1 bool) *AS {
		asn := bgp.ASN(1000 + len(t.Order)*3 + r.Intn(3))
		for t.ASes[asn] != nil {
			asn++
		}
		as := &AS{
			ASN:                  asn,
			DeclaredKind:         kind,
			CAIDAKind:            kind,
			Country:              pickCountry(r),
			Tier1:                tier1,
			FiltersMoreSpecifics: r.Float64() < cfg.FracFilterMoreSpecifics,
			StripsCommunities:    r.Float64() < cfg.FracStripCommunities,
			HasIRRRouteObjects:   r.Float64() < cfg.FracIRRRegistered,
		}
		if r.Float64() < cfg.FracNoPeeringDB {
			as.DeclaredKind = KindUnknown
			if kind == KindUnknown {
				// Truly unknown: CAIDA cannot classify either.
				as.CAIDAKind = KindUnknown
			}
		}
		// Primary aggregate plus a few more-specific allocations.
		primary := alloc.block16()
		as.Prefixes = append(as.Prefixes, primary)
		extra := r.Intn(3)
		if kind == KindContent {
			extra = 1 + r.Intn(5)
		}
		base := primary.Addr().As4()
		for i := 0; i < extra; i++ {
			sub := netip.PrefixFrom(netip.AddrFrom4([4]byte{base[0], base[1], byte(64 + i*16), 0}), 20)
			as.Prefixes = append(as.Prefixes, sub)
		}
		// Roughly a third of networks also originate an IPv6 aggregate;
		// IPv4 dominates the datasets (96%+ in Table 1).
		if r.Float64() < 0.35 {
			id := len(t.Order)
			v6 := netip.PrefixFrom(netip.AddrFrom16([16]byte{0x2a, 0x00, byte(id >> 8), byte(id)}), 32)
			as.Prefixes = append(as.Prefixes, v6)
			t.originOf[v6] = asn
		}
		t.ASes[asn] = as
		t.Order = append(t.Order, asn)
		t.originOf[primary] = asn
		return as
	}

	// 1. The Tier-1 clique.
	var tier1 []*AS
	for i := 0; i < cfg.NTier1; i++ {
		tier1 = append(tier1, addAS(KindTransitAccess, true))
	}
	for i, a := range tier1 {
		for _, b := range tier1[i+1:] {
			a.Peers = append(a.Peers, b.ASN)
			b.Peers = append(b.Peers, a.ASN)
		}
	}

	// 2. Transit/access hierarchy with preferential attachment.
	var transit []*AS
	transit = append(transit, tier1...)
	attach := func(as *AS) {
		nProv := 1 + r.Intn(3)
		for i := 0; i < nProv && i < len(transit); i++ {
			// Preferential attachment: earlier (bigger) transit ASes are
			// more likely providers.
			idx := int(float64(len(transit)) * r.Float64() * r.Float64())
			prov := transit[idx]
			if prov.ASN == as.ASN || t.Rel(as.ASN, prov.ASN) != RelNone {
				continue
			}
			as.Providers = append(as.Providers, prov.ASN)
			prov.Customers = append(prov.Customers, as.ASN)
		}
		// Guarantee connectivity.
		if len(as.Providers) == 0 {
			prov := transit[r.Intn(len(transit))]
			if prov.ASN != as.ASN {
				as.Providers = append(as.Providers, prov.ASN)
				prov.Customers = append(prov.Customers, as.ASN)
			} else {
				prov = tier1[0]
				as.Providers = append(as.Providers, prov.ASN)
				prov.Customers = append(prov.Customers, as.ASN)
			}
		}
	}
	for i := 0; i < cfg.NTransit; i++ {
		as := addAS(KindTransitAccess, false)
		attach(as)
		transit = append(transit, as)
	}
	// Lateral peering among mid-tier transit.
	for _, as := range transit[cfg.NTier1:] {
		n := r.Intn(3)
		for i := 0; i < n; i++ {
			other := transit[cfg.NTier1+r.Intn(len(transit)-cfg.NTier1)]
			if other.ASN == as.ASN || t.Rel(as.ASN, other.ASN) != RelNone {
				continue
			}
			as.Peers = append(as.Peers, other.ASN)
			other.Peers = append(other.Peers, as.ASN)
		}
	}

	// 3. Edge networks.
	edgeKinds := []struct {
		kind Kind
		n    int
	}{
		{KindContent, cfg.NContent},
		{KindEducationResearchNfP, cfg.NEducation},
		{KindEnterprise, cfg.NEnterprise},
		{KindTransitAccess, cfg.NStub}, // stub access/eyeball networks
	}
	var edges []*AS
	for _, ek := range edgeKinds {
		for i := 0; i < ek.n; i++ {
			as := addAS(ek.kind, false)
			attach(as)
			edges = append(edges, as)
		}
	}

	// 4. IXPs: route servers, peering LANs, members with same-country bias.
	nonStub := append(append([]*AS{}, transit...), edges...)
	for i := 0; i < cfg.NIXPs; i++ {
		lanOctet2 := i % 256
		lanOctet1 := 23 // reserved /8 for IXP LANs
		x := &IXP{
			ID:              i,
			Name:            fmt.Sprintf("IXP-%03d", i),
			Country:         pickCountry(r),
			RouteServerASN:  bgp.ASN(59000 + i),
			InsertsRSASN:    r.Float64() < 0.5,
			PeeringLAN:      netip.PrefixFrom(netip.AddrFrom4([4]byte{byte(lanOctet1), byte(lanOctet2), 0, 0}), 22),
			HasPCHCollector: i < cfg.NIXPs, // assigned properly below
		}
		nMembers := 20 + r.Intn(80)
		if i < cfg.NBigIXPs {
			nMembers = 300 + r.Intn(200)
		}
		if nMembers > len(nonStub) {
			nMembers = len(nonStub)
		}
		seen := map[bgp.ASN]bool{}
		for len(x.Members) < nMembers {
			cand := nonStub[r.Intn(len(nonStub))]
			// Same-country bias: prefer candidates in the IXP's country.
			if cand.Country != x.Country && r.Float64() < 0.5 {
				cand = nonStub[r.Intn(len(nonStub))]
			}
			if seen[cand.ASN] {
				// Dense worlds may not have enough distinct candidates.
				if len(seen) >= len(nonStub) {
					break
				}
				continue
			}
			seen[cand.ASN] = true
			x.Members = append(x.Members, cand.ASN)
			cand.IXPs = append(cand.IXPs, x.ID)
		}
		// Bilateral/multilateral peering: each member peers with a few
		// co-members (bounded to keep the graph sparse).
		for _, m := range x.Members {
			k := 2 + r.Intn(5)
			for j := 0; j < k; j++ {
				o := x.Members[r.Intn(len(x.Members))]
				if o == m || t.Rel(m, o) != RelNone {
					continue
				}
				t.ASes[m].Peers = append(t.ASes[m].Peers, o)
				t.ASes[o].Peers = append(t.ASes[o].Peers, m)
			}
		}
		t.IXPs = append(t.IXPs, x)
		t.routeServerOf[x.RouteServerASN] = x
	}
	// PCH operates collectors at all IXPs in our world model; the
	// collector layer decides which feeds it actually uses.
	for _, x := range t.IXPs {
		x.HasPCHCollector = true
	}

	// 5. Blackholing services.
	assignServices(t, cfg, r, transit, edges)

	// 6. Ordinary (non-blackhole) routing communities for Fig 2: transit
	// ASes tag routes with relationship/TE communities, applied to
	// /24-or-less-specific prefixes by the collector layer.
	for _, as := range transit {
		n := 2 + r.Intn(5)
		for i := 0; i < n; i++ {
			as.RoutingCommunities = append(as.RoutingCommunities,
				bgp.MakeCommunity(uint16(as.ASN), uint16(100+i*10)))
		}
	}
	// The Level3 case: the first Tier-1 also tags peering routes with
	// ASN:666 — the value most providers use for blackholing — while its
	// real blackhole community is ASN:9999 (§4.1).
	if len(transit) > 0 {
		l3 := transit[0]
		l3.RoutingCommunities = append(l3.RoutingCommunities, bgp.MakeCommunity(uint16(l3.ASN), 666))
	}

	// Freeze the dense AS index now that the AS population is final, so
	// the propagation hot path never pays the lazy build.
	t.buildIndex()

	return t, t.Validate()
}

// communityPatterns are the low-16-bit values used for blackhole
// communities; ASN:666 dominates (51% in the paper).
var communityPatterns = []struct {
	low    uint16
	weight int
}{
	{666, 51}, {66, 14}, {999, 12}, {9999, 8}, {666 + 1, 5}, {888, 5}, {0, 5},
}

func pickCommunityLow(r *rand.Rand) uint16 {
	total := 0
	for _, p := range communityPatterns {
		total += p.weight
	}
	n := r.Intn(total)
	for _, p := range communityPatterns {
		n -= p.weight
		if n < 0 {
			if p.low == 0 {
				// Idiosyncratic value, kept clear of the 100-199 range
				// operators use for relationship/TE tagging.
				return uint16(200 + r.Intn(800))
			}
			return p.low
		}
	}
	return 666
}

func assignServices(t *Topology, cfg Config, r *rand.Rand, transit, edges []*AS) {
	// Bucket candidate ASes per effective kind. Tier-1s first so that all
	// of them end up offering blackholing (13 Tier-1 ISPs in the paper).
	buckets := map[Kind][]*AS{}
	for _, as := range transit {
		buckets[KindTransitAccess] = append(buckets[KindTransitAccess], as)
	}
	for _, as := range edges {
		k := as.Kind()
		if k == KindTransitAccess {
			continue // stubs do not offer blackholing
		}
		buckets[k] = append(buckets[k], as)
	}

	newService := func(as *AS, doc DocSource) *BlackholeService {
		low := pickCommunityLow(r)
		svc := &BlackholeService{
			Communities:             []bgp.Community{bgp.MakeCommunity(uint16(as.ASN), low)},
			Doc:                     doc,
			MaxPrefixLen:            32,
			MinPrefixLen:            24,
			RequiresIRRRegistration: r.Float64() < 0.3,
			RequiresRPKI:            r.Float64() < 0.1,
		}
		// Some providers add fine-grained regional communities.
		if r.Float64() < 0.1 {
			svc.Communities = append(svc.Communities,
				bgp.MakeCommunity(uint16(as.ASN), low+1),
				bgp.MakeCommunity(uint16(as.ASN), low+2))
			svc.RegionalScopes = []string{"Europe", "North America"}
		}
		return svc
	}

	assign := func(kind Kind, nDoc, nUndoc int) {
		cands := buckets[kind]
		idx := 0
		docSources := []DocSource{DocIRR, DocIRR, DocIRR, DocWeb, DocWeb} // IRR contributes most (§4.1)
		for i := 0; i < nDoc && idx < len(cands); i, idx = i+1, idx+1 {
			as := cands[idx]
			doc := docSources[r.Intn(len(docSources))]
			if i < 5 && kind == KindTransitAccess {
				doc = DocPrivate // 5 networks via private communication
			}
			as.Blackholing = newService(as, doc)
		}
		for i := 0; i < nUndoc && idx < len(cands); i, idx = i+1, idx+1 {
			as := cands[idx]
			as.Blackholing = newService(as, DocNone)
		}
	}
	for _, kind := range []Kind{KindTransitAccess, KindContent, KindEducationResearchNfP, KindEnterprise} {
		assign(kind, cfg.DocBlackholing[kind], cfg.UndocBlackholing[kind])
	}
	// "Unknown" providers: transit ASes without usable records.
	unknownCands := buckets[KindTransitAccess]
	n := cfg.DocBlackholing[KindUnknown] + cfg.UndocBlackholing[KindUnknown]
	picked := 0
	for _, as := range unknownCands {
		if picked >= n {
			break
		}
		if as.Blackholing == nil && as.Kind() == KindUnknown {
			doc := DocIRR
			if picked >= cfg.DocBlackholing[KindUnknown] {
				doc = DocNone
			}
			as.Blackholing = newService(as, doc)
			picked++
		}
	}
	// Fall back to arbitrary unassigned transit ASes flagged unknown.
	for _, as := range unknownCands {
		if picked >= n {
			break
		}
		if as.Blackholing == nil {
			as.DeclaredKind = KindUnknown
			as.CAIDAKind = KindUnknown
			doc := DocIRR
			if picked >= cfg.DocBlackholing[KindUnknown] {
				doc = DocNone
			}
			as.Blackholing = newService(as, doc)
			picked++
		}
	}

	// One large transit AS repurposes ASN:666 for peering-route tagging
	// and blackholes via ASN:9999 instead (the Level3 case, §4.1): make
	// it the first Tier-1.
	if len(transit) > 0 {
		l3 := transit[0]
		if l3.Blackholing == nil {
			l3.Blackholing = newService(l3, DocIRR)
		}
		l3.Blackholing.Communities = []bgp.Community{bgp.MakeCommunity(uint16(l3.ASN), 9999)}
		l3.Blackholing.Doc = DocIRR
	}

	// A couple of providers share communities whose high bits are not a
	// public ASN (0:666), resolvable only via AS-path checks (§4.2).
	shared := bgp.MakeCommunity(0, 666)
	nShared := 0
	for _, as := range transit {
		if as.Blackholing != nil && !as.Tier1 && nShared < 3 {
			as.Blackholing.Communities = append(as.Blackholing.Communities, shared)
			as.Blackholing.Shared = true
			nShared++
		}
	}

	// One provider adopted the large-community format for blackholing
	// (1 of 307 in the paper).
	for _, as := range transit {
		if as.Blackholing != nil && !as.Tier1 {
			as.Blackholing.LargeCommunities = []bgp.LargeCommunity{{Global: uint32(as.ASN), Local1: 666, Local2: 0}}
			break
		}
	}

	// IXP services: NRFC7999IXPs use 65535:666, the remainder share a
	// legacy community; almost all publish a blackholing IP (§4.1).
	for i := 0; i < cfg.NBlackholingIXPs && i < len(t.IXPs); i++ {
		x := t.IXPs[i]
		comm := bgp.CommunityBlackhole
		if i >= cfg.NRFC7999IXPs {
			comm = bgp.MakeCommunity(0, 666)
		}
		lan := x.PeeringLAN.Addr().As4()
		x.Blackholing = &BlackholeService{
			Communities:             []bgp.Community{comm},
			Doc:                     DocWeb,
			MaxPrefixLen:            32,
			MinPrefixLen:            24,
			RequiresIRRRegistration: r.Float64() < 0.5,
			Shared:                  true,
		}
		x.BlackholingIPv4 = netip.AddrFrom4([4]byte{lan[0], lan[1], 0, 66})
		x.BlackholingIPv6 = netip.MustParseAddr(fmt.Sprintf("2001:db8:%x::dead:beef", x.ID))
	}
}
