// Package topology models a synthetic AS-level Internet: autonomous
// systems with business types and countries, customer-provider and peer
// relationships, IXPs with route servers and peering LANs, originated
// address space, and valley-free (Gao-Rexford) routing.
//
// It substitutes for the external ground-truth datasets the paper relies
// on — PeeringDB (declared network types), CAIDA AS classification and AS
// relationships / customer cones — while exercising the same code paths:
// the inference engine reads network types through the same
// PeeringDB-first / CAIDA-fallback rule the paper uses (§4.1), and probe
// selection uses customer cones exactly as §10 does.
package topology

import (
	"fmt"
	"net/netip"
	"slices"
	"sort"
	"sync"

	"bgpblackholing/internal/bgp"
)

// Kind is a network business type, following the PeeringDB/CAIDA
// taxonomy used in Tables 2 and 4.
type Kind int

// Network types. TransitAccess merges PeeringDB's NSP and Cable/DSL/ISP
// classes, matching CAIDA's convention (§4.1).
const (
	KindUnknown Kind = iota
	KindTransitAccess
	KindIXP
	KindContent
	KindEducationResearchNfP
	KindEnterprise
)

// String renders the kind as in the paper's tables.
func (k Kind) String() string {
	switch k {
	case KindTransitAccess:
		return "Transit/Access"
	case KindIXP:
		return "IXP"
	case KindContent:
		return "Content"
	case KindEducationResearchNfP:
		return "Education/Research/NfP"
	case KindEnterprise:
		return "Enterprise"
	}
	return "Unknown"
}

// Kinds lists every network type in table order.
func Kinds() []Kind {
	return []Kind{KindTransitAccess, KindIXP, KindContent, KindEducationResearchNfP, KindEnterprise, KindUnknown}
}

// DocSource records where a blackhole community is documented, which
// determines whether the dictionary treats it as "documented" (§4.1).
type DocSource int

// Documentation sources for blackhole communities.
const (
	DocNone    DocSource = iota // undocumented: discoverable only by inference
	DocIRR                      // documented in an IRR (RADb) record
	DocWeb                      // documented on the operator's web page
	DocPrivate                  // learned via private communication
)

// String names the documentation source.
func (d DocSource) String() string {
	switch d {
	case DocIRR:
		return "IRR"
	case DocWeb:
		return "Web"
	case DocPrivate:
		return "Private"
	}
	return "None"
}

// BlackholeService describes the blackholing offering of one provider AS
// or IXP: the trigger communities, where they are documented and the
// accepted prefix-length policy.
type BlackholeService struct {
	// Communities are the standard blackhole trigger communities. The
	// first entry is the global-scope community; any additional entries
	// are fine-grained (regional) variants.
	Communities []bgp.Community
	// RegionalScopes optionally names the scope of each additional
	// community (parallel to Communities[1:]).
	RegionalScopes []string
	// LargeCommunities holds RFC 8092 trigger communities for the rare
	// providers that adopted the new format (1 of 307 in the paper).
	LargeCommunities []bgp.LargeCommunity
	// Doc records where the service is documented.
	Doc DocSource
	// MaxPrefixLen is the most-specific accepted blackhole prefix
	// length (typically 32; blackholing providers accept more-specific-
	// than-/24 only when tagged).
	MaxPrefixLen int
	// MinPrefixLen is the least-specific accepted length (best practice
	// forbids blackholing less-specific than /24).
	MinPrefixLen int
	// RequiresIRRRegistration models providers that filter blackhole
	// announcements against RIR/IRR route objects (§10: misconfigured
	// users missing database entries see no data-plane effect).
	RequiresIRRRegistration bool
	// RequiresRPKI models providers accepting blackhole announcements
	// only when RPKI origin validation succeeds (§2).
	RequiresRPKI bool
	// Shared marks communities whose high 16 bits do not encode the
	// provider's public ASN (e.g. 0:666), shared across providers.
	Shared bool
}

// HasCommunity reports whether c triggers this service.
func (s *BlackholeService) HasCommunity(c bgp.Community) bool {
	return slices.Contains(s.Communities, c)
}

// AS is one autonomous system of the synthetic Internet.
type AS struct {
	ASN bgp.ASN
	// DeclaredKind is the PeeringDB-declared type (KindUnknown when the
	// AS has no PeeringDB record or does not disclose a type).
	DeclaredKind Kind
	// CAIDAKind is the CAIDA classification fallback.
	CAIDAKind Kind
	// Country is the RIR-registered ISO country code.
	Country string

	// Prefixes is the originated address space (the first prefix is the
	// AS's primary aggregate).
	Prefixes []netip.Prefix

	// Providers, Customers and Peers hold the AS relationships.
	Providers []bgp.ASN
	Customers []bgp.ASN
	Peers     []bgp.ASN
	// IXPs lists the IXPs this AS is a member of.
	IXPs []int

	// Blackholing is non-nil when the AS offers a blackholing service
	// to its customers/peers.
	Blackholing *BlackholeService

	// RoutingCommunities are the ordinary informational communities the
	// AS documents and attaches to routine exports (relationship tags,
	// traffic engineering). They never trigger blackholing; Figure 2
	// contrasts their prefix-length profile with blackhole communities.
	RoutingCommunities []bgp.Community

	// FiltersMoreSpecifics reports whether the AS, acting as a transit
	// neighbor without a matching blackhole community, drops routes more
	// specific than /24 (best practice; most ASes do).
	FiltersMoreSpecifics bool
	// StripsCommunities reports whether the AS strips communities when
	// re-exporting routes (limits visibility, §5.2).
	StripsCommunities bool
	// HasIRRRouteObjects reports whether the AS maintains proper
	// RIR/IRR route objects for its prefixes (§10 misconfiguration).
	HasIRRRouteObjects bool
	// Tier1 marks members of the top clique.
	Tier1 bool
}

// Kind resolves the effective network type: the PeeringDB declaration if
// present, otherwise the CAIDA classification — the paper's exact rule.
func (a *AS) Kind() Kind {
	if a.DeclaredKind != KindUnknown {
		return a.DeclaredKind
	}
	return a.CAIDAKind
}

// OffersBlackholing reports whether the AS provides a blackholing service.
func (a *AS) OffersBlackholing() bool { return a.Blackholing != nil }

// IXP is an Internet exchange point with a route server.
type IXP struct {
	ID   int
	Name string
	// Country locates the IXP (major telecommunication-hub cities).
	Country string
	// RouteServerASN is the route server's AS number.
	RouteServerASN bgp.ASN
	// InsertsRSASN reports whether the route server inserts its ASN into
	// the AS path (most are transparent; some are not — the inference
	// engine handles both, §4.2).
	InsertsRSASN bool
	// PeeringLAN is the IXP's layer-2 peering LAN prefix; peer-ip
	// attributes inside it identify the IXP (§4.2).
	PeeringLAN netip.Prefix
	// Members lists the member ASNs.
	Members []bgp.ASN
	// Blackholing is non-nil when the IXP offers the blackholing service.
	Blackholing *BlackholeService
	// BlackholingIPv4 and BlackholingIPv6 are the null-interface next
	// hops the IXP publishes (most common: last octet .66, and
	// dead:beef for IPv6, §4.1).
	BlackholingIPv4 netip.Addr
	BlackholingIPv6 netip.Addr
	// HasPCHCollector reports whether PCH operates a route collector at
	// this IXP (peering with the route server).
	HasPCHCollector bool
}

// MemberIP returns the deterministic peering-LAN address of a member.
func (x *IXP) MemberIP(member bgp.ASN) netip.Addr {
	idx := slices.Index(x.Members, member)
	if idx < 0 {
		return netip.Addr{}
	}
	base := x.PeeringLAN.Addr().As4()
	// Hosts .10 upward; .66 stays reserved for the blackholing IP,
	// so skip over it.
	host := 10 + idx
	if host >= 66 {
		host++
	}
	return netip.AddrFrom4([4]byte{base[0], base[1], byte(host >> 8), byte(host)})
}

// Topology is the complete synthetic Internet.
type Topology struct {
	ASes map[bgp.ASN]*AS
	// Order lists ASNs in deterministic generation order.
	Order []bgp.ASN
	IXPs  []*IXP

	// routeServerOf maps route-server ASN to its IXP.
	routeServerOf map[bgp.ASN]*IXP
	// originOf maps each originated prefix to its AS.
	originOf map[netip.Prefix]bgp.ASN

	conesMu sync.Mutex
	cones   map[bgp.ASN]map[bgp.ASN]bool

	// indexOnce lazily builds the dense AS index used by hot paths
	// (propagation visited sets) in place of per-call hash maps.
	indexOnce sync.Once
	indexOf   map[bgp.ASN]int
	indexed   []bgp.ASN
}

// buildIndex assigns each AS a dense index in deterministic order:
// Order first, then any ASes registered outside Order (hand-assembled
// test topologies sometimes have them) in ascending ASN order. The
// topology must not gain ASes after the first Index/NumIndexed call.
func (t *Topology) buildIndex() {
	t.indexOnce.Do(func() {
		t.indexOf = make(map[bgp.ASN]int, len(t.ASes))
		indexed := make([]bgp.ASN, 0, len(t.ASes))
		add := func(a bgp.ASN) {
			if _, ok := t.indexOf[a]; !ok {
				t.indexOf[a] = len(indexed)
				indexed = append(indexed, a)
			}
		}
		for _, a := range t.Order {
			add(a)
		}
		if len(indexed) < len(t.ASes) {
			extra := make([]bgp.ASN, 0, len(t.ASes)-len(indexed))
			for a := range t.ASes {
				if _, ok := t.indexOf[a]; !ok {
					extra = append(extra, a)
				}
			}
			SortASNs(extra)
			for _, a := range extra {
				add(a)
			}
		}
		t.indexed = indexed
	})
}

// Index returns the dense index of the AS (stable for the topology's
// lifetime), or -1 when the AS is unknown. Hot paths use it to key
// []bool visited sets instead of allocating maps.
func (t *Topology) Index(a bgp.ASN) int {
	t.buildIndex()
	if i, ok := t.indexOf[a]; ok {
		return i
	}
	return -1
}

// NumIndexed returns the number of densely indexed ASes (the required
// length of Index-keyed slices).
func (t *Topology) NumIndexed() int {
	t.buildIndex()
	return len(t.indexed)
}

// ASByNumber returns the AS record, or nil.
func (t *Topology) AS(a bgp.ASN) *AS { return t.ASes[a] }

// IXPByRouteServer maps a route-server ASN to its IXP, or nil.
func (t *Topology) IXPByRouteServer(a bgp.ASN) *IXP { return t.routeServerOf[a] }

// IXPByPeerIP returns the IXP whose peering LAN contains addr, or nil.
// This implements the paper's peer-ip identification of IXP blackholing.
func (t *Topology) IXPByPeerIP(addr netip.Addr) *IXP {
	for _, x := range t.IXPs {
		if x.PeeringLAN.Contains(addr) {
			return x
		}
	}
	return nil
}

// OriginOf returns the AS originating the most-specific aggregate
// covering p, or 0.
func (t *Topology) OriginOf(p netip.Prefix) bgp.ASN {
	if asn, ok := t.originOf[p]; ok {
		return asn
	}
	// Fall back to the covering aggregate (blackholed /32s fall inside
	// an AS's primary prefix).
	best := bgp.ASN(0)
	bestBits := -1
	for _, asn := range t.Order {
		for _, agg := range t.ASes[asn].Prefixes {
			if agg.Addr().Is4() == p.Addr().Is4() && agg.Contains(p.Addr()) && agg.Bits() > bestBits {
				best, bestBits = asn, agg.Bits()
			}
		}
	}
	return best
}

// Neighbors returns all BGP neighbors of a (providers, customers, peers).
func (t *Topology) Neighbors(a bgp.ASN) []bgp.ASN {
	as := t.ASes[a]
	if as == nil {
		return nil
	}
	out := make([]bgp.ASN, 0, len(as.Providers)+len(as.Customers)+len(as.Peers))
	out = append(out, as.Providers...)
	out = append(out, as.Customers...)
	out = append(out, as.Peers...)
	return out
}

// Relationship classifies the edge a→b from a's perspective.
type Relationship int

// Relationship values from a's perspective.
const (
	RelNone     Relationship = iota
	RelProvider              // b is a's provider
	RelCustomer              // b is a's customer
	RelPeer                  // b is a's peer
)

// Rel returns the relationship of b from a's perspective.
func (t *Topology) Rel(a, b bgp.ASN) Relationship {
	as := t.ASes[a]
	if as == nil {
		return RelNone
	}
	switch {
	case slices.Contains(as.Providers, b):
		return RelProvider
	case slices.Contains(as.Customers, b):
		return RelCustomer
	case slices.Contains(as.Peers, b):
		return RelPeer
	}
	return RelNone
}

// CustomerCone returns the set of ASes in a's customer cone (a itself
// included), computed over the c2p hierarchy as CAIDA does. Results are
// cached; the topology must not be mutated afterwards. Safe for
// concurrent use (parallel day-sharded propagation hits it from many
// goroutines).
func (t *Topology) CustomerCone(a bgp.ASN) map[bgp.ASN]bool {
	t.conesMu.Lock()
	defer t.conesMu.Unlock()
	if t.cones == nil {
		t.cones = make(map[bgp.ASN]map[bgp.ASN]bool)
	}
	if c, ok := t.cones[a]; ok {
		return c
	}
	cone := map[bgp.ASN]bool{a: true}
	stack := []bgp.ASN{a}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, c := range t.ASes[cur].Customers {
			if !cone[c] {
				cone[c] = true
				stack = append(stack, c)
			}
		}
	}
	t.cones[a] = cone
	return cone
}

// InCustomerCone reports whether member is inside provider's customer
// cone, the authentication check blackholing providers apply (§2).
func (t *Topology) InCustomerCone(provider, member bgp.ASN) bool {
	return t.CustomerCone(provider)[member]
}

// UpstreamCone returns the set of ASes reachable from a by walking
// provider links upward (a excluded). Used for probe-group selection.
func (t *Topology) UpstreamCone(a bgp.ASN) map[bgp.ASN]bool {
	up := map[bgp.ASN]bool{}
	stack := []bgp.ASN{a}
	for len(stack) > 0 {
		cur := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, p := range t.ASes[cur].Providers {
			if !up[p] {
				up[p] = true
				stack = append(stack, p)
			}
		}
	}
	return up
}

// BlackholingProviders lists every AS offering a blackholing service, in
// deterministic order.
func (t *Topology) BlackholingProviders() []*AS {
	var out []*AS
	for _, asn := range t.Order {
		if as := t.ASes[asn]; as.OffersBlackholing() {
			out = append(out, as)
		}
	}
	return out
}

// BlackholingIXPs lists every IXP offering a blackholing service.
func (t *Topology) BlackholingIXPs() []*IXP {
	var out []*IXP
	for _, x := range t.IXPs {
		if x.Blackholing != nil {
			out = append(out, x)
		}
	}
	return out
}

// Validate checks structural invariants: symmetric relationships, no
// self-loops, members recorded on both sides, prefixes non-overlapping
// across ASes. It returns the first violation found.
func (t *Topology) Validate() error {
	seen := map[netip.Prefix]bgp.ASN{}
	for _, asn := range t.Order {
		as := t.ASes[asn]
		if as == nil {
			return fmt.Errorf("topology: order lists unknown AS %d", asn)
		}
		if as.ASN != asn {
			return fmt.Errorf("topology: AS %d keyed as %d", as.ASN, asn)
		}
		for _, p := range as.Providers {
			if p == asn {
				return fmt.Errorf("topology: AS %d is its own provider", asn)
			}
			pa := t.ASes[p]
			if pa == nil || !slices.Contains(pa.Customers, asn) {
				return fmt.Errorf("topology: c2p %d->%d not symmetric", asn, p)
			}
		}
		for _, p := range as.Peers {
			if p == asn {
				return fmt.Errorf("topology: AS %d peers with itself", asn)
			}
			pa := t.ASes[p]
			if pa == nil || !slices.Contains(pa.Peers, asn) {
				return fmt.Errorf("topology: p2p %d--%d not symmetric", asn, p)
			}
		}
		for _, pfx := range as.Prefixes {
			if other, dup := seen[pfx]; dup {
				return fmt.Errorf("topology: prefix %s originated by %d and %d", pfx, other, asn)
			}
			seen[pfx] = asn
		}
	}
	for _, x := range t.IXPs {
		for _, m := range x.Members {
			as := t.ASes[m]
			if as == nil {
				return fmt.Errorf("topology: IXP %s lists unknown member %d", x.Name, m)
			}
			if !slices.Contains(as.IXPs, x.ID) {
				return fmt.Errorf("topology: IXP %s membership of %d not recorded on AS", x.Name, m)
			}
		}
	}
	return nil
}

// CountryCounts tallies ASes per country for the given filter, as
// Figure 6 does for providers and users.
func CountryCounts(ases []*AS) map[string]int {
	out := map[string]int{}
	for _, a := range ases {
		out[a.Country]++
	}
	return out
}

// SortASNs sorts a slice of ASNs ascending in place and returns it.
func SortASNs(asns []bgp.ASN) []bgp.ASN {
	sort.Slice(asns, func(i, j int) bool { return asns[i] < asns[j] })
	return asns
}
