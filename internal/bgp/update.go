package bgp

import (
	"fmt"
	"net/netip"
	"slices"
	"sort"
	"strings"
	"time"
)

// Update is a decoded BGP UPDATE as observed by a route collector peer:
// the protocol message content plus the collection metadata (timestamp,
// peer address and peer AS) that MRT and BGPStream attach to it.
//
// A single Update may simultaneously withdraw and announce prefixes, per
// RFC 4271. The zero value is an empty (keepalive-like) update.
type Update struct {
	// Time is the collection timestamp.
	Time time.Time
	// PeerIP is the address of the BGP peer that sent the message to the
	// collector. For IXP route-server feeds this lies in the IXP peering
	// LAN, which the inference engine exploits (§4.2).
	PeerIP netip.Addr
	// PeerAS is the AS of the sending peer.
	PeerAS ASN

	// Withdrawn lists prefixes withdrawn by this message.
	Withdrawn []netip.Prefix
	// Announced lists prefixes announced (NLRI) by this message. All
	// announced prefixes share the path attributes below.
	Announced []netip.Prefix

	// Origin is the ORIGIN path attribute.
	Origin Origin
	// Path is the AS_PATH attribute.
	Path Path
	// NextHop is the NEXT_HOP attribute (or the MP_REACH next hop for
	// IPv6). Blackholing providers publish a well-known blackholing
	// next-hop address wired to a null interface.
	NextHop netip.Addr
	// Communities carries the RFC 1997 standard communities.
	Communities []Community
	// LargeCommunities carries RFC 8092 large communities.
	LargeCommunities []LargeCommunity
	// ExtendedCommunities carries RFC 4360 extended communities.
	ExtendedCommunities []ExtendedCommunity
}

// IsAnnouncement reports whether the update announces at least one prefix.
func (u *Update) IsAnnouncement() bool { return len(u.Announced) > 0 }

// IsWithdrawal reports whether the update withdraws at least one prefix.
func (u *Update) IsWithdrawal() bool { return len(u.Withdrawn) > 0 }

// HasCommunity reports whether the update carries the given standard
// community.
func (u *Update) HasCommunity(c Community) bool {
	return slices.Contains(u.Communities, c)
}

// HasNoExport reports whether the update carries the RFC 1997 NO_EXPORT
// well-known community, which RFC 7999 requires on blackhole routes.
func (u *Update) HasNoExport() bool { return u.HasCommunity(CommunityNoExport) }

// Clone returns a deep copy of the update.
func (u *Update) Clone() *Update {
	out := *u
	out.Withdrawn = slices.Clone(u.Withdrawn)
	out.Announced = slices.Clone(u.Announced)
	out.Path = u.Path.Clone()
	out.Communities = slices.Clone(u.Communities)
	out.LargeCommunities = slices.Clone(u.LargeCommunities)
	out.ExtendedCommunities = slices.Clone(u.ExtendedCommunities)
	return &out
}

// SortCommunities sorts the standard communities in ascending numeric
// order, the canonical on-the-wire ordering used by most implementations.
func (u *Update) SortCommunities() {
	sort.Slice(u.Communities, func(i, j int) bool { return u.Communities[i] < u.Communities[j] })
}

// String renders a compact single-line summary suitable for logs.
func (u *Update) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "update t=%s peer=%s AS%s", u.Time.UTC().Format(time.RFC3339), u.PeerIP, u.PeerAS)
	if len(u.Withdrawn) > 0 {
		fmt.Fprintf(&b, " withdraw=%v", u.Withdrawn)
	}
	if len(u.Announced) > 0 {
		fmt.Fprintf(&b, " announce=%v path=[%s] nh=%s", u.Announced, u.Path, u.NextHop)
		if len(u.Communities) > 0 {
			b.WriteString(" comm=")
			for i, c := range u.Communities {
				if i > 0 {
					b.WriteByte(' ')
				}
				b.WriteString(c.String())
			}
		}
	}
	return b.String()
}

// RIBEntry is one route in a BGP table dump: a prefix with the attributes
// it was learned with from one collector peer. Table dumps initialise the
// blackholing inference (§4.2 "Initialization Based on BGP Table Dump").
type RIBEntry struct {
	// Prefix is the routed destination.
	Prefix netip.Prefix
	// PeerIP and PeerAS identify the collector peer contributing the route.
	PeerIP netip.Addr
	PeerAS ASN
	// OriginatedAt is the (collector-local) time the route was last
	// announced; table dumps cannot pinpoint the true start time, so the
	// engine treats dump-seeded events as started "before the dump".
	OriginatedAt time.Time

	Origin              Origin
	Path                Path
	NextHop             netip.Addr
	Communities         []Community
	LargeCommunities    []LargeCommunity
	ExtendedCommunities []ExtendedCommunity
}

// ToUpdate converts the RIB entry into an equivalent announcement update
// stamped with the given time, the form consumed by the inference engine.
func (e *RIBEntry) ToUpdate(t time.Time) *Update {
	return &Update{
		Time:                t,
		PeerIP:              e.PeerIP,
		PeerAS:              e.PeerAS,
		Announced:           []netip.Prefix{e.Prefix},
		Origin:              e.Origin,
		Path:                e.Path.Clone(),
		NextHop:             e.NextHop,
		Communities:         slices.Clone(e.Communities),
		LargeCommunities:    slices.Clone(e.LargeCommunities),
		ExtendedCommunities: slices.Clone(e.ExtendedCommunities),
	}
}
