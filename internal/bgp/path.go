package bgp

import (
	"slices"
	"strings"
)

// SegmentType distinguishes AS_PATH segment kinds per RFC 4271 §4.3.
type SegmentType uint8

// AS_PATH segment types.
const (
	SegmentSet      SegmentType = 1 // AS_SET: unordered set of ASes
	SegmentSequence SegmentType = 2 // AS_SEQUENCE: ordered sequence of ASes
)

// Segment is one AS_PATH segment: a typed list of AS numbers.
type Segment struct {
	Type SegmentType
	ASNs []ASN
}

// Path is a BGP AS_PATH attribute: an ordered list of segments. The first
// AS of the first sequence segment is the sender-side neighbor; the last
// AS of the last segment is (normally) the route originator.
type Path struct {
	Segments []Segment
}

// NewPath builds a single AS_SEQUENCE path from the given ASNs, which is
// the overwhelmingly common shape of real-world paths.
func NewPath(asns ...ASN) Path {
	if len(asns) == 0 {
		return Path{}
	}
	return Path{Segments: []Segment{{Type: SegmentSequence, ASNs: slices.Clone(asns)}}}
}

// IsEmpty reports whether the path carries no AS numbers at all.
func (p Path) IsEmpty() bool {
	for _, s := range p.Segments {
		if len(s.ASNs) > 0 {
			return false
		}
	}
	return true
}

// Clone returns a deep copy of the path.
func (p Path) Clone() Path {
	out := Path{Segments: make([]Segment, len(p.Segments))}
	for i, s := range p.Segments {
		out.Segments[i] = Segment{Type: s.Type, ASNs: slices.Clone(s.ASNs)}
	}
	return out
}

// Flatten returns all AS numbers in path order, including duplicates from
// prepending and the members of any AS_SET segments.
func (p Path) Flatten() []ASN {
	var out []ASN
	for _, s := range p.Segments {
		out = append(out, s.ASNs...)
	}
	return out
}

// WithoutPrepending returns the flattened path with consecutive duplicate
// AS numbers collapsed, removing AS-path prepending. The paper removes
// prepending before locating the blackholing user on the path (§4.2).
func (p Path) WithoutPrepending() []ASN {
	return p.AppendFlattenNoPrepend(nil)
}

// AppendFlattenNoPrepend appends the prepending-free flattened path to
// dst and returns it. Hot paths pass a reused buffer to classify updates
// without a per-call allocation.
func (p Path) AppendFlattenNoPrepend(dst []ASN) []ASN {
	start := len(dst)
	for _, s := range p.Segments {
		for _, a := range s.ASNs {
			if len(dst) == start || dst[len(dst)-1] != a {
				dst = append(dst, a)
			}
		}
	}
	return dst
}

// Origin returns the originating AS (last AS of the path) and true, or
// zero and false for an empty path. For paths ending in an AS_SET the
// first member of the set is reported, matching common collector practice.
func (p Path) Origin() (ASN, bool) {
	for i := len(p.Segments) - 1; i >= 0; i-- {
		s := p.Segments[i]
		if len(s.ASNs) == 0 {
			continue
		}
		if s.Type == SegmentSet {
			return s.ASNs[0], true
		}
		return s.ASNs[len(s.ASNs)-1], true
	}
	return 0, false
}

// First returns the leftmost AS (the collector-side neighbor) and true,
// or zero and false for an empty path.
func (p Path) First() (ASN, bool) {
	for _, s := range p.Segments {
		if len(s.ASNs) > 0 {
			return s.ASNs[0], true
		}
	}
	return 0, false
}

// Contains reports whether the AS appears anywhere on the path.
func (p Path) Contains(a ASN) bool {
	for _, s := range p.Segments {
		if slices.Contains(s.ASNs, a) {
			return true
		}
	}
	return false
}

// IndexOf returns the position of the first occurrence of a on the
// prepending-free path, or -1 when absent. Position 0 is the
// collector-side neighbor.
func (p Path) IndexOf(a ASN) int {
	return slices.Index(p.WithoutPrepending(), a)
}

// HopBefore returns the AS immediately preceding target on the
// prepending-free path (i.e. one hop closer to the origin) and true.
// The paper infers the blackholing user as the AS before the blackholing
// provider along the AS path (§4.2). When target is absent or is the
// origin, it returns zero and false.
func (p Path) HopBefore(target ASN) (ASN, bool) {
	flat := p.WithoutPrepending()
	for i, a := range flat {
		if a == target {
			if i+1 < len(flat) {
				return flat[i+1], true
			}
			return 0, false
		}
	}
	return 0, false
}

// Prepend returns a copy of the path with a prepended n times at the
// front, as done by the announcing router at each eBGP hop.
func (p Path) Prepend(a ASN, n int) Path {
	out := p.Clone()
	if n <= 0 {
		return out
	}
	rep := make([]ASN, n)
	for i := range rep {
		rep[i] = a
	}
	if len(out.Segments) > 0 && out.Segments[0].Type == SegmentSequence {
		out.Segments[0].ASNs = append(rep, out.Segments[0].ASNs...)
		return out
	}
	out.Segments = append([]Segment{{Type: SegmentSequence, ASNs: rep}}, out.Segments...)
	return out
}

// Len returns the AS_PATH length for route selection: each AS in a
// sequence counts 1, each AS_SET counts 1 in total (RFC 4271 §9.1.2.2).
func (p Path) Len() int {
	n := 0
	for _, s := range p.Segments {
		if len(s.ASNs) == 0 {
			continue
		}
		if s.Type == SegmentSet {
			n++
		} else {
			n += len(s.ASNs)
		}
	}
	return n
}

// String renders the path with sequence hops space-separated and sets in
// braces, e.g. "3356 174 {64512 64513}".
func (p Path) String() string {
	var b strings.Builder
	for i, s := range p.Segments {
		if i > 0 {
			b.WriteByte(' ')
		}
		if s.Type == SegmentSet {
			b.WriteByte('{')
		}
		for j, a := range s.ASNs {
			if j > 0 {
				b.WriteByte(' ')
			}
			b.WriteString(a.String())
		}
		if s.Type == SegmentSet {
			b.WriteByte('}')
		}
	}
	return b.String()
}

// Equal reports whether two paths are structurally identical.
func (p Path) Equal(q Path) bool {
	if len(p.Segments) != len(q.Segments) {
		return false
	}
	for i := range p.Segments {
		if p.Segments[i].Type != q.Segments[i].Type {
			return false
		}
		if !slices.Equal(p.Segments[i].ASNs, q.Segments[i].ASNs) {
			return false
		}
	}
	return true
}
