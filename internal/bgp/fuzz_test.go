package bgp

import (
	"net/netip"
	"testing"
)

// FuzzUnmarshalUpdate asserts the UPDATE decoder never panics and that
// anything it accepts re-encodes without error (run with
// `go test -fuzz=FuzzUnmarshalUpdate ./internal/bgp` for a real fuzzing
// session; the seed corpus runs under plain `go test`).
func FuzzUnmarshalUpdate(f *testing.F) {
	seed := &Update{
		Announced:        []netip.Prefix{netip.MustParsePrefix("192.88.99.1/32")},
		Withdrawn:        []netip.Prefix{netip.MustParsePrefix("198.51.0.0/16")},
		Origin:           OriginIGP,
		Path:             NewPath(3356, 174, 65001),
		NextHop:          netip.MustParseAddr("10.0.0.1"),
		Communities:      []Community{CommunityBlackhole, CommunityNoExport},
		LargeCommunities: []LargeCommunity{{212100, 666, 0}},
	}
	wire, err := MarshalUpdate(seed)
	if err != nil {
		f.Fatal(err)
	}
	f.Add(wire)
	f.Add(wire[:20])
	mut := append([]byte(nil), wire...)
	mut[25] ^= 0xFF
	f.Add(mut)
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		u, err := UnmarshalUpdate(data)
		if err != nil {
			return // rejection is fine; panics are not
		}
		// Accepted updates must re-encode (unless they exceed the size
		// limit after normalisation, which Marshal reports as an error,
		// not a panic).
		_, _ = MarshalUpdate(u)
	})
}

// FuzzUnmarshalPathAttributes covers the standalone attribute decoder
// used by MRT RIB entries.
func FuzzUnmarshalPathAttributes(f *testing.F) {
	u := &Update{
		Origin:      OriginIGP,
		Path:        NewPath(3356, 65001),
		NextHop:     netip.MustParseAddr("10.0.0.1"),
		Communities: []Community{CommunityBlackhole},
	}
	f.Add(MarshalPathAttributes(u))
	f.Add([]byte{0x40, 1})
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		got, err := UnmarshalPathAttributes(data)
		if err != nil {
			return
		}
		_ = MarshalPathAttributes(got)
	})
}

// FuzzParseCommunity covers the text parsers.
func FuzzParseCommunity(f *testing.F) {
	f.Add("65535:666")
	f.Add("0:0")
	f.Add("a:b")
	f.Add("1:2:3")
	f.Fuzz(func(t *testing.T, s string) {
		if c, err := ParseCommunity(s); err == nil {
			// Canonical notation must round-trip.
			back, err := ParseCommunity(c.String())
			if err != nil || back != c {
				t.Fatalf("round trip failed for %q -> %v", s, c)
			}
		}
		if lc, err := ParseLargeCommunity(s); err == nil {
			back, err := ParseLargeCommunity(lc.String())
			if err != nil || back != lc {
				t.Fatalf("large round trip failed for %q", s)
			}
		}
	})
}
