package bgp

import (
	"math/rand"
	"net/netip"
	"reflect"
	"testing"
	"testing/quick"
)

func sampleUpdate() *Update {
	return &Update{
		Announced: []netip.Prefix{
			netip.MustParsePrefix("192.0.2.1/32"),
			netip.MustParsePrefix("198.51.100.0/24"),
		},
		Withdrawn: []netip.Prefix{netip.MustParsePrefix("203.0.113.0/25")},
		Origin:    OriginIGP,
		Path:      NewPath(3356, 174, 65001),
		NextHop:   netip.MustParseAddr("10.0.0.1"),
		Communities: []Community{
			MakeCommunity(174, 666),
			CommunityNoExport,
		},
		LargeCommunities:    []LargeCommunity{{212100, 666, 0}},
		ExtendedCommunities: []ExtendedCommunity{{0, 2, 0, 1, 0, 0, 0, 9}},
	}
}

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	u := sampleUpdate()
	wire, err := MarshalUpdate(u)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalUpdate(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Announced, u.Announced) {
		t.Errorf("Announced = %v, want %v", got.Announced, u.Announced)
	}
	if !reflect.DeepEqual(got.Withdrawn, u.Withdrawn) {
		t.Errorf("Withdrawn = %v, want %v", got.Withdrawn, u.Withdrawn)
	}
	if !got.Path.Equal(u.Path) {
		t.Errorf("Path = %v, want %v", got.Path, u.Path)
	}
	if got.NextHop != u.NextHop {
		t.Errorf("NextHop = %v, want %v", got.NextHop, u.NextHop)
	}
	if !reflect.DeepEqual(got.Communities, u.Communities) {
		t.Errorf("Communities = %v, want %v", got.Communities, u.Communities)
	}
	if !reflect.DeepEqual(got.LargeCommunities, u.LargeCommunities) {
		t.Errorf("LargeCommunities = %v, want %v", got.LargeCommunities, u.LargeCommunities)
	}
	if !reflect.DeepEqual(got.ExtendedCommunities, u.ExtendedCommunities) {
		t.Errorf("ExtendedCommunities = %v, want %v", got.ExtendedCommunities, u.ExtendedCommunities)
	}
	if got.Origin != u.Origin {
		t.Errorf("Origin = %v, want %v", got.Origin, u.Origin)
	}
}

func TestMarshalIPv6MPReach(t *testing.T) {
	u := &Update{
		Announced: []netip.Prefix{netip.MustParsePrefix("2001:db8::1/128")},
		Withdrawn: []netip.Prefix{netip.MustParsePrefix("2001:db8:dead::/48")},
		Origin:    OriginIGP,
		Path:      NewPath(6939, 65002),
		NextHop:   netip.MustParseAddr("2001:db8:ffff::1"),
	}
	wire, err := MarshalUpdate(u)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalUpdate(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Announced, u.Announced) {
		t.Errorf("Announced = %v, want %v", got.Announced, u.Announced)
	}
	if !reflect.DeepEqual(got.Withdrawn, u.Withdrawn) {
		t.Errorf("Withdrawn = %v, want %v", got.Withdrawn, u.Withdrawn)
	}
	if got.NextHop != u.NextHop {
		t.Errorf("NextHop = %v, want %v", got.NextHop, u.NextHop)
	}
}

func TestPureWithdrawalHasNoAttributes(t *testing.T) {
	u := &Update{Withdrawn: []netip.Prefix{netip.MustParsePrefix("192.0.2.0/24")}}
	wire, err := MarshalUpdate(u)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalUpdate(wire)
	if err != nil {
		t.Fatal(err)
	}
	if got.IsAnnouncement() {
		t.Fatal("pure withdrawal decoded with announcements")
	}
	if len(got.Communities) != 0 || !got.Path.IsEmpty() {
		t.Fatal("pure withdrawal should carry no attributes")
	}
}

func TestUnmarshalErrors(t *testing.T) {
	u := sampleUpdate()
	wire, err := MarshalUpdate(u)
	if err != nil {
		t.Fatal(err)
	}

	t.Run("short", func(t *testing.T) {
		if _, err := UnmarshalUpdate(wire[:10]); err == nil {
			t.Fatal("want error for truncated header")
		}
	})
	t.Run("bad marker", func(t *testing.T) {
		bad := append([]byte(nil), wire...)
		bad[0] = 0
		if _, err := UnmarshalUpdate(bad); err != ErrBadMarker {
			t.Fatalf("err = %v, want ErrBadMarker", err)
		}
	})
	t.Run("bad length", func(t *testing.T) {
		bad := append([]byte(nil), wire...)
		bad[16], bad[17] = 0xFF, 0xFF
		if _, err := UnmarshalUpdate(bad); err == nil {
			t.Fatal("want error for wrong length")
		}
	})
	t.Run("not update", func(t *testing.T) {
		bad := append([]byte(nil), wire...)
		bad[18] = 1 // OPEN
		if _, err := UnmarshalUpdate(bad); err != ErrNotUpdate {
			t.Fatalf("err = %v, want ErrNotUpdate", err)
		}
	})
	t.Run("truncated body", func(t *testing.T) {
		bad := append([]byte(nil), wire[:HeaderLen+1]...)
		bad[16] = byte(len(bad) >> 8)
		bad[17] = byte(len(bad))
		if _, err := UnmarshalUpdate(bad); err == nil {
			t.Fatal("want error for truncated body")
		}
	})
}

func TestParsePrefixesRejectsBadLength(t *testing.T) {
	if _, err := parsePrefixes([]byte{33, 1, 2, 3, 4, 5}, false); err == nil {
		t.Fatal("want error for /33 IPv4")
	}
	if _, err := parsePrefixes([]byte{129}, true); err == nil {
		t.Fatal("want error for /129 IPv6")
	}
	if _, err := parsePrefixes([]byte{24, 1}, false); err == nil {
		t.Fatal("want error for truncated prefix bytes")
	}
}

func TestMarshalTooLarge(t *testing.T) {
	u := &Update{Origin: OriginIGP, Path: NewPath(1), NextHop: netip.MustParseAddr("10.0.0.1")}
	for i := 0; i < 2000; i++ {
		u.Announced = append(u.Announced, netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(i >> 8), byte(i), 1}), 32))
	}
	if _, err := MarshalUpdate(u); err == nil {
		t.Fatal("want error for oversized message")
	}
}

// randomUpdate builds a valid random IPv4 update for property testing.
func randomUpdate(r *rand.Rand) *Update {
	u := &Update{Origin: Origin(r.Intn(3))}
	nAnn := 1 + r.Intn(4)
	for i := 0; i < nAnn; i++ {
		bits := 8 + r.Intn(25)
		addr := netip.AddrFrom4([4]byte{byte(1 + r.Intn(223)), byte(r.Intn(256)), byte(r.Intn(256)), byte(r.Intn(256))})
		u.Announced = append(u.Announced, netip.PrefixFrom(addr, bits).Masked())
	}
	nW := r.Intn(3)
	for i := 0; i < nW; i++ {
		addr := netip.AddrFrom4([4]byte{byte(1 + r.Intn(223)), byte(r.Intn(256)), 0, 0})
		u.Withdrawn = append(u.Withdrawn, netip.PrefixFrom(addr, 16).Masked())
	}
	hops := 1 + r.Intn(6)
	asns := make([]ASN, hops)
	for i := range asns {
		asns[i] = ASN(1 + r.Intn(400000))
	}
	u.Path = NewPath(asns...)
	u.NextHop = netip.AddrFrom4([4]byte{10, byte(r.Intn(256)), byte(r.Intn(256)), 1})
	nC := r.Intn(5)
	for i := 0; i < nC; i++ {
		u.Communities = append(u.Communities, Community(r.Uint32()))
	}
	return u
}

func TestWireRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		u := randomUpdate(r)
		wire, err := MarshalUpdate(u)
		if err != nil {
			return false
		}
		got, err := UnmarshalUpdate(wire)
		if err != nil {
			return false
		}
		if !reflect.DeepEqual(got.Announced, u.Announced) || !got.Path.Equal(u.Path) {
			return false
		}
		if len(u.Communities) > 0 && !reflect.DeepEqual(got.Communities, u.Communities) {
			return false
		}
		return got.NextHop == u.NextHop
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestUpdateHelpers(t *testing.T) {
	u := sampleUpdate()
	if !u.IsAnnouncement() || !u.IsWithdrawal() {
		t.Fatal("sample should announce and withdraw")
	}
	if !u.HasCommunity(MakeCommunity(174, 666)) {
		t.Fatal("HasCommunity false negative")
	}
	if u.HasCommunity(MakeCommunity(1, 1)) {
		t.Fatal("HasCommunity false positive")
	}
	if !u.HasNoExport() {
		t.Fatal("sample carries NO_EXPORT")
	}

	c := u.Clone()
	c.Communities[0] = 0
	c.Announced[0] = netip.MustParsePrefix("8.8.8.8/32")
	if u.Communities[0] == 0 || u.Announced[0].String() == "8.8.8.8/32" {
		t.Fatal("Clone shares storage")
	}

	u.Communities = []Community{3, 1, 2}
	u.SortCommunities()
	if u.Communities[0] != 1 || u.Communities[2] != 3 {
		t.Fatal("SortCommunities wrong order")
	}
	if u.String() == "" {
		t.Fatal("String should be non-empty")
	}
}

func TestRIBEntryToUpdate(t *testing.T) {
	e := &RIBEntry{
		Prefix:      netip.MustParsePrefix("192.0.2.1/32"),
		PeerIP:      netip.MustParseAddr("10.1.1.1"),
		PeerAS:      3356,
		Path:        NewPath(3356, 174, 65000),
		NextHop:     netip.MustParseAddr("10.1.1.2"),
		Communities: []Community{MakeCommunity(174, 666)},
	}
	u := e.ToUpdate(e.OriginatedAt)
	if len(u.Announced) != 1 || u.Announced[0] != e.Prefix {
		t.Fatal("ToUpdate prefix wrong")
	}
	if u.PeerAS != 3356 || u.PeerIP != e.PeerIP {
		t.Fatal("ToUpdate peer metadata wrong")
	}
	// Mutating the update must not affect the entry.
	u.Communities[0] = 0
	if e.Communities[0] == 0 {
		t.Fatal("ToUpdate shares community storage")
	}
}
