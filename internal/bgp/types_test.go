package bgp

import (
	"net/netip"
	"testing"
	"testing/quick"
)

func TestASNClassification(t *testing.T) {
	cases := []struct {
		asn                 ASN
		private, reserved   bool
		public, sixteenBits bool
	}{
		{174, false, false, true, true},
		{3356, false, false, true, true},
		{64512, true, false, false, true},
		{65534, true, false, false, true},
		{65535, false, true, false, true},
		{0, false, true, false, true},
		{23456, false, true, false, true},
		{196615, false, false, true, false},
		{4200000000, true, false, false, false},
		{4294967295, false, true, false, false},
	}
	for _, c := range cases {
		if got := c.asn.IsPrivate(); got != c.private {
			t.Errorf("ASN %d IsPrivate = %v, want %v", c.asn, got, c.private)
		}
		if got := c.asn.IsReserved(); got != c.reserved {
			t.Errorf("ASN %d IsReserved = %v, want %v", c.asn, got, c.reserved)
		}
		if got := c.asn.IsPublic(); got != c.public {
			t.Errorf("ASN %d IsPublic = %v, want %v", c.asn, got, c.public)
		}
		if got := c.asn.Is16Bit(); got != c.sixteenBits {
			t.Errorf("ASN %d Is16Bit = %v, want %v", c.asn, got, c.sixteenBits)
		}
	}
}

func TestCommunityParts(t *testing.T) {
	c := MakeCommunity(3356, 9999)
	if c.High() != 3356 || c.Low() != 9999 {
		t.Fatalf("MakeCommunity(3356,9999) = %d:%d", c.High(), c.Low())
	}
	if c.String() != "3356:9999" {
		t.Fatalf("String = %q", c.String())
	}
}

func TestCommunityBlackholeWellKnown(t *testing.T) {
	if CommunityBlackhole.High() != 65535 || CommunityBlackhole.Low() != 666 {
		t.Fatalf("RFC 7999 BLACKHOLE = %s, want 65535:666", CommunityBlackhole)
	}
	if CommunityNoExport.String() != "65535:65281" {
		t.Fatalf("NO_EXPORT = %s", CommunityNoExport)
	}
}

func TestParseCommunity(t *testing.T) {
	good := map[string]Community{
		"174:666":   MakeCommunity(174, 666),
		"65535:666": CommunityBlackhole,
		"0:666":     MakeCommunity(0, 666),
		"3356:9999": MakeCommunity(3356, 9999),
	}
	for s, want := range good {
		got, err := ParseCommunity(s)
		if err != nil {
			t.Errorf("ParseCommunity(%q): %v", s, err)
			continue
		}
		if got != want {
			t.Errorf("ParseCommunity(%q) = %v, want %v", s, got, want)
		}
	}
	for _, s := range []string{"", "174", "174:", ":666", "70000:1", "174:70000", "a:b", "1:2:3:4"} {
		if _, err := ParseCommunity(s); err == nil {
			t.Errorf("ParseCommunity(%q): want error", s)
		}
	}
}

func TestParseCommunityRoundTrip(t *testing.T) {
	f := func(hi, lo uint16) bool {
		c := MakeCommunity(hi, lo)
		back, err := ParseCommunity(c.String())
		return err == nil && back == c
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestParseLargeCommunity(t *testing.T) {
	lc, err := ParseLargeCommunity("212100:666:0")
	if err != nil {
		t.Fatal(err)
	}
	if lc != (LargeCommunity{212100, 666, 0}) {
		t.Fatalf("got %v", lc)
	}
	if lc.String() != "212100:666:0" {
		t.Fatalf("String = %q", lc.String())
	}
	for _, s := range []string{"", "1:2", "1:2:3:4", "x:1:2"} {
		if _, err := ParseLargeCommunity(s); err == nil {
			t.Errorf("ParseLargeCommunity(%q): want error", s)
		}
	}
}

func TestLargeCommunityRoundTrip(t *testing.T) {
	f := func(a, b, c uint32) bool {
		lc := LargeCommunity{a, b, c}
		back, err := ParseLargeCommunity(lc.String())
		return err == nil && back == lc
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestExtendedCommunityAccessors(t *testing.T) {
	ec := ExtendedCommunity{0x00, 0x02, 0x0d, 0x1c, 0x00, 0x00, 0x02, 0x9a}
	if ec.Type() != 0x00 || ec.SubType() != 0x02 {
		t.Fatalf("type/subtype = %x/%x", ec.Type(), ec.SubType())
	}
	if ec.String() != "0002:0d1c0000029a" {
		t.Fatalf("String = %q", ec.String())
	}
}

func TestOriginString(t *testing.T) {
	if OriginIGP.String() != "IGP" || OriginEGP.String() != "EGP" || OriginIncomplete.String() != "INCOMPLETE" {
		t.Fatal("origin strings wrong")
	}
	if Origin(7).String() != "ORIGIN(7)" {
		t.Fatalf("unknown origin = %q", Origin(7).String())
	}
}

func TestHostRouteAndSpecificity(t *testing.T) {
	p32 := netip.MustParsePrefix("192.0.2.1/32")
	p24 := netip.MustParsePrefix("192.0.2.0/24")
	p25 := netip.MustParsePrefix("192.0.2.0/25")
	p128 := netip.MustParsePrefix("2001:db8::1/128")
	p48 := netip.MustParsePrefix("2001:db8::/48")
	p49 := netip.MustParsePrefix("2001:db8::/49")

	if !IsHostRoute(p32) || IsHostRoute(p24) || !IsHostRoute(p128) || IsHostRoute(p48) {
		t.Fatal("IsHostRoute misclassification")
	}
	if !MoreSpecificThan24(p32) || !MoreSpecificThan24(p25) || MoreSpecificThan24(p24) {
		t.Fatal("MoreSpecificThan24 IPv4 misclassification")
	}
	if !MoreSpecificThan24(p49) || MoreSpecificThan24(p48) {
		t.Fatal("MoreSpecificThan24 IPv6 misclassification")
	}
	if !PrefixLessSpecificThan(netip.MustParsePrefix("10.0.0.0/7"), 8) {
		t.Fatal("/7 should be less specific than /8")
	}
	if PrefixLessSpecificThan(netip.MustParsePrefix("10.0.0.0/8"), 8) {
		t.Fatal("/8 is not less specific than /8")
	}
}
