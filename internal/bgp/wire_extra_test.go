package bgp

import (
	"net/netip"
	"reflect"
	"testing"
)

// TestExtendedLengthAttribute forces a COMMUNITIES attribute longer than
// 255 bytes (more than 63 communities), exercising the RFC 4271
// extended-length attribute flag on both encode and decode.
func TestExtendedLengthAttribute(t *testing.T) {
	u := &Update{
		Announced: []netip.Prefix{netip.MustParsePrefix("192.88.99.1/32")},
		Origin:    OriginIGP,
		Path:      NewPath(3356, 65001),
		NextHop:   netip.MustParseAddr("10.0.0.1"),
	}
	for i := 0; i < 100; i++ {
		u.Communities = append(u.Communities, MakeCommunity(3356, uint16(i)))
	}
	wire, err := MarshalUpdate(u)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalUpdate(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got.Communities, u.Communities) {
		t.Fatalf("got %d communities, want %d", len(got.Communities), len(u.Communities))
	}
}

// TestASSetRoundTrip covers AS_SET segments through the wire format.
func TestASSetRoundTrip(t *testing.T) {
	u := &Update{
		Announced: []netip.Prefix{netip.MustParsePrefix("192.88.99.0/24")},
		Origin:    OriginIncomplete,
		Path: Path{Segments: []Segment{
			{Type: SegmentSequence, ASNs: []ASN{3356, 174}},
			{Type: SegmentSet, ASNs: []ASN{64512, 64513, 64514}},
		}},
		NextHop: netip.MustParseAddr("10.0.0.1"),
	}
	wire, err := MarshalUpdate(u)
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalUpdate(wire)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Path.Equal(u.Path) {
		t.Fatalf("path = %v, want %v", got.Path, u.Path)
	}
	if got.Origin != OriginIncomplete {
		t.Fatalf("origin = %v", got.Origin)
	}
}

// TestMalformedASPathSegment rejects unknown segment types and short
// segments.
func TestMalformedASPathSegment(t *testing.T) {
	u := &Update{
		Announced: []netip.Prefix{netip.MustParsePrefix("192.88.99.0/24")},
		Origin:    OriginIGP,
		Path:      NewPath(3356),
		NextHop:   netip.MustParseAddr("10.0.0.1"),
	}
	wire, err := MarshalUpdate(u)
	if err != nil {
		t.Fatal(err)
	}
	// Locate the AS_PATH attribute (flags 0x40, code 2) and corrupt the
	// segment type.
	for i := HeaderLen; i+1 < len(wire); i++ {
		if wire[i] == flagTransitive && wire[i+1] == attrASPath {
			wire[i+3] = 9 // invalid segment type
			break
		}
	}
	if _, err := UnmarshalUpdate(wire); err == nil {
		t.Fatal("want error for invalid segment type")
	}
}

// TestUnknownAttributeSkipped: decoders must ignore unrecognised path
// attributes transparently.
func TestUnknownAttributeSkipped(t *testing.T) {
	u := &Update{
		Announced: []netip.Prefix{netip.MustParsePrefix("192.88.99.0/24")},
		Origin:    OriginIGP,
		Path:      NewPath(3356),
		NextHop:   netip.MustParseAddr("10.0.0.1"),
	}
	wire, err := MarshalUpdate(u)
	if err != nil {
		t.Fatal(err)
	}
	// Splice in an unknown attribute (code 99) before the NLRI. Rebuild
	// the message manually: parse header fields.
	// Withdrawn len is at body[0:2] (0), attrs len at body[2:4].
	body := append([]byte(nil), wire[HeaderLen:]...)
	attrsLen := int(body[2])<<8 | int(body[3])
	unknown := []byte{flagOptional | flagTransitive, 99, 2, 0xAB, 0xCD}
	newBody := append([]byte(nil), body[:4]...)
	newBody = append(newBody, body[4:4+attrsLen]...)
	newBody = append(newBody, unknown...)
	newBody = append(newBody, body[4+attrsLen:]...)
	newAttrsLen := attrsLen + len(unknown)
	newBody[2], newBody[3] = byte(newAttrsLen>>8), byte(newAttrsLen)

	msg := make([]byte, 0, HeaderLen+len(newBody))
	for i := 0; i < 16; i++ {
		msg = append(msg, 0xFF)
	}
	total := HeaderLen + len(newBody)
	msg = append(msg, byte(total>>8), byte(total), TypeUpdate)
	msg = append(msg, newBody...)

	got, err := UnmarshalUpdate(msg)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Path.Equal(u.Path) || len(got.Announced) != 1 {
		t.Fatal("known attributes lost around unknown one")
	}
}

// TestMarshalPathAttributesStandalone covers the MRT RIB-entry form.
func TestMarshalPathAttributesStandalone(t *testing.T) {
	u := &Update{
		Origin:           OriginEGP,
		Path:             NewPath(6939, 65010),
		NextHop:          netip.MustParseAddr("2001:db8::9"), // v6: MP_REACH form
		Communities:      []Community{CommunityBlackhole},
		LargeCommunities: []LargeCommunity{{212100, 666, 0}},
	}
	attrs := MarshalPathAttributes(u)
	got, err := UnmarshalPathAttributes(attrs)
	if err != nil {
		t.Fatal(err)
	}
	if got.Origin != OriginEGP || !got.Path.Equal(u.Path) {
		t.Fatal("origin/path mismatch")
	}
	if got.NextHop != u.NextHop {
		t.Fatalf("v6 next hop = %v", got.NextHop)
	}
	if !reflect.DeepEqual(got.Communities, u.Communities) ||
		!reflect.DeepEqual(got.LargeCommunities, u.LargeCommunities) {
		t.Fatal("communities mismatch")
	}
	if len(got.Announced) != 0 {
		t.Fatal("standalone attributes should carry no NLRI")
	}
}
