package bgp

import (
	"encoding/binary"
	"errors"
	"fmt"
	"net/netip"
)

// RFC 4271 message framing.
const (
	// HeaderLen is the fixed BGP message header length (marker + length + type).
	HeaderLen = 19
	// MaxMessageLen is the maximum BGP message size without the extended
	// message capability.
	MaxMessageLen = 4096
	// TypeUpdate is the UPDATE message type code.
	TypeUpdate = 2
)

// Path attribute type codes used in this repository.
const (
	attrOrigin           = 1
	attrASPath           = 2
	attrNextHop          = 3
	attrCommunities      = 8
	attrMPReachNLRI      = 14
	attrMPUnreachNLRI    = 15
	attrExtCommunities   = 16
	attrLargeCommunities = 32
)

// Path attribute flag bits.
const (
	flagOptional   = 0x80
	flagTransitive = 0x40
	flagExtLen     = 0x10
)

// AFI/SAFI values for MP_REACH/MP_UNREACH.
const (
	afiIPv4     = 1
	afiIPv6     = 2
	safiUnicast = 1
)

// Wire format errors.
var (
	ErrShortMessage  = errors.New("bgp: message truncated")
	ErrBadMarker     = errors.New("bgp: bad message marker")
	ErrBadLength     = errors.New("bgp: bad message length")
	ErrNotUpdate     = errors.New("bgp: not an UPDATE message")
	ErrBadAttributes = errors.New("bgp: malformed path attributes")
	ErrBadNLRI       = errors.New("bgp: malformed NLRI")
)

// MarshalUpdate encodes the UPDATE as a complete BGP message (header
// included) using 4-octet AS numbers in AS_PATH, the encoding used inside
// MRT BGP4MP_MESSAGE_AS4 records. IPv6 reachability is carried in
// MP_REACH_NLRI / MP_UNREACH_NLRI attributes; IPv4 uses the classic
// withdrawn-routes and NLRI fields.
func MarshalUpdate(u *Update) ([]byte, error) {
	var withdrawn4, withdrawn6, nlri4, nlri6 []netip.Prefix
	for _, p := range u.Withdrawn {
		if p.Addr().Is4() {
			withdrawn4 = append(withdrawn4, p)
		} else {
			withdrawn6 = append(withdrawn6, p)
		}
	}
	for _, p := range u.Announced {
		if p.Addr().Is4() {
			nlri4 = append(nlri4, p)
		} else {
			nlri6 = append(nlri6, p)
		}
	}

	body := make([]byte, 0, 256)

	// Withdrawn routes (IPv4).
	wr := appendPrefixes(nil, withdrawn4)
	body = binary.BigEndian.AppendUint16(body, uint16(len(wr)))
	body = append(body, wr...)

	// Path attributes.
	var attrs []byte
	hasReach := len(nlri4) > 0 || len(nlri6) > 0
	if hasReach {
		attrs = appendAttr(attrs, flagTransitive, attrOrigin, []byte{byte(u.Origin)})
		attrs = appendAttr(attrs, flagTransitive, attrASPath, marshalASPath(u.Path))
		if len(nlri4) > 0 && u.NextHop.IsValid() {
			nh := u.NextHop.As4()
			attrs = appendAttr(attrs, flagTransitive, attrNextHop, nh[:])
		}
		if len(u.Communities) > 0 {
			val := make([]byte, 0, 4*len(u.Communities))
			for _, c := range u.Communities {
				val = binary.BigEndian.AppendUint32(val, uint32(c))
			}
			attrs = appendAttr(attrs, flagOptional|flagTransitive, attrCommunities, val)
		}
		if len(u.ExtendedCommunities) > 0 {
			val := make([]byte, 0, 8*len(u.ExtendedCommunities))
			for _, ec := range u.ExtendedCommunities {
				val = append(val, ec[:]...)
			}
			attrs = appendAttr(attrs, flagOptional|flagTransitive, attrExtCommunities, val)
		}
		if len(u.LargeCommunities) > 0 {
			val := make([]byte, 0, 12*len(u.LargeCommunities))
			for _, lc := range u.LargeCommunities {
				val = binary.BigEndian.AppendUint32(val, lc.Global)
				val = binary.BigEndian.AppendUint32(val, lc.Local1)
				val = binary.BigEndian.AppendUint32(val, lc.Local2)
			}
			attrs = appendAttr(attrs, flagOptional|flagTransitive, attrLargeCommunities, val)
		}
	}
	if len(nlri6) > 0 {
		val := make([]byte, 0, 64)
		val = binary.BigEndian.AppendUint16(val, afiIPv6)
		val = append(val, safiUnicast)
		if u.NextHop.IsValid() && u.NextHop.Is6() {
			nh := u.NextHop.As16()
			val = append(val, 16)
			val = append(val, nh[:]...)
		} else {
			val = append(val, 16)
			val = append(val, make([]byte, 16)...)
		}
		val = append(val, 0) // reserved SNPA count
		val = appendPrefixes(val, nlri6)
		attrs = appendAttr(attrs, flagOptional, attrMPReachNLRI, val)
	}
	if len(withdrawn6) > 0 {
		val := make([]byte, 0, 32)
		val = binary.BigEndian.AppendUint16(val, afiIPv6)
		val = append(val, safiUnicast)
		val = appendPrefixes(val, withdrawn6)
		attrs = appendAttr(attrs, flagOptional, attrMPUnreachNLRI, val)
	}
	body = binary.BigEndian.AppendUint16(body, uint16(len(attrs)))
	body = append(body, attrs...)

	// NLRI (IPv4).
	body = appendPrefixes(body, nlri4)

	total := HeaderLen + len(body)
	if total > MaxMessageLen {
		return nil, fmt.Errorf("%w: %d bytes", ErrBadLength, total)
	}
	msg := make([]byte, 0, total)
	for i := 0; i < 16; i++ {
		msg = append(msg, 0xFF)
	}
	msg = binary.BigEndian.AppendUint16(msg, uint16(total))
	msg = append(msg, TypeUpdate)
	msg = append(msg, body...)
	return msg, nil
}

// UnmarshalUpdate decodes a complete BGP UPDATE message (header included)
// produced by MarshalUpdate or any RFC 4271-conformant sender using
// 4-octet AS_PATH encoding. Collection metadata (Time, PeerIP, PeerAS)
// is not part of the wire format and is left zero.
func UnmarshalUpdate(msg []byte) (*Update, error) {
	if len(msg) < HeaderLen {
		return nil, ErrShortMessage
	}
	for i := 0; i < 16; i++ {
		if msg[i] != 0xFF {
			return nil, ErrBadMarker
		}
	}
	total := int(binary.BigEndian.Uint16(msg[16:18]))
	if total != len(msg) || total < HeaderLen {
		return nil, fmt.Errorf("%w: header says %d, have %d", ErrBadLength, total, len(msg))
	}
	if msg[18] != TypeUpdate {
		return nil, ErrNotUpdate
	}
	body := msg[HeaderLen:]

	u := &Update{}
	// Withdrawn routes.
	if len(body) < 2 {
		return nil, ErrShortMessage
	}
	wlen := int(binary.BigEndian.Uint16(body[:2]))
	body = body[2:]
	if len(body) < wlen {
		return nil, ErrShortMessage
	}
	withdrawn, err := parsePrefixes(body[:wlen], false)
	if err != nil {
		return nil, err
	}
	u.Withdrawn = withdrawn
	body = body[wlen:]

	// Path attributes.
	if len(body) < 2 {
		return nil, ErrShortMessage
	}
	alen := int(binary.BigEndian.Uint16(body[:2]))
	body = body[2:]
	if len(body) < alen {
		return nil, ErrShortMessage
	}
	attrs := body[:alen]
	body = body[alen:]
	if err := parseAttributes(u, attrs); err != nil {
		return nil, err
	}

	// NLRI.
	nlri, err := parsePrefixes(body, false)
	if err != nil {
		return nil, err
	}
	u.Announced = append(u.Announced, nlri...)
	return u, nil
}

// MarshalPathAttributes encodes only the path-attribute section of the
// update (ORIGIN, AS_PATH, NEXT_HOP, communities and, for an IPv6 next
// hop, an MP_REACH_NLRI attribute carrying no NLRI). MRT TABLE_DUMP_V2
// RIB entries store attributes in exactly this standalone form.
func MarshalPathAttributes(u *Update) []byte {
	var attrs []byte
	attrs = appendAttr(attrs, flagTransitive, attrOrigin, []byte{byte(u.Origin)})
	attrs = appendAttr(attrs, flagTransitive, attrASPath, marshalASPath(u.Path))
	if u.NextHop.IsValid() && u.NextHop.Is4() {
		nh := u.NextHop.As4()
		attrs = appendAttr(attrs, flagTransitive, attrNextHop, nh[:])
	}
	if len(u.Communities) > 0 {
		val := make([]byte, 0, 4*len(u.Communities))
		for _, c := range u.Communities {
			val = binary.BigEndian.AppendUint32(val, uint32(c))
		}
		attrs = appendAttr(attrs, flagOptional|flagTransitive, attrCommunities, val)
	}
	if len(u.ExtendedCommunities) > 0 {
		val := make([]byte, 0, 8*len(u.ExtendedCommunities))
		for _, ec := range u.ExtendedCommunities {
			val = append(val, ec[:]...)
		}
		attrs = appendAttr(attrs, flagOptional|flagTransitive, attrExtCommunities, val)
	}
	if len(u.LargeCommunities) > 0 {
		val := make([]byte, 0, 12*len(u.LargeCommunities))
		for _, lc := range u.LargeCommunities {
			val = binary.BigEndian.AppendUint32(val, lc.Global)
			val = binary.BigEndian.AppendUint32(val, lc.Local1)
			val = binary.BigEndian.AppendUint32(val, lc.Local2)
		}
		attrs = appendAttr(attrs, flagOptional|flagTransitive, attrLargeCommunities, val)
	}
	if u.NextHop.IsValid() && u.NextHop.Is6() {
		val := make([]byte, 0, 24)
		val = binary.BigEndian.AppendUint16(val, afiIPv6)
		val = append(val, safiUnicast)
		nh := u.NextHop.As16()
		val = append(val, 16)
		val = append(val, nh[:]...)
		val = append(val, 0) // reserved SNPA count
		attrs = appendAttr(attrs, flagOptional, attrMPReachNLRI, val)
	}
	return attrs
}

// UnmarshalPathAttributes decodes a standalone path-attribute section as
// stored in MRT TABLE_DUMP_V2 RIB entries, returning an Update holding
// the decoded attributes (its prefix lists empty unless the attributes
// carried MP NLRI).
func UnmarshalPathAttributes(attrs []byte) (*Update, error) {
	u := &Update{}
	if err := parseAttributes(u, attrs); err != nil {
		return nil, err
	}
	return u, nil
}

func appendAttr(dst []byte, flags byte, code byte, val []byte) []byte {
	if len(val) > 255 {
		flags |= flagExtLen
	}
	dst = append(dst, flags, code)
	if flags&flagExtLen != 0 {
		dst = binary.BigEndian.AppendUint16(dst, uint16(len(val)))
	} else {
		dst = append(dst, byte(len(val)))
	}
	return append(dst, val...)
}

func marshalASPath(p Path) []byte {
	var out []byte
	for _, s := range p.Segments {
		if len(s.ASNs) == 0 {
			continue
		}
		out = append(out, byte(s.Type), byte(len(s.ASNs)))
		for _, a := range s.ASNs {
			out = binary.BigEndian.AppendUint32(out, uint32(a))
		}
	}
	return out
}

func parseASPath(b []byte) (Path, error) {
	var p Path
	for len(b) > 0 {
		if len(b) < 2 {
			return Path{}, ErrBadAttributes
		}
		st := SegmentType(b[0])
		n := int(b[1])
		b = b[2:]
		if st != SegmentSet && st != SegmentSequence {
			return Path{}, fmt.Errorf("%w: segment type %d", ErrBadAttributes, st)
		}
		if len(b) < 4*n {
			return Path{}, ErrBadAttributes
		}
		seg := Segment{Type: st, ASNs: make([]ASN, n)}
		for i := 0; i < n; i++ {
			seg.ASNs[i] = ASN(binary.BigEndian.Uint32(b[4*i:]))
		}
		b = b[4*n:]
		p.Segments = append(p.Segments, seg)
	}
	return p, nil
}

func parseAttributes(u *Update, attrs []byte) error {
	for len(attrs) > 0 {
		if len(attrs) < 3 {
			return ErrBadAttributes
		}
		flags, code := attrs[0], attrs[1]
		var vlen int
		if flags&flagExtLen != 0 {
			if len(attrs) < 4 {
				return ErrBadAttributes
			}
			vlen = int(binary.BigEndian.Uint16(attrs[2:4]))
			attrs = attrs[4:]
		} else {
			vlen = int(attrs[2])
			attrs = attrs[3:]
		}
		if len(attrs) < vlen {
			return ErrBadAttributes
		}
		val := attrs[:vlen]
		attrs = attrs[vlen:]

		switch code {
		case attrOrigin:
			if vlen != 1 {
				return fmt.Errorf("%w: ORIGIN length %d", ErrBadAttributes, vlen)
			}
			u.Origin = Origin(val[0])
		case attrASPath:
			p, err := parseASPath(val)
			if err != nil {
				return err
			}
			u.Path = p
		case attrNextHop:
			if vlen != 4 {
				return fmt.Errorf("%w: NEXT_HOP length %d", ErrBadAttributes, vlen)
			}
			u.NextHop = netip.AddrFrom4([4]byte(val))
		case attrCommunities:
			if vlen%4 != 0 {
				return fmt.Errorf("%w: COMMUNITIES length %d", ErrBadAttributes, vlen)
			}
			for i := 0; i < vlen; i += 4 {
				u.Communities = append(u.Communities, Community(binary.BigEndian.Uint32(val[i:])))
			}
		case attrExtCommunities:
			if vlen%8 != 0 {
				return fmt.Errorf("%w: EXT COMMUNITIES length %d", ErrBadAttributes, vlen)
			}
			for i := 0; i < vlen; i += 8 {
				u.ExtendedCommunities = append(u.ExtendedCommunities, ExtendedCommunity(val[i:i+8]))
			}
		case attrLargeCommunities:
			if vlen%12 != 0 {
				return fmt.Errorf("%w: LARGE COMMUNITIES length %d", ErrBadAttributes, vlen)
			}
			for i := 0; i < vlen; i += 12 {
				u.LargeCommunities = append(u.LargeCommunities, LargeCommunity{
					Global: binary.BigEndian.Uint32(val[i:]),
					Local1: binary.BigEndian.Uint32(val[i+4:]),
					Local2: binary.BigEndian.Uint32(val[i+8:]),
				})
			}
		case attrMPReachNLRI:
			if err := parseMPReach(u, val); err != nil {
				return err
			}
		case attrMPUnreachNLRI:
			if err := parseMPUnreach(u, val); err != nil {
				return err
			}
		default:
			// Unknown attributes are skipped (transparently ignored).
		}
	}
	return nil
}

func parseMPReach(u *Update, val []byte) error {
	if len(val) < 5 {
		return ErrBadAttributes
	}
	afi := binary.BigEndian.Uint16(val[:2])
	safi := val[2]
	nhLen := int(val[3])
	if len(val) < 4+nhLen+1 {
		return ErrBadAttributes
	}
	nh := val[4 : 4+nhLen]
	rest := val[4+nhLen:]
	// Skip reserved SNPA octet.
	rest = rest[1:]
	if safi != safiUnicast {
		return nil
	}
	v6 := afi == afiIPv6
	if v6 && nhLen >= 16 {
		u.NextHop = netip.AddrFrom16([16]byte(nh[:16]))
	}
	prefixes, err := parsePrefixes(rest, v6)
	if err != nil {
		return err
	}
	u.Announced = append(u.Announced, prefixes...)
	return nil
}

func parseMPUnreach(u *Update, val []byte) error {
	if len(val) < 3 {
		return ErrBadAttributes
	}
	afi := binary.BigEndian.Uint16(val[:2])
	safi := val[2]
	if safi != safiUnicast {
		return nil
	}
	prefixes, err := parsePrefixes(val[3:], afi == afiIPv6)
	if err != nil {
		return err
	}
	u.Withdrawn = append(u.Withdrawn, prefixes...)
	return nil
}

// appendPrefixes encodes prefixes in the RFC 4271 NLRI format: one length
// octet followed by ceil(len/8) address octets.
func appendPrefixes(dst []byte, ps []netip.Prefix) []byte {
	for _, p := range ps {
		bits := p.Bits()
		dst = append(dst, byte(bits))
		nb := (bits + 7) / 8
		if p.Addr().Is4() {
			a := p.Addr().As4()
			dst = append(dst, a[:nb]...)
		} else {
			a := p.Addr().As16()
			dst = append(dst, a[:nb]...)
		}
	}
	return dst
}

// parsePrefixes decodes RFC 4271 NLRI-encoded prefixes. v6 selects the
// address family for fields (MP attributes) where it is not implicit.
func parsePrefixes(b []byte, v6 bool) ([]netip.Prefix, error) {
	var out []netip.Prefix
	for len(b) > 0 {
		bits := int(b[0])
		b = b[1:]
		maxBits := 32
		if v6 {
			maxBits = 128
		}
		if bits > maxBits {
			return nil, fmt.Errorf("%w: prefix length %d", ErrBadNLRI, bits)
		}
		nb := (bits + 7) / 8
		if len(b) < nb {
			return nil, ErrBadNLRI
		}
		var addr netip.Addr
		if v6 {
			var a [16]byte
			copy(a[:], b[:nb])
			addr = netip.AddrFrom16(a)
		} else {
			var a [4]byte
			copy(a[:], b[:nb])
			addr = netip.AddrFrom4(a)
		}
		p, err := addr.Prefix(bits)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadNLRI, err)
		}
		out = append(out, p)
		b = b[nb:]
	}
	return out, nil
}
