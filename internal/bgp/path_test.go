package bgp

import (
	"math/rand"
	"slices"
	"testing"
	"testing/quick"
)

func TestPathBasics(t *testing.T) {
	p := NewPath(3356, 174, 65000)
	if p.IsEmpty() {
		t.Fatal("path should not be empty")
	}
	if got := p.String(); got != "3356 174 65000" {
		t.Fatalf("String = %q", got)
	}
	if first, ok := p.First(); !ok || first != 3356 {
		t.Fatalf("First = %v,%v", first, ok)
	}
	if origin, ok := p.Origin(); !ok || origin != 65000 {
		t.Fatalf("Origin = %v,%v", origin, ok)
	}
	if !p.Contains(174) || p.Contains(7018) {
		t.Fatal("Contains wrong")
	}
	if p.Len() != 3 {
		t.Fatalf("Len = %d", p.Len())
	}
	var empty Path
	if !empty.IsEmpty() {
		t.Fatal("zero path should be empty")
	}
	if _, ok := empty.Origin(); ok {
		t.Fatal("empty path has no origin")
	}
	if _, ok := empty.First(); ok {
		t.Fatal("empty path has no first")
	}
}

func TestPathPrependingRemoval(t *testing.T) {
	p := NewPath(3356, 174, 174, 174, 65000, 65000)
	got := p.WithoutPrepending()
	want := []ASN{3356, 174, 65000}
	if !slices.Equal(got, want) {
		t.Fatalf("WithoutPrepending = %v, want %v", got, want)
	}
}

func TestPathHopBefore(t *testing.T) {
	// Collector <- 3356 <- 174 <- 65000 (origin). The blackholing user of
	// provider 174 is the next hop toward the origin: 65000.
	p := NewPath(3356, 174, 174, 65000)
	user, ok := p.HopBefore(174)
	if !ok || user != 65000 {
		t.Fatalf("HopBefore(174) = %v,%v; want 65000,true", user, ok)
	}
	if _, ok := p.HopBefore(65000); ok {
		t.Fatal("origin has no hop before it")
	}
	if _, ok := p.HopBefore(7018); ok {
		t.Fatal("absent AS should report false")
	}
}

func TestPathPrepend(t *testing.T) {
	p := NewPath(174, 65000)
	q := p.Prepend(3356, 3)
	if got := q.String(); got != "3356 3356 3356 174 65000" {
		t.Fatalf("Prepend = %q", got)
	}
	// Original must be unchanged.
	if got := p.String(); got != "174 65000" {
		t.Fatalf("original mutated: %q", got)
	}
	if got := p.Prepend(3356, 0).String(); got != "174 65000" {
		t.Fatalf("Prepend n=0 = %q", got)
	}
	var empty Path
	if got := empty.Prepend(42, 2).String(); got != "42 42" {
		t.Fatalf("Prepend on empty = %q", got)
	}
}

func TestPathWithSets(t *testing.T) {
	p := Path{Segments: []Segment{
		{Type: SegmentSequence, ASNs: []ASN{3356, 174}},
		{Type: SegmentSet, ASNs: []ASN{64512, 64513}},
	}}
	if got := p.String(); got != "3356 174 {64512 64513}" {
		t.Fatalf("String = %q", got)
	}
	// AS_SET counts 1 toward path length.
	if p.Len() != 3 {
		t.Fatalf("Len = %d", p.Len())
	}
	if origin, ok := p.Origin(); !ok || origin != 64512 {
		t.Fatalf("Origin = %v,%v", origin, ok)
	}
	if !p.Contains(64513) {
		t.Fatal("Contains should see set members")
	}
}

func TestPathIndexOf(t *testing.T) {
	p := NewPath(3356, 3356, 174, 65000)
	if i := p.IndexOf(174); i != 1 {
		t.Fatalf("IndexOf(174) = %d, want 1 (prepending removed)", i)
	}
	if i := p.IndexOf(9999); i != -1 {
		t.Fatalf("IndexOf(absent) = %d", i)
	}
}

func TestPathCloneIndependence(t *testing.T) {
	p := NewPath(1, 2, 3)
	q := p.Clone()
	q.Segments[0].ASNs[0] = 99
	if p.Segments[0].ASNs[0] != 1 {
		t.Fatal("Clone shares backing storage")
	}
	if !p.Equal(p.Clone()) {
		t.Fatal("clone should equal original")
	}
	if p.Equal(q) {
		t.Fatal("mutated clone should differ")
	}
}

func TestPathEqual(t *testing.T) {
	a := NewPath(1, 2, 3)
	b := NewPath(1, 2, 3)
	if !a.Equal(b) {
		t.Fatal("identical paths unequal")
	}
	c := Path{Segments: []Segment{{Type: SegmentSet, ASNs: []ASN{1, 2, 3}}}}
	if a.Equal(c) {
		t.Fatal("set vs sequence should differ")
	}
}

// Property: WithoutPrepending never contains consecutive duplicates and
// preserves first/last elements of non-empty paths.
func TestPathWithoutPrependingProperties(t *testing.T) {
	f := func(raw []uint16, reps uint8) bool {
		if len(raw) == 0 {
			return true
		}
		r := rand.New(rand.NewSource(int64(reps)))
		var asns []ASN
		for _, v := range raw {
			n := 1 + r.Intn(3)
			for i := 0; i < n; i++ {
				asns = append(asns, ASN(v)+1)
			}
		}
		p := NewPath(asns...)
		out := p.WithoutPrepending()
		for i := 1; i < len(out); i++ {
			if out[i] == out[i-1] {
				return false
			}
		}
		return out[0] == asns[0] && out[len(out)-1] == asns[len(asns)-1]
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
