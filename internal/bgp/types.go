// Package bgp provides the core Border Gateway Protocol data model used
// throughout the repository: AS numbers, prefixes, AS paths, the three
// community attribute flavours (RFC 1997 standard, RFC 4360 extended and
// RFC 8092 large communities) and BGP UPDATE messages, together with an
// RFC 4271 wire-format encoder and decoder.
//
// The package is self-contained (standard library only) and forms the
// substrate on which the MRT archive format (package mrt), the route
// collector simulation (package collector) and the blackholing inference
// engine (package core) are built.
package bgp

import (
	"fmt"
	"net/netip"
	"strconv"
	"strings"
)

// ASN is a BGP Autonomous System number. Both 16-bit and 32-bit AS numbers
// are represented; 16-bit ASNs simply occupy the low half of the value
// space, matching the RFC 6793 "AS4" convention.
type ASN uint32

// String renders the ASN in the canonical "asplain" notation.
func (a ASN) String() string { return strconv.FormatUint(uint64(a), 10) }

// Is16Bit reports whether the ASN fits the original 2-octet AS number space.
func (a ASN) Is16Bit() bool { return a <= 0xFFFF }

// IsPrivate reports whether the ASN falls in an IANA private-use range
// (64512-65534 for 2-octet, 4200000000-4294967294 for 4-octet, RFC 6996).
func (a ASN) IsPrivate() bool {
	return (a >= 64512 && a <= 65534) || (a >= 4200000000 && a <= 4294967294)
}

// IsReserved reports whether the ASN is reserved (0, 23456 AS_TRANS,
// 65535 and the last 4-octet value, per IANA).
func (a ASN) IsReserved() bool {
	return a == 0 || a == 23456 || a == 65535 || a == 4294967295
}

// IsPublic reports whether the ASN is a routable public AS number.
func (a ASN) IsPublic() bool { return !a.IsPrivate() && !a.IsReserved() }

// Community is an RFC 1997 standard BGP community: a 32-bit value whose
// high 16 bits conventionally carry an AS number and whose low 16 bits
// carry an operator-defined tag.
type Community uint32

// Well-known communities from the IANA registry.
const (
	// CommunityNoExport is the RFC 1997 NO_EXPORT well-known community.
	CommunityNoExport Community = 0xFFFFFF01
	// CommunityNoAdvertise is the RFC 1997 NO_ADVERTISE well-known community.
	CommunityNoAdvertise Community = 0xFFFFFF02
	// CommunityBlackhole is the RFC 7999 BLACKHOLE community (65535:666).
	CommunityBlackhole Community = 0xFFFF029A
)

// MakeCommunity assembles a community from its conventional ASN:value parts.
func MakeCommunity(asn uint16, value uint16) Community {
	return Community(uint32(asn)<<16 | uint32(value))
}

// High returns the high 16 bits, conventionally an AS number.
func (c Community) High() uint16 { return uint16(c >> 16) }

// Low returns the low 16 bits, the operator-defined tag.
func (c Community) Low() uint16 { return uint16(c & 0xFFFF) }

// String renders the community in the canonical "high:low" notation.
func (c Community) String() string {
	return strconv.Itoa(int(c.High())) + ":" + strconv.Itoa(int(c.Low()))
}

// ParseCommunity parses the canonical "high:low" notation.
func ParseCommunity(s string) (Community, error) {
	head, tail, ok := strings.Cut(s, ":")
	if !ok {
		return 0, fmt.Errorf("bgp: community %q: missing ':'", s)
	}
	hi, err := strconv.ParseUint(head, 10, 16)
	if err != nil {
		return 0, fmt.Errorf("bgp: community %q: bad high part: %w", s, err)
	}
	lo, err := strconv.ParseUint(tail, 10, 16)
	if err != nil {
		return 0, fmt.Errorf("bgp: community %q: bad low part: %w", s, err)
	}
	return MakeCommunity(uint16(hi), uint16(lo)), nil
}

// MustParseCommunity is ParseCommunity that panics on error, for use in
// tests and static tables.
func MustParseCommunity(s string) Community {
	c, err := ParseCommunity(s)
	if err != nil {
		panic(err)
	}
	return c
}

// LargeCommunity is an RFC 8092 large community: three 32-bit fields
// rendered "global:local1:local2". The global administrator field holds a
// 4-octet AS number, lifting the RFC 1997 16-bit restriction.
type LargeCommunity struct {
	Global uint32
	Local1 uint32
	Local2 uint32
}

// String renders the large community in canonical notation.
func (lc LargeCommunity) String() string {
	return fmt.Sprintf("%d:%d:%d", lc.Global, lc.Local1, lc.Local2)
}

// ParseLargeCommunity parses the canonical "a:b:c" notation.
func ParseLargeCommunity(s string) (LargeCommunity, error) {
	parts := strings.Split(s, ":")
	if len(parts) != 3 {
		return LargeCommunity{}, fmt.Errorf("bgp: large community %q: want 3 fields", s)
	}
	var vals [3]uint32
	for i, p := range parts {
		v, err := strconv.ParseUint(p, 10, 32)
		if err != nil {
			return LargeCommunity{}, fmt.Errorf("bgp: large community %q: field %d: %w", s, i, err)
		}
		vals[i] = uint32(v)
	}
	return LargeCommunity{vals[0], vals[1], vals[2]}, nil
}

// ExtendedCommunity is an RFC 4360 extended community, an opaque 8-octet
// value. Only transparent carriage is required by this repository, so the
// value is kept raw; Type and SubType accessors expose the header octets.
type ExtendedCommunity [8]byte

// Type returns the high-order type octet.
func (ec ExtendedCommunity) Type() byte { return ec[0] }

// SubType returns the sub-type octet.
func (ec ExtendedCommunity) SubType() byte { return ec[1] }

// String renders the extended community as its hexadecimal octets.
func (ec ExtendedCommunity) String() string {
	return fmt.Sprintf("%02x%02x:%02x%02x%02x%02x%02x%02x",
		ec[0], ec[1], ec[2], ec[3], ec[4], ec[5], ec[6], ec[7])
}

// Origin is the BGP ORIGIN path attribute value.
type Origin uint8

// ORIGIN attribute values per RFC 4271.
const (
	OriginIGP        Origin = 0
	OriginEGP        Origin = 1
	OriginIncomplete Origin = 2
)

// String renders the origin code as in router show output.
func (o Origin) String() string {
	switch o {
	case OriginIGP:
		return "IGP"
	case OriginEGP:
		return "EGP"
	case OriginIncomplete:
		return "INCOMPLETE"
	}
	return "ORIGIN(" + strconv.Itoa(int(o)) + ")"
}

// PrefixLessSpecificThan reports whether p is less specific than bits,
// i.e. covers more address space than a /bits prefix.
func PrefixLessSpecificThan(p netip.Prefix, bits int) bool {
	return p.Bits() < bits
}

// IsHostRoute reports whether the prefix is a host route (/32 for IPv4,
// /128 for IPv6). Host routes dominate blackholing announcements.
func IsHostRoute(p netip.Prefix) bool {
	if p.Addr().Is4() {
		return p.Bits() == 32
	}
	return p.Bits() == 128
}

// MoreSpecificThan24 reports whether the prefix is more specific than the
// /24 (IPv4) or /48 (IPv6) best-practice propagation limit. Blackholing
// providers accept such routes only when tagged with a blackhole community.
func MoreSpecificThan24(p netip.Prefix) bool {
	if p.Addr().Is4() {
		return p.Bits() > 24
	}
	return p.Bits() > 48
}
