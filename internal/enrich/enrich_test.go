package enrich

import (
	"net/netip"
	"strings"
	"testing"
	"time"

	"bgpblackholing/internal/bgp"
	"bgpblackholing/internal/core"
	"bgpblackholing/internal/dictionary"
	"bgpblackholing/internal/rpki"
)

func event(prefix string, users []uint32, comms ...bgp.Community) *core.Event {
	ev := &core.Event{
		Prefix:      netip.MustParsePrefix(prefix),
		Start:       time.Date(2015, 3, 1, 0, 0, 0, 0, time.UTC),
		End:         time.Date(2015, 3, 1, 1, 0, 0, 0, time.UTC),
		Users:       map[bgp.ASN]bool{},
		Communities: map[bgp.Community]bool{},
	}
	for _, u := range users {
		ev.Users[bgp.ASN(u)] = true
	}
	for _, c := range comms {
		ev.Communities[c] = true
	}
	return ev
}

func fixtureAnnotator() *Annotator {
	reg := &rpki.Registry{}
	// AS 65001's ROA allows host routes; AS 65002's caps at the
	// aggregate, stranding its /32 blackhole announcements.
	reg.Add(rpki.ROA{Prefix: netip.MustParsePrefix("10.1.0.0/16"), MaxLength: 32, ASN: 65001})
	reg.Add(rpki.ROA{Prefix: netip.MustParsePrefix("10.2.0.0/16"), MaxLength: 16, ASN: 65002})

	dict := dictionary.New()
	dict.AddPrivate(bgp.MakeCommunity(3356, 9999), 3356, 32)
	dict.AddPrivate(bgp.MakeCommunity(174, 666), 174, 24) // caps at /24
	return New(reg, dict)
}

func TestAnnotateLegitimate(t *testing.T) {
	a := fixtureAnnotator()
	ann := a.Annotate(event("10.1.2.3/32", []uint32{65001}, bgp.MakeCommunity(3356, 9999)))
	if ann.Legitimacy != VerdictLegitimate {
		t.Fatalf("verdict = %s (%v), want legitimate", ann.Legitimacy, ann.Reasons)
	}
	if len(ann.RPKI) != 1 || ann.RPKI[0].State != "valid" || ann.RPKI[0].Origin != 65001 {
		t.Fatalf("rpki = %+v", ann.RPKI)
	}
	if len(ann.Communities) != 1 || ann.Communities[0].Doc != DocPrivate || !ann.Communities[0].WithinMaxLen {
		t.Fatalf("communities = %+v", ann.Communities)
	}
	if ann.RPKISummary() != "valid" {
		t.Fatalf("summary = %s", ann.RPKISummary())
	}
}

func TestAnnotateRPKIInvalidAllOrigins(t *testing.T) {
	a := fixtureAnnotator()
	// The §2 wrinkle: the victim's own ROA caps maxLength at /16, so
	// the /32 blackhole announcement is Invalid at its only origin.
	ann := a.Annotate(event("10.2.0.9/32", []uint32{65002}, bgp.MakeCommunity(3356, 9999)))
	if ann.Legitimacy != VerdictIllegitimate {
		t.Fatalf("verdict = %s, want illegitimate", ann.Legitimacy)
	}
	if ann.RPKISummary() != "invalid" {
		t.Fatalf("summary = %s", ann.RPKISummary())
	}
	if len(ann.Reasons) == 0 || !strings.Contains(ann.Reasons[0], "rpki-invalid") {
		t.Fatalf("reasons = %v", ann.Reasons)
	}
}

func TestAnnotateMixedOriginsQuestionable(t *testing.T) {
	a := fixtureAnnotator()
	// One origin validates, one is wrong-origin Invalid: questionable.
	ann := a.Annotate(event("10.1.2.3/32", []uint32{65001, 65002}, bgp.MakeCommunity(3356, 9999)))
	if ann.Legitimacy != VerdictQuestionable {
		t.Fatalf("verdict = %s (%v), want questionable", ann.Legitimacy, ann.Reasons)
	}
	if ann.RPKISummary() != "valid" {
		t.Fatalf("summary = %s (any-valid wins)", ann.RPKISummary())
	}
}

func TestAnnotateUndocumentedCommunity(t *testing.T) {
	a := fixtureAnnotator()
	ann := a.Annotate(event("10.1.2.3/32", []uint32{65001}, bgp.MakeCommunity(9, 9)))
	if ann.Legitimacy != VerdictIllegitimate {
		t.Fatalf("verdict = %s, want illegitimate (only community undocumented)", ann.Legitimacy)
	}
	if ann.Communities[0].Doc != DocUndocumented {
		t.Fatalf("doc = %s", ann.Communities[0].Doc)
	}
	// A documented community alongside softens it to questionable.
	ann = a.Annotate(event("10.1.2.3/32", []uint32{65001},
		bgp.MakeCommunity(9, 9), bgp.MakeCommunity(3356, 9999)))
	if ann.Legitimacy != VerdictQuestionable {
		t.Fatalf("verdict = %s, want questionable", ann.Legitimacy)
	}
}

func TestAnnotateOverMaxLen(t *testing.T) {
	a := fixtureAnnotator()
	// AS174's documented policy caps at /24; a /32 trips the length check.
	ann := a.Annotate(event("10.1.2.3/32", []uint32{65001}, bgp.MakeCommunity(174, 666)))
	if ann.Legitimacy != VerdictQuestionable {
		t.Fatalf("verdict = %s (%v), want questionable", ann.Legitimacy, ann.Reasons)
	}
	cd := ann.Communities[0]
	if cd.WithinMaxLen || cd.MaxPrefixLen != 24 {
		t.Fatalf("community doc = %+v", cd)
	}
	// At /24 the same community is fine.
	ann = a.Annotate(event("10.1.2.0/24", []uint32{65001}, bgp.MakeCommunity(174, 666)))
	if ann.Legitimacy != VerdictLegitimate {
		t.Fatalf("verdict = %s (%v), want legitimate", ann.Legitimacy, ann.Reasons)
	}
}

func TestAnnotateIPv6NotJudgedByIPv4Cap(t *testing.T) {
	reg := &rpki.Registry{}
	reg.Add(rpki.ROA{Prefix: netip.MustParsePrefix("2001:db8::/32"), MaxLength: 128, ASN: 65001})
	dict := dictionary.New()
	dict.AddPrivate(bgp.MakeCommunity(3356, 9999), 3356, 32) // IPv4-scale cap
	dict.AddPrivate(bgp.MakeCommunity(174, 666), 174, 48)    // IPv6-scale cap
	a := New(reg, dict)

	// An IPv6 /128 victim must not be condemned by a /32 cap that can
	// only describe IPv4 policy.
	ann := a.Annotate(event("2001:db8::1/128", []uint32{65001}, bgp.MakeCommunity(3356, 9999)))
	if ann.Legitimacy != VerdictLegitimate || !ann.Communities[0].WithinMaxLen {
		t.Fatalf("v6 against v4 cap: %+v", ann)
	}
	// A cap deeper than /32 does constrain IPv6.
	ann = a.Annotate(event("2001:db8::1/128", []uint32{65001}, bgp.MakeCommunity(174, 666)))
	if ann.Legitimacy != VerdictQuestionable || ann.Communities[0].WithinMaxLen {
		t.Fatalf("v6 against /48 cap: %+v", ann)
	}
}

func TestAnnotateNotFoundIsNotCondemned(t *testing.T) {
	a := fixtureAnnotator()
	// No covering ROA at all: not-found, but absence of RPKI deployment
	// is not illegitimacy.
	ann := a.Annotate(event("192.0.2.1/32", []uint32{65009}, bgp.MakeCommunity(3356, 9999)))
	if ann.Legitimacy != VerdictLegitimate {
		t.Fatalf("verdict = %s (%v), want legitimate", ann.Legitimacy, ann.Reasons)
	}
	if ann.RPKI[0].State != "not-found" || ann.RPKISummary() != "not-found" {
		t.Fatalf("rpki = %+v", ann.RPKI)
	}
}

func TestAnnotateNilWorldSections(t *testing.T) {
	a := New(nil, nil)
	ann := a.Annotate(event("10.1.2.3/32", []uint32{65001}, bgp.MakeCommunity(3356, 9999)))
	if ann.Legitimacy != VerdictLegitimate || ann.RPKI != nil || ann.Communities != nil {
		t.Fatalf("nil-world annotation = %+v", ann)
	}
}
