// Package enrich answers "was this blackholing legitimate" at query
// time: it annotates stored blackholing events with the RPKI validity
// of the victim prefix (RFC 6811, §2's RPKI-strict providers), the
// documentation status of each matched blackhole community against the
// IRR/web-derived dictionary (§4.1), and a combined legitimacy verdict
// reflecting the §10 misconfiguration classes — a victim whose ROA caps
// maxLength rendering its own /32 Invalid, announcements tagged with
// communities the provider never documented, or prefixes more specific
// than the provider's documented acceptance policy.
//
// Annotation is pure lookup over in-memory structures — the indexed ROA
// registry and the dictionary maps — so it is cheap enough to run per
// returned event on the query path.
package enrich

import (
	"fmt"
	"slices"
	"sync"

	"bgpblackholing/internal/bgp"
	"bgpblackholing/internal/core"
	"bgpblackholing/internal/dictionary"
	"bgpblackholing/internal/rpki"
	"bgpblackholing/internal/topology"
)

// Legitimacy verdicts, from clean to condemned.
const (
	// VerdictLegitimate: no origin is RPKI-Invalid, every matched
	// community is documented, and the prefix respects every documented
	// acceptance length.
	VerdictLegitimate = "legitimate"
	// VerdictQuestionable: mixed signals — some (not all) origins
	// Invalid, some (not all) communities undocumented, or a documented
	// length cap exceeded.
	VerdictQuestionable = "questionable"
	// VerdictIllegitimate: every inferred origin is RPKI-Invalid (an
	// RPKI-strict provider rejects the announcement outright), or no
	// matched community is documented anywhere.
	VerdictIllegitimate = "illegitimate"
)

// Community documentation statuses (CommunityDoc.Doc).
const (
	DocIRR          = "irr"
	DocWeb          = "web"
	DocPrivate      = "private"
	DocUndocumented = "undocumented"
)

// OriginValidity is the RFC 6811 outcome for one inferred origin.
type OriginValidity struct {
	Origin bgp.ASN `json:"origin"`
	// State is "valid", "invalid" or "not-found".
	State string `json:"state"`
}

// CommunityDoc is the documentation status of one matched community.
type CommunityDoc struct {
	Community string `json:"community"`
	// Doc is "irr", "web", "private" or "undocumented".
	Doc string `json:"doc"`
	// MaxPrefixLen is the provider's documented most-specific accepted
	// length (0 when undocumented or unstated).
	MaxPrefixLen int `json:"max_prefix_len,omitempty"`
	// WithinMaxLen reports whether the event prefix respects
	// MaxPrefixLen (true when no length is documented).
	WithinMaxLen bool `json:"within_max_len"`
}

// Annotation is the legitimacy view of one event.
type Annotation struct {
	// RPKI holds one validity per inferred origin, ascending by ASN.
	RPKI []OriginValidity `json:"rpki,omitempty"`
	// Communities holds one documentation status per matched community,
	// sorted by community notation.
	Communities []CommunityDoc `json:"community_doc,omitempty"`
	// Legitimacy is the combined verdict: "legitimate", "questionable"
	// or "illegitimate".
	Legitimacy string `json:"legitimacy"`
	// Reasons name every signal that pulled the verdict below
	// legitimate, in a stable order.
	Reasons []string `json:"reasons,omitempty"`
}

// RPKISummary folds the per-origin states into one: "valid" when any
// origin validates, else "invalid" when any covering ROA exists, else
// "not-found".
func (a Annotation) RPKISummary() string { return SummarizeRPKI(a.RPKI) }

// SummarizeRPKI folds per-origin validation states with the valid-wins
// precedence RPKISummary documents; CLI renderers use it on wire
// records, so the fold lives in exactly one place.
func SummarizeRPKI(states []OriginValidity) string {
	summary := rpki.NotFound.String()
	for _, ov := range states {
		if ov.State == rpki.Valid.String() {
			return ov.State
		}
		if ov.State == rpki.Invalid.String() {
			summary = ov.State
		}
	}
	return summary
}

// Annotator computes legitimacy annotations from a deployment's ROA
// registry and blackhole-communities dictionary. Either may be nil —
// the corresponding section is simply absent (and never condemns).
// Annotate is safe for concurrent use.
//
// Annotations are memoized per event: stored events are immutable and
// the world (registry + dictionary) is fixed for an annotator's
// lifetime, so the first annotation of an event is the answer forever.
// Repeated queries over hot prefixes — the looking-glass and dashboard
// shape — then pay a cache hit, not a re-validation. The cache grows
// with the number of distinct events annotated (one small struct each);
// build a fresh annotator if the world changes.
type Annotator struct {
	rpki  *rpki.Registry
	dict  *dictionary.Dictionary
	cache sync.Map // *core.Event -> *Annotation
}

// New builds an annotator over a registry and a dictionary.
func New(reg *rpki.Registry, dict *dictionary.Dictionary) *Annotator {
	return &Annotator{rpki: reg, dict: dict}
}

// Annotate returns the legitimacy view of one event, memoized. The
// returned annotation's slices are shared across callers and must be
// treated as read-only. The cache holds one entry per distinct event
// annotated — right for point lookups and bounded queries; full-store
// sweeps should use AnnotateUncached instead, so a single scan doesn't
// materialize an annotation per stored event (or pin erased events).
func (a *Annotator) Annotate(ev *core.Event) Annotation {
	if v, ok := a.cache.Load(ev); ok {
		return *v.(*Annotation)
	}
	ann := a.annotate(ev)
	a.cache.Store(ev, &ann)
	return ann
}

// Prime inserts a precomputed annotation for ev into the memoization
// cache. The alerting hub computes verdicts at detection time
// (AnnotateUncached on the live path, so a stalled hub subscriber can't
// bloat the cache with events nobody will query); priming afterwards
// makes the query path — /events?enrich=1, /legitimacy — serve the
// exact verdict the alert carried, without re-validating. Safe for
// concurrent use; a later Prime for the same event wins over an
// earlier one, which is harmless because annotations of an immutable
// event are deterministic.
func (a *Annotator) Prime(ev *core.Event, ann Annotation) {
	a.cache.Store(ev, &ann)
}

// AnnotateUncached computes the legitimacy view without touching the
// memoization cache (neither reading nor writing): the right call for
// one-shot streaming scans over unbounded result sets, which would
// otherwise grow the cache by the whole store.
func (a *Annotator) AnnotateUncached(ev *core.Event) Annotation {
	return a.annotate(ev)
}

// annotate computes the legitimacy view of one event.
func (a *Annotator) annotate(ev *core.Event) Annotation {
	var ann Annotation
	var reasons []string

	// (a) RFC 6811 validity of the victim prefix at each inferred
	// origin, through the registry's indexed covering lookup.
	invalid := 0
	if a.rpki != nil && len(ev.Users) > 0 {
		origins := make([]bgp.ASN, 0, len(ev.Users))
		for u := range ev.Users {
			origins = append(origins, u)
		}
		slices.Sort(origins)
		ann.RPKI = make([]OriginValidity, len(origins))
		for i, origin := range origins {
			st := a.rpki.Validate(ev.Prefix, origin)
			ann.RPKI[i] = OriginValidity{Origin: origin, State: st.String()}
			if st == rpki.Invalid {
				invalid++
				reasons = append(reasons, fmt.Sprintf("rpki-invalid at origin AS%d", origin))
			}
		}
	}

	// (b) Documentation status of each matched community, and whether
	// the victim prefix respects the documented acceptance length.
	undocumented, overLen := 0, 0
	if a.dict != nil && len(ev.Communities) > 0 {
		comms := make([]bgp.Community, 0, len(ev.Communities))
		for c := range ev.Communities {
			comms = append(comms, c)
		}
		slices.Sort(comms)
		ann.Communities = make([]CommunityDoc, len(comms))
		for i, c := range comms {
			cd := CommunityDoc{Community: c.String(), Doc: DocUndocumented, WithinMaxLen: true}
			if e := a.dict.Lookup(c); e != nil {
				cd.Doc = docString(e.Doc)
				cd.MaxPrefixLen = e.MaxPrefixLen
				// A documented cap of /32 or shorter is an IPv4-policy
				// statement; judging an IPv6 victim (up to /128) against
				// it would flag every v6 blackhole as over-length.
				capLen := e.MaxPrefixLen
				if !ev.Prefix.Addr().Is4() && capLen <= 32 {
					capLen = 0
				}
				if capLen > 0 && ev.Prefix.Bits() > capLen {
					cd.WithinMaxLen = false
					overLen++
					reasons = append(reasons, fmt.Sprintf("prefix /%d exceeds documented max /%d for community %s",
						ev.Prefix.Bits(), capLen, c))
				}
			}
			if cd.Doc == DocUndocumented {
				undocumented++
				reasons = append(reasons, fmt.Sprintf("undocumented community %s", c))
			}
			ann.Communities[i] = cd
		}
	}

	// (c) The combined verdict.
	switch {
	case len(ann.RPKI) > 0 && invalid == len(ann.RPKI):
		ann.Legitimacy = VerdictIllegitimate
	case len(ann.Communities) > 0 && undocumented == len(ann.Communities):
		ann.Legitimacy = VerdictIllegitimate
	case invalid > 0 || undocumented > 0 || overLen > 0:
		ann.Legitimacy = VerdictQuestionable
	default:
		ann.Legitimacy = VerdictLegitimate
	}
	ann.Reasons = reasons
	return ann
}

// docString renders a topology documentation source for the wire.
func docString(d topology.DocSource) string {
	switch d {
	case topology.DocIRR:
		return DocIRR
	case topology.DocWeb:
		return DocWeb
	case topology.DocPrivate:
		return DocPrivate
	}
	return DocUndocumented
}
