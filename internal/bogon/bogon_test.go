package bogon

import (
	"net/netip"
	"testing"

	"bgpblackholing/internal/bgp"
)

func TestIsBogon(t *testing.T) {
	bogons := []string{
		"10.0.0.0/8", "10.1.2.0/24", "192.168.1.0/24", "172.16.5.0/24",
		"127.0.0.1/32", "169.254.0.0/16", "224.0.0.0/8", "240.1.0.0/16",
		"100.64.0.0/10", "198.18.0.0/15", "0.0.0.0/0",
		"fc00::/7", "fe80::/10", "ff02::/16", "2001:db8::/32", "::1/128",
	}
	for _, s := range bogons {
		if !IsBogon(netip.MustParsePrefix(s)) {
			t.Errorf("IsBogon(%s) = false, want true", s)
		}
	}
	clean := []string{
		"8.8.8.0/24", "1.1.1.0/24", "185.0.0.0/16", "151.101.0.0/16",
		"2001:4860::/32", "2a00::/16",
	}
	for _, s := range clean {
		if IsBogon(netip.MustParsePrefix(s)) {
			t.Errorf("IsBogon(%s) = true, want false", s)
		}
	}
}

func TestTooCoarse(t *testing.T) {
	if !TooCoarse(netip.MustParsePrefix("8.0.0.0/7")) {
		t.Error("/7 should be too coarse")
	}
	if TooCoarse(netip.MustParsePrefix("8.0.0.0/8")) {
		t.Error("/8 should be acceptable")
	}
	if !TooCoarse(netip.MustParsePrefix("2a00::/15")) {
		t.Error("v6 /15 should be too coarse")
	}
	if TooCoarse(netip.MustParsePrefix("2a00::/16")) {
		t.Error("v6 /16 should be acceptable")
	}
}

func TestAcceptable(t *testing.T) {
	if !Acceptable(netip.MustParsePrefix("8.8.8.8/32")) {
		t.Error("host route in clean space should be acceptable")
	}
	if Acceptable(netip.MustParsePrefix("10.0.0.1/32")) {
		t.Error("RFC1918 host route should be rejected")
	}
	if Acceptable(netip.Prefix{}) {
		t.Error("zero prefix should be rejected")
	}
}

func TestCleanUpdate(t *testing.T) {
	u := &bgp.Update{
		Announced: []netip.Prefix{
			netip.MustParsePrefix("8.8.8.8/32"),
			netip.MustParsePrefix("10.0.0.1/32"), // bogon, dropped
		},
		Withdrawn: []netip.Prefix{
			netip.MustParsePrefix("192.168.0.0/16"), // bogon, dropped
			netip.MustParsePrefix("1.1.1.0/24"),
		},
	}
	got := CleanUpdate(u)
	if got == nil {
		t.Fatal("update should survive cleaning")
	}
	if len(got.Announced) != 1 || got.Announced[0].String() != "8.8.8.8/32" {
		t.Fatalf("announced = %v", got.Announced)
	}
	if len(got.Withdrawn) != 1 || got.Withdrawn[0].String() != "1.1.1.0/24" {
		t.Fatalf("withdrawn = %v", got.Withdrawn)
	}
	// Original untouched.
	if len(u.Announced) != 2 || len(u.Withdrawn) != 2 {
		t.Fatal("CleanUpdate mutated its input")
	}
}

func TestCleanUpdateAllBogons(t *testing.T) {
	u := &bgp.Update{
		Announced: []netip.Prefix{netip.MustParsePrefix("10.0.0.1/32")},
	}
	if got := CleanUpdate(u); got != nil {
		t.Fatalf("got %v, want nil for all-bogon update", got)
	}
}

func TestCleanUpdateEmptyPassthrough(t *testing.T) {
	u := &bgp.Update{}
	if got := CleanUpdate(u); got != u {
		t.Fatal("empty update should pass through unchanged")
	}
}
