// Package bogon implements the BGP data cleaning step of §3: filtering
// out non-routable, private and bogon prefixes (as published in
// Cymru-style bogon lists) and prefixes less specific than /8, which are
// obvious misconfigurations.
package bogon

import (
	"net/netip"

	"bgpblackholing/internal/bgp"
)

// ipv4Bogons is the static full-bogon table for IPv4: special-use ranges
// from RFC 6890 and friends that must never appear in the DFZ. The table
// mirrors the Team Cymru bogon reference used by the paper.
var ipv4Bogons = []netip.Prefix{
	netip.MustParsePrefix("0.0.0.0/8"),       // "this" network
	netip.MustParsePrefix("10.0.0.0/8"),      // RFC 1918
	netip.MustParsePrefix("100.64.0.0/10"),   // CGN shared space, RFC 6598
	netip.MustParsePrefix("127.0.0.0/8"),     // loopback
	netip.MustParsePrefix("169.254.0.0/16"),  // link local
	netip.MustParsePrefix("172.16.0.0/12"),   // RFC 1918
	netip.MustParsePrefix("192.0.0.0/24"),    // IETF protocol assignments
	netip.MustParsePrefix("192.0.2.0/24"),    // TEST-NET-1
	netip.MustParsePrefix("192.168.0.0/16"),  // RFC 1918
	netip.MustParsePrefix("198.18.0.0/15"),   // benchmarking
	netip.MustParsePrefix("198.51.100.0/24"), // TEST-NET-2
	netip.MustParsePrefix("203.0.113.0/24"),  // TEST-NET-3
	netip.MustParsePrefix("224.0.0.0/4"),     // multicast
	netip.MustParsePrefix("240.0.0.0/4"),     // reserved
}

// ipv6Bogons is the static full-bogon table for IPv6.
var ipv6Bogons = []netip.Prefix{
	netip.MustParsePrefix("::/8"),          // loopback, unspecified, v4-mapped
	netip.MustParsePrefix("100::/64"),      // discard only
	netip.MustParsePrefix("2001:db8::/32"), // documentation
	netip.MustParsePrefix("fc00::/7"),      // unique local
	netip.MustParsePrefix("fe80::/10"),     // link local
	netip.MustParsePrefix("ff00::/8"),      // multicast
}

// IsBogon reports whether the prefix overlaps any entry of the bogon
// table (so announcing it would leak special-use space into the DFZ).
//
// Note that the documentation/TEST-NET prefixes are bogons in the real
// Internet; the synthetic topology therefore numbers its ASes out of
// ordinary unicast space instead.
func IsBogon(p netip.Prefix) bool {
	table := ipv4Bogons
	if p.Addr().Is6() {
		table = ipv6Bogons
	}
	for _, b := range table {
		if b.Overlaps(p) {
			return true
		}
	}
	return false
}

// TooCoarse reports whether the prefix is less specific than /8 (IPv4)
// or /16 (IPv6); the paper eliminates such announcements as obvious
// misconfigurations (§3, "BGP Data Cleaning").
func TooCoarse(p netip.Prefix) bool {
	if p.Addr().Is4() {
		return p.Bits() < 8
	}
	return p.Bits() < 16
}

// Acceptable reports whether the prefix survives data cleaning: valid,
// not a bogon and not coarser than /8.
func Acceptable(p netip.Prefix) bool {
	return p.IsValid() && !IsBogon(p) && !TooCoarse(p)
}

// CleanUpdate returns the update with unacceptable prefixes removed
// from both the announced and withdrawn lists, or nil when nothing
// routable remains. An already-clean update is returned as-is (not
// copied); only an update that actually loses prefixes is deep-cloned.
// Callers must therefore treat the result as read-only — replay
// observations share their prefix and path slices across vantage
// points.
func CleanUpdate(u *bgp.Update) *bgp.Update {
	if len(u.Announced) == 0 && len(u.Withdrawn) == 0 {
		return u
	}
	// Fast path: a fully clean update (the overwhelmingly common case on
	// the replay hot path) is returned as-is, avoiding the deep clone.
	if allAcceptable(u.Announced) && allAcceptable(u.Withdrawn) {
		return u
	}
	out := u.Clone()
	out.Announced = filterPrefixes(out.Announced)
	out.Withdrawn = filterPrefixes(out.Withdrawn)
	if len(out.Announced) == 0 && len(out.Withdrawn) == 0 {
		return nil
	}
	return out
}

func allAcceptable(ps []netip.Prefix) bool {
	for _, p := range ps {
		if !Acceptable(p) {
			return false
		}
	}
	return true
}

func filterPrefixes(ps []netip.Prefix) []netip.Prefix {
	out := ps[:0]
	for _, p := range ps {
		if Acceptable(p) {
			out = append(out, p)
		}
	}
	return out
}
