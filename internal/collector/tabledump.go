package collector

import (
	"io"
	"net/netip"
	"sort"
	"time"

	"bgpblackholing/internal/mrt"
)

// WriteTableDump writes a TABLE_DUMP_V2 snapshot for one collector from
// announcement observations that are active at dumpTime: the per-peer
// routes a collector's RIB would hold, in RFC 6396 format (one
// PEER_INDEX_TABLE followed by one RIB record per prefix). This is the
// §4.2 initialisation artefact: events found in a dump have unknown
// start times.
func WriteTableDump(w io.Writer, col *Collector, obs []Observation, dumpTime time.Time) error {
	// Build the peer index from the observations' sessions.
	peerIdx := map[netip.Addr]uint16{}
	pit := &mrt.PeerIndexTable{
		Time:        dumpTime,
		CollectorID: col.IP,
		ViewName:    col.Name,
	}
	// Group per prefix.
	type entry struct {
		peer netip.Addr
		obs  Observation
	}
	byPrefix := map[netip.Prefix][]entry{}
	var prefixes []netip.Prefix
	for _, o := range obs {
		if o.Collector != col || !o.Update.IsAnnouncement() {
			continue
		}
		if _, ok := peerIdx[o.Update.PeerIP]; !ok {
			peerIdx[o.Update.PeerIP] = uint16(len(pit.Peers))
			pit.Peers = append(pit.Peers, mrt.Peer{
				BGPID: o.Update.PeerIP,
				IP:    o.Update.PeerIP,
				AS:    o.Update.PeerAS,
			})
		}
		for _, p := range o.Update.Announced {
			if len(byPrefix[p]) == 0 {
				prefixes = append(prefixes, p)
			}
			byPrefix[p] = append(byPrefix[p], entry{peer: o.Update.PeerIP, obs: o})
		}
	}
	if len(prefixes) == 0 {
		return nil
	}
	sort.Slice(prefixes, func(i, j int) bool { return prefixes[i].String() < prefixes[j].String() })

	mw := mrt.NewWriter(w)
	if err := mw.WritePeerIndexTable(pit); err != nil {
		return err
	}
	for seq, p := range prefixes {
		rib := &mrt.RIB{Time: dumpTime, Sequence: uint32(seq), Prefix: p}
		seen := map[netip.Addr]bool{}
		for _, e := range byPrefix[p] {
			if seen[e.peer] {
				continue // one route per peer in a RIB
			}
			seen[e.peer] = true
			rib.Entries = append(rib.Entries, mrt.RIBEntry{
				PeerIndex:      peerIdx[e.peer],
				OriginatedTime: e.obs.Update.Time,
				Attrs:          e.obs.Update,
			})
		}
		if err := mw.WriteRIB(rib); err != nil {
			return err
		}
	}
	return nil
}
