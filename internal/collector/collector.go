// Package collector simulates the BGP data-collection infrastructure of
// §3: RIPE RIS and Route Views collectors peering in the Internet core,
// PCH collectors at IXP route servers, and a large CDN receiving feeds
// from inside many ISPs. It also implements the policy-driven
// propagation of (blackholing) announcements from a user AS through the
// topology to every collector that can observe them.
//
// The visibility biases the paper discusses emerge from deployment
// structure: RIS/RV peer with large transit providers, PCH sees IXP
// route servers directly, and the CDN's in-network vantage points
// receive customer-specific announcements nobody else sees.
package collector

import (
	"fmt"
	"math/rand"
	"net/netip"
	"sort"
	"sync"

	"bgpblackholing/internal/bgp"
	"bgpblackholing/internal/topology"
)

// Platform identifies a collection platform.
type Platform int

// Collection platforms of §3.
const (
	PlatformRIS Platform = iota
	PlatformRV
	PlatformPCH
	PlatformCDN
)

// String names the platform as in the paper's tables.
func (p Platform) String() string {
	switch p {
	case PlatformRIS:
		return "RIS"
	case PlatformRV:
		return "RV"
	case PlatformPCH:
		return "PCH"
	case PlatformCDN:
		return "CDN"
	}
	return fmt.Sprintf("Platform(%d)", int(p))
}

// Platforms lists all platforms in table order.
func Platforms() []Platform {
	return []Platform{PlatformRIS, PlatformRV, PlatformPCH, PlatformCDN}
}

// FeedType describes what a peer session exports to the collector.
type FeedType int

// Feed types (§3: "Some BGP peers send full routing tables, others
// partial views, and even others only their customer routes").
const (
	FeedFull FeedType = iota
	FeedPartial
	FeedCustomerOnly
)

// PeerSession is one BGP session between a network and a collector.
type PeerSession struct {
	// AS is the peer's AS number (the route server's ASN for RS sessions).
	AS bgp.ASN
	// IP is the session's peer address; for IXP sessions it lies inside
	// the IXP peering LAN.
	IP netip.Addr
	// Feed describes the exported view.
	Feed FeedType
	// RouteServer marks a session with an IXP route server.
	RouteServer bool
	// IXPID is the IXP the session sits at (-1 otherwise).
	IXPID int
	// Internal marks CDN in-network sessions that receive
	// customer-specific and internal announcements (§3).
	Internal bool
}

// Collector is one route collector instance.
type Collector struct {
	Platform Platform
	Name     string
	IP       netip.Addr
	ASN      bgp.ASN
	// IXPID is the IXP the collector sits at (-1 for core collectors).
	IXPID    int
	Sessions []PeerSession
}

// RPKIValidator is the origin-validation hook RPKI-strict providers
// consult before accepting a blackhole announcement (§2). It reports
// whether the (prefix, origin) pair validates; a nil validator means
// RPKI-strict providers fall back to accepting (no RPKI deployment).
type RPKIValidator interface {
	ValidOrigin(prefix netip.Prefix, origin bgp.ASN) bool
}

// Deployment is the full set of collectors over one topology.
type Deployment struct {
	Topo       *topology.Topology
	Collectors []*Collector
	// RPKI is the optional origin-validation hook.
	RPKI RPKIValidator

	// sessionIndex maps peer AS -> collector sessions, for propagation.
	sessionsByAS map[bgp.ASN][]sessionRef
	// rsSessions maps IXP ID -> sessions with that IXP's route server.
	rsSessionsByIXP map[int][]sessionRef

	// scratch pools per-propagation dense working sets, so concurrent
	// Propagate calls stay allocation-lean.
	scratch sync.Pool
}

type sessionRef struct {
	col *Collector
	idx int
}

// Config sizes the deployment. Counts are BGP sessions per platform.
type Config struct {
	Seed        int64
	RISPeers    int // sessions at RIS collectors (425 in Table 1)
	RVPeers     int // sessions at Route Views (269)
	PCHPerIXP   int // member sessions visible via each PCH collector
	CDNPeers    int // CDN sessions (3349)
	FracFull    float64
	FracPartial float64 // remainder is customer-only
}

// DefaultConfig returns the Table 1-scale deployment.
func DefaultConfig() Config {
	return Config{
		Seed:        42,
		RISPeers:    425,
		RVPeers:     269,
		PCHPerIXP:   40,
		CDNPeers:    3349,
		FracFull:    0.35,
		FracPartial: 0.35,
	}
}

// Scaled shrinks the deployment by factor f.
func (c Config) Scaled(f float64) Config {
	s := func(n int) int {
		v := int(float64(n) * f)
		if v < 1 {
			v = 1
		}
		return v
	}
	out := c
	out.RISPeers = s(c.RISPeers)
	out.RVPeers = s(c.RVPeers)
	out.PCHPerIXP = s(c.PCHPerIXP)
	out.CDNPeers = s(c.CDNPeers)
	return out
}

// Deploy builds the deterministic collector deployment over topo.
func Deploy(topo *topology.Topology, cfg Config) *Deployment {
	r := rand.New(rand.NewSource(cfg.Seed))
	d := &Deployment{
		Topo:            topo,
		sessionsByAS:    map[bgp.ASN][]sessionRef{},
		rsSessionsByIXP: map[int][]sessionRef{},
	}

	// Candidate pools. RIS/RV bias toward the core: weight by customer
	// count. The CDN peers with everyone, including edge networks.
	var core, all []*topology.AS
	for _, asn := range topo.Order {
		as := topo.ASes[asn]
		all = append(all, as)
		for i := 0; i <= len(as.Customers); i++ {
			core = append(core, as) // weight = customers + 1
		}
	}

	feedType := func() FeedType {
		x := r.Float64()
		switch {
		case x < cfg.FracFull:
			return FeedFull
		case x < cfg.FracFull+cfg.FracPartial:
			return FeedPartial
		}
		return FeedCustomerOnly
	}

	mkAddr := func(octet2 int, n int) netip.Addr {
		return netip.AddrFrom4([4]byte{22, byte(octet2), byte(n >> 8), byte(n)})
	}

	// RIS and RV: a handful of collectors each, sessions drawn from the
	// core-biased pool.
	buildCore := func(platform Platform, prefix string, nCollectors, nPeers int, octet2 int) {
		var cols []*Collector
		for i := 0; i < nCollectors; i++ {
			cols = append(cols, &Collector{
				Platform: platform,
				Name:     fmt.Sprintf("%s%02d", prefix, i),
				IP:       mkAddr(octet2, i),
				ASN:      bgp.ASN(64900 + octet2 + i),
				IXPID:    -1,
			})
		}
		for i := 0; i < nPeers; i++ {
			as := core[r.Intn(len(core))]
			col := cols[r.Intn(len(cols))]
			col.Sessions = append(col.Sessions, PeerSession{
				AS:    as.ASN,
				IP:    mkAddr(octet2, 1000+i),
				Feed:  feedType(),
				IXPID: -1,
			})
		}
		d.Collectors = append(d.Collectors, cols...)
	}
	nRIS := 1 + cfg.RISPeers/25
	if nRIS > 21 {
		nRIS = 21
	}
	nRV := 1 + cfg.RVPeers/25
	if nRV > 15 {
		nRV = 15
	}
	buildCore(PlatformRIS, "rrc", nRIS, cfg.RISPeers, 0)
	buildCore(PlatformRV, "route-views", nRV, cfg.RVPeers, 1)

	// PCH: one collector per IXP, peering with the route server. The
	// route-server session relays what members announce to the RS.
	for _, x := range topo.IXPs {
		if !x.HasPCHCollector {
			continue
		}
		col := &Collector{
			Platform: PlatformPCH,
			Name:     fmt.Sprintf("pch-%s", x.Name),
			IP:       mkAddr(2, x.ID),
			ASN:      3856, // PCH's real ASN, reused as a constant
			IXPID:    x.ID,
		}
		col.Sessions = append(col.Sessions, PeerSession{
			AS:          x.RouteServerASN,
			IP:          x.PeeringLAN.Addr(), // RS holds the LAN base address
			Feed:        FeedFull,
			RouteServer: true,
			IXPID:       x.ID,
		})
		d.Collectors = append(d.Collectors, col)
	}

	// CDN: one logical collector, sessions everywhere including inside
	// ISPs (internal feeds).
	cdn := &Collector{
		Platform: PlatformCDN,
		Name:     "cdn",
		IP:       mkAddr(3, 0),
		ASN:      20940, // a CDN ASN constant; the CDN offers no blackholing
		IXPID:    -1,
	}
	for i := 0; i < cfg.CDNPeers; i++ {
		as := all[r.Intn(len(all))]
		cdn.Sessions = append(cdn.Sessions, PeerSession{
			AS:       as.ASN,
			IP:       mkAddr(3, 1000+i),
			Feed:     feedType(),
			IXPID:    -1,
			Internal: r.Float64() < 0.6,
		})
	}
	d.Collectors = append(d.Collectors, cdn)

	// Indexes.
	for _, col := range d.Collectors {
		for i, s := range col.Sessions {
			ref := sessionRef{col, i}
			d.sessionsByAS[s.AS] = append(d.sessionsByAS[s.AS], ref)
			if s.RouteServer {
				d.rsSessionsByIXP[s.IXPID] = append(d.rsSessionsByIXP[s.IXPID], ref)
			}
		}
	}
	return d
}

// ByPlatform returns the collectors of one platform.
func (d *Deployment) ByPlatform(p Platform) []*Collector {
	var out []*Collector
	for _, c := range d.Collectors {
		if c.Platform == p {
			out = append(out, c)
		}
	}
	return out
}

// PeerASes returns the distinct ASes peering with the platform.
func (d *Deployment) PeerASes(p Platform) []bgp.ASN {
	seen := map[bgp.ASN]bool{}
	for _, c := range d.ByPlatform(p) {
		for _, s := range c.Sessions {
			seen[s.AS] = true
		}
	}
	out := make([]bgp.ASN, 0, len(seen))
	for a := range seen {
		out = append(out, a)
	}
	return topology.SortASNs(out)
}

// SessionCount returns the total session count of a platform (the "#IP
// peers" column of Table 1).
func (d *Deployment) SessionCount(p Platform) int {
	n := 0
	for _, c := range d.ByPlatform(p) {
		n += len(c.Sessions)
	}
	return n
}

// DirectFeedProviders reports which blackholing providers have a direct
// BGP session with any collector of the platform (Table 3's last column
// denominator is all active providers).
func (d *Deployment) DirectFeedProviders(p Platform) map[bgp.ASN]bool {
	out := map[bgp.ASN]bool{}
	for _, c := range d.ByPlatform(p) {
		for _, s := range c.Sessions {
			as := d.Topo.AS(s.AS)
			if as != nil && as.OffersBlackholing() {
				out[s.AS] = true
			}
			if s.RouteServer {
				if x := d.Topo.IXPByRouteServer(s.AS); x != nil && x.Blackholing != nil {
					out[s.AS] = true
				}
			}
		}
	}
	return out
}

// HasDirectFeed reports whether the AS has a direct BGP session with
// any collector of the platform (pass platform -1 for "any platform").
func (d *Deployment) HasDirectFeed(p Platform, asn bgp.ASN) bool {
	for _, ref := range d.sessionsByAS[asn] {
		if p < 0 || ref.col.Platform == p {
			return true
		}
	}
	return false
}

// HasRSFeed reports whether the platform peers with the IXP's route
// server (pass platform -1 for "any platform").
func (d *Deployment) HasRSFeed(p Platform, ixpID int) bool {
	for _, ref := range d.rsSessionsByIXP[ixpID] {
		if p < 0 || ref.col.Platform == p {
			return true
		}
	}
	return false
}

// sortedSessionASes lists all ASes with any collector session.
func (d *Deployment) sortedSessionASes() []bgp.ASN {
	out := make([]bgp.ASN, 0, len(d.sessionsByAS))
	for a := range d.sessionsByAS {
		out = append(out, a)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
