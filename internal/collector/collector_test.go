package collector

import (
	"net/netip"
	"testing"
	"time"

	"bgpblackholing/internal/bgp"
	"bgpblackholing/internal/topology"
)

var t0 = time.Date(2017, 3, 1, 0, 0, 0, 0, time.UTC)

// fixtureWorld builds a small controlled topology:
//
//	provider(100, blackholing via 100:666, peers with RIS)
//	  └── user(200, customer, IXP member, has collector session at CDN)
//	peerAS(300, peer of user, non-filtering, peers with RV)
//	strictAS(400, peer of user, filtering)
//	IXP 0 with route server 59000, members {user, 300, 400}, PCH collector.
func fixtureWorld(t testing.TB) (*topology.Topology, *Deployment) {
	t.Helper()
	topo := &topology.Topology{ASes: map[bgp.ASN]*topology.AS{}}
	add := func(asn bgp.ASN, firstOctet byte) *topology.AS {
		as := &topology.AS{
			ASN:                  asn,
			DeclaredKind:         topology.KindTransitAccess,
			CAIDAKind:            topology.KindTransitAccess,
			Country:              "DE",
			Prefixes:             []netip.Prefix{netip.PrefixFrom(netip.AddrFrom4([4]byte{firstOctet, 0, 0, 0}), 16)},
			FiltersMoreSpecifics: true,
			HasIRRRouteObjects:   true,
		}
		topo.ASes[asn] = as
		topo.Order = append(topo.Order, asn)
		return as
	}
	provider := add(100, 30)
	user := add(200, 31)
	peerAS := add(300, 32)
	strictAS := add(400, 33)

	provider.Blackholing = &topology.BlackholeService{
		Communities:  []bgp.Community{bgp.MakeCommunity(100, 666)},
		Doc:          topology.DocIRR,
		MaxPrefixLen: 32,
		MinPrefixLen: 24,
	}
	// This provider leaks blackholed more-specifics to its collector
	// session (a minority behaviour the visibility tests rely on).
	provider.FiltersMoreSpecifics = false
	provider.Customers = []bgp.ASN{200}
	user.Providers = []bgp.ASN{100}
	user.Peers = []bgp.ASN{300, 400}
	peerAS.Peers = []bgp.ASN{200}
	strictAS.Peers = []bgp.ASN{200}
	peerAS.FiltersMoreSpecifics = false // sloppy network that leaks

	ixp := &topology.IXP{
		ID:              0,
		Name:            "IXP-TEST",
		Country:         "DE",
		RouteServerASN:  59000,
		InsertsRSASN:    false,
		PeeringLAN:      netip.MustParsePrefix("23.0.0.0/22"),
		Members:         []bgp.ASN{200, 300, 400},
		HasPCHCollector: true,
		Blackholing: &topology.BlackholeService{
			Communities:  []bgp.Community{bgp.CommunityBlackhole},
			Doc:          topology.DocWeb,
			MaxPrefixLen: 32,
			MinPrefixLen: 24,
			Shared:       true,
		},
		BlackholingIPv4: netip.MustParseAddr("23.0.0.66"),
	}
	user.IXPs = []int{0}
	peerAS.IXPs = []int{0}
	strictAS.IXPs = []int{0}
	topo.IXPs = []*topology.IXP{ixp}

	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}

	// Hand-built deployment: RIS peers with provider, RV with peerAS,
	// PCH at the IXP, CDN directly inside the user.
	d := &Deployment{
		Topo:            topo,
		sessionsByAS:    map[bgp.ASN][]sessionRef{},
		rsSessionsByIXP: map[int][]sessionRef{},
	}
	ris := &Collector{Platform: PlatformRIS, Name: "rrc00", IXPID: -1,
		IP: netip.MustParseAddr("22.0.0.1"), ASN: 64900}
	ris.Sessions = []PeerSession{{AS: 100, IP: netip.MustParseAddr("22.0.1.1"), Feed: FeedFull, IXPID: -1}}
	rv := &Collector{Platform: PlatformRV, Name: "route-views0", IXPID: -1,
		IP: netip.MustParseAddr("22.1.0.1"), ASN: 64901}
	rv.Sessions = []PeerSession{{AS: 300, IP: netip.MustParseAddr("22.1.1.1"), Feed: FeedFull, IXPID: -1}}
	pch := &Collector{Platform: PlatformPCH, Name: "pch-IXP-TEST", IXPID: 0,
		IP: netip.MustParseAddr("22.2.0.1"), ASN: 3856}
	pch.Sessions = []PeerSession{{AS: 59000, IP: netip.MustParseAddr("23.0.0.1"), Feed: FeedFull, RouteServer: true, IXPID: 0}}
	cdn := &Collector{Platform: PlatformCDN, Name: "cdn", IXPID: -1,
		IP: netip.MustParseAddr("22.3.0.1"), ASN: 20940}
	cdn.Sessions = []PeerSession{{AS: 200, IP: netip.MustParseAddr("22.3.1.1"), Feed: FeedFull, IXPID: -1, Internal: true}}
	d.Collectors = []*Collector{ris, rv, pch, cdn}
	for _, col := range d.Collectors {
		for i, s := range col.Sessions {
			ref := sessionRef{col, i}
			d.sessionsByAS[s.AS] = append(d.sessionsByAS[s.AS], ref)
			if s.RouteServer {
				d.rsSessionsByIXP[s.IXPID] = append(d.rsSessionsByIXP[s.IXPID], ref)
			}
		}
	}
	return topo, d
}

func victimPrefix() netip.Prefix { return netip.MustParsePrefix("31.0.0.1/32") }

func TestPropagateProviderAcceptsBlackhole(t *testing.T) {
	_, d := fixtureWorld(t)
	res := d.Propagate(Announcement{
		Time:            t0,
		User:            200,
		Prefix:          victimPrefix(),
		Communities:     []bgp.Community{bgp.MakeCommunity(100, 666)},
		TargetProviders: []bgp.ASN{100},
	})
	if !res.DroppingASes[100] {
		t.Fatal("provider did not install the blackhole")
	}
	// The RIS session with the provider must observe the route with the
	// provider first on path.
	var seen bool
	for _, o := range res.Observations {
		if o.Collector.Platform == PlatformRIS {
			seen = true
			if first, _ := o.Update.Path.First(); first != 100 {
				t.Fatalf("RIS path = %v", o.Update.Path)
			}
			if !o.Update.HasCommunity(bgp.MakeCommunity(100, 666)) {
				t.Fatal("blackhole community lost on observation")
			}
		}
	}
	if !seen {
		t.Fatal("RIS did not observe the blackholed prefix")
	}
}

func TestPropagateRejectsWithoutCommunity(t *testing.T) {
	_, d := fixtureWorld(t)
	res := d.Propagate(Announcement{
		Time:            t0,
		User:            200,
		Prefix:          victimPrefix(),
		TargetProviders: []bgp.ASN{100},
	})
	if res.DroppingASes[100] {
		t.Fatal("provider accepted an untagged /32")
	}
}

func TestPropagateNoExportStopsLeaking(t *testing.T) {
	_, d := fixtureWorld(t)
	res := d.Propagate(Announcement{
		Time:        t0,
		User:        200,
		Prefix:      victimPrefix(),
		Communities: []bgp.Community{bgp.MakeCommunity(100, 666)},
		NoExport:    true,
		Bundled:     true,
	})
	// peerAS(300) is non-filtering and would leak, but NO_EXPORT stops
	// re-export beyond the first hop; RV still sees 300's own view.
	for _, o := range res.Observations {
		if o.Collector.Platform == PlatformRV {
			flat := o.Update.Path.Flatten()
			if len(flat) > 2 {
				t.Fatalf("NO_EXPORT leaked %v", flat)
			}
		}
	}
}

func TestPropagateBundledReachesCDNDirectly(t *testing.T) {
	_, d := fixtureWorld(t)
	res := d.Propagate(Announcement{
		Time:        t0,
		User:        200,
		Prefix:      victimPrefix(),
		Communities: []bgp.Community{bgp.MakeCommunity(100, 666), bgp.CommunityBlackhole},
		Bundled:     true,
	})
	var cdnSeen bool
	for _, o := range res.Observations {
		if o.Collector.Platform == PlatformCDN {
			cdnSeen = true
			// Direct session with the user: path is just the user, and
			// the bundled communities are fully visible.
			if first, _ := o.Update.Path.First(); first != 200 {
				t.Fatalf("CDN path = %v", o.Update.Path)
			}
			if !o.Update.HasCommunity(bgp.CommunityBlackhole) {
				t.Fatal("bundled community missing at CDN")
			}
		}
	}
	if !cdnSeen {
		t.Fatal("CDN missed the user's own announcement")
	}
	// Bundling also reaches the IXP route server.
	if len(res.AcceptedIXPs) != 1 || res.AcceptedIXPs[0] != 0 {
		t.Fatalf("AcceptedIXPs = %v", res.AcceptedIXPs)
	}
}

func TestPropagateIXPObservationShape(t *testing.T) {
	topo, d := fixtureWorld(t)
	res := d.Propagate(Announcement{
		Time:        t0,
		User:        200,
		Prefix:      victimPrefix(),
		Communities: []bgp.Community{bgp.CommunityBlackhole},
		TargetIXPs:  []int{0},
	})
	var pchObs *Observation
	for i := range res.Observations {
		if res.Observations[i].Collector.Platform == PlatformPCH {
			pchObs = &res.Observations[i]
		}
	}
	if pchObs == nil {
		t.Fatal("PCH did not observe the IXP blackhole")
	}
	x := topo.IXPs[0]
	// Transparent route server: peer-as is the member, peer-ip inside
	// the peering LAN, next hop is the blackholing IP.
	if pchObs.Update.PeerAS != 200 {
		t.Fatalf("peer AS = %v", pchObs.Update.PeerAS)
	}
	if !x.PeeringLAN.Contains(pchObs.Update.PeerIP) {
		t.Fatalf("peer IP %v outside LAN", pchObs.Update.PeerIP)
	}
	if pchObs.Update.NextHop != x.BlackholingIPv4 {
		t.Fatalf("next hop = %v, want %v", pchObs.Update.NextHop, x.BlackholingIPv4)
	}
	// Dropping members exclude the user itself.
	if res.DroppingIXPMembers[0][200] {
		t.Fatal("user listed as dropping member")
	}
	if len(res.DroppingIXPMembers[0]) == 0 {
		t.Fatal("no members honour the blackhole")
	}
}

func TestPropagateIXPInsertsRSASN(t *testing.T) {
	topo, d := fixtureWorld(t)
	topo.IXPs[0].InsertsRSASN = true
	res := d.Propagate(Announcement{
		Time:        t0,
		User:        200,
		Prefix:      victimPrefix(),
		Communities: []bgp.Community{bgp.CommunityBlackhole},
		TargetIXPs:  []int{0},
	})
	for _, o := range res.Observations {
		if o.Collector.Platform == PlatformPCH {
			flat := o.Update.Path.Flatten()
			if len(flat) != 2 || flat[0] != 59000 || flat[1] != 200 {
				t.Fatalf("path = %v, want [59000 200]", flat)
			}
			if o.Update.PeerAS != 59000 {
				t.Fatalf("peer AS = %v, want RS", o.Update.PeerAS)
			}
		}
	}
}

func TestPropagateIXPIRRRejection(t *testing.T) {
	topo, d := fixtureWorld(t)
	topo.IXPs[0].Blackholing.RequiresIRRRegistration = true
	topo.ASes[200].HasIRRRouteObjects = false
	res := d.Propagate(Announcement{
		Time:        t0,
		User:        200,
		Prefix:      victimPrefix(),
		Communities: []bgp.Community{bgp.CommunityBlackhole},
		TargetIXPs:  []int{0},
	})
	if len(res.AcceptedIXPs) != 0 {
		t.Fatal("IXP accepted despite missing IRR objects")
	}
	if len(res.Rejections) != 1 || res.Rejections[0].Reason != "prefix not registered in IRR" {
		t.Fatalf("rejections = %v", res.Rejections)
	}
}

func TestPropagateIXPWrongCommunity(t *testing.T) {
	_, d := fixtureWorld(t)
	res := d.Propagate(Announcement{
		Time:        t0,
		User:        200,
		Prefix:      victimPrefix(),
		Communities: []bgp.Community{bgp.MakeCommunity(999, 1)},
		TargetIXPs:  []int{0},
	})
	if len(res.AcceptedIXPs) != 0 {
		t.Fatal("IXP accepted a wrong community")
	}
	if len(res.Rejections) != 1 || res.Rejections[0].Reason != "wrong BGP community" {
		t.Fatalf("rejections = %v", res.Rejections)
	}
}

func TestPropagateNonMemberCannotUseIXP(t *testing.T) {
	topo, d := fixtureWorld(t)
	// provider(100) is not an IXP member.
	_ = topo
	res := d.Propagate(Announcement{
		Time:        t0,
		User:        100,
		Prefix:      netip.MustParsePrefix("30.0.0.1/32"),
		Communities: []bgp.Community{bgp.CommunityBlackhole},
		TargetIXPs:  []int{0},
	})
	if len(res.AcceptedIXPs) != 0 || len(res.Rejections) != 0 {
		t.Fatalf("non-member handled: %v %v", res.AcceptedIXPs, res.Rejections)
	}
}

func TestPropagateAuthenticationRejectsForeignPrefix(t *testing.T) {
	_, d := fixtureWorld(t)
	// User 200 tries to blackhole address space originated by 300.
	res := d.Propagate(Announcement{
		Time:            t0,
		User:            200,
		Prefix:          netip.MustParsePrefix("32.0.0.1/32"), // 300's space
		Communities:     []bgp.Community{bgp.MakeCommunity(100, 666)},
		TargetProviders: []bgp.ASN{100},
	})
	if res.DroppingASes[100] {
		t.Fatal("provider blackholed a prefix outside the user's cone")
	}
}

func TestWithdrawMatchesObservers(t *testing.T) {
	_, d := fixtureWorld(t)
	res := d.Propagate(Announcement{
		Time:        t0,
		User:        200,
		Prefix:      victimPrefix(),
		Communities: []bgp.Community{bgp.MakeCommunity(100, 666), bgp.CommunityBlackhole},
		Bundled:     true,
	})
	w := d.Withdraw(res, t0.Add(10*time.Minute))
	if len(w) != len(res.Observations) {
		t.Fatalf("withdrawals %d != observations %d", len(w), len(res.Observations))
	}
	for i, o := range w {
		if !o.Update.IsWithdrawal() || o.Update.IsAnnouncement() {
			t.Fatalf("withdrawal %d malformed: %v", i, o.Update)
		}
		if o.Update.PeerIP != res.Observations[i].Update.PeerIP {
			t.Fatal("withdrawal peer mismatch")
		}
		if !o.Update.Time.Equal(t0.Add(10 * time.Minute)) {
			t.Fatal("withdrawal time wrong")
		}
	}
}

func TestReannounceWithoutStripsCommunities(t *testing.T) {
	_, d := fixtureWorld(t)
	res := d.Propagate(Announcement{
		Time:        t0,
		User:        200,
		Prefix:      victimPrefix(),
		Communities: []bgp.Community{bgp.MakeCommunity(100, 666)},
		Bundled:     true,
	})
	re := d.ReannounceWithout(res, t0.Add(time.Hour))
	if len(re) != len(res.Observations) {
		t.Fatal("reannouncement count mismatch")
	}
	for _, o := range re {
		if len(o.Update.Communities) != 0 {
			t.Fatal("communities survived implicit withdrawal")
		}
		if !o.Update.IsAnnouncement() {
			t.Fatal("reannouncement lost NLRI")
		}
	}
}

func TestDeployGeneratedWorld(t *testing.T) {
	topo, err := topology.Generate(topology.DefaultConfig().Scaled(0.15))
	if err != nil {
		t.Fatal(err)
	}
	d := Deploy(topo, DefaultConfig().Scaled(0.15))
	if d.SessionCount(PlatformRIS) == 0 || d.SessionCount(PlatformCDN) == 0 {
		t.Fatal("missing sessions")
	}
	// PCH has one collector per IXP with a collector.
	nPCH := len(d.ByPlatform(PlatformPCH))
	if nPCH != len(topo.IXPs) {
		t.Fatalf("PCH collectors = %d, want %d", nPCH, len(topo.IXPs))
	}
	for _, c := range d.ByPlatform(PlatformPCH) {
		if len(c.Sessions) != 1 || !c.Sessions[0].RouteServer {
			t.Fatal("PCH collector must have exactly the RS session")
		}
	}
	if len(d.PeerASes(PlatformCDN)) == 0 {
		t.Fatal("CDN has no peer ASes")
	}
}

func TestTable1Shape(t *testing.T) {
	topo, err := topology.Generate(topology.DefaultConfig().Scaled(0.15))
	if err != nil {
		t.Fatal(err)
	}
	d := Deploy(topo, DefaultConfig().Scaled(0.15))
	rows := d.Table1()
	if len(rows) != 5 {
		t.Fatalf("rows = %d, want 4 platforms + total", len(rows))
	}
	byPlat := map[Platform]VisibilityStats{}
	for _, r := range rows[:4] {
		byPlat[r.Platform] = r
	}
	// The CDN's internal feeds give it the most prefixes and by far the
	// most unique prefixes (Table 1's headline observation).
	cdn := byPlat[PlatformCDN]
	for _, p := range []Platform{PlatformRIS, PlatformRV, PlatformPCH} {
		if cdn.Prefixes < byPlat[p].Prefixes {
			t.Errorf("CDN prefixes %d < %s prefixes %d", cdn.Prefixes, p, byPlat[p].Prefixes)
		}
	}
	if cdn.UniquePrefixes == 0 {
		t.Error("CDN should see unique (internal) prefixes")
	}
	total := rows[4]
	if total.Prefixes < cdn.Prefixes {
		t.Error("total row smaller than CDN row")
	}
}

func TestOrdinaryUpdatesCarryTECommunities(t *testing.T) {
	topo, err := topology.Generate(topology.DefaultConfig().Scaled(0.1))
	if err != nil {
		t.Fatal(err)
	}
	d := Deploy(topo, DefaultConfig().Scaled(0.1))
	obs := d.OrdinaryUpdates(t0, 500)
	if len(obs) == 0 {
		t.Fatal("no ordinary updates")
	}
	for _, o := range obs {
		if len(o.Update.Communities) == 0 {
			t.Fatal("ordinary update without communities")
		}
		as := topo.AS(o.Update.PeerAS)
		for _, c := range o.Update.Communities {
			found := false
			for _, rc := range as.RoutingCommunities {
				if rc == c {
					found = true
				}
			}
			if !found {
				t.Fatalf("update carries community %s the peer does not document", c)
			}
		}
	}
}

func TestPlatformString(t *testing.T) {
	if PlatformRIS.String() != "RIS" || PlatformCDN.String() != "CDN" || Platform(9).String() != "Platform(9)" {
		t.Fatal("platform strings wrong")
	}
}
