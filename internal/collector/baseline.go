package collector

import (
	"net/netip"
	"time"

	"bgpblackholing/internal/bgp"
	"bgpblackholing/internal/topology"
)

// internalPrefixes derives the customer-specific/internal more-specifics
// a CDN in-network session additionally receives from its host AS (§3:
// the CDN's unique view). They are never exported into the public DFZ.
func internalPrefixes(as *topology.AS) []netip.Prefix {
	if len(as.Prefixes) == 0 {
		return nil
	}
	base := as.Prefixes[0].Addr().As4()
	n := 2 + int(detHash(uint64(as.ASN))%4)
	out := make([]netip.Prefix, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, netip.PrefixFrom(
			netip.AddrFrom4([4]byte{base[0], base[1], byte(200 + i), 0}), 24))
	}
	return out
}

// exportedPrefixes enumerates the prefixes one session exports to its
// collector, honouring the feed type.
func (d *Deployment) exportedPrefixes(s PeerSession, allPrefixes []netip.Prefix) []netip.Prefix {
	topo := d.Topo
	var out []netip.Prefix
	switch {
	case s.RouteServer:
		// The route server relays what members announce to it: their own
		// prefixes and their customer cones'.
		x := topo.IXPByRouteServer(s.AS)
		if x == nil {
			return nil
		}
		seen := map[bgp.ASN]bool{}
		for _, m := range x.Members {
			for a := range topo.CustomerCone(m) {
				if !seen[a] {
					seen[a] = true
					out = append(out, topo.AS(a).Prefixes...)
				}
			}
		}
	case s.Feed == FeedFull:
		out = append(out, allPrefixes...)
	case s.Feed == FeedPartial:
		for _, p := range allPrefixes {
			if detHash(uint64(s.AS), prefixHash(p))%2 == 0 {
				out = append(out, p)
			}
		}
	case s.Feed == FeedCustomerOnly:
		for a := range topo.CustomerCone(s.AS) {
			out = append(out, topo.AS(a).Prefixes...)
		}
	}
	if s.Internal {
		out = append(out, internalPrefixes(topo.AS(s.AS))...)
	}
	return out
}

// allPublicPrefixes lists every publicly originated prefix.
func (d *Deployment) allPublicPrefixes() []netip.Prefix {
	var out []netip.Prefix
	for _, asn := range d.Topo.Order {
		out = append(out, d.Topo.AS(asn).Prefixes...)
	}
	return out
}

// PlatformPrefixes returns the set of distinct prefixes visible at one
// platform (the "#Prefixes" column of Table 1).
func (d *Deployment) PlatformPrefixes(p Platform) map[netip.Prefix]bool {
	all := d.allPublicPrefixes()
	out := map[netip.Prefix]bool{}
	for _, col := range d.ByPlatform(p) {
		for _, s := range col.Sessions {
			for _, pfx := range d.exportedPrefixes(s, all) {
				out[pfx] = true
			}
		}
	}
	return out
}

// VisibilityStats is one row of Table 1.
type VisibilityStats struct {
	Platform       Platform
	IPPeers        int
	ASPeers        int
	UniqueASPeers  int
	Prefixes       int
	UniquePrefixes int
}

// Table1 computes the dataset-overview statistics across all platforms
// plus the combined total row.
func (d *Deployment) Table1() []VisibilityStats {
	platforms := Platforms()
	prefixSets := make([]map[netip.Prefix]bool, len(platforms))
	peerSets := make([]map[bgp.ASN]bool, len(platforms))
	for i, p := range platforms {
		prefixSets[i] = d.PlatformPrefixes(p)
		peerSets[i] = map[bgp.ASN]bool{}
		for _, a := range d.PeerASes(p) {
			peerSets[i][a] = true
		}
	}
	var rows []VisibilityStats
	totalPrefixes := map[netip.Prefix]bool{}
	totalPeers := map[bgp.ASN]bool{}
	totalSessions := 0
	for i, p := range platforms {
		uniqueP := 0
		for pfx := range prefixSets[i] {
			only := true
			for j := range platforms {
				if j != i && prefixSets[j][pfx] {
					only = false
					break
				}
			}
			if only {
				uniqueP++
			}
			totalPrefixes[pfx] = true
		}
		uniqueA := 0
		for a := range peerSets[i] {
			only := true
			for j := range platforms {
				if j != i && peerSets[j][a] {
					only = false
					break
				}
			}
			if only {
				uniqueA++
			}
			totalPeers[a] = true
		}
		rows = append(rows, VisibilityStats{
			Platform:       p,
			IPPeers:        d.SessionCount(p),
			ASPeers:        len(peerSets[i]),
			UniqueASPeers:  uniqueA,
			Prefixes:       len(prefixSets[i]),
			UniquePrefixes: uniqueP,
		})
		totalSessions += d.SessionCount(p)
	}
	totalUnique := 0
	for range totalPrefixes {
		totalUnique++
	}
	rows = append(rows, VisibilityStats{
		Platform:       -1, // total row
		IPPeers:        totalSessions,
		ASPeers:        len(totalPeers),
		UniqueASPeers:  len(totalPeers),
		Prefixes:       len(totalPrefixes),
		UniquePrefixes: totalUnique,
	})
	return rows
}

// OrdinaryUpdates synthesises a day's worth of routine BGP churn: peers
// re-announce prefixes they export, tagged with the informational
// communities of the announcing AS — the background against which
// Figure 2 contrasts blackhole communities. n bounds the number of
// updates produced.
func (d *Deployment) OrdinaryUpdates(t time.Time, n int) []Observation {
	all := d.allPublicPrefixes()
	var out []Observation
	i := 0
	for _, col := range d.Collectors {
		for _, s := range col.Sessions {
			if s.RouteServer {
				continue
			}
			as := d.Topo.AS(s.AS)
			if as == nil || len(as.RoutingCommunities) == 0 {
				continue
			}
			exported := d.exportedPrefixes(s, all)
			for _, pfx := range exported {
				if len(out) >= n {
					return out
				}
				if detHash(uint64(s.AS), prefixHash(pfx), 7)%16 != 0 {
					continue // only a sample churns on a given day
				}
				origin := d.Topo.OriginOf(pfx)
				if origin == 0 {
					continue
				}
				nc := 1 + int(detHash(uint64(s.AS), prefixHash(pfx))%uint64(len(as.RoutingCommunities)))
				u := &bgp.Update{
					Time:        t.Add(time.Duration(i) * time.Second),
					PeerIP:      s.IP,
					PeerAS:      s.AS,
					Announced:   []netip.Prefix{pfx},
					Origin:      bgp.OriginIGP,
					Path:        bgp.NewPath(s.AS, origin),
					NextHop:     s.IP,
					Communities: as.RoutingCommunities[:nc],
				}
				out = append(out, Observation{Collector: col, Session: s, Update: u})
				i++
			}
		}
	}
	return out
}
