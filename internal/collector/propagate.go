package collector

import (
	"net/netip"
	"sort"
	"time"

	"bgpblackholing/internal/bgp"
	"bgpblackholing/internal/topology"
)

// Announcement is an intent by a user AS to announce (typically
// blackhole) a prefix into BGP.
type Announcement struct {
	Time   time.Time
	User   bgp.ASN
	Prefix netip.Prefix
	// Communities is the community set attached to the announcement —
	// for blackholing, the trigger communities of every intended
	// provider ("bundling" when several are combined, §4.2).
	Communities      []bgp.Community
	LargeCommunities []bgp.LargeCommunity
	// NoExport attaches the RFC 1997 NO_EXPORT community, which
	// RFC 7999 requires on blackhole routes; many networks omit it.
	NoExport bool

	// TargetProviders are the AS-level neighbors explicitly announced
	// to. TargetIXPs are IXPs whose route server is announced to.
	TargetProviders []bgp.ASN
	TargetIXPs      []int
	// Bundled sends the same tagged announcement to every BGP neighbor
	// of the user (including neighbors that offer no blackholing) and
	// to the route servers of all the user's IXPs — the behaviour that
	// makes half the paper's inferences possible.
	Bundled bool
}

// Observation is one update as seen by one collector session.
type Observation struct {
	Collector *Collector
	Session   PeerSession
	Update    *bgp.Update
}

// IXPReject records an announcement an IXP route server refused, with
// the misconfiguration reason (§10).
type IXPReject struct {
	IXPID  int
	Reason string
}

// Result summarises one announcement's propagation.
type Result struct {
	// Prefix and User echo the announcement, so data-plane experiments
	// can link drop sets back to events.
	Prefix netip.Prefix
	User   bgp.ASN
	// Observations lists every collector observation, in deterministic
	// order.
	Observations []Observation
	// DroppingASes is the set of AS-level providers that installed a
	// null route (traffic to the prefix dies at their ingress).
	DroppingASes map[bgp.ASN]bool
	// DroppingIXPMembers maps IXP ID to the members honouring the
	// blackhole (dropping traffic toward the IXP next-hop).
	DroppingIXPMembers map[int]map[bgp.ASN]bool
	// AcceptedIXPs lists IXPs whose route server accepted the request.
	AcceptedIXPs []int
	// Rejections lists route-server refusals.
	Rejections []IXPReject

	// dropStates tracks the route state at each dropping AS, feeding
	// the inter-provider escalation pass.
	dropStates map[bgp.ASN]routeState

	// announced is the single-prefix NLRI slice shared by every update
	// of this propagation (and by the matching withdrawal, which reuses
	// it as its Withdrawn list). Treated as read-only downstream.
	announced []netip.Prefix
	// arena block-allocates the observation updates.
	arena updateArena
}

// updateArena hands out updates from fixed-size blocks, so a propagation
// touching hundreds of collector sessions costs a handful of allocations
// instead of one per observation. Pointers stay valid because blocks are
// never grown, only consumed front to back.
type updateArena struct {
	block []bgp.Update
}

const arenaBlockSize = 64

func (a *updateArena) next() *bgp.Update {
	if len(a.block) == 0 {
		a.block = make([]bgp.Update, arenaBlockSize)
	}
	u := &a.block[0]
	a.block = a.block[1:]
	return u
}

// routeState tracks the route as held by one AS during propagation.
type routeState struct {
	as    bgp.ASN
	path  []bgp.ASN // from holder to user, holder first
	comms []bgp.Community
	large []bgp.LargeCommunity
	// fromCustomer reports whether the holder learned the route from a
	// customer (or originated it), governing valley-free export.
	fromCustomer bool
}

// maxPropagationHops bounds how far a leaked blackhole route travels.
const maxPropagationHops = 6

// detHash is a deterministic mixing hash for policy coin flips.
func detHash(parts ...uint64) uint64 {
	h := uint64(14695981039346656037)
	for _, p := range parts {
		for i := 0; i < 8; i++ {
			h ^= (p >> (8 * i)) & 0xFF
			h *= 1099511628211
		}
	}
	return h
}

// honorsIXPBlackhole reports whether an IXP member installs the
// blackhole next-hop for route-server blackhole announcements. Roughly
// 80% do; the rest have stale router configurations or bypass the route
// server (§10).
func honorsIXPBlackhole(member bgp.ASN, ixpID int) bool {
	return detHash(uint64(member), uint64(ixpID))%10 < 8
}

// usesRouteServer reports whether a member maintains a session with the
// IXP route server at all (about 60% do; the rest peer bilaterally and
// their bundled announcements never reach the RS).
func usesRouteServer(member bgp.ASN, ixpID int) bool {
	return detHash(uint64(member), uint64(ixpID), 0xA5)%10 < 6
}

// providerBlackholeNextHop is the null-interface address a provider AS
// sets as next hop for blackholed prefixes.
func providerBlackholeNextHop(as *topology.AS) netip.Addr {
	if len(as.Prefixes) == 0 {
		return netip.Addr{}
	}
	b := as.Prefixes[0].Addr().As4()
	return netip.AddrFrom4([4]byte{b[0], b[1], 0, 66})
}

// propScratch holds the dense per-propagation working state, pooled on
// the Deployment so concurrent Propagate calls (day-sharded replay) each
// get their own buffers without per-call map allocation.
type propScratch struct {
	visited []bool // keyed by topology dense index
	seenT   []bool // initial-target dedup, same keying
	queue   []routeState
	initial []bgp.ASN
	xids    []int
}

func (d *Deployment) getScratch(n int) *propScratch {
	sc, _ := d.scratch.Get().(*propScratch)
	if sc == nil {
		sc = &propScratch{}
	}
	if cap(sc.visited) < n {
		sc.visited = make([]bool, n)
		sc.seenT = make([]bool, n)
	} else {
		sc.visited = sc.visited[:n]
		sc.seenT = sc.seenT[:n]
		clear(sc.visited)
		clear(sc.seenT)
	}
	sc.queue = sc.queue[:0]
	sc.initial = sc.initial[:0]
	sc.xids = sc.xids[:0]
	return sc
}

// Propagate pushes the announcement through the topology under
// valley-free and prefix-length policies and returns everything the
// collectors observed plus the resulting data-plane drop set.
// It is safe to call concurrently.
func (d *Deployment) Propagate(a Announcement) *Result {
	res := &Result{
		Prefix:             a.Prefix,
		User:               a.User,
		DroppingASes:       map[bgp.ASN]bool{},
		DroppingIXPMembers: map[int]map[bgp.ASN]bool{},
		dropStates:         map[bgp.ASN]routeState{},
		announced:          []netip.Prefix{a.Prefix},
	}
	topo := d.Topo
	user := topo.AS(a.User)
	if user == nil {
		return res
	}
	sc := d.getScratch(topo.NumIndexed())
	defer d.scratch.Put(sc)

	comms := append([]bgp.Community(nil), a.Communities...)
	if a.NoExport {
		comms = append(comms, bgp.CommunityNoExport)
	}

	// The user itself holds the route (it originates it). Its own
	// collector sessions observe it only for bundled announcements: a
	// targeted announcement goes to the named providers alone, while a
	// bundled one goes to every BGP neighbor — including any route
	// collector the user feeds (§4.2, Fig 3).
	origin := routeState{
		as:           a.User,
		path:         []bgp.ASN{a.User},
		comms:        comms,
		large:        a.LargeCommunities,
		fromCustomer: true,
	}
	if a.Bundled {
		d.observe(res, a, origin)
	}

	// Initial AS-level recipients, deduplicated through the dense index.
	addT := func(asn bgp.ASN) {
		if asn == a.User {
			return
		}
		if i := topo.Index(asn); i >= 0 && !sc.seenT[i] {
			sc.seenT[i] = true
			sc.initial = append(sc.initial, asn)
		}
	}
	addXID := func(xid int) {
		sc.xids = append(sc.xids, xid)
	}
	for _, x := range a.TargetIXPs {
		addXID(x)
	}
	if a.Bundled {
		for _, n := range topo.Neighbors(a.User) {
			addT(n)
		}
		// The bundled announcement also reaches the route servers of the
		// user's IXPs — but only where the user actually maintains an RS
		// session, and only IXPs whose blackhole community is in the
		// bundle act on it; the rest treat it as an ordinary
		// too-specific route and drop it silently.
		for _, xid := range user.IXPs {
			x := topo.IXPs[xid]
			if x.Blackholing != nil && usesRouteServer(a.User, xid) &&
				matchesService(x.Blackholing, comms, a.LargeCommunities) {
				addXID(xid)
			}
		}
	} else {
		for _, p := range a.TargetProviders {
			addT(p)
		}
	}

	// BFS propagation among ASes: dense visited set, index-head queue
	// (no per-pop reslicing).
	visited := sc.visited
	if i := topo.Index(a.User); i >= 0 {
		visited[i] = true
	}
	queue := sc.queue
	for _, n := range sc.initial {
		queue = append(queue, d.receive(res, a, origin, n))
	}
	for head := 0; head < len(queue); head++ {
		cur := queue[head]
		if cur.as == 0 {
			continue
		}
		ci := topo.Index(cur.as)
		if ci < 0 || visited[ci] {
			continue
		}
		visited[ci] = true
		d.observe(res, a, cur)
		if len(cur.path) > maxPropagationHops {
			continue
		}
		for _, next := range d.exportTargets(cur, a) {
			if ni := topo.Index(next); ni >= 0 && !visited[ni] {
				queue = append(queue, d.receive(res, a, cur, next))
			}
		}
	}
	sc.queue = queue // return grown buffer to the pool

	// Inter-provider RTBH escalation: a provider that accepted a
	// customer blackhole request commonly forwards it to its own
	// upstreams (tagged with their trigger communities) to shed the
	// attack traffic before it enters its network. This is what pushes
	// the data-plane drop point 2-4 AS hops away from the victim (§10).
	d.escalate(res, a)

	// IXP route-server handling, in deterministic deduplicated order.
	sort.Ints(sc.xids)
	for i, xid := range sc.xids {
		if i > 0 && xid == sc.xids[i-1] {
			continue
		}
		d.propagateViaRouteServer(res, a, comms, xid)
	}

	return res
}

// escalationLevels bounds how far up the provider chain a blackhole
// request is forwarded.
const escalationLevels = 3

func (d *Deployment) escalate(res *Result, a Announcement) {
	topo := d.Topo
	frontier := make([]routeState, 0, len(res.dropStates))
	var asns []bgp.ASN
	for asn := range res.dropStates {
		asns = append(asns, asn)
	}
	topology.SortASNs(asns)
	for _, asn := range asns {
		frontier = append(frontier, res.dropStates[asn])
	}
	for level := 0; level < escalationLevels && len(frontier) > 0; level++ {
		var next []routeState
		for _, cur := range frontier {
			as := topo.AS(cur.as)
			if as == nil {
				continue
			}
			for _, q := range as.Providers {
				qa := topo.AS(q)
				if qa == nil || qa.Blackholing == nil || res.DroppingASes[q] {
					continue
				}
				// A minority of provider pairs have the upstream RTBH
				// arrangement in place.
				if detHash(uint64(cur.as), uint64(q), prefixHash(a.Prefix))%100 >= 30 {
					continue
				}
				st := routeState{
					as:           q,
					path:         append([]bgp.ASN{q}, cur.path...),
					comms:        append(append([]bgp.Community(nil), cur.comms...), qa.Blackholing.Communities[0]),
					fromCustomer: true,
				}
				res.DroppingASes[q] = true
				res.dropStates[q] = st
				d.observe(res, a, st)
				next = append(next, st)
			}
		}
		frontier = next
	}
}

// receive applies the receiver's import policy; a zero-AS routeState
// means the route was rejected.
func (d *Deployment) receive(res *Result, a Announcement, from routeState, to bgp.ASN) routeState {
	topo := d.Topo
	recv := topo.AS(to)
	if recv == nil {
		return routeState{}
	}
	rel := topo.Rel(to, from.as) // from's role seen from to
	out := routeState{
		as:           to,
		path:         append([]bgp.ASN{to}, from.path...),
		comms:        from.comms,
		large:        from.large,
		fromCustomer: rel == topology.RelCustomer,
	}
	if fromAS := topo.AS(from.as); fromAS != nil && fromAS.StripsCommunities {
		out.comms = nil
		out.large = nil
	}

	if !bgp.MoreSpecificThan24(a.Prefix) {
		return out // ordinary prefix: accepted normally
	}

	// More-specific than /24: accepted only with a matching blackhole
	// community or by networks not filtering more-specifics.
	if recv.Blackholing != nil && matchesService(recv.Blackholing, from.comms, from.large) {
		// Authentication: the request must come from the prefix
		// originator or a network holding it in its customer cone (§2).
		originAS := topo.OriginOf(a.Prefix)
		authentic := originAS == a.User || topo.InCustomerCone(a.User, originAS)
		irrOK := !recv.Blackholing.RequiresIRRRegistration || topo.AS(a.User).HasIRRRouteObjects
		rpkiOK := true
		if recv.Blackholing.RequiresRPKI && d.RPKI != nil {
			rpkiOK = d.RPKI.ValidOrigin(a.Prefix, a.User)
		}
		if authentic && irrOK && rpkiOK && a.Prefix.Bits() <= recv.Blackholing.MaxPrefixLen {
			res.DroppingASes[to] = true
			res.dropStates[to] = out
			return out
		}
		return routeState{} // rejected
	}
	if !recv.FiltersMoreSpecifics {
		return out // leaks like an ordinary more-specific
	}
	return routeState{}
}

// matchesService reports whether the announcement's communities trigger
// the service.
func matchesService(svc *topology.BlackholeService, comms []bgp.Community, large []bgp.LargeCommunity) bool {
	for _, c := range comms {
		if svc.HasCommunity(c) {
			return true
		}
	}
	for _, lc := range large {
		for _, s := range svc.LargeCommunities {
			if lc == s {
				return true
			}
		}
	}
	return false
}

// exportTargets applies valley-free export plus blackhole-specific
// suppression: NO_EXPORT stops propagation, and blackholing providers
// that accepted the route keep it local unless they are sloppy
// (non-filtering) networks.
func (d *Deployment) exportTargets(cur routeState, a Announcement) []bgp.ASN {
	topo := d.Topo
	as := topo.AS(cur.as)
	if as == nil {
		return nil
	}
	for _, c := range cur.comms {
		if c == bgp.CommunityNoExport {
			return nil
		}
	}
	if bgp.MoreSpecificThan24(a.Prefix) {
		// RFC 7999/5635 require suppression; only networks that do not
		// enforce prefix-length hygiene leak the route onward (§9 finds
		// 30% of events propagate at least one hop).
		if as.FiltersMoreSpecifics {
			return nil
		}
	}
	var out []bgp.ASN
	if cur.fromCustomer {
		out = append(out, as.Providers...)
		out = append(out, as.Peers...)
	}
	out = append(out, as.Customers...)
	return out
}

// observe records the route at every collector session of the holding
// AS, subject to the session's feed policy. Holders that enforce
// prefix-length hygiene suppress blackholed more-specifics toward their
// collector sessions just as they do toward peers (RFC 7999 suppression
// — the reason the paper's visibility is a lower bound, §5.2).
func (d *Deployment) observe(res *Result, a Announcement, st routeState) {
	if st.as == 0 {
		return
	}
	if bgp.MoreSpecificThan24(a.Prefix) && st.as != a.User {
		if as := d.Topo.AS(st.as); as != nil && as.FiltersMoreSpecifics {
			return
		}
	}
	refs := d.sessionsByAS[st.as]
	if len(refs) == 0 {
		return
	}
	// One AS_PATH shared by every session observation of this holder:
	// st.path is freshly built per routeState and never mutated after,
	// so the path can reference it without cloning.
	path := bgp.Path{Segments: []bgp.Segment{{Type: bgp.SegmentSequence, ASNs: st.path}}}
	for _, ref := range refs {
		s := ref.col.Sessions[ref.idx]
		if s.RouteServer {
			continue // RS sessions are fed by propagateViaRouteServer
		}
		switch s.Feed {
		case FeedCustomerOnly:
			if !st.fromCustomer {
				continue
			}
		case FeedPartial:
			if detHash(uint64(st.as), prefixHash(a.Prefix))%2 == 1 {
				continue
			}
		}
		u := res.arena.next()
		*u = bgp.Update{
			Time:             a.Time,
			PeerIP:           s.IP,
			PeerAS:           st.as,
			Announced:        res.announced,
			Origin:           bgp.OriginIGP,
			Path:             path,
			NextHop:          s.IP,
			Communities:      st.comms,
			LargeCommunities: st.large,
		}
		res.Observations = append(res.Observations, Observation{Collector: ref.col, Session: s, Update: u})
	}
}

// propagateViaRouteServer handles an announcement sent to an IXP route
// server with (or without) the IXP's blackhole community.
func (d *Deployment) propagateViaRouteServer(res *Result, a Announcement, comms []bgp.Community, xid int) {
	topo := d.Topo
	if xid < 0 || xid >= len(topo.IXPs) {
		return
	}
	x := topo.IXPs[xid]
	if !memberOf(x, a.User) {
		return
	}
	svc := x.Blackholing
	if svc == nil {
		res.Rejections = append(res.Rejections, IXPReject{IXPID: xid, Reason: "no blackholing service"})
		return
	}
	if bgp.MoreSpecificThan24(a.Prefix) && !matchesService(svc, comms, a.LargeCommunities) {
		res.Rejections = append(res.Rejections, IXPReject{IXPID: xid, Reason: "wrong BGP community"})
		return
	}
	if svc.RequiresIRRRegistration && !topo.AS(a.User).HasIRRRouteObjects {
		res.Rejections = append(res.Rejections, IXPReject{IXPID: xid, Reason: "prefix not registered in IRR"})
		return
	}
	if a.Prefix.Bits() > svc.MaxPrefixLen && a.Prefix.Addr().Is4() {
		res.Rejections = append(res.Rejections, IXPReject{IXPID: xid, Reason: "prefix too specific"})
		return
	}
	res.AcceptedIXPs = append(res.AcceptedIXPs, xid)

	// Members honouring the request drop traffic at their IXP port.
	drops := map[bgp.ASN]bool{}
	for _, m := range x.Members {
		if m != a.User && honorsIXPBlackhole(m, xid) {
			drops[m] = true
		}
	}
	res.DroppingIXPMembers[xid] = drops

	// Collector observations through the route server.
	for _, ref := range d.rsSessionsByIXP[xid] {
		s := ref.col.Sessions[ref.idx]
		var path bgp.Path
		peerIP := x.MemberIP(a.User)
		peerAS := a.User
		if x.InsertsRSASN {
			path = bgp.NewPath(x.RouteServerASN, a.User)
			peerIP = x.PeeringLAN.Addr()
			peerAS = x.RouteServerASN
		} else {
			path = bgp.NewPath(a.User)
		}
		u := res.arena.next()
		*u = bgp.Update{
			Time:             a.Time,
			PeerIP:           peerIP,
			PeerAS:           peerAS,
			Announced:        res.announced,
			Origin:           bgp.OriginIGP,
			Path:             path,
			NextHop:          x.BlackholingIPv4,
			Communities:      comms,
			LargeCommunities: a.LargeCommunities,
		}
		res.Observations = append(res.Observations, Observation{Collector: ref.col, Session: s, Update: u})
	}
}

// Withdraw produces the withdrawal observations matching a previous
// propagation: every session that saw the announcement sees an explicit
// withdrawal at time t. The withdrawn prefix list is shared across all
// observers (and with the original announcement) instead of cloned per
// observer; it is treated as read-only downstream.
func (d *Deployment) Withdraw(prev *Result, t time.Time) []Observation {
	out := make([]Observation, 0, len(prev.Observations))
	ups := make([]bgp.Update, len(prev.Observations))
	for i, o := range prev.Observations {
		u := &ups[i]
		u.Time = t
		u.PeerIP = o.Update.PeerIP
		u.PeerAS = o.Update.PeerAS
		u.Withdrawn = o.Update.Announced
		out = append(out, Observation{Collector: o.Collector, Session: o.Session, Update: u})
	}
	return out
}

// ReannounceWithout produces announcement observations for the same
// prefix without blackhole communities (an implicit withdrawal of the
// blackholing, §4.2) at every session that saw the original. The
// updates share the original announcement's prefix and path slices.
func (d *Deployment) ReannounceWithout(prev *Result, t time.Time) []Observation {
	out := make([]Observation, 0, len(prev.Observations))
	ups := make([]bgp.Update, len(prev.Observations))
	for i, o := range prev.Observations {
		u := &ups[i]
		*u = *o.Update
		u.Time = t
		u.Communities = nil
		u.LargeCommunities = nil
		out = append(out, Observation{Collector: o.Collector, Session: o.Session, Update: u})
	}
	return out
}

func memberOf(x *topology.IXP, asn bgp.ASN) bool {
	for _, m := range x.Members {
		if m == asn {
			return true
		}
	}
	return false
}

func prefixHash(p netip.Prefix) uint64 {
	b := p.Addr().As16()
	h := uint64(p.Bits())
	for _, x := range b {
		h = h*31 + uint64(x)
	}
	return h
}
