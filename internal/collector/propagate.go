package collector

import (
	"net/netip"
	"time"

	"bgpblackholing/internal/bgp"
	"bgpblackholing/internal/topology"
)

// Announcement is an intent by a user AS to announce (typically
// blackhole) a prefix into BGP.
type Announcement struct {
	Time   time.Time
	User   bgp.ASN
	Prefix netip.Prefix
	// Communities is the community set attached to the announcement —
	// for blackholing, the trigger communities of every intended
	// provider ("bundling" when several are combined, §4.2).
	Communities      []bgp.Community
	LargeCommunities []bgp.LargeCommunity
	// NoExport attaches the RFC 1997 NO_EXPORT community, which
	// RFC 7999 requires on blackhole routes; many networks omit it.
	NoExport bool

	// TargetProviders are the AS-level neighbors explicitly announced
	// to. TargetIXPs are IXPs whose route server is announced to.
	TargetProviders []bgp.ASN
	TargetIXPs      []int
	// Bundled sends the same tagged announcement to every BGP neighbor
	// of the user (including neighbors that offer no blackholing) and
	// to the route servers of all the user's IXPs — the behaviour that
	// makes half the paper's inferences possible.
	Bundled bool
}

// Observation is one update as seen by one collector session.
type Observation struct {
	Collector *Collector
	Session   PeerSession
	Update    *bgp.Update
}

// IXPReject records an announcement an IXP route server refused, with
// the misconfiguration reason (§10).
type IXPReject struct {
	IXPID  int
	Reason string
}

// Result summarises one announcement's propagation.
type Result struct {
	// Prefix and User echo the announcement, so data-plane experiments
	// can link drop sets back to events.
	Prefix netip.Prefix
	User   bgp.ASN
	// Observations lists every collector observation, in deterministic
	// order.
	Observations []Observation
	// DroppingASes is the set of AS-level providers that installed a
	// null route (traffic to the prefix dies at their ingress).
	DroppingASes map[bgp.ASN]bool
	// DroppingIXPMembers maps IXP ID to the members honouring the
	// blackhole (dropping traffic toward the IXP next-hop).
	DroppingIXPMembers map[int]map[bgp.ASN]bool
	// AcceptedIXPs lists IXPs whose route server accepted the request.
	AcceptedIXPs []int
	// Rejections lists route-server refusals.
	Rejections []IXPReject

	// observers records which sessions saw the route, so that a
	// withdrawal reaches exactly the same vantage points.
	observers []observerState
	// dropStates tracks the route state at each dropping AS, feeding
	// the inter-provider escalation pass.
	dropStates map[bgp.ASN]routeState
}

type observerState struct {
	ref    sessionRef
	update *bgp.Update
}

// routeState tracks the route as held by one AS during propagation.
type routeState struct {
	as    bgp.ASN
	path  []bgp.ASN // from holder to user, holder first
	comms []bgp.Community
	large []bgp.LargeCommunity
	// fromCustomer reports whether the holder learned the route from a
	// customer (or originated it), governing valley-free export.
	fromCustomer bool
}

// maxPropagationHops bounds how far a leaked blackhole route travels.
const maxPropagationHops = 6

// detHash is a deterministic mixing hash for policy coin flips.
func detHash(parts ...uint64) uint64 {
	h := uint64(14695981039346656037)
	for _, p := range parts {
		for i := 0; i < 8; i++ {
			h ^= (p >> (8 * i)) & 0xFF
			h *= 1099511628211
		}
	}
	return h
}

// honorsIXPBlackhole reports whether an IXP member installs the
// blackhole next-hop for route-server blackhole announcements. Roughly
// 80% do; the rest have stale router configurations or bypass the route
// server (§10).
func honorsIXPBlackhole(member bgp.ASN, ixpID int) bool {
	return detHash(uint64(member), uint64(ixpID))%10 < 8
}

// usesRouteServer reports whether a member maintains a session with the
// IXP route server at all (about 60% do; the rest peer bilaterally and
// their bundled announcements never reach the RS).
func usesRouteServer(member bgp.ASN, ixpID int) bool {
	return detHash(uint64(member), uint64(ixpID), 0xA5)%10 < 6
}

// providerBlackholeNextHop is the null-interface address a provider AS
// sets as next hop for blackholed prefixes.
func providerBlackholeNextHop(as *topology.AS) netip.Addr {
	if len(as.Prefixes) == 0 {
		return netip.Addr{}
	}
	b := as.Prefixes[0].Addr().As4()
	return netip.AddrFrom4([4]byte{b[0], b[1], 0, 66})
}

// Propagate pushes the announcement through the topology under
// valley-free and prefix-length policies and returns everything the
// collectors observed plus the resulting data-plane drop set.
func (d *Deployment) Propagate(a Announcement) *Result {
	res := &Result{
		Prefix:             a.Prefix,
		User:               a.User,
		DroppingASes:       map[bgp.ASN]bool{},
		DroppingIXPMembers: map[int]map[bgp.ASN]bool{},
		dropStates:         map[bgp.ASN]routeState{},
	}
	topo := d.Topo
	user := topo.AS(a.User)
	if user == nil {
		return res
	}

	comms := append([]bgp.Community(nil), a.Communities...)
	if a.NoExport {
		comms = append(comms, bgp.CommunityNoExport)
	}

	// The user itself holds the route (it originates it). Its own
	// collector sessions observe it only for bundled announcements: a
	// targeted announcement goes to the named providers alone, while a
	// bundled one goes to every BGP neighbor — including any route
	// collector the user feeds (§4.2, Fig 3).
	origin := routeState{
		as:           a.User,
		path:         []bgp.ASN{a.User},
		comms:        comms,
		large:        a.LargeCommunities,
		fromCustomer: true,
	}
	if a.Bundled {
		d.observe(res, a, origin)
	}

	// Initial AS-level recipients.
	type target struct {
		as bgp.ASN
	}
	var initial []bgp.ASN
	seenT := map[bgp.ASN]bool{}
	addT := func(asn bgp.ASN) {
		if asn != a.User && !seenT[asn] && topo.AS(asn) != nil {
			seenT[asn] = true
			initial = append(initial, asn)
		}
	}
	ixpTargets := map[int]bool{}
	for _, x := range a.TargetIXPs {
		ixpTargets[x] = true
	}
	if a.Bundled {
		for _, n := range topo.Neighbors(a.User) {
			addT(n)
		}
		// The bundled announcement also reaches the route servers of the
		// user's IXPs — but only where the user actually maintains an RS
		// session, and only IXPs whose blackhole community is in the
		// bundle act on it; the rest treat it as an ordinary
		// too-specific route and drop it silently.
		for _, xid := range user.IXPs {
			x := topo.IXPs[xid]
			if x.Blackholing != nil && usesRouteServer(a.User, xid) &&
				matchesService(x.Blackholing, comms, a.LargeCommunities) {
				ixpTargets[xid] = true
			}
		}
	} else {
		for _, p := range a.TargetProviders {
			addT(p)
		}
	}

	// BFS propagation among ASes.
	visited := map[bgp.ASN]bool{a.User: true}
	queue := make([]routeState, 0, len(initial))
	for _, n := range initial {
		queue = append(queue, d.receive(res, a, origin, n))
	}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if cur.as == 0 || visited[cur.as] {
			continue
		}
		visited[cur.as] = true
		d.observe(res, a, cur)
		if len(cur.path) > maxPropagationHops {
			continue
		}
		for _, next := range d.exportTargets(cur, a) {
			if !visited[next] {
				queue = append(queue, d.receive(res, a, cur, next))
			}
		}
	}

	// Inter-provider RTBH escalation: a provider that accepted a
	// customer blackhole request commonly forwards it to its own
	// upstreams (tagged with their trigger communities) to shed the
	// attack traffic before it enters its network. This is what pushes
	// the data-plane drop point 2-4 AS hops away from the victim (§10).
	d.escalate(res, a)

	// IXP route-server handling.
	var xids []int
	for xid := range ixpTargets {
		xids = append(xids, xid)
	}
	sortInts(xids)
	for _, xid := range xids {
		d.propagateViaRouteServer(res, a, comms, xid)
	}

	return res
}

// escalationLevels bounds how far up the provider chain a blackhole
// request is forwarded.
const escalationLevels = 3

func (d *Deployment) escalate(res *Result, a Announcement) {
	topo := d.Topo
	frontier := make([]routeState, 0, len(res.dropStates))
	var asns []bgp.ASN
	for asn := range res.dropStates {
		asns = append(asns, asn)
	}
	topology.SortASNs(asns)
	for _, asn := range asns {
		frontier = append(frontier, res.dropStates[asn])
	}
	for level := 0; level < escalationLevels && len(frontier) > 0; level++ {
		var next []routeState
		for _, cur := range frontier {
			as := topo.AS(cur.as)
			for _, q := range as.Providers {
				qa := topo.AS(q)
				if qa == nil || qa.Blackholing == nil || res.DroppingASes[q] {
					continue
				}
				// A minority of provider pairs have the upstream RTBH
				// arrangement in place.
				if detHash(uint64(cur.as), uint64(q), prefixHash(a.Prefix))%100 >= 30 {
					continue
				}
				st := routeState{
					as:           q,
					path:         append([]bgp.ASN{q}, cur.path...),
					comms:        append(append([]bgp.Community(nil), cur.comms...), qa.Blackholing.Communities[0]),
					fromCustomer: true,
				}
				res.DroppingASes[q] = true
				res.dropStates[q] = st
				d.observe(res, a, st)
				next = append(next, st)
			}
		}
		frontier = next
	}
}

// receive applies the receiver's import policy; a zero-AS routeState
// means the route was rejected.
func (d *Deployment) receive(res *Result, a Announcement, from routeState, to bgp.ASN) routeState {
	topo := d.Topo
	recv := topo.AS(to)
	rel := topo.Rel(to, from.as) // from's role seen from to
	out := routeState{
		as:           to,
		path:         append([]bgp.ASN{to}, from.path...),
		comms:        from.comms,
		large:        from.large,
		fromCustomer: rel == topology.RelCustomer,
	}
	if topo.AS(from.as) != nil && topo.AS(from.as).StripsCommunities {
		out.comms = nil
		out.large = nil
	}

	if !bgp.MoreSpecificThan24(a.Prefix) {
		return out // ordinary prefix: accepted normally
	}

	// More-specific than /24: accepted only with a matching blackhole
	// community or by networks not filtering more-specifics.
	if recv.Blackholing != nil && matchesService(recv.Blackholing, from.comms, from.large) {
		// Authentication: the request must come from the prefix
		// originator or a network holding it in its customer cone (§2).
		originAS := topo.OriginOf(a.Prefix)
		authentic := originAS == a.User || topo.InCustomerCone(a.User, originAS)
		irrOK := !recv.Blackholing.RequiresIRRRegistration || topo.AS(a.User).HasIRRRouteObjects
		rpkiOK := true
		if recv.Blackholing.RequiresRPKI && d.RPKI != nil {
			rpkiOK = d.RPKI.ValidOrigin(a.Prefix, a.User)
		}
		if authentic && irrOK && rpkiOK && a.Prefix.Bits() <= recv.Blackholing.MaxPrefixLen {
			res.DroppingASes[to] = true
			res.dropStates[to] = out
			return out
		}
		return routeState{} // rejected
	}
	if !recv.FiltersMoreSpecifics {
		return out // leaks like an ordinary more-specific
	}
	return routeState{}
}

// matchesService reports whether the announcement's communities trigger
// the service.
func matchesService(svc *topology.BlackholeService, comms []bgp.Community, large []bgp.LargeCommunity) bool {
	for _, c := range comms {
		if svc.HasCommunity(c) {
			return true
		}
	}
	for _, lc := range large {
		for _, s := range svc.LargeCommunities {
			if lc == s {
				return true
			}
		}
	}
	return false
}

// exportTargets applies valley-free export plus blackhole-specific
// suppression: NO_EXPORT stops propagation, and blackholing providers
// that accepted the route keep it local unless they are sloppy
// (non-filtering) networks.
func (d *Deployment) exportTargets(cur routeState, a Announcement) []bgp.ASN {
	topo := d.Topo
	as := topo.AS(cur.as)
	for _, c := range cur.comms {
		if c == bgp.CommunityNoExport {
			return nil
		}
	}
	if bgp.MoreSpecificThan24(a.Prefix) {
		// RFC 7999/5635 require suppression; only networks that do not
		// enforce prefix-length hygiene leak the route onward (§9 finds
		// 30% of events propagate at least one hop).
		if as.FiltersMoreSpecifics {
			return nil
		}
	}
	var out []bgp.ASN
	if cur.fromCustomer {
		out = append(out, as.Providers...)
		out = append(out, as.Peers...)
	}
	out = append(out, as.Customers...)
	return out
}

// observe records the route at every collector session of the holding
// AS, subject to the session's feed policy. Holders that enforce
// prefix-length hygiene suppress blackholed more-specifics toward their
// collector sessions just as they do toward peers (RFC 7999 suppression
// — the reason the paper's visibility is a lower bound, §5.2).
func (d *Deployment) observe(res *Result, a Announcement, st routeState) {
	if st.as == 0 {
		return
	}
	if bgp.MoreSpecificThan24(a.Prefix) && st.as != a.User {
		if as := d.Topo.AS(st.as); as != nil && as.FiltersMoreSpecifics {
			return
		}
	}
	for _, ref := range d.sessionsByAS[st.as] {
		s := ref.col.Sessions[ref.idx]
		if s.RouteServer {
			continue // RS sessions are fed by propagateViaRouteServer
		}
		switch s.Feed {
		case FeedCustomerOnly:
			if !st.fromCustomer {
				continue
			}
		case FeedPartial:
			if detHash(uint64(st.as), prefixHash(a.Prefix))%2 == 1 {
				continue
			}
		}
		u := &bgp.Update{
			Time:             a.Time,
			PeerIP:           s.IP,
			PeerAS:           st.as,
			Announced:        []netip.Prefix{a.Prefix},
			Origin:           bgp.OriginIGP,
			Path:             bgp.NewPath(st.path...),
			NextHop:          s.IP,
			Communities:      st.comms,
			LargeCommunities: st.large,
		}
		res.Observations = append(res.Observations, Observation{Collector: ref.col, Session: s, Update: u})
		res.observers = append(res.observers, observerState{ref: ref, update: u})
	}
}

// propagateViaRouteServer handles an announcement sent to an IXP route
// server with (or without) the IXP's blackhole community.
func (d *Deployment) propagateViaRouteServer(res *Result, a Announcement, comms []bgp.Community, xid int) {
	topo := d.Topo
	if xid < 0 || xid >= len(topo.IXPs) {
		return
	}
	x := topo.IXPs[xid]
	if !memberOf(x, a.User) {
		return
	}
	svc := x.Blackholing
	if svc == nil {
		res.Rejections = append(res.Rejections, IXPReject{IXPID: xid, Reason: "no blackholing service"})
		return
	}
	if bgp.MoreSpecificThan24(a.Prefix) && !matchesService(svc, comms, a.LargeCommunities) {
		res.Rejections = append(res.Rejections, IXPReject{IXPID: xid, Reason: "wrong BGP community"})
		return
	}
	if svc.RequiresIRRRegistration && !topo.AS(a.User).HasIRRRouteObjects {
		res.Rejections = append(res.Rejections, IXPReject{IXPID: xid, Reason: "prefix not registered in IRR"})
		return
	}
	if a.Prefix.Bits() > svc.MaxPrefixLen && a.Prefix.Addr().Is4() {
		res.Rejections = append(res.Rejections, IXPReject{IXPID: xid, Reason: "prefix too specific"})
		return
	}
	res.AcceptedIXPs = append(res.AcceptedIXPs, xid)

	// Members honouring the request drop traffic at their IXP port.
	drops := map[bgp.ASN]bool{}
	for _, m := range x.Members {
		if m != a.User && honorsIXPBlackhole(m, xid) {
			drops[m] = true
		}
	}
	res.DroppingIXPMembers[xid] = drops

	// Collector observations through the route server.
	for _, ref := range d.rsSessionsByIXP[xid] {
		s := ref.col.Sessions[ref.idx]
		var path bgp.Path
		peerIP := x.MemberIP(a.User)
		peerAS := a.User
		if x.InsertsRSASN {
			path = bgp.NewPath(x.RouteServerASN, a.User)
			peerIP = x.PeeringLAN.Addr()
			peerAS = x.RouteServerASN
		} else {
			path = bgp.NewPath(a.User)
		}
		u := &bgp.Update{
			Time:             a.Time,
			PeerIP:           peerIP,
			PeerAS:           peerAS,
			Announced:        []netip.Prefix{a.Prefix},
			Origin:           bgp.OriginIGP,
			Path:             path,
			NextHop:          x.BlackholingIPv4,
			Communities:      comms,
			LargeCommunities: a.LargeCommunities,
		}
		res.Observations = append(res.Observations, Observation{Collector: ref.col, Session: s, Update: u})
		res.observers = append(res.observers, observerState{ref: ref, update: u})
	}
}

// Withdraw produces the withdrawal observations matching a previous
// propagation: every session that saw the announcement sees an explicit
// withdrawal at time t.
func (d *Deployment) Withdraw(prev *Result, t time.Time) []Observation {
	out := make([]Observation, 0, len(prev.observers))
	for _, o := range prev.observers {
		s := o.ref.col.Sessions[o.ref.idx]
		u := &bgp.Update{
			Time:      t,
			PeerIP:    o.update.PeerIP,
			PeerAS:    o.update.PeerAS,
			Withdrawn: append([]netip.Prefix(nil), o.update.Announced...),
		}
		out = append(out, Observation{Collector: o.ref.col, Session: s, Update: u})
	}
	return out
}

// ReannounceWithout produces announcement observations for the same
// prefix without blackhole communities (an implicit withdrawal of the
// blackholing, §4.2) at every session that saw the original.
func (d *Deployment) ReannounceWithout(prev *Result, t time.Time) []Observation {
	out := make([]Observation, 0, len(prev.observers))
	for _, o := range prev.observers {
		s := o.ref.col.Sessions[o.ref.idx]
		u := o.update.Clone()
		u.Time = t
		u.Communities = nil
		u.LargeCommunities = nil
		out = append(out, Observation{Collector: o.ref.col, Session: s, Update: u})
	}
	return out
}

func memberOf(x *topology.IXP, asn bgp.ASN) bool {
	for _, m := range x.Members {
		if m == asn {
			return true
		}
	}
	return false
}

func prefixHash(p netip.Prefix) uint64 {
	b := p.Addr().As16()
	h := uint64(p.Bits())
	for _, x := range b {
		h = h*31 + uint64(x)
	}
	return h
}

func sortInts(s []int) {
	for i := 1; i < len(s); i++ {
		for j := i; j > 0 && s[j] < s[j-1]; j-- {
			s[j], s[j-1] = s[j-1], s[j]
		}
	}
}
