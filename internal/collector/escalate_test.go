package collector

import (
	"net/netip"
	"testing"

	"bgpblackholing/internal/bgp"
	"bgpblackholing/internal/topology"
)

// escalationWorld builds a three-level provider chain where both P1 and
// its upstream Q offer blackholing:
//
//	Q(50, blackholing) ── P1(100, blackholing) ── user(200)
func escalationWorld(t *testing.T) (*topology.Topology, *Deployment) {
	t.Helper()
	topo := &topology.Topology{ASes: map[bgp.ASN]*topology.AS{}}
	add := func(asn bgp.ASN, octet byte) *topology.AS {
		as := &topology.AS{
			ASN: asn, DeclaredKind: topology.KindTransitAccess, CAIDAKind: topology.KindTransitAccess,
			Prefixes:             []netip.Prefix{netip.PrefixFrom(netip.AddrFrom4([4]byte{octet, 0, 0, 0}), 16)},
			FiltersMoreSpecifics: true,
			HasIRRRouteObjects:   true,
		}
		topo.ASes[asn] = as
		topo.Order = append(topo.Order, asn)
		return as
	}
	q := add(50, 29)
	p1 := add(100, 30)
	user := add(200, 31)
	cust := func(prov, c *topology.AS) {
		prov.Customers = append(prov.Customers, c.ASN)
		c.Providers = append(c.Providers, prov.ASN)
	}
	cust(q, p1)
	cust(p1, user)
	svc := func(asn bgp.ASN) *topology.BlackholeService {
		return &topology.BlackholeService{
			Communities:  []bgp.Community{bgp.MakeCommunity(uint16(asn), 666)},
			MaxPrefixLen: 32, MinPrefixLen: 24,
		}
	}
	q.Blackholing = svc(50)
	p1.Blackholing = svc(100)
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	d := &Deployment{
		Topo:            topo,
		sessionsByAS:    map[bgp.ASN][]sessionRef{},
		rsSessionsByIXP: map[int][]sessionRef{},
	}
	return topo, d
}

func TestEscalationReachesUpstream(t *testing.T) {
	_, d := escalationWorld(t)
	// The deterministic hash may or may not select this (P1,Q) pair;
	// scan a few prefixes to find one that escalates and one that does
	// not, proving the arrangement is per-pair.
	escalated, stayed := false, false
	for i := 0; i < 64 && (!escalated || !stayed); i++ {
		prefix := netip.PrefixFrom(netip.AddrFrom4([4]byte{31, 0, byte(i), 1}), 32)
		res := d.Propagate(Announcement{
			User:            200,
			Prefix:          prefix,
			Communities:     []bgp.Community{bgp.MakeCommunity(100, 666)},
			TargetProviders: []bgp.ASN{100},
		})
		if !res.DroppingASes[100] {
			t.Fatal("direct provider did not drop")
		}
		if res.DroppingASes[50] {
			escalated = true
		} else {
			stayed = true
		}
	}
	if !escalated {
		t.Fatal("no prefix ever escalated to the upstream")
	}
	if !stayed {
		t.Fatal("every prefix escalated: arrangement should be per-pair")
	}
}

func TestEscalationCarriesUpstreamCommunity(t *testing.T) {
	topo, d := escalationWorld(t)
	// Make the upstream leak to a collector so the escalated state is
	// observable.
	topo.ASes[50].FiltersMoreSpecifics = false
	ris := &Collector{Platform: PlatformRIS, Name: "rrc00", IXPID: -1,
		IP: netip.MustParseAddr("22.0.0.1"), ASN: 64900}
	ris.Sessions = []PeerSession{{AS: 50, IP: netip.MustParseAddr("22.0.1.1"), Feed: FeedFull, IXPID: -1}}
	d.Collectors = append(d.Collectors, ris)
	d.sessionsByAS[50] = []sessionRef{{ris, 0}}

	for i := 0; i < 64; i++ {
		prefix := netip.PrefixFrom(netip.AddrFrom4([4]byte{31, 0, byte(i), 1}), 32)
		res := d.Propagate(Announcement{
			User:            200,
			Prefix:          prefix,
			Communities:     []bgp.Community{bgp.MakeCommunity(100, 666)},
			TargetProviders: []bgp.ASN{100},
		})
		if !res.DroppingASes[50] {
			continue
		}
		// Found an escalated propagation observed at RIS.
		for _, o := range res.Observations {
			if o.Collector != ris {
				continue
			}
			if !o.Update.HasCommunity(bgp.MakeCommunity(50, 666)) {
				t.Fatal("escalated announcement lacks the upstream's community")
			}
			if !o.Update.HasCommunity(bgp.MakeCommunity(100, 666)) {
				t.Fatal("original community stripped during escalation")
			}
			flat := o.Update.Path.Flatten()
			if len(flat) < 3 || flat[0] != 50 || flat[1] != 100 || flat[2] != 200 {
				t.Fatalf("escalated path = %v, want [50 100 200]", flat)
			}
			return
		}
		t.Fatal("escalated drop not observed at the leaking upstream's session")
	}
	t.Skip("no prefix escalated in 64 tries (hash unlucky)")
}

func TestEscalationBoundedByLevels(t *testing.T) {
	// A long provider chain must not escalate beyond escalationLevels.
	topo := &topology.Topology{ASes: map[bgp.ASN]*topology.AS{}}
	var prev *topology.AS
	for i := 0; i < 8; i++ {
		asn := bgp.ASN(100 + i)
		as := &topology.AS{
			ASN: asn, DeclaredKind: topology.KindTransitAccess, CAIDAKind: topology.KindTransitAccess,
			Prefixes:             []netip.Prefix{netip.PrefixFrom(netip.AddrFrom4([4]byte{byte(40 + i), 0, 0, 0}), 16)},
			FiltersMoreSpecifics: true, HasIRRRouteObjects: true,
			Blackholing: &topology.BlackholeService{
				Communities:  []bgp.Community{bgp.MakeCommunity(uint16(asn), 666)},
				MaxPrefixLen: 32, MinPrefixLen: 24,
			},
		}
		topo.ASes[asn] = as
		topo.Order = append(topo.Order, asn)
		if prev != nil {
			// prev is the customer of as (chain goes upward).
			as.Customers = append(as.Customers, prev.ASN)
			prev.Providers = append(prev.Providers, as.ASN)
		}
		prev = as
	}
	user := &topology.AS{
		ASN: 99, DeclaredKind: topology.KindTransitAccess, CAIDAKind: topology.KindTransitAccess,
		Prefixes:           []netip.Prefix{netip.MustParsePrefix("31.0.0.0/16")},
		HasIRRRouteObjects: true,
	}
	topo.ASes[99] = user
	topo.Order = append(topo.Order, 99)
	user.Providers = []bgp.ASN{100}
	topo.ASes[100].Customers = append(topo.ASes[100].Customers, 99)
	if err := topo.Validate(); err != nil {
		t.Fatal(err)
	}
	d := &Deployment{Topo: topo, sessionsByAS: map[bgp.ASN][]sessionRef{}, rsSessionsByIXP: map[int][]sessionRef{}}

	worst := 0
	for i := 0; i < 32; i++ {
		prefix := netip.PrefixFrom(netip.AddrFrom4([4]byte{31, 0, byte(i), 1}), 32)
		res := d.Propagate(Announcement{
			User:            99,
			Prefix:          prefix,
			Communities:     []bgp.Community{bgp.MakeCommunity(100, 666)},
			TargetProviders: []bgp.ASN{100},
		})
		depth := 0
		for asn := range res.DroppingASes {
			if int(asn)-100 > depth {
				depth = int(asn) - 100
			}
		}
		if depth > worst {
			worst = depth
		}
	}
	if worst > escalationLevels {
		t.Fatalf("escalation depth %d exceeds limit %d", worst, escalationLevels)
	}
}
