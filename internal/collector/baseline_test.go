package collector

import (
	"bytes"
	"net/netip"
	"testing"
	"time"

	"bgpblackholing/internal/bgp"
	"bgpblackholing/internal/mrt"
	"bgpblackholing/internal/topology"
)

func baselineWorld(t testing.TB) (*topology.Topology, *Deployment) {
	t.Helper()
	topo, err := topology.Generate(topology.DefaultConfig().Scaled(0.1))
	if err != nil {
		t.Fatal(err)
	}
	return topo, Deploy(topo, DefaultConfig().Scaled(0.1))
}

func TestExportedPrefixesFeedSemantics(t *testing.T) {
	topo, d := baselineWorld(t)
	all := d.allPublicPrefixes()
	if len(all) == 0 {
		t.Fatal("no public prefixes")
	}
	asn := topo.Order[0]

	full := d.exportedPrefixes(PeerSession{AS: asn, Feed: FeedFull}, all)
	if len(full) != len(all) {
		t.Fatalf("full feed exports %d of %d", len(full), len(all))
	}

	partial := d.exportedPrefixes(PeerSession{AS: asn, Feed: FeedPartial}, all)
	if len(partial) == 0 || len(partial) >= len(all) {
		t.Fatalf("partial feed exports %d of %d, want a strict subset", len(partial), len(all))
	}

	custOnly := d.exportedPrefixes(PeerSession{AS: asn, Feed: FeedCustomerOnly}, all)
	cone := topo.CustomerCone(asn)
	wantCount := 0
	for a := range cone {
		wantCount += len(topo.AS(a).Prefixes)
	}
	if len(custOnly) != wantCount {
		t.Fatalf("customer-only feed exports %d, want %d (cone prefixes)", len(custOnly), wantCount)
	}
}

func TestInternalPrefixesOnlyViaInternalSessions(t *testing.T) {
	topo, d := baselineWorld(t)
	all := d.allPublicPrefixes()
	asn := topo.Order[0]
	ext := d.exportedPrefixes(PeerSession{AS: asn, Feed: FeedFull}, all)
	intl := d.exportedPrefixes(PeerSession{AS: asn, Feed: FeedFull, Internal: true}, all)
	if len(intl) <= len(ext) {
		t.Fatal("internal session should add customer-specific prefixes")
	}
	// The extras are /24 more-specifics inside the AS's primary space.
	primary := topo.AS(asn).Prefixes[0]
	for _, p := range intl[len(ext):] {
		if p.Bits() != 24 || !primary.Overlaps(p) {
			t.Fatalf("internal prefix %v not a /24 inside %v", p, primary)
		}
	}
}

func TestRouteServerSessionExportsMemberCones(t *testing.T) {
	topo, d := baselineWorld(t)
	all := d.allPublicPrefixes()
	x := topo.IXPs[0]
	got := d.exportedPrefixes(PeerSession{AS: x.RouteServerASN, RouteServer: true, IXPID: x.ID}, all)
	if len(got) == 0 {
		t.Fatal("RS session exports nothing")
	}
	// Every member's own prefixes must be present.
	set := map[netip.Prefix]bool{}
	for _, p := range got {
		set[p] = true
	}
	for _, m := range x.Members {
		for _, p := range topo.AS(m).Prefixes {
			if !set[p] {
				t.Fatalf("member AS%d prefix %v missing from RS export", m, p)
			}
		}
	}
}

func TestWriteTableDumpRoundTrip(t *testing.T) {
	topo, d := baselineWorld(t)
	// Find a provider and fabricate active blackhole observations.
	provider := topo.BlackholingProviders()[0]
	col := d.ByPlatform(PlatformCDN)[0]
	dumpTime := time.Date(2017, 3, 1, 0, 0, 0, 0, time.UTC)
	obs := []Observation{
		{
			Collector: col,
			Update: &bgp.Update{
				Time:        dumpTime.Add(-time.Hour),
				PeerIP:      netip.MustParseAddr("22.3.1.9"),
				PeerAS:      provider.ASN,
				Announced:   []netip.Prefix{netip.MustParsePrefix("31.7.7.7/32")},
				Path:        bgp.NewPath(provider.ASN, 65001),
				NextHop:     netip.MustParseAddr("22.3.1.10"),
				Communities: provider.Blackholing.Communities[:1],
			},
		},
		{
			Collector: col,
			Update: &bgp.Update{
				Time:        dumpTime.Add(-2 * time.Hour),
				PeerIP:      netip.MustParseAddr("22.3.1.11"),
				PeerAS:      provider.ASN + 1,
				Announced:   []netip.Prefix{netip.MustParsePrefix("31.7.7.7/32")},
				Path:        bgp.NewPath(provider.ASN+1, provider.ASN, 65001),
				NextHop:     netip.MustParseAddr("22.3.1.12"),
				Communities: provider.Blackholing.Communities[:1],
			},
		},
	}
	var buf bytes.Buffer
	if err := WriteTableDump(&buf, col, obs, dumpTime); err != nil {
		t.Fatal(err)
	}
	r := mrt.NewReader(&buf)
	rec1, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	pit, ok := rec1.(*mrt.PeerIndexTable)
	if !ok || len(pit.Peers) != 2 {
		t.Fatalf("peer index = %+v", rec1)
	}
	rec2, err := r.Next()
	if err != nil {
		t.Fatal(err)
	}
	rib, ok := rec2.(*mrt.RIB)
	if !ok || len(rib.Entries) != 2 {
		t.Fatalf("rib = %+v", rec2)
	}
	entries, err := r.ResolveRIB(rib)
	if err != nil {
		t.Fatal(err)
	}
	if entries[0].PeerAS != provider.ASN || entries[0].Communities[0] != provider.Blackholing.Communities[0] {
		t.Fatalf("entry 0 = %+v", entries[0])
	}
	if !entries[0].OriginatedAt.Equal(dumpTime.Add(-time.Hour)) {
		t.Fatal("originated time lost")
	}
}

func TestWriteTableDumpEmptyIsNoop(t *testing.T) {
	_, d := baselineWorld(t)
	col := d.ByPlatform(PlatformRIS)[0]
	var buf bytes.Buffer
	if err := WriteTableDump(&buf, col, nil, time.Now()); err != nil {
		t.Fatal(err)
	}
	if buf.Len() != 0 {
		t.Fatal("empty dump should write nothing")
	}
}
