package collector

import (
	"net/netip"
	"testing"

	"bgpblackholing/internal/bgp"
)

// vantagePoints collects the (collector, session IP) identities of a set
// of observations.
func vantagePoints(obs []Observation) map[string]bool {
	out := map[string]bool{}
	for _, o := range obs {
		out[o.Collector.Name+"|"+o.Session.IP.String()] = true
	}
	return out
}

// TestWithdrawReachesAnnouncementVantagePoints is the regression guard
// for the shared-Announced-slice optimization: an explicit withdrawal
// must reach exactly the sessions that saw the announcement, withdrawing
// exactly the announced prefix.
func TestWithdrawReachesAnnouncementVantagePoints(t *testing.T) {
	topo, d := escalationWorld(t)
	topo.ASes[100].FiltersMoreSpecifics = false

	ris := &Collector{Platform: PlatformRIS, Name: "rrc00", IXPID: -1,
		IP: netip.MustParseAddr("22.0.0.1"), ASN: 64900}
	ris.Sessions = []PeerSession{
		{AS: 100, IP: netip.MustParseAddr("22.0.1.1"), Feed: FeedFull, IXPID: -1},
		{AS: 200, IP: netip.MustParseAddr("22.0.1.2"), Feed: FeedFull, IXPID: -1},
	}
	d.Collectors = append(d.Collectors, ris)
	d.sessionsByAS[100] = []sessionRef{{ris, 0}}
	d.sessionsByAS[200] = []sessionRef{{ris, 1}}

	prefix := netip.MustParsePrefix("31.0.7.1/32")
	res := d.Propagate(Announcement{
		User:        200,
		Prefix:      prefix,
		Communities: []bgp.Community{bgp.MakeCommunity(100, 666)},
		Bundled:     true,
	})
	if len(res.Observations) == 0 {
		t.Fatal("announcement saw no collector sessions")
	}

	wd := d.Withdraw(res, res.Observations[0].Update.Time.Add(60e9))
	if len(wd) != len(res.Observations) {
		t.Fatalf("withdrawal count %d != observation count %d", len(wd), len(res.Observations))
	}
	annVP, wdVP := vantagePoints(res.Observations), vantagePoints(wd)
	for vp := range annVP {
		if !wdVP[vp] {
			t.Errorf("vantage point %s saw announcement but no withdrawal", vp)
		}
	}
	for vp := range wdVP {
		if !annVP[vp] {
			t.Errorf("vantage point %s saw withdrawal without announcement", vp)
		}
	}
	for _, o := range wd {
		if len(o.Update.Withdrawn) != 1 || o.Update.Withdrawn[0] != prefix {
			t.Fatalf("withdrawal carries %v, want [%s]", o.Update.Withdrawn, prefix)
		}
		if len(o.Update.Announced) != 0 {
			t.Fatalf("withdrawal announces %v", o.Update.Announced)
		}
	}

	// The implicit variant must hit the same vantage points too, with
	// communities stripped and the prefix re-announced.
	re := d.ReannounceWithout(res, res.Observations[0].Update.Time.Add(120e9))
	if len(re) != len(res.Observations) {
		t.Fatalf("reannounce count %d != observation count %d", len(re), len(res.Observations))
	}
	for _, o := range re {
		if len(o.Update.Communities) != 0 || len(o.Update.LargeCommunities) != 0 {
			t.Fatal("reannouncement still carries communities")
		}
		if len(o.Update.Announced) != 1 || o.Update.Announced[0] != prefix {
			t.Fatalf("reannouncement announces %v, want [%s]", o.Update.Announced, prefix)
		}
	}
}
