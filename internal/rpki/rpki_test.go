package rpki

import (
	"net/netip"
	"testing"

	"bgpblackholing/internal/bgp"
	"bgpblackholing/internal/topology"
)

func TestValidateStates(t *testing.T) {
	reg := &Registry{}
	reg.Add(ROA{Prefix: netip.MustParsePrefix("31.0.0.0/16"), MaxLength: 32, ASN: 100})
	reg.Add(ROA{Prefix: netip.MustParsePrefix("32.0.0.0/16"), MaxLength: 16, ASN: 200})

	cases := []struct {
		prefix string
		origin int
		want   State
	}{
		{"31.0.0.1/32", 100, Valid},    // friendly ROA allows /32
		{"31.0.0.0/16", 100, Valid},    // aggregate
		{"31.0.0.1/32", 999, Invalid},  // wrong origin
		{"32.0.0.1/32", 200, Invalid},  // maxLength 16 forbids /32
		{"32.0.0.0/16", 200, Valid},    // aggregate fine
		{"33.0.0.1/32", 100, NotFound}, // no covering ROA
		{"31.0.0.0/8", 100, NotFound},  // less specific than the ROA
	}
	for _, c := range cases {
		got := reg.Validate(netip.MustParsePrefix(c.prefix), bgp.ASN(c.origin))
		if got != c.want {
			t.Errorf("Validate(%s, AS%d) = %v, want %v", c.prefix, c.origin, got, c.want)
		}
	}
}

func TestValidOriginStrictness(t *testing.T) {
	reg := &Registry{}
	reg.Add(ROA{Prefix: netip.MustParsePrefix("31.0.0.0/16"), MaxLength: 32, ASN: 100})
	if !reg.ValidOrigin(netip.MustParsePrefix("31.0.0.1/32"), 100) {
		t.Fatal("valid announcement rejected")
	}
	if reg.ValidOrigin(netip.MustParsePrefix("31.0.0.1/32"), 999) {
		t.Fatal("invalid origin accepted")
	}
	// Strict providers reject NotFound too.
	if reg.ValidOrigin(netip.MustParsePrefix("99.0.0.1/32"), 100) {
		t.Fatal("NotFound accepted by strict validation")
	}
}

func TestBuildCoverageAndStats(t *testing.T) {
	topo, err := topology.Generate(topology.DefaultConfig().Scaled(0.2))
	if err != nil {
		t.Fatal(err)
	}
	reg := Build(topo, DefaultBuildConfig())
	if reg.Len() == 0 {
		t.Fatal("empty registry")
	}
	st := reg.Stats(topo)
	if st.ASesTotal != len(topo.Order) {
		t.Fatal("total mismatch")
	}
	cov := float64(st.ASesCovered) / float64(st.ASesTotal)
	if cov < 0.2 || cov > 0.5 {
		t.Fatalf("coverage = %.2f, want ~0.35", cov)
	}
	if st.BlackholeFriendly == 0 || st.BlackholeStranded == 0 {
		t.Fatalf("want both friendly (%d) and stranded (%d) ASes", st.BlackholeFriendly, st.BlackholeStranded)
	}
	// Friendly should dominate at FracBlackholeFriendly = 0.6.
	if st.BlackholeFriendly <= st.BlackholeStranded {
		t.Fatalf("friendly %d <= stranded %d", st.BlackholeFriendly, st.BlackholeStranded)
	}
}

func TestBuildDeterministic(t *testing.T) {
	topo, err := topology.Generate(topology.DefaultConfig().Scaled(0.1))
	if err != nil {
		t.Fatal(err)
	}
	a := Build(topo, DefaultBuildConfig())
	b := Build(topo, DefaultBuildConfig())
	if a.Len() != b.Len() {
		t.Fatal("non-deterministic registry size")
	}
	for i := range a.roas {
		if a.roas[i] != b.roas[i] {
			t.Fatal("non-deterministic ROA")
		}
	}
}

func TestStateStrings(t *testing.T) {
	if Valid.String() != "valid" || Invalid.String() != "invalid" || NotFound.String() != "not-found" {
		t.Fatal("state strings")
	}
}
