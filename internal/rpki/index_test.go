package rpki

import (
	"math/rand"
	"net/netip"
	"testing"

	"bgpblackholing/internal/bgp"
	"bgpblackholing/internal/topology"
)

// randomRegistry builds a registry of n random ROAs, mixing IPv4 and
// IPv6 with clustered address bytes so covering chains actually occur.
func randomRegistry(r *rand.Rand, n int) *Registry {
	reg := &Registry{}
	for i := 0; i < n; i++ {
		reg.Add(randomROA(r))
	}
	return reg
}

func randomROA(r *rand.Rand) ROA {
	if r.Intn(2) == 0 {
		bits := r.Intn(33)
		a := netip.AddrFrom4([4]byte{byte(10 + r.Intn(3)), byte(r.Intn(4)), byte(r.Intn(4)), byte(r.Intn(256))})
		p, _ := a.Prefix(bits)
		maxLen := bits + r.Intn(33-bits)
		return ROA{Prefix: p, MaxLength: maxLen, ASN: bgp.ASN(1 + r.Intn(8))}
	}
	bits := r.Intn(129)
	var b [16]byte
	b[0], b[1] = 0x20, 0x01
	b[2], b[3] = byte(r.Intn(3)), byte(r.Intn(4))
	b[7] = byte(r.Intn(4))
	b[15] = byte(r.Intn(256))
	p, _ := netip.AddrFrom16(b).Prefix(bits)
	maxLen := bits + r.Intn(129-bits)
	return ROA{Prefix: p, MaxLength: maxLen, ASN: bgp.ASN(1 + r.Intn(8))}
}

// randomQuery draws a prefix from the same clustered space, so queries
// hit the registry often but not always.
func randomQuery(r *rand.Rand) netip.Prefix {
	roa := randomROA(r)
	return roa.Prefix
}

// TestCoveringROAsMatchesScan property-tests the indexed covering
// lookup against the naive O(n) definition over random registries.
func TestCoveringROAsMatchesScan(t *testing.T) {
	r := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		reg := randomRegistry(r, 1+r.Intn(120))
		roas := reg.ROAs()
		for q := 0; q < 40; q++ {
			p := randomQuery(r)
			got := reg.CoveringROAs(p)
			// Naive definition: every registered ROA that covers p.
			want := map[ROA]int{}
			for _, roa := range roas {
				if roa.Covers(p) {
					want[ROA{Prefix: roa.Prefix.Masked(), MaxLength: roa.MaxLength, ASN: roa.ASN}]++
				}
			}
			gotSet := map[ROA]int{}
			for _, roa := range got {
				gotSet[roa]++
			}
			if len(gotSet) != len(want) {
				t.Fatalf("trial %d: CoveringROAs(%s) = %v, want %v", trial, p, got, want)
			}
			for roa, n := range want {
				if gotSet[roa] != n {
					t.Fatalf("trial %d: CoveringROAs(%s): %v count %d, want %d", trial, p, roa, gotSet[roa], n)
				}
			}
		}
	}
}

// TestValidateMatchesScan property-tests the indexed Validate against
// the retained linear-scan oracle, IPv4 and IPv6, including origins
// present and absent from the registry.
func TestValidateMatchesScan(t *testing.T) {
	r := rand.New(rand.NewSource(11))
	for trial := 0; trial < 50; trial++ {
		reg := randomRegistry(r, 1+r.Intn(120))
		for q := 0; q < 60; q++ {
			p := randomQuery(r)
			origin := bgp.ASN(1 + r.Intn(10)) // 9, 10 never appear in ROAs
			got := reg.Validate(p, origin)
			want := reg.validateScan(p, origin)
			if got != want {
				t.Fatalf("trial %d: Validate(%s, AS%d) = %v, want %v (scan)", trial, p, origin, got, want)
			}
		}
	}
}

// TestIndexInvalidatedByAdd proves the index rebuilds after Add: a
// lookup, a mutation, and a second lookup that must see the new ROA.
func TestIndexInvalidatedByAdd(t *testing.T) {
	reg := &Registry{}
	reg.Add(ROA{Prefix: netip.MustParsePrefix("10.0.0.0/16"), MaxLength: 24, ASN: 1})
	p := netip.MustParsePrefix("10.0.1.0/24")
	if got := reg.Validate(p, 2); got != Invalid {
		t.Fatalf("pre-add Validate = %v, want Invalid", got)
	}
	reg.Add(ROA{Prefix: netip.MustParsePrefix("10.0.0.0/16"), MaxLength: 24, ASN: 2})
	if got := reg.Validate(p, 2); got != Valid {
		t.Fatalf("post-add Validate = %v, want Valid", got)
	}
	if got := len(reg.CoveringROAs(p)); got != 2 {
		t.Fatalf("post-add CoveringROAs = %d entries, want 2", got)
	}
}

// TestInvalidROATolerated proves a malformed (zero-prefix) ROA neither
// panics the index build nor affects validation — the old linear scan
// ignored it, and so must the indexed path.
func TestInvalidROATolerated(t *testing.T) {
	reg := &Registry{}
	reg.Add(ROA{ASN: 1}) // zero-value, invalid prefix
	reg.Add(ROA{Prefix: netip.MustParsePrefix("10.0.0.0/16"), MaxLength: 32, ASN: 2})
	p := netip.MustParsePrefix("10.0.0.1/32")
	if got := reg.Validate(p, 2); got != Valid {
		t.Fatalf("Validate = %v, want Valid", got)
	}
	if got := reg.Validate(p, 1); got != Invalid {
		t.Fatalf("Validate wrong-origin = %v, want Invalid", got)
	}
	if got := len(reg.CoveringROAs(p)); got != 1 {
		t.Fatalf("CoveringROAs = %d entries, want 1", got)
	}
	if got := reg.Validate(netip.Prefix{}, 1); got != NotFound {
		t.Fatalf("Validate(invalid prefix) = %v, want NotFound", got)
	}
}

// TestStatsIPv6Primary covers the Stats host-prefix fix: an AS whose
// primary prefix is IPv6 must probe a /128 host route, not an invalid
// netip.PrefixFrom(v6addr, 32), and classify as covered.
func TestStatsIPv6Primary(t *testing.T) {
	topo := &topology.Topology{
		ASes: map[bgp.ASN]*topology.AS{},
	}
	v6 := netip.MustParsePrefix("2001:db8:1::/48")
	v4 := netip.MustParsePrefix("10.9.0.0/16")
	topo.ASes[100] = &topology.AS{ASN: 100, Prefixes: []netip.Prefix{v6}}
	topo.ASes[200] = &topology.AS{ASN: 200, Prefixes: []netip.Prefix{v4}}
	topo.Order = []bgp.ASN{100, 200}

	reg := &Registry{}
	reg.Add(ROA{Prefix: v6, MaxLength: 128, ASN: 100}) // v6 host routes welcome
	reg.Add(ROA{Prefix: v4, MaxLength: 16, ASN: 200})  // v4 host routes stranded

	st := reg.Stats(topo)
	if st.ASesTotal != 2 {
		t.Fatalf("ASesTotal = %d, want 2", st.ASesTotal)
	}
	if st.ASesCovered != 2 {
		t.Fatalf("ASesCovered = %d, want 2 (the IPv6-primary AS was misclassified as uncovered)", st.ASesCovered)
	}
	if st.BlackholeFriendly != 1 || st.BlackholeStranded != 1 {
		t.Fatalf("friendly/stranded = %d/%d, want 1/1", st.BlackholeFriendly, st.BlackholeStranded)
	}
}
