// Package rpki implements the minimal Resource Public Key Infrastructure
// substrate §2 references: some blackholing providers "will accept
// announcements only via secure BGP using the RPKI". Route Origin
// Authorizations (ROAs) bind prefixes to origin ASes with a maximum
// accepted length; origin validation classifies an announcement as
// Valid, Invalid or NotFound (RFC 6811 semantics).
//
// The operationally interesting wrinkle for blackholing: a victim whose
// ROA caps maxLength at the aggregate's length (say /16 or /24) renders
// its own /32 blackhole announcements RPKI-Invalid — an RPKI-strict
// provider then rejects the mitigation request, another of the §10
// misconfiguration classes.
package rpki

import (
	"math/rand"
	"net/netip"
	"sort"
	"sync"

	"bgpblackholing/internal/bgp"
	"bgpblackholing/internal/topology"
)

// State is the RFC 6811 origin-validation outcome.
type State int

// Validation states.
const (
	NotFound State = iota // no covering ROA
	Valid                 // covered, origin and length match
	Invalid               // covered, but origin or length mismatch
)

// String names the state.
func (s State) String() string {
	switch s {
	case Valid:
		return "valid"
	case Invalid:
		return "invalid"
	}
	return "not-found"
}

// ROA is one Route Origin Authorization.
type ROA struct {
	Prefix    netip.Prefix
	MaxLength int
	ASN       bgp.ASN
}

// Covers reports whether the ROA's prefix covers p.
func (r ROA) Covers(p netip.Prefix) bool {
	return r.Prefix.Addr().Is4() == p.Addr().Is4() &&
		r.Prefix.Bits() <= p.Bits() && r.Prefix.Contains(p.Addr())
}

// Registry is a validated ROA set. Validation answers from an index —
// ROAs sorted by (address, length) plus the set of distinct prefix
// lengths present — built lazily on first lookup and invalidated by
// Add, so a query-time caller never pays a linear scan per event. All
// methods are safe for concurrent use.
type Registry struct {
	mu   sync.RWMutex
	roas []ROA

	// Index state: sorted is roas ordered by (addr, bits); lens4/lens6
	// are the distinct prefix lengths present per family, ascending. A
	// covering lookup for p probes, for each indexed length l <= p.Bits(),
	// the exact entry (p masked to l, l) by binary search — O(L log n)
	// with L bounded by 33/129 and in practice a handful.
	indexed      bool
	sorted       []ROA
	lens4, lens6 []int
}

// Add registers a ROA.
func (r *Registry) Add(roa ROA) {
	r.mu.Lock()
	r.roas = append(r.roas, roa)
	r.indexed = false
	r.mu.Unlock()
}

// Len returns the ROA count.
func (r *Registry) Len() int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.roas)
}

// ROAs returns a snapshot of the registered ROAs.
func (r *Registry) ROAs() []ROA {
	r.mu.RLock()
	defer r.mu.RUnlock()
	out := make([]ROA, len(r.roas))
	copy(out, r.roas)
	return out
}

// compareROA orders ROAs by masked address, then prefix length.
// netip.Addr.Compare sorts IPv4 before IPv6, so the families never
// interleave.
func compareROA(a, b ROA) int {
	if c := a.Prefix.Addr().Compare(b.Prefix.Addr()); c != 0 {
		return c
	}
	return a.Prefix.Bits() - b.Prefix.Bits()
}

// ensureIndex (re)builds the sorted index if Add invalidated it.
func (r *Registry) ensureIndex() {
	r.mu.RLock()
	ok := r.indexed
	r.mu.RUnlock()
	if ok {
		return
	}
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.indexed {
		return
	}
	r.sorted = r.sorted[:0]
	for _, roa := range r.roas {
		// An invalid (zero) prefix can cover nothing; indexing it would
		// index Bits() == -1. The old linear scan ignored such ROAs
		// (Covers returned false), so the index does too.
		if !roa.Prefix.IsValid() {
			continue
		}
		r.sorted = append(r.sorted, ROA{Prefix: roa.Prefix.Masked(), MaxLength: roa.MaxLength, ASN: roa.ASN})
	}
	sort.Slice(r.sorted, func(i, j int) bool { return compareROA(r.sorted[i], r.sorted[j]) < 0 })
	r.lens4, r.lens6 = r.lens4[:0], r.lens6[:0]
	seen4, seen6 := [129]bool{}, [129]bool{}
	for _, roa := range r.sorted {
		if roa.Prefix.Addr().Is4() {
			seen4[roa.Prefix.Bits()] = true
		} else {
			seen6[roa.Prefix.Bits()] = true
		}
	}
	for l := 0; l <= 128; l++ {
		if seen4[l] {
			r.lens4 = append(r.lens4, l)
		}
		if seen6[l] {
			r.lens6 = append(r.lens6, l)
		}
	}
	r.indexed = true
}

// coveringWalk visits every indexed ROA whose prefix covers p, in
// (address, length) order, without allocating: one binary search per
// distinct ROA prefix length no longer than p. Returning false stops
// the walk. Caller holds the read lock with the index built.
func (r *Registry) coveringWalk(p netip.Prefix, visit func(ROA) bool) {
	lens := r.lens4
	if !p.Addr().Is4() {
		lens = r.lens6
	}
	for _, l := range lens {
		if l > p.Bits() {
			return
		}
		q, err := p.Addr().Prefix(l)
		if err != nil {
			continue
		}
		probe := ROA{Prefix: q}
		i := sort.Search(len(r.sorted), func(i int) bool { return compareROA(r.sorted[i], probe) >= 0 })
		for ; i < len(r.sorted) && r.sorted[i].Prefix == q; i++ {
			if !visit(r.sorted[i]) {
				return
			}
		}
	}
}

// CoveringROAs returns every ROA whose prefix covers p, in (address,
// length) order. The lookup is indexed: one binary search per distinct
// ROA prefix length no longer than p, never a scan of the registry.
func (r *Registry) CoveringROAs(p netip.Prefix) []ROA {
	if !p.IsValid() {
		return nil
	}
	r.ensureIndex()
	r.mu.RLock()
	defer r.mu.RUnlock()
	var out []ROA
	r.coveringWalk(p, func(roa ROA) bool {
		out = append(out, roa)
		return true
	})
	return out
}

// Validate classifies an announcement of prefix p with origin AS o.
// Per RFC 6811: Valid if any covering ROA matches origin and length;
// Invalid if covering ROAs exist but none matches; NotFound otherwise.
// The covering set comes from the registry index (see coveringWalk) —
// the hot query-time path neither scans the registry nor allocates.
func (r *Registry) Validate(p netip.Prefix, origin bgp.ASN) State {
	if !p.IsValid() {
		return NotFound
	}
	r.ensureIndex()
	r.mu.RLock()
	defer r.mu.RUnlock()
	state := NotFound
	r.coveringWalk(p, func(roa ROA) bool {
		state = Invalid
		if roa.ASN == origin && p.Bits() <= roa.MaxLength {
			state = Valid
			return false
		}
		return true
	})
	return state
}

// validateScan is the pre-index O(n) reference implementation, kept as
// the property-test oracle for the indexed Validate/CoveringROAs path.
func (r *Registry) validateScan(p netip.Prefix, origin bgp.ASN) State {
	r.mu.RLock()
	defer r.mu.RUnlock()
	covered := false
	for _, roa := range r.roas {
		if !roa.Covers(p) {
			continue
		}
		covered = true
		if roa.ASN == origin && p.Bits() <= roa.MaxLength {
			return Valid
		}
	}
	if covered {
		return Invalid
	}
	return NotFound
}

// ValidOrigin adapts the registry to the collector layer's validation
// hook: RPKI-strict providers accept only Valid announcements
// (NotFound is rejected too — strict providers demand a ROA).
func (r *Registry) ValidOrigin(p netip.Prefix, origin bgp.ASN) bool {
	return r.Validate(p, origin) == Valid
}

// BuildConfig parameterises registry synthesis.
type BuildConfig struct {
	Seed int64
	// Coverage is the fraction of ASes publishing ROAs.
	Coverage float64
	// FracBlackholeFriendly is the fraction of covered ASes whose ROAs
	// allow host routes (maxLength = 32/128); the rest cap maxLength at
	// the aggregate length, making their own /32 blackhole
	// announcements Invalid.
	FracBlackholeFriendly float64
}

// DefaultBuildConfig reflects mid-2010s RPKI deployment: partial
// coverage, and many ROAs minted without blackholing in mind.
func DefaultBuildConfig() BuildConfig {
	return BuildConfig{Seed: 42, Coverage: 0.35, FracBlackholeFriendly: 0.6}
}

// Build synthesises the registry for a topology.
func Build(topo *topology.Topology, cfg BuildConfig) *Registry {
	r := rand.New(rand.NewSource(cfg.Seed))
	reg := &Registry{}
	for _, asn := range topo.Order {
		if r.Float64() >= cfg.Coverage {
			continue
		}
		friendly := r.Float64() < cfg.FracBlackholeFriendly
		for _, p := range topo.AS(asn).Prefixes {
			maxLen := p.Bits()
			if friendly {
				if p.Addr().Is4() {
					maxLen = 32
				} else {
					maxLen = 128
				}
			}
			reg.Add(ROA{Prefix: p, MaxLength: maxLen, ASN: asn})
		}
	}
	sort.Slice(reg.roas, func(i, j int) bool {
		a, b := reg.roas[i], reg.roas[j]
		if a.Prefix.Addr() != b.Prefix.Addr() {
			return a.Prefix.Addr().Less(b.Prefix.Addr())
		}
		return a.Prefix.Bits() < b.Prefix.Bits()
	})
	return reg
}

// CoverageStats summarises a registry against a topology.
type CoverageStats struct {
	ASesCovered       int
	ASesTotal         int
	BlackholeFriendly int // covered ASes whose host routes validate
	BlackholeStranded int // covered ASes whose /32s are Invalid
}

// Stats computes coverage over the ASes' primary prefixes, probing each
// AS's host route (/32 or /128 by family) against the registry.
func (reg *Registry) Stats(topo *topology.Topology) CoverageStats {
	var st CoverageStats
	for _, asn := range topo.Order {
		st.ASesTotal++
		as := topo.AS(asn)
		if len(as.Prefixes) == 0 {
			continue
		}
		primary := as.Prefixes[0]
		host := netip.PrefixFrom(primary.Addr(), primary.Addr().BitLen())
		switch reg.Validate(host, asn) {
		case Valid:
			st.ASesCovered++
			st.BlackholeFriendly++
		case Invalid:
			st.ASesCovered++
			st.BlackholeStranded++
		}
	}
	return st
}
