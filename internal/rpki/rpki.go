// Package rpki implements the minimal Resource Public Key Infrastructure
// substrate §2 references: some blackholing providers "will accept
// announcements only via secure BGP using the RPKI". Route Origin
// Authorizations (ROAs) bind prefixes to origin ASes with a maximum
// accepted length; origin validation classifies an announcement as
// Valid, Invalid or NotFound (RFC 6811 semantics).
//
// The operationally interesting wrinkle for blackholing: a victim whose
// ROA caps maxLength at the aggregate's length (say /16 or /24) renders
// its own /32 blackhole announcements RPKI-Invalid — an RPKI-strict
// provider then rejects the mitigation request, another of the §10
// misconfiguration classes.
package rpki

import (
	"math/rand"
	"net/netip"
	"sort"

	"bgpblackholing/internal/bgp"
	"bgpblackholing/internal/topology"
)

// State is the RFC 6811 origin-validation outcome.
type State int

// Validation states.
const (
	NotFound State = iota // no covering ROA
	Valid                 // covered, origin and length match
	Invalid               // covered, but origin or length mismatch
)

// String names the state.
func (s State) String() string {
	switch s {
	case Valid:
		return "valid"
	case Invalid:
		return "invalid"
	}
	return "not-found"
}

// ROA is one Route Origin Authorization.
type ROA struct {
	Prefix    netip.Prefix
	MaxLength int
	ASN       bgp.ASN
}

// Covers reports whether the ROA's prefix covers p.
func (r ROA) Covers(p netip.Prefix) bool {
	return r.Prefix.Addr().Is4() == p.Addr().Is4() &&
		r.Prefix.Bits() <= p.Bits() && r.Prefix.Contains(p.Addr())
}

// Registry is a validated ROA set.
type Registry struct {
	roas []ROA
}

// Add registers a ROA.
func (r *Registry) Add(roa ROA) { r.roas = append(r.roas, roa) }

// Len returns the ROA count.
func (r *Registry) Len() int { return len(r.roas) }

// Validate classifies an announcement of prefix p with origin AS o.
// Per RFC 6811: Valid if any covering ROA matches origin and length;
// Invalid if covering ROAs exist but none matches; NotFound otherwise.
func (r *Registry) Validate(p netip.Prefix, origin bgp.ASN) State {
	covered := false
	for _, roa := range r.roas {
		if !roa.Covers(p) {
			continue
		}
		covered = true
		if roa.ASN == origin && p.Bits() <= roa.MaxLength {
			return Valid
		}
	}
	if covered {
		return Invalid
	}
	return NotFound
}

// ValidOrigin adapts the registry to the collector layer's validation
// hook: RPKI-strict providers accept only Valid announcements
// (NotFound is rejected too — strict providers demand a ROA).
func (r *Registry) ValidOrigin(p netip.Prefix, origin bgp.ASN) bool {
	return r.Validate(p, origin) == Valid
}

// BuildConfig parameterises registry synthesis.
type BuildConfig struct {
	Seed int64
	// Coverage is the fraction of ASes publishing ROAs.
	Coverage float64
	// FracBlackholeFriendly is the fraction of covered ASes whose ROAs
	// allow host routes (maxLength = 32/128); the rest cap maxLength at
	// the aggregate length, making their own /32 blackhole
	// announcements Invalid.
	FracBlackholeFriendly float64
}

// DefaultBuildConfig reflects mid-2010s RPKI deployment: partial
// coverage, and many ROAs minted without blackholing in mind.
func DefaultBuildConfig() BuildConfig {
	return BuildConfig{Seed: 42, Coverage: 0.35, FracBlackholeFriendly: 0.6}
}

// Build synthesises the registry for a topology.
func Build(topo *topology.Topology, cfg BuildConfig) *Registry {
	r := rand.New(rand.NewSource(cfg.Seed))
	reg := &Registry{}
	for _, asn := range topo.Order {
		if r.Float64() >= cfg.Coverage {
			continue
		}
		friendly := r.Float64() < cfg.FracBlackholeFriendly
		for _, p := range topo.AS(asn).Prefixes {
			maxLen := p.Bits()
			if friendly {
				if p.Addr().Is4() {
					maxLen = 32
				} else {
					maxLen = 128
				}
			}
			reg.Add(ROA{Prefix: p, MaxLength: maxLen, ASN: asn})
		}
	}
	sort.Slice(reg.roas, func(i, j int) bool {
		a, b := reg.roas[i], reg.roas[j]
		if a.Prefix.Addr() != b.Prefix.Addr() {
			return a.Prefix.Addr().Less(b.Prefix.Addr())
		}
		return a.Prefix.Bits() < b.Prefix.Bits()
	})
	return reg
}

// CoverageStats summarises a registry against a topology.
type CoverageStats struct {
	ASesCovered       int
	ASesTotal         int
	BlackholeFriendly int // covered ASes whose host routes validate
	BlackholeStranded int // covered ASes whose /32s are Invalid
}

// Stats computes coverage over IPv4 primary prefixes.
func (reg *Registry) Stats(topo *topology.Topology) CoverageStats {
	var st CoverageStats
	for _, asn := range topo.Order {
		st.ASesTotal++
		as := topo.AS(asn)
		if len(as.Prefixes) == 0 {
			continue
		}
		primary := as.Prefixes[0]
		host := netip.PrefixFrom(primary.Addr(), 32)
		switch reg.Validate(host, asn) {
		case Valid:
			st.ASesCovered++
			st.BlackholeFriendly++
		case Invalid:
			st.ASesCovered++
			st.BlackholeStranded++
		}
	}
	return st
}
