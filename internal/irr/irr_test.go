package irr

import (
	"strings"
	"testing"

	"bgpblackholing/internal/topology"
)

func corpusWorld(t *testing.T) *topology.Topology {
	t.Helper()
	topo, err := topology.Generate(topology.DefaultConfig().Scaled(0.2))
	if err != nil {
		t.Fatal(err)
	}
	return topo
}

func TestGenerateCorpusCoversDocumentedProviders(t *testing.T) {
	topo := corpusWorld(t)
	docs := GenerateCorpus(topo, 1)
	byAS := map[int64][]Document{}
	for _, d := range docs {
		byAS[int64(d.ASN)] = append(byAS[int64(d.ASN)], d)
	}
	for _, asn := range topo.Order {
		as := topo.ASes[asn]
		if as.Blackholing == nil {
			continue
		}
		docsFor := byAS[int64(asn)]
		switch as.Blackholing.Doc {
		case topology.DocIRR, topology.DocWeb:
			if len(docsFor) == 0 {
				t.Fatalf("documented provider AS%d has no corpus document", asn)
			}
			found := false
			for _, d := range docsFor {
				if strings.Contains(d.Text, as.Blackholing.Communities[0].String()) {
					found = true
				}
			}
			if !found {
				t.Fatalf("AS%d corpus misses its blackhole community", asn)
			}
		case topology.DocNone, topology.DocPrivate:
			for _, d := range docsFor {
				if strings.Contains(strings.ToLower(d.Text), "blackhol") &&
					strings.Contains(d.Text, as.Blackholing.Communities[0].String()) {
					t.Fatalf("undocumented provider AS%d leaked into corpus", asn)
				}
			}
		}
	}
}

func TestGenerateCorpusIXPPages(t *testing.T) {
	topo := corpusWorld(t)
	docs := GenerateCorpus(topo, 1)
	nIXP := 0
	for _, d := range docs {
		if d.IXPID >= 0 && d.ASN == 0 {
			nIXP++
			x := topo.IXPs[d.IXPID]
			if !strings.Contains(d.Text, x.Blackholing.Communities[0].String()) {
				t.Fatalf("IXP %s page misses community", x.Name)
			}
			if !strings.Contains(d.Text, x.BlackholingIPv4.String()) {
				t.Fatalf("IXP %s page misses blackholing IP", x.Name)
			}
		}
	}
	if nIXP != len(topo.BlackholingIXPs()) {
		t.Fatalf("got %d IXP pages, want %d", nIXP, len(topo.BlackholingIXPs()))
	}
}

func TestGenerateCorpusDeterministic(t *testing.T) {
	topo := corpusWorld(t)
	a := GenerateCorpus(topo, 7)
	b := GenerateCorpus(topo, 7)
	if len(a) != len(b) {
		t.Fatal("corpus sizes differ")
	}
	for i := range a {
		if a[i].Text != b[i].Text {
			t.Fatalf("document %d differs between runs", i)
		}
	}
}

func TestParseRPSL(t *testing.T) {
	text := "aut-num:   AS65001\nremarks:   65001:666  blackhole\nremarks:   65001:100  learned from customer\nsource: RADB\n"
	attrs := ParseRPSL(text)
	if len(attrs) != 4 {
		t.Fatalf("got %d attributes", len(attrs))
	}
	if attrs[0].Name != "aut-num" || attrs[0].Value != "AS65001" {
		t.Fatalf("attr[0] = %+v", attrs[0])
	}
	if attrs[1].Name != "remarks" || !strings.Contains(attrs[1].Value, "65001:666") {
		t.Fatalf("attr[1] = %+v", attrs[1])
	}
}

func TestSourceString(t *testing.T) {
	if SourceIRR.String() != "irr" || SourceWeb.String() != "web" {
		t.Fatal("source strings wrong")
	}
}
