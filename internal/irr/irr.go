// Package irr models the documentation sources the paper mines to build
// its blackhole-communities dictionary (§4.1): Internet Routing Registry
// records in RPSL syntax (RADb-style aut-num objects whose remarks
// document BGP communities) and free-text operator web pages.
//
// The generator renders a documentation corpus from the synthetic
// topology's ground truth; the parser side is exercised by package
// dictionary, which extracts community semantics back out of the text
// with keyword/lemma matching, never peeking at the ground truth.
package irr

import (
	"fmt"
	"math/rand"
	"strings"

	"bgpblackholing/internal/bgp"
	"bgpblackholing/internal/topology"
)

// Source identifies where a document was collected.
type Source int

// Document sources.
const (
	SourceIRR Source = iota // RADb aut-num object
	SourceWeb               // operator web page
)

// String names the source.
func (s Source) String() string {
	if s == SourceWeb {
		return "web"
	}
	return "irr"
}

// Document is one collected piece of operator documentation.
type Document struct {
	Source Source
	// ASN is the documenting network (0 for IXP documents).
	ASN bgp.ASN
	// IXPID is the documenting IXP (-1 for AS documents).
	IXPID int
	Text  string
}

// blackholePhrases are the wordings operators actually use; the corpus
// varies them so the dictionary's lemma matching is meaningfully tested.
var blackholePhrases = []string{
	"blackhole",
	"black hole",
	"blackholing",
	"null route",
	"null-route",
	"RTBH (remotely triggered blackholing)",
	"discard traffic (blackhole)",
}

// tePhrases label ordinary traffic-engineering/relationship communities.
var tePhrases = []string{
	"learned from customer",
	"learned from peer",
	"learned from upstream",
	"do not announce to peers",
	"prepend once to all peers",
	"prepend twice to all peers",
	"set local preference 80",
	"set local preference 120",
	"peering routes",
	"backup routes only",
	"received in Europe",
	"received in North America",
}

// GenerateCorpus renders the full documentation corpus for the topology:
// one IRR record and/or web page per documented blackholing provider,
// plain routing-policy records for other transit networks (these feed
// the non-blackhole dictionary of §4.1's Figure 2 analysis), and a page
// or record per blackholing IXP.
//
// Providers whose service is documented only via private communication
// (DocPrivate) or not at all (DocNone) produce no blackhole text, so a
// correct extractor must not find them here.
func GenerateCorpus(topo *topology.Topology, seed int64) []Document {
	r := rand.New(rand.NewSource(seed))
	var docs []Document

	for _, asn := range topo.Order {
		as := topo.ASes[asn]
		isTransit := as.Kind() == topology.KindTransitAccess
		hasDocumentedBH := as.Blackholing != nil &&
			(as.Blackholing.Doc == topology.DocIRR || as.Blackholing.Doc == topology.DocWeb)
		if !isTransit && !hasDocumentedBH {
			continue
		}

		teComms := as.RoutingCommunities
		switch {
		case hasDocumentedBH && as.Blackholing.Doc == topology.DocIRR:
			docs = append(docs, Document{
				Source: SourceIRR, ASN: asn, IXPID: -1,
				Text: renderRPSL(as, teComms, true, r),
			})
		case hasDocumentedBH && as.Blackholing.Doc == topology.DocWeb:
			docs = append(docs, Document{
				Source: SourceWeb, ASN: asn, IXPID: -1,
				Text: renderWebPage(as, r),
			})
			// Web-documented providers usually still keep a plain IRR
			// record (without the blackhole community).
			docs = append(docs, Document{
				Source: SourceIRR, ASN: asn, IXPID: -1,
				Text: renderRPSL(as, teComms, false, r),
			})
		default:
			// Plain routing policy only.
			docs = append(docs, Document{
				Source: SourceIRR, ASN: asn, IXPID: -1,
				Text: renderRPSL(as, teComms, false, r),
			})
		}
	}

	for _, x := range topo.IXPs {
		if x.Blackholing == nil {
			continue
		}
		docs = append(docs, Document{
			Source: SourceWeb, ASN: 0, IXPID: x.ID,
			Text: renderIXPPage(x, r),
		})
	}
	return docs
}

func renderRPSL(as *topology.AS, teComms []bgp.Community, withBlackhole bool, r *rand.Rand) string {
	var b strings.Builder
	fmt.Fprintf(&b, "aut-num:        AS%d\n", as.ASN)
	fmt.Fprintf(&b, "as-name:        NET-%d\n", as.ASN)
	fmt.Fprintf(&b, "descr:          Autonomous network %d\n", as.ASN)
	fmt.Fprintf(&b, "country:        %s\n", as.Country)
	b.WriteString("remarks:        ---- BGP communities ----\n")
	for i, c := range teComms {
		fmt.Fprintf(&b, "remarks:        %s  %s\n", c, tePhrases[i%len(tePhrases)])
	}
	if withBlackhole && as.Blackholing != nil {
		svc := as.Blackholing
		phrase := blackholePhrases[r.Intn(len(blackholePhrases))]
		fmt.Fprintf(&b, "remarks:        %s  %s\n", svc.Communities[0], phrase)
		for i, rc := range svc.Communities[1:] {
			scope := "regional"
			if i < len(svc.RegionalScopes) {
				scope = svc.RegionalScopes[i]
			}
			fmt.Fprintf(&b, "remarks:        %s  blackhole in %s only\n", rc, scope)
		}
		if svc.Shared && len(svc.Communities) > 1 {
			// Shared legacy communities are mentioned too.
			fmt.Fprintf(&b, "remarks:        %s  legacy null-route community (shared)\n",
				svc.Communities[len(svc.Communities)-1])
		}
		for _, lc := range svc.LargeCommunities {
			fmt.Fprintf(&b, "remarks:        %s  blackhole (large community format)\n", lc)
		}
		fmt.Fprintf(&b, "remarks:        blackhole announcements accepted up to /%d\n", svc.MaxPrefixLen)
		if svc.RequiresIRRRegistration {
			b.WriteString("remarks:        prefix must be registered in an IRR\n")
		}
	}
	fmt.Fprintf(&b, "mnt-by:         MAINT-AS%d\n", as.ASN)
	b.WriteString("source:         RADB\n")
	return b.String()
}

func renderWebPage(as *topology.AS, r *rand.Rand) string {
	svc := as.Blackholing
	phrase := blackholePhrases[r.Intn(len(blackholePhrases))]
	var b strings.Builder
	fmt.Fprintf(&b, "AS%d Customer BGP Guide\n\n", as.ASN)
	fmt.Fprintf(&b, "We offer a %s service to our BGP customers. ", phrase)
	fmt.Fprintf(&b, "To drop traffic towards a destination under attack, announce the prefix tagged with community %s. ", svc.Communities[0])
	fmt.Fprintf(&b, "Announcements more specific than /24 up to /%d are accepted when tagged.\n", svc.MaxPrefixLen)
	for i, rc := range svc.Communities[1:] {
		scope := "selected regions"
		if i < len(svc.RegionalScopes) {
			scope = svc.RegionalScopes[i]
		}
		fmt.Fprintf(&b, "Use %s to blackhole in %s only.\n", rc, scope)
	}
	for _, lc := range svc.LargeCommunities {
		fmt.Fprintf(&b, "Networks with 32-bit ASNs may use the large community %s for blackholing.\n", lc)
	}
	if svc.RequiresIRRRegistration {
		b.WriteString("The announced prefix must be covered by a valid IRR route object.\n")
	}
	b.WriteString("\nFor peering information see our PeeringDB record.\n")
	return b.String()
}

func renderIXPPage(x *topology.IXP, r *rand.Rand) string {
	svc := x.Blackholing
	phrase := blackholePhrases[r.Intn(len(blackholePhrases))]
	var b strings.Builder
	fmt.Fprintf(&b, "%s Route Server Services\n\n", x.Name)
	fmt.Fprintf(&b, "Members connected to the %s route server (AS%d) can use our %s service free of charge. ",
		x.Name, x.RouteServerASN, phrase)
	fmt.Fprintf(&b, "Announce the victim prefix to the route server with the community %s. ", svc.Communities[0])
	fmt.Fprintf(&b, "Traffic will be redirected to the blackholing next-hop %s (IPv6: %s) and discarded.\n",
		x.BlackholingIPv4, x.BlackholingIPv6)
	fmt.Fprintf(&b, "Host routes up to /%d are accepted when tagged with the blackhole community.\n", svc.MaxPrefixLen)
	if svc.RequiresIRRRegistration {
		b.WriteString("Announcements are filtered against IRR route objects.\n")
	}
	return b.String()
}

// ParseRPSL splits an RPSL object into attribute/value lines, preserving
// repeated attributes such as remarks in order.
func ParseRPSL(text string) []Attribute {
	var out []Attribute
	for _, line := range strings.Split(text, "\n") {
		name, value, ok := strings.Cut(line, ":")
		if !ok {
			continue
		}
		out = append(out, Attribute{
			Name:  strings.TrimSpace(strings.ToLower(name)),
			Value: strings.TrimSpace(value),
		})
	}
	return out
}

// Attribute is one RPSL attribute line.
type Attribute struct {
	Name  string
	Value string
}
