package scans

import (
	"net/netip"
	"testing"
)

func addrs(n int) []netip.Addr {
	out := make([]netip.Addr, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, netip.AddrFrom4([4]byte{byte(30 + i%100), byte(i >> 8), byte(i), byte(1 + i%250)}))
	}
	return out
}

func TestProfileDeterministic(t *testing.T) {
	a := netip.MustParseAddr("31.2.3.4")
	p1 := Profile(a, 42)
	p2 := Profile(a, 42)
	if len(p1.Open) != len(p2.Open) || p1.Tarpit != p2.Tarpit || p1.AlexaRank != p2.AlexaRank {
		t.Fatal("profile not deterministic")
	}
}

func TestProfileAggregateDistribution(t *testing.T) {
	const n = 20000
	var withService, withHTTP, tarpits, allMail, alexa, httpHosts, respond int
	ftpTotal, ftpWithHTTP := 0, 0
	for _, a := range addrs(n) {
		p := Profile(a, 42)
		if p.HasAnyService() {
			withService++
		}
		if p.Open[HTTP] {
			withHTTP++
			httpHosts++
			if p.RespondsHTTP {
				respond++
			}
			if p.AlexaRank > 0 {
				alexa++
			}
		}
		if p.Tarpit {
			tarpits++
		}
		if p.AllMail() {
			allMail++
		}
		if p.Open[FTP] {
			ftpTotal++
			if p.Open[HTTP] {
				ftpWithHTTP++
			}
		}
	}
	frac := func(x int) float64 { return float64(x) / n }
	// >60% of prefixes expose at least one service.
	if f := frac(withService); f < 0.55 || f > 0.70 {
		t.Fatalf("service fraction = %.2f, want ~0.61", f)
	}
	// HTTP on ~53% of all prefixes.
	if f := frac(withHTTP); f < 0.45 || f > 0.62 {
		t.Fatalf("HTTP fraction = %.2f, want ~0.53", f)
	}
	// ~4% tarpits.
	if f := frac(tarpits); f < 0.015 || f > 0.06 {
		t.Fatalf("tarpit fraction = %.3f, want ~0.04", f)
	}
	// ~10% all-mail.
	if f := frac(allMail); f < 0.06 || f > 0.18 {
		t.Fatalf("all-mail fraction = %.2f, want ~0.10", f)
	}
	// 90% of FTP co-located with HTTP.
	if ftpTotal > 0 {
		if f := float64(ftpWithHTTP) / float64(ftpTotal); f < 0.80 {
			t.Fatalf("FTP-with-HTTP = %.2f, want ~0.9", f)
		}
	}
	// 61% of HTTP hosts respond to GET.
	if f := float64(respond) / float64(httpHosts); f < 0.52 || f > 0.70 {
		t.Fatalf("HTTP response rate = %.2f, want ~0.61", f)
	}
	// ~3% of HTTP hosts in Alexa top 1M.
	if f := float64(alexa) / float64(httpHosts); f < 0.01 || f > 0.06 {
		t.Fatalf("Alexa fraction = %.3f, want ~0.03", f)
	}
}

func TestTLDDistribution(t *testing.T) {
	counts := map[string]int{}
	total := 0
	for _, a := range addrs(30000) {
		p := Profile(a, 42)
		if p.TLD != "" {
			counts[p.TLD]++
			total++
		}
	}
	if total == 0 {
		t.Fatal("no TLDs assigned")
	}
	com := float64(counts["com"]) / float64(total)
	ru := float64(counts["ru"]) / float64(total)
	if com < 0.30 || com > 0.46 {
		t.Fatalf(".com share = %.2f, want ~0.38", com)
	}
	if ru < 0.10 || ru > 0.22 {
		t.Fatalf(".ru share = %.2f, want ~0.16", ru)
	}
	if counts["com"] < counts["ru"] || counts["ru"] < counts["net"] {
		t.Fatal("TLD ordering wrong")
	}
}

func TestActivityDistribution(t *testing.T) {
	const n = 50000
	var suspicious, probers, scanners, both int
	for _, a := range addrs(n) {
		act := ActivityFor(a, 100, 42)
		if !act.Suspicious() {
			continue
		}
		suspicious++
		switch {
		case act.Prober && act.Scanner:
			both++
		case act.Prober:
			probers++
		case act.Scanner:
			scanners++
		}
	}
	if f := float64(suspicious) / n; f < 0.01 || f > 0.04 {
		t.Fatalf("suspicious fraction = %.3f, want ~0.02", f)
	}
	matches := probers + scanners + both
	if matches == 0 {
		t.Fatal("no prober/scanner matches")
	}
	if f := float64(probers+both) / float64(matches); f < 0.85 {
		t.Fatalf("prober share = %.2f, want > 0.9", f)
	}
	if f := float64(both) / float64(matches); f > 0.06 {
		t.Fatalf("both share = %.2f, want ~0.02", f)
	}
}

func TestActivityVariesByDay(t *testing.T) {
	diff := false
	for _, a := range addrs(2000) {
		if ActivityFor(a, 1, 42).Suspicious() != ActivityFor(a, 200, 42).Suspicious() {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("activity identical across days")
	}
}

func TestServicesList(t *testing.T) {
	if len(Services()) != 13 {
		t.Fatalf("services = %d, want 13", len(Services()))
	}
}

func TestAllMailRequiresAllSix(t *testing.T) {
	p := HostProfile{Open: map[Service]bool{SMTP: true, IMAP: true}}
	if p.AllMail() {
		t.Fatal("partial mail stack reported as full")
	}
}
