// Package scans substitutes for the Internet-wide scan datasets of §8
// (scans.io TCP/UDP scans, Alexa top-1M DNS mappings, DNSDB and the
// CDN's proprietary reputation feeds): it deterministically profiles the
// services running on any IP address and the suspicious activity
// originating from it, with aggregate distributions matching the
// paper's findings (HTTP dominant, mail-protocol bundles, tarpits, a
// small Alexa overlap, and ~2% of blackholed prefixes showing malicious
// source behaviour).
package scans

import (
	"net/netip"
)

// Service is one scanned protocol.
type Service string

// The scanned protocols of Figure 7(a).
const (
	HTTP   Service = "HTTP"
	HTTPS  Service = "HTTPS"
	SSH    Service = "SSH"
	FTP    Service = "FTP"
	Telnet Service = "Telnet"
	DNS    Service = "DNS"
	NTP    Service = "NTP"
	SMTP   Service = "SMTP"
	SMTPS  Service = "SMTPS"
	POP3   Service = "POP3"
	POP3S  Service = "POP3S"
	IMAP   Service = "IMAP"
	IMAPS  Service = "IMAPS"
)

// Services lists all scanned protocols in figure order.
func Services() []Service {
	return []Service{HTTP, HTTPS, SSH, FTP, Telnet, DNS, NTP, SMTP, SMTPS, POP3, POP3S, IMAP, IMAPS}
}

// mailServices are the six mail-related protocols.
var mailServices = []Service{SMTP, SMTPS, POP3, POP3S, IMAP, IMAPS}

// HostProfile describes the services offered by one host.
type HostProfile struct {
	// Open lists the host's accepting services.
	Open map[Service]bool
	// Tarpit marks hosts accepting connections on every tested port.
	Tarpit bool
	// RespondsHTTP reports whether an HTTP GET receives a response
	// (61% of blackholed hosts vs ~90% generally, §8).
	RespondsHTTP bool
	// AlexaRank is the Alexa top-1M rank of a site hosted here
	// (0 when none; about 3% of blackholed HTTP hosts).
	AlexaRank int
	// TLD is the dominant hosted domain's top-level domain.
	TLD string
}

// HasAnyService reports whether any port is open.
func (h *HostProfile) HasAnyService() bool { return len(h.Open) > 0 }

// AllMail reports whether all six mail protocols are open.
func (h *HostProfile) AllMail() bool {
	for _, s := range mailServices {
		if !h.Open[s] {
			return false
		}
	}
	return true
}

func mix(addr netip.Addr, salt uint64) uint64 {
	h := salt*0x9E3779B97F4A7C15 + 0x243F6A8885A308D3
	for _, b := range addr.As16() {
		h = (h ^ uint64(b)) * 0x100000001B3
	}
	h ^= h >> 33
	h *= 0xFF51AFD7ED558CCD
	h ^= h >> 33
	return h
}

func chance(addr netip.Addr, salt uint64, permille uint64) bool {
	return mix(addr, salt)%1000 < permille
}

// tlds weights the observed TLD distribution (§8: .com 38%, .ru 16%,
// .org 12%, .net 6%, .se 3%, long tail).
var tlds = []struct {
	tld    string
	weight int
}{
	{"com", 380}, {"ru", 160}, {"org", 119}, {"net", 60}, {"se", 30},
	{"de", 28}, {"pl", 25}, {"br", 24}, {"ua", 22}, {"io", 20},
	{"cn", 18}, {"info", 16}, {"biz", 14}, {"fr", 14}, {"nl", 12},
	{"uk", 12}, {"jp", 10}, {"it", 10}, {"es", 8}, {"other", 18},
}

// Profile deterministically derives the host profile of one address.
// The same address always yields the same profile (the scan snapshot is
// a fixed point in time, like a scans.io dump).
func Profile(addr netip.Addr, seed int64) HostProfile {
	s := uint64(seed)
	p := HostProfile{Open: map[Service]bool{}}

	// 40% of blackholed prefixes expose no scanned service (§8 finds
	// services for "more than 60%").
	if chance(addr, s^1, 385) {
		return p
	}

	// Tarpits: ~4% accept on everything.
	if chance(addr, s^2, 42) {
		p.Tarpit = true
		for _, svc := range Services() {
			p.Open[svc] = true
		}
		p.RespondsHTTP = chance(addr, s^3, 300)
		p.TLD = pickTLD(addr, s)
		return p
	}

	// HTTP dominates: ~85% of service-bearing prefixes (53% of all).
	hasHTTP := chance(addr, s^4, 860)
	if hasHTTP {
		p.Open[HTTP] = true
		if chance(addr, s^5, 550) {
			p.Open[HTTPS] = true
		}
	}
	// FTP: 90% co-located with HTTP (preconfigured virtual web hosts).
	if chance(addr, s^6, 280) {
		if hasHTTP || chance(addr, s^7, 100) {
			p.Open[FTP] = true
		}
	}
	// SSH: 79% co-located with HTTP.
	if chance(addr, s^8, 420) {
		if hasHTTP || chance(addr, s^9, 210) {
			p.Open[SSH] = true
		}
	}
	if chance(addr, s^10, 80) {
		p.Open[Telnet] = true
	}
	if chance(addr, s^11, 110) {
		p.Open[DNS] = true
	}
	if chance(addr, s^12, 60) {
		p.Open[NTP] = true
	}
	// Mail: ~16% of service-bearing prefixes run the full mail stack
	// (10% of all blackholed prefixes offer all six, §8); others run
	// partial mail.
	if chance(addr, s^13, 170) {
		for _, svc := range mailServices {
			p.Open[svc] = true
		}
	} else if chance(addr, s^14, 140) {
		p.Open[SMTP] = true
		if chance(addr, s^15, 500) {
			p.Open[IMAP] = true
		}
	}

	if p.Open[HTTP] {
		// 61% of blackholed HTTP hosts answer a GET (vs ~90% generally).
		p.RespondsHTTP = chance(addr, s^16, 610)
		// ~3% host an Alexa top-1M site.
		if chance(addr, s^17, 30) {
			p.AlexaRank = 1 + int(mix(addr, s^18)%1000000)
		}
		p.TLD = pickTLD(addr, s)
	}
	return p
}

func pickTLD(addr netip.Addr, s uint64) string {
	total := 0
	for _, t := range tlds {
		total += t.weight
	}
	x := int(mix(addr, s^19) % uint64(total))
	for _, t := range tlds {
		x -= t.weight
		if x < 0 {
			return t.tld
		}
	}
	return "com"
}

// Activity is the suspicious source behaviour of one address on one day
// (the CDN reputation feeds of §8).
type Activity struct {
	// Prober scans multiple CDN servers for a specific port.
	Prober bool
	// Scanner port-scans CDN infrastructure.
	Scanner bool
	// LoginAttempts marks repeated login attempts against CDN customers.
	LoginAttempts bool
}

// Suspicious reports any malicious behaviour.
func (a Activity) Suspicious() bool { return a.Prober || a.Scanner || a.LoginAttempts }

// ActivityFor returns the deterministic daily reputation record for an
// address. Across a blackholed-prefix population, roughly 2% of
// prefixes exhibit activity; of the prober/scanner matches over 90% are
// probers and about 2% are both (§8).
func ActivityFor(addr netip.Addr, day int, seed int64) Activity {
	s := uint64(seed) + uint64(day)*0xD6E8FEB86659FD93
	var a Activity
	if !chance(addr, s^100, 20) {
		return a // 98% of prefixes: no malicious behaviour
	}
	roll := mix(addr, s^101) % 100
	switch {
	case roll < 90:
		a.Prober = true
	case roll < 98:
		a.Scanner = true
	default:
		a.Prober, a.Scanner = true, true
	}
	a.LoginAttempts = chance(addr, s^102, 600)
	return a
}
