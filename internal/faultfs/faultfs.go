// Package faultfs provides fault-injected wrappers for chaos testing
// the persistence and session layers: files with a volatile page-cache
// model (bytes written become durable only on Sync; a simulated power
// loss discards the rest, optionally leaving a torn tail), scheduled
// error injection at precise operation counts, optional per-operation
// latency, and a flaky net.Conn that kills sessions on schedule.
//
// The store's Options.OpenSegment seam accepts FS.Open directly, so a
// test can drive the real append/seal/sync code paths while deciding
// exactly which write reaches the disk:
//
//	fs := faultfs.New()
//	st, _ := store.Open(dir, store.Options{
//		OpenSegment: func(path string, create bool) (store.SegmentFile, error) {
//			return fs.Open(path, create)
//		},
//	})
//	fs.CrashAt(faultfs.OpWrite, 7) // power loss at the 7th record write
//
// After a crash every further operation fails with ErrCrashed and the
// on-disk state holds exactly what had been synced — reopening the
// directory with a plain store then exercises real recovery.
package faultfs

import (
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"time"
)

// Op identifies one class of file operation for fault matching.
type Op uint8

// The file operations faults can target.
const (
	// OpCreate is the creation of a fresh file (Open with create=true).
	OpCreate Op = iota
	// OpWrite is one Write call (the store writes one record per call).
	OpWrite
	// OpSync is one Sync call (fsync).
	OpSync
	// OpClose is one Close call.
	OpClose
)

func (o Op) String() string {
	switch o {
	case OpCreate:
		return "create"
	case OpWrite:
		return "write"
	case OpSync:
		return "sync"
	case OpClose:
		return "close"
	}
	return fmt.Sprintf("op(%d)", uint8(o))
}

// ErrCrashed is returned by every operation after a simulated power
// loss: the process-side handle is gone, only synced bytes survive on
// disk.
var ErrCrashed = errors.New("faultfs: crashed")

// ErrInjected is the default error of FailAt rules.
var ErrInjected = errors.New("faultfs: injected I/O error")

// rule is one scheduled fault: when the countdown for its op reaches
// zero, the operation fails with err (or triggers a crash).
type rule struct {
	op        Op
	countdown int // 1 = the next matching op
	err       error
	crash     bool
}

// FS manufactures fault-injected files over the real filesystem. All
// methods are safe for concurrent use; operation counters are global
// across the FS's files, matching how a store writes through exactly
// one active segment at a time.
type FS struct {
	mu          sync.Mutex
	files       []*File
	rules       []*rule
	crashed     bool
	partialTail bool
	latency     time.Duration
	ops         map[Op]int
}

// New returns a fault-free FS; schedule faults with FailAt / CrashAt.
func New() *FS {
	return &FS{ops: map[Op]int{}}
}

// SetLatency makes every subsequent operation sleep d first —
// slow-disk simulation for backpressure tests.
func (fs *FS) SetLatency(d time.Duration) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.latency = d
}

// PartialTailOnCrash makes a crash flush half of the unsynced bytes to
// disk before discarding the rest — the torn-tail signature recovery
// must truncate away.
func (fs *FS) PartialTailOnCrash(on bool) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.partialTail = on
}

// FailAt schedules the n-th future operation of kind op (1-based) to
// fail with err (ErrInjected when err is nil). The file is otherwise
// untouched — no bytes are lost — so it simulates a transient I/O
// error, not a crash.
func (fs *FS) FailAt(op Op, n int, err error) {
	if err == nil {
		err = ErrInjected
	}
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.rules = append(fs.rules, &rule{op: op, countdown: n, err: err})
}

// CrashAt schedules a simulated power loss at the n-th future
// operation of kind op (1-based): that operation and every later one
// fail with ErrCrashed, and every byte written since each file's last
// Sync is discarded (or half-flushed, with PartialTailOnCrash).
func (fs *FS) CrashAt(op Op, n int) {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.rules = append(fs.rules, &rule{op: op, countdown: n, crash: true})
}

// Crash simulates a power loss now.
func (fs *FS) Crash() {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	fs.crashLocked(nil, nil)
}

// Crashed reports whether a crash (scheduled or manual) has fired.
func (fs *FS) Crashed() bool {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.crashed
}

// Ops returns how many operations of kind op have been attempted
// (including failed ones) — the group-commit tests count fsyncs here.
func (fs *FS) Ops(op Op) int {
	fs.mu.Lock()
	defer fs.mu.Unlock()
	return fs.ops[op]
}

// crashLocked discards unsynced bytes in every open file. When a write
// triggers the crash, trigger/pending name the file and the bytes of
// the in-flight write, so a partial tail can tear mid-record.
func (fs *FS) crashLocked(trigger *File, pending []byte) {
	if fs.crashed {
		return
	}
	fs.crashed = true
	for _, f := range fs.files {
		volatile := f.pending
		if f == trigger {
			volatile = append(append([]byte{}, volatile...), pending...)
		}
		if fs.partialTail && len(volatile) > 1 && f.f != nil {
			// Half the volatile bytes reached the platter: a torn tail.
			f.f.Write(volatile[:len(volatile)/2])
		}
		f.pending = nil
		if f.f != nil {
			f.f.Sync()
			f.f.Close()
			f.f = nil
		}
	}
}

// before accounts one operation and applies latency, scheduled faults
// and crash state, returning the error the operation must report.
// trigger/pending describe an in-flight write for torn-tail crashes.
func (fs *FS) before(op Op, trigger *File, pending []byte) error {
	fs.mu.Lock()
	if fs.latency > 0 {
		d := fs.latency
		fs.mu.Unlock()
		time.Sleep(d)
		fs.mu.Lock()
	}
	defer fs.mu.Unlock()
	if fs.crashed {
		return ErrCrashed
	}
	fs.ops[op]++
	for i, r := range fs.rules {
		if r.op != op {
			continue
		}
		r.countdown--
		if r.countdown > 0 {
			continue
		}
		fs.rules = append(fs.rules[:i], fs.rules[i+1:]...)
		if r.crash {
			fs.crashLocked(trigger, pending)
			return ErrCrashed
		}
		return r.err
	}
	return nil
}

// File is one fault-injected file. Writes land in a volatile buffer
// (the simulated page cache) and reach the real file only on Sync, so
// a crash loses exactly the unsynced suffix. File satisfies the
// store's SegmentFile interface.
type File struct {
	fs      *FS
	f       *os.File
	path    string
	pending []byte
	closed  bool
}

// Open opens path through the fault layer: create=true makes a fresh
// file (O_CREATE|O_EXCL), create=false reopens for appending — the two
// shapes the store's active-segment path uses.
func (fs *FS) Open(path string, create bool) (*File, error) {
	if create {
		if err := fs.before(OpCreate, nil, nil); err != nil {
			return nil, err
		}
	}
	flag := os.O_WRONLY | os.O_APPEND
	if create {
		flag = os.O_CREATE | os.O_EXCL | os.O_WRONLY
	}
	f, err := os.OpenFile(path, flag, 0o644)
	if err != nil {
		return nil, err
	}
	file := &File{fs: fs, f: f, path: path}
	fs.mu.Lock()
	fs.files = append(fs.files, file)
	fs.mu.Unlock()
	return file, nil
}

// Write buffers p in the volatile page cache; it reaches the disk on
// the next Sync. A crash triggered by this very write may leave a torn
// prefix of p on disk (PartialTailOnCrash).
func (f *File) Write(p []byte) (int, error) {
	if err := f.fs.before(OpWrite, f, p); err != nil {
		return 0, err
	}
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.closed {
		return 0, os.ErrClosed
	}
	f.pending = append(f.pending, p...)
	return len(p), nil
}

// Sync flushes the volatile buffer to the real file and fsyncs it —
// only now are the bytes crash-durable.
func (f *File) Sync() error {
	if err := f.fs.before(OpSync, nil, nil); err != nil {
		return err
	}
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.closed {
		return os.ErrClosed
	}
	if len(f.pending) > 0 {
		if _, err := f.f.Write(f.pending); err != nil {
			return err
		}
		f.pending = nil
	}
	return f.f.Sync()
}

// Close closes the handle. Like a real close, it does NOT make
// unsynced bytes durable — but it flushes them to the page cache (the
// real file), since only a crash, not an orderly close, loses them.
func (f *File) Close() error {
	if err := f.fs.before(OpClose, nil, nil); err != nil {
		return err
	}
	f.fs.mu.Lock()
	defer f.fs.mu.Unlock()
	if f.closed {
		return os.ErrClosed
	}
	f.closed = true
	if len(f.pending) > 0 {
		f.f.Write(f.pending)
		f.pending = nil
	}
	return f.f.Close()
}

// Name returns the file's path.
func (f *File) Name() string { return f.path }

// ---------------------------------------------------------------------
// FlakyConn — scheduled session faults over a real net.Conn.

// FlakyConn wraps a net.Conn and fails on schedule: after a set number
// of Read or Write calls the connection reports the configured error
// and closes the underlying conn, simulating a session reset mid-feed.
// Optional latency slows every operation (slow-peer simulation). Use
// it on either side of a BGP session to drive reconnect logic.
type FlakyConn struct {
	net.Conn

	mu         sync.Mutex
	readsLeft  int // remaining Read calls before failure; <0 = unlimited
	writesLeft int // remaining Write calls before failure; <0 = unlimited
	err        error
	latency    time.Duration
}

// Flaky wraps conn with no faults scheduled.
func Flaky(conn net.Conn) *FlakyConn {
	return &FlakyConn{Conn: conn, readsLeft: -1, writesLeft: -1}
}

// FailReadsAfter makes the (n+1)-th Read call fail with err (and every
// later one); the underlying conn is closed at that point. err nil
// defaults to ErrInjected.
func (c *FlakyConn) FailReadsAfter(n int, err error) *FlakyConn {
	if err == nil {
		err = ErrInjected
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.readsLeft, c.err = n, err
	return c
}

// FailWritesAfter makes the (n+1)-th Write call fail with err (and
// every later one); the underlying conn is closed at that point.
func (c *FlakyConn) FailWritesAfter(n int, err error) *FlakyConn {
	if err == nil {
		err = ErrInjected
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	c.writesLeft, c.err = n, err
	return c
}

// SetLatency delays every Read and Write by d.
func (c *FlakyConn) SetLatency(d time.Duration) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.latency = d
}

// use consumes one operation from the given budget, returning the
// scheduled error once it is exhausted.
func (c *FlakyConn) use(budget *int) error {
	c.mu.Lock()
	if c.latency > 0 {
		d := c.latency
		c.mu.Unlock()
		time.Sleep(d)
		c.mu.Lock()
	}
	defer c.mu.Unlock()
	if *budget < 0 {
		return nil
	}
	if *budget == 0 {
		c.Conn.Close() // the session is gone, not just this call
		return c.err
	}
	*budget--
	return nil
}

func (c *FlakyConn) Read(p []byte) (int, error) {
	if err := c.use(&c.readsLeft); err != nil {
		return 0, err
	}
	return c.Conn.Read(p)
}

func (c *FlakyConn) Write(p []byte) (int, error) {
	if err := c.use(&c.writesLeft); err != nil {
		return 0, err
	}
	return c.Conn.Write(p)
}
