package faultfs

import (
	"errors"
	"net"
	"os"
	"path/filepath"
	"testing"
)

// TestVolatileWrites proves the page-cache model: bytes written but not
// synced vanish at a crash; synced bytes survive.
func TestVolatileWrites(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "seg")
	fs := New()
	f, err := fs.Open(path, true)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("durable")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("volatile")); err != nil {
		t.Fatal(err)
	}
	fs.Crash()
	if _, err := f.Write([]byte("x")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("write after crash: got %v, want ErrCrashed", err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "durable" {
		t.Fatalf("on-disk after crash: %q, want only the synced bytes", data)
	}
}

// TestPartialTail proves the torn-tail mode flushes a strict prefix of
// the volatile bytes.
func TestPartialTail(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "seg")
	fs := New()
	fs.PartialTailOnCrash(true)
	f, err := fs.Open(path, true)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte("0123456789"))
	fs.Crash()
	data, _ := os.ReadFile(path)
	if len(data) == 0 || len(data) >= 10 {
		t.Fatalf("torn tail holds %d bytes, want a strict non-empty prefix of 10", len(data))
	}
	if string(data) != "0123456789"[:len(data)] {
		t.Fatalf("torn tail %q is not a prefix of the written bytes", data)
	}
}

// TestFailAtSchedule proves the countdown targets exactly the n-th
// operation of the chosen kind and fires once.
func TestFailAtSchedule(t *testing.T) {
	fs := New()
	f, err := fs.Open(filepath.Join(t.TempDir(), "seg"), true)
	if err != nil {
		t.Fatal(err)
	}
	fs.FailAt(OpWrite, 2, nil)
	if _, err := f.Write([]byte("a")); err != nil {
		t.Fatalf("write 1: %v", err)
	}
	if _, err := f.Write([]byte("b")); !errors.Is(err, ErrInjected) {
		t.Fatalf("write 2: got %v, want ErrInjected", err)
	}
	if _, err := f.Write([]byte("c")); err != nil {
		t.Fatalf("write 3 (rule consumed): %v", err)
	}
	if got := fs.Ops(OpWrite); got != 3 {
		t.Fatalf("Ops(OpWrite) = %d, want 3", got)
	}
}

// TestFlakyConn proves the read budget trips the scheduled error and
// closes the underlying conn.
func TestFlakyConn(t *testing.T) {
	client, server := net.Pipe()
	defer server.Close()
	fc := Flaky(client).FailReadsAfter(1, nil)
	go server.Write([]byte{1})
	buf := make([]byte, 1)
	if _, err := fc.Read(buf); err != nil {
		t.Fatalf("read 1 within budget: %v", err)
	}
	if _, err := fc.Read(buf); !errors.Is(err, ErrInjected) {
		t.Fatalf("read 2: got %v, want ErrInjected", err)
	}
	// The underlying conn is closed once the budget trips: the peer's
	// next write fails.
	if _, err := server.Write([]byte{2}); err == nil {
		t.Fatal("underlying conn still open after budget tripped")
	}
}
