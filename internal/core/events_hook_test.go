package core

import (
	"testing"
	"time"

	"bgpblackholing/internal/bgp"
	"bgpblackholing/internal/collector"
)

// TestEventsReturnsCopy is the aliasing regression test: Events used to
// return the engine's internal closed slice, so a caller appending to
// the truncated result could overwrite events the engine closes
// afterwards (and mutating the slice corrupted engine state).
func TestEventsReturnsCopy(t *testing.T) {
	topo, dict := testWorld()
	e := NewEngine(dict, topo)
	bh := bgp.MakeCommunity(100, 666)

	e.ProcessUpdate(announce("22.0.1.1", 100, 0, "31.0.0.1/32", []bgp.ASN{100, 200}, bh), "rrc00", collector.PlatformRIS)
	e.ProcessUpdate(withdraw("22.0.1.1", 100, 10*time.Minute, "31.0.0.1/32"), "rrc00", collector.PlatformRIS)
	got := e.Events()
	if len(got) != 1 {
		t.Fatalf("events = %d, want 1", len(got))
	}
	first := got[0]

	// Stomp on the returned slice: truncate and append a poisoned
	// element into the backing array slot the engine would use next.
	poison := &Event{}
	_ = append(got[:0], poison)

	// Close a second event; with the aliasing bug the engine's closed
	// list would now start with the poisoned element.
	e.ProcessUpdate(announce("22.0.1.1", 100, 20*time.Minute, "31.0.0.2/32", []bgp.ASN{100, 200}, bh), "rrc00", collector.PlatformRIS)
	e.ProcessUpdate(withdraw("22.0.1.1", 100, 30*time.Minute, "31.0.0.2/32"), "rrc00", collector.PlatformRIS)

	again := e.Events()
	if len(again) != 2 {
		t.Fatalf("events = %d, want 2", len(again))
	}
	if again[0] != first {
		t.Fatal("caller mutation of the Events() slice corrupted engine state")
	}
	for _, ev := range again {
		if ev == poison {
			t.Fatal("poisoned element reached the engine's closed list")
		}
	}
}

// TestOnEventCloseHook checks the incremental-delivery hook: every
// closed event — from explicit withdrawals, implicit withdrawals, and
// Flush — is reported to OnEventClose at close time, in closing order,
// and the hook sees exactly the events Events() later returns.
func TestOnEventCloseHook(t *testing.T) {
	topo, dict := testWorld()
	e := NewEngine(dict, topo)
	var hooked []*Event
	e.OnEventClose = func(ev *Event) { hooked = append(hooked, ev) }
	bh := bgp.MakeCommunity(100, 666)

	// Explicit withdrawal close.
	e.ProcessUpdate(announce("22.0.1.1", 100, 0, "31.0.0.1/32", []bgp.ASN{100, 200}, bh), "rrc00", collector.PlatformRIS)
	e.ProcessUpdate(withdraw("22.0.1.1", 100, 10*time.Minute, "31.0.0.1/32"), "rrc00", collector.PlatformRIS)
	if len(hooked) != 1 {
		t.Fatalf("after explicit withdrawal: hook saw %d events, want 1", len(hooked))
	}

	// Implicit withdrawal close.
	e.ProcessUpdate(announce("22.0.1.1", 100, 20*time.Minute, "31.0.0.2/32", []bgp.ASN{100, 200}, bh), "rrc00", collector.PlatformRIS)
	e.ProcessUpdate(announce("22.0.1.1", 100, 25*time.Minute, "31.0.0.2/32", []bgp.ASN{100, 200}), "rrc00", collector.PlatformRIS)
	if len(hooked) != 2 {
		t.Fatalf("after implicit withdrawal: hook saw %d events, want 2", len(hooked))
	}

	// Flush close.
	e.ProcessUpdate(announce("22.0.1.1", 100, 30*time.Minute, "31.0.0.3/32", []bgp.ASN{100, 200}, bh), "rrc00", collector.PlatformRIS)
	e.Flush(t0.Add(time.Hour))
	if len(hooked) != 3 {
		t.Fatalf("after flush: hook saw %d events, want 3", len(hooked))
	}

	evs := e.Events()
	if len(evs) != len(hooked) {
		t.Fatalf("hook saw %d events, Events() has %d", len(hooked), len(evs))
	}
	for i := range evs {
		if evs[i] != hooked[i] {
			t.Fatalf("hook order mismatch at %d", i)
		}
	}
}
