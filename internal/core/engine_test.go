package core

import (
	"net/netip"
	"testing"
	"time"

	"bgpblackholing/internal/bgp"
	"bgpblackholing/internal/collector"
	"bgpblackholing/internal/dictionary"
	"bgpblackholing/internal/irr"
	"bgpblackholing/internal/stream"
	"bgpblackholing/internal/topology"
)

var t0 = time.Date(2017, 3, 1, 0, 0, 0, 0, time.UTC)

// testWorld builds a minimal topology + hand-made dictionary:
//   - AS 100: documented blackholing provider, community 100:666
//   - AS 150: second provider sharing community 0:666 with AS 100
//   - IXP 0: route server AS 59000, LAN 23.0.0.0/22, community 65535:666
func testWorld() (*topology.Topology, *dictionary.Dictionary) {
	topo := &topology.Topology{ASes: map[bgp.ASN]*topology.AS{}}
	for _, asn := range []bgp.ASN{100, 150, 200, 300} {
		topo.ASes[asn] = &topology.AS{ASN: asn, Country: "DE",
			DeclaredKind: topology.KindTransitAccess, CAIDAKind: topology.KindTransitAccess}
		topo.Order = append(topo.Order, asn)
	}
	topo.IXPs = []*topology.IXP{{
		ID: 0, Name: "IXP-0", RouteServerASN: 59000,
		PeeringLAN:      netip.MustParsePrefix("23.0.0.0/22"),
		Members:         []bgp.ASN{200, 300},
		BlackholingIPv4: netip.MustParseAddr("23.0.0.66"),
		Blackholing: &topology.BlackholeService{
			Communities: []bgp.Community{bgp.CommunityBlackhole}, MaxPrefixLen: 32},
	}}

	// Build the dictionary from a tiny synthetic corpus so the test also
	// exercises the extraction path.
	docs := []irr.Document{
		{Source: irr.SourceIRR, ASN: 100, IXPID: -1,
			Text: "aut-num: AS100\nremarks: 100:666 blackhole\nremarks: 0:666 legacy null-route community\n"},
		{Source: irr.SourceIRR, ASN: 150, IXPID: -1,
			Text: "aut-num: AS150\nremarks: 0:666 null route\n"},
		{Source: irr.SourceWeb, ASN: 0, IXPID: 0,
			Text: "IXP-0 offers blackholing. Announce with community 65535:666.\n"},
	}
	dict := dictionary.FromCorpus(docs)
	return topo, dict
}

func announce(peerIP string, peerAS bgp.ASN, offset time.Duration, prefix string, path []bgp.ASN, comms ...bgp.Community) *bgp.Update {
	return &bgp.Update{
		Time:        t0.Add(offset),
		PeerIP:      netip.MustParseAddr(peerIP),
		PeerAS:      peerAS,
		Announced:   []netip.Prefix{netip.MustParsePrefix(prefix)},
		Path:        bgp.NewPath(path...),
		Communities: comms,
	}
}

func withdraw(peerIP string, peerAS bgp.ASN, offset time.Duration, prefix string) *bgp.Update {
	return &bgp.Update{
		Time:      t0.Add(offset),
		PeerIP:    netip.MustParseAddr(peerIP),
		PeerAS:    peerAS,
		Withdrawn: []netip.Prefix{netip.MustParsePrefix(prefix)},
	}
}

func TestClassifyProviderOnPath(t *testing.T) {
	topo, dict := testWorld()
	e := NewEngine(dict, topo)
	u := announce("22.0.1.1", 100, 0, "31.0.0.1/32",
		[]bgp.ASN{100, 200}, bgp.MakeCommunity(100, 666))
	det := e.Classify(u)
	if det == nil {
		t.Fatal("no detection")
	}
	if len(det.Providers) != 1 {
		t.Fatalf("providers = %v", det.Providers)
	}
	inf := det.Providers[0]
	if inf.Provider != (ProviderRef{Kind: ProviderAS, ASN: 100}) {
		t.Fatalf("provider = %v", inf.Provider)
	}
	if inf.User != 200 {
		t.Fatalf("user = %v, want 200 (hop before provider)", inf.User)
	}
	if inf.ASDistance != 1 {
		t.Fatalf("distance = %d, want 1 (collector peers with provider)", inf.ASDistance)
	}
}

func TestClassifyBundledNoPath(t *testing.T) {
	topo, dict := testWorld()
	e := NewEngine(dict, topo)
	// Observed via a peer that is NOT the provider; provider 100 absent
	// from path — community bundling (§4.2, Fig 3).
	u := announce("22.0.2.1", 300, 0, "31.0.0.1/32",
		[]bgp.ASN{300, 200}, bgp.MakeCommunity(100, 666))
	det := e.Classify(u)
	if det == nil {
		t.Fatal("bundled announcement not detected")
	}
	inf := det.Providers[0]
	if inf.ASDistance != NoPath {
		t.Fatalf("distance = %d, want NoPath", inf.ASDistance)
	}
	if inf.User != 200 {
		t.Fatalf("user = %v, want path origin 200", inf.User)
	}
}

func TestClassifyAmbiguousSharedCommunity(t *testing.T) {
	topo, dict := testWorld()
	e := NewEngine(dict, topo)
	shared := bgp.MakeCommunity(0, 666) // honoured by AS 100 and AS 150

	// Provider 150 on path: resolves to 150 only.
	u := announce("22.0.2.1", 150, 0, "31.0.0.1/32", []bgp.ASN{150, 200}, shared)
	det := e.Classify(u)
	if det == nil || len(det.Providers) != 1 {
		t.Fatalf("det = %+v", det)
	}
	if det.Providers[0].Provider.ASN != 150 {
		t.Fatalf("provider = %v, want 150", det.Providers[0].Provider)
	}

	// Neither candidate on path: the update is not considered (§4.2).
	u = announce("22.0.2.1", 300, 0, "31.0.0.1/32", []bgp.ASN{300, 200}, shared)
	if det := e.Classify(u); det != nil {
		t.Fatalf("ambiguous community wrongly classified: %+v", det)
	}
}

func TestClassifyIXPViaRouteServerASN(t *testing.T) {
	topo, dict := testWorld()
	e := NewEngine(dict, topo)
	u := announce("22.0.3.1", 59000, 0, "31.0.0.1/32",
		[]bgp.ASN{59000, 200}, bgp.CommunityBlackhole)
	det := e.Classify(u)
	if det == nil {
		t.Fatal("IXP blackholing not detected")
	}
	inf := det.Providers[0]
	if inf.Provider != (ProviderRef{Kind: ProviderIXP, IXPID: 0}) {
		t.Fatalf("provider = %v", inf.Provider)
	}
	if inf.User != 200 || inf.ASDistance != 0 {
		t.Fatalf("user=%v dist=%d", inf.User, inf.ASDistance)
	}
}

func TestClassifyIXPViaPeerIP(t *testing.T) {
	topo, dict := testWorld()
	e := NewEngine(dict, topo)
	// Transparent route server: RS ASN absent, but the peer IP lies in
	// the IXP LAN; user is the peer-as.
	u := announce("23.0.0.10", 200, 0, "31.0.0.1/32",
		[]bgp.ASN{200}, bgp.CommunityBlackhole)
	det := e.Classify(u)
	if det == nil {
		t.Fatal("transparent RS blackholing not detected")
	}
	inf := det.Providers[0]
	if inf.Provider.Kind != ProviderIXP || inf.User != 200 || inf.ASDistance != 0 {
		t.Fatalf("inf = %+v", inf)
	}
}

func TestClassifyIXPNotTraversed(t *testing.T) {
	topo, dict := testWorld()
	e := NewEngine(dict, topo)
	// 65535:666 but neither RS on path nor peer IP in any LAN: no
	// provider can be confirmed.
	u := announce("22.0.9.1", 300, 0, "31.0.0.1/32",
		[]bgp.ASN{300, 200}, bgp.CommunityBlackhole)
	if det := e.Classify(u); det != nil {
		t.Fatalf("unconfirmed IXP community classified: %+v", det)
	}
}

func TestClassifyIgnoresUnknownAndPlainUpdates(t *testing.T) {
	topo, dict := testWorld()
	e := NewEngine(dict, topo)
	if det := e.Classify(announce("22.0.1.1", 100, 0, "31.0.0.1/32", []bgp.ASN{100, 200})); det != nil {
		t.Fatal("update without communities classified")
	}
	if det := e.Classify(announce("22.0.1.1", 100, 0, "31.0.0.1/32",
		[]bgp.ASN{100, 200}, bgp.MakeCommunity(100, 100))); det != nil {
		t.Fatal("unknown community classified")
	}
}

func TestClassifyPrependingRemoved(t *testing.T) {
	topo, dict := testWorld()
	e := NewEngine(dict, topo)
	u := announce("22.0.1.1", 100, 0, "31.0.0.1/32",
		[]bgp.ASN{100, 100, 100, 200, 200}, bgp.MakeCommunity(100, 666))
	det := e.Classify(u)
	if det == nil || det.Providers[0].User != 200 {
		t.Fatalf("prepending not removed: %+v", det)
	}
	if det.Providers[0].ASDistance != 1 {
		t.Fatalf("distance = %d with prepending", det.Providers[0].ASDistance)
	}
}

func TestEventLifecycleExplicitWithdrawal(t *testing.T) {
	topo, dict := testWorld()
	e := NewEngine(dict, topo)
	bh := bgp.MakeCommunity(100, 666)
	e.ProcessUpdate(announce("22.0.1.1", 100, 0, "31.0.0.1/32", []bgp.ASN{100, 200}, bh), "rrc00", collector.PlatformRIS)
	if e.ActiveCount() != 1 {
		t.Fatalf("active = %d", e.ActiveCount())
	}
	e.ProcessUpdate(withdraw("22.0.1.1", 100, 10*time.Minute, "31.0.0.1/32"), "rrc00", collector.PlatformRIS)
	if e.ActiveCount() != 0 {
		t.Fatal("event still active after withdrawal")
	}
	evs := e.Events()
	if len(evs) != 1 {
		t.Fatalf("events = %d", len(evs))
	}
	ev := evs[0]
	if ev.Duration() != 10*time.Minute {
		t.Fatalf("duration = %v", ev.Duration())
	}
	if !ev.Providers[ProviderRef{Kind: ProviderAS, ASN: 100}] {
		t.Fatal("provider missing on event")
	}
	if !ev.Users[200] {
		t.Fatal("user missing on event")
	}
	if !ev.DirectFeed {
		t.Fatal("peer is the provider: DirectFeed should be true")
	}
}

func TestEventLifecycleImplicitWithdrawal(t *testing.T) {
	topo, dict := testWorld()
	e := NewEngine(dict, topo)
	bh := bgp.MakeCommunity(100, 666)
	e.ProcessUpdate(announce("22.0.1.1", 100, 0, "31.0.0.1/32", []bgp.ASN{100, 200}, bh), "rrc00", collector.PlatformRIS)
	// Re-announcement of the same prefix at the same peer without the
	// blackhole community is an implicit withdrawal (§4.2).
	e.ProcessUpdate(announce("22.0.1.1", 100, 7*time.Minute, "31.0.0.1/32", []bgp.ASN{100, 200}), "rrc00", collector.PlatformRIS)
	if e.ActiveCount() != 0 {
		t.Fatal("implicit withdrawal not detected")
	}
	evs := e.Events()
	if len(evs) != 1 || evs[0].Duration() != 7*time.Minute {
		t.Fatalf("events = %+v", evs)
	}
}

func TestEventCrossPeerCorrelation(t *testing.T) {
	topo, dict := testWorld()
	e := NewEngine(dict, topo)
	bh := bgp.MakeCommunity(100, 666)
	// Two peers see the blackholing; the event ends only when the last
	// peer stops seeing it.
	e.ProcessUpdate(announce("22.0.1.1", 100, 0, "31.0.0.1/32", []bgp.ASN{100, 200}, bh), "rrc00", collector.PlatformRIS)
	e.ProcessUpdate(announce("22.0.2.1", 300, time.Minute, "31.0.0.1/32", []bgp.ASN{300, 200}, bh), "route-views0", collector.PlatformRV)
	e.ProcessUpdate(withdraw("22.0.1.1", 100, 5*time.Minute, "31.0.0.1/32"), "rrc00", collector.PlatformRIS)
	if e.ActiveCount() != 1 {
		t.Fatal("event ended while a peer still sees it")
	}
	e.ProcessUpdate(withdraw("22.0.2.1", 300, 9*time.Minute, "31.0.0.1/32"), "route-views0", collector.PlatformRV)
	if e.ActiveCount() != 0 {
		t.Fatal("event not ended")
	}
	evs := e.Events()
	if len(evs) != 1 {
		t.Fatalf("events = %d, want 1 correlated", len(evs))
	}
	ev := evs[0]
	if ev.Duration() != 9*time.Minute {
		t.Fatalf("duration = %v, want 9m (max across peers)", ev.Duration())
	}
	if len(ev.Peers) != 2 || !ev.Platforms[collector.PlatformRIS] || !ev.Platforms[collector.PlatformRV] {
		t.Fatalf("peers/platforms = %v/%v", ev.Peers, ev.Platforms)
	}
}

func TestInitFromRIBStartUnknown(t *testing.T) {
	topo, dict := testWorld()
	e := NewEngine(dict, topo)
	entries := []bgp.RIBEntry{{
		Prefix:      netip.MustParsePrefix("31.0.0.1/32"),
		PeerIP:      netip.MustParseAddr("22.0.1.1"),
		PeerAS:      100,
		Path:        bgp.NewPath(100, 200),
		Communities: []bgp.Community{bgp.MakeCommunity(100, 666)},
	}}
	e.InitFromRIB(entries, t0, "rrc00", collector.PlatformRIS)
	if e.ActiveCount() != 1 {
		t.Fatal("dump-seeded event not active")
	}
	e.Flush(t0.Add(time.Hour))
	evs := e.Events()
	if len(evs) != 1 || !evs[0].StartUnknown {
		t.Fatalf("events = %+v, want StartUnknown", evs)
	}
}

func TestFlushClosesActiveEvents(t *testing.T) {
	topo, dict := testWorld()
	e := NewEngine(dict, topo)
	bh := bgp.MakeCommunity(100, 666)
	e.ProcessUpdate(announce("22.0.1.1", 100, 0, "31.0.0.1/32", []bgp.ASN{100, 200}, bh), "rrc00", collector.PlatformRIS)
	e.ProcessUpdate(announce("22.0.1.1", 100, 0, "31.0.0.2/32", []bgp.ASN{100, 200}, bh), "rrc00", collector.PlatformRIS)
	e.Flush(t0.Add(2 * time.Hour))
	if e.ActiveCount() != 0 || len(e.Events()) != 2 {
		t.Fatalf("active=%d events=%d", e.ActiveCount(), len(e.Events()))
	}
	for _, ev := range e.Events() {
		if ev.Duration() != 2*time.Hour {
			t.Fatalf("flushed duration = %v", ev.Duration())
		}
	}
}

func TestEngineCleansBogons(t *testing.T) {
	topo, dict := testWorld()
	e := NewEngine(dict, topo)
	bh := bgp.MakeCommunity(100, 666)
	e.ProcessUpdate(announce("22.0.1.1", 100, 0, "10.0.0.1/32", []bgp.ASN{100, 200}, bh), "rrc00", collector.PlatformRIS)
	if e.ActiveCount() != 0 {
		t.Fatal("bogon prefix tracked")
	}
}

func TestEngineRunOverStream(t *testing.T) {
	topo, dict := testWorld()
	e := NewEngine(dict, topo)
	bh := bgp.MakeCommunity(100, 666)
	elems := []*stream.Elem{
		{Collector: "rrc00", Platform: collector.PlatformRIS,
			Update: announce("22.0.1.1", 100, 0, "31.0.0.1/32", []bgp.ASN{100, 200}, bh)},
		{Collector: "rrc00", Platform: collector.PlatformRIS,
			Update: withdraw("22.0.1.1", 100, time.Minute, "31.0.0.1/32")},
	}
	if err := e.Run(stream.FromElems(elems)); err != nil {
		t.Fatal(err)
	}
	if len(e.Events()) != 1 {
		t.Fatalf("events = %d", len(e.Events()))
	}
}

func TestGroupingFiveMinuteTimeout(t *testing.T) {
	p := netip.MustParsePrefix("31.0.0.1/32")
	mk := func(startMin, endMin int) *Event {
		return &Event{
			Prefix: p,
			Start:  t0.Add(time.Duration(startMin) * time.Minute),
			End:    t0.Add(time.Duration(endMin) * time.Minute),
		}
	}
	// ON/OFF probing: 1-minute events with 3-minute gaps group into one
	// period; a 20-minute gap starts a new period.
	events := []*Event{mk(0, 1), mk(4, 5), mk(8, 9), mk(29, 30)}
	periods := Group(events, DefaultGroupTimeout)
	if len(periods) != 2 {
		t.Fatalf("periods = %d, want 2", len(periods))
	}
	if periods[0].Duration() != 9*time.Minute {
		t.Fatalf("period 0 duration = %v", periods[0].Duration())
	}
	if len(periods[0].Events) != 3 || len(periods[1].Events) != 1 {
		t.Fatalf("period sizes = %d/%d", len(periods[0].Events), len(periods[1].Events))
	}
}

func TestGroupingSeparatePrefixes(t *testing.T) {
	mk := func(prefix string, startMin int) *Event {
		return &Event{
			Prefix: netip.MustParsePrefix(prefix),
			Start:  t0.Add(time.Duration(startMin) * time.Minute),
			End:    t0.Add(time.Duration(startMin+1) * time.Minute),
		}
	}
	periods := Group([]*Event{mk("31.0.0.1/32", 0), mk("31.0.0.2/32", 1)}, DefaultGroupTimeout)
	if len(periods) != 2 {
		t.Fatalf("periods = %d, want per-prefix grouping", len(periods))
	}
}

func TestProviderRefString(t *testing.T) {
	if (ProviderRef{Kind: ProviderAS, ASN: 100}).String() != "AS100" {
		t.Fatal("AS ref string")
	}
	if (ProviderRef{Kind: ProviderIXP, IXPID: 3}).String() != "ixp:3" {
		t.Fatal("IXP ref string")
	}
}

func TestSequentialEventsSamePrefix(t *testing.T) {
	topo, dict := testWorld()
	e := NewEngine(dict, topo)
	bh := bgp.MakeCommunity(100, 666)
	// ON/OFF pattern: announce, withdraw, announce again later.
	e.ProcessUpdate(announce("22.0.1.1", 100, 0, "31.0.0.1/32", []bgp.ASN{100, 200}, bh), "rrc00", collector.PlatformRIS)
	e.ProcessUpdate(withdraw("22.0.1.1", 100, time.Minute, "31.0.0.1/32"), "rrc00", collector.PlatformRIS)
	e.ProcessUpdate(announce("22.0.1.1", 100, 3*time.Minute, "31.0.0.1/32", []bgp.ASN{100, 200}, bh), "rrc00", collector.PlatformRIS)
	e.ProcessUpdate(withdraw("22.0.1.1", 100, 4*time.Minute, "31.0.0.1/32"), "rrc00", collector.PlatformRIS)
	evs := e.Events()
	if len(evs) != 2 {
		t.Fatalf("events = %d, want 2 separate ON periods", len(evs))
	}
	periods := Group(evs, DefaultGroupTimeout)
	if len(periods) != 1 {
		t.Fatalf("periods = %d, want 1 grouped", len(periods))
	}
}
