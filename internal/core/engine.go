// Package core implements the paper's primary contribution (§4.2): the
// BGP blackholing inference engine. It classifies BGP updates against a
// blackhole-communities dictionary, resolves ambiguous and bundled
// communities via AS-path and peer-IP checks, tracks blackholing events
// per (prefix, BGP peer) through announcements, explicit withdrawals and
// implicit withdrawals, and correlates the per-peer signals into
// prefix-level events with exact start and end times.
package core

import (
	"errors"
	"io"
	"net/netip"
	"sort"
	"sync/atomic"
	"time"

	"bgpblackholing/internal/bgp"
	"bgpblackholing/internal/bogon"
	"bgpblackholing/internal/collector"
	"bgpblackholing/internal/dictionary"
	"bgpblackholing/internal/stream"
	"bgpblackholing/internal/topology"
)

// ProviderKind distinguishes AS-level from IXP blackholing providers.
type ProviderKind int

// Provider kinds.
const (
	ProviderAS ProviderKind = iota
	ProviderIXP
)

// ProviderRef identifies one inferred blackholing provider.
type ProviderRef struct {
	Kind ProviderKind
	// ASN is set for AS providers.
	ASN bgp.ASN
	// IXPID is set for IXP providers (Kind == ProviderIXP).
	IXPID int
}

// String renders the provider for logs.
func (p ProviderRef) String() string {
	if p.Kind == ProviderIXP {
		return "ixp:" + itoa(p.IXPID)
	}
	return "AS" + p.ASN.String()
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	neg := n < 0
	if neg {
		n = -n
	}
	var b [12]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	if neg {
		i--
		b[i] = '-'
	}
	return string(b[i:])
}

// NoPath is the AS-distance value recorded when the provider does not
// appear on the AS path at all — the community-bundling case that
// contributes about half the paper's inferences (Fig 7c "No-path").
const NoPath = -1

// ProviderInference is one provider identified on one update, with the
// AS distance between the collector's peer and the provider (0 for IXPs
// where the collector sits at the exchange, 1 when the collector peers
// directly with the provider, NoPath when inferred purely from
// bundling).
type ProviderInference struct {
	Provider   ProviderRef
	User       bgp.ASN
	Community  bgp.Community
	ASDistance int
}

// Detection is one update classified as a blackholing announcement. The
// classification applies to every prefix the update announces.
type Detection struct {
	Time      time.Time
	PeerIP    netip.Addr
	PeerAS    bgp.ASN
	Providers []ProviderInference
}

// Event is one correlated prefix-level blackholing event: the span
// during which at least one BGP peer observed the prefix blackholed.
type Event struct {
	Prefix netip.Prefix
	Start  time.Time
	End    time.Time
	// Seq is the event's position in the engine's global closing order,
	// stamped when the event closes (1, 2, 3, …; 0 means unstamped —
	// an event constructed by hand or decoded from a pre-seq store).
	// Seq alone totally orders a detector lineage's events — End does
	// not, because implicit withdrawals backdate End to the last
	// sighting — so a query router merging per-shard streams compares
	// Seq first to reproduce the exact single-store order.
	Seq uint64
	// StartUnknown marks events seeded from a table dump, whose true
	// start predates monitoring (§4.2 "initial starting time of zero").
	StartUnknown bool
	// Providers aggregates every provider inferred during the event.
	Providers map[ProviderRef]bool
	// Users aggregates every inferred blackholing user.
	Users map[bgp.ASN]bool
	// Communities aggregates the matched blackhole communities.
	Communities map[bgp.Community]bool
	// Platforms records which collection platforms observed the event.
	Platforms map[collector.Platform]bool
	// Peers records the observing BGP peers.
	Peers map[netip.Addr]bool
	// ASDistances records one collector-to-provider distance per
	// provider inference (NoPath for bundling-only inferences).
	ASDistances []int
	// ProviderDistances records, per provider, the best (smallest)
	// distance at which any collector peer saw the provider on the AS
	// path during the event; NoPath when the provider was only ever
	// inferred from community bundling. Figure 7c counts events by this
	// value.
	ProviderDistances map[ProviderRef]int
	// DirectProviders marks providers observed through their own direct
	// collector session (AS providers as the collector peer, IXPs via a
	// route-server session) — Table 3's "direct BGP feed" column.
	DirectProviders map[ProviderRef]bool
	// ProvidersByPlatform records which platform's observations
	// evidenced each provider, for the per-source rows of Table 3.
	ProvidersByPlatform map[collector.Platform]map[ProviderRef]bool
	// UsersByPlatform records which platform's observations evidenced
	// each user.
	UsersByPlatform map[collector.Platform]map[bgp.ASN]bool
	// ProviderUsers records, per provider, the users inferred to be
	// using it (Table 4 user attribution).
	ProviderUsers map[ProviderRef]map[bgp.ASN]bool
	// Detections counts classified announcements within the event.
	Detections int
	// DirectFeed is true when any observing peer was itself an inferred
	// provider (Table 3's "direct BGP feed" column).
	DirectFeed bool
	// SawNoExport is true when any classified announcement carried the
	// RFC 1997 NO_EXPORT community, as RFC 7999 requires on blackhole
	// routes (audited by package compliance).
	SawNoExport bool
}

// Duration returns the event length.
func (e *Event) Duration() time.Duration { return e.End.Sub(e.Start) }

// Metrics counts what the engine has processed, for live-deployment
// observability (/stats, /metrics, and bhserve's shutdown summary).
type Metrics struct {
	// UpdatesProcessed counts every consumed update post-cleaning.
	UpdatesProcessed uint64
	// UpdatesCleaned counts updates removed entirely by §3 cleaning.
	UpdatesCleaned uint64
	// Detections counts classified blackholing announcements
	// (per announced prefix).
	Detections uint64
	// ExplicitEnds counts per-peer endings from BGP withdrawals;
	// ImplicitEnds counts endings from untagged re-announcements (§4.2
	// distinguishes the two).
	ExplicitEnds uint64
	ImplicitEnds uint64
	// EventsOpened counts correlated prefix-level events started;
	// EventsOpened−EventsClosed is the currently-active event count.
	EventsOpened uint64
	// EventsClosed counts correlated prefix-level events closed.
	EventsClosed uint64
	// SubscriberDrops counts events discarded from bounded subscriber
	// queues under the drop-oldest slow-consumer policy; the engine
	// itself never drops — the fan-out layer fills this in.
	SubscriberDrops uint64
	// SubscriberEvictions counts subscribers forcibly unsubscribed for
	// falling a full queue bound behind (evict policy).
	SubscriberEvictions uint64
}

// engineCounters is the atomic backing for Metrics. The engine itself
// is single-goroutine, but Metrics() is called concurrently — by
// /stats handlers and /metrics scrapes while Detector.Run is
// processing — so every counter is an atomic and Metrics() is a
// consistent-enough snapshot without a lock on the hot path.
type engineCounters struct {
	updatesProcessed atomic.Uint64
	updatesCleaned   atomic.Uint64
	detections       atomic.Uint64
	explicitEnds     atomic.Uint64
	implicitEnds     atomic.Uint64
	eventsOpened     atomic.Uint64
	eventsClosed     atomic.Uint64
}

func (c *engineCounters) snapshot() Metrics {
	return Metrics{
		UpdatesProcessed: c.updatesProcessed.Load(),
		UpdatesCleaned:   c.updatesCleaned.Load(),
		Detections:       c.detections.Load(),
		ExplicitEnds:     c.explicitEnds.Load(),
		ImplicitEnds:     c.implicitEnds.Load(),
		EventsOpened:     c.eventsOpened.Load(),
		EventsClosed:     c.eventsClosed.Load(),
	}
}

// Engine is the blackholing inference engine.
type Engine struct {
	dict *dictionary.Dictionary
	topo *topology.Topology

	// perPeer tracks active blackholing per (prefix, peer IP).
	perPeer map[peerKey]*peerState
	// perPrefix correlates peers into prefix-level events.
	perPrefix map[netip.Prefix]*prefixState
	closed    []*Event
	// seq numbers closed events across the engine's whole lifetime —
	// sequential Run calls keep counting, so one detector lineage has
	// one total closing order.
	seq uint64

	// Clean enables §3 data cleaning (bogon and coarse-prefix removal).
	Clean bool

	// OnEventClose, when non-nil, is invoked synchronously each time a
	// prefix-level event closes — from a withdrawal, an implicit
	// withdrawal, or Flush — before the event is appended to the closed
	// list. It lets callers stream events incrementally instead of
	// polling Events() after Flush. The callback runs on the engine's
	// (single) processing goroutine and must not call back into the
	// engine.
	OnEventClose func(*Event)

	metrics engineCounters

	// Per-update classification scratch, reused across process calls so
	// the hot path stays allocation-free (an Engine is single-goroutine).
	scratchInfs []ProviderInference
	scratchFlat []bgp.ASN
}

// Metrics returns a snapshot of the engine's counters. Safe to call
// concurrently with the processing goroutine.
func (e *Engine) Metrics() Metrics { return e.metrics.snapshot() }

type peerKey struct {
	prefix netip.Prefix
	peer   netip.Addr
}

type peerState struct {
	start        time.Time
	startUnknown bool
}

type prefixState struct {
	event       *Event
	activePeers map[netip.Addr]bool
	lastEnd     time.Time
}

// NewEngine returns an engine inferring against the documented
// dictionary. The topology stands in for the PeeringDB lookups the
// paper performs (IXP route-server ASNs and peering LANs).
func NewEngine(dict *dictionary.Dictionary, topo *topology.Topology) *Engine {
	return &Engine{
		dict:      dict,
		topo:      topo,
		perPeer:   map[peerKey]*peerState{},
		perPrefix: map[netip.Prefix]*prefixState{},
		Clean:     true,
	}
}

// Classify inspects one update and returns the blackholing detection, or
// nil when the update carries no resolvable blackhole community. Event
// tracking happens in Process. Like every Engine method, Classify is
// single-goroutine: it shares the engine's internal scratch buffers
// (the returned Detection owns its memory and stays valid).
func (e *Engine) Classify(u *bgp.Update) *Detection {
	infs := e.classify(u)
	if len(infs) == 0 {
		return nil
	}
	return &Detection{
		Time:      u.Time,
		PeerIP:    u.PeerIP,
		PeerAS:    u.PeerAS,
		Providers: append([]ProviderInference(nil), infs...),
	}
}

// ProviderRefCompare is the canonical total order over provider
// references — AS providers before IXPs, then by ASN, then by IXP id —
// used for deterministic dedup, serialization and display.
func ProviderRefCompare(a, b ProviderRef) int {
	if a.Kind != b.Kind {
		return int(a.Kind) - int(b.Kind)
	}
	if a.ASN != b.ASN {
		if a.ASN < b.ASN {
			return -1
		}
		return 1
	}
	return a.IXPID - b.IXPID
}

// providerLess orders inferences for deterministic deduplication.
func providerLess(a, b ProviderRef) bool { return ProviderRefCompare(a, b) < 0 }

// classify is the allocation-lean core of Classify: it writes into the
// engine's reusable scratch buffers and returns a slice that is only
// valid until the next classify call.
func (e *Engine) classify(u *bgp.Update) []ProviderInference {
	if len(u.Announced) == 0 || (len(u.Communities) == 0 && len(u.LargeCommunities) == 0) {
		return nil
	}
	infs := e.scratchInfs[:0]
	e.scratchFlat = u.Path.AppendFlattenNoPrepend(e.scratchFlat[:0])
	flat := e.scratchFlat
	origin, hasOrigin := u.Path.Origin()

	addAS := func(p bgp.ASN, c bgp.Community, shared bool) {
		idx := -1
		for i, a := range flat {
			if a == p {
				idx = i
				break
			}
		}
		if idx < 0 {
			if shared {
				// Ambiguous community with no candidate on path: the
				// update is not considered further (§4.2).
				return
			}
			// Bundling: the community names the provider even though the
			// provider does not forward the prefix.
			if !hasOrigin {
				return
			}
			infs = append(infs, ProviderInference{
				Provider:   ProviderRef{Kind: ProviderAS, ASN: p},
				User:       origin,
				Community:  c,
				ASDistance: NoPath,
			})
			return
		}
		// The blackholing user is the hop before the provider on the
		// prepending-free path; a provider at the origin blackholes its
		// own prefix.
		user := p
		if idx+1 < len(flat) {
			user = flat[idx+1]
		}
		infs = append(infs, ProviderInference{
			Provider:   ProviderRef{Kind: ProviderAS, ASN: p},
			User:       user,
			Community:  c,
			ASDistance: idx + 1,
		})
	}

	addIXP := func(xid int, c bgp.Community) {
		if e.topo == nil || xid < 0 || xid >= len(e.topo.IXPs) {
			return
		}
		x := e.topo.IXPs[xid]
		// Check 1: the route server's ASN appears on the path.
		for i, a := range flat {
			if a != x.RouteServerASN {
				continue
			}
			if i+1 >= len(flat) {
				return
			}
			infs = append(infs, ProviderInference{
				Provider:   ProviderRef{Kind: ProviderIXP, IXPID: xid},
				User:       flat[i+1],
				Community:  c,
				ASDistance: 0,
			})
			return
		}
		// Check 2: the peer-ip lies inside the IXP's peering LAN; the
		// blackholing user is then the peer-as (§4.2).
		if x.PeeringLAN.IsValid() && x.PeeringLAN.Contains(u.PeerIP) {
			infs = append(infs, ProviderInference{
				Provider:   ProviderRef{Kind: ProviderIXP, IXPID: xid},
				User:       u.PeerAS,
				Community:  c,
				ASDistance: 0,
			})
		}
	}

	for _, c := range u.Communities {
		entry := e.dict.Lookup(c)
		if entry == nil {
			continue
		}
		shared := entry.Shared || len(entry.Providers)+len(entry.IXPs) > 1
		for _, p := range entry.Providers {
			addAS(p, c, shared)
		}
		for _, xid := range entry.IXPs {
			addIXP(xid, c)
		}
	}
	for _, lc := range u.LargeCommunities {
		entry := e.dict.LookupLarge(lc)
		if entry == nil {
			continue
		}
		// Large communities encode a 32-bit provider ASN in the global
		// administrator field; treat like an unambiguous standard entry.
		for _, p := range entry.Providers {
			addAS(p, bgp.MakeCommunity(uint16(lc.Global), uint16(lc.Local1)), len(entry.Providers) > 1)
		}
	}
	e.scratchInfs = infs
	if len(infs) == 0 {
		return nil
	}
	// Deduplicate providers (one community may be matched per provider
	// from several sources). Inference lists are tiny, so a closure-free
	// insertion sort beats sort.Slice here.
	for i := 1; i < len(infs); i++ {
		for j := i; j > 0 && providerLess(infs[j].Provider, infs[j-1].Provider); j-- {
			infs[j], infs[j-1] = infs[j-1], infs[j]
		}
	}
	dedup := infs[:0]
	for i, inf := range infs {
		if i == 0 || inf.Provider != infs[i-1].Provider {
			dedup = append(dedup, inf)
		}
	}
	return dedup
}

// InitFromRIB seeds the engine from a table dump (§4.2 "Initialization
// Based on BGP Table Dump"): blackholed prefixes found in the dump start
// events whose true start time is unknown.
func (e *Engine) InitFromRIB(entries []bgp.RIBEntry, dumpTime time.Time, collectorName string, platform collector.Platform) {
	for i := range entries {
		u := entries[i].ToUpdate(dumpTime)
		e.process(u, collectorName, platform, true)
	}
}

// Process consumes one stream element, updating event state.
func (e *Engine) Process(el *stream.Elem) {
	e.process(el.Update, el.Collector, el.Platform, false)
}

// ProcessUpdate consumes a raw update with explicit collection context.
func (e *Engine) ProcessUpdate(u *bgp.Update, collectorName string, platform collector.Platform) {
	e.process(u, collectorName, platform, false)
}

func (e *Engine) process(u *bgp.Update, collectorName string, platform collector.Platform, fromDump bool) {
	if e.Clean {
		u = bogon.CleanUpdate(u)
		if u == nil {
			e.metrics.updatesCleaned.Add(1)
			return
		}
	}
	e.metrics.updatesProcessed.Add(1)

	// Explicit withdrawals end per-peer blackholing (§4.2).
	for _, p := range u.Withdrawn {
		if e.endPeer(peerKey{p, u.PeerIP}, u.Time) {
			e.metrics.explicitEnds.Add(1)
		}
	}
	if len(u.Announced) == 0 {
		return
	}

	infs := e.classify(u)
	var det *Detection
	var detVal Detection
	if len(infs) > 0 {
		detVal = Detection{Time: u.Time, PeerIP: u.PeerIP, PeerAS: u.PeerAS, Providers: infs}
		det = &detVal
	}
	for _, p := range u.Announced {
		key := peerKey{p, u.PeerIP}
		if det == nil {
			// Announcement without blackhole communities: implicit
			// withdrawal if this peer previously saw the prefix
			// blackholed (§4.2).
			if e.endPeer(key, u.Time) {
				e.metrics.implicitEnds.Add(1)
			}
			continue
		}
		e.metrics.detections.Add(1)
		e.startOrRefresh(key, u, det, p, collectorName, platform, fromDump)
	}
}

func (e *Engine) startOrRefresh(key peerKey, u *bgp.Update, det *Detection, prefix netip.Prefix, collectorName string, platform collector.Platform, fromDump bool) {
	ps := e.perPeer[key]
	if ps == nil {
		ps = &peerState{start: u.Time, startUnknown: fromDump}
		e.perPeer[key] = ps
	}

	st := e.perPrefix[prefix]
	if st == nil {
		st = &prefixState{activePeers: map[netip.Addr]bool{}}
		e.perPrefix[prefix] = st
	}
	if st.event == nil {
		e.metrics.eventsOpened.Add(1)
		st.event = &Event{
			Prefix:              prefix,
			Start:               u.Time,
			End:                 u.Time,
			StartUnknown:        fromDump,
			Providers:           map[ProviderRef]bool{},
			Users:               map[bgp.ASN]bool{},
			Communities:         map[bgp.Community]bool{},
			Platforms:           map[collector.Platform]bool{},
			Peers:               map[netip.Addr]bool{},
			ProviderDistances:   map[ProviderRef]int{},
			DirectProviders:     map[ProviderRef]bool{},
			ProvidersByPlatform: map[collector.Platform]map[ProviderRef]bool{},
			UsersByPlatform:     map[collector.Platform]map[bgp.ASN]bool{},
			ProviderUsers:       map[ProviderRef]map[bgp.ASN]bool{},
		}
	}
	ev := st.event
	st.activePeers[u.PeerIP] = true
	if u.Time.After(ev.End) {
		ev.End = u.Time
	}
	if u.HasNoExport() {
		ev.SawNoExport = true
	}
	ev.Detections++
	ev.Platforms[platform] = true
	ev.Peers[u.PeerIP] = true
	if ev.ProvidersByPlatform[platform] == nil {
		ev.ProvidersByPlatform[platform] = map[ProviderRef]bool{}
		ev.UsersByPlatform[platform] = map[bgp.ASN]bool{}
	}
	for _, inf := range det.Providers {
		ev.Providers[inf.Provider] = true
		ev.ProvidersByPlatform[platform][inf.Provider] = true
		if inf.User != 0 {
			ev.Users[inf.User] = true
			ev.UsersByPlatform[platform][inf.User] = true
			if ev.ProviderUsers[inf.Provider] == nil {
				ev.ProviderUsers[inf.Provider] = map[bgp.ASN]bool{}
			}
			ev.ProviderUsers[inf.Provider][inf.User] = true
		}
		ev.Communities[inf.Community] = true
		ev.ASDistances = append(ev.ASDistances, inf.ASDistance)
		if cur, ok := ev.ProviderDistances[inf.Provider]; !ok || betterDistance(inf.ASDistance, cur) {
			ev.ProviderDistances[inf.Provider] = inf.ASDistance
		}
		if inf.Provider.Kind == ProviderAS && inf.Provider.ASN == u.PeerAS {
			ev.DirectFeed = true
			ev.DirectProviders[inf.Provider] = true
		}
		if inf.Provider.Kind == ProviderIXP && inf.ASDistance == 0 {
			ev.DirectFeed = true
			ev.DirectProviders[inf.Provider] = true
		}
	}
}

// betterDistance prefers any on-path distance over NoPath, and smaller
// distances otherwise.
func betterDistance(cand, cur int) bool {
	if cur == NoPath {
		return cand != NoPath
	}
	return cand != NoPath && cand < cur
}

// endPeer closes the per-peer state, reporting whether the peer was
// actually tracking the prefix.
func (e *Engine) endPeer(key peerKey, t time.Time) bool {
	if _, ok := e.perPeer[key]; !ok {
		return false
	}
	delete(e.perPeer, key)
	st := e.perPrefix[key.prefix]
	if st == nil || st.event == nil {
		return true
	}
	delete(st.activePeers, key.peer)
	if t.After(st.event.End) {
		st.event.End = t
	}
	if len(st.activePeers) == 0 {
		// All peers agree the blackholing is over: close the event.
		e.closeEvent(st.event)
		st.event = nil
		st.lastEnd = t
	}
	return true
}

// Flush closes every still-active event at time t (end of monitoring).
func (e *Engine) Flush(t time.Time) {
	var keys []netip.Prefix
	for p, st := range e.perPrefix {
		if st.event != nil {
			keys = append(keys, p)
		}
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i].String() < keys[j].String() })
	for _, p := range keys {
		st := e.perPrefix[p]
		if t.After(st.event.End) {
			st.event.End = t
		}
		e.closeEvent(st.event)
		st.event = nil
	}
	e.perPeer = map[peerKey]*peerState{}
}

// closeEvent records a closed event and notifies the OnEventClose hook.
// The closing sequence number is stamped before the hook fires, so
// every sink — stores, shard routers, alert hubs — sees the same Seq.
func (e *Engine) closeEvent(ev *Event) {
	e.seq++
	ev.Seq = e.seq
	if e.OnEventClose != nil {
		e.OnEventClose(ev)
	}
	e.closed = append(e.closed, ev)
	e.metrics.eventsClosed.Add(1)
}

// Run drains a stream through the engine.
func (e *Engine) Run(s stream.Stream) error {
	for {
		el, err := s.Next()
		if err != nil {
			if errors.Is(err, io.EOF) {
				return nil
			}
			return err
		}
		e.Process(el)
	}
}

// Events returns all closed events in closing order. The returned slice
// is a copy: appending to it (or re-slicing and overwriting) cannot
// corrupt the engine's internal closed list, so callers may take
// ownership of it freely. The *Event values themselves are shared — the
// engine never mutates an event after closing it.
func (e *Engine) Events() []*Event {
	if len(e.closed) == 0 {
		return nil
	}
	return append(make([]*Event, 0, len(e.closed)), e.closed...)
}

// ActiveCount reports how many prefixes are currently blackholed.
func (e *Engine) ActiveCount() int {
	n := 0
	for _, st := range e.perPrefix {
		if st.event != nil {
			n++
		}
	}
	return n
}

// Period is a group of events for the same prefix whose gaps are at most
// the grouping timeout — the paper's 5-minute aggregation that turns the
// ON/OFF probing practice into operator-level blackholing periods
// (Fig 8a "Grouped").
type Period struct {
	Prefix netip.Prefix
	Start  time.Time
	End    time.Time
	Events []*Event
}

// Duration returns the period length.
func (p *Period) Duration() time.Duration { return p.End.Sub(p.Start) }

// DefaultGroupTimeout is the paper's 5-minute grouping window.
const DefaultGroupTimeout = 5 * time.Minute

// Group merges per-prefix events with inter-event gaps of at most
// timeout into periods.
func Group(events []*Event, timeout time.Duration) []*Period {
	byPrefix := map[netip.Prefix][]*Event{}
	for _, ev := range events {
		byPrefix[ev.Prefix] = append(byPrefix[ev.Prefix], ev)
	}
	var prefixes []netip.Prefix
	for p := range byPrefix {
		prefixes = append(prefixes, p)
	}
	sort.Slice(prefixes, func(i, j int) bool { return prefixes[i].String() < prefixes[j].String() })

	var out []*Period
	for _, p := range prefixes {
		evs := byPrefix[p]
		sort.Slice(evs, func(i, j int) bool { return evs[i].Start.Before(evs[j].Start) })
		var cur *Period
		for _, ev := range evs {
			if cur != nil && ev.Start.Sub(cur.End) <= timeout {
				cur.Events = append(cur.Events, ev)
				if ev.End.After(cur.End) {
					cur.End = ev.End
				}
				continue
			}
			cur = &Period{Prefix: p, Start: ev.Start, End: ev.End, Events: []*Event{ev}}
			out = append(out, cur)
		}
	}
	return out
}
