package core

import (
	"testing"
	"time"

	"bgpblackholing/internal/bgp"
	"bgpblackholing/internal/collector"
)

func TestMetricsCounters(t *testing.T) {
	topo, dict := testWorld()
	e := NewEngine(dict, topo)
	bh := bgp.MakeCommunity(100, 666)

	// A bogon announcement is cleaned away entirely.
	e.ProcessUpdate(announce("22.0.1.1", 100, 0, "10.0.0.1/32", []bgp.ASN{100, 200}, bh), "rrc00", collector.PlatformRIS)
	// Two detections on one prefix each, one explicit end, one implicit.
	e.ProcessUpdate(announce("22.0.1.1", 100, time.Minute, "31.0.0.1/32", []bgp.ASN{100, 200}, bh), "rrc00", collector.PlatformRIS)
	e.ProcessUpdate(announce("22.0.1.1", 100, time.Minute, "31.0.0.2/32", []bgp.ASN{100, 200}, bh), "rrc00", collector.PlatformRIS)
	e.ProcessUpdate(withdraw("22.0.1.1", 100, 2*time.Minute, "31.0.0.1/32"), "rrc00", collector.PlatformRIS)
	e.ProcessUpdate(announce("22.0.1.1", 100, 3*time.Minute, "31.0.0.2/32", []bgp.ASN{100, 200}), "rrc00", collector.PlatformRIS)
	// A withdrawal for something never tracked counts nothing.
	e.ProcessUpdate(withdraw("22.0.1.1", 100, 4*time.Minute, "31.0.0.9/32"), "rrc00", collector.PlatformRIS)

	m := e.Metrics()
	if m.UpdatesCleaned != 1 {
		t.Fatalf("cleaned = %d", m.UpdatesCleaned)
	}
	if m.UpdatesProcessed != 5 {
		t.Fatalf("processed = %d", m.UpdatesProcessed)
	}
	if m.Detections != 2 {
		t.Fatalf("detections = %d", m.Detections)
	}
	if m.ExplicitEnds != 1 || m.ImplicitEnds != 1 {
		t.Fatalf("ends = %d/%d", m.ExplicitEnds, m.ImplicitEnds)
	}
	if m.EventsClosed != 2 {
		t.Fatalf("events closed = %d", m.EventsClosed)
	}

	// Flush counts too.
	e.ProcessUpdate(announce("22.0.1.1", 100, 5*time.Minute, "31.0.0.3/32", []bgp.ASN{100, 200}, bh), "rrc00", collector.PlatformRIS)
	e.Flush(t0.Add(time.Hour))
	if got := e.Metrics().EventsClosed; got != 3 {
		t.Fatalf("events closed after flush = %d", got)
	}
}
