package core

import (
	"fmt"
	"strconv"
	"strings"

	"bgpblackholing/internal/bgp"
)

// ParseProviderRef parses the canonical provider notation: "AS3356"
// (the AS prefix is case-insensitive: "as3356", "As3356", "aS3356"),
// a bare ASN like "3356", or "ixp:4". It is the inverse of
// ProviderRef.String and the single parser behind the query facade's
// ParseProviderRef and the alert rule syntax.
func ParseProviderRef(s string) (ProviderRef, error) {
	if rest, ok := strings.CutPrefix(s, "ixp:"); ok {
		id, err := strconv.Atoi(rest)
		if err != nil || id < 0 {
			return ProviderRef{}, fmt.Errorf("bad IXP provider %q", s)
		}
		return ProviderRef{Kind: ProviderIXP, IXPID: id}, nil
	}
	// Cut exactly one case-insensitive "AS" prefix: chained trims used
	// to accept the nonsense "ASas3356" and reject "As3356"/"aS3356".
	rest := s
	if len(rest) >= 2 && strings.EqualFold(rest[:2], "as") {
		rest = rest[2:]
	}
	asn, err := strconv.ParseUint(rest, 10, 32)
	if err != nil {
		return ProviderRef{}, fmt.Errorf("bad AS provider %q", s)
	}
	return ProviderRef{Kind: ProviderAS, ASN: bgp.ASN(asn)}, nil
}
