package core

// Property-based tests over randomized update sequences: whatever the
// input order, the engine must maintain its structural invariants.

import (
	"math/rand"
	"net/netip"
	"testing"
	"testing/quick"
	"time"

	"bgpblackholing/internal/bgp"
	"bgpblackholing/internal/collector"
)

// randomSequence drives one engine with a random mix of blackhole
// announcements, plain announcements and withdrawals over a small
// universe of prefixes and peers, then checks invariants.
func randomSequence(seed int64) bool {
	topo, dict := testWorld()
	e := NewEngine(dict, topo)
	r := rand.New(rand.NewSource(seed))

	prefixes := []string{"31.0.0.1/32", "31.0.0.2/32", "31.0.0.3/32"}
	peers := []struct {
		ip string
		as bgp.ASN
	}{
		{"22.0.1.1", 100},
		{"22.0.2.1", 300},
	}
	bh := bgp.MakeCommunity(100, 666)

	n := 20 + r.Intn(60)
	var now time.Duration
	for i := 0; i < n; i++ {
		now += time.Duration(1+r.Intn(300)) * time.Second
		p := prefixes[r.Intn(len(prefixes))]
		peer := peers[r.Intn(len(peers))]
		switch r.Intn(3) {
		case 0: // blackhole announcement
			e.ProcessUpdate(announce(peer.ip, peer.as, now, p, []bgp.ASN{100, 200}, bh), "rrc00", collector.PlatformRIS)
		case 1: // plain announcement (implicit withdrawal)
			e.ProcessUpdate(announce(peer.ip, peer.as, now, p, []bgp.ASN{100, 200}), "rrc00", collector.PlatformRIS)
		case 2: // explicit withdrawal
			e.ProcessUpdate(withdraw(peer.ip, peer.as, now, p), "rrc00", collector.PlatformRIS)
		}
	}
	e.Flush(t0.Add(now + time.Hour))

	// Invariant 1: after Flush nothing is active.
	if e.ActiveCount() != 0 {
		return false
	}
	events := e.Events()
	byPrefix := map[netip.Prefix][]*Event{}
	for _, ev := range events {
		// Invariant 2: sane bounds and non-empty provider/user sets.
		if ev.End.Before(ev.Start) {
			return false
		}
		if len(ev.Providers) == 0 || ev.Detections == 0 {
			return false
		}
		// Invariant 3: per-provider distances exist for every provider.
		for pr := range ev.Providers {
			if _, ok := ev.ProviderDistances[pr]; !ok {
				return false
			}
		}
		byPrefix[ev.Prefix] = append(byPrefix[ev.Prefix], ev)
	}
	// Invariant 4: events of one prefix never overlap in time.
	for _, evs := range byPrefix {
		for i := 0; i < len(evs); i++ {
			for j := i + 1; j < len(evs); j++ {
				a, b := evs[i], evs[j]
				if a.Start.Before(b.End) && b.Start.Before(a.End) &&
					!a.End.Equal(b.Start) && !b.End.Equal(a.Start) {
					return false
				}
			}
		}
	}
	return true
}

func TestEngineInvariantsUnderRandomSequences(t *testing.T) {
	f := func(seed int64) bool { return randomSequence(seed) }
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// Property: grouping never loses events, never overlaps periods of the
// same prefix, and period bounds envelope their events.
func TestGroupingInvariants(t *testing.T) {
	f := func(seed int64) bool {
		r := rand.New(rand.NewSource(seed))
		prefix := netip.MustParsePrefix("31.0.0.1/32")
		var events []*Event
		cur := t0
		for i := 0; i < 3+r.Intn(20); i++ {
			cur = cur.Add(time.Duration(30+r.Intn(1200)) * time.Second)
			end := cur.Add(time.Duration(10+r.Intn(600)) * time.Second)
			events = append(events, &Event{Prefix: prefix, Start: cur, End: end})
			cur = end
		}
		periods := Group(events, DefaultGroupTimeout)
		total := 0
		for _, p := range periods {
			total += len(p.Events)
			for _, ev := range p.Events {
				if ev.Start.Before(p.Start) || ev.End.After(p.End) {
					return false
				}
			}
		}
		if total != len(events) {
			return false
		}
		for i := 1; i < len(periods); i++ {
			gap := periods[i].Start.Sub(periods[i-1].End)
			if gap <= DefaultGroupTimeout {
				return false // should have been merged
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestMultiPrefixUpdateTracksEachPrefix(t *testing.T) {
	topo, dict := testWorld()
	e := NewEngine(dict, topo)
	bh := bgp.MakeCommunity(100, 666)
	u := &bgp.Update{
		Time:   t0,
		PeerIP: netip.MustParseAddr("22.0.1.1"),
		PeerAS: 100,
		Announced: []netip.Prefix{
			netip.MustParsePrefix("31.0.0.1/32"),
			netip.MustParsePrefix("31.0.0.2/32"),
		},
		Path:        bgp.NewPath(100, 200),
		Communities: []bgp.Community{bh},
	}
	e.ProcessUpdate(u, "rrc00", collector.PlatformRIS)
	if e.ActiveCount() != 2 {
		t.Fatalf("active = %d, want one event per announced prefix", e.ActiveCount())
	}
	// Withdraw one; the other stays active.
	e.ProcessUpdate(withdraw("22.0.1.1", 100, time.Minute, "31.0.0.1/32"), "rrc00", collector.PlatformRIS)
	if e.ActiveCount() != 1 {
		t.Fatalf("active = %d after partial withdrawal", e.ActiveCount())
	}
}

func TestIPv6Blackholing(t *testing.T) {
	topo, dict := testWorld()
	e := NewEngine(dict, topo)
	bh := bgp.MakeCommunity(100, 666)
	u := &bgp.Update{
		Time:        t0,
		PeerIP:      netip.MustParseAddr("2001:db8:22::1"),
		PeerAS:      100,
		Announced:   []netip.Prefix{netip.MustParsePrefix("2a00:1:2::1/128")},
		Path:        bgp.NewPath(100, 200),
		Communities: []bgp.Community{bh},
	}
	e.ProcessUpdate(u, "rrc00", collector.PlatformRIS)
	if e.ActiveCount() != 1 {
		t.Fatal("IPv6 host route not tracked")
	}
	e.Flush(t0.Add(time.Hour))
	if len(e.Events()) != 1 {
		t.Fatal("IPv6 event lost")
	}
}
