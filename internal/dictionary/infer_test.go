package dictionary

import (
	"fmt"
	"net/netip"
	"testing"

	"bgpblackholing/internal/bgp"
	"bgpblackholing/internal/topology"
)

func announce(prefix string, comms ...bgp.Community) *bgp.Update {
	return &bgp.Update{
		Announced:   []netip.Prefix{netip.MustParsePrefix(prefix)},
		Communities: comms,
	}
}

func knownDict() *Dictionary {
	d := New()
	d.addEntry(bgp.MakeCommunity(3356, 9999), topology.DocIRR, 3356, -1, 32, "")
	return d
}

func TestInferFindsUndocumentedBlackholeCommunity(t *testing.T) {
	d := knownDict()
	c := NewCollector(d)
	undoc := bgp.MakeCommunity(7018, 666)
	known := bgp.MakeCommunity(3356, 9999)
	// Bundled announcements: undocumented community rides along with the
	// known one, always on /32s (distinct victims; repeated identical
	// applications count once).
	for i := 0; i < 5; i++ {
		c.Observe(announce(fmt.Sprintf("192.0.2.%d/32", i+1), known, undoc))
	}
	res := c.Infer()
	if len(res.Inferred) != 1 {
		t.Fatalf("inferred %d communities, want 1", len(res.Inferred))
	}
	e := res.Inferred[0]
	if e.Community != undoc || e.Providers[0] != 7018 {
		t.Fatalf("inferred %+v", e)
	}
}

func TestInferRejectsWithoutCoOccurrence(t *testing.T) {
	d := knownDict()
	c := NewCollector(d)
	undoc := bgp.MakeCommunity(7018, 666)
	for i := 0; i < 5; i++ {
		c.Observe(announce("192.0.2.1/32", undoc))
	}
	if res := c.Infer(); len(res.Inferred) != 0 {
		t.Fatalf("inferred %v without co-occurrence", res.Inferred)
	}
}

func TestInferRejectsCoarsePrefixUsage(t *testing.T) {
	d := knownDict()
	c := NewCollector(d)
	te := bgp.MakeCommunity(7018, 100)
	known := bgp.MakeCommunity(3356, 9999)
	// TE community mostly on /24 and shorter; one bundled /32.
	for i := 0; i < 10; i++ {
		c.Observe(announce("198.51.100.0/24", te))
	}
	c.Observe(announce("192.0.2.1/32", known, te))
	if res := c.Infer(); len(res.Inferred) != 0 {
		t.Fatalf("inferred %v for a /24-dominant community", res.Inferred)
	}
}

func TestInferRejectsPrivateASNHighBits(t *testing.T) {
	d := knownDict()
	c := NewCollector(d)
	known := bgp.MakeCommunity(3356, 9999)
	private := bgp.MakeCommunity(65001, 666) // 65001 is a private ASN
	zero := bgp.MakeCommunity(0, 667)
	for i := 0; i < 5; i++ {
		c.Observe(announce("192.0.2.1/32", known, private, zero))
	}
	if res := c.Infer(); len(res.Inferred) != 0 {
		t.Fatalf("inferred %v despite non-public high bits", res.Inferred)
	}
}

func TestInferRejectsDocumentedNonBlackhole(t *testing.T) {
	d := knownDict()
	peering := bgp.MakeCommunity(7018, 666)
	d.nonBlackhole[peering] = []bgp.ASN{7018}
	c := NewCollector(d)
	known := bgp.MakeCommunity(3356, 9999)
	for i := 0; i < 5; i++ {
		c.Observe(announce("192.0.2.1/32", known, peering))
	}
	if res := c.Infer(); len(res.Inferred) != 0 {
		t.Fatalf("inferred %v despite non-blackhole documentation", res.Inferred)
	}
}

func TestInferRequiresMinimumSupport(t *testing.T) {
	d := knownDict()
	c := NewCollector(d)
	known := bgp.MakeCommunity(3356, 9999)
	undoc := bgp.MakeCommunity(7018, 666)
	c.Observe(announce("192.0.2.1/32", known, undoc)) // only 1 occurrence
	if res := c.Infer(); len(res.Inferred) != 0 {
		t.Fatalf("inferred %v below support threshold", res.Inferred)
	}
}

func TestStatsFractions(t *testing.T) {
	d := knownDict()
	c := NewCollector(d)
	comm := bgp.MakeCommunity(7018, 100)
	c.Observe(announce("198.51.100.0/24", comm))
	c.Observe(announce("203.0.113.0/24", comm))
	c.Observe(announce("192.0.2.1/32", comm))
	// A duplicate application is counted once.
	c.Observe(announce("192.0.2.1/32", comm))
	s := c.stats[comm]
	if s.Total != 3 {
		t.Fatalf("total = %d", s.Total)
	}
	if got := s.FractionAtLen(24); got < 0.66 || got > 0.67 {
		t.Fatalf("FractionAtLen(24) = %v", got)
	}
	if got := s.FractionMoreSpecificThan24(); got < 0.33 || got > 0.34 {
		t.Fatalf("FractionMoreSpecificThan24 = %v", got)
	}
	var empty CommunityStats
	if empty.FractionAtLen(32) != 0 || empty.FractionMoreSpecificThan24() != 0 {
		t.Fatal("zero-total stats should report 0")
	}
}

func TestObserveIgnoresWithdrawalsAndBareAnnouncements(t *testing.T) {
	d := knownDict()
	c := NewCollector(d)
	c.Observe(&bgp.Update{Withdrawn: []netip.Prefix{netip.MustParsePrefix("192.0.2.0/24")}})
	c.Observe(announce("192.0.2.1/32")) // no communities
	if len(c.stats) != 0 {
		t.Fatalf("stats = %v, want empty", c.stats)
	}
}
