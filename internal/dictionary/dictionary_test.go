package dictionary

import (
	"testing"

	"bgpblackholing/internal/bgp"
	"bgpblackholing/internal/irr"
	"bgpblackholing/internal/topology"
)

func worldAndCorpus(t testing.TB) (*topology.Topology, []irr.Document) {
	t.Helper()
	topo, err := topology.Generate(topology.DefaultConfig().Scaled(0.2))
	if err != nil {
		t.Fatal(err)
	}
	return topo, irr.GenerateCorpus(topo, 1)
}

func TestFromCorpusFindsDocumentedCommunities(t *testing.T) {
	topo, docs := worldAndCorpus(t)
	d := FromCorpus(docs)
	for _, asn := range topo.Order {
		as := topo.ASes[asn]
		if as.Blackholing == nil {
			continue
		}
		primary := as.Blackholing.Communities[0]
		e := d.Lookup(primary)
		switch as.Blackholing.Doc {
		case topology.DocIRR, topology.DocWeb:
			if e == nil {
				t.Fatalf("documented community %s of AS%d not extracted", primary, asn)
			}
			if !containsASN(e.Providers, asn) {
				t.Fatalf("entry %s misses provider AS%d: %v", primary, asn, e.Providers)
			}
			if e.MaxPrefixLen != as.Blackholing.MaxPrefixLen {
				t.Errorf("entry %s max prefix len = %d, want %d", primary, e.MaxPrefixLen, as.Blackholing.MaxPrefixLen)
			}
		case topology.DocNone:
			if e != nil && containsASN(e.Providers, asn) {
				t.Fatalf("undocumented community %s of AS%d wrongly extracted", primary, asn)
			}
		}
	}
}

func TestFromCorpusFindsIXPCommunities(t *testing.T) {
	topo, docs := worldAndCorpus(t)
	d := FromCorpus(docs)
	for _, x := range topo.BlackholingIXPs() {
		e := d.Lookup(x.Blackholing.Communities[0])
		if e == nil {
			t.Fatalf("IXP %s community not extracted", x.Name)
		}
		if !containsInt(e.IXPs, x.ID) {
			t.Fatalf("entry misses IXP %s: %v", x.Name, e.IXPs)
		}
	}
	// RFC 7999 65535:666 must be shared across many IXPs.
	e := d.Lookup(bgp.CommunityBlackhole)
	if e == nil || len(e.IXPs) < 2 || !e.Shared {
		t.Fatalf("RFC7999 entry = %+v, want shared across IXPs", e)
	}
}

func TestFromCorpusLevel3Collision(t *testing.T) {
	topo, docs := worldAndCorpus(t)
	d := FromCorpus(docs)
	// Find the Level3-style AS: Tier-1 whose blackhole low value is 9999
	// and which tags peering routes with ASN:666.
	var l3 *topology.AS
	for _, asn := range topo.Order {
		as := topo.ASes[asn]
		if as.Tier1 && as.Blackholing != nil && as.Blackholing.Communities[0].Low() == 9999 {
			l3 = as
			break
		}
	}
	if l3 == nil {
		t.Skip("no Level3-style AS in this world")
	}
	c666 := bgp.MakeCommunity(uint16(l3.ASN), 666)
	if e := d.Lookup(c666); e != nil && containsASN(e.Providers, l3.ASN) {
		t.Fatalf("%s wrongly classified as blackhole community", c666)
	}
	if !d.IsNonBlackhole(c666) {
		t.Fatalf("%s should be in the non-blackhole dictionary", c666)
	}
	if e := d.Lookup(l3.Blackholing.Communities[0]); e == nil {
		t.Fatalf("real blackhole community %s missed", l3.Blackholing.Communities[0])
	}
}

func TestAddPrivateFromTopology(t *testing.T) {
	topo, docs := worldAndCorpus(t)
	d := FromCorpus(docs)
	before := len(d.Providers())
	d.AddPrivateFromTopology(topo)
	after := len(d.Providers())
	nPrivate := 0
	for _, asn := range topo.Order {
		as := topo.ASes[asn]
		if as.Blackholing != nil && as.Blackholing.Doc == topology.DocPrivate {
			nPrivate++
			if e := d.Lookup(as.Blackholing.Communities[0]); e == nil || e.Doc != topology.DocPrivate {
				t.Fatalf("private community of AS%d not added", asn)
			}
		}
	}
	if nPrivate > 0 && after <= before {
		t.Fatalf("providers %d -> %d despite %d private networks", before, after, nPrivate)
	}
}

func TestDictionaryCoverageMatchesGroundTruth(t *testing.T) {
	topo, docs := worldAndCorpus(t)
	d := FromCorpus(docs)
	d.AddPrivateFromTopology(topo)
	// Every documented (IRR/Web/Private) provider must be present.
	want := map[bgp.ASN]bool{}
	for _, asn := range topo.Order {
		as := topo.ASes[asn]
		if as.Blackholing != nil && as.Blackholing.Doc != topology.DocNone {
			want[asn] = true
		}
	}
	got := map[bgp.ASN]bool{}
	for _, p := range d.Providers() {
		got[p] = true
	}
	for asn := range want {
		if !got[asn] {
			t.Errorf("documented provider AS%d missing from dictionary", asn)
		}
	}
	// And nothing else (no false-positive providers). Shared communities
	// may attribute extra providers only if they are real.
	for asn := range got {
		as := topo.ASes[asn]
		if as == nil || as.Blackholing == nil {
			t.Errorf("dictionary names non-provider AS%d", asn)
		}
	}
	if len(d.IXPs()) != len(topo.BlackholingIXPs()) {
		t.Errorf("dictionary IXPs = %d, want %d", len(d.IXPs()), len(topo.BlackholingIXPs()))
	}
}

func TestLargeCommunityExtraction(t *testing.T) {
	topo, docs := worldAndCorpus(t)
	d := FromCorpus(docs)
	var want *topology.AS
	for _, asn := range topo.Order {
		as := topo.ASes[asn]
		if as.Blackholing != nil && len(as.Blackholing.LargeCommunities) > 0 &&
			(as.Blackholing.Doc == topology.DocIRR || as.Blackholing.Doc == topology.DocWeb) {
			want = as
			break
		}
	}
	if want == nil {
		t.Skip("no documented large-community provider in this world")
	}
	e := d.LookupLarge(want.Blackholing.LargeCommunities[0])
	if e == nil || !containsASN(e.Providers, want.ASN) {
		t.Fatalf("large community %v not extracted for AS%d", want.Blackholing.LargeCommunities[0], want.ASN)
	}
	if len(d.LargeEntries()) == 0 {
		t.Fatal("LargeEntries empty")
	}
}

func TestEntriesSorted(t *testing.T) {
	_, docs := worldAndCorpus(t)
	d := FromCorpus(docs)
	es := d.Entries()
	for i := 1; i < len(es); i++ {
		if es[i-1].Community >= es[i].Community {
			t.Fatal("Entries not sorted")
		}
	}
}

func TestSharedFlagForNonASNHighBits(t *testing.T) {
	d := New()
	d.addEntry(bgp.MakeCommunity(0, 666), topology.DocIRR, 5000, -1, 32, "")
	e := d.Lookup(bgp.MakeCommunity(0, 666))
	if e == nil || !e.Shared {
		t.Fatalf("0:666 with provider 5000 should be shared, got %+v", e)
	}
	d.addEntry(bgp.MakeCommunity(4000, 666), topology.DocIRR, 4000, -1, 32, "")
	if e := d.Lookup(bgp.MakeCommunity(4000, 666)); e.Shared {
		t.Fatalf("4000:666 owned by AS4000 should not be shared")
	}
}
