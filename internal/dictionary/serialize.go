package dictionary

import (
	"encoding/json"
	"fmt"
	"io"

	"bgpblackholing/internal/bgp"
	"bgpblackholing/internal/topology"
)

// fileFormat is the on-disk JSON shape of a dictionary. Communities use
// their canonical string notation so dumps stay human-readable and
// diffable — the dictionary is the kind of artefact researchers publish
// alongside a study.
type fileFormat struct {
	Entries      []entryJSON `json:"entries"`
	Large        []largeJSON `json:"large_entries,omitempty"`
	NonBlackhole []nonBHJSON `json:"non_blackhole,omitempty"`
	Version      int         `json:"version"`
}

type entryJSON struct {
	Community    string    `json:"community"`
	Providers    []bgp.ASN `json:"providers,omitempty"`
	IXPs         []int     `json:"ixps,omitempty"`
	Doc          string    `json:"doc"`
	MaxPrefixLen int       `json:"max_prefix_len,omitempty"`
	Scope        string    `json:"scope,omitempty"`
	Shared       bool      `json:"shared,omitempty"`
}

type largeJSON struct {
	Community string    `json:"community"`
	Providers []bgp.ASN `json:"providers,omitempty"`
	Doc       string    `json:"doc"`
}

type nonBHJSON struct {
	Community string    `json:"community"`
	ASes      []bgp.ASN `json:"ases"`
}

func docToString(d topology.DocSource) string { return d.String() }

func docFromString(s string) (topology.DocSource, error) {
	switch s {
	case "IRR":
		return topology.DocIRR, nil
	case "Web":
		return topology.DocWeb, nil
	case "Private":
		return topology.DocPrivate, nil
	case "None", "":
		return topology.DocNone, nil
	}
	return 0, fmt.Errorf("dictionary: unknown doc source %q", s)
}

// Save writes the dictionary as JSON.
func (d *Dictionary) Save(w io.Writer) error {
	ff := fileFormat{Version: 1}
	for _, e := range d.Entries() {
		ff.Entries = append(ff.Entries, entryJSON{
			Community:    e.Community.String(),
			Providers:    e.Providers,
			IXPs:         e.IXPs,
			Doc:          docToString(e.Doc),
			MaxPrefixLen: e.MaxPrefixLen,
			Scope:        e.Scope,
			Shared:       e.Shared,
		})
	}
	for _, e := range d.LargeEntries() {
		ff.Large = append(ff.Large, largeJSON{
			Community: e.Community.String(),
			Providers: e.Providers,
			Doc:       docToString(e.Doc),
		})
	}
	// Deterministic order for the non-blackhole dictionary.
	var nbh []bgp.Community
	for c := range d.nonBlackhole {
		nbh = append(nbh, c)
	}
	for i := 1; i < len(nbh); i++ {
		for j := i; j > 0 && nbh[j] < nbh[j-1]; j-- {
			nbh[j], nbh[j-1] = nbh[j-1], nbh[j]
		}
	}
	for _, c := range nbh {
		ff.NonBlackhole = append(ff.NonBlackhole, nonBHJSON{
			Community: c.String(),
			ASes:      d.nonBlackhole[c],
		})
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(ff)
}

// Load reads a dictionary written by Save.
func Load(r io.Reader) (*Dictionary, error) {
	var ff fileFormat
	if err := json.NewDecoder(r).Decode(&ff); err != nil {
		return nil, fmt.Errorf("dictionary: decode: %w", err)
	}
	if ff.Version != 1 {
		return nil, fmt.Errorf("dictionary: unsupported version %d", ff.Version)
	}
	d := New()
	for _, e := range ff.Entries {
		c, err := bgp.ParseCommunity(e.Community)
		if err != nil {
			return nil, err
		}
		doc, err := docFromString(e.Doc)
		if err != nil {
			return nil, err
		}
		entry := &Entry{
			Community:    c,
			Providers:    e.Providers,
			IXPs:         e.IXPs,
			Doc:          doc,
			MaxPrefixLen: e.MaxPrefixLen,
			Scope:        e.Scope,
			Shared:       e.Shared,
		}
		d.entries[c] = entry
	}
	for _, e := range ff.Large {
		lc, err := bgp.ParseLargeCommunity(e.Community)
		if err != nil {
			return nil, err
		}
		doc, err := docFromString(e.Doc)
		if err != nil {
			return nil, err
		}
		d.large[lc] = &LargeEntry{Community: lc, Providers: e.Providers, Doc: doc}
	}
	for _, n := range ff.NonBlackhole {
		c, err := bgp.ParseCommunity(n.Community)
		if err != nil {
			return nil, err
		}
		d.nonBlackhole[c] = n.ASes
	}
	return d, nil
}
