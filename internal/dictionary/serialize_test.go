package dictionary

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"bgpblackholing/internal/bgp"
)

func TestSaveLoadRoundTrip(t *testing.T) {
	topo, docs := worldAndCorpus(t)
	d := FromCorpus(docs)
	d.AddPrivateFromTopology(topo)

	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	got, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}

	if !reflect.DeepEqual(got.Providers(), d.Providers()) {
		t.Fatalf("providers differ: %v vs %v", got.Providers(), d.Providers())
	}
	if !reflect.DeepEqual(got.IXPs(), d.IXPs()) {
		t.Fatalf("IXPs differ")
	}
	if len(got.Entries()) != len(d.Entries()) {
		t.Fatalf("entries %d vs %d", len(got.Entries()), len(d.Entries()))
	}
	for i, e := range d.Entries() {
		ge := got.Entries()[i]
		if ge.Community != e.Community || ge.Doc != e.Doc || ge.MaxPrefixLen != e.MaxPrefixLen ||
			ge.Scope != e.Scope || ge.Shared != e.Shared {
			t.Fatalf("entry %d differs: %+v vs %+v", i, ge, e)
		}
	}
	if len(got.LargeEntries()) != len(d.LargeEntries()) {
		t.Fatal("large entries differ")
	}
	// The non-blackhole dictionary survives too.
	for c := range d.nonBlackhole {
		if !got.IsNonBlackhole(c) {
			t.Fatalf("non-blackhole community %s lost", c)
		}
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(strings.NewReader("{broken")); err == nil {
		t.Fatal("want decode error")
	}
	if _, err := Load(strings.NewReader(`{"version":9}`)); err == nil {
		t.Fatal("want version error")
	}
	if _, err := Load(strings.NewReader(`{"version":1,"entries":[{"community":"xx","doc":"IRR"}]}`)); err == nil {
		t.Fatal("want community parse error")
	}
	if _, err := Load(strings.NewReader(`{"version":1,"entries":[{"community":"1:2","doc":"Carrier pigeon"}]}`)); err == nil {
		t.Fatal("want doc source error")
	}
}

func TestSaveIsHumanReadable(t *testing.T) {
	d := New()
	d.AddPrivate(bgp.MakeCommunity(3356, 9999), 3356, 32)
	var buf bytes.Buffer
	if err := d.Save(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `"3356:9999"`) {
		t.Fatalf("canonical notation missing:\n%s", buf.String())
	}
}
