package dictionary

import (
	"net/netip"
	"sort"

	"bgpblackholing/internal/bgp"
)

// CommunityStats accumulates the prefix-length profile of one community
// across a BGP update corpus: the raw material of Figure 2.
type CommunityStats struct {
	Community bgp.Community
	// LenCounts counts announcements per prefix length the community
	// appeared on.
	LenCounts map[int]int
	// Total is the total number of announcements carrying the community.
	Total int
	// CoOccurredWithKnown is true when the community appeared at least
	// once on an announcement together with a documented blackhole
	// community — the confidence requirement of §4.1.
	CoOccurredWithKnown bool
}

// FractionAtLen returns the fraction of occurrences at prefix length l.
func (s *CommunityStats) FractionAtLen(l int) float64 {
	if s.Total == 0 {
		return 0
	}
	return float64(s.LenCounts[l]) / float64(s.Total)
}

// FractionMoreSpecificThan24 returns the fraction of occurrences on
// prefixes more specific than /24.
func (s *CommunityStats) FractionMoreSpecificThan24() float64 {
	if s.Total == 0 {
		return 0
	}
	n := 0
	for l, c := range s.LenCounts {
		if l > 24 {
			n += c
		}
	}
	return float64(n) / float64(s.Total)
}

// InferenceResult holds the outcome of the dictionary-extension pass.
type InferenceResult struct {
	// Stats indexes the per-community prefix-length profiles of every
	// community observed in the corpus.
	Stats map[bgp.Community]*CommunityStats
	// Inferred lists communities inferred to be blackhole communities
	// but lacking documentation; the paper reports them separately
	// (Table 2 parentheses) and keeps them out of the documented
	// dictionary.
	Inferred []*Entry
}

// Collector ingests BGP announcements and accumulates community
// statistics for inference. The zero value is not usable; call
// NewCollector.
//
// Each distinct (community, prefix) application is counted once, no
// matter how many vantage points observe it: a /24 announcement
// propagates to every collector session while a blackholed /32 is
// widely suppressed, and counting raw observations would let that
// propagation asymmetry swamp the prefix-length profile.
type Collector struct {
	dict  *Dictionary
	stats map[bgp.Community]*CommunityStats
	seen  map[commPrefix]bool
}

type commPrefix struct {
	c bgp.Community
	p netip.Prefix
}

// NewCollector returns a Collector inferring against the documented
// dictionary d.
func NewCollector(d *Dictionary) *Collector {
	return &Collector{
		dict:  d,
		stats: map[bgp.Community]*CommunityStats{},
		seen:  map[commPrefix]bool{},
	}
}

// Observe feeds one announcement's communities and prefixes into the
// statistics. Withdrawals carry no communities and are ignored, as are
// IPv6 prefixes: the prefix-length analysis is an IPv4 one (an IPv6 /32
// is an ordinary aggregate, not a host route), and IPv4 accounts for
// over 96% of the datasets (§3).
func (c *Collector) Observe(u *bgp.Update) {
	if len(u.Announced) == 0 || len(u.Communities) == 0 {
		return
	}
	v4 := u.Announced[:0:0]
	for _, p := range u.Announced {
		if p.Addr().Is4() {
			v4 = append(v4, p)
		}
	}
	if len(v4) == 0 {
		return
	}
	u = &bgp.Update{Announced: v4, Communities: u.Communities}
	hasKnown := false
	for _, comm := range u.Communities {
		if c.dict.Lookup(comm) != nil {
			hasKnown = true
			break
		}
	}
	for _, comm := range u.Communities {
		s := c.stats[comm]
		if s == nil {
			s = &CommunityStats{Community: comm, LenCounts: map[int]int{}}
			c.stats[comm] = s
		}
		for _, p := range u.Announced {
			key := commPrefix{comm, p}
			if c.seen[key] {
				continue
			}
			c.seen[key] = true
			s.LenCounts[p.Bits()]++
			s.Total++
		}
		if hasKnown && c.dict.Lookup(comm) == nil {
			s.CoOccurredWithKnown = true
		}
	}
}

// minOccurrences is the support threshold below which a community's
// profile is considered noise.
const minOccurrences = 3

// exclusivityThreshold is the fraction of occurrences that must fall on
// prefixes more specific than /24 for a community to be a blackhole
// candidate ("almost exclusively" in §4.1).
const exclusivityThreshold = 0.95

// Infer runs the Figure 2 extension: communities applied almost
// exclusively to prefixes more specific than /24, co-occurring at least
// once with a documented blackhole community, whose high 16 bits encode
// a public ASN, and which are neither already documented as blackhole
// nor documented for another purpose.
func (c *Collector) Infer() *InferenceResult {
	res := &InferenceResult{Stats: c.stats}
	var cands []bgp.Community
	for comm := range c.stats {
		cands = append(cands, comm)
	}
	sort.Slice(cands, func(i, j int) bool { return cands[i] < cands[j] })
	for _, comm := range cands {
		s := c.stats[comm]
		if s.Total < minOccurrences {
			continue
		}
		if c.dict.Lookup(comm) != nil {
			continue // already documented
		}
		if c.dict.IsNonBlackhole(comm) {
			continue // documented for another purpose
		}
		if !s.CoOccurredWithKnown {
			continue
		}
		if s.FractionMoreSpecificThan24() < exclusivityThreshold {
			continue
		}
		owner := bgp.ASN(comm.High())
		if !owner.IsPublic() {
			// Without documentation such communities cannot be mapped to
			// a provider (§4.1) — ignored.
			continue
		}
		res.Inferred = append(res.Inferred, &Entry{
			Community: comm,
			Providers: []bgp.ASN{owner},
			Doc:       0, // DocNone
		})
	}
	return res
}
