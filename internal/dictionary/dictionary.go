// Package dictionary builds the blackhole-communities dictionary of
// §4.1: it extracts documented blackhole communities from IRR records and
// operator web pages with keyword/lemma text matching, augments them with
// communities learned via private communication, and supports the
// prefix-length-based inference that extends the dictionary with
// undocumented candidates (the Figure 2 method).
package dictionary

import (
	"regexp"
	"sort"
	"strings"

	"bgpblackholing/internal/bgp"
	"bgpblackholing/internal/irr"
	"bgpblackholing/internal/topology"
)

// Entry describes one blackhole community in the dictionary.
type Entry struct {
	Community bgp.Community
	// Providers lists the ASes known to honour this community. Shared
	// communities (e.g. 0:666 or 65535:666) map to several providers.
	Providers []bgp.ASN
	// IXPs lists IXP IDs honouring the community via their route servers.
	IXPs []int
	// Doc records the strongest documentation source seen.
	Doc topology.DocSource
	// MaxPrefixLen is the documented most-specific accepted length
	// (0 when undocumented).
	MaxPrefixLen int
	// Scope is a documented regional restriction ("" for global).
	Scope string
	// Shared is true when the community's high 16 bits do not encode a
	// single public provider ASN, so AS-path disambiguation is needed.
	Shared bool
}

// LargeEntry is the large-community analogue of Entry.
type LargeEntry struct {
	Community bgp.LargeCommunity
	Providers []bgp.ASN
	Doc       topology.DocSource
}

// Dictionary is the blackhole communities dictionary.
type Dictionary struct {
	entries map[bgp.Community]*Entry
	large   map[bgp.LargeCommunity]*LargeEntry
	// nonBlackhole maps communities documented for other purposes
	// (relationship tagging, TE); the paper's "second dictionary".
	nonBlackhole map[bgp.Community][]bgp.ASN
}

// New returns an empty dictionary.
func New() *Dictionary {
	return &Dictionary{
		entries:      map[bgp.Community]*Entry{},
		large:        map[bgp.LargeCommunity]*LargeEntry{},
		nonBlackhole: map[bgp.Community][]bgp.ASN{},
	}
}

// Lookup returns the entry for a community, or nil.
func (d *Dictionary) Lookup(c bgp.Community) *Entry { return d.entries[c] }

// LookupLarge returns the entry for a large community, or nil.
func (d *Dictionary) LookupLarge(lc bgp.LargeCommunity) *LargeEntry { return d.large[lc] }

// IsNonBlackhole reports whether the community is documented for a
// non-blackholing purpose by at least one AS.
func (d *Dictionary) IsNonBlackhole(c bgp.Community) bool {
	return len(d.nonBlackhole[c]) > 0
}

// Entries returns all entries sorted by community value.
func (d *Dictionary) Entries() []*Entry {
	out := make([]*Entry, 0, len(d.entries))
	for _, e := range d.entries {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Community < out[j].Community })
	return out
}

// LargeEntries returns all large-community entries.
func (d *Dictionary) LargeEntries() []*LargeEntry {
	out := make([]*LargeEntry, 0, len(d.large))
	for _, e := range d.large {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i].Community, out[j].Community
		if a.Global != b.Global {
			return a.Global < b.Global
		}
		if a.Local1 != b.Local1 {
			return a.Local1 < b.Local1
		}
		return a.Local2 < b.Local2
	})
	return out
}

// Providers returns the deduplicated set of AS providers across entries.
func (d *Dictionary) Providers() []bgp.ASN {
	seen := map[bgp.ASN]bool{}
	for _, e := range d.entries {
		for _, p := range e.Providers {
			seen[p] = true
		}
	}
	for _, e := range d.large {
		for _, p := range e.Providers {
			seen[p] = true
		}
	}
	out := make([]bgp.ASN, 0, len(seen))
	for p := range seen {
		out = append(out, p)
	}
	return topology.SortASNs(out)
}

// IXPs returns the deduplicated set of IXP IDs across entries.
func (d *Dictionary) IXPs() []int {
	seen := map[int]bool{}
	for _, e := range d.entries {
		for _, x := range e.IXPs {
			seen[x] = true
		}
	}
	out := make([]int, 0, len(seen))
	for x := range seen {
		out = append(out, x)
	}
	sort.Ints(out)
	return out
}

func (d *Dictionary) addEntry(c bgp.Community, doc topology.DocSource, provider bgp.ASN, ixp int, maxLen int, scope string) *Entry {
	e := d.entries[c]
	if e == nil {
		e = &Entry{Community: c, Doc: doc, MaxPrefixLen: maxLen, Scope: scope}
		d.entries[c] = e
	}
	if doc > e.Doc {
		e.Doc = doc
	}
	if maxLen > e.MaxPrefixLen {
		e.MaxPrefixLen = maxLen
	}
	if provider != 0 && !containsASN(e.Providers, provider) {
		e.Providers = append(e.Providers, provider)
	}
	if ixp >= 0 && !containsInt(e.IXPs, ixp) {
		e.IXPs = append(e.IXPs, ixp)
	}
	// A community honoured by more than one party, or whose high bits do
	// not name the (single) provider, needs AS-path disambiguation.
	e.Shared = len(e.Providers)+len(e.IXPs) > 1 ||
		(len(e.Providers) == 1 && bgp.ASN(c.High()) != e.Providers[0]) ||
		(len(e.IXPs) == 1 && len(e.Providers) == 0)
	return e
}

func containsASN(s []bgp.ASN, v bgp.ASN) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

func containsInt(s []int, v int) bool {
	for _, x := range s {
		if x == v {
			return true
		}
	}
	return false
}

// communityRe matches standard community notation in free text.
var communityRe = regexp.MustCompile(`\b(\d{1,5}):(\d{1,5})\b`)

// largeCommunityRe matches large community notation a:b:c.
var largeCommunityRe = regexp.MustCompile(`\b(\d{1,10}):(\d{1,10}):(\d{1,10})\b`)

// maxLenRe captures "up to /NN" style documentation of the accepted
// prefix length.
var maxLenRe = regexp.MustCompile(`(?:up to|accepted up to|more specific than /24 up to)\s*/(\d{1,3})`)

// blackholeLemmas are the stems whose presence in a sentence marks it as
// documenting a blackhole community. Matching is case-insensitive and
// tolerant of inflection ("blackholing", "blackholed", "null-routed").
var blackholeLemmas = []string{
	"blackhol", "black hol", "null rout", "null-rout", "nullrout", "rtbh",
	"remotely triggered", "discard",
}

// regionLemmas extract the regional scope of fine-grained communities.
var regionRe = regexp.MustCompile(`(?i)(?:blackhole )?in ([A-Za-z ]+?) only`)

// sentenceContainsBlackholeLemma reports whether s (already lowercased)
// documents blackholing.
func sentenceContainsBlackholeLemma(s string) bool {
	for _, l := range blackholeLemmas {
		if strings.Contains(s, l) {
			return true
		}
	}
	return false
}

// FromCorpus extracts the documented dictionary from a documentation
// corpus. The extractor is purely textual: it sees only what operators
// published, exactly like the paper's scraper+NLTK pipeline.
//
// Validation rule (§4.1): a community enters the documented dictionary
// only when the publishing party can be identified (the record's ASN or
// IXP), mirroring "we only include communities we can validate via
// published information".
func FromCorpus(docs []irr.Document) *Dictionary {
	d := New()
	for _, doc := range docs {
		sentences := splitSentences(doc.Text)
		// Documented accepted prefix length applies document-wide (it is
		// usually stated on its own line).
		docMaxLen := 0
		if mm := maxLenRe.FindStringSubmatch(strings.ToLower(doc.Text)); mm != nil {
			docMaxLen = atoiSafe(mm[1])
		}
		prevBH := false
		for _, sent := range sentences {
			low := strings.ToLower(sent)
			lemmaHere := sentenceContainsBlackholeLemma(low)
			// One-sentence context window: prose like "We offer a
			// blackholing service. Announce the prefix with community
			// X:Y." documents the community in the follow-up sentence.
			isBH := lemmaHere || prevBH
			prevBH = lemmaHere

			// Large communities first (their notation contains the
			// standard notation as a substring).
			largeSeen := map[string]bool{}
			for _, m := range largeCommunityRe.FindAllString(sent, -1) {
				largeSeen[m] = true
				if !isBH {
					continue
				}
				lc, err := bgp.ParseLargeCommunity(m)
				if err != nil {
					continue
				}
				e := d.large[lc]
				if e == nil {
					e = &LargeEntry{Community: lc, Doc: docSource(doc)}
					d.large[lc] = e
				}
				if doc.ASN != 0 && !containsASN(e.Providers, doc.ASN) {
					e.Providers = append(e.Providers, doc.ASN)
				}
			}

			for _, m := range communityRe.FindAllString(sent, -1) {
				if coveredByLarge(m, largeSeen) {
					continue
				}
				c, err := bgp.ParseCommunity(m)
				if err != nil {
					continue
				}
				if !isBH {
					// Feed the non-blackhole dictionary (Fig 2 baseline).
					if doc.ASN != 0 && !containsASN(d.nonBlackhole[c], doc.ASN) {
						d.nonBlackhole[c] = append(d.nonBlackhole[c], doc.ASN)
					}
					continue
				}
				scope := ""
				if rm := regionRe.FindStringSubmatch(sent); rm != nil {
					scope = strings.TrimSpace(rm[1])
				}
				d.addEntry(c, docSource(doc), doc.ASN, doc.IXPID, docMaxLen, scope)
			}
		}
	}
	return d
}

// coveredByLarge reports whether the standard-notation match m is a
// substring of a matched large community (e.g. "666:0" inside
// "212100:666:0").
func coveredByLarge(m string, large map[string]bool) bool {
	for l := range large {
		if strings.Contains(l, m) {
			return true
		}
	}
	return false
}

func docSource(doc irr.Document) topology.DocSource {
	if doc.Source == irr.SourceWeb {
		return topology.DocWeb
	}
	return topology.DocIRR
}

// AddNonBlackhole records a community documented for a non-blackholing
// purpose (relationship tagging, traffic engineering) into the second
// dictionary used by the Figure 2 comparison.
func (d *Dictionary) AddNonBlackhole(c bgp.Community, provider bgp.ASN) {
	if !containsASN(d.nonBlackhole[c], provider) {
		d.nonBlackhole[c] = append(d.nonBlackhole[c], provider)
	}
}

// AddPrivate records a community learned through private communication
// (5 networks in the paper).
func (d *Dictionary) AddPrivate(c bgp.Community, provider bgp.ASN, maxLen int) {
	d.addEntry(c, topology.DocPrivate, provider, -1, maxLen, "")
}

// AddPrivateFromTopology injects the communities of providers whose
// documentation source is private communication, reading the ground
// truth the way the authors read their e-mail.
func (d *Dictionary) AddPrivateFromTopology(topo *topology.Topology) {
	for _, asn := range topo.Order {
		as := topo.ASes[asn]
		if as.Blackholing == nil || as.Blackholing.Doc != topology.DocPrivate {
			continue
		}
		for _, c := range as.Blackholing.Communities {
			d.AddPrivate(c, asn, as.Blackholing.MaxPrefixLen)
		}
	}
}

func splitSentences(text string) []string {
	// Lines are natural sentence units in RPSL; periods split web prose.
	var out []string
	for _, line := range strings.Split(text, "\n") {
		for _, s := range strings.Split(line, ". ") {
			s = strings.TrimSpace(s)
			if s != "" {
				out = append(out, s)
			}
		}
	}
	return out
}

func atoiSafe(s string) int {
	n := 0
	for _, r := range s {
		if r < '0' || r > '9' {
			return 0
		}
		n = n*10 + int(r-'0')
		if n > 1000 {
			return 0
		}
	}
	return n
}
