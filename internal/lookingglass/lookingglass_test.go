package lookingglass

import (
	"net/netip"
	"testing"

	"bgpblackholing/internal/bgp"
	"bgpblackholing/internal/collector"
	"bgpblackholing/internal/topology"
)

func glassWorld(t *testing.T) (*topology.Topology, *Deployment) {
	t.Helper()
	topo, err := topology.Generate(topology.DefaultConfig().Scaled(0.1))
	if err != nil {
		t.Fatal(err)
	}
	return topo, Deploy(topo)
}

func TestDeployCoversAllProviders(t *testing.T) {
	topo, d := glassWorld(t)
	for _, as := range topo.BlackholingProviders() {
		if d.Glass(as.ASN) == nil {
			t.Fatalf("provider AS%d has no looking glass", as.ASN)
		}
	}
	if len(d.Glasses()) == 0 {
		t.Fatal("no glasses deployed")
	}
}

func TestHiddenBlackholingVisibleViaGlass(t *testing.T) {
	// The Cogent case (§5.2): a provider blackholes a prefix via a web
	// portal; no BGP collector sees anything, but the looking glass
	// inside the provider shows the null route.
	topo, d := glassWorld(t)
	provider := topo.BlackholingProviders()[0]
	victim := netip.MustParsePrefix("198.41.0.4/32")
	comms := provider.Blackholing.Communities[:1]

	g := d.Glass(provider.ASN)
	if entries := g.QueryPrefix(victim); len(entries) != 0 && entries[0].Blackholed {
		t.Fatal("blackhole visible before it exists")
	}
	d.RecordBlackhole(provider.ASN, victim, comms)
	entries := g.QueryPrefix(victim)
	if len(entries) == 0 || !entries[0].Blackholed {
		t.Fatalf("glass misses the null route: %+v", entries)
	}
	if entries[0].Communities[0] != comms[0] {
		t.Fatal("community lost")
	}
	d.ClearBlackhole(provider.ASN, victim)
	entries = g.QueryPrefix(victim)
	for _, e := range entries {
		if e.Blackholed {
			t.Fatal("null route survived clearing")
		}
	}
}

func TestQueryPrefixIncludesCoveringAggregate(t *testing.T) {
	topo, d := glassWorld(t)
	// Pick any glass and any other AS's prefix.
	g := d.Glasses()[0]
	var target netip.Prefix
	for _, asn := range topo.Order {
		if asn != g.AS && len(topo.AS(asn).Prefixes) > 0 && topo.AS(asn).Prefixes[0].Addr().Is4() {
			target = topo.AS(asn).Prefixes[0]
			break
		}
	}
	host := netip.PrefixFrom(target.Addr().Next(), 32)
	entries := g.QueryPrefix(host)
	found := false
	for _, e := range entries {
		if e.Prefix == target && !e.Blackholed {
			found = true
			if flat := e.Path.Flatten(); len(flat) == 0 || flat[0] != g.AS {
				t.Fatalf("path should start at the glass AS: %v", e.Path)
			}
		}
	}
	if !found {
		t.Fatalf("covering aggregate %v missing from %v", target, entries)
	}
}

func TestCapabilityGating(t *testing.T) {
	topo, d := glassWorld(t)
	var prefixOnly, community, full *Glass
	for _, g := range d.Glasses() {
		switch g.Capability {
		case CapPrefixOnly:
			prefixOnly = g
		case CapCommunity:
			community = g
		case CapFullTable:
			full = g
		}
	}
	if prefixOnly == nil || community == nil || full == nil {
		t.Skip("capability mix not present at this scale")
	}
	if _, err := prefixOnly.QueryCommunity(bgp.CommunityBlackhole); err == nil {
		t.Fatal("prefix-only glass answered a community query")
	}
	if _, err := community.FullTable(); err == nil {
		t.Fatal("community glass answered a full-table query")
	}
	if _, err := full.FullTable(); err != nil {
		t.Fatalf("full-table glass refused: %v", err)
	}
	_ = topo
}

func TestQueryCommunityAndFullTable(t *testing.T) {
	topo, d := glassWorld(t)
	var g *Glass
	for _, cand := range d.Glasses() {
		if cand.Capability == CapFullTable && topo.AS(cand.AS).Blackholing != nil {
			g = cand
			break
		}
	}
	if g == nil {
		t.Skip("no full-table provider glass")
	}
	comm := topo.AS(g.AS).Blackholing.Communities[0]
	p1 := netip.MustParsePrefix("198.41.0.4/32")
	p2 := netip.MustParsePrefix("198.41.0.5/32")
	d.RecordBlackhole(g.AS, p1, []bgp.Community{comm})
	d.RecordBlackhole(g.AS, p2, []bgp.Community{bgp.CommunityBlackhole})

	byComm, err := g.QueryCommunity(comm)
	if err != nil {
		t.Fatal(err)
	}
	if len(byComm) != 1 || byComm[0].Prefix != p1 {
		t.Fatalf("community query = %+v", byComm)
	}
	all, err := g.FullTable()
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 2 {
		t.Fatalf("full table = %d entries", len(all))
	}
}

func TestRecordResult(t *testing.T) {
	topo, d := glassWorld(t)
	provider := topo.BlackholingProviders()[0]
	victim := netip.MustParsePrefix("198.41.0.9/32")
	res := &collector.Result{
		Prefix:       victim,
		DroppingASes: map[bgp.ASN]bool{provider.ASN: true},
	}
	d.RecordResult(res, provider.Blackholing.Communities[:1])
	entries := d.Glass(provider.ASN).QueryPrefix(victim)
	if len(entries) == 0 || !entries[0].Blackholed {
		t.Fatal("RecordResult did not install the null route")
	}
}

func TestCapabilityStrings(t *testing.T) {
	if CapPrefixOnly.String() != "prefix-only" || CapCommunity.String() != "community" || CapFullTable.String() != "full-table" {
		t.Fatal("capability strings")
	}
}
