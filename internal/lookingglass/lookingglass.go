// Package lookingglass substitutes for the Periscope looking-glass
// platform of §3: it answers "show ip bgp <prefix>"-style queries from
// inside an arbitrary AS, revealing routing state that never reaches any
// route collector. §5.2's Cogent case is the motivating example: a
// provider blackholes prefixes through a customer web portal, invisible
// in all BGP feeds, but visible by querying a looking glass inside that
// provider.
//
// About 30 of the paper's ~150 looking glasses support full-table or
// community queries; the simulated deployment mirrors that split.
package lookingglass

import (
	"fmt"
	"net/netip"
	"sort"

	"bgpblackholing/internal/bgp"
	"bgpblackholing/internal/collector"
	"bgpblackholing/internal/topology"
)

// Capability describes what a looking glass lets researchers query.
type Capability int

// Looking-glass capabilities (§3: of ~150 glasses, 30 support full
// dumps or community queries; the rest only per-prefix queries).
const (
	CapPrefixOnly Capability = iota // "show ip bgp <prefix>"
	CapCommunity                    // filter the table by community
	CapFullTable                    // full table dumps
)

// String names the capability.
func (c Capability) String() string {
	switch c {
	case CapCommunity:
		return "community"
	case CapFullTable:
		return "full-table"
	}
	return "prefix-only"
}

// Entry is one RIB line of a looking-glass response.
type Entry struct {
	Prefix      netip.Prefix
	Path        bgp.Path
	NextHop     netip.Addr
	Communities []bgp.Community
	// Blackholed marks routes pointing at a null interface.
	Blackholed bool
}

// Glass is one looking glass: a query interface into one AS's RIB.
type Glass struct {
	AS         bgp.ASN
	Capability Capability

	topo *topology.Topology
	// blackholed tracks prefixes this AS currently null-routes,
	// including ones triggered out-of-band (web portals) that never
	// appear in BGP.
	blackholed map[netip.Prefix][]bgp.Community
}

// Deployment is the set of available looking glasses.
type Deployment struct {
	topo    *topology.Topology
	glasses map[bgp.ASN]*Glass
}

// Deploy places looking glasses inside every nth AS, mirroring the
// partial coverage of Periscope. Every blackholing provider gets one
// (those are the networks researchers query for validation).
func Deploy(topo *topology.Topology) *Deployment {
	d := &Deployment{topo: topo, glasses: map[bgp.ASN]*Glass{}}
	for i, asn := range topo.Order {
		as := topo.AS(asn)
		if as.Blackholing == nil && i%5 != 0 {
			continue
		}
		cap := CapPrefixOnly
		switch i % 5 {
		case 0:
			cap = CapFullTable
		case 1, 2:
			cap = CapCommunity
		}
		d.glasses[asn] = &Glass{
			AS:         asn,
			Capability: cap,
			topo:       topo,
			blackholed: map[netip.Prefix][]bgp.Community{},
		}
	}
	return d
}

// Glasses returns the deployed glasses sorted by ASN.
func (d *Deployment) Glasses() []*Glass {
	var out []*Glass
	for _, g := range d.glasses {
		out = append(out, g)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].AS < out[j].AS })
	return out
}

// Glass returns the looking glass inside an AS, or nil when the AS
// offers none.
func (d *Deployment) Glass(asn bgp.ASN) *Glass { return d.glasses[asn] }

// RecordBlackhole installs a null route in one AS's RIB, as a BGP
// propagation or an out-of-band portal request (§5.2) would.
func (d *Deployment) RecordBlackhole(asn bgp.ASN, prefix netip.Prefix, comms []bgp.Community) {
	if g := d.glasses[asn]; g != nil {
		g.blackholed[prefix] = append([]bgp.Community(nil), comms...)
	}
}

// RecordResult ingests a propagation result: every dropping AS with a
// glass shows the null route.
func (d *Deployment) RecordResult(res *collector.Result, comms []bgp.Community) {
	var drops []bgp.ASN
	for asn := range res.DroppingASes {
		drops = append(drops, asn)
	}
	topology.SortASNs(drops)
	for _, asn := range drops {
		d.RecordBlackhole(asn, res.Prefix, comms)
	}
}

// ClearBlackhole removes a null route (the blackholing ended).
func (d *Deployment) ClearBlackhole(asn bgp.ASN, prefix netip.Prefix) {
	if g := d.glasses[asn]; g != nil {
		delete(g.blackholed, prefix)
	}
}

// errCapability is returned when a query exceeds the glass's capability.
type errCapability struct {
	have, want Capability
}

func (e errCapability) Error() string {
	return fmt.Sprintf("lookingglass: query requires %s capability, glass offers %s", e.want, e.have)
}

// QueryPrefix answers "show ip bgp <prefix>": the AS's best route toward
// the covering aggregate, plus any null route for the exact prefix. A
// nil slice means the prefix is unknown.
func (g *Glass) QueryPrefix(p netip.Prefix) []Entry {
	var out []Entry
	if comms, ok := g.blackholed[p]; ok {
		out = append(out, Entry{
			Prefix:      p,
			Path:        bgp.NewPath(g.AS),
			NextHop:     nullNextHop(g.topo.AS(g.AS)),
			Communities: comms,
			Blackholed:  true,
		})
	}
	origin := g.topo.OriginOf(p)
	if origin == 0 {
		return out
	}
	asPath := g.topo.PathBetween(g.AS, origin)
	if asPath == nil {
		return out
	}
	// The covering aggregate route.
	var agg netip.Prefix
	for _, pf := range g.topo.AS(origin).Prefixes {
		if pf.Addr().Is4() == p.Addr().Is4() && pf.Contains(p.Addr()) {
			agg = pf
			break
		}
	}
	if agg.IsValid() {
		out = append(out, Entry{
			Prefix:  agg,
			Path:    bgp.NewPath(asPath...),
			NextHop: nullNextHop(nil),
		})
	}
	return out
}

// QueryCommunity lists the glass AS's routes carrying the community;
// requires CapCommunity or better.
func (g *Glass) QueryCommunity(c bgp.Community) ([]Entry, error) {
	if g.Capability < CapCommunity {
		return nil, errCapability{g.Capability, CapCommunity}
	}
	var out []Entry
	var prefixes []netip.Prefix
	for p := range g.blackholed {
		prefixes = append(prefixes, p)
	}
	sort.Slice(prefixes, func(i, j int) bool { return prefixes[i].String() < prefixes[j].String() })
	for _, p := range prefixes {
		for _, pc := range g.blackholed[p] {
			if pc == c {
				out = append(out, Entry{
					Prefix:      p,
					Path:        bgp.NewPath(g.AS),
					NextHop:     nullNextHop(g.topo.AS(g.AS)),
					Communities: g.blackholed[p],
					Blackholed:  true,
				})
				break
			}
		}
	}
	return out, nil
}

// FullTable dumps every blackholed route; requires CapFullTable.
func (g *Glass) FullTable() ([]Entry, error) {
	if g.Capability < CapFullTable {
		return nil, errCapability{g.Capability, CapFullTable}
	}
	var prefixes []netip.Prefix
	for p := range g.blackholed {
		prefixes = append(prefixes, p)
	}
	sort.Slice(prefixes, func(i, j int) bool { return prefixes[i].String() < prefixes[j].String() })
	out := make([]Entry, 0, len(prefixes))
	for _, p := range prefixes {
		out = append(out, Entry{
			Prefix:      p,
			Path:        bgp.NewPath(g.AS),
			NextHop:     nullNextHop(g.topo.AS(g.AS)),
			Communities: g.blackholed[p],
			Blackholed:  true,
		})
	}
	return out, nil
}

func nullNextHop(as *topology.AS) netip.Addr {
	if as == nil || len(as.Prefixes) == 0 {
		return netip.AddrFrom4([4]byte{192, 0, 2, 1}) // conventional null
	}
	b := as.Prefixes[0].Addr().As4()
	return netip.AddrFrom4([4]byte{b[0], b[1], 255, 1})
}
