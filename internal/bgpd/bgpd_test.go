package bgpd

import (
	"errors"
	"io"
	"net"
	"net/netip"
	"sync"
	"testing"
	"time"

	"bgpblackholing/internal/bgp"
)

// pipePair establishes two sessions over an in-memory connection.
func pipePair(t *testing.T, a, b Config) (*Session, *Session) {
	t.Helper()
	ca, cb := net.Pipe()
	var sa, sb *Session
	var ea, eb error
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); sa, ea = Establish(ca, a) }()
	go func() { defer wg.Done(); sb, eb = Establish(cb, b) }()
	wg.Wait()
	if ea != nil || eb != nil {
		t.Fatalf("handshake: %v / %v", ea, eb)
	}
	return sa, sb
}

func cfg(asn bgp.ASN, id string) Config {
	return Config{ASN: asn, BGPID: netip.MustParseAddr(id), HoldTime: 90 * time.Second}
}

func TestHandshakeExchangesIdentities(t *testing.T) {
	sa, sb := pipePair(t, cfg(64900, "10.0.0.1"), cfg(196615, "10.0.0.2"))
	defer sa.Close()
	defer sb.Close()
	if sa.Peer().ASN != 196615 {
		t.Fatalf("a sees peer AS %v, want 196615 (4-octet via capability)", sa.Peer().ASN)
	}
	if sb.Peer().ASN != 64900 {
		t.Fatalf("b sees peer AS %v", sb.Peer().ASN)
	}
	if sa.Peer().BGPID != netip.MustParseAddr("10.0.0.2") {
		t.Fatalf("peer BGP ID = %v", sa.Peer().BGPID)
	}
	if sa.HoldTime() != 90*time.Second {
		t.Fatalf("hold = %v", sa.HoldTime())
	}
}

func TestUpdateExchange(t *testing.T) {
	sa, sb := pipePair(t, cfg(64900, "10.0.0.1"), cfg(3356, "10.0.0.2"))
	defer sa.Close()
	defer sb.Close()

	want := &bgp.Update{
		Announced:   []netip.Prefix{netip.MustParsePrefix("31.0.0.1/32")},
		Origin:      bgp.OriginIGP,
		Path:        bgp.NewPath(3356, 65001),
		NextHop:     netip.MustParseAddr("10.0.0.2"),
		Communities: []bgp.Community{bgp.MakeCommunity(3356, 9999), bgp.CommunityNoExport},
	}
	done := make(chan error, 1)
	var got *bgp.Update
	go func() {
		var err error
		got, err = sa.ReadUpdate()
		done <- err
	}()
	if err := sb.SendUpdate(want); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if got.Announced[0] != want.Announced[0] || !got.Path.Equal(want.Path) {
		t.Fatalf("update mismatch: %+v", got)
	}
	if !got.HasCommunity(bgp.MakeCommunity(3356, 9999)) || !got.HasNoExport() {
		t.Fatal("communities lost in transit")
	}
	if got.Time.IsZero() {
		t.Fatal("arrival time not stamped")
	}
}

func TestKeepalivesAreTransparent(t *testing.T) {
	sa, sb := pipePair(t, cfg(1, "10.0.0.1"), cfg(2, "10.0.0.2"))
	defer sa.Close()
	defer sb.Close()
	done := make(chan error, 1)
	go func() {
		_, err := sa.ReadUpdate()
		done <- err
	}()
	for i := 0; i < 3; i++ {
		if err := sb.SendKeepalive(); err != nil {
			t.Fatal(err)
		}
	}
	if err := sb.SendUpdate(&bgp.Update{
		Withdrawn: []netip.Prefix{netip.MustParsePrefix("31.0.0.1/32")},
	}); err != nil {
		t.Fatal(err)
	}
	if err := <-done; err != nil {
		t.Fatalf("reader failed through keepalives: %v", err)
	}
}

func TestCloseSendsCease(t *testing.T) {
	sa, sb := pipePair(t, cfg(1, "10.0.0.1"), cfg(2, "10.0.0.2"))
	done := make(chan error, 1)
	go func() {
		_, err := sa.ReadUpdate()
		done <- err
	}()
	if err := sb.Close(); err != nil {
		t.Fatal(err)
	}
	err := <-done
	if !errors.Is(err, ErrNotification) {
		t.Fatalf("err = %v, want Cease notification", err)
	}
	// Double close is a no-op; further sends fail.
	if err := sb.Close(); err != nil {
		t.Fatal("double close errored")
	}
	if err := sb.SendKeepalive(); !errors.Is(err, ErrClosed) {
		t.Fatalf("send after close = %v", err)
	}
	sa.Close()
}

func TestHoldTimerExpires(t *testing.T) {
	ca, cb := net.Pipe()
	short := Config{ASN: 1, BGPID: netip.MustParseAddr("10.0.0.1"), HoldTime: 50 * time.Millisecond}
	var sa, sb *Session
	var wg sync.WaitGroup
	wg.Add(2)
	go func() { defer wg.Done(); sa, _ = Establish(ca, short) }()
	go func() { defer wg.Done(); sb, _ = Establish(cb, short) }()
	wg.Wait()
	if sa == nil || sb == nil {
		t.Fatal("handshake failed")
	}
	defer sa.Close()
	defer sb.Close()
	// Nobody talks: the reader must fail with ErrHoldExpired.
	_, err := sa.ReadUpdate()
	if !errors.Is(err, ErrHoldExpired) {
		t.Fatalf("err = %v, want ErrHoldExpired", err)
	}
}

func TestOverTCP(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()

	type result struct {
		u   *bgp.Update
		err error
	}
	collected := make(chan result, 1)
	go func() {
		conn, err := ln.Accept()
		if err != nil {
			collected <- result{nil, err}
			return
		}
		s, err := Establish(conn, cfg(64900, "10.255.0.1")) // collector side
		if err != nil {
			collected <- result{nil, err}
			return
		}
		defer s.Close()
		u, err := s.ReadUpdate()
		collected <- result{u, err}
	}()

	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	router, err := Establish(conn, cfg(65001, "10.0.0.9")) // announcing router
	if err != nil {
		t.Fatal(err)
	}
	defer router.Close()
	if err := router.SendUpdate(&bgp.Update{
		Announced:   []netip.Prefix{netip.MustParsePrefix("31.0.0.1/32")},
		Origin:      bgp.OriginIGP,
		Path:        bgp.NewPath(65001),
		NextHop:     netip.MustParseAddr("10.0.0.9"),
		Communities: []bgp.Community{bgp.CommunityBlackhole},
	}); err != nil {
		t.Fatal(err)
	}
	res := <-collected
	if res.err != nil {
		t.Fatal(res.err)
	}
	if !res.u.HasCommunity(bgp.CommunityBlackhole) {
		t.Fatal("blackhole community lost over TCP")
	}
}

func TestParseOpenErrors(t *testing.T) {
	if _, err := parseOpen([]byte{3, 0, 1, 0, 90}); !errors.Is(err, ErrBadOpen) && !errors.Is(err, ErrBadVersion) {
		t.Fatalf("short/bad open: %v", err)
	}
	if _, err := parseOpen(append([]byte{3}, make([]byte, 9)...)); !errors.Is(err, ErrBadVersion) {
		t.Fatalf("version: %v", err)
	}
	// Truncated optional parameters.
	body := marshalOpen(cfg(1, "10.0.0.1"))
	if _, err := parseOpen(body[:len(body)-3]); err == nil {
		t.Fatal("truncated params accepted")
	}
}

func TestReadMessageRejectsBadFraming(t *testing.T) {
	// Bad marker.
	r, w := io.Pipe()
	go func() {
		bad := make([]byte, 19)
		w.Write(bad)
		w.Close()
	}()
	if _, _, err := readMessage(r); err == nil {
		t.Fatal("bad marker accepted")
	}
}
