package bgpd

import (
	"errors"
	"net"
	"net/netip"
	"sync"
	"testing"
	"time"

	"bgpblackholing/internal/bgp"
)

func TestNotifyTerminatesPeer(t *testing.T) {
	sa, sb := pipePair(t, cfg(1, "10.0.0.1"), cfg(2, "10.0.0.2"))
	defer sa.Close()
	done := make(chan error, 1)
	go func() {
		_, err := sa.ReadUpdate()
		done <- err
	}()
	if err := sb.Notify(6, 4); err != nil { // Cease / admin reset
		t.Fatal(err)
	}
	if err := <-done; !errors.Is(err, ErrNotification) {
		t.Fatalf("err = %v", err)
	}
	// Notify marked the session closed.
	if err := sb.Notify(6, 4); !errors.Is(err, ErrClosed) {
		t.Fatalf("second notify = %v", err)
	}
}

func TestKeepaliveLoopStopsOnClose(t *testing.T) {
	sa, sb := pipePair(t, cfg(1, "10.0.0.1"), cfg(2, "10.0.0.2"))
	defer sa.Close()
	loopDone := make(chan error, 1)
	go func() { loopDone <- sb.KeepaliveLoop(5 * time.Millisecond) }()
	// Reader consumes the keepalives until the update arrives.
	readDone := make(chan error, 1)
	go func() {
		_, err := sa.ReadUpdate()
		readDone <- err
	}()
	time.Sleep(30 * time.Millisecond)
	if err := sb.SendUpdate(&bgp.Update{
		Withdrawn: []netip.Prefix{netip.MustParsePrefix("31.0.0.1/32")},
	}); err != nil {
		t.Fatal(err)
	}
	if err := <-readDone; err != nil {
		t.Fatalf("reader: %v", err)
	}
	sb.Close()
	select {
	case err := <-loopDone:
		if !errors.Is(err, ErrClosed) {
			t.Fatalf("loop err = %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("keepalive loop did not stop")
	}
}

func TestEstablishRejectsGarbagePeer(t *testing.T) {
	ca, cb := net.Pipe()
	defer cb.Close()
	var wg sync.WaitGroup
	wg.Add(1)
	var err error
	go func() {
		defer wg.Done()
		_, err = Establish(ca, cfg(1, "10.0.0.1"))
	}()
	// The "peer" writes garbage instead of a BGP message.
	go func() {
		buf := make([]byte, 64)
		cb.Read(buf) // consume the OPEN so the writer can proceed
		cb.Write(make([]byte, 19))
	}()
	wg.Wait()
	if err == nil {
		t.Fatal("handshake succeeded against garbage")
	}
}

func TestEstablishRejectsNonOpenFirstMessage(t *testing.T) {
	ca, cb := net.Pipe()
	defer cb.Close()
	var wg sync.WaitGroup
	wg.Add(1)
	var err error
	go func() {
		defer wg.Done()
		_, err = Establish(ca, cfg(1, "10.0.0.1"))
	}()
	go func() {
		buf := make([]byte, 128)
		cb.Read(buf)
		writeMessage(cb, typeKeepalive, nil) // keepalive before OPEN
	}()
	wg.Wait()
	if err == nil {
		t.Fatal("handshake accepted KEEPALIVE as first message")
	}
}

func TestSendUpdateAfterClose(t *testing.T) {
	sa, sb := pipePair(t, cfg(1, "10.0.0.1"), cfg(2, "10.0.0.2"))
	sa.Close()
	sb.Close()
	err := sa.SendUpdate(&bgp.Update{Withdrawn: []netip.Prefix{netip.MustParsePrefix("31.0.0.1/32")}})
	if !errors.Is(err, ErrClosed) {
		t.Fatalf("err = %v", err)
	}
}

func TestPeerAccessors(t *testing.T) {
	sa, sb := pipePair(t, cfg(64900, "10.0.0.1"), cfg(2, "10.0.0.2"))
	defer sa.Close()
	defer sb.Close()
	if sa.Peer().HoldTime != 90*time.Second {
		t.Fatalf("peer hold = %v", sa.Peer().HoldTime)
	}
}
