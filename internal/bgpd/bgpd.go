// Package bgpd implements a minimal BGP-4 speaker (RFC 4271) over real
// network connections: OPEN with the 4-octet-AS capability (RFC 6793),
// KEEPALIVE, NOTIFICATION and UPDATE exchange with hold-time
// supervision. It is the transport by which simulated route collectors
// can ingest feeds the way RIPE RIS and Route Views do — over live BGP
// sessions — rather than from files.
//
// The implementation covers the session subset a collector needs:
// handshake, keepalives, update exchange and orderly teardown. Policy
// (what to announce) lives in the caller.
package bgpd

import (
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"net"
	"net/netip"
	"sync"
	"time"

	"bgpblackholing/internal/bgp"
)

// Message type codes (RFC 4271 §4.1).
const (
	typeOpen         = 1
	typeUpdate       = 2
	typeNotification = 3
	typeKeepalive    = 4
)

// Errors.
var (
	ErrBadVersion   = errors.New("bgpd: unsupported BGP version")
	ErrBadOpen      = errors.New("bgpd: malformed OPEN")
	ErrNotification = errors.New("bgpd: peer sent NOTIFICATION")
	ErrHoldExpired  = errors.New("bgpd: hold timer expired")
	ErrClosed       = errors.New("bgpd: session closed")
)

// Config describes the local side of a session.
type Config struct {
	// ASN is the local AS number (4-octet capable).
	ASN bgp.ASN
	// BGPID is the local BGP identifier.
	BGPID netip.Addr
	// HoldTime is the proposed hold time (0 disables keepalive
	// supervision; RFC minimum otherwise is 3s).
	HoldTime time.Duration
}

// Peer describes the remote side learned from its OPEN.
type Peer struct {
	ASN      bgp.ASN
	BGPID    netip.Addr
	HoldTime time.Duration
}

// Session is one established BGP session.
type Session struct {
	conn net.Conn
	cfg  Config
	peer Peer

	mu     sync.Mutex
	closed bool

	// negotiated hold time (min of both sides).
	hold time.Duration
}

// marshalOpen builds the OPEN message body.
func marshalOpen(cfg Config) []byte {
	body := make([]byte, 0, 29)
	body = append(body, 4) // version
	// My Autonomous System: AS_TRANS when the real ASN needs 4 octets.
	as16 := uint16(23456)
	if cfg.ASN.Is16Bit() {
		as16 = uint16(cfg.ASN)
	}
	body = binary.BigEndian.AppendUint16(body, as16)
	body = binary.BigEndian.AppendUint16(body, uint16(cfg.HoldTime.Seconds()))
	id := cfg.BGPID.As4()
	body = append(body, id[:]...)
	// Optional parameters: capability (param 2) for 4-octet AS (code 65).
	cap4 := []byte{65, 4, 0, 0, 0, 0}
	binary.BigEndian.PutUint32(cap4[2:], uint32(cfg.ASN))
	param := append([]byte{2, byte(len(cap4))}, cap4...)
	body = append(body, byte(len(param)))
	body = append(body, param...)
	return body
}

// parseOpen decodes an OPEN body into a Peer.
func parseOpen(body []byte) (Peer, error) {
	if len(body) < 10 {
		return Peer{}, ErrBadOpen
	}
	if body[0] != 4 {
		return Peer{}, fmt.Errorf("%w: %d", ErrBadVersion, body[0])
	}
	p := Peer{
		ASN:      bgp.ASN(binary.BigEndian.Uint16(body[1:3])),
		HoldTime: time.Duration(binary.BigEndian.Uint16(body[3:5])) * time.Second,
		BGPID:    netip.AddrFrom4([4]byte(body[5:9])),
	}
	optLen := int(body[9])
	opts := body[10:]
	if len(opts) < optLen {
		return Peer{}, ErrBadOpen
	}
	opts = opts[:optLen]
	for len(opts) >= 2 {
		ptype, plen := opts[0], int(opts[1])
		if len(opts) < 2+plen {
			return Peer{}, ErrBadOpen
		}
		val := opts[2 : 2+plen]
		opts = opts[2+plen:]
		if ptype != 2 {
			continue // non-capability parameter
		}
		for len(val) >= 2 {
			code, clen := val[0], int(val[1])
			if len(val) < 2+clen {
				return Peer{}, ErrBadOpen
			}
			if code == 65 && clen == 4 {
				p.ASN = bgp.ASN(binary.BigEndian.Uint32(val[2:6]))
			}
			val = val[2+clen:]
		}
	}
	return p, nil
}

// writeMessage frames and sends one BGP message.
func writeMessage(w io.Writer, msgType byte, body []byte) error {
	msg := make([]byte, 0, bgp.HeaderLen+len(body))
	for i := 0; i < 16; i++ {
		msg = append(msg, 0xFF)
	}
	msg = binary.BigEndian.AppendUint16(msg, uint16(bgp.HeaderLen+len(body)))
	msg = append(msg, msgType)
	msg = append(msg, body...)
	_, err := w.Write(msg)
	return err
}

// readMessage reads one framed message.
func readMessage(r io.Reader) (byte, []byte, error) {
	var hdr [bgp.HeaderLen]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, err
	}
	for i := 0; i < 16; i++ {
		if hdr[i] != 0xFF {
			return 0, nil, bgp.ErrBadMarker
		}
	}
	total := int(binary.BigEndian.Uint16(hdr[16:18]))
	if total < bgp.HeaderLen || total > bgp.MaxMessageLen {
		return 0, nil, bgp.ErrBadLength
	}
	body := make([]byte, total-bgp.HeaderLen)
	if _, err := io.ReadFull(r, body); err != nil {
		return 0, nil, err
	}
	return hdr[18], body, nil
}

// Establish performs the OPEN/KEEPALIVE handshake on conn. Both sides
// call Establish; the handshake is symmetric. Sends run concurrently
// with receives so the handshake also works over fully synchronous
// transports (net.Pipe).
func Establish(conn net.Conn, cfg Config) (*Session, error) {
	sendErr := make(chan error, 1)
	go func() {
		if err := writeMessage(conn, typeOpen, marshalOpen(cfg)); err != nil {
			sendErr <- err
			return
		}
		sendErr <- nil
	}()
	msgType, body, err := readMessage(conn)
	if err != nil {
		return nil, err
	}
	if err := <-sendErr; err != nil {
		return nil, err
	}
	if msgType == typeNotification {
		return nil, notificationError(body)
	}
	if msgType != typeOpen {
		return nil, fmt.Errorf("bgpd: expected OPEN, got type %d", msgType)
	}
	peer, err := parseOpen(body)
	if err != nil {
		// RFC behaviour: notify and fail.
		_ = writeMessage(conn, typeNotification, []byte{2, 0}) // OPEN error
		return nil, err
	}
	go func() { sendErr <- writeMessage(conn, typeKeepalive, nil) }()
	// Await the peer's keepalive confirming establishment.
	msgType, body, err = readMessage(conn)
	if err != nil {
		return nil, err
	}
	if err := <-sendErr; err != nil {
		return nil, err
	}
	if msgType == typeNotification {
		return nil, notificationError(body)
	}
	if msgType != typeKeepalive {
		return nil, fmt.Errorf("bgpd: expected KEEPALIVE, got type %d", msgType)
	}
	s := &Session{conn: conn, cfg: cfg, peer: peer}
	s.hold = cfg.HoldTime
	if peer.HoldTime > 0 && (s.hold == 0 || peer.HoldTime < s.hold) {
		s.hold = peer.HoldTime
	}
	return s, nil
}

func notificationError(body []byte) error {
	if len(body) >= 2 {
		return fmt.Errorf("%w: code %d subcode %d", ErrNotification, body[0], body[1])
	}
	return ErrNotification
}

// Peer returns the remote side's identity.
func (s *Session) Peer() Peer { return s.peer }

// HoldTime returns the negotiated hold time.
func (s *Session) HoldTime() time.Duration { return s.hold }

// SendUpdate transmits one UPDATE.
func (s *Session) SendUpdate(u *bgp.Update) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	wire, err := bgp.MarshalUpdate(u)
	if err != nil {
		return err
	}
	// MarshalUpdate emits a complete framed message already.
	_, err = s.conn.Write(wire)
	return err
}

// SendKeepalive transmits a KEEPALIVE.
func (s *Session) SendKeepalive() error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	return writeMessage(s.conn, typeKeepalive, nil)
}

// ReadUpdate blocks until the next UPDATE arrives, transparently
// consuming keepalives. It honours the negotiated hold time: silence
// longer than the hold time fails with ErrHoldExpired. io.EOF reports
// an orderly remote close.
func (s *Session) ReadUpdate() (*bgp.Update, error) {
	for {
		if s.hold > 0 {
			_ = s.conn.SetReadDeadline(time.Now().Add(s.hold))
		}
		msgType, body, err := readMessage(s.conn)
		if err != nil {
			var nerr net.Error
			if errors.As(err, &nerr) && nerr.Timeout() {
				return nil, ErrHoldExpired
			}
			return nil, err
		}
		switch msgType {
		case typeKeepalive:
			continue
		case typeNotification:
			return nil, notificationError(body)
		case typeUpdate:
			// Re-frame for the bgp decoder (it expects the full message).
			msg := make([]byte, 0, bgp.HeaderLen+len(body))
			for i := 0; i < 16; i++ {
				msg = append(msg, 0xFF)
			}
			msg = binary.BigEndian.AppendUint16(msg, uint16(bgp.HeaderLen+len(body)))
			msg = append(msg, typeUpdate)
			msg = append(msg, body...)
			u, err := bgp.UnmarshalUpdate(msg)
			if err != nil {
				return nil, err
			}
			u.Time = time.Now().UTC()
			return u, nil
		default:
			return nil, fmt.Errorf("bgpd: unexpected message type %d", msgType)
		}
	}
}

// Notify sends a NOTIFICATION (code/subcode) and closes the session.
// The notification write is best-effort and bounded: a peer that has
// stopped reading must not block the teardown.
func (s *Session) Notify(code, subcode byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	s.closed = true
	_ = s.conn.SetWriteDeadline(time.Now().Add(200 * time.Millisecond))
	_ = writeMessage(s.conn, typeNotification, []byte{code, subcode})
	return s.conn.Close()
}

// Close ends the session with the RFC "Cease" notification
// (best-effort, bounded like Notify).
func (s *Session) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	s.mu.Unlock()
	_ = s.conn.SetWriteDeadline(time.Now().Add(200 * time.Millisecond))
	_ = writeMessage(s.conn, typeNotification, []byte{6, 0}) // Cease
	return s.conn.Close()
}

// KeepaliveLoop sends keepalives every interval until the session
// closes; run it in a goroutine on long-lived sessions. It returns the
// first send error (ErrClosed on orderly shutdown).
func (s *Session) KeepaliveLoop(interval time.Duration) error {
	t := time.NewTicker(interval)
	defer t.Stop()
	for range t.C {
		if err := s.SendKeepalive(); err != nil {
			return err
		}
	}
	return nil
}
