// Package finegrained implements the extension §11 points to (refs
// [14, 24]: SDN-enabled advanced blackholing at IXPs): blackholing
// scoped by transport port, so a volumetric attack on one service can be
// dropped while legitimate traffic to the same address survives — the
// paper's main criticism of classic RTBH ("blackholing also discards
// legitimate traffic") answered.
//
// The control plane encodes the port scope in an extended community
// (experimental type 0x80); an SDN-capable IXP fabric then drops only
// matching flows. The data-plane simulation quantifies what classic
// blackholing destroys and fine-grained blackholing preserves.
package finegrained

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
	"net/netip"
	"time"

	"bgpblackholing/internal/bgp"
	"bgpblackholing/internal/topology"
)

// Extended-community layout: experimental type 0x80, subtype 0x66
// ("fine-grained blackhole"), two octets of destination port, one octet
// of protocol (6 = TCP, 17 = UDP), three reserved octets.
const (
	extType    = 0x80
	extSubtype = 0x66
)

// Scope is the traffic slice a fine-grained request drops.
type Scope struct {
	// Port is the attacked destination port.
	Port uint16
	// Protocol is the IP protocol (6 TCP, 17 UDP; 0 = any).
	Protocol uint8
}

// Encode packs the scope into an extended community.
func (s Scope) Encode() bgp.ExtendedCommunity {
	var ec bgp.ExtendedCommunity
	ec[0] = extType
	ec[1] = extSubtype
	binary.BigEndian.PutUint16(ec[2:4], s.Port)
	ec[4] = s.Protocol
	return ec
}

// Decode extracts a scope from an extended community; ok is false when
// the community is not a fine-grained blackhole scope.
func Decode(ec bgp.ExtendedCommunity) (Scope, bool) {
	if ec.Type() != extType || ec.SubType() != extSubtype {
		return Scope{}, false
	}
	return Scope{
		Port:     binary.BigEndian.Uint16(ec[2:4]),
		Protocol: ec[4],
	}, true
}

// ScopeFromUpdate finds the first fine-grained scope on an update.
func ScopeFromUpdate(u *bgp.Update) (Scope, bool) {
	for _, ec := range u.ExtendedCommunities {
		if s, ok := Decode(ec); ok {
			return s, true
		}
	}
	return Scope{}, false
}

// TrafficSplit is one time bucket of victim traffic under a mitigation
// policy.
type TrafficSplit struct {
	Time time.Time
	// AttackDropped is attack-port traffic removed by the mitigation.
	AttackDropped int64
	// LegitimateDropped is collateral damage: non-attack traffic
	// removed anyway.
	LegitimateDropped int64
	// LegitimateDelivered survived.
	LegitimateDelivered int64
	// AttackLeaked is attack traffic that still got through.
	AttackLeaked int64
}

// Policy selects the mitigation under simulation.
type Policy int

// Mitigation policies.
const (
	// PolicyNone delivers everything.
	PolicyNone Policy = iota
	// PolicyClassicRTBH drops all traffic to the victim at honouring
	// members (classic §2 blackholing).
	PolicyClassicRTBH
	// PolicyFineGrained drops only the scoped attack port at
	// SDN-capable honouring members.
	PolicyFineGrained
)

// String names the policy.
func (p Policy) String() string {
	switch p {
	case PolicyClassicRTBH:
		return "classic RTBH"
	case PolicyFineGrained:
		return "fine-grained"
	}
	return "none"
}

// SimConfig parameterises the fabric simulation.
type SimConfig struct {
	Seed int64
	// AttackMbps is the mean attack volume toward the scoped port.
	AttackMbps float64
	// LegitimateMbps is the mean legitimate volume (other ports).
	LegitimateMbps float64
	// BucketLen aggregates the series.
	BucketLen time.Duration
	// FracSDNCapable is the fraction of honouring members whose
	// hardware can match ports (the rest fall back to classic drops
	// under PolicyFineGrained).
	FracSDNCapable float64
}

// DefaultSimConfig models a large volumetric attack on one service.
func DefaultSimConfig() SimConfig {
	return SimConfig{
		Seed:           42,
		AttackMbps:     400,
		LegitimateMbps: 30,
		BucketLen:      time.Hour,
		FracSDNCapable: 0.7,
	}
}

// Simulate runs one week of victim traffic through an IXP under the
// policy. honoring lists members applying the mitigation.
func Simulate(x *topology.IXP, victim netip.Prefix, scope Scope, honoring map[bgp.ASN]bool, policy Policy, start time.Time, dur time.Duration, cfg SimConfig) []TrafficSplit {
	r := rand.New(rand.NewSource(cfg.Seed))
	n := int(dur / cfg.BucketLen)
	out := make([]TrafficSplit, n)
	sdn := map[bgp.ASN]bool{}
	for _, m := range x.Members {
		sdn[m] = r.Float64() < cfg.FracSDNCapable
	}
	for b := 0; b < n; b++ {
		t := start.Add(time.Duration(b) * cfg.BucketLen)
		hour := float64(t.Hour())
		diurnal := 0.6 + 0.4*math.Sin((hour-6)/24*2*math.Pi)
		noise := 0.85 + 0.3*r.Float64()
		secs := cfg.BucketLen.Seconds()
		attack := cfg.AttackMbps * 1e6 / 8 * secs * noise
		legit := cfg.LegitimateMbps * 1e6 / 8 * secs * diurnal * noise

		var split TrafficSplit
		split.Time = t
		for _, m := range x.Members {
			shareA := attack / float64(len(x.Members))
			shareL := legit / float64(len(x.Members))
			switch {
			case policy == PolicyNone || !honoring[m]:
				split.AttackLeaked += int64(shareA)
				split.LegitimateDelivered += int64(shareL)
			case policy == PolicyClassicRTBH:
				split.AttackDropped += int64(shareA)
				split.LegitimateDropped += int64(shareL)
			case policy == PolicyFineGrained && sdn[m]:
				split.AttackDropped += int64(shareA)
				split.LegitimateDelivered += int64(shareL)
			default: // fine-grained requested, hardware can't: classic
				split.AttackDropped += int64(shareA)
				split.LegitimateDropped += int64(shareL)
			}
		}
		out[b] = split
	}
	return out
}

// Summary aggregates a series.
type Summary struct {
	Policy            Policy
	AttackDropFrac    float64
	LegitSurvivalFrac float64
	TotalAttack       int64
	TotalLegit        int64
}

// Summarize reduces a series under its policy.
func Summarize(policy Policy, series []TrafficSplit) Summary {
	var s Summary
	s.Policy = policy
	var aDrop, aLeak, lDrop, lOK int64
	for _, p := range series {
		aDrop += p.AttackDropped
		aLeak += p.AttackLeaked
		lDrop += p.LegitimateDropped
		lOK += p.LegitimateDelivered
	}
	s.TotalAttack = aDrop + aLeak
	s.TotalLegit = lDrop + lOK
	if s.TotalAttack > 0 {
		s.AttackDropFrac = float64(aDrop) / float64(s.TotalAttack)
	}
	if s.TotalLegit > 0 {
		s.LegitSurvivalFrac = float64(lOK) / float64(s.TotalLegit)
	}
	return s
}

// Format renders the summary.
func (s Summary) Format() string {
	return fmt.Sprintf("%-13s attack dropped %.0f%%, legitimate traffic surviving %.0f%%",
		s.Policy, 100*s.AttackDropFrac, 100*s.LegitSurvivalFrac)
}
