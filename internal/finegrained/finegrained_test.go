package finegrained

import (
	"net/netip"
	"testing"
	"time"

	"bgpblackholing/internal/bgp"
	"bgpblackholing/internal/topology"
)

func TestScopeEncodeDecode(t *testing.T) {
	s := Scope{Port: 443, Protocol: 6}
	ec := s.Encode()
	got, ok := Decode(ec)
	if !ok || got != s {
		t.Fatalf("round trip: %+v, ok=%v", got, ok)
	}
	// Foreign extended communities are not scopes.
	if _, ok := Decode(bgp.ExtendedCommunity{0x00, 0x02, 0, 0, 0, 0, 0, 1}); ok {
		t.Fatal("decoded a non-scope community")
	}
}

func TestScopeFromUpdate(t *testing.T) {
	s := Scope{Port: 80, Protocol: 6}
	u := &bgp.Update{
		Announced:           []netip.Prefix{netip.MustParsePrefix("31.0.0.1/32")},
		ExtendedCommunities: []bgp.ExtendedCommunity{{0x00, 0x02, 0, 0, 0, 0, 0, 1}, s.Encode()},
	}
	got, ok := ScopeFromUpdate(u)
	if !ok || got != s {
		t.Fatalf("got %+v ok=%v", got, ok)
	}
	if _, ok := ScopeFromUpdate(&bgp.Update{}); ok {
		t.Fatal("scope found on bare update")
	}
}

func TestScopeSurvivesWireFormat(t *testing.T) {
	s := Scope{Port: 123, Protocol: 17}
	u := &bgp.Update{
		Announced:           []netip.Prefix{netip.MustParsePrefix("31.0.0.1/32")},
		Origin:              bgp.OriginIGP,
		Path:                bgp.NewPath(100, 200),
		NextHop:             netip.MustParseAddr("10.0.0.1"),
		ExtendedCommunities: []bgp.ExtendedCommunity{s.Encode()},
	}
	wire, err := bgp.MarshalUpdate(u)
	if err != nil {
		t.Fatal(err)
	}
	got, err := bgp.UnmarshalUpdate(wire)
	if err != nil {
		t.Fatal(err)
	}
	dec, ok := ScopeFromUpdate(got)
	if !ok || dec != s {
		t.Fatalf("scope lost on the wire: %+v ok=%v", dec, ok)
	}
}

func simWorld(t *testing.T) (*topology.IXP, map[bgp.ASN]bool) {
	t.Helper()
	topo, err := topology.Generate(topology.DefaultConfig().Scaled(0.15))
	if err != nil {
		t.Fatal(err)
	}
	x := topo.IXPs[0]
	honoring := map[bgp.ASN]bool{}
	for i, m := range x.Members {
		if i%5 != 0 {
			honoring[m] = true
		}
	}
	return x, honoring
}

func TestPoliciesCompared(t *testing.T) {
	x, honoring := simWorld(t)
	victim := netip.MustParsePrefix("31.0.0.1/32")
	scope := Scope{Port: 80, Protocol: 6}
	start := time.Date(2017, 3, 20, 0, 0, 0, 0, time.UTC)
	week := 7 * 24 * time.Hour
	cfg := DefaultSimConfig()

	var sums [3]Summary
	for i, pol := range []Policy{PolicyNone, PolicyClassicRTBH, PolicyFineGrained} {
		series := Simulate(x, victim, scope, honoring, pol, start, week, cfg)
		if len(series) != 7*24 {
			t.Fatalf("series length %d", len(series))
		}
		sums[i] = Summarize(pol, series)
	}
	none, classic, fine := sums[0], sums[1], sums[2]

	if none.AttackDropFrac != 0 || none.LegitSurvivalFrac != 1 {
		t.Fatalf("no-mitigation baseline wrong: %+v", none)
	}
	// Classic and fine-grained drop the same attack share (honouring
	// members), ~80%.
	if classic.AttackDropFrac < 0.7 || fine.AttackDropFrac < 0.7 {
		t.Fatalf("attack drop too low: classic %.2f fine %.2f", classic.AttackDropFrac, fine.AttackDropFrac)
	}
	// The whole point: fine-grained preserves far more legitimate
	// traffic than classic RTBH.
	if fine.LegitSurvivalFrac <= classic.LegitSurvivalFrac+0.2 {
		t.Fatalf("fine-grained %.2f should clearly beat classic %.2f on legitimate survival",
			fine.LegitSurvivalFrac, classic.LegitSurvivalFrac)
	}
	if classic.LegitSurvivalFrac > 0.4 {
		t.Fatalf("classic RTBH should destroy most legitimate traffic, survived %.2f", classic.LegitSurvivalFrac)
	}
	if fine.Format() == "" || classic.Format() == "" {
		t.Fatal("format")
	}
}

func TestSimulateDeterministic(t *testing.T) {
	x, honoring := simWorld(t)
	victim := netip.MustParsePrefix("31.0.0.1/32")
	start := time.Date(2017, 3, 20, 0, 0, 0, 0, time.UTC)
	a := Simulate(x, victim, Scope{Port: 80}, honoring, PolicyFineGrained, start, 24*time.Hour, DefaultSimConfig())
	b := Simulate(x, victim, Scope{Port: 80}, honoring, PolicyFineGrained, start, 24*time.Hour, DefaultSimConfig())
	for i := range a {
		if a[i] != b[i] {
			t.Fatal("non-deterministic simulation")
		}
	}
}
