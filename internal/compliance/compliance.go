// Package compliance audits blackholing practice against the standards
// the paper's §11 discusses: RFC 7999 (the standard BLACKHOLE community
// 65535:666 and the requirement that blackhole announcements carry
// NO_EXPORT and stay local) and RFC 5635 (accept more-specifics up to
// host routes when tagged, never blackhole less-specific than /24).
//
// The checker consumes classified updates or closed events and produces
// per-rule verdicts, giving operators the "best common practices"
// scorecard the paper argues for.
package compliance

import (
	"fmt"
	"sort"

	"bgpblackholing/internal/bgp"
	"bgpblackholing/internal/core"
)

// Rule identifies one audited practice.
type Rule int

// Audited rules.
const (
	// RuleStandardCommunity: the announcement uses RFC 7999 65535:666
	// rather than a proprietary value.
	RuleStandardCommunity Rule = iota
	// RuleNoExport: the announcement carries NO_EXPORT, as RFC 7999
	// requires.
	RuleNoExport
	// RuleHostRoute: the blackholed prefix is a host route (the
	// recommended narrow scope).
	RuleHostRoute
	// RuleNotTooCoarse: the prefix is not less specific than /24
	// (RFC 5635's floor).
	RuleNotTooCoarse
	// RuleNotPropagated: the announcement stayed within one AS hop of
	// the provider (RFCs require suppression outside the local AS).
	RuleNotPropagated
	numRules
)

// String names the rule.
func (r Rule) String() string {
	switch r {
	case RuleStandardCommunity:
		return "uses RFC 7999 65535:666"
	case RuleNoExport:
		return "carries NO_EXPORT"
	case RuleHostRoute:
		return "host route scope"
	case RuleNotTooCoarse:
		return "not less specific than /24"
	case RuleNotPropagated:
		return "not propagated beyond provider"
	}
	return fmt.Sprintf("Rule(%d)", int(r))
}

// Rules lists all audited rules.
func Rules() []Rule {
	out := make([]Rule, numRules)
	for i := range out {
		out[i] = Rule(i)
	}
	return out
}

// Report tallies rule compliance over a population of events.
type Report struct {
	Events    int
	Compliant map[Rule]int
}

// Fraction returns the compliance rate for one rule.
func (r *Report) Fraction(rule Rule) float64 {
	if r.Events == 0 {
		return 0
	}
	return float64(r.Compliant[rule]) / float64(r.Events)
}

// FullyCompliant reports how many events satisfied every rule — the
// paper's argument: blackholing would be even more effective if all
// operators followed best common practices (§10, §11).
func (r *Report) FullyCompliant() int { return r.Compliant[Rule(-1)] }

// AuditEvents scores closed events.
func AuditEvents(events []*core.Event) *Report {
	rep := &Report{Compliant: map[Rule]int{}}
	for _, ev := range events {
		rep.Events++
		ok := auditOne(ev)
		all := true
		for rule, pass := range ok {
			if pass {
				rep.Compliant[rule]++
			} else {
				all = false
			}
		}
		if all {
			rep.Compliant[Rule(-1)]++
		}
	}
	return rep
}

func auditOne(ev *core.Event) map[Rule]bool {
	out := map[Rule]bool{}

	std := false
	for c := range ev.Communities {
		if c == bgp.CommunityBlackhole {
			std = true
		}
	}
	out[RuleStandardCommunity] = std
	out[RuleNoExport] = ev.SawNoExport || ev.Communities[bgp.CommunityNoExport]
	out[RuleHostRoute] = bgp.IsHostRoute(ev.Prefix)
	if ev.Prefix.Addr().Is4() {
		out[RuleNotTooCoarse] = ev.Prefix.Bits() >= 24
	} else {
		out[RuleNotTooCoarse] = ev.Prefix.Bits() >= 48
	}
	propagated := false
	for _, d := range ev.ProviderDistances {
		if d >= 2 {
			propagated = true
		}
	}
	out[RuleNotPropagated] = !propagated
	return out
}

// Format renders the report as an aligned scorecard.
func (r *Report) Format() string {
	rules := Rules()
	sort.Slice(rules, func(i, j int) bool { return rules[i] < rules[j] })
	out := fmt.Sprintf("events audited: %d\n", r.Events)
	for _, rule := range rules {
		out += fmt.Sprintf("  %-34s %5.1f%%\n", rule, 100*r.Fraction(rule))
	}
	out += fmt.Sprintf("  %-34s %5.1f%%\n", "fully compliant",
		100*float64(r.FullyCompliant())/float64(max(1, r.Events)))
	return out
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
