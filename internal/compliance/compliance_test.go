package compliance

import (
	"net/netip"
	"strings"
	"testing"

	"bgpblackholing/internal/bgp"
	"bgpblackholing/internal/core"
)

func event(prefix string, comms []bgp.Community, distances ...int) *core.Event {
	ev := &core.Event{
		Prefix:            netip.MustParsePrefix(prefix),
		Communities:       map[bgp.Community]bool{},
		ProviderDistances: map[core.ProviderRef]int{},
	}
	for _, c := range comms {
		ev.Communities[c] = true
	}
	for i, d := range distances {
		ev.ProviderDistances[core.ProviderRef{Kind: core.ProviderAS, ASN: bgp.ASN(100 + i)}] = d
	}
	return ev
}

func TestAuditFullyCompliantEvent(t *testing.T) {
	ev := event("192.88.99.1/32",
		[]bgp.Community{bgp.CommunityBlackhole, bgp.CommunityNoExport}, 1)
	rep := AuditEvents([]*core.Event{ev})
	if rep.Events != 1 {
		t.Fatal("events")
	}
	for _, rule := range Rules() {
		if rep.Fraction(rule) != 1 {
			t.Fatalf("rule %q not satisfied", rule)
		}
	}
	if rep.FullyCompliant() != 1 {
		t.Fatal("event should be fully compliant")
	}
}

func TestAuditViolations(t *testing.T) {
	events := []*core.Event{
		// Proprietary community, no NO_EXPORT, /24 scope, propagated 3 hops.
		event("192.88.99.0/24", []bgp.Community{bgp.MakeCommunity(3356, 9999)}, 3),
		// Too coarse: /22.
		event("192.88.96.0/22", []bgp.Community{bgp.CommunityBlackhole}, 1),
	}
	rep := AuditEvents(events)
	if rep.Fraction(RuleStandardCommunity) != 0.5 {
		t.Fatalf("standard community = %v", rep.Fraction(RuleStandardCommunity))
	}
	if rep.Fraction(RuleNoExport) != 0 {
		t.Fatal("NO_EXPORT should fail for both")
	}
	if rep.Fraction(RuleHostRoute) != 0 {
		t.Fatal("host-route should fail for both")
	}
	if rep.Fraction(RuleNotTooCoarse) != 0.5 {
		t.Fatalf("coarse = %v", rep.Fraction(RuleNotTooCoarse))
	}
	if rep.Fraction(RuleNotPropagated) != 0.5 {
		t.Fatalf("propagated = %v", rep.Fraction(RuleNotPropagated))
	}
	if rep.FullyCompliant() != 0 {
		t.Fatal("nothing is fully compliant")
	}
	out := rep.Format()
	if !strings.Contains(out, "events audited: 2") || !strings.Contains(out, "fully compliant") {
		t.Fatalf("format:\n%s", out)
	}
}

func TestAuditIPv6Coarseness(t *testing.T) {
	ok := event("2a00:1::1/128", []bgp.Community{bgp.CommunityBlackhole, bgp.CommunityNoExport}, 1)
	coarse := event("2a00:1::/40", []bgp.Community{bgp.CommunityBlackhole, bgp.CommunityNoExport}, 1)
	rep := AuditEvents([]*core.Event{ok, coarse})
	if rep.Fraction(RuleNotTooCoarse) != 0.5 {
		t.Fatalf("v6 coarse = %v", rep.Fraction(RuleNotTooCoarse))
	}
}

func TestNoPathDoesNotCountAsPropagated(t *testing.T) {
	ev := event("192.88.99.1/32",
		[]bgp.Community{bgp.CommunityBlackhole, bgp.CommunityNoExport}, core.NoPath)
	rep := AuditEvents([]*core.Event{ev})
	if rep.Fraction(RuleNotPropagated) != 1 {
		t.Fatal("bundling-only inference is not propagation evidence")
	}
}

func TestEmptyReport(t *testing.T) {
	rep := AuditEvents(nil)
	if rep.Fraction(RuleNoExport) != 0 || rep.FullyCompliant() != 0 {
		t.Fatal("empty report should be zeros")
	}
	if len(Rules()) != int(numRules) {
		t.Fatal("rules list")
	}
}
