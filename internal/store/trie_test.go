package store

import (
	"math/rand"
	"net/netip"
	"slices"
	"testing"
)

// randPrefix draws a random IPv4 or IPv6 prefix. Small address pools
// force heavy overlap, exercising splits, covering chains and shared
// subtrees.
func randPrefix(rng *rand.Rand) netip.Prefix {
	if rng.Intn(2) == 0 {
		var b [4]byte
		b[0] = byte(10 + rng.Intn(3))
		b[1] = byte(rng.Intn(4))
		b[2] = byte(rng.Intn(8))
		b[3] = byte(rng.Intn(256))
		bits := rng.Intn(33)
		return netip.PrefixFrom(netip.AddrFrom4(b), bits).Masked()
	}
	var b [16]byte
	b[0], b[1] = 0x20, 0x01
	b[2] = byte(rng.Intn(2))
	b[3] = byte(rng.Intn(4))
	b[7] = byte(rng.Intn(8))
	b[15] = byte(rng.Intn(256))
	bits := rng.Intn(129)
	return netip.PrefixFrom(netip.AddrFrom16(b), bits).Masked()
}

// naive is the O(n) reference the trie must agree with.
type naive struct {
	ords map[netip.Prefix][]int32
}

func (n *naive) insert(p netip.Prefix, ord int32) {
	n.ords[p] = append(n.ords[p], ord)
}

func (n *naive) exact(q netip.Prefix) []int32 { return n.ords[q] }

func (n *naive) covering(q netip.Prefix) map[netip.Prefix][]int32 {
	out := map[netip.Prefix][]int32{}
	for p, o := range n.ords {
		if p.Addr().Is4() == q.Addr().Is4() && p.Bits() <= q.Bits() && p.Contains(q.Addr()) {
			out[p] = o
		}
	}
	return out
}

func (n *naive) covered(q netip.Prefix) map[netip.Prefix][]int32 {
	out := map[netip.Prefix][]int32{}
	for p, o := range n.ords {
		if p.Addr().Is4() == q.Addr().Is4() && p.Bits() >= q.Bits() && q.Contains(p.Addr()) {
			out[p] = o
		}
	}
	return out
}

func (n *naive) lpm(q netip.Prefix) (netip.Prefix, bool) {
	best, ok := netip.Prefix{}, false
	for p := range n.covering(q) {
		if !ok || p.Bits() > best.Bits() {
			best, ok = p, true
		}
	}
	return best, ok
}

func asMap(ms []CoveringMatch) map[netip.Prefix][]int32 {
	out := map[netip.Prefix][]int32{}
	for _, m := range ms {
		out[m.Prefix] = m.Ords
	}
	return out
}

func sameOrds(a, b []int32) bool {
	a, b = slices.Clone(a), slices.Clone(b)
	slices.Sort(a)
	slices.Sort(b)
	return slices.Equal(a, b)
}

func samePostings(t *testing.T, what string, q netip.Prefix, got, want map[netip.Prefix][]int32) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s(%s): got %d prefixes, want %d\ngot:  %v\nwant: %v", what, q, len(got), len(want), got, want)
	}
	for p, w := range want {
		g, ok := got[p]
		if !ok || !sameOrds(g, w) {
			t.Fatalf("%s(%s): prefix %s: got %v want %v", what, q, p, g, w)
		}
	}
}

// TestTriePropertyAgainstNaiveScan is the satellite property test:
// random IPv4/IPv6 prefix sets, with LPM / covering / covered answers
// checked against a naive O(n) scan.
func TestTriePropertyAgainstNaiveScan(t *testing.T) {
	for _, seed := range []int64{1, 2, 3, 7, 42} {
		rng := rand.New(rand.NewSource(seed))
		tr := &Trie{}
		ref := &naive{ords: map[netip.Prefix][]int32{}}
		n := 200 + rng.Intn(400)
		for i := 0; i < n; i++ {
			p := randPrefix(rng)
			tr.Insert(p, int32(i))
			ref.insert(p, int32(i))
		}
		if tr.Len() != len(ref.ords) {
			t.Fatalf("seed %d: trie.Len=%d, naive has %d distinct prefixes", seed, tr.Len(), len(ref.ords))
		}

		// Queries: stored prefixes, their parents, and fresh randoms.
		var queries []netip.Prefix
		for p := range ref.ords {
			queries = append(queries, p)
			if p.Bits() > 0 {
				queries = append(queries, netip.PrefixFrom(p.Addr(), p.Bits()-1).Masked())
			}
		}
		for i := 0; i < 200; i++ {
			queries = append(queries, randPrefix(rng))
		}

		for _, q := range queries {
			if got, want := tr.Exact(q), ref.exact(q); !sameOrds(got, want) {
				t.Fatalf("seed %d: Exact(%s): got %v want %v", seed, q, got, want)
			}
			samePostings(t, "Covering", q, asMap(tr.Covering(q)), ref.covering(q))
			samePostings(t, "Covered", q, asMap(tr.Covered(q)), ref.covered(q))

			gotP, _, gotOK := tr.LPM(q)
			wantP, wantOK := ref.lpm(q)
			if gotOK != wantOK || (gotOK && gotP != wantP) {
				t.Fatalf("seed %d: LPM(%s): got %v,%v want %v,%v", seed, q, gotP, gotOK, wantP, wantOK)
			}
		}
	}
}

// TestTrieCoveringIsOrdered pins the shortest-first contract Covering
// documents (LPM depends on it).
func TestTrieCoveringIsOrdered(t *testing.T) {
	tr := &Trie{}
	for i, s := range []string{"10.0.0.0/8", "10.1.0.0/16", "10.1.2.0/24", "10.1.2.128/25"} {
		tr.Insert(netip.MustParsePrefix(s), int32(i))
	}
	cov := tr.Covering(netip.MustParsePrefix("10.1.2.129/32"))
	for i := 1; i < len(cov); i++ {
		if cov[i-1].Prefix.Bits() >= cov[i].Prefix.Bits() {
			t.Fatalf("Covering not shortest-first: %v", cov)
		}
	}
	if len(cov) != 4 {
		t.Fatalf("want full chain of 4, got %v", cov)
	}
	if p, ords, ok := tr.LPM(netip.MustParsePrefix("10.1.2.129/32")); !ok || p.String() != "10.1.2.128/25" || !slices.Equal(ords, []int32{3}) {
		t.Fatalf("LPM: got %v %v %v", p, ords, ok)
	}
}
