package store

import (
	"time"

	"bgpblackholing/internal/obs"
)

// Instruments is the store's telemetry seam: pre-resolved metric
// handles the write path updates with a few atomic operations. A nil
// Instruments (the default) costs one pointer compare per site — the
// un-instrumented hot path stays allocation- and syscall-free. Every
// field is optional; leave a handle nil to skip that signal.
//
// The struct holds obs primitives rather than a registry so label
// resolution and family lookup happen once, at wiring time, never per
// append.
type Instruments struct {
	// Append path.
	AppendEvents  *obs.Counter   // events durably appended (post-encode)
	AppendSeconds *obs.Histogram // whole-batch Append call latency

	// Fsync path — every fsync of the active segment, whatever
	// triggered it (group commit, interval timer, seal, failover,
	// explicit Sync, Close).
	FsyncTotal   *obs.Counter
	FsyncErrors  *obs.Counter
	FsyncSeconds *obs.Histogram
	// CommitBatch observes the number of records each group commit
	// flushed — the amortization the SyncPolicy buys.
	CommitBatch *obs.Histogram

	// Segment lifecycle.
	Seals     *obs.Counter // segments sealed (size, partition roll, failover, compaction)
	Failovers *obs.Counter // wounded-segment failovers

	// Compaction passes.
	CompactRuns    *obs.Counter
	CompactSeconds *obs.Histogram
	CompactMerged  *obs.Counter // segments rewritten by passes
	CompactSkipped *obs.Counter // segments policies left cold
	CompactErased  *obs.Counter // tombstoned records physically removed
	CompactDropped *obs.Counter // superseded flush duplicates removed

	// Cold-open read path.
	Hydrations       *obs.Counter // lazy segments decoded on demand
	SidecarWrites    *obs.Counter // sidecars written (seal, compaction, heal)
	SidecarFallbacks *obs.Counter // sealed segments open fully decoded for want of a fresh sidecar
}

// fsync syncs the active segment through the instrumentation seam.
// Caller holds the write lock.
func (s *Store) fsync() error {
	in := s.inst
	if in == nil {
		return s.active.Sync()
	}
	var start time.Time
	if in.FsyncSeconds != nil {
		start = time.Now()
	}
	err := s.active.Sync()
	if in.FsyncTotal != nil {
		in.FsyncTotal.Inc()
	}
	if in.FsyncSeconds != nil {
		in.FsyncSeconds.Observe(time.Since(start).Seconds())
	}
	if err != nil && in.FsyncErrors != nil {
		in.FsyncErrors.Inc()
	}
	return err
}

// observeCommitBatch records the size of a group commit about to be
// flushed. Caller holds the write lock.
func (s *Store) observeCommitBatch() {
	if in := s.inst; in != nil && in.CommitBatch != nil && s.unsynced > 0 {
		in.CommitBatch.Observe(float64(s.unsynced))
	}
}

// Health is the store's failure snapshot, feeding readiness checks: a
// wounded active segment means the last write or fsync failed and the
// next append must fail over; a parked async error is a timer-driven
// group-commit fsync failure no caller has observed yet; a hydration
// error means a cold segment could not be (fully) decoded on demand,
// so queries may be running over partial data.
type Health struct {
	WoundedSegment bool
	AsyncSyncError string
	HydrationError string
}

// Health reports the store's current failure state.
func (s *Store) Health() Health {
	s.mu.RLock()
	defer s.mu.RUnlock()
	h := Health{WoundedSegment: s.writeFailed}
	if s.asyncErr != nil {
		h.AsyncSyncError = s.asyncErr.Error()
	}
	if s.hydrateErr != nil {
		h.HydrationError = s.hydrateErr.Error()
	}
	return h
}
