package store

// Chaos suite: simulated power loss and injected I/O errors at every
// write point of the append path — record writes, group-commit fsyncs,
// and segment creation during seals — driven through the
// Options.OpenSegment seam by internal/faultfs. The invariant under
// test is the group-commit durability contract: after a crash the
// store reopens cleanly and the surviving events are a prefix of the
// acknowledged appends, missing at most the last unsynced batch.
//
// All tests here are named TestChaos* so CI can select the suite with
// `go test -run Chaos -race`.

import (
	"errors"
	"testing"
	"time"

	"bgpblackholing/internal/core"
	"bgpblackholing/internal/faultfs"
)

// openFaulted opens a store whose active-segment file ops run through
// the given fault-injecting filesystem.
func openFaulted(t *testing.T, dir string, fs *faultfs.FS, opts Options) *Store {
	t.Helper()
	opts.OpenSegment = func(path string, create bool) (SegmentFile, error) {
		return fs.Open(path, create)
	}
	st, err := Open(dir, opts)
	if err != nil {
		t.Fatalf("open faulted store: %v", err)
	}
	return st
}

// crashAppendRun appends events one at a time until the scheduled
// fault fires, tracking per-append group-commit lag, then releases the
// writer lock and reopens the directory with a plain store. It returns
// the recovered store and the durability floor: every event before
// lastDurable (indices into makeEvent order) was covered by a
// successful fsync before the crash, so recovery below that floor is
// data loss.
func crashAppendRun(t *testing.T, dir string, st *Store, total int) (recovered *Store, okCount, lastDurable int) {
	t.Helper()
	unsyncedAfterOK := 0
	for i := 0; i < total; i++ {
		if err := st.Append(makeEvent(i)); err != nil {
			break
		}
		okCount++
		unsyncedAfterOK = st.Stats().Unsynced
	}
	if okCount == total {
		t.Fatal("scheduled fault never fired")
	}
	st.Close() // errors after a crash, but releases the writer lock
	re, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	t.Cleanup(func() { re.Close() })
	return re, okCount, okCount - unsyncedAfterOK
}

// checkPrefixRecovery asserts the recovered events are exactly the
// first Len() appended events, in order, and that the count respects
// the durability floor.
func checkPrefixRecovery(t *testing.T, re *Store, okCount, lastDurable int) {
	t.Helper()
	got := collectAll(re)
	if len(got) < lastDurable {
		t.Fatalf("lost fsynced data: recovered %d events, %d were covered by a group commit", len(got), lastDurable)
	}
	if len(got) > okCount {
		t.Fatalf("recovered %d events but only %d appends were acknowledged", len(got), okCount)
	}
	for i, ev := range got {
		want := makeEvent(i)
		if !ev.Start.Equal(want.Start) || ev.Prefix != want.Prefix {
			t.Fatalf("recovered event %d is not the %d-th appended event: got (%s %s), want (%s %s)",
				i, i, ev.Prefix, ev.Start, want.Prefix, want.Start)
		}
	}
}

// TestChaosCrashMatrix kills the process (simulated power loss) at
// three distinct write points — the n-th record write, the n-th
// group-commit fsync, and the n-th segment creation during a seal —
// and asserts the reopen invariant for each.
func TestChaosCrashMatrix(t *testing.T) {
	const total = 400
	cases := []struct {
		name string
		op   faultfs.Op
		at   int
	}{
		{"write-first", faultfs.OpWrite, 1},
		{"write-early", faultfs.OpWrite, 7},
		{"write-mid", faultfs.OpWrite, 61},
		{"sync-first", faultfs.OpSync, 1},
		{"sync-later", faultfs.OpSync, 5},
		{"create-first-seal", faultfs.OpCreate, 1},
		{"create-later-seal", faultfs.OpCreate, 3},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			fs := faultfs.New()
			st := openFaulted(t, dir, fs, Options{
				MaxSegmentBytes: 4 << 10,
				Sync:            SyncPolicy{EveryN: 4},
			})
			// Scheduled after Open so counts target the append path,
			// not the initial segment's creation.
			fs.CrashAt(tc.op, tc.at)
			re, ok, durable := crashAppendRun(t, dir, st, total)
			if !fs.Crashed() {
				t.Fatal("append run ended without the crash firing")
			}
			checkPrefixRecovery(t, re, ok, durable)
			// The reopened store must be fully writable again.
			if err := re.Append(makeEvent(total)); err != nil {
				t.Fatalf("append after recovery: %v", err)
			}
			if err := re.Sync(); err != nil {
				t.Fatalf("sync after recovery: %v", err)
			}
		})
	}
}

// TestChaosTornTail crashes mid-write with half the unsynced bytes
// flushed, leaving a torn record on disk; recovery must truncate the
// tail and keep every fsynced record.
func TestChaosTornTail(t *testing.T) {
	dir := t.TempDir()
	fs := faultfs.New()
	fs.PartialTailOnCrash(true)
	st := openFaulted(t, dir, fs, Options{Sync: SyncPolicy{EveryN: 8}})
	fs.CrashAt(faultfs.OpWrite, 45)
	re, ok, durable := crashAppendRun(t, dir, st, 200)
	checkPrefixRecovery(t, re, ok, durable)
	if durable == 0 {
		t.Fatal("degenerate case: crash fired before any group commit")
	}
	if got := re.Stats().RecoveredTails; got == 0 {
		t.Error("torn tail left on disk but RecoveredTails == 0")
	}
}

// TestChaosTransientWriteError injects a one-shot write error (no
// crash, no data at risk beyond the failed record): the failed Append
// must report it, the store must fail over to a fresh segment, and a
// retry of the same event must succeed with nothing else lost.
func TestChaosTransientWriteError(t *testing.T) {
	dir := t.TempDir()
	fs := faultfs.New()
	st := openFaulted(t, dir, fs, Options{Sync: SyncPolicy{EveryN: 4}})
	// Segment magic is write 1; records are writes 2..; fail the 8th
	// record mid-stream.
	fs.FailAt(faultfs.OpWrite, 9, nil)
	const total = 20
	retried := false
	for i := 0; i < total; i++ {
		err := st.Append(makeEvent(i))
		if err == nil {
			continue
		}
		if !errors.Is(err, faultfs.ErrInjected) {
			t.Fatalf("append %d: unexpected error %v", i, err)
		}
		if retried {
			t.Fatalf("append %d failed twice: %v", i, err)
		}
		retried = true
		if err := st.Append(makeEvent(i)); err != nil {
			t.Fatalf("retry of append %d after failover: %v", i, err)
		}
	}
	if !retried {
		t.Fatal("injected write error never fired")
	}
	if err := st.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	re, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer re.Close()
	if got := re.Len(); got != total {
		t.Fatalf("after transient error + retry: %d events, want %d", got, total)
	}
	if re.Stats().Segments < 2 {
		t.Error("write failure did not fail over to a fresh segment")
	}
}

// TestChaosTransientSyncError injects a one-shot fsync failure: the
// group commit must report it, and the store must recover by sealing
// the wounded segment. A failed commit is ambiguous — the record was
// written, only its durability is in doubt — so no retry: the event
// must still be present after failover and a clean close.
func TestChaosTransientSyncError(t *testing.T) {
	dir := t.TempDir()
	fs := faultfs.New()
	st := openFaulted(t, dir, fs, Options{Sync: SyncPolicy{EveryN: 4}})
	fs.FailAt(faultfs.OpSync, 2, nil)
	const total = 32
	sawErr := false
	for i := 0; i < total; i++ {
		err := st.Append(makeEvent(i))
		if err == nil {
			continue
		}
		if !errors.Is(err, faultfs.ErrInjected) {
			t.Fatalf("append %d: unexpected error %v", i, err)
		}
		if sawErr {
			t.Fatalf("append %d failed twice: %v", i, err)
		}
		sawErr = true
	}
	if !sawErr {
		t.Fatal("injected sync error never fired")
	}
	if err := st.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	re, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer re.Close()
	if got := re.Len(); got != total {
		t.Fatalf("after transient sync error: %d events, want %d", got, total)
	}
}

// TestChaosGroupCommitBatching proves the fsync schedule each policy
// promises: EveryN batches, Always syncs per append, and the zero
// policy defers everything to Close.
func TestChaosGroupCommitBatching(t *testing.T) {
	const n = 64
	cases := []struct {
		name      string
		pol       SyncPolicy
		wantSyncs int
	}{
		{"every-8", SyncPolicy{EveryN: 8}, n / 8},
		{"always", SyncPolicy{Always: true}, n},
		{"on-close-only", SyncPolicy{}, 0},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			fs := faultfs.New()
			st := openFaulted(t, t.TempDir(), fs, Options{Sync: tc.pol})
			for i := 0; i < n; i++ {
				if err := st.Append(makeEvent(i)); err != nil {
					t.Fatalf("append %d: %v", i, err)
				}
			}
			if got := fs.Ops(faultfs.OpSync); got != tc.wantSyncs {
				t.Errorf("%d appends under %+v: %d fsyncs, want %d", n, tc.pol, got, tc.wantSyncs)
			}
			if err := st.Close(); err != nil {
				t.Fatalf("close: %v", err)
			}
			if got := fs.Ops(faultfs.OpSync); got != tc.wantSyncs+1 {
				t.Errorf("close did not add exactly one fsync: %d total, want %d", got, tc.wantSyncs+1)
			}
		})
	}
}

// TestChaosIntervalDeadline proves the T-ms half of "every N events or
// T ms": a batch smaller than EveryN becomes durable once the interval
// elapses, and survives a crash after the deadline.
func TestChaosIntervalDeadline(t *testing.T) {
	dir := t.TempDir()
	fs := faultfs.New()
	st := openFaulted(t, dir, fs, Options{
		Sync: SyncPolicy{EveryN: 100, Interval: 20 * time.Millisecond},
	})
	const n = 5 // far below EveryN: only the timer can sync these
	for i := 0; i < n; i++ {
		if err := st.Append(makeEvent(i)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for st.Stats().Unsynced != 0 {
		if time.Now().After(deadline) {
			t.Fatalf("interval sync never fired: %d records still unsynced", st.Stats().Unsynced)
		}
		time.Sleep(5 * time.Millisecond)
	}
	if got := fs.Ops(faultfs.OpSync); got == 0 {
		t.Fatal("unsynced count dropped without an fsync")
	}
	fs.Crash()
	st.Close()
	re, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	defer re.Close()
	if got := re.Len(); got != n {
		t.Fatalf("crash after interval deadline lost data: %d events, want %d", got, n)
	}
}

// TestChaosSlowDiskBackpressure exercises the latency injector: a slow
// disk must not corrupt anything, only slow the writer down.
func TestChaosSlowDiskBackpressure(t *testing.T) {
	dir := t.TempDir()
	fs := faultfs.New()
	fs.SetLatency(time.Millisecond)
	st := openFaulted(t, dir, fs, Options{Sync: SyncPolicy{EveryN: 4}})
	const n = 24
	for i := 0; i < n; i++ {
		if err := st.Append(makeEvent(i)); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if err := st.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
	re, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer re.Close()
	if got := re.Len(); got != n {
		t.Fatalf("slow disk run: %d events, want %d", got, n)
	}
}

var _ = core.Event{} // makeEvent's package is used via store_test helpers
