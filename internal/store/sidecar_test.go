package store

import (
	"bytes"
	"net/netip"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"bgpblackholing/internal/bgp"
	"bgpblackholing/internal/core"
)

// buildSidecarDir writes a store directory with several sealed,
// sidecar-backed segments, a tombstone in force, and fresh summaries:
// the append pass seals segments as it rolls, the DeletePrefix lands a
// tombstone in the active segment (staling the earlier sidecars), and
// the extra open/close cycle lets the self-heal pass rewrite them with
// the tombstone in their applied set. Returns the deleted prefix.
func buildSidecarDir(t *testing.T, dir string) netip.Prefix {
	t.Helper()
	s, err := Open(dir, Options{MaxSegmentBytes: 4096})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		if err := s.Append(makeEvent(i)); err != nil {
			t.Fatal(err)
		}
	}
	victim := makeEvent(17).Prefix
	if _, err := s.DeletePrefix(victim, time.Time{}); err != nil {
		t.Fatal(err)
	}
	if st := s.Stats(); st.Segments < 4 {
		t.Fatalf("builder produced only %d segments; want several sealed ones", st.Segments)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Heal pass: the tombstone postdates the seal-time sidecars, so this
	// open scans the affected segments and rewrites their summaries.
	s, err = Open(dir, Options{ColdOpen: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	return victim
}

// sidecarFiles lists the .sum files in dir.
func sidecarFiles(t *testing.T, dir string) []string {
	t.Helper()
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	for _, e := range ents {
		if strings.HasSuffix(e.Name(), ".sum") {
			out = append(out, filepath.Join(dir, e.Name()))
		}
	}
	return out
}

// equivalenceFilters is the query matrix the cold and full open paths
// must agree on: every prefix mode, each secondary index, time windows,
// duration bounds, limits, and combinations.
func equivalenceFilters() []Filter {
	p17 := makeEvent(17).Prefix
	return []Filter{
		{},
		{Prefix: p17, Mode: PrefixExact},
		{Prefix: netip.MustParsePrefix("10.2.0.0/16"), Mode: PrefixCovered},
		{Prefix: netip.PrefixFrom(p17.Addr(), 32), Mode: PrefixLPM},
		{Prefix: netip.PrefixFrom(p17.Addr(), 32), Mode: PrefixCovering},
		{User: 7003},
		{User: 424242}, // no match
		{Provider: &core.ProviderRef{Kind: core.ProviderAS, ASN: 102}},
		{Provider: &core.ProviderRef{Kind: core.ProviderIXP, IXPID: 1}},
		{Community: bgp.MakeCommunity(103, 666)},
		{From: testEpoch.Add(12 * time.Hour), To: testEpoch.Add(36 * time.Hour)},
		{From: testEpoch.Add(40 * time.Hour)},
		{To: testEpoch.Add(6 * time.Hour)},
		{MinDuration: 40 * time.Minute},
		{MaxDuration: 30 * time.Minute},
		{Limit: 7},
		{User: 7004, From: testEpoch, To: testEpoch.Add(200 * time.Hour), MinDuration: 20 * time.Minute},
	}
}

// queryFingerprint runs f and flattens the result into comparable
// form: encoded event bytes plus the Total/Scanned accounting.
type queryFingerprint struct {
	total, scanned int
	events         [][]byte
}

func fingerprint(s *Store, f Filter) queryFingerprint {
	res := s.Query(f)
	fp := queryFingerprint{total: res.Total, scanned: res.Scanned}
	for _, ev := range res.Events {
		fp.events = append(fp.events, EncodeEvent(nil, ev))
	}
	return fp
}

func sameFingerprint(a, b queryFingerprint) bool {
	if a.total != b.total || a.scanned != b.scanned || len(a.events) != len(b.events) {
		return false
	}
	for i := range a.events {
		if !bytes.Equal(a.events[i], b.events[i]) {
			return false
		}
	}
	return true
}

// TestColdOpenQueryEquivalence is the acceptance matrix: a sidecar
// cold open (with and without mmap), a fallback open with the sidecars
// deleted, and a classic full-decode open must answer every filter
// byte-identically — same events, same Total, same Scanned.
func TestColdOpenQueryEquivalence(t *testing.T) {
	dir := t.TempDir()
	buildSidecarDir(t, dir)

	ref, err := Open(dir, Options{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	defer ref.Close()
	filters := equivalenceFilters()
	want := make([]queryFingerprint, len(filters))
	for i, f := range filters {
		want[i] = fingerprint(ref, f)
	}
	wantAll := encodeAll(t, collectAll(ref))
	wantStats := ref.Stats()

	modes := []struct {
		name string
		opts Options
		prep func()
	}{
		{name: "cold", opts: Options{ReadOnly: true, ColdOpen: true}},
		{name: "cold+mmap", opts: Options{ReadOnly: true, ColdOpen: true, Mmap: true}},
		{name: "mmap-only", opts: Options{ReadOnly: true, Mmap: true}},
		{name: "cold-no-sidecars", opts: Options{ReadOnly: true, ColdOpen: true}, prep: func() {
			for _, p := range sidecarFiles(t, dir) {
				if err := os.Remove(p); err != nil {
					t.Fatal(err)
				}
			}
		}},
	}
	for _, m := range modes {
		t.Run(m.name, func(t *testing.T) {
			if m.prep != nil {
				m.prep()
			}
			s, err := Open(dir, m.opts)
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			if got := s.Len(); got != wantStats.Events {
				t.Fatalf("Len() = %d, want %d", got, wantStats.Events)
			}
			st := s.Stats()
			if !st.MinStart.Equal(wantStats.MinStart) || !st.MaxEnd.Equal(wantStats.MaxEnd) {
				t.Fatalf("time span [%v, %v], want [%v, %v]", st.MinStart, st.MaxEnd, wantStats.MinStart, wantStats.MaxEnd)
			}
			for i, f := range filters {
				if got := fingerprint(s, f); !sameFingerprint(got, want[i]) {
					t.Fatalf("filter %d (%+v): got total=%d scanned=%d n=%d, want total=%d scanned=%d n=%d",
						i, f, got.total, got.scanned, len(got.events), want[i].total, want[i].scanned, len(want[i].events))
				}
			}
			gotAll := encodeAll(t, collectAll(s))
			if len(gotAll) != len(wantAll) {
				t.Fatalf("All(): %d events, want %d", len(gotAll), len(wantAll))
			}
			for i := range wantAll {
				if !bytes.Equal(gotAll[i], wantAll[i]) {
					t.Fatalf("All(): event %d not byte-identical", i)
				}
			}
		})
	}
}

// TestColdOpenDecodesNothing proves the headline property: with fresh
// sidecars, open decodes zero event records from sealed segments, and
// segments hydrate only when a query touches them.
func TestColdOpenDecodesNothing(t *testing.T) {
	dir := t.TempDir()
	buildSidecarDir(t, dir)

	s, err := Open(dir, Options{ColdOpen: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	st := s.Stats()
	if st.OpenDecodedEvents != 0 {
		t.Fatalf("cold open decoded %d sealed-segment events, want 0", st.OpenDecodedEvents)
	}
	if st.SegmentsCold == 0 {
		t.Fatalf("cold open left no cold segments (of %d): sidecars not used", st.Segments)
	}
	if st.SegmentsHydrated != 0 || st.HydratedEvents != 0 {
		t.Fatalf("hydration before any query: %+v", st)
	}

	// A narrow prefix query should warm at most the segments whose
	// summaries may contain it — not the whole store.
	cold := st.SegmentsCold
	s.Query(Filter{Prefix: makeEvent(3).Prefix, Mode: PrefixExact})
	st = s.Stats()
	if st.SegmentsCold == cold {
		t.Fatalf("touching query hydrated nothing (still %d cold)", cold)
	}
	if st.HydratedEvents == 0 {
		t.Fatalf("segments hydrated but no events decoded: %+v", st)
	}

	// All() must see everything, so it finishes the warm-up.
	collectAll(s)
	if st = s.Stats(); st.SegmentsCold != 0 {
		t.Fatalf("All() left %d segments cold", st.SegmentsCold)
	}
}

// TestSidecarFallbackMatrix exercises the degraded paths: a missing,
// corrupt, or stale sidecar demotes its segment to a full decode at
// open (correct answers, just slower) and a read-write open heals the
// sidecar so the next open is cold again.
func TestSidecarFallbackMatrix(t *testing.T) {
	breakers := map[string]func(t *testing.T, dir string, victim netip.Prefix){
		"missing": func(t *testing.T, dir string, _ netip.Prefix) {
			sums := sidecarFiles(t, dir)
			if len(sums) == 0 {
				t.Fatal("builder wrote no sidecars")
			}
			if err := os.Remove(sums[0]); err != nil {
				t.Fatal(err)
			}
		},
		"corrupt": func(t *testing.T, dir string, _ netip.Prefix) {
			sums := sidecarFiles(t, dir)
			data, err := os.ReadFile(sums[0])
			if err != nil {
				t.Fatal(err)
			}
			data[len(data)/2] ^= 0xFF
			if err := os.WriteFile(sums[0], data, 0o644); err != nil {
				t.Fatal(err)
			}
		},
		"stale": func(t *testing.T, dir string, victim netip.Prefix) {
			// A new tombstone lands in the active segment; the sealed
			// sidecars' applied sets no longer cover the tombstones in
			// force, so open must rescan the segments it may affect.
			s, err := Open(dir, Options{})
			if err != nil {
				t.Fatal(err)
			}
			if _, err := s.DeletePrefix(makeEvent(4).Prefix, time.Time{}); err != nil {
				t.Fatal(err)
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}
		},
	}
	for name, breaker := range breakers {
		t.Run(name, func(t *testing.T) {
			dir := t.TempDir()
			victim := buildSidecarDir(t, dir)
			breaker(t, dir, victim)

			// Reference answers from a full-decode open.
			ref, err := Open(dir, Options{ReadOnly: true})
			if err != nil {
				t.Fatal(err)
			}
			wantAll := encodeAll(t, collectAll(ref))
			ref.Close()

			// The degraded cold open: must fall back to decoding the
			// affected segments (OpenDecodedEvents > 0) yet answer
			// identically, and — being read-write — heal the sidecars.
			s, err := Open(dir, Options{ColdOpen: true})
			if err != nil {
				t.Fatal(err)
			}
			st := s.Stats()
			if st.OpenDecodedEvents == 0 {
				t.Fatalf("%s sidecar did not force a fallback decode", name)
			}
			gotAll := encodeAll(t, collectAll(s))
			if len(gotAll) != len(wantAll) {
				t.Fatalf("fallback open: %d events, want %d", len(gotAll), len(wantAll))
			}
			for i := range wantAll {
				if !bytes.Equal(gotAll[i], wantAll[i]) {
					t.Fatalf("fallback open: event %d not byte-identical", i)
				}
			}
			if err := s.Close(); err != nil {
				t.Fatal(err)
			}

			// Self-heal: the next cold open decodes nothing again.
			s, err = Open(dir, Options{ColdOpen: true})
			if err != nil {
				t.Fatal(err)
			}
			defer s.Close()
			if st := s.Stats(); st.OpenDecodedEvents != 0 {
				t.Fatalf("after heal, cold open still decoded %d events", st.OpenDecodedEvents)
			}
		})
	}
}

// TestCompactionWritesMergedSidecar checks the compaction interplay: a
// pass over sidecar-backed segments hydrates its run members, writes a
// fresh summary for the merged segment, and the result cold-opens with
// zero decodes and unchanged answers.
func TestCompactionWritesMergedSidecar(t *testing.T) {
	dir := t.TempDir()
	buildSidecarDir(t, dir)

	s, err := Open(dir, Options{ColdOpen: true})
	if err != nil {
		t.Fatal(err)
	}
	wantAll := encodeAll(t, collectAll(s))
	if _, err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	s, err = Open(dir, Options{ColdOpen: true})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	if st := s.Stats(); st.OpenDecodedEvents != 0 {
		t.Fatalf("cold open after compaction decoded %d events; merged sidecar missing or stale", st.OpenDecodedEvents)
	}
	gotAll := encodeAll(t, collectAll(s))
	if len(gotAll) != len(wantAll) {
		t.Fatalf("after compaction: %d events, want %d", len(gotAll), len(wantAll))
	}
	for i := range wantAll {
		if !bytes.Equal(gotAll[i], wantAll[i]) {
			t.Fatalf("after compaction: event %d not byte-identical", i)
		}
	}
}
