package store

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"strconv"
	"strings"
	"testing"
)

// TestFormatDocMatchesCode keeps docs/FORMAT.md normative: it parses
// the record-kind table, the magic strings and the size caps out of
// the document and fails when they drift from the code's constants.
// Renaming a kind, changing a tag byte or bumping a version without
// updating the spec (or vice versa) fails here, not in a reader's
// hands.
func TestFormatDocMatchesCode(t *testing.T) {
	data, err := os.ReadFile(filepath.Join("..", "..", "docs", "FORMAT.md"))
	if err != nil {
		t.Fatalf("docs/FORMAT.md must exist: %v", err)
	}
	doc := string(data)
	// Markdown hard-wraps prose; flatten line breaks for the phrase
	// checks (the table regexp runs on the original, line-anchored).
	flat := strings.ReplaceAll(doc, "\n", " ")

	// The record-kind table: rows like "| `0xFD` | tombstone | ... |".
	rowRe := regexp.MustCompile("(?m)^\\| `(0x[0-9A-Fa-f]{2})` \\| ([a-z0-9-]+) \\|")
	got := map[string]byte{}
	for _, m := range rowRe.FindAllStringSubmatch(doc, -1) {
		v, err := strconv.ParseUint(m[1], 0, 8)
		if err != nil {
			t.Fatalf("unparsable kind byte %q in FORMAT.md", m[1])
		}
		got[m[2]] = byte(v)
	}
	want := map[string]byte{
		"event":     codecVersion,
		"event-v2":  codecVersionSeq,
		"tombstone": kindTombstone,
		"marker-v2": kindMarkerV2,
		"marker-v1": kindMarkerV1,
	}
	for name, b := range want {
		db, ok := got[name]
		if !ok {
			t.Errorf("FORMAT.md record-kind table is missing %q (code says 0x%02X)", name, b)
			continue
		}
		if db != b {
			t.Errorf("FORMAT.md says %s = 0x%02X, code says 0x%02X", name, db, b)
		}
	}
	for name, db := range got {
		if _, ok := want[name]; !ok {
			t.Errorf("FORMAT.md documents record kind %q (0x%02X) the code does not define", name, db)
		}
	}

	// Magic strings, rendered the way the doc spells them.
	for _, magic := range []struct {
		name string
		code []byte
	}{
		{"segment", segMagic},
		{"sidecar", sumMagic},
	} {
		lit := fmt.Sprintf("%q", magic.code)
		if !strings.Contains(doc, lit) {
			t.Errorf("FORMAT.md does not spell the %s magic %s", magic.name, lit)
		}
		if len(magic.code) != 8 {
			t.Errorf("%s magic is %d bytes; the doc promises 8", magic.name, len(magic.code))
		}
	}

	// File naming, header size, version bytes and size caps.
	if !strings.Contains(flat, "seg-%08d.log") {
		t.Errorf("FORMAT.md does not state the segment naming scheme %s", "seg-%08d.log")
	}
	if segName(7) != "seg-00000007.log" || sumName(7) != "seg-00000007.sum" {
		t.Errorf("naming scheme drifted: %s / %s", segName(7), sumName(7))
	}
	if !strings.Contains(flat, fmt.Sprintf("record header is %d bytes", recordHeaderBytes)) {
		t.Errorf("FORMAT.md does not state the %d-byte record header", recordHeaderBytes)
	}
	if !strings.Contains(flat, fmt.Sprintf("%d MiB (`maxRecordBytes`)", maxRecordBytes>>20)) {
		t.Errorf("FORMAT.md record size cap drifted from maxRecordBytes = %d MiB", maxRecordBytes>>20)
	}
	if !strings.Contains(flat, fmt.Sprintf("%d MiB (`maxSidecarBytes`)", maxSidecarBytes>>20)) {
		t.Errorf("FORMAT.md sidecar size cap drifted from maxSidecarBytes = %d MiB", maxSidecarBytes>>20)
	}
	if codecVersion != 0x01 || codecVersionSeq != 0x02 || sumVersion != 0x01 {
		t.Errorf("version bytes moved (codec 0x%02X/0x%02X, sum 0x%02X); FORMAT.md documents 0x01/0x02 and 0x01", codecVersion, codecVersionSeq, sumVersion)
	}
}
