package store

// Tiered compaction. The PR 3 compactor merged every segment on every
// pass, so a store accumulating years of history rewrote its whole cold
// tail again and again. This engine makes compaction a policy decision:
//
//   - Size-ratio (LSM-style) triggers merge only runs of similar-sized
//     segments, so a big, settled segment stops being rewritten just
//     because small fresh segments keep arriving next to it.
//   - Time partitioning groups segments by the event-time partition
//     they hold (the active segment rolls on partition boundaries when
//     Options.Policy.Partition is set) and merges never cross a
//     partition boundary, making old partitions effectively immutable.
//   - Tombstones (DeletePrefix) are honored logically at once and
//     physically here: a segment holding dead records is rewritten even
//     on its own, dropping the erased bytes from disk.
//
// A merge only ever combines segments that are CONSECUTIVE in sequence
// order, and the merged output is committed by atomically renaming it
// over the run's highest member while a v2 marker names the lower
// members as superseded. That placement preserves the global replay
// order of every surviving record, so query results are byte-identical
// before and after a compaction — including across a close and reopen —
// and a crash at any point leaves either the old run or the marker-led
// merged segment, never both indexed.

import (
	"fmt"
	"math"
	"os"
	"path/filepath"
	"slices"
	"time"

	"bgpblackholing/internal/core"
)

// Policy selects which segments a compaction pass may merge.
type Policy struct {
	// Partition is the time-partition width over event start time.
	// Segments roll on partition boundaries at append time and merges
	// never cross them; zero keeps the whole store in one partition.
	Partition time.Duration
	// SizeRatio bounds "similar-sized": a run of consecutive segments
	// is mergeable only while its largest member is at most SizeRatio
	// times its smallest. Values <= 1 mean the default of 4.
	SizeRatio float64
	// MinRun is the minimum number of similar-sized consecutive
	// segments that triggers a merge (default 4, floor 2).
	MinRun int
	// MergeAll restores the legacy behavior: seal the active segment
	// and merge every segment of every partition, regardless of size.
	MergeAll bool
}

// withDefaults fills the tuning zero values.
func (p Policy) withDefaults() Policy {
	if p.SizeRatio <= 1 {
		p.SizeRatio = 4
	}
	if p.MinRun == 0 {
		p.MinRun = 4
	}
	if p.MinRun < 2 {
		p.MinRun = 2
	}
	return p
}

// CompactStats describes one compaction pass.
type CompactStats struct {
	SegmentsBefore, SegmentsAfter int
	EventsBefore, EventsAfter     int
	// Dropped counts superseded flush duplicates removed: records for
	// the same (prefix, start, start-unknown) key where a longer-ended
	// record supersedes an earlier artificial flush close.
	Dropped int
	// Erased counts dead records (tombstoned events) physically removed
	// from disk by this pass.
	Erased int
	// Partitions is the number of distinct time partitions the sealed
	// segments spanned when the pass ran.
	Partitions int
	// Merged lists the sealed segment seqs this pass rewrote; Skipped
	// lists the sealed seqs the policy left untouched — the proof that
	// cold segments stay cold.
	Merged, Skipped []uint64
}

// compactStageHook, when set (tests only), is called with the stages of
// each run's commit protocol: "post-commit" right after the merged
// segment's atomic rename, and "post-cleanup" after the superseded run
// members are removed. The pre-commit point is segmentCommitHook.
var compactStageHook func(stage string, runHi uint64)

// Compact runs the legacy merge-everything pass: the active segment is
// sealed, every partition's segments merge into one, and superseded
// flush duplicates plus tombstoned records are dropped. Equivalent to
// CompactWith(Policy{MergeAll: true}).
func (s *Store) Compact() (CompactStats, error) {
	return s.CompactWith(Policy{MergeAll: true})
}

// CompactWith runs one compaction pass under pol. The expensive work —
// re-encoding surviving events and fsyncing merged segments — runs
// outside the store lock, so queries keep answering and appends keep
// landing throughout; the lock is only held for the brief swap phases.
// Each selected run commits independently (marker-led atomic rename),
// so a crash mid-pass leaves every run either fully old or fully new.
func (s *Store) CompactWith(pol Policy) (CompactStats, error) {
	in := s.inst
	var start time.Time
	if in != nil && in.CompactSeconds != nil {
		start = time.Now()
	}
	st, err := s.compactWith(pol)
	if in != nil {
		if in.CompactRuns != nil {
			in.CompactRuns.Inc()
		}
		if in.CompactSeconds != nil {
			in.CompactSeconds.Observe(time.Since(start).Seconds())
		}
		if in.CompactMerged != nil {
			in.CompactMerged.Add(uint64(len(st.Merged)))
		}
		if in.CompactSkipped != nil {
			in.CompactSkipped.Add(uint64(len(st.Skipped)))
		}
		if in.CompactErased != nil {
			in.CompactErased.Add(uint64(st.Erased))
		}
		if in.CompactDropped != nil {
			in.CompactDropped.Add(uint64(st.Dropped))
		}
	}
	return st, err
}

func (s *Store) compactWith(pol Policy) (CompactStats, error) {
	s.compactMu.Lock()
	defer s.compactMu.Unlock()
	pol = pol.withDefaults()

	// Phase 1 (locked): snapshot the sealed set and, for a merge-all
	// pass, seal the active segment so its records participate.
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return CompactStats{}, ErrClosed
	}
	if s.opts.ReadOnly {
		s.mu.Unlock()
		return CompactStats{}, ErrReadOnly
	}
	stats := CompactStats{
		SegmentsBefore: len(s.sealed) + 1,
		EventsBefore:   s.live,
	}
	if pol.MergeAll {
		if len(s.sealed) == 0 && s.activeDead == 0 && !s.hasDupLocked() {
			// Single active segment, nothing to drop: no work.
			stats.SegmentsAfter, stats.EventsAfter = stats.SegmentsBefore, stats.EventsBefore
			s.mu.Unlock()
			return stats, nil
		}
		if s.size > int64(len(segMagic)) || s.activeEvents+s.activeDead > 0 {
			if err := s.seal(); err != nil {
				s.mu.Unlock()
				return stats, err
			}
		}
	} else if s.activeDead > 0 {
		// A tiered pass leaves the active segment alone — unless it
		// holds dead (DeletePrefix'd) records: seal it so the erasure
		// singleton-run below can rewrite it, keeping the promise that
		// an explicit compaction purges deleted bytes from disk.
		if err := s.seal(); err != nil {
			s.mu.Unlock()
			return stats, err
		}
	}
	// Run selection is pure segment metadata, so it works over lazy
	// (cold, sidecar-backed) segments too. Merging is not: it re-encodes
	// live events, so every selected run member must be hydrated before
	// the snapshot — still under the lock, so nothing moves in between.
	// A member whose hydration failed stays lazy and poisons its run
	// (skipped this pass); merging it would silently drop its records.
	candidateRuns, partitions := selectRuns(s.sealed, pol)
	inAnyRun := map[uint64]bool{}
	for _, run := range candidateRuns {
		for _, sf := range run {
			inAnyRun[sf.seq] = true
		}
	}
	if s.coldSegs > 0 {
		cloned := false
		for i := range s.sealed {
			if !s.sealed[i].lazy || !inAnyRun[s.sealed[i].seq] {
				continue
			}
			if !cloned {
				s.events = slices.Clone(s.events)
				cloned = true
			}
			s.hydrateSegLocked(i)
		}
	}
	var runs [][]segFile
	for _, run := range candidateRuns {
		poisoned := false
		for _, sf := range run {
			if sf.lazy {
				poisoned = true
				break
			}
		}
		if poisoned {
			for _, sf := range run {
				delete(inAnyRun, sf.seq)
			}
			continue
		}
		runs = append(runs, append([]segFile(nil), run...))
	}
	sealed := append([]segFile(nil), s.sealed...)
	eventsSnap := s.events[:len(s.events):len(s.events)]
	segSnap := s.eventSeg[:len(s.eventSeg):len(s.eventSeg)]
	tombsSnap := append([]Tombstone(nil), s.tombs...)
	tombSegSnap := append([]uint64(nil), s.tombSeg...)
	s.mu.Unlock()

	stats.Partitions = partitions
	for _, run := range runs {
		for _, sf := range run {
			stats.Merged = append(stats.Merged, sf.seq)
		}
	}
	for _, sf := range sealed {
		if !inAnyRun[sf.seq] {
			stats.Skipped = append(stats.Skipped, sf.seq)
		}
	}

	// Phases 2+3, per run: merge outside the lock, swap under it.
	for _, run := range runs {
		if err := s.compactRun(run, eventsSnap, segSnap, tombsSnap, tombSegSnap, &stats); err != nil {
			s.mu.RLock()
			stats.EventsAfter, stats.SegmentsAfter = s.live, len(s.sealed)+1
			s.mu.RUnlock()
			return stats, err
		}
	}
	s.mu.RLock()
	stats.EventsAfter, stats.SegmentsAfter = s.live, len(s.sealed)+1
	s.mu.RUnlock()
	return stats, nil
}

// hasDupLocked reports whether any two live events share a dupKey.
func (s *Store) hasDupLocked() bool {
	seen := make(map[dupKey]bool, s.live)
	for _, ev := range s.events {
		if ev == nil {
			continue
		}
		k := keyOf(ev)
		if seen[k] {
			return true
		}
		seen[k] = true
	}
	return false
}

// partitionKey maps an event-start UnixNano to its time partition.
func partitionKey(nano int64, width time.Duration) int64 {
	w := int64(width)
	if w <= 0 {
		return 0
	}
	q := nano / w
	if nano%w < 0 {
		q--
	}
	return q
}

// selectRuns picks the segment runs pol wants merged. Runs are always
// consecutive in sequence order and never cross a partition boundary.
// Under MergeAll every partition block is a run; otherwise a block
// contributes its size-ratio runs of at least MinRun segments, plus a
// singleton run for any segment holding dead records awaiting physical
// erasure.
func selectRuns(sealed []segFile, pol Policy) (runs [][]segFile, partitions int) {
	if len(sealed) == 0 {
		return nil, 0
	}
	// Partition keys; a segment without event records (tombstones or
	// markers only) continues its predecessor's partition so it never
	// splits a block.
	pks := make([]int64, len(sealed))
	const unassigned = math.MinInt64
	for i, sf := range sealed {
		if sf.hasEvents {
			pks[i] = partitionKey(sf.minStartNano, pol.Partition)
		} else if i > 0 {
			pks[i] = pks[i-1]
		} else {
			pks[i] = unassigned
		}
	}
	for i := 0; i < len(pks) && pks[i] == unassigned; i++ {
		// Leading eventless segments join the first real partition.
		for j := i; j < len(pks); j++ {
			if pks[j] != unassigned {
				pks[i] = pks[j]
				break
			}
		}
		if pks[i] == unassigned {
			pks[i] = 0
		}
	}
	distinct := map[int64]bool{}
	for i, sf := range sealed {
		if sf.hasEvents {
			distinct[pks[i]] = true
		}
	}
	partitions = len(distinct)

	covered := map[uint64]bool{}
	for start := 0; start < len(sealed); {
		end := start
		for end+1 < len(sealed) && pks[end+1] == pks[start] {
			end++
		}
		block := sealed[start : end+1]
		if pol.MergeAll {
			runs = append(runs, block)
			for _, sf := range block {
				covered[sf.seq] = true
			}
		} else {
			for _, run := range sizeRatioRuns(block, pol) {
				runs = append(runs, run)
				for _, sf := range run {
					covered[sf.seq] = true
				}
			}
		}
		start = end + 1
	}
	if !pol.MergeAll {
		// Pending physical erasure: a segment holding dead records is
		// rewritten even alone, so DeletePrefix data leaves the disk at
		// its partition's next compaction.
		for i := range sealed {
			if sealed[i].dead > 0 && !covered[sealed[i].seq] {
				runs = append(runs, sealed[i:i+1])
			}
		}
		// Keep runs in ascending seq order so commits are deterministic.
		slices.SortFunc(runs, func(a, b []segFile) int {
			switch {
			case a[0].seq < b[0].seq:
				return -1
			case a[0].seq > b[0].seq:
				return 1
			}
			return 0
		})
	}
	return runs, partitions
}

// sizeRatioRuns finds the maximal consecutive runs within one partition
// block whose members are all within pol.SizeRatio of each other, and
// returns those of at least MinRun segments.
func sizeRatioRuns(block []segFile, pol Policy) [][]segFile {
	var runs [][]segFile
	for i := 0; i < len(block); {
		lo, hi := block[i].size, block[i].size
		j := i
		for j+1 < len(block) {
			nlo, nhi := min(lo, block[j+1].size), max(hi, block[j+1].size)
			if float64(nhi) > float64(nlo)*pol.SizeRatio {
				break
			}
			lo, hi = nlo, nhi
			j++
		}
		if j-i+1 >= pol.MinRun {
			runs = append(runs, block[i:j+1])
			i = j + 1
		} else {
			i++
		}
	}
	return runs
}

// compactRun merges one run: survivors (live events of the run minus
// superseded duplicates) and the run's tombstone records are written to
// a fresh segment that atomically replaces the run's highest member,
// led by a v2 marker naming the lower members. The snapshot arguments
// came from phase 1; the authoritative liveness check happens again
// under the lock during the swap, so a DeletePrefix racing the merge
// stays correct (its victims are at worst re-written as dead-on-disk
// records and erased by the next pass).
func (s *Store) compactRun(run []segFile, events []*core.Event, eventSeg []uint64, tombs []Tombstone, tombSeg []uint64, stats *CompactStats) error {
	hi := run[len(run)-1]
	inRun := make(map[uint64]bool, len(run))
	lower := make([]uint64, 0, len(run)-1)
	for _, sf := range run {
		inRun[sf.seq] = true
		if sf.seq != hi.seq {
			lower = append(lower, sf.seq)
		}
	}

	// Candidates: the run's live events, in ordinal (replay) order.
	var ords []int32
	for ord := range events {
		if events[ord] != nil && inRun[eventSeg[ord]] {
			ords = append(ords, int32(ord))
		}
	}
	first := map[dupKey]int32{}
	best := map[dupKey]int32{}
	for _, ord := range ords {
		k := keyOf(events[ord])
		if _, seen := first[k]; !seen {
			first[k], best[k] = ord, ord
		} else if supersedes(events[ord], events[best[k]]) {
			best[k] = ord
		}
	}

	// Emit: marker, the run's tombstones, then each key's survivor at
	// its first-appearance position.
	payloads := [][]byte{appendMarkerV2(nil, lower)}
	for i, tb := range tombs {
		if inRun[tombSeg[i]] {
			payloads = append(payloads, encodeTombstone(nil, tb))
		}
	}
	nonEvents := len(payloads) // marker + re-emitted tombstones
	type emitPair struct{ slot, src int32 }
	var kept []emitPair
	emitted := map[dupKey]bool{}
	for _, ord := range ords {
		k := keyOf(events[ord])
		if emitted[k] {
			continue
		}
		emitted[k] = true
		payloads = append(payloads, EncodeEvent(nil, events[best[k]]))
		kept = append(kept, emitPair{slot: first[k], src: best[k]})
	}

	hiPath := filepath.Join(s.dir, segName(hi.seq))
	// The merged segment replaces hi's file, so hi's old sidecar — which
	// describes the pre-merge bytes — must go before the rename: a crash
	// in between leaves at worst a missing sidecar (full decode + heal
	// on the next open), never a stale one that happens to match the
	// merged file's size. The rename's directory fsync makes both
	// changes durable together.
	os.Remove(sumPath(s.dir, hi.seq))
	if err := writeSegmentAtomic(s.dir, hiPath, payloads); err != nil {
		// Nothing swapped: the store keeps serving from the old run.
		return err
	}
	if compactStageHook != nil {
		compactStageHook("post-commit", hi.seq)
	}

	// Phase 3 (locked): swap the run for the merged segment.
	s.mu.Lock()
	if s.closed {
		// The merge is already committed and the marker makes the old
		// members inert; the next open finishes the cleanup.
		s.mu.Unlock()
		return ErrClosed
	}
	// Copy-on-write: snapshots handed out by All keep the old array.
	s.events = slices.Clone(s.events)
	mergedDead := 0
	mergedMin := int64(noMinStart)
	// mergedRecs mirrors the merged file's event records in order, with
	// liveness as of this swap — the merged segment's sidecar.
	mergedRecs := make([]sumRec, len(kept))
	for i, p := range kept {
		if p.src != p.slot && s.events[p.src] != nil {
			if s.events[p.slot] != nil {
				s.unindex(p.slot)
				stats.Dropped++
			}
			s.moveOrd(p.src, p.slot)
		}
		mergedRecs[i] = sumRec{ev: events[p.src], dead: s.events[p.slot] == nil}
		if s.events[p.slot] == nil {
			// Erased (DeletePrefix) between snapshot and swap: its
			// record is in the merged segment but stays invisible and
			// goes at the next pass.
			mergedDead++
		} else {
			s.eventSeg[p.slot] = hi.seq
			if nano := s.events[p.slot].Start.UTC().UnixNano(); nano < mergedMin {
				mergedMin = nano
			}
		}
	}
	slots := make(map[int32]bool, len(kept))
	srcs := make(map[int32]bool, len(kept))
	for _, p := range kept {
		slots[p.slot] = true
		srcs[p.src] = true
	}
	for _, ord := range ords {
		if slots[ord] || srcs[ord] {
			continue
		}
		if s.events[ord] != nil {
			s.unindex(ord)
			stats.Dropped++
		}
	}
	for _, sf := range run {
		stats.Erased += sf.dead
	}
	// Tombstones re-emitted into the merged segment now live there:
	// re-point their segment attribution so the *next* merge of this
	// segment re-emits them again instead of dropping the only copy
	// (tombstones appended during the merge sit in the active segment,
	// which is never in the run).
	for i := range s.tombSeg {
		if inRun[s.tombSeg[i]] {
			s.tombSeg[i] = hi.seq
		}
	}
	var mergedSize int64
	if fi, err := os.Stat(hiPath); err == nil {
		mergedSize = fi.Size()
	}
	merged := segFile{
		seq:          hi.seq,
		path:         hiPath,
		size:         mergedSize,
		minStartNano: mergedMin,
		hasEvents:    len(kept) > 0,
		dead:         mergedDead,
	}
	newSealed := make([]segFile, 0, len(s.sealed))
	found := false
	for _, sf := range s.sealed {
		switch {
		case sf.seq == hi.seq:
			newSealed = append(newSealed, merged)
			found = true
		case inRun[sf.seq]:
			// Dropped: superseded run member.
		default:
			newSealed = append(newSealed, sf)
		}
	}
	if !found {
		// The run head vanished from the sealed set — impossible unless
		// the bookkeeping broke; fail loudly rather than lose a segment.
		s.mu.Unlock()
		return fmt.Errorf("store: compact: run head seg-%d missing from sealed set", hi.seq)
	}
	s.sealed = newSealed
	s.sealedBytes = 0
	for _, sf := range s.sealed {
		s.sealedBytes += sf.size
	}
	// The applied-tombstone set for the merged sidecar is captured under
	// the lock: a DeletePrefix landing after the unlock is, by
	// construction, outside the set, so the next open's staleness check
	// demotes the sidecar instead of trusting it.
	appliedTombs := make([][]byte, len(s.tombs))
	for i, tb := range s.tombs {
		appliedTombs[i] = encodeTombstone(nil, tb)
	}
	s.mu.Unlock()

	// Old run members are inert once the marker is committed (recovery
	// skips and removes them), so removal is best-effort — as are their
	// sidecars, which open would discard as orphans anyway.
	for _, sf := range run {
		if sf.seq != hi.seq {
			os.Remove(sf.path)
			os.Remove(sumPath(s.dir, sf.seq))
		}
	}
	syncDir(s.dir)

	// Fresh sidecar for the merged segment, so the next open skips
	// decoding it. writeSegmentAtomic wrote exactly magic + records and
	// synced, so the file is valid through its full size.
	if mergedSize > 0 {
		m := buildSummary(hi.seq, mergedSize, mergedSize, false, mergedRecs, payloads[:nonEvents], appliedTombs)
		if writeSidecar(s.dir, m) == nil {
			if in := s.inst; in != nil && in.SidecarWrites != nil {
				in.SidecarWrites.Inc()
			}
		}
	}
	if compactStageHook != nil {
		compactStageHook("post-cleanup", hi.seq)
	}
	return nil
}
