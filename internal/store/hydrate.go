package store

import (
	"fmt"
	"net/netip"
	"slices"
	"time"

	"bgpblackholing/internal/bgp"
	"bgpblackholing/internal/core"
)

// On-demand hydration for cold-opened stores (Options.ColdOpen), the
// materialized per-day aggregate view behind DailyCounts, and the
// seal-time sidecar writer. The contract throughout: a query against a
// cold store returns bytes identical to the same query against a fully
// warm store — pruning may only skip segments that provably cannot
// contribute to the filter's candidate posting set.

// insertOrd inserts ord into the sorted postings list l. The append
// path always inserts the largest ordinal seen so far, so the common
// case is a single compare; hydration of an older segment's reserved
// block pays the binary search.
func insertOrd(l []int32, ord int32) []int32 {
	if n := len(l); n == 0 || l[n-1] < ord {
		return append(l, ord)
	}
	at, _ := slices.BinarySearch(l, ord)
	return slices.Insert(l, at, ord)
}

// indexAt indexes ev at a pre-reserved ordinal. Unlike index, the slot
// already exists (nil) and later ordinals may already populate the
// postings lists, so every insertion keeps them sorted. The caller
// holds the write lock, accounted the event as live at reservation
// time, and cloned s.events for this hydration batch.
func (s *Store) indexAt(ev *core.Event, ord int32) {
	s.events[ord] = ev
	s.trie.Insert(ev.Prefix, ord)
	for u := range ev.Users {
		s.byUser[u] = insertOrd(s.byUser[u], ord)
	}
	for pr := range ev.Providers {
		s.byProvider[pr] = insertOrd(s.byProvider[pr], ord)
	}
	for c := range ev.Communities {
		s.byCommunity[c] = insertOrd(s.byCommunity[c], ord)
	}
	for d := unixDay(ev.Start); d <= unixDay(ev.End); d++ {
		s.byDay[d] = insertOrd(s.byDay[d], ord)
	}
	if s.minStart.IsZero() || ev.Start.Before(s.minStart) {
		s.minStart = ev.Start
	}
	if ev.End.After(s.maxEnd) {
		s.maxEnd = ev.End
	}
	s.dayAdd(ev)
}

// segTouches mirrors candidates' index precedence over a lazy
// segment's summary: it prunes on exactly the one dimension that will
// supply the candidate posting set, so a hydrated-on-demand store's
// postings — and Result.Scanned — stay byte-identical to an
// always-warm store's.
func (s *Store) segTouches(m *segSummary, f Filter) bool {
	if f.Prefix.IsValid() {
		return m.mayMatchPrefix(f.Prefix, f.Mode)
	}
	if f.User != 0 {
		var kb [10]byte
		return m.users.mayContain(bloomUserKey(kb[:0], uint64(f.User)))
	}
	if f.Provider != nil {
		var kb [24]byte
		return m.providers.mayContain(bloomProviderKey(kb[:0], *f.Provider))
	}
	if f.Community != 0 {
		var kb [10]byte
		return m.communities.mayContain(bloomUserKey(kb[:0], uint64(f.Community)))
	}
	if !f.From.IsZero() || !f.To.IsZero() {
		from, to := f.From, f.To
		if from.IsZero() {
			from = s.minStart
		}
		if to.IsZero() {
			to = s.maxEnd
		}
		if from.IsZero() || to.IsZero() || to.Before(from) {
			return false
		}
		return m.mayMatchTime(unixDay(from), unixDay(to))
	}
	return true
}

// ensureHydrated decodes every lazy segment the filter could touch.
// The common case — no cold segments left, or none the filter's
// primary index dimension can reach — costs a read-locked sweep over
// segment summaries and touches no file.
func (s *Store) ensureHydrated(f Filter) {
	s.mu.RLock()
	need := false
	if s.coldSegs > 0 && !s.closed {
		for i := range s.sealed {
			if s.sealed[i].lazy && s.segTouches(s.sealed[i].sum, f) {
				need = true
				break
			}
		}
	}
	s.mu.RUnlock()
	if !need {
		return
	}
	s.mu.Lock()
	s.hydrateWhereLocked(func(m *segSummary) bool { return s.segTouches(m, f) })
	s.mu.Unlock()
}

// ensureHydratedAll warms every remaining lazy segment (full scans,
// All, Figure 8 — anything that touches the whole store by definition).
func (s *Store) ensureHydratedAll() {
	s.mu.RLock()
	need := s.coldSegs > 0 && !s.closed
	s.mu.RUnlock()
	if !need {
		return
	}
	s.mu.Lock()
	s.hydrateWhereLocked(func(*segSummary) bool { return true })
	s.mu.Unlock()
}

// hydrateWhereLocked hydrates the lazy segments matching pred under
// the held write lock. The sealed set is re-examined under the lock (a
// concurrent hydration or compaction may have gotten there first), and
// s.events is copy-on-write-cloned once per batch so snapshots handed
// out by All and QuerySeq never observe slots mutating.
func (s *Store) hydrateWhereLocked(pred func(*segSummary) bool) {
	if s.closed {
		return
	}
	cloned := false
	for i := range s.sealed {
		if !s.sealed[i].lazy || !pred(s.sealed[i].sum) {
			continue
		}
		if !cloned {
			s.events = slices.Clone(s.events)
			cloned = true
		}
		s.hydrateSegLocked(i)
	}
}

// hydrateSegLocked decodes lazy sealed segment i and indexes its live
// events into the ordinal block reserved at open. A read failure keeps
// the segment lazy (the next touching query retries); decode failures
// or a sidecar/file mismatch mark the segment hydrated with the
// unaccounted slots dead, so the store degrades to partial data
// instead of wedging. Either failure is parked for Health. Caller
// holds the write lock with s.events cloned.
func (s *Store) hydrateSegLocked(i int) {
	sf := &s.sealed[i]
	sc, done, err := s.scanSegmentFile(sf.path)
	if err != nil {
		s.hydrateErr = fmt.Errorf("hydrate %s: %w", sf.path, err)
		return
	}
	defer done()
	m := sf.sum
	next := sf.base
	evIdx := 0
	var decodeErr error
	for _, rec := range sc.records {
		if isMarker(rec) || isTombstone(rec) {
			continue
		}
		if evIdx >= m.eventRecords {
			break // sealed segments are immutable; belt and braces
		}
		k := evIdx
		evIdx++
		if m.deadBit(k) {
			continue // dead at sidecar-write time: no ordinal reserved
		}
		ev, derr := DecodeEvent(rec)
		if derr != nil {
			decodeErr = fmt.Errorf("hydrate %s: %w", sf.path, derr)
			break
		}
		ord := next
		next++
		s.hydratedEvents++
		if s.tombstoned(ev) {
			// A tombstone the staleness check could not see killed this
			// event after the sidecar was written; the reserved slot
			// stays dead. (DeletePrefix hydrates before appending, so
			// this is defensive.)
			sf.dead++
			s.live--
			continue
		}
		s.indexAt(ev, ord)
	}
	if decodeErr != nil {
		s.hydrateErr = decodeErr
	}
	if short := sf.base + sf.n - next; short > 0 {
		// Fewer live records than the sidecar promised: the file lost
		// data behind the summary's back. The remaining reserved slots
		// stay nil (dead) and the store reports the loss via Health.
		s.live -= int(short)
		if s.hydrateErr == nil {
			s.hydrateErr = fmt.Errorf("hydrate %s: sidecar promised %d live events, found %d", sf.path, sf.n, next-sf.base)
		}
	}
	sf.lazy, sf.sum = false, nil
	s.coldSegs--
	s.hydratedSegs++
	if in := s.inst; in != nil && in.Hydrations != nil {
		in.Hydrations.Inc()
	}
}

// dayAgg is one day's slice of the materialized aggregate view: a
// refcount per distinct provider, user and victim prefix over the live
// events overlapping that day. The distinct-set sizes are exactly what
// analysis.Figure4Seq computes per day (providers keyed by their
// String form, prefixes verbatim), so len() answers /figure4 in O(1)
// per day.
type dayAgg struct {
	providers map[string]int
	users     map[bgp.ASN]int
	prefixes  map[netip.Prefix]int
}

// dayAdd credits ev to every day its span overlaps. Caller holds the
// write lock (index/indexAt path).
func (s *Store) dayAdd(ev *core.Event) {
	for d := unixDay(ev.Start); d <= unixDay(ev.End); d++ {
		a := s.days[d]
		if a == nil {
			a = &dayAgg{
				providers: map[string]int{},
				users:     map[bgp.ASN]int{},
				prefixes:  map[netip.Prefix]int{},
			}
			s.days[d] = a
		}
		for pr := range ev.Providers {
			a.providers[pr.String()]++
		}
		for u := range ev.Users {
			a.users[u]++
		}
		a.prefixes[ev.Prefix]++
	}
}

// dayRemove is dayAdd's inverse (unindex path).
func (s *Store) dayRemove(ev *core.Event) {
	for d := unixDay(ev.Start); d <= unixDay(ev.End); d++ {
		a := s.days[d]
		if a == nil {
			continue
		}
		for pr := range ev.Providers {
			decEntry(a.providers, pr.String())
		}
		for u := range ev.Users {
			decEntry(a.users, u)
		}
		decEntry(a.prefixes, ev.Prefix)
		if len(a.providers)+len(a.users)+len(a.prefixes) == 0 {
			delete(s.days, d)
		}
	}
}

// decEntry decrements a refcount, deleting the key at zero so len()
// stays the distinct-element count.
func decEntry[K comparable](m map[K]int, k K) {
	if n := m[k] - 1; n <= 0 {
		delete(m, k)
	} else {
		m[k] = n
	}
}

// DayCount is one day of the materialized aggregate view: the distinct
// providers, blackholing users and victim prefixes over the live
// events overlapping that UTC day.
type DayCount struct {
	Providers, Users, Prefixes int
}

// DailyCounts answers `days` consecutive UTC days starting at start
// from the materialized view, in O(days) — the same numbers a full
// scan through analysis.Figure4Seq produces, provided start is aligned
// to a UTC midnight (that alignment is what makes scan day-bucketing
// coincide with calendar-day overlap). ok is false when start is not
// day-aligned or days is not positive; callers fall back to the scan
// path then.
func (s *Store) DailyCounts(start time.Time, days int) ([]DayCount, bool) {
	if days <= 0 {
		return nil, false
	}
	const dayNanos = int64(24 * time.Hour)
	if start.UnixNano()%dayNanos != 0 {
		return nil, false
	}
	// Only events overlapping the window contribute, so the time
	// dimension bounds which cold segments must hydrate.
	end := start.Add(time.Duration(days)*24*time.Hour - time.Nanosecond)
	s.ensureHydrated(Filter{From: start, To: end})
	s.mu.RLock()
	defer s.mu.RUnlock()
	d0 := unixDay(start)
	out := make([]DayCount, days)
	for d := range out {
		if a := s.days[d0+int64(d)]; a != nil {
			out[d] = DayCount{
				Providers: len(a.providers),
				Users:     len(a.users),
				Prefixes:  len(a.prefixes),
			}
		}
	}
	return out, true
}

// writeSealSidecar summarizes the active segment from the in-memory
// accumulator — no re-read of the file — and writes its sidecar.
// Deadness is evaluated against the tombstones in force now, so the
// summary's live bounds and counts equal what an eager reopen would
// compute. Best-effort and advisory: on failure the next open fully
// decodes this segment and heals. Caller holds the write lock; the
// segment's bytes are already synced.
func (s *Store) writeSealSidecar() {
	recs := make([]sumRec, len(s.activeRecs))
	for i, ev := range s.activeRecs {
		recs[i] = sumRec{ev: ev, dead: s.tombstoned(ev)}
	}
	applied := make([][]byte, len(s.tombs))
	for i, tb := range s.tombs {
		applied[i] = encodeTombstone(nil, tb)
	}
	m := buildSummary(s.seq, s.size, s.size, false, recs, s.activeOthers, applied)
	if writeSidecar(s.dir, m) == nil {
		if in := s.inst; in != nil && in.SidecarWrites != nil {
			in.SidecarWrites.Inc()
		}
	}
}
