package store

import (
	"bytes"
	"net/netip"
	"os"
	"path/filepath"
	"testing"
	"time"

	"bgpblackholing/internal/bgp"
	"bgpblackholing/internal/collector"
	"bgpblackholing/internal/core"
)

var testEpoch = time.Date(2014, 12, 1, 0, 0, 0, 0, time.UTC)

// makeEvent builds a fully populated synthetic event, deterministic in i.
func makeEvent(i int) *core.Event {
	pr := core.ProviderRef{Kind: core.ProviderAS, ASN: bgp.ASN(100 + i%7)}
	xr := core.ProviderRef{Kind: core.ProviderIXP, IXPID: i % 3}
	user := bgp.ASN(7000 + i%11)
	comm := bgp.MakeCommunity(uint16(100+i%7), 666)
	peer := netip.AddrFrom4([4]byte{192, 0, 2, byte(i % 250)})
	start := testEpoch.Add(time.Duration(i) * 13 * time.Minute)
	ev := &core.Event{
		Prefix:       netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(i % 5), byte(i % 200), 0}), 24).Masked(),
		Start:        start,
		End:          start.Add(time.Duration(1+i%9) * 11 * time.Minute),
		StartUnknown: i%13 == 0,
		Providers:    map[core.ProviderRef]bool{pr: true, xr: true},
		Users:        map[bgp.ASN]bool{user: true, user + 1: true},
		Communities:  map[bgp.Community]bool{comm: true},
		Platforms:    map[collector.Platform]bool{collector.PlatformRIS: true, collector.PlatformPCH: true},
		Peers:        map[netip.Addr]bool{peer: true},
		ASDistances:  []int{1, core.NoPath, i % 4},
		ProviderDistances: map[core.ProviderRef]int{
			pr: 1, xr: core.NoPath,
		},
		DirectProviders: map[core.ProviderRef]bool{pr: true},
		ProvidersByPlatform: map[collector.Platform]map[core.ProviderRef]bool{
			collector.PlatformRIS: {pr: true},
			collector.PlatformPCH: {xr: true},
		},
		UsersByPlatform: map[collector.Platform]map[bgp.ASN]bool{
			collector.PlatformRIS: {user: true},
			collector.PlatformPCH: {},
		},
		ProviderUsers: map[core.ProviderRef]map[bgp.ASN]bool{
			pr: {user: true, user + 1: true},
		},
		Detections:  3 + i%5,
		DirectFeed:  i%2 == 0,
		SawNoExport: i%3 == 0,
	}
	return ev
}

func encodeAll(t *testing.T, events []*core.Event) [][]byte {
	t.Helper()
	out := make([][]byte, len(events))
	for i, ev := range events {
		out[i] = EncodeEvent(nil, ev)
	}
	return out
}

func collectAll(s *Store) []*core.Event {
	var out []*core.Event
	for ev := range s.All() {
		out = append(out, ev)
	}
	return out
}

func TestCodecRoundTrip(t *testing.T) {
	for i := 0; i < 100; i++ {
		ev := makeEvent(i)
		enc := EncodeEvent(nil, ev)
		dec, err := DecodeEvent(enc)
		if err != nil {
			t.Fatalf("event %d: decode: %v", i, err)
		}
		re := EncodeEvent(nil, dec)
		if !bytes.Equal(enc, re) {
			t.Fatalf("event %d: decode→encode not byte-identical\n  first:  %x\n  second: %x", i, enc, re)
		}
		if dec.Prefix != ev.Prefix || !dec.Start.Equal(ev.Start) || !dec.End.Equal(ev.End) ||
			dec.Detections != ev.Detections || len(dec.Providers) != len(ev.Providers) ||
			len(dec.Users) != len(ev.Users) || len(dec.Peers) != len(ev.Peers) {
			t.Fatalf("event %d: decoded fields diverge: %+v vs %+v", i, dec, ev)
		}
	}
}

func TestCodecRejectsCorruptRecords(t *testing.T) {
	enc := EncodeEvent(nil, makeEvent(5))
	for _, cut := range []int{1, len(enc) / 2, len(enc) - 1} {
		if _, err := DecodeEvent(enc[:cut]); err == nil {
			t.Fatalf("decode of %d/%d-byte truncation succeeded", cut, len(enc))
		}
	}
	if _, err := DecodeEvent(append([]byte{99}, enc[1:]...)); err == nil {
		t.Fatal("decode accepted unknown version")
	}
}

func TestStoreAppendReopenPreservesOrderAndBytes(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	var events []*core.Event
	for i := 0; i < 200; i++ {
		events = append(events, makeEvent(i))
	}
	if err := s.Append(events...); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got := collectAll(r)
	if len(got) != len(events) {
		t.Fatalf("reopened store has %d events, want %d", len(got), len(events))
	}
	want := encodeAll(t, events)
	for i, g := range encodeAll(t, got) {
		if !bytes.Equal(g, want[i]) {
			t.Fatalf("event %d not byte-identical after reopen", i)
		}
	}
	st := r.Stats()
	if st.Events != 200 || st.Segments == 0 || st.MinStart.IsZero() {
		t.Fatalf("odd stats after reopen: %+v", st)
	}
}

func TestStoreSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{MaxSegmentBytes: 2048})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 300; i++ {
		if err := s.Append(makeEvent(i)); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Stats(); st.Segments < 3 {
		t.Fatalf("expected rotation to produce several segments, got %d", st.Segments)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if n := r.Len(); n != 300 {
		t.Fatalf("reopen after rotation: %d events, want 300", n)
	}
}

// TestStoreCrashRecoveryTruncatedSegment is the acceptance-criteria
// crash test: a segment truncated mid-record reopens cleanly, keeps
// every intact record, and accepts new appends.
func TestStoreCrashRecoveryTruncatedSegment(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		if err := s.Append(makeEvent(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Tear the tail mid-record, as a crash during a write would.
	segs, err := listSegments(dir, true)
	if err != nil || len(segs) == 0 {
		t.Fatalf("listSegments: %v %v", segs, err)
	}
	path := segs[len(segs)-1].path
	fi, err := os.Stat(path)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.Truncate(path, fi.Size()-37); err != nil {
		t.Fatal(err)
	}

	r, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen after torn tail: %v", err)
	}
	got := collectAll(r)
	if len(got) != 49 {
		t.Fatalf("recovered %d events, want 49 (the torn record dropped)", len(got))
	}
	if st := r.Stats(); st.RecoveredTails != 1 {
		t.Fatalf("RecoveredTails = %d, want 1", st.RecoveredTails)
	}
	for i, g := range encodeAll(t, got) {
		if want := EncodeEvent(nil, makeEvent(i)); !bytes.Equal(g, want) {
			t.Fatalf("recovered event %d corrupted", i)
		}
	}
	// The store stays writable at a clean record boundary.
	if err := r.Append(makeEvent(999)); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	r2, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if n := r2.Len(); n != 50 {
		t.Fatalf("after recovery + append + reopen: %d events, want 50", n)
	}
}

func TestStoreCorruptedChecksumDetected(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := s.Append(makeEvent(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := listSegments(dir, true)
	path := segs[len(segs)-1].path
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-3] ^= 0xFF // flip payload bits inside the last record
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if n := r.Len(); n != 9 {
		t.Fatalf("store kept %d events past a checksum failure, want 9", n)
	}
}

// TestStoreTornNewestSegmentMagic: a crash between a segment's
// creation and its first sync can leave the newest file shorter than
// the magic; open must recover, not refuse.
func TestStoreTornNewestSegmentMagic(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if err := s.Append(makeEvent(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	segs, _ := listSegments(dir, true)
	torn := filepath.Join(dir, segName(segs[len(segs)-1].seq+1))
	if err := os.WriteFile(torn, []byte("BHS"), 0o644); err != nil {
		t.Fatal(err)
	}
	r, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open with torn-magic newest segment: %v", err)
	}
	if n := r.Len(); n != 10 {
		t.Fatalf("recovered %d events, want 10", n)
	}
	if st := r.Stats(); st.RecoveredTails != 1 {
		t.Fatalf("RecoveredTails = %d, want 1", st.RecoveredTails)
	}
	if err := r.Append(makeEvent(99)); err != nil {
		t.Fatal(err)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(torn); !os.IsNotExist(err) {
		t.Fatal("torn segment file not cleaned up")
	}
}

// TestStoreWriterLock: the single-writer invariant is enforced — a
// second read-write open fails while the first is live, read-only
// opens still work, and the lock releases on Close.
func TestStoreWriterLock(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(makeEvent(1)); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(dir, Options{}); err == nil {
		t.Fatal("second read-write open of a live store succeeded")
	}
	if r, err := Open(dir, Options{ReadOnly: true}); err != nil {
		t.Fatalf("read-only open alongside the writer: %v", err)
	} else {
		r.Close()
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	s2, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("reopen after Close: %v", err)
	}
	s2.Close()

	// A lock left by a dead process (bogus pid) is stolen.
	if err := os.WriteFile(filepath.Join(dir, lockName), []byte("999999999\n"), 0o644); err != nil {
		t.Fatal(err)
	}
	s3, err := Open(dir, Options{})
	if err != nil {
		t.Fatalf("open over a stale lock: %v", err)
	}
	s3.Close()
}

func TestStoreReadOnly(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Append(makeEvent(1), makeEvent(2)); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(dir, Options{ReadOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if err := r.Append(makeEvent(3)); err != ErrReadOnly {
		t.Fatalf("Append on read-only store: %v, want ErrReadOnly", err)
	}
	if _, err := r.Compact(); err != ErrReadOnly {
		t.Fatalf("Compact on read-only store: %v, want ErrReadOnly", err)
	}
	if n := r.Len(); n != 2 {
		t.Fatalf("read-only store has %d events, want 2", n)
	}
	if _, err := Open(filepath.Join(dir, "missing"), Options{ReadOnly: true}); err == nil {
		t.Fatal("read-only open of a missing store dir succeeded")
	}
}

// TestCompactDropsSupersededFlushDuplicates: the same blackholing
// closed once by an end-of-window flush and again, longer, by an
// overlapping replay collapses to the longer record.
func TestCompactDropsSupersededFlushDuplicates(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	short := makeEvent(7) // flush-closed at window end
	long := makeEvent(7)  // the same occurrence, observed longer
	long.End = long.End.Add(3 * time.Hour)
	long.Detections += 4
	other := makeEvent(8)
	if err := s.Append(short, other, long); err != nil {
		t.Fatal(err)
	}
	st, err := s.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if st.Dropped != 1 || st.EventsAfter != 2 {
		t.Fatalf("compact stats: %+v, want 1 dropped / 2 kept", st)
	}
	got := collectAll(s)
	if len(got) != 2 {
		t.Fatalf("post-compact store has %d events", len(got))
	}
	// Survivor sits at the duplicate's first position, and is the long one.
	if !got[0].End.Equal(long.End) {
		t.Fatalf("survivor end = %v, want the superseding %v", got[0].End, long.End)
	}
	if got[1].Prefix != other.Prefix {
		t.Fatalf("unrelated event lost: %+v", got[1])
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	// Compaction is durable: reopen sees the merged state.
	r, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if n := r.Len(); n != 2 {
		t.Fatalf("reopen after compact: %d events, want 2", n)
	}
}

// TestCompactCrashLeftoversIgnored: a crash between the merged
// segment's atomic commit (renamed over the run's highest member) and
// the removal of the lower run members leaves both generations on
// disk. The v2 marker must make recovery skip (and remove) the stale
// members instead of double-indexing their events.
func TestCompactCrashLeftoversIgnored(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{MaxSegmentBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	dup := makeEvent(3)
	dup.End = dup.End.Add(time.Hour)
	for i := 0; i < 20; i++ {
		if err := s.Append(makeEvent(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Append(dup); err != nil {
		t.Fatal(err)
	}
	st, err := s.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if st.Dropped != 1 || st.EventsAfter != 20 {
		t.Fatalf("compact: %+v", st)
	}
	if len(st.Merged) < 2 {
		t.Fatalf("expected a multi-segment run, merged only %v", st.Merged)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}

	// Resurrect a stale lower run member, as an interrupted cleanup
	// would leave behind: the merged segment's marker names it.
	stalePath := filepath.Join(dir, segName(st.Merged[0]))
	f, err := createSegment(stalePath)
	if err != nil {
		t.Fatal(err)
	}
	var buf []byte
	for i := 0; i < 5; i++ {
		buf = appendRecord(buf[:0], EncodeEvent(nil, makeEvent(i)))
		if _, err := f.Write(buf); err != nil {
			t.Fatal(err)
		}
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}

	r, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if n := r.Len(); n != 20 {
		t.Fatalf("reopen indexed %d events, want 20 (stale generation must be skipped)", n)
	}
	if err := r.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(stalePath); !os.IsNotExist(err) {
		t.Fatalf("stale segment not cleaned up on open: %v", err)
	}
}

// TestCompactConcurrentAppendsSurvive: events appended while a
// compaction's merge phase runs land in a segment the marker does not
// supersede, and survive both the swap and a reopen.
func TestCompactConcurrentAppendsSurvive(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{MaxSegmentBytes: 1024})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := s.Append(makeEvent(i)); err != nil {
			t.Fatal(err)
		}
	}
	done := make(chan error, 1)
	go func() {
		_, err := s.Compact()
		done <- err
	}()
	for i := 100; i < 160; i++ {
		if err := s.Append(makeEvent(i)); err != nil {
			t.Fatal(err)
		}
	}
	if err := <-done; err != nil {
		t.Fatal(err)
	}
	if n := s.Len(); n != 160 {
		t.Fatalf("store holds %d events after concurrent compact+append, want 160", n)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if n := r.Len(); n != 160 {
		t.Fatalf("reopen holds %d events, want 160", n)
	}
}

func TestBackgroundCompactorMergesSegments(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{MaxSegmentBytes: 1024, CompactSegments: 3})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 400; i++ {
		if err := s.Append(makeEvent(i)); err != nil {
			t.Fatal(err)
		}
	}
	deadline := time.Now().Add(5 * time.Second)
	for {
		if st := s.Stats(); st.Segments <= 4 {
			break
		}
		if time.Now().After(deadline) {
			t.Fatalf("background compactor never merged: %+v", s.Stats())
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if n := r.Len(); n != 400 {
		t.Fatalf("after background compaction: %d events, want 400", n)
	}
}

func TestQueryAgainstNaiveFilter(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	var events []*core.Event
	for i := 0; i < 500; i++ {
		events = append(events, makeEvent(i))
	}
	if err := s.Append(events...); err != nil {
		t.Fatal(err)
	}

	filters := []Filter{
		{},
		{User: 7003},
		{Community: bgp.MakeCommunity(103, 666)},
		{Provider: &core.ProviderRef{Kind: core.ProviderAS, ASN: 102}},
		{Provider: &core.ProviderRef{Kind: core.ProviderIXP, IXPID: 1}},
		{From: testEpoch.Add(24 * time.Hour), To: testEpoch.Add(48 * time.Hour)},
		{From: testEpoch.Add(24 * time.Hour)},
		{To: testEpoch.Add(24 * time.Hour)},
		{MinDuration: 40 * time.Minute},
		{MaxDuration: 30 * time.Minute},
		{Prefix: events[17].Prefix, Mode: PrefixExact},
		{Prefix: netip.MustParsePrefix("10.2.0.0/16"), Mode: PrefixCovered},
		{Prefix: netip.PrefixFrom(events[17].Prefix.Addr(), 32), Mode: PrefixLPM},
		{Prefix: netip.PrefixFrom(events[17].Prefix.Addr(), 32), Mode: PrefixCovering},
		{User: 7003, MinDuration: 30 * time.Minute, From: testEpoch, To: testEpoch.Add(240 * time.Hour)},
		{User: 424242}, // no match
	}
	for fi, f := range filters {
		res := s.Query(f)
		var want []*core.Event
		for _, ev := range events {
			if naiveMatch(ev, f, s) {
				want = append(want, ev)
			}
		}
		if res.Total != len(want) || len(res.Events) != len(want) {
			t.Fatalf("filter %d (%+v): got %d/%d events, want %d", fi, f, len(res.Events), res.Total, len(want))
		}
		for i := range want {
			if res.Events[i] != want[i] {
				t.Fatalf("filter %d: result %d out of order", fi, i)
			}
		}
		if f.User != 0 || f.Community != 0 || f.Provider != nil || f.Prefix.IsValid() {
			if res.Scanned > len(events)/2 {
				t.Fatalf("filter %d: indexed query scanned %d of %d events", fi, res.Scanned, len(events))
			}
		}
	}

	// Limit caps Events but not Total.
	res := s.Query(Filter{Limit: 5})
	if len(res.Events) != 5 || res.Total != len(events) {
		t.Fatalf("limit: got %d events / total %d", len(res.Events), res.Total)
	}
}

// naiveMatch re-implements the filter semantics sans indexes. LPM needs
// the trie's answer for "the longest stored prefix", so it consults the
// store's trie only to find that prefix, then compares plainly.
func naiveMatch(ev *core.Event, f Filter, s *Store) bool {
	if !f.From.IsZero() && ev.End.Before(f.From) {
		return false
	}
	if !f.To.IsZero() && ev.Start.After(f.To) {
		return false
	}
	if f.Prefix.IsValid() {
		q := f.Prefix.Masked()
		p := ev.Prefix.Masked()
		switch f.Mode {
		case PrefixExact:
			if p != q {
				return false
			}
		case PrefixCovered:
			if !(p.Bits() >= q.Bits() && q.Contains(p.Addr())) {
				return false
			}
		case PrefixCovering:
			if !(p.Bits() <= q.Bits() && p.Contains(q.Addr())) {
				return false
			}
		case PrefixLPM:
			lpm, _, ok := s.trie.LPM(q)
			if !ok || p != lpm {
				return false
			}
		}
	}
	if f.User != 0 && !ev.Users[f.User] {
		return false
	}
	if f.Provider != nil && !ev.Providers[*f.Provider] {
		return false
	}
	if f.Community != 0 && !ev.Communities[f.Community] {
		return false
	}
	if f.MinDuration > 0 && ev.Duration() < f.MinDuration {
		return false
	}
	if f.MaxDuration > 0 && ev.Duration() > f.MaxDuration {
		return false
	}
	return true
}
