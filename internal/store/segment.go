package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Segment file layout:
//
//	8-byte magic "BHSTSEG\x01"
//	repeated records: u32le payload length | u32le CRC-32 (IEEE) | payload
//
// Records are appended in event-closing order. A crash can leave a
// partial record at the tail of the newest segment only; recovery scans
// forward and truncates at the last record whose length and checksum
// verify. Compaction writes a merged segment to a temporary file and
// commits it with an atomic rename, so readers never observe a
// half-written segment under its final name.

var segMagic = []byte("BHSTSEG\x01")

// markerPayload is the compaction-marker record: a merged segment's
// first record. It declares that every segment with a lower sequence
// number is superseded, so a crash between the merged segment's
// atomic-rename commit and the removal of the old segments cannot
// double-index events on the next open — recovery skips (and removes)
// the leftovers. Event payloads always start with codecVersion, so the
// marker byte can never collide with one.
var markerPayload = []byte{0xFF}

// isMarker reports whether a record payload is the compaction marker.
func isMarker(rec []byte) bool { return len(rec) == 1 && rec[0] == 0xFF }

// maxRecordBytes bounds a single record so a corrupt length field can't
// trigger a huge allocation during recovery.
const maxRecordBytes = 64 << 20

const recordHeaderBytes = 8

// segName renders the canonical segment file name for a sequence number.
func segName(seq uint64) string {
	return fmt.Sprintf("seg-%08d.log", seq)
}

// parseSegName extracts the sequence number from a segment file name.
func parseSegName(name string) (uint64, bool) {
	rest, ok := strings.CutPrefix(name, "seg-")
	if !ok {
		return 0, false
	}
	rest, ok = strings.CutSuffix(rest, ".log")
	if !ok {
		return 0, false
	}
	seq, err := strconv.ParseUint(rest, 10, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// listSegments returns the segment files in dir in ascending sequence
// order. Leftover temporary files (a compaction interrupted before its
// rename) are removed unless readOnly.
func listSegments(dir string, readOnly bool) ([]segFile, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []segFile
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		if strings.HasPrefix(name, "seg-") && strings.Contains(name, ".tmp") {
			if !readOnly {
				os.Remove(filepath.Join(dir, name))
			}
			continue
		}
		if seq, ok := parseSegName(name); ok {
			segs = append(segs, segFile{seq: seq, path: filepath.Join(dir, name)})
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].seq < segs[j].seq })
	return segs, nil
}

type segFile struct {
	seq  uint64
	path string
}

// appendRecord appends one length-prefixed, checksummed record.
func appendRecord(buf []byte, payload []byte) []byte {
	var hdr [recordHeaderBytes]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// scanResult is what readSegment recovered from one segment file.
type scanResult struct {
	// records holds each valid payload, in file order.
	records [][]byte
	// validLen is the byte offset just past the last valid record (or
	// past the magic for an empty segment): the truncation point for
	// crash recovery.
	validLen int64
	// truncated reports whether the file had garbage past validLen — a
	// torn record from a crash, or corruption.
	truncated bool
}

// errNotSegment marks a file whose magic is short or wrong — either
// foreign data, or a newest segment torn by a crash between its
// creation and first sync (which Open recovers from).
var errNotSegment = errors.New("store: not a segment file (bad magic)")

// readSegment reads every intact record of a segment. Malformed data —
// short header, absurd length, checksum mismatch, torn payload — ends
// the scan at the last valid record instead of failing the open: the
// tail of the newest segment is exactly what a crash tears. Hard I/O
// errors are returned as errors; a missing magic returns errNotSegment
// so the caller can distinguish a torn newest segment from corruption.
func readSegment(path string) (scanResult, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return scanResult{}, err
	}
	if len(data) < len(segMagic) || string(data[:len(segMagic)]) != string(segMagic) {
		return scanResult{}, fmt.Errorf("%w: %s", errNotSegment, path)
	}
	res := scanResult{validLen: int64(len(segMagic))}
	off := len(segMagic)
	for off < len(data) {
		if len(data)-off < recordHeaderBytes {
			res.truncated = true
			break
		}
		n := int(binary.LittleEndian.Uint32(data[off : off+4]))
		sum := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if n > maxRecordBytes || len(data)-off-recordHeaderBytes < n {
			res.truncated = true
			break
		}
		payload := data[off+recordHeaderBytes : off+recordHeaderBytes+n]
		if crc32.ChecksumIEEE(payload) != sum {
			res.truncated = true
			break
		}
		res.records = append(res.records, payload)
		off += recordHeaderBytes + n
		res.validLen = int64(off)
	}
	return res, nil
}

// createSegment creates a fresh segment file with its magic written and
// synced, open for appending.
func createSegment(path string) (*os.File, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	if _, err := f.Write(segMagic); err != nil {
		f.Close()
		os.Remove(path)
		return nil, err
	}
	return f, nil
}

// writeSegmentAtomic writes a complete segment (magic + records) to a
// temporary file in dir, syncs it, and atomically renames it to path.
func writeSegmentAtomic(dir, path string, payloads [][]byte) (err error) {
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if _, err = tmp.Write(segMagic); err != nil {
		return err
	}
	var buf []byte
	for _, p := range payloads {
		buf = appendRecord(buf[:0], p)
		if _, err = tmp.Write(buf); err != nil {
			return err
		}
	}
	if err = tmp.Sync(); err != nil {
		return err
	}
	if err = tmp.Close(); err != nil {
		return err
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	return syncDir(dir)
}

// syncDir fsyncs a directory so renames and removals are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	// Some filesystems refuse fsync on directories; renames there are
	// as durable as they get.
	if errors.Is(err, io.EOF) || errors.Is(err, os.ErrInvalid) {
		return nil
	}
	return err
}
