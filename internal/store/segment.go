package store

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"
)

// Segment file layout:
//
//	8-byte magic "BHSTSEG\x01"
//	repeated records: u32le payload length | u32le CRC-32 (IEEE) | payload
//
// Records are appended in event-closing order. A crash can leave a
// partial record at the tail of the newest segment only; recovery scans
// forward and truncates at the last record whose length and checksum
// verify. Compaction writes a merged segment to a temporary file and
// commits it with an atomic rename, so readers never observe a
// half-written segment under its final name.

var segMagic = []byte("BHSTSEG\x01")

// Record kinds. Every record payload is dispatched on its first byte:
// event payloads start with a codec version (1 or 2), everything else uses
// high-byte tags that can never collide with a codec version.
const (
	kindMarkerV1  = 0xFF // legacy: every lower-seq segment is superseded
	kindMarkerV2  = 0xFE // explicit list of superseded segment seqs
	kindTombstone = 0xFD // DeletePrefix erasure record
)

// isMarkerV1 reports whether a record payload is the legacy
// merge-everything compaction marker: it declares every segment with a
// lower sequence number superseded. Kept for stores written before
// tiered compaction; new merges always write the v2 marker.
func isMarkerV1(rec []byte) bool { return len(rec) == 1 && rec[0] == kindMarkerV1 }

// isMarkerV2 reports whether a record payload is a tiered compaction
// marker, the first record of a merged segment: it lists exactly the
// segment sequence numbers the merge superseded, so a crash between the
// merged segment's atomic-rename commit and the removal of the old run
// members cannot double-index events on the next open — recovery skips
// (and removes) precisely the listed leftovers, leaving every other
// segment alone.
func isMarkerV2(rec []byte) bool { return len(rec) >= 1 && rec[0] == kindMarkerV2 }

// isTombstone reports whether a record payload is a DeletePrefix
// tombstone.
func isTombstone(rec []byte) bool { return len(rec) >= 1 && rec[0] == kindTombstone }

// isMarker reports whether a record payload is a compaction marker of
// either version (records that must not be decoded as events).
func isMarker(rec []byte) bool { return isMarkerV1(rec) || isMarkerV2(rec) }

// appendMarkerV2 encodes a tiered compaction marker superseding seqs.
func appendMarkerV2(buf []byte, seqs []uint64) []byte {
	buf = append(buf, kindMarkerV2)
	buf = binary.AppendUvarint(buf, uint64(len(seqs)))
	for _, q := range seqs {
		buf = binary.AppendUvarint(buf, q)
	}
	return buf
}

// markerV2Seqs decodes the superseded sequence list of a v2 marker.
func markerV2Seqs(rec []byte) ([]uint64, error) {
	d := rec[1:]
	n, w := binary.Uvarint(d)
	if w <= 0 || n > uint64(len(d)) {
		return nil, errors.New("store: malformed compaction marker")
	}
	d = d[w:]
	seqs := make([]uint64, 0, n)
	for i := uint64(0); i < n; i++ {
		q, w := binary.Uvarint(d)
		if w <= 0 {
			return nil, errors.New("store: malformed compaction marker")
		}
		d = d[w:]
		seqs = append(seqs, q)
	}
	return seqs, nil
}

// maxRecordBytes bounds a single record so a corrupt length field can't
// trigger a huge allocation during recovery.
const maxRecordBytes = 64 << 20

const recordHeaderBytes = 8

// segName renders the canonical segment file name for a sequence number.
func segName(seq uint64) string {
	return fmt.Sprintf("seg-%08d.log", seq)
}

// parseSegName extracts the sequence number from a segment file name.
func parseSegName(name string) (uint64, bool) {
	rest, ok := strings.CutPrefix(name, "seg-")
	if !ok {
		return 0, false
	}
	rest, ok = strings.CutSuffix(rest, ".log")
	if !ok {
		return 0, false
	}
	seq, err := strconv.ParseUint(rest, 10, 64)
	if err != nil {
		return 0, false
	}
	return seq, true
}

// listSegments returns the segment files in dir in ascending sequence
// order. Leftover temporary files (a compaction interrupted before its
// rename) are removed unless readOnly.
func listSegments(dir string, readOnly bool) ([]segFile, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []segFile
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		if strings.HasPrefix(name, "seg-") && strings.Contains(name, ".tmp") {
			if !readOnly {
				os.Remove(filepath.Join(dir, name))
			}
			continue
		}
		if seq, ok := parseSegName(name); ok {
			segs = append(segs, segFile{seq: seq, path: filepath.Join(dir, name)})
		}
	}
	sort.Slice(segs, func(i, j int) bool { return segs[i].seq < segs[j].seq })
	return segs, nil
}

type segFile struct {
	seq  uint64
	path string

	// Metadata the store maintains for sealed segments (zero until open
	// or seal fills it in): valid byte length, the earliest event start
	// (noMinStart when the segment holds no event records), whether any
	// event records exist, and how many of them are dead — tombstoned
	// or superseded in memory but still physically on disk, which makes
	// the segment a rewrite candidate for the next compaction.
	size         int64
	minStartNano int64
	hasEvents    bool
	dead         int

	// Lazy-open state (Options.ColdOpen): a sealed segment whose fresh
	// sidecar let open skip decoding it. base/n name the contiguous
	// ordinal block reserved for its live events; sum keeps the summary
	// for query pruning until the first touching query hydrates the
	// segment and clears lazy.
	lazy bool
	sum  *segSummary
	base int32
	n    int32
}

// appendRecord appends one length-prefixed, checksummed record.
func appendRecord(buf []byte, payload []byte) []byte {
	var hdr [recordHeaderBytes]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(payload))
	buf = append(buf, hdr[:]...)
	return append(buf, payload...)
}

// scanResult is what readSegment recovered from one segment file.
type scanResult struct {
	// records holds each valid payload, in file order.
	records [][]byte
	// validLen is the byte offset just past the last valid record (or
	// past the magic for an empty segment): the truncation point for
	// crash recovery.
	validLen int64
	// truncated reports whether the file had garbage past validLen — a
	// torn record from a crash, or corruption.
	truncated bool
}

// errNotSegment marks a file whose magic is short or wrong — either
// foreign data, or a newest segment torn by a crash between its
// creation and first sync (which Open recovers from).
var errNotSegment = errors.New("store: not a segment file (bad magic)")

// readSegment reads every intact record of a segment. Malformed data —
// short header, absurd length, checksum mismatch, torn payload — ends
// the scan at the last valid record instead of failing the open: the
// tail of the newest segment is exactly what a crash tears. Hard I/O
// errors are returned as errors; a missing magic returns errNotSegment
// so the caller can distinguish a torn newest segment from corruption.
func readSegment(path string) (scanResult, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return scanResult{}, err
	}
	return scanSegment(data, path)
}

// scanSegment runs readSegment's record recovery over bytes already in
// hand — a buffered read or an mmap'd view. The returned records alias
// data; when data is a mapping, every record must be decoded (or
// copied) before the mapping is released.
func scanSegment(data []byte, path string) (scanResult, error) {
	if len(data) < len(segMagic) || string(data[:len(segMagic)]) != string(segMagic) {
		return scanResult{}, fmt.Errorf("%w: %s", errNotSegment, path)
	}
	res := scanResult{validLen: int64(len(segMagic))}
	off := len(segMagic)
	for off < len(data) {
		if len(data)-off < recordHeaderBytes {
			res.truncated = true
			break
		}
		n := int(binary.LittleEndian.Uint32(data[off : off+4]))
		sum := binary.LittleEndian.Uint32(data[off+4 : off+8])
		if n > maxRecordBytes || len(data)-off-recordHeaderBytes < n {
			res.truncated = true
			break
		}
		payload := data[off+recordHeaderBytes : off+recordHeaderBytes+n]
		if crc32.ChecksumIEEE(payload) != sum {
			res.truncated = true
			break
		}
		res.records = append(res.records, payload)
		off += recordHeaderBytes + n
		res.validLen = int64(off)
	}
	return res, nil
}

// createSegment creates a fresh segment file with its magic written and
// synced, open for appending.
func createSegment(path string) (*os.File, error) {
	f, err := os.OpenFile(path, os.O_CREATE|os.O_EXCL|os.O_WRONLY, 0o644)
	if err != nil {
		return nil, err
	}
	if _, err := f.Write(segMagic); err != nil {
		f.Close()
		os.Remove(path)
		return nil, err
	}
	return f, nil
}

// writeSegmentAtomic writes a complete segment (magic + records) to a
// temporary file in dir, syncs it, and atomically renames it to path.
func writeSegmentAtomic(dir, path string, payloads [][]byte) (err error) {
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	defer func() {
		if err != nil {
			tmp.Close()
			os.Remove(tmp.Name())
		}
	}()
	if _, err = tmp.Write(segMagic); err != nil {
		return err
	}
	var buf []byte
	for _, p := range payloads {
		buf = appendRecord(buf[:0], p)
		if _, err = tmp.Write(buf); err != nil {
			return err
		}
	}
	if err = tmp.Sync(); err != nil {
		return err
	}
	if err = tmp.Close(); err != nil {
		return err
	}
	if segmentCommitHook != nil {
		segmentCommitHook()
	}
	if err = os.Rename(tmp.Name(), path); err != nil {
		return err
	}
	return syncDir(dir)
}

// segmentCommitHook, when set (tests only), runs after a merged
// segment's temporary file is fully written and synced but before the
// atomic rename commits it — the crash-matrix tests snapshot the
// directory here to simulate a crash at the pre-commit point.
var segmentCommitHook func()

// syncDir fsyncs a directory so renames and removals are durable.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	err = d.Sync()
	if cerr := d.Close(); err == nil {
		err = cerr
	}
	// Some filesystems refuse fsync on directories; renames there are
	// as durable as they get.
	if errors.Is(err, io.EOF) || errors.Is(err, os.ErrInvalid) {
		return nil
	}
	return err
}
