package store

import (
	"bytes"
	"net/netip"
	"os"
	"path/filepath"
	"slices"
	"testing"
	"time"
)

// FuzzDecodeEvent: the codec must never panic on arbitrary input, and
// anything it does accept must re-encode to a canonical fixed point
// (encode→decode→encode is byte-identical).
func FuzzDecodeEvent(f *testing.F) {
	for i := 0; i < 10; i++ {
		f.Add(EncodeEvent(nil, makeEvent(i)))
	}
	f.Add([]byte{})
	f.Add([]byte{codecVersion})
	f.Add([]byte{kindMarkerV1})
	f.Add(appendMarkerV2(nil, []uint64{1, 2, 3}))
	f.Add(encodeTombstone(nil, Tombstone{Prefix: netip.MustParsePrefix("10.0.0.0/8"), UpTo: testEpoch}))
	truncated := EncodeEvent(nil, makeEvent(3))
	f.Add(truncated[:len(truncated)/2])
	f.Fuzz(func(t *testing.T, data []byte) {
		ev, err := DecodeEvent(data)
		if err != nil {
			return // rejected cleanly
		}
		enc := EncodeEvent(nil, ev)
		ev2, err := DecodeEvent(enc)
		if err != nil {
			t.Fatalf("canonical re-encoding does not decode: %v", err)
		}
		if !bytes.Equal(enc, EncodeEvent(nil, ev2)) {
			t.Fatal("canonical encoding is not a fixed point")
		}
	})
}

// FuzzRecoverSegment: a segment file with an arbitrary (torn, corrupt,
// or adversarial) body must reopen without panicking — recovering the
// intact prefix of the log or failing with a defined error — and a
// recovered store must stay appendable and reopen consistently.
func FuzzRecoverSegment(f *testing.F) {
	valid := slices.Clone(segMagic)
	for i := 0; i < 3; i++ {
		valid = appendRecord(valid, EncodeEvent(nil, makeEvent(i)))
	}
	f.Add(slices.Clone(valid))
	f.Add(valid[:len(valid)-5]) // torn tail mid-record
	corrupt := slices.Clone(valid)
	corrupt[len(corrupt)-3] ^= 0xFF // payload bit flip under the checksum
	f.Add(corrupt)
	f.Add(slices.Clone(segMagic))
	f.Add([]byte("BHS")) // shorter than the magic (crash before first sync)
	f.Add(appendRecord(slices.Clone(segMagic), appendMarkerV2(nil, []uint64{0, 1, 7})))
	f.Add(appendRecord(slices.Clone(segMagic),
		encodeTombstone(nil, Tombstone{Prefix: netip.MustParsePrefix("10.0.0.0/8")})))
	huge := slices.Clone(segMagic)
	huge = append(huge, 0xFF, 0xFF, 0xFF, 0x7F, 0, 0, 0, 0) // absurd length header
	f.Add(huge)

	f.Fuzz(func(t *testing.T, data []byte) {
		dir := t.TempDir()
		if err := os.WriteFile(filepath.Join(dir, segName(1)), data, 0o644); err != nil {
			t.Fatal(err)
		}
		s, err := Open(dir, Options{})
		if err != nil {
			return // defined failure; the point is no panic, no hang
		}
		ev := makeEvent(42)
		ev.Start = testEpoch.Add(100 * 365 * 24 * time.Hour) // clear of fuzzed tombstones' UpTo bounds where possible
		if err := s.Append(ev); err != nil {
			t.Fatalf("append after recovery: %v", err)
		}
		want := s.Len() // a fuzzed unbounded tombstone may legitimately swallow the append
		if err := s.Close(); err != nil {
			t.Fatalf("close after recovery: %v", err)
		}
		r, err := Open(dir, Options{})
		if err != nil {
			t.Fatalf("reopen of a recovered store failed: %v", err)
		}
		if got := r.Len(); got != want {
			t.Fatalf("reopen changed the event count: %d, want %d", got, want)
		}
		if err := r.Close(); err != nil {
			t.Fatal(err)
		}
	})
}
