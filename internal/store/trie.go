package store

import (
	"math/bits"
	"net/netip"
	"slices"
)

// Trie is a binary radix (patricia) trie over IP prefixes, keyed by the
// masked address bits and prefix length, with path compression: a node
// exists only where prefixes diverge or terminate. IPv4 and IPv6 live
// in separate subtries, so 192.0.2.0/24 and ::ffff:192.0.2.0/120 never
// alias. Each stored prefix carries a postings list of int32 ordinals
// (event indexes in the store). The zero value is an empty trie.
//
// Lookups answer the three longitudinal query shapes without scanning:
// Exact (this prefix), Covering / LPM (every stored prefix containing a
// query prefix, e.g. "which aggregates blackhole this /32"), and
// Covered (every stored prefix inside a query prefix, e.g. "all
// blackholed more-specifics of this /16").
type Trie struct {
	root4, root6 *tnode
	prefixes     int
}

type tnode struct {
	// key holds the node's prefix bits (4 bytes for IPv4, 16 for IPv6),
	// masked to plen; prefix is the same value in netip form.
	key    []byte
	plen   int
	prefix netip.Prefix
	// ords is the postings list for the prefix terminating here; nil for
	// pure branch nodes created by a split.
	ords  []int32
	child [2]*tnode
}

// keyBytes returns the address bytes in the family's native width.
func keyBytes(a netip.Addr) []byte {
	if a.Is4() {
		b := a.As4()
		return b[:]
	}
	b := a.As16()
	return b[:]
}

// bitAt returns bit i (0 = most significant) of key.
func bitAt(key []byte, i int) byte {
	return key[i>>3] >> (7 - i&7) & 1
}

// commonBits counts the leading bits shared by a and b, capped at max.
func commonBits(a, b []byte, max int) int {
	n := 0
	for i := 0; i < len(a) && i < len(b); i++ {
		x := a[i] ^ b[i]
		if x != 0 {
			n = i*8 + bits.LeadingZeros8(x)
			break
		}
		n = (i + 1) * 8
		if n >= max {
			break
		}
	}
	if n > max {
		n = max
	}
	return n
}

func (t *Trie) rootFor(p netip.Prefix) **tnode {
	if p.Addr().Is4() {
		return &t.root4
	}
	return &t.root6
}

// Len returns the number of distinct prefixes stored.
func (t *Trie) Len() int { return t.prefixes }

// Insert adds ord to the postings of p (masked).
func (t *Trie) Insert(p netip.Prefix, ord int32) {
	p = p.Masked()
	key := keyBytes(p.Addr())
	np := t.rootFor(p)
	for {
		n := *np
		if n == nil {
			*np = &tnode{key: key, plen: p.Bits(), prefix: p, ords: []int32{ord}}
			t.prefixes++
			return
		}
		c := commonBits(key, n.key, min(p.Bits(), n.plen))
		switch {
		case c == n.plen && c == p.Bits():
			// Same prefix. Sorted insert: hydrating a cold segment files
			// older ordinals after newer ones are already present, and
			// query results must come out in ordinal (append) order.
			if n.ords == nil {
				t.prefixes++
			}
			n.ords = insertOrd(n.ords, ord)
			return
		case c == n.plen:
			// n's prefix contains p: descend.
			np = &n.child[bitAt(key, n.plen)]
		case c == p.Bits():
			// p contains n's prefix: insert p above n.
			nn := &tnode{key: key, plen: p.Bits(), prefix: p, ords: []int32{ord}}
			nn.child[bitAt(n.key, p.Bits())] = n
			*np = nn
			t.prefixes++
			return
		default:
			// Diverge at bit c: split with a branch node.
			branchPrefix := netip.PrefixFrom(p.Addr(), c).Masked()
			branch := &tnode{key: keyBytes(branchPrefix.Addr()), plen: c, prefix: branchPrefix}
			branch.child[bitAt(n.key, c)] = n
			nn := &tnode{key: key, plen: p.Bits(), prefix: p, ords: []int32{ord}}
			branch.child[bitAt(key, c)] = nn
			*np = branch
			t.prefixes++
			return
		}
	}
}

// node returns the terminating node for p (masked), or nil.
func (t *Trie) node(p netip.Prefix) *tnode {
	p = p.Masked()
	key := keyBytes(p.Addr())
	n := *t.rootFor(p)
	for n != nil {
		c := commonBits(key, n.key, min(p.Bits(), n.plen))
		if c == n.plen && c == p.Bits() {
			return n
		}
		if c != n.plen || n.plen >= p.Bits() {
			return nil
		}
		n = n.child[bitAt(key, n.plen)]
	}
	return nil
}

// Remove deletes ord from the postings of p. When the last ordinal
// goes, the prefix no longer counts as stored (the node stays behind
// as a pure branch, which lookups already skip).
func (t *Trie) Remove(p netip.Prefix, ord int32) {
	n := t.node(p)
	if n == nil || n.ords == nil {
		return
	}
	for i, o := range n.ords {
		if o == ord {
			n.ords = append(n.ords[:i:i], n.ords[i+1:]...)
			if len(n.ords) == 0 {
				n.ords = nil
				t.prefixes--
			}
			return
		}
	}
}

// Replace swaps ordinal from for to in the postings of p, keeping the
// list sorted — compaction uses it to move a duplicate's surviving
// record to the key's first-appearance ordinal.
func (t *Trie) Replace(p netip.Prefix, from, to int32) {
	n := t.node(p)
	if n == nil || n.ords == nil {
		return
	}
	for i, o := range n.ords {
		if o == from {
			n.ords = append(n.ords[:i:i], n.ords[i+1:]...)
			break
		}
	}
	at, _ := slices.BinarySearch(n.ords, to)
	n.ords = slices.Insert(n.ords, at, to)
}

// Exact returns the postings list of p, or nil.
func (t *Trie) Exact(p netip.Prefix) []int32 {
	p = p.Masked()
	key := keyBytes(p.Addr())
	n := *t.rootFor(p)
	for n != nil {
		c := commonBits(key, n.key, min(p.Bits(), n.plen))
		if c == n.plen && c == p.Bits() {
			return n.ords
		}
		if c != n.plen || n.plen >= p.Bits() {
			return nil
		}
		n = n.child[bitAt(key, n.plen)]
	}
	return nil
}

// CoveringMatch is one stored prefix containing a query prefix.
type CoveringMatch struct {
	Prefix netip.Prefix
	Ords   []int32
}

// Covering returns every stored prefix containing p (including p
// itself), shortest first — the full chain of covering aggregates.
func (t *Trie) Covering(p netip.Prefix) []CoveringMatch {
	p = p.Masked()
	key := keyBytes(p.Addr())
	var out []CoveringMatch
	n := *t.rootFor(p)
	for n != nil {
		c := commonBits(key, n.key, min(p.Bits(), n.plen))
		if c < n.plen || n.plen > p.Bits() {
			break
		}
		if n.ords != nil {
			out = append(out, CoveringMatch{Prefix: n.prefix, Ords: n.ords})
		}
		if n.plen == p.Bits() {
			break
		}
		n = n.child[bitAt(key, n.plen)]
	}
	return out
}

// LPM returns the longest stored prefix containing p, with its
// postings; ok is false when no stored prefix covers p.
func (t *Trie) LPM(p netip.Prefix) (match netip.Prefix, ords []int32, ok bool) {
	cov := t.Covering(p)
	if len(cov) == 0 {
		return netip.Prefix{}, nil, false
	}
	last := cov[len(cov)-1]
	return last.Prefix, last.Ords, true
}

// Covered returns every stored prefix inside p (including p itself), in
// trie order (sorted by address bits, shorter first on ties).
func (t *Trie) Covered(p netip.Prefix) []CoveringMatch {
	p = p.Masked()
	key := keyBytes(p.Addr())
	var out []CoveringMatch
	n := *t.rootFor(p)
	for n != nil {
		c := commonBits(key, n.key, min(p.Bits(), n.plen))
		if n.plen >= p.Bits() {
			if c == p.Bits() {
				collect(n, &out)
			}
			return out
		}
		if c < n.plen {
			return out
		}
		n = n.child[bitAt(key, n.plen)]
	}
	return out
}

func collect(n *tnode, out *[]CoveringMatch) {
	if n == nil {
		return
	}
	if n.ords != nil {
		*out = append(*out, CoveringMatch{Prefix: n.prefix, Ords: n.ords})
	}
	collect(n.child[0], out)
	collect(n.child[1], out)
}

// Walk visits every stored prefix in trie order; returning false stops
// the walk.
func (t *Trie) Walk(fn func(netip.Prefix, []int32) bool) {
	walk(t.root4, fn)
	walk(t.root6, fn)
}

func walk(n *tnode, fn func(netip.Prefix, []int32) bool) bool {
	if n == nil {
		return true
	}
	if n.ords != nil && !fn(n.prefix, n.ords) {
		return false
	}
	return walk(n.child[0], fn) && walk(n.child[1], fn)
}
