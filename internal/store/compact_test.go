package store

import (
	"bytes"
	"net/netip"
	"testing"
	"time"

	"bgpblackholing/internal/bgp"
	"bgpblackholing/internal/core"
)

const testPartition = 30 * 24 * time.Hour

// partitionedEpoch is the first partition boundary at or after
// testEpoch. Partitions are absolute (floor-divided unix time), so day
// offsets from this base map cleanly onto testPartition-wide
// partitions: days 0–29 are partition 0, days 30–59 partition 1, …
var partitionedEpoch = time.Unix(0, (partitionKey(testEpoch.UnixNano(), testPartition)+1)*int64(testPartition)).UTC()

// makeEventOn is makeEvent with the event timed on a given day offset
// from partitionedEpoch, so tests can spread events across partitions.
func makeEventOn(i, day int) *core.Event {
	ev := makeEvent(i)
	ev.Start = partitionedEpoch.Add(time.Duration(day)*24*time.Hour + time.Duration(i%7)*time.Hour)
	ev.End = ev.Start.Add(time.Duration(1+i%9) * 11 * time.Minute)
	return ev
}

// propertyFilters is the query battery the compaction property tests
// replay: every prefix mode, time ranges, and the posting-list filters.
func propertyFilters(sample *core.Event) []Filter {
	host := netip.PrefixFrom(sample.Prefix.Addr(), sample.Prefix.Addr().BitLen())
	return []Filter{
		{},
		{Prefix: sample.Prefix, Mode: PrefixExact},
		{Prefix: host, Mode: PrefixLPM},
		{Prefix: netip.MustParsePrefix("10.0.0.0/8"), Mode: PrefixCovered},
		{Prefix: netip.MustParsePrefix("10.2.0.0/16"), Mode: PrefixCovered},
		{Prefix: host, Mode: PrefixCovering},
		{From: partitionedEpoch.Add(29 * 24 * time.Hour), To: partitionedEpoch.Add(35 * 24 * time.Hour)},
		{From: partitionedEpoch.Add(60 * 24 * time.Hour)},
		{To: partitionedEpoch.Add(31 * 24 * time.Hour)},
		{User: 7003},
		{Provider: &core.ProviderRef{Kind: core.ProviderAS, ASN: 102}},
		{Community: bgp.MakeCommunity(103, 666)},
		{User: 7004, From: partitionedEpoch, To: partitionedEpoch.Add(90 * 24 * time.Hour), MinDuration: 20 * time.Minute},
	}
}

// resultBytes renders a query battery's results as raw event encodings,
// so "byte-identical" is literal.
func resultBytes(t *testing.T, s *Store, filters []Filter) [][][]byte {
	t.Helper()
	out := make([][][]byte, len(filters))
	for i, f := range filters {
		res := s.Query(f)
		out[i] = make([][]byte, len(res.Events))
		for j, ev := range res.Events {
			out[i][j] = EncodeEvent(nil, ev)
		}
	}
	return out
}

func assertSameResults(t *testing.T, what string, want, got [][][]byte) {
	t.Helper()
	for i := range want {
		if len(want[i]) != len(got[i]) {
			t.Fatalf("%s: filter %d: %d events, want %d", what, i, len(got[i]), len(want[i]))
		}
		for j := range want[i] {
			if !bytes.Equal(want[i][j], got[i][j]) {
				t.Fatalf("%s: filter %d: event %d not byte-identical", what, i, j)
			}
		}
	}
}

// diskEvents decodes every event record physically present in dir's
// segment files, honouring compaction markers (superseded segments are
// exactly what recovery would skip).
func diskEvents(t *testing.T, dir string) []*core.Event {
	t.Helper()
	segs, err := listSegments(dir, true)
	if err != nil {
		t.Fatal(err)
	}
	superseded := map[uint64]bool{}
	scans := make([]scanResult, len(segs))
	for i, sf := range segs {
		sc, err := readSegment(sf.path)
		if err != nil {
			t.Fatalf("%s: %v", sf.path, err)
		}
		scans[i] = sc
		for _, rec := range sc.records {
			if isMarkerV1(rec) {
				for j := range segs {
					if segs[j].seq < sf.seq {
						superseded[segs[j].seq] = true
					}
				}
			}
			if isMarkerV2(rec) {
				listed, err := markerV2Seqs(rec)
				if err != nil {
					t.Fatal(err)
				}
				for _, q := range listed {
					superseded[q] = true
				}
			}
		}
	}
	var out []*core.Event
	for i, sf := range segs {
		if superseded[sf.seq] {
			continue
		}
		for _, rec := range scans[i].records {
			if isMarker(rec) || isTombstone(rec) {
				continue
			}
			ev, err := DecodeEvent(rec)
			if err != nil {
				t.Fatalf("%s: %v", sf.path, err)
			}
			out = append(out, ev)
		}
	}
	return out
}

// TestTieredCompactionQueryIdentical is the acceptance property test:
// a store spanning three time partitions with mixed segment sizes
// answers every query mode byte-identically before and after a tiered
// compaction — in process and across a reopen — while the size-ratio
// policy provably skips the cold, already-merged segment.
func TestTieredCompactionQueryIdentical(t *testing.T) {
	dir := t.TempDir()
	pol := Policy{Partition: testPartition, SizeRatio: 4, MinRun: 2}
	opts := Options{MaxSegmentBytes: 2048, Policy: pol}
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}

	// Partition 0: many small segments, then merged into one big cold
	// segment (huge ratio = merge whatever is sealed).
	var sample *core.Event
	for i := 0; i < 120; i++ {
		ev := makeEventOn(i, i%6)
		if i == 17 {
			sample = ev
		}
		if err := s.Append(ev); err != nil {
			t.Fatal(err)
		}
	}
	warm, err := s.CompactWith(Policy{Partition: testPartition, SizeRatio: 1e9, MinRun: 2})
	if err != nil {
		t.Fatal(err)
	}
	if len(warm.Merged) < 2 {
		t.Fatalf("setup merge touched %v, wanted several segments", warm.Merged)
	}
	coldSeq := warm.Merged[len(warm.Merged)-1] // the merged segment keeps the run's highest seq

	// Partitions 1 and 2: fresh small segments on each side of the
	// partition boundary; the roll keeps them partition-pure.
	for i := 120; i < 180; i++ {
		if err := s.Append(makeEventOn(i, 30+i%4)); err != nil {
			t.Fatal(err)
		}
	}
	for i := 180; i < 240; i++ {
		if err := s.Append(makeEventOn(i, 60+i%4)); err != nil {
			t.Fatal(err)
		}
	}

	filters := propertyFilters(sample)
	before := resultBytes(t, s, filters)
	if len(before[0]) != 240 {
		t.Fatalf("full scan sees %d events, want 240", len(before[0]))
	}

	stats, err := s.CompactWith(pol)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Partitions != 3 {
		t.Fatalf("Partitions = %d, want 3", stats.Partitions)
	}
	if len(stats.Merged) == 0 {
		t.Fatal("tiered pass merged nothing; wanted the small fresh segments merged")
	}
	skipped := false
	for _, q := range stats.Skipped {
		if q == coldSeq {
			skipped = true
		}
	}
	if !skipped {
		t.Fatalf("cold segment %d not in Skipped %v (Merged %v)", coldSeq, stats.Skipped, stats.Merged)
	}
	for _, q := range stats.Merged {
		if q == coldSeq {
			t.Fatalf("cold segment %d was rewritten by the tiered pass", coldSeq)
		}
	}

	assertSameResults(t, "after tiered compaction", before, resultBytes(t, s, filters))

	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	assertSameResults(t, "after reopen", before, resultBytes(t, r, filters))
}

// TestTieredCompactionPartitionIsolation: merges never combine
// segments from different time partitions.
func TestTieredCompactionPartitionIsolation(t *testing.T) {
	dir := t.TempDir()
	pol := Policy{Partition: testPartition, SizeRatio: 1e9, MinRun: 2}
	s, err := Open(dir, Options{MaxSegmentBytes: 1024, Policy: pol})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 60; i++ {
		if err := s.Append(makeEventOn(i, (i/20)*30)); err != nil { // 3 partitions
			t.Fatal(err)
		}
	}
	st := s.Stats()
	stats, err := s.CompactWith(pol)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Partitions != 3 {
		t.Fatalf("Partitions = %d, want 3", stats.Partitions)
	}
	// With even a boundless size ratio, three partitions can never end
	// up in fewer than three segments (plus the active one).
	if after := s.Stats(); after.Segments < 4 && st.Segments >= 4 {
		t.Fatalf("compaction collapsed partitions: %d segments (was %d)", after.Segments, st.Segments)
	}
	// Every merged segment must hold a single partition's events.
	for _, sf := range s.sealed {
		var pk int64
		seen := false
		for ord, ev := range s.events {
			if ev == nil || s.eventSeg[ord] != sf.seq {
				continue
			}
			k := partitionKey(ev.Start.UTC().UnixNano(), pol.Partition)
			if seen && k != pk {
				t.Fatalf("segment %d mixes partitions %d and %d", sf.seq, pk, k)
			}
			pk, seen = k, true
		}
	}
}

// TestDeletePrefixImmediateAndPhysical: DeletePrefix hides a prefix's
// history from queries at once, and the next compaction of its
// partition removes the bytes from disk.
func TestDeletePrefixImmediateAndPhysical(t *testing.T) {
	dir := t.TempDir()
	pol := Policy{Partition: testPartition, SizeRatio: 4, MinRun: 2}
	opts := Options{MaxSegmentBytes: 1024, Policy: pol}
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		if err := s.Append(makeEventOn(i, i%5)); err != nil {
			t.Fatal(err)
		}
	}
	// Roll into a new partition so every partition-0 segment is sealed.
	if err := s.Append(makeEventOn(100, 40)); err != nil {
		t.Fatal(err)
	}

	target := netip.MustParsePrefix("10.2.0.0/16")
	covered := s.Query(Filter{Prefix: target, Mode: PrefixCovered})
	if covered.Total == 0 {
		t.Fatal("setup: no events under the target prefix")
	}
	victim := covered.Events[0]
	total := s.Len()

	n, err := s.DeletePrefix(target, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	if n != covered.Total {
		t.Fatalf("DeletePrefix erased %d events, want %d", n, covered.Total)
	}

	// Absent from every query shape immediately.
	if res := s.Query(Filter{Prefix: target, Mode: PrefixCovered}); res.Total != 0 {
		t.Fatalf("covered query still sees %d events", res.Total)
	}
	if res := s.Query(Filter{Prefix: victim.Prefix, Mode: PrefixExact}); res.Total != 0 {
		t.Fatalf("exact query still sees %d events", res.Total)
	}
	host := netip.PrefixFrom(victim.Prefix.Addr(), victim.Prefix.Addr().BitLen())
	if _, _, ok := s.trie.LPM(host); ok {
		t.Fatal("trie still resolves the erased prefix")
	}
	if res := s.Query(Filter{}); res.Total != total-n {
		t.Fatalf("full scan sees %d events, want %d", res.Total, total-n)
	}
	for u := range victim.Users {
		for _, ev := range s.Query(Filter{User: u}).Events {
			if target.Contains(ev.Prefix.Addr()) && target.Bits() <= ev.Prefix.Bits() {
				t.Fatalf("user posting still reaches erased event %v", ev.Prefix)
			}
		}
	}
	if st := s.Stats(); st.Tombstones != 1 || st.PendingErasure != n {
		t.Fatalf("stats after delete: %+v (want 1 tombstone, %d pending)", st, n)
	}

	// Physical erasure at the partition's next compaction.
	stats, err := s.CompactWith(pol)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Erased < n {
		t.Fatalf("compaction erased %d dead records, want >= %d", stats.Erased, n)
	}
	for _, ev := range diskEvents(t, dir) {
		if target.Contains(ev.Prefix.Addr()) && target.Bits() <= ev.Prefix.Bits() {
			t.Fatalf("erased event %v still on disk", ev.Prefix)
		}
	}

	// An appended event the tombstone covers stays invisible. Its
	// record lands in the active segment — which the next tiered pass
	// must seal and rewrite (the dead-record escape hatch), so an
	// explicit "compact now" admin pass really purges the disk.
	old := makeEventOn(300, 2)
	old.Prefix = netip.MustParsePrefix("10.2.99.0/24")
	if err := s.Append(old); err != nil {
		t.Fatal(err)
	}
	if res := s.Query(Filter{Prefix: target, Mode: PrefixCovered}); res.Total != 0 {
		t.Fatalf("tombstone did not cover a late append: %d events", res.Total)
	}
	if _, err := s.CompactWith(pol); err != nil {
		t.Fatal(err)
	}
	for _, ev := range diskEvents(t, dir) {
		if target.Contains(ev.Prefix.Addr()) && target.Bits() <= ev.Prefix.Bits() {
			t.Fatalf("dead active-segment record %v survived an explicit tiered pass", ev.Prefix)
		}
	}

	// Erasure and the tombstone survive a reopen.
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if res := r.Query(Filter{Prefix: target, Mode: PrefixCovered}); res.Total != 0 {
		t.Fatalf("reopen resurrected %d erased events", res.Total)
	}
	if st := r.Stats(); st.Tombstones != 1 {
		t.Fatalf("tombstone lost on reopen: %+v", st)
	}
}

// TestDeletePrefixUpToBound: a time-bounded tombstone erases only the
// history ending at or before the bound.
func TestDeletePrefixUpToBound(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	early := makeEventOn(7, 0)
	late := makeEventOn(7, 10)
	late.Start = late.Start.Add(time.Minute) // distinct dupKey
	if err := s.Append(early, late); err != nil {
		t.Fatal(err)
	}
	upTo := partitionedEpoch.Add(5 * 24 * time.Hour)
	n, err := s.DeletePrefix(early.Prefix, upTo)
	if err != nil {
		t.Fatal(err)
	}
	if n != 1 {
		t.Fatalf("erased %d events, want 1 (only the early one)", n)
	}
	res := s.Query(Filter{Prefix: early.Prefix, Mode: PrefixExact})
	if res.Total != 1 || !res.Events[0].End.Equal(late.End) {
		t.Fatalf("bounded delete kept wrong events: %+v", res)
	}
}

// TestTombstoneSurvivesRepeatedCompaction: the tombstone's segment
// attribution must follow it into each merged segment — a second
// compaction re-emits it again instead of dropping the only copy
// (regression: a stale tombSeg lost the record at the second merge,
// resurrecting GDPR-erased data on reopen).
func TestTombstoneSurvivesRepeatedCompaction(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	target := netip.MustParsePrefix("10.3.0.0/16")
	for round := 0; round < 3; round++ {
		for i := 0; i < 10; i++ {
			if err := s.Append(makeEvent(100*round + i)); err != nil {
				t.Fatal(err)
			}
		}
		if round == 0 {
			if _, err := s.DeletePrefix(target, time.Time{}); err != nil {
				t.Fatal(err)
			}
		}
		if _, err := s.Compact(); err != nil {
			t.Fatal(err)
		}
		if st := s.Stats(); st.Tombstones != 1 {
			t.Fatalf("round %d: tombstone count %d, want 1", round, st.Tombstones)
		}
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if st := r.Stats(); st.Tombstones != 1 {
		t.Fatalf("tombstone lost after repeated compactions: %+v", st)
	}
	// Still in force against an old matching event.
	old := makeEvent(3)
	old.Prefix = netip.MustParsePrefix("10.3.55.0/24")
	if err := r.Append(old); err != nil {
		t.Fatal(err)
	}
	if res := r.Query(Filter{Prefix: target, Mode: PrefixCovered}); res.Total != 0 {
		t.Fatalf("tombstone no longer honored after repeated compactions: %d events", res.Total)
	}
}

// TestTombstoneSurvivesMergeOfItsSegment: when the segment holding a
// tombstone record merges, the tombstone is re-emitted into the merged
// segment, so it stays in force after reopen.
func TestTombstoneSurvivesMergeOfItsSegment(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 30; i++ {
		if err := s.Append(makeEvent(i)); err != nil {
			t.Fatal(err)
		}
	}
	target := netip.MustParsePrefix("10.3.0.0/16")
	if _, err := s.DeletePrefix(target, time.Time{}); err != nil {
		t.Fatal(err)
	}
	// Merge everything: the tombstone's segment is part of the run.
	if _, err := s.Compact(); err != nil {
		t.Fatal(err)
	}
	if err := s.Close(); err != nil {
		t.Fatal(err)
	}
	r, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if st := r.Stats(); st.Tombstones != 1 {
		t.Fatalf("tombstone lost through merge+reopen: %+v", st)
	}
	// Still in force: a matching old event stays invisible.
	old := makeEvent(3)
	old.Prefix = netip.MustParsePrefix("10.3.77.0/24")
	if err := r.Append(old); err != nil {
		t.Fatal(err)
	}
	if res := r.Query(Filter{Prefix: target, Mode: PrefixCovered}); res.Total != 0 {
		t.Fatalf("tombstone not honored after merge+reopen: %d events", res.Total)
	}
}
