// Package store is the persistent blackholing event store: an
// append-only, segmented, checksummed binary log of closed events with
// atomic-rename commits and crash recovery, plus in-memory indexes —
// a binary radix (patricia) trie over announced prefixes, time-bucket
// postings, and per-user / per-provider / per-community postings —
// rebuilt on open, so longitudinal queries never replay raw BGP data.
//
// The store is single-writer, multi-reader: one process appends (the
// Detector sink), any number of goroutines query concurrently. A
// tiered compactor (see compact.go) merges runs of similar-sized
// segments within time partitions, drops superseded flush duplicates
// (the same blackholing closed once artificially by an end-of-window
// flush and again, longer, by a later replay), and physically erases
// tombstoned history (DeletePrefix).
package store

import (
	"encoding/binary"
	"fmt"
	"net/netip"
	"slices"
	"sort"
	"time"

	"bgpblackholing/internal/bgp"
	"bgpblackholing/internal/collector"
	"bgpblackholing/internal/core"
)

// codecVersion is the record payload format version; bump on any layout
// change. Decoding rejects unknown versions rather than guessing.
// Version 2 prepends the event's global closing sequence number
// (core.Event.Seq); version 1 is the pre-seq layout, still written for
// unstamped events so hand-built stores and old goldens stay
// byte-stable, and still decoded (Seq = 0).
const (
	codecVersion    = 1
	codecVersionSeq = 2
)

// EncodeEvent appends the canonical binary encoding of ev to buf and
// returns the extended buffer. The encoding is deterministic: map keys
// are sorted, times are UTC nanoseconds, identical events encode to
// identical bytes (the round-trip tests compare raw encodings).
func EncodeEvent(buf []byte, ev *core.Event) []byte {
	if ev.Seq != 0 {
		buf = append(buf, codecVersionSeq)
		buf = binary.AppendUvarint(buf, ev.Seq)
	} else {
		buf = append(buf, codecVersion)
	}
	buf = appendPrefix(buf, ev.Prefix)
	buf = binary.AppendVarint(buf, ev.Start.UTC().UnixNano())
	buf = binary.AppendVarint(buf, ev.End.UTC().UnixNano())
	var flags byte
	if ev.StartUnknown {
		flags |= 1
	}
	if ev.DirectFeed {
		flags |= 2
	}
	if ev.SawNoExport {
		flags |= 4
	}
	buf = append(buf, flags)
	buf = binary.AppendUvarint(buf, uint64(ev.Detections))

	buf = appendProviderSet(buf, ev.Providers)
	buf = appendASNSet(buf, ev.Users)
	buf = appendCommunitySet(buf, ev.Communities)
	buf = appendPlatformSet(buf, ev.Platforms)
	buf = appendPeerSet(buf, ev.Peers)

	buf = binary.AppendUvarint(buf, uint64(len(ev.ASDistances)))
	for _, d := range ev.ASDistances {
		buf = binary.AppendVarint(buf, int64(d))
	}

	provs := sortedProviders(ev.ProviderDistances)
	buf = binary.AppendUvarint(buf, uint64(len(provs)))
	for _, pr := range provs {
		buf = appendProvider(buf, pr)
		buf = binary.AppendVarint(buf, int64(ev.ProviderDistances[pr]))
	}

	buf = appendProviderSet(buf, ev.DirectProviders)

	plats := sortedPlatformKeys(ev.ProvidersByPlatform)
	buf = binary.AppendUvarint(buf, uint64(len(plats)))
	for _, p := range plats {
		buf = binary.AppendVarint(buf, int64(p))
		buf = appendProviderSet(buf, ev.ProvidersByPlatform[p])
	}

	uplats := sortedPlatformKeys(ev.UsersByPlatform)
	buf = binary.AppendUvarint(buf, uint64(len(uplats)))
	for _, p := range uplats {
		buf = binary.AppendVarint(buf, int64(p))
		buf = appendASNSet(buf, ev.UsersByPlatform[p])
	}

	pus := sortedProviders(ev.ProviderUsers)
	buf = binary.AppendUvarint(buf, uint64(len(pus)))
	for _, pr := range pus {
		buf = appendProvider(buf, pr)
		buf = appendASNSet(buf, ev.ProviderUsers[pr])
	}
	return buf
}

// DecodeEvent decodes one event from data, which must hold exactly one
// EncodeEvent payload.
func DecodeEvent(data []byte) (*core.Event, error) {
	d := &decoder{buf: data}
	v := d.byte()
	if v != codecVersion && v != codecVersionSeq {
		return nil, fmt.Errorf("store: unsupported event encoding version %d", v)
	}
	ev := &core.Event{}
	if v == codecVersionSeq {
		ev.Seq = d.uvarint()
	}
	ev.Prefix = d.prefix()
	ev.Start = time.Unix(0, d.varint()).UTC()
	ev.End = time.Unix(0, d.varint()).UTC()
	flags := d.byte()
	ev.StartUnknown = flags&1 != 0
	ev.DirectFeed = flags&2 != 0
	ev.SawNoExport = flags&4 != 0
	ev.Detections = int(d.uvarint())

	ev.Providers = d.providerSet()
	ev.Users = d.asnSet()
	ev.Communities = d.communitySet()
	ev.Platforms = d.platformSet()
	ev.Peers = d.peerSet()

	// Each distance takes at least one byte, so a count beyond the
	// remaining buffer is corruption — reject it before allocating
	// (a fuzzed record could otherwise request a huge slice).
	if n := int(d.uvarint()); n > 0 && d.err == nil {
		if n > len(d.buf) {
			d.fail("distance count")
		} else {
			ev.ASDistances = make([]int, n)
			for i := range ev.ASDistances {
				ev.ASDistances[i] = int(d.varint())
			}
		}
	}

	ev.ProviderDistances = map[core.ProviderRef]int{}
	for i, n := 0, int(d.uvarint()); i < n && d.err == nil; i++ {
		pr := d.provider()
		ev.ProviderDistances[pr] = int(d.varint())
	}

	ev.DirectProviders = d.providerSet()

	ev.ProvidersByPlatform = map[collector.Platform]map[core.ProviderRef]bool{}
	for i, n := 0, int(d.uvarint()); i < n && d.err == nil; i++ {
		p := collector.Platform(d.varint())
		ev.ProvidersByPlatform[p] = d.providerSet()
	}
	ev.UsersByPlatform = map[collector.Platform]map[bgp.ASN]bool{}
	for i, n := 0, int(d.uvarint()); i < n && d.err == nil; i++ {
		p := collector.Platform(d.varint())
		ev.UsersByPlatform[p] = d.asnSet()
	}
	ev.ProviderUsers = map[core.ProviderRef]map[bgp.ASN]bool{}
	for i, n := 0, int(d.uvarint()); i < n && d.err == nil; i++ {
		pr := d.provider()
		ev.ProviderUsers[pr] = d.asnSet()
	}
	if d.err != nil {
		return nil, d.err
	}
	if len(d.buf) != 0 {
		return nil, fmt.Errorf("store: %d trailing bytes after event record", len(d.buf))
	}
	return ev, nil
}

// ---------------------------------------------------------------------
// Encoding helpers. Every set is written count-first with sorted keys.

func appendPrefix(buf []byte, p netip.Prefix) []byte {
	a := p.Addr()
	if a.Is4() {
		b := a.As4()
		buf = append(buf, 4)
		buf = append(buf, b[:]...)
	} else {
		b := a.As16()
		buf = append(buf, 16)
		buf = append(buf, b[:]...)
	}
	return append(buf, byte(p.Bits()))
}

func appendAddr(buf []byte, a netip.Addr) []byte {
	if a.Is4() {
		b := a.As4()
		buf = append(buf, 4)
		return append(buf, b[:]...)
	}
	b := a.As16()
	buf = append(buf, 16)
	return append(buf, b[:]...)
}

func appendProvider(buf []byte, pr core.ProviderRef) []byte {
	buf = append(buf, byte(pr.Kind))
	buf = binary.AppendUvarint(buf, uint64(pr.ASN))
	return binary.AppendUvarint(buf, uint64(pr.IXPID))
}

func sortedProviders[V any](m map[core.ProviderRef]V) []core.ProviderRef {
	out := make([]core.ProviderRef, 0, len(m))
	for pr := range m {
		out = append(out, pr)
	}
	slices.SortFunc(out, core.ProviderRefCompare)
	return out
}

func appendProviderSet(buf []byte, m map[core.ProviderRef]bool) []byte {
	provs := sortedProviders(m)
	buf = binary.AppendUvarint(buf, uint64(len(provs)))
	for _, pr := range provs {
		buf = appendProvider(buf, pr)
	}
	return buf
}

func appendASNSet(buf []byte, m map[bgp.ASN]bool) []byte {
	asns := make([]bgp.ASN, 0, len(m))
	for a := range m {
		asns = append(asns, a)
	}
	slices.Sort(asns)
	buf = binary.AppendUvarint(buf, uint64(len(asns)))
	for _, a := range asns {
		buf = binary.AppendUvarint(buf, uint64(a))
	}
	return buf
}

func appendCommunitySet(buf []byte, m map[bgp.Community]bool) []byte {
	cs := make([]bgp.Community, 0, len(m))
	for c := range m {
		cs = append(cs, c)
	}
	slices.Sort(cs)
	buf = binary.AppendUvarint(buf, uint64(len(cs)))
	for _, c := range cs {
		buf = binary.AppendUvarint(buf, uint64(c))
	}
	return buf
}

func appendPlatformSet(buf []byte, m map[collector.Platform]bool) []byte {
	ps := make([]collector.Platform, 0, len(m))
	for p := range m {
		ps = append(ps, p)
	}
	slices.Sort(ps)
	buf = binary.AppendUvarint(buf, uint64(len(ps)))
	for _, p := range ps {
		buf = binary.AppendVarint(buf, int64(p))
	}
	return buf
}

func sortedPlatformKeys[V any](m map[collector.Platform]V) []collector.Platform {
	ps := make([]collector.Platform, 0, len(m))
	for p := range m {
		ps = append(ps, p)
	}
	slices.Sort(ps)
	return ps
}

func appendPeerSet(buf []byte, m map[netip.Addr]bool) []byte {
	peers := make([]netip.Addr, 0, len(m))
	for a := range m {
		peers = append(peers, a)
	}
	sort.Slice(peers, func(i, j int) bool { return peers[i].Compare(peers[j]) < 0 })
	buf = binary.AppendUvarint(buf, uint64(len(peers)))
	for _, a := range peers {
		buf = appendAddr(buf, a)
	}
	return buf
}

// ---------------------------------------------------------------------
// Tombstones. A tombstone is the durable form of DeletePrefix: it
// declares the erasure of a prefix's history. The semantics are purely
// declarative and time-based — an event is dead iff its prefix is
// covered by (or equal to) the tombstone's prefix and, when UpTo is
// set, the event ended at or before UpTo — so applying tombstones is
// independent of record replay order.

// Tombstone is one DeletePrefix erasure directive.
type Tombstone struct {
	// Prefix scopes the erasure: every stored event whose prefix lies
	// inside it (including exact matches) is affected.
	Prefix netip.Prefix
	// UpTo, when non-zero, bounds the erasure to events whose End is at
	// or before it; zero erases the prefix's whole history.
	UpTo time.Time
}

// Matches reports whether the tombstone kills ev.
func (tb Tombstone) Matches(ev *core.Event) bool {
	p := tb.Prefix.Masked()
	q := ev.Prefix.Masked()
	if p.Bits() > q.Bits() || !p.Contains(q.Addr()) {
		return false
	}
	return tb.UpTo.IsZero() || !ev.End.After(tb.UpTo)
}

// encodeTombstone appends the binary encoding of a tombstone record.
func encodeTombstone(buf []byte, tb Tombstone) []byte {
	buf = append(buf, kindTombstone)
	var flags byte
	if !tb.UpTo.IsZero() {
		flags |= 1
	}
	buf = append(buf, flags)
	buf = appendPrefix(buf, tb.Prefix.Masked())
	if flags&1 != 0 {
		buf = binary.AppendVarint(buf, tb.UpTo.UTC().UnixNano())
	}
	return buf
}

// decodeTombstone decodes one tombstone record payload.
func decodeTombstone(data []byte) (Tombstone, error) {
	d := &decoder{buf: data}
	if d.byte() != kindTombstone {
		return Tombstone{}, fmt.Errorf("store: not a tombstone record")
	}
	flags := d.byte()
	tb := Tombstone{Prefix: d.prefix()}
	if flags&1 != 0 {
		tb.UpTo = time.Unix(0, d.varint()).UTC()
	}
	if d.err != nil {
		return Tombstone{}, d.err
	}
	if len(d.buf) != 0 {
		return Tombstone{}, fmt.Errorf("store: %d trailing bytes after tombstone record", len(d.buf))
	}
	return tb, nil
}

// ---------------------------------------------------------------------
// Decoding. The decoder is error-latching: after the first malformed
// field every accessor returns zero values and the error surfaces once.

type decoder struct {
	buf []byte
	err error
}

func (d *decoder) fail(what string) {
	if d.err == nil {
		d.err = fmt.Errorf("store: truncated event record (%s)", what)
	}
}

func (d *decoder) byte() byte {
	if d.err != nil || len(d.buf) < 1 {
		d.fail("byte")
		return 0
	}
	b := d.buf[0]
	d.buf = d.buf[1:]
	return b
}

func (d *decoder) take(n int) []byte {
	if d.err != nil || len(d.buf) < n {
		d.fail("bytes")
		return nil
	}
	b := d.buf[:n]
	d.buf = d.buf[n:]
	return b
}

func (d *decoder) uvarint() uint64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Uvarint(d.buf)
	if n <= 0 {
		d.fail("uvarint")
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *decoder) varint() int64 {
	if d.err != nil {
		return 0
	}
	v, n := binary.Varint(d.buf)
	if n <= 0 {
		d.fail("varint")
		return 0
	}
	d.buf = d.buf[n:]
	return v
}

func (d *decoder) addr() netip.Addr {
	switch n := d.byte(); n {
	case 4:
		b := d.take(4)
		if d.err != nil {
			return netip.Addr{}
		}
		return netip.AddrFrom4([4]byte(b))
	case 16:
		b := d.take(16)
		if d.err != nil {
			return netip.Addr{}
		}
		return netip.AddrFrom16([16]byte(b))
	default:
		d.fail("addr family")
		return netip.Addr{}
	}
}

func (d *decoder) prefix() netip.Prefix {
	a := d.addr()
	bits := int(d.byte())
	if d.err != nil {
		return netip.Prefix{}
	}
	p := netip.PrefixFrom(a, bits)
	if !p.IsValid() {
		d.fail("prefix bits")
		return netip.Prefix{}
	}
	return p
}

func (d *decoder) provider() core.ProviderRef {
	return core.ProviderRef{
		Kind:  core.ProviderKind(d.byte()),
		ASN:   bgp.ASN(d.uvarint()),
		IXPID: int(d.uvarint()),
	}
}

func (d *decoder) providerSet() map[core.ProviderRef]bool {
	m := map[core.ProviderRef]bool{}
	for i, n := 0, int(d.uvarint()); i < n && d.err == nil; i++ {
		m[d.provider()] = true
	}
	return m
}

func (d *decoder) asnSet() map[bgp.ASN]bool {
	m := map[bgp.ASN]bool{}
	for i, n := 0, int(d.uvarint()); i < n && d.err == nil; i++ {
		m[bgp.ASN(d.uvarint())] = true
	}
	return m
}

func (d *decoder) communitySet() map[bgp.Community]bool {
	m := map[bgp.Community]bool{}
	for i, n := 0, int(d.uvarint()); i < n && d.err == nil; i++ {
		m[bgp.Community(d.uvarint())] = true
	}
	return m
}

func (d *decoder) platformSet() map[collector.Platform]bool {
	m := map[collector.Platform]bool{}
	for i, n := 0, int(d.uvarint()); i < n && d.err == nil; i++ {
		m[collector.Platform(d.varint())] = true
	}
	return m
}

func (d *decoder) peerSet() map[netip.Addr]bool {
	m := map[netip.Addr]bool{}
	for i, n := 0, int(d.uvarint()); i < n && d.err == nil; i++ {
		m[d.addr()] = true
	}
	return m
}
