package store

import (
	"iter"
	"net/netip"
	"slices"
	"time"

	"bgpblackholing/internal/bgp"
	"bgpblackholing/internal/core"
)

// PrefixMode selects how Filter.Prefix matches stored event prefixes.
type PrefixMode int

const (
	// PrefixExact matches events for exactly the query prefix.
	PrefixExact PrefixMode = iota
	// PrefixLPM matches events for the longest stored prefix containing
	// the query prefix (a point lookup: "who blackholes this address").
	PrefixLPM
	// PrefixCovered matches events for every stored prefix inside the
	// query prefix ("all blackholed more-specifics of this /16").
	PrefixCovered
	// PrefixCovering matches events for every stored prefix containing
	// the query prefix (the whole chain of covering aggregates).
	PrefixCovering
)

// Filter selects events. Zero-valued fields don't constrain; the time
// range matches events whose [Start, End] span overlaps [From, To].
type Filter struct {
	// From / To bound the event span (inclusive overlap). A zero To
	// means "no upper bound", a zero From "no lower bound".
	From, To time.Time
	// Prefix, when valid, constrains by prefix under Mode.
	Prefix netip.Prefix
	Mode   PrefixMode
	// User matches events whose inferred blackholing users include this
	// ASN — the paper's per-origin slicing. Zero means any.
	User bgp.ASN
	// Provider, when non-nil, matches events inferring this provider.
	Provider *core.ProviderRef
	// Community, when non-zero, matches events that carried this
	// dictionary community.
	Community bgp.Community
	// MinDuration / MaxDuration bound the event duration (Max zero
	// means unbounded). Dump-seeded events (StartUnknown) participate
	// with their observed span.
	MinDuration, MaxDuration time.Duration
	// Limit caps the returned events (0 = unlimited). Total still
	// counts every match.
	Limit int
}

// Result is a query's outcome.
type Result struct {
	// Events are the matches, in append (closing) order.
	Events []*core.Event
	// Total counts all matches, ignoring Limit.
	Total int
	// Scanned counts the candidate events examined — the size of the
	// narrowest index posting set consulted, not the store size.
	Scanned int
}

// Query runs a filter against the in-memory indexes. The narrowest
// applicable index (prefix trie, then user / provider / community
// postings, then time buckets) supplies the candidate set; remaining
// filters verify each candidate. No raw BGP data is touched.
func (s *Store) Query(f Filter) Result {
	s.ensureHydrated(f)
	s.mu.RLock()
	defer s.mu.RUnlock()

	cands, all := s.candidates(f)
	res := Result{}
	if all {
		res.Scanned = s.live
		for ord := range s.events {
			s.consider(&res, int32(ord), f)
		}
		return res
	}
	res.Scanned = len(cands)
	for _, ord := range cands {
		s.consider(&res, ord, f)
	}
	return res
}

// QuerySeq answers the same filter as Query, but as an iterator: events
// are yielded one at a time, in append (closing) order, without ever
// materializing the full result set — the HTTP layer's NDJSON streaming
// drains it incrementally, so an uncapped query over a production-scale
// store stays O(1) in memory. The candidate set and event slots are
// snapshotted under the read lock, then iteration proceeds without it
// (events are immutable and the slot slice is copy-on-write), so a slow
// consumer never blocks appends. Limit is honoured; Total/Scanned
// accounting is Query's job.
func (s *Store) QuerySeq(f Filter) iter.Seq[*core.Event] {
	s.ensureHydrated(f)
	s.mu.RLock()
	events := s.events[:len(s.events):len(s.events)]
	cands, all := s.candidates(f)
	if !all {
		// Postings lists are mutated in place by later appends and
		// erasures; the snapshot must not alias them.
		cands = slices.Clone(cands)
	}
	s.mu.RUnlock()
	return func(yield func(*core.Event) bool) {
		yielded := 0
		emit := func(ord int32) bool {
			ev := events[ord]
			if ev == nil || !matches(ev, f) {
				return true
			}
			if !yield(ev) {
				return false
			}
			yielded++
			return f.Limit <= 0 || yielded < f.Limit
		}
		if all {
			for ord := range events {
				if !emit(int32(ord)) {
					return
				}
			}
			return
		}
		for _, ord := range cands {
			if !emit(ord) {
				return
			}
		}
	}
}

// consider applies the full filter to one candidate ordinal. A nil slot
// is a dead event (tombstoned or superseded); index postings no longer
// reference those, but the full-scan path walks every ordinal.
func (s *Store) consider(res *Result, ord int32, f Filter) {
	ev := s.events[ord]
	if ev == nil || !matches(ev, f) {
		return
	}
	res.Total++
	if f.Limit <= 0 || len(res.Events) < f.Limit {
		res.Events = append(res.Events, ev)
	}
}

// candidates picks the narrowest index posting set for the filter; all
// is true when no index applies (full scan).
func (s *Store) candidates(f Filter) (ords []int32, all bool) {
	if f.Prefix.IsValid() {
		return s.prefixCandidates(f), false
	}
	if f.User != 0 {
		return s.byUser[f.User], false
	}
	if f.Provider != nil {
		return s.byProvider[*f.Provider], false
	}
	if f.Community != 0 {
		return s.byCommunity[f.Community], false
	}
	if !f.From.IsZero() || !f.To.IsZero() {
		return s.timeCandidates(f), false
	}
	return nil, true
}

// prefixCandidates resolves the prefix constraint through the trie and
// returns the union of the matched postings, in ordinal order.
func (s *Store) prefixCandidates(f Filter) []int32 {
	var lists [][]int32
	switch f.Mode {
	case PrefixExact:
		if ords := s.trie.Exact(f.Prefix); ords != nil {
			lists = append(lists, ords)
		}
	case PrefixLPM:
		if _, ords, ok := s.trie.LPM(f.Prefix); ok {
			lists = append(lists, ords)
		}
	case PrefixCovered:
		for _, m := range s.trie.Covered(f.Prefix) {
			lists = append(lists, m.Ords)
		}
	case PrefixCovering:
		for _, m := range s.trie.Covering(f.Prefix) {
			lists = append(lists, m.Ords)
		}
	}
	return mergeOrds(lists)
}

// timeCandidates unions the day buckets overlapping [From, To].
func (s *Store) timeCandidates(f Filter) []int32 {
	from, to := f.From, f.To
	if from.IsZero() {
		from = s.minStart
	}
	if to.IsZero() {
		to = s.maxEnd
	}
	if from.IsZero() || to.IsZero() || to.Before(from) {
		return nil
	}
	var lists [][]int32
	for d := unixDay(from); d <= unixDay(to); d++ {
		if ords := s.byDay[d]; len(ords) > 0 {
			lists = append(lists, ords)
		}
	}
	return mergeOrds(lists)
}

// mergeOrds unions sorted postings lists into one sorted, deduplicated
// list. Single-list unions are returned as-is (no copy).
func mergeOrds(lists [][]int32) []int32 {
	switch len(lists) {
	case 0:
		return nil
	case 1:
		return lists[0]
	}
	total := 0
	for _, l := range lists {
		total += len(l)
	}
	out := make([]int32, 0, total)
	for _, l := range lists {
		out = append(out, l...)
	}
	slices.Sort(out)
	return slices.Compact(out)
}

// matches applies every filter dimension to one event.
func matches(ev *core.Event, f Filter) bool {
	if !f.From.IsZero() && ev.End.Before(f.From) {
		return false
	}
	if !f.To.IsZero() && ev.Start.After(f.To) {
		return false
	}
	if f.Prefix.IsValid() && !prefixMatches(ev.Prefix, f) {
		return false
	}
	if f.User != 0 && !ev.Users[f.User] {
		return false
	}
	if f.Provider != nil && !ev.Providers[*f.Provider] {
		return false
	}
	if f.Community != 0 && !ev.Communities[f.Community] {
		return false
	}
	if f.MinDuration > 0 && ev.Duration() < f.MinDuration {
		return false
	}
	if f.MaxDuration > 0 && ev.Duration() > f.MaxDuration {
		return false
	}
	return true
}

// prefixMatches re-verifies the prefix constraint on one event (the
// trie's candidate set is authoritative, but verification keeps Query
// correct even over a full scan).
func prefixMatches(got netip.Prefix, f Filter) bool {
	q := f.Prefix.Masked()
	got = got.Masked()
	switch f.Mode {
	case PrefixExact:
		return got == q
	case PrefixLPM:
		// Candidate sets already narrowed to the single longest match;
		// for verification accept any stored prefix containing q.
		return got.Bits() <= q.Bits() && got.Contains(q.Addr())
	case PrefixCovered:
		return got.Bits() >= q.Bits() && q.Contains(got.Addr())
	case PrefixCovering:
		return got.Bits() <= q.Bits() && got.Contains(q.Addr())
	}
	return false
}
