//go:build !unix

package store

import "errors"

// mmapSupported reports that this platform has no mmap seam; scans
// under Options.Mmap silently fall back to buffered reads.
const mmapSupported = false

func mapFile(path string) ([]byte, func(), error) {
	return nil, nil, errors.New("store: mmap unsupported on this platform")
}
