package store

// Sidecar summaries. A sealed segment is immutable, so everything a
// cold open needs from it — how many event records it holds, which of
// them were dead under the tombstones in force when it sealed, its
// time bounds, and digests of the prefixes / users / providers /
// communities its live events post into the indexes — can be computed
// once, at seal or compaction time, and written next to the segment as
// a small "seg-NNNNNNNN.sum" sidecar. Open then reserves index
// ordinals from the sidecar without reading the segment itself, and
// queries prune whole segments through the digests before a byte of
// event data is touched; the first query that does touch a cold
// segment hydrates it (decodes and indexes its records) under the
// write lock.
//
// Sidecars are strictly advisory: they carry their own magic, version
// and CRC, and they self-invalidate when the segment file's size no
// longer matches the size recorded at write (a compaction rewrote the
// segment) or when a tombstone not in the recorded applied set could
// affect the segment's events (liveness counts would be stale). Any
// missing, corrupt or stale sidecar just demotes that segment to the
// classic full decode at open, after which a read-write open rewrites
// the sidecar (self-heal). Losing a sidecar can never lose data.
//
// Sidecar file layout (see docs/FORMAT.md for the normative spec):
//
//	8-byte magic "BHSTSUM\x01"
//	u32le payload length | u32le CRC-32 (IEEE) | payload
//
// The payload is a single versioned record; decoding rejects unknown
// versions so the format can evolve by bumping sumVersion.

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"net/netip"
	"os"
	"path/filepath"
	"slices"
	"strings"
	"time"

	"bgpblackholing/internal/core"
)

var sumMagic = []byte("BHSTSUM\x01")

// sumVersion is the sidecar payload format version; bump on any layout
// change. Decoding rejects unknown versions rather than guessing.
const sumVersion = 1

// maxSidecarBytes bounds a sidecar payload so a corrupt length field
// can't trigger a huge allocation.
const maxSidecarBytes = 16 << 20

// sumName renders the canonical sidecar file name for a segment
// sequence number. The ".sum" suffix keeps sidecars invisible to
// listSegments, which only accepts ".log".
func sumName(seq uint64) string {
	return fmt.Sprintf("seg-%08d.sum", seq)
}

func sumPath(dir string, seq uint64) string {
	return filepath.Join(dir, sumName(seq))
}

// parseSumName extracts the sequence number from a sidecar file name.
func parseSumName(name string) (uint64, bool) {
	rest, ok := strings.CutSuffix(name, ".sum")
	if !ok {
		return 0, false
	}
	return parseSegName(rest + ".log")
}

// segSummary is the decoded (or freshly built) content of one sidecar.
type segSummary struct {
	seq      uint64
	fileSize int64 // segment file size when the sidecar was written
	validLen int64 // byte offset past the last valid record
	// truncated records that the segment carries garbage past validLen
	// (a recovered wounded segment); open counts it as a recovered tail
	// without rescanning the file.
	truncated bool

	eventRecords int // event records within validLen
	liveCount    int // event records live under the applied tombstones

	// Time bounds in UnixNano: all* cover every event record (the
	// partition metadata open needs), live* only the live ones (what
	// feeds Stats.MinStart/MaxEnd and time-range pruning). Sentinels
	// noMinStart / noMaxEnd when the respective set is empty.
	allMinStart, allMaxEnd   int64
	liveMinStart, liveMaxEnd int64

	// dead is a bitmap over event-record positions (file order); a set
	// bit marks a record dead under the applied tombstones. Hydration
	// skips those without re-evaluating tombstones.
	dead []byte

	// others holds the segment's non-event record payloads (compaction
	// markers, tombstones) verbatim, in file order — open replays them
	// without touching the segment file.
	others [][]byte

	// applied is the full tombstone set in force when the sidecar was
	// written, each encoded with encodeTombstone. The tombstone set only
	// grows, so staleness is exactly "a current tombstone outside this
	// set could affect the segment".
	applied [][]byte

	// v4/v6 bound the live events' masked network addresses per family.
	v4, v6 famRange

	// Digests over the live events' index keys. No false negatives: a
	// digest miss proves the segment cannot contribute to that posting
	// list, so pruning keeps query results byte-identical.
	prefixes, users, providers, communities bloom
}

// noMaxEnd is the max-end sentinel for an empty event set.
const noMaxEnd = -1 << 63

// famRange is a per-family closed range over masked network addresses,
// in the family's native byte width (4 or 16).
type famRange struct {
	present  bool
	min, max []byte
}

func (r *famRange) add(addr []byte) {
	if !r.present {
		r.present = true
		r.min = slices.Clone(addr)
		r.max = slices.Clone(addr)
		return
	}
	if bytes.Compare(addr, r.min) < 0 {
		r.min = slices.Clone(addr)
	}
	if bytes.Compare(addr, r.max) > 0 {
		r.max = slices.Clone(addr)
	}
}

// overlaps reports whether the range intersects [first, last].
func (r *famRange) overlaps(first, last []byte) bool {
	return r.present && bytes.Compare(r.min, last) <= 0 && bytes.Compare(r.max, first) >= 0
}

// ---------------------------------------------------------------------
// Bloom digests: split double hashing over FNV-1a, ~10 bits and 7
// probes per element. One-sided by construction — mayContain can
// return spurious trues (a segment hydrates for nothing) but never a
// false negative (which would silently drop query results).

type bloom struct {
	k     int
	nbits uint64
	words []uint64
}

func newBloom(n int) bloom {
	nbits := uint64(n) * 10
	nbits = (nbits + 63) &^ 63
	if nbits < 64 {
		nbits = 64
	}
	return bloom{k: 7, nbits: nbits, words: make([]uint64, nbits/64)}
}

func bloomHash(key []byte) (h1, h2 uint64) {
	const (
		offset64 = 14695981039346656037
		prime64  = 1099511628211
	)
	h := uint64(offset64)
	for _, b := range key {
		h ^= uint64(b)
		h *= prime64
	}
	return h, h*0x9E3779B97F4A7C15 | 1
}

func (b bloom) add(key []byte) {
	h1, h2 := bloomHash(key)
	for i := 0; i < b.k; i++ {
		bit := (h1 + uint64(i)*h2) % b.nbits
		b.words[bit>>6] |= 1 << (bit & 63)
	}
}

func (b bloom) mayContain(key []byte) bool {
	if b.nbits == 0 || len(b.words) == 0 {
		return false
	}
	h1, h2 := bloomHash(key)
	for i := 0; i < b.k; i++ {
		bit := (h1 + uint64(i)*h2) % b.nbits
		if b.words[bit>>6]&(1<<(bit&63)) == 0 {
			return false
		}
	}
	return true
}

// Digest keys reuse the codec's deterministic encodings.

func bloomPrefixKey(buf []byte, p netip.Prefix) []byte {
	return appendPrefix(buf[:0], p.Masked())
}

func bloomUserKey(buf []byte, u uint64) []byte {
	return binary.AppendUvarint(buf[:0], u)
}

func bloomProviderKey(buf []byte, pr core.ProviderRef) []byte {
	return appendProvider(buf[:0], pr)
}

// ---------------------------------------------------------------------
// Building.

// sumRec is one event record's contribution to a summary.
type sumRec struct {
	ev   *core.Event
	dead bool
}

// buildSummary computes the sidecar content for a sealed segment from
// its decoded event records (file order, dead flags pre-evaluated
// against the tombstones in force), its non-event record payloads, and
// the full applied tombstone set.
func buildSummary(seq uint64, fileSize, validLen int64, truncated bool, recs []sumRec, others, applied [][]byte) *segSummary {
	m := &segSummary{
		seq:          seq,
		fileSize:     fileSize,
		validLen:     validLen,
		truncated:    truncated,
		eventRecords: len(recs),
		allMinStart:  noMinStart,
		allMaxEnd:    noMaxEnd,
		liveMinStart: noMinStart,
		liveMaxEnd:   noMaxEnd,
		others:       others,
		applied:      applied,
	}
	if len(recs) > 0 {
		m.dead = make([]byte, (len(recs)+7)/8)
	}
	// Digest sizing needs the live distinct-key counts first.
	prefixSet := map[netip.Prefix]bool{}
	userSet := map[uint64]bool{}
	provSet := map[core.ProviderRef]bool{}
	commSet := map[uint64]bool{}
	for k, r := range recs {
		start := r.ev.Start.UTC().UnixNano()
		end := r.ev.End.UTC().UnixNano()
		if start < m.allMinStart {
			m.allMinStart = start
		}
		if end > m.allMaxEnd {
			m.allMaxEnd = end
		}
		if r.dead {
			m.dead[k>>3] |= 1 << (k & 7)
			continue
		}
		m.liveCount++
		if start < m.liveMinStart {
			m.liveMinStart = start
		}
		if end > m.liveMaxEnd {
			m.liveMaxEnd = end
		}
		p := r.ev.Prefix.Masked()
		prefixSet[p] = true
		if p.Addr().Is4() {
			m.v4.add(keyBytes(p.Addr()))
		} else {
			m.v6.add(keyBytes(p.Addr()))
		}
		for u := range r.ev.Users {
			userSet[uint64(u)] = true
		}
		for pr := range r.ev.Providers {
			provSet[pr] = true
		}
		for c := range r.ev.Communities {
			commSet[uint64(c)] = true
		}
	}
	m.prefixes = newBloom(len(prefixSet))
	m.users = newBloom(len(userSet))
	m.providers = newBloom(len(provSet))
	m.communities = newBloom(len(commSet))
	var kb []byte
	for p := range prefixSet {
		kb = bloomPrefixKey(kb, p)
		m.prefixes.add(kb)
	}
	for u := range userSet {
		kb = bloomUserKey(kb, u)
		m.users.add(kb)
	}
	for pr := range provSet {
		kb = bloomProviderKey(kb, pr)
		m.providers.add(kb)
	}
	for c := range commSet {
		kb = bloomUserKey(kb, c)
		m.communities.add(kb)
	}
	return m
}

func (m *segSummary) deadBit(k int) bool {
	return m.dead[k>>3]&(1<<(k&7)) != 0
}

// ---------------------------------------------------------------------
// Pruning and staleness predicates.

// mayMatchPrefix reports whether the segment could contribute to the
// candidate postings of a prefix query. Exact lookups go through the
// prefix digest; containment modes use the per-family address ranges —
// conservative but sound: a stored prefix containing the query must
// have a network address at or below the query's, and a stored prefix
// inside the query must have its network address within the query's
// span.
func (m *segSummary) mayMatchPrefix(q netip.Prefix, mode PrefixMode) bool {
	if m.liveCount == 0 {
		return false
	}
	q = q.Masked()
	fam := &m.v4
	if !q.Addr().Is4() {
		fam = &m.v6
	}
	switch mode {
	case PrefixExact:
		var kb [18]byte
		return m.prefixes.mayContain(bloomPrefixKey(kb[:0], q))
	case PrefixLPM, PrefixCovering:
		return fam.present && bytes.Compare(fam.min, keyBytes(q.Addr())) <= 0
	case PrefixCovered:
		first, last := prefixRangeBytes(q)
		return fam.overlaps(first, last)
	}
	return true
}

// mayMatchTime reports whether any live event could post into a day
// bucket in [fromDay, toDay] — the same granularity the byDay index
// uses, so pruning matches the warm store's candidate set exactly.
func (m *segSummary) mayMatchTime(fromDay, toDay int64) bool {
	if m.liveCount == 0 {
		return false
	}
	return unixDayNano(m.liveMinStart) <= toDay && unixDayNano(m.liveMaxEnd) >= fromDay
}

// tombMayAffect reports whether a tombstone outside the sidecar's
// applied set could kill any of the segment's live events — if so the
// recorded liveness counts can't be trusted and the sidecar is stale.
func (m *segSummary) tombMayAffect(tb Tombstone) bool {
	if m.liveCount == 0 {
		return false
	}
	if !tb.UpTo.IsZero() && m.liveMinStart > tb.UpTo.UTC().UnixNano() {
		// Every live event starts (hence ends) after the erasure bound.
		return false
	}
	p := tb.Prefix.Masked()
	fam := &m.v4
	if !p.Addr().Is4() {
		fam = &m.v6
	}
	first, last := prefixRangeBytes(p)
	return fam.overlaps(first, last)
}

// prefixRangeBytes returns the first and last network addresses a
// prefix can cover, as native-width big-endian bytes.
func prefixRangeBytes(p netip.Prefix) (first, last []byte) {
	p = p.Masked()
	first = keyBytes(p.Addr())
	last = slices.Clone(first)
	for i := p.Bits(); i < len(last)*8; i++ {
		last[i>>3] |= 1 << (7 - i&7)
	}
	return first, last
}

func unixDayNano(nano int64) int64 {
	return unixDay(time.Unix(0, nano).UTC())
}

// ---------------------------------------------------------------------
// Encoding.

func encodeSummary(m *segSummary) []byte {
	p := []byte{sumVersion}
	p = binary.AppendUvarint(p, m.seq)
	p = binary.AppendVarint(p, m.fileSize)
	p = binary.AppendVarint(p, m.validLen)
	var flags byte
	if m.truncated {
		flags |= 1
	}
	p = append(p, flags)
	p = binary.AppendUvarint(p, uint64(m.eventRecords))
	p = binary.AppendUvarint(p, uint64(m.liveCount))
	p = binary.AppendVarint(p, m.allMinStart)
	p = binary.AppendVarint(p, m.allMaxEnd)
	p = binary.AppendVarint(p, m.liveMinStart)
	p = binary.AppendVarint(p, m.liveMaxEnd)
	p = appendBytes(p, m.dead)
	p = appendBytesList(p, m.others)
	p = appendBytesList(p, m.applied)
	p = appendFamRange(p, m.v4)
	p = appendFamRange(p, m.v6)
	p = appendBloom(p, m.prefixes)
	p = appendBloom(p, m.users)
	p = appendBloom(p, m.providers)
	p = appendBloom(p, m.communities)

	out := make([]byte, 0, len(sumMagic)+recordHeaderBytes+len(p))
	out = append(out, sumMagic...)
	var hdr [recordHeaderBytes]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(p)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.ChecksumIEEE(p))
	out = append(out, hdr[:]...)
	return append(out, p...)
}

func appendBytes(buf, b []byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(b)))
	return append(buf, b...)
}

func appendBytesList(buf []byte, l [][]byte) []byte {
	buf = binary.AppendUvarint(buf, uint64(len(l)))
	for _, b := range l {
		buf = appendBytes(buf, b)
	}
	return buf
}

func appendFamRange(buf []byte, r famRange) []byte {
	if !r.present {
		return append(buf, 0)
	}
	buf = append(buf, 1)
	buf = appendBytes(buf, r.min)
	return appendBytes(buf, r.max)
}

func appendBloom(buf []byte, b bloom) []byte {
	buf = append(buf, byte(b.k))
	buf = binary.AppendUvarint(buf, b.nbits)
	buf = binary.AppendUvarint(buf, uint64(len(b.words)))
	for _, w := range b.words {
		buf = binary.LittleEndian.AppendUint64(buf, w)
	}
	return buf
}

func decodeSummary(data []byte) (*segSummary, error) {
	if len(data) < len(sumMagic)+recordHeaderBytes || !bytes.Equal(data[:len(sumMagic)], sumMagic) {
		return nil, fmt.Errorf("store: not a sidecar file (bad magic)")
	}
	data = data[len(sumMagic):]
	n := int(binary.LittleEndian.Uint32(data[0:4]))
	sum := binary.LittleEndian.Uint32(data[4:8])
	if n > maxSidecarBytes || len(data)-recordHeaderBytes < n {
		return nil, fmt.Errorf("store: truncated sidecar")
	}
	p := data[recordHeaderBytes : recordHeaderBytes+n]
	if crc32.ChecksumIEEE(p) != sum {
		return nil, fmt.Errorf("store: sidecar checksum mismatch")
	}
	d := &decoder{buf: p}
	if v := d.byte(); v != sumVersion {
		return nil, fmt.Errorf("store: unsupported sidecar version %d", v)
	}
	m := &segSummary{}
	m.seq = d.uvarint()
	m.fileSize = d.varint()
	m.validLen = d.varint()
	m.truncated = d.byte()&1 != 0
	m.eventRecords = int(d.uvarint())
	m.liveCount = int(d.uvarint())
	m.allMinStart = d.varint()
	m.allMaxEnd = d.varint()
	m.liveMinStart = d.varint()
	m.liveMaxEnd = d.varint()
	m.dead = decodeBytes(d)
	m.others = decodeBytesList(d)
	m.applied = decodeBytesList(d)
	m.v4 = decodeFamRange(d)
	m.v6 = decodeFamRange(d)
	m.prefixes = decodeBloom(d)
	m.users = decodeBloom(d)
	m.providers = decodeBloom(d)
	m.communities = decodeBloom(d)
	if d.err != nil {
		return nil, fmt.Errorf("store: corrupt sidecar: %w", d.err)
	}
	if len(d.buf) != 0 {
		return nil, fmt.Errorf("store: %d trailing bytes after sidecar payload", len(d.buf))
	}
	if m.eventRecords < 0 || m.liveCount < 0 || m.liveCount > m.eventRecords ||
		(m.eventRecords > 0 && len(m.dead) != (m.eventRecords+7)/8) {
		return nil, fmt.Errorf("store: corrupt sidecar: inconsistent counts")
	}
	return m, nil
}

func decodeBytes(d *decoder) []byte {
	n := int(d.uvarint())
	if d.err != nil || n == 0 {
		return nil
	}
	if n > len(d.buf) {
		d.fail("sidecar bytes")
		return nil
	}
	return slices.Clone(d.take(n))
}

func decodeBytesList(d *decoder) [][]byte {
	n := int(d.uvarint())
	if d.err != nil || n == 0 {
		return nil
	}
	if n > len(d.buf) {
		d.fail("sidecar list")
		return nil
	}
	out := make([][]byte, 0, n)
	for i := 0; i < n && d.err == nil; i++ {
		out = append(out, decodeBytes(d))
	}
	return out
}

func decodeFamRange(d *decoder) famRange {
	if d.byte()&1 == 0 {
		return famRange{}
	}
	return famRange{present: true, min: decodeBytes(d), max: decodeBytes(d)}
}

func decodeBloom(d *decoder) bloom {
	b := bloom{k: int(d.byte()), nbits: d.uvarint()}
	n := int(d.uvarint())
	if d.err != nil {
		return bloom{}
	}
	if n*8 > len(d.buf) || (b.nbits+63)/64 != uint64(n) {
		d.fail("sidecar bloom")
		return bloom{}
	}
	b.words = make([]uint64, n)
	for i := range b.words {
		w := d.take(8)
		if d.err != nil {
			return bloom{}
		}
		b.words[i] = binary.LittleEndian.Uint64(w)
	}
	return b
}

// ---------------------------------------------------------------------
// Files.

// writeSidecar writes the sidecar next to its segment via a temp file
// and atomic rename. No fsync: sidecars are advisory and self-checked,
// so a crash can at worst leave a sidecar behind that fails validation
// and demotes its segment to a full decode.
func writeSidecar(dir string, m *segSummary) error {
	tmp, err := os.CreateTemp(dir, sumName(m.seq)+".tmp-*")
	if err != nil {
		return err
	}
	data := encodeSummary(m)
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		os.Remove(tmp.Name())
		return err
	}
	if err := tmp.Close(); err != nil {
		os.Remove(tmp.Name())
		return err
	}
	return os.Rename(tmp.Name(), sumPath(dir, m.seq))
}

// loadSidecar reads and structurally validates one sidecar file.
func loadSidecar(path string) (*segSummary, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	return decodeSummary(data)
}

// listSidecars maps segment seq → sidecar path for every ".sum" file
// in dir; orphans (no matching segment) are the caller's to clean.
func listSidecars(dir string) (map[uint64]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	out := map[uint64]string{}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		if seq, ok := parseSumName(e.Name()); ok {
			out[seq] = filepath.Join(dir, e.Name())
		}
	}
	return out, nil
}
