package store

import (
	"math/rand"
	"net/netip"
	"slices"
	"testing"
	"time"

	"bgpblackholing/internal/bgp"
	"bgpblackholing/internal/core"
)

// randomFilter draws a filter that exercises every index path: prefix
// modes over the trie, user/provider/community postings, time buckets,
// duration bounds, limits, and the unconstrained full scan.
func randomFilter(r *rand.Rand) Filter {
	var f Filter
	switch r.Intn(6) {
	case 0:
		f.Prefix = netip.PrefixFrom(netip.AddrFrom4([4]byte{10, byte(r.Intn(5)), byte(r.Intn(200)), byte(r.Intn(2))}), 8+r.Intn(25)).Masked()
		f.Mode = PrefixMode(r.Intn(4))
	case 1:
		f.User = bgp.ASN(7000 + r.Intn(13))
	case 2:
		f.Provider = &core.ProviderRef{Kind: core.ProviderAS, ASN: bgp.ASN(100 + r.Intn(8))}
	case 3:
		f.Community = bgp.MakeCommunity(uint16(100+r.Intn(8)), 666)
	case 4:
		f.From = testEpoch.Add(time.Duration(r.Intn(48)) * time.Hour)
		f.To = f.From.Add(time.Duration(r.Intn(72)) * time.Hour)
	}
	if r.Intn(3) == 0 {
		f.MinDuration = time.Duration(r.Intn(60)) * time.Minute
	}
	if r.Intn(3) == 0 {
		f.Limit = 1 + r.Intn(20)
	}
	return f
}

// TestQuerySeqMatchesQuery property-tests the iterator path against the
// materializing path: identical events, identical order, limit
// honoured, across random filters and after erasures.
func TestQuerySeqMatchesQuery(t *testing.T) {
	dir := t.TempDir()
	s, err := Open(dir, Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 300; i++ {
		if err := s.Append(makeEvent(i)); err != nil {
			t.Fatal(err)
		}
	}
	// An erasure nils slots mid-array, which both paths must skip.
	if _, err := s.DeletePrefix(netip.MustParsePrefix("10.2.0.0/16"), time.Time{}); err != nil {
		t.Fatal(err)
	}

	r := rand.New(rand.NewSource(3))
	for trial := 0; trial < 200; trial++ {
		f := randomFilter(r)
		want := s.Query(f).Events
		got := slices.Collect(s.QuerySeq(f))
		if len(got) != len(want) {
			t.Fatalf("trial %d (%+v): QuerySeq yielded %d events, Query returned %d", trial, f, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("trial %d (%+v): event %d differs", trial, f, i)
			}
		}
	}
}

// TestQuerySeqEarlyStop proves a consumer can abandon the iterator
// mid-stream without draining it.
func TestQuerySeqEarlyStop(t *testing.T) {
	s, err := Open(t.TempDir(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	for i := 0; i < 50; i++ {
		if err := s.Append(makeEvent(i)); err != nil {
			t.Fatal(err)
		}
	}
	n := 0
	for range s.QuerySeq(Filter{}) {
		n++
		if n == 7 {
			break
		}
	}
	if n != 7 {
		t.Fatalf("stopped after %d events, want 7", n)
	}
}
