package store

import (
	"net/netip"
	"os"
	"path/filepath"
	"sort"
	"testing"
	"time"
)

// The compaction crash-point matrix: the tiered commit protocol is
// interrupted (by snapshotting the directory, which is exactly what a
// crash leaves behind) at every stage —
//
//	pre-commit      merged temp file written, atomic rename not yet done
//	post-commit     merged segment renamed, superseded run members still
//	                on disk (the marker must keep them from double-indexing)
//	post-cleanup    run members removed, next run not yet started
//
// — including the stages of the erasure run that physically drops
// tombstoned records ("mid-tombstone-drop"). Reopening each snapshot
// must show no event loss, no double-indexing, and tombstones still
// honored.

// copySnapshot clones the store directory's current files, minus the
// writer lock (after a real crash the owning pid is gone; here the pid
// is this test process, which would block the stale-lock steal).
func copySnapshot(t *testing.T, src string) string {
	t.Helper()
	dst := t.TempDir()
	entries, err := os.ReadDir(src)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range entries {
		if e.IsDir() || e.Name() == lockName {
			continue
		}
		data, err := os.ReadFile(filepath.Join(src, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(filepath.Join(dst, e.Name()), data, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dst
}

// encodedSet renders a store's live events as sorted encodings, the
// canonical multiset for comparing recovery outcomes.
func encodedSet(s *Store) []string {
	var out []string
	for ev := range s.All() {
		out = append(out, string(EncodeEvent(nil, ev)))
	}
	sort.Strings(out)
	return out
}

func TestCompactionCrashPointMatrix(t *testing.T) {
	dir := t.TempDir()
	pol := Policy{Partition: testPartition, SizeRatio: 1e9, MinRun: 2}
	opts := Options{MaxSegmentBytes: 1024, Policy: pol}
	s, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()

	// Partition 0 carries a duplicate pair (flush-closed short + longer
	// replay close); partition 1 carries the events a tombstone erases.
	// Index 8 keeps the pair's prefix (10.3.8.0/24) clear of the
	// tombstone target below.
	short := makeEventOn(8, 1)
	long := makeEventOn(8, 1)
	long.End = long.End.Add(3 * time.Hour)
	long.Detections += 5
	if err := s.Append(short); err != nil {
		t.Fatal(err)
	}
	for i := 10; i < 30; i++ {
		if err := s.Append(makeEventOn(i, 1+i%3)); err != nil {
			t.Fatal(err)
		}
	}
	if err := s.Append(long); err != nil {
		t.Fatal(err)
	}
	for i := 30; i < 70; i++ {
		if err := s.Append(makeEventOn(i, 31+i%3)); err != nil {
			t.Fatal(err)
		}
	}
	// Roll once more so every partition-1 segment is sealed.
	if err := s.Append(makeEventOn(70, 61)); err != nil {
		t.Fatal(err)
	}

	target := netip.MustParsePrefix("10.2.0.0/16")
	erased, err := s.DeletePrefix(target, partitionedEpoch.Add(60*24*time.Hour))
	if err != nil {
		t.Fatal(err)
	}
	if erased == 0 {
		t.Fatal("setup: tombstone erased nothing")
	}

	// The two recovery outcomes: every live event (the duplicate pair
	// both present until its run commits), and the same minus the
	// superseded short close.
	withDup := encodedSet(s)
	var deduped []string
	shortEnc := string(EncodeEvent(nil, short))
	for _, e := range withDup {
		if e != shortEnc {
			deduped = append(deduped, e)
		}
	}
	if len(deduped) != len(withDup)-1 {
		t.Fatal("setup: duplicate pair not live before compaction")
	}

	// Drive the compaction, snapshotting the directory at every stage.
	type snap struct {
		stage string
		hi    uint64
		dir   string
	}
	var snaps []snap
	var pendingHi uint64
	segmentCommitHook = func() {
		snaps = append(snaps, snap{"pre-commit", pendingHi, copySnapshot(t, dir)})
	}
	compactStageHook = func(stage string, hi uint64) {
		pendingHi = hi // runs commit in ascending order; first hook call trails the first rename
		snaps = append(snaps, snap{stage, hi, copySnapshot(t, dir)})
	}
	defer func() { segmentCommitHook, compactStageHook = nil, nil }()

	stats, err := s.CompactWith(pol)
	if err != nil {
		t.Fatal(err)
	}
	if stats.Dropped != 1 {
		t.Fatalf("compaction dropped %d duplicates, want 1: %+v", stats.Dropped, stats)
	}
	if stats.Erased < erased {
		t.Fatalf("compaction erased %d dead records, want >= %d", stats.Erased, erased)
	}
	if len(snaps) < 6 {
		t.Fatalf("only %d crash points captured (want pre/post/cleanup for >= 2 runs)", len(snaps))
	}

	// The short duplicate disappears from disk once the partition-0
	// run (the first to commit) has renamed its merged segment.
	dupRunCommitted := false
	for _, sn := range snaps {
		r, err := Open(sn.dir, opts)
		if err != nil {
			t.Fatalf("stage %s (run %d): reopen: %v", sn.stage, sn.hi, err)
		}
		got := encodedSet(r)

		// No double-indexing, ever: no encoding may appear twice.
		for i := 1; i < len(got); i++ {
			if got[i] == got[i-1] {
				t.Fatalf("stage %s (run %d): event double-indexed after recovery", sn.stage, sn.hi)
			}
		}
		// Tombstones honored at every stage.
		for _, res := range []Result{
			r.Query(Filter{Prefix: target, Mode: PrefixCovered}),
		} {
			for _, ev := range res.Events {
				if !ev.End.After(partitionedEpoch.Add(60 * 24 * time.Hour)) {
					t.Fatalf("stage %s (run %d): tombstoned event %v resurrected", sn.stage, sn.hi, ev.Prefix)
				}
			}
		}
		// No event loss: recovery yields exactly the pre-compaction
		// live set, or the same set with the superseded duplicate
		// dropped once its run has committed. The first rename to land
		// is the partition-0 (duplicate-carrying) run's.
		if sn.stage == "post-commit" {
			dupRunCommitted = true
		}
		want := withDup
		if dupRunCommitted {
			want = deduped
		}
		if len(got) != len(want) {
			t.Fatalf("stage %s (run %d): recovered %d events, want %d", sn.stage, sn.hi, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("stage %s (run %d): recovered event set diverges at %d", sn.stage, sn.hi, i)
			}
		}
		// The store must stay fully usable: append and reopen.
		before := r.Len()
		if err := r.Append(makeEvent(900)); err != nil {
			t.Fatalf("stage %s: append after recovery: %v", sn.stage, err)
		}
		if err := r.Close(); err != nil {
			t.Fatalf("stage %s: close: %v", sn.stage, err)
		}
		r2, err := Open(sn.dir, opts)
		if err != nil {
			t.Fatalf("stage %s: second reopen: %v", sn.stage, err)
		}
		if r2.Len() != before+1 {
			t.Fatalf("stage %s: second reopen lost events (%d, want %d)", sn.stage, r2.Len(), before+1)
		}
		r2.Close()
	}

	// Final state: the tombstoned records are gone from disk too.
	upTo := partitionedEpoch.Add(60 * 24 * time.Hour)
	for _, ev := range diskEvents(t, dir) {
		if target.Bits() <= ev.Prefix.Bits() && target.Contains(ev.Prefix.Addr()) && !ev.End.After(upTo) {
			t.Fatalf("tombstoned event %v still on disk after the erasure run", ev.Prefix)
		}
	}
}
