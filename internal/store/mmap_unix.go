//go:build unix

package store

import (
	"fmt"
	"os"
	"syscall"
)

// mmapSupported gates Options.Mmap: on unix platforms sealed-segment
// scans map the file read-only so cold history lives in the page
// cache, not the Go heap; elsewhere the store falls back to one
// buffered read per scan.
const mmapSupported = true

// mapFile maps path read-only and returns the mapping plus its
// release function. An empty file returns nil data (nothing to map).
// The mapping outlives the file descriptor, which is closed here.
func mapFile(path string) ([]byte, func(), error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	fi, err := f.Stat()
	if err != nil {
		f.Close()
		return nil, nil, err
	}
	size := fi.Size()
	if size == 0 {
		f.Close()
		return nil, func() {}, nil
	}
	if int64(int(size)) != size {
		f.Close()
		return nil, nil, fmt.Errorf("store: %s: too large to map", path)
	}
	data, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_SHARED)
	f.Close()
	if err != nil {
		return nil, nil, fmt.Errorf("store: mmap %s: %w", path, err)
	}
	return data, func() { syscall.Munmap(data) }, nil
}
